package mom

import (
	"fmt"
	"io"
)

// Machine-readable exports of the experiment rows (for plotting the
// figures outside Go).

// WriteFigure5CSV emits kernel,isa,width,cycles,ipc,speedup rows.
func WriteFigure5CSV(w io.Writer, rows []KernelSpeedup) error {
	if _, err := fmt.Fprintln(w, "kernel,isa,width,cycles,ipc,speedup"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.4f,%.4f\n",
			r.Kernel, r.ISA, r.Width, r.Cycles, r.IPC, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}

// WriteLatencyCSV emits kernel,isa,width,cycles1,cycles50,slowdown rows.
func WriteLatencyCSV(w io.Writer, rows []LatencyRow) error {
	if _, err := fmt.Fprintln(w, "kernel,isa,width,cycles_lat1,cycles_lat50,slowdown"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%.4f\n",
			r.Kernel, r.ISA, r.Width, r.Cycles1, r.Cycles50, r.Slowdown); err != nil {
			return err
		}
	}
	return nil
}

// WriteProfileCSV emits one row per kernel×isa×memory with the full stall
// taxonomy in canonical bucket order.
func WriteProfileCSV(w io.Writer, rows []ProfileRow) error {
	header := "kernel,isa,width,mem,cycles,ipc"
	for _, b := range (Profile{}).Buckets() {
		header += "," + csvBucketName(b.Name)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%s,%d,%.4f",
			r.Kernel, r.ISA, r.Width, r.MemName, r.Cycles, r.IPC); err != nil {
			return err
		}
		for _, b := range r.Profile.Buckets() {
			if _, err := fmt.Fprintf(w, ",%d", b.Cycles); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// csvBucketName flattens display bucket names into CSV-safe column names.
func csvBucketName(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			out[i] = '_'
		} else {
			out[i] = s[i]
		}
	}
	return string(out)
}

// WriteHotspotsCSV emits one row per workload×isa×static-instruction with
// the full per-PC stall taxonomy and memory-event counts. The asm field is
// quoted (disassembly contains commas).
func WriteHotspotsCSV(w io.Writer, reps []HotspotReport) error {
	header := "workload,isa,width,mem,pc,asm,count,cycles"
	for _, b := range (Profile{}).Buckets() {
		header += "," + csvBucketName(b.Name)
	}
	header += ",l1_misses,l2_misses,mshr_stalls,write_buf_stalls"
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, rep := range reps {
		for _, r := range rep.Rows {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%s,%d,%q,%d,%d",
				rep.Workload, rep.ISA, rep.Width, rep.MemName,
				r.PC, r.Asm, r.Count, r.Cycles); err != nil {
				return err
			}
			for _, b := range r.Profile.Buckets() {
				if _, err := fmt.Fprintf(w, ",%d", b.Cycles); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, ",%d,%d,%d,%d\n",
				r.L1Misses, r.L2Misses, r.MSHRStalls, r.WriteBufStalls); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFigure7CSV emits app,isa,cache,width,cycles,ipc,speedup rows.
func WriteFigure7CSV(w io.Writer, rows []AppSpeedup) error {
	if _, err := fmt.Fprintln(w, "app,isa,cache,width,cycles,ipc,speedup"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%.4f,%.4f\n",
			r.App, r.Config.ISA, r.Config.Cache, r.Width, r.Cycles, r.IPC, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}
