package mom

import (
	"fmt"
	"io"
)

// Machine-readable exports of the experiment rows (for plotting the
// figures outside Go).

// WriteFigure5CSV emits kernel,isa,width,cycles,ipc,speedup rows.
func WriteFigure5CSV(w io.Writer, rows []KernelSpeedup) error {
	if _, err := fmt.Fprintln(w, "kernel,isa,width,cycles,ipc,speedup"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.4f,%.4f\n",
			r.Kernel, r.ISA, r.Width, r.Cycles, r.IPC, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}

// WriteLatencyCSV emits kernel,isa,width,cycles1,cycles50,slowdown rows.
func WriteLatencyCSV(w io.Writer, rows []LatencyRow) error {
	if _, err := fmt.Fprintln(w, "kernel,isa,width,cycles_lat1,cycles_lat50,slowdown"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%.4f\n",
			r.Kernel, r.ISA, r.Width, r.Cycles1, r.Cycles50, r.Slowdown); err != nil {
			return err
		}
	}
	return nil
}

// WriteFigure7CSV emits app,isa,cache,width,cycles,ipc,speedup rows.
func WriteFigure7CSV(w io.Writer, rows []AppSpeedup) error {
	if _, err := fmt.Fprintln(w, "app,isa,cache,width,cycles,ipc,speedup"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%.4f,%.4f\n",
			r.App, r.Config.ISA, r.Config.Cache, r.Width, r.Cycles, r.IPC, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}
