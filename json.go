package mom

import (
	"encoding/json"
	"io"
)

// JSON exports of the experiment rows and single-run results. Every
// momsim experiment can emit its rows through WriteExperimentJSON, so the
// schema is uniform: one compact document per experiment with the schema
// version, the experiment name and the row list. The encoding is
// canonical — struct fields appear in declaration order, map keys are
// sorted by encoding/json, and ISA / CacheMode marshal by name — so the
// same rows always produce the same bytes. The job service relies on
// this: the documents are stored content-addressed under a key that
// includes SchemaVersion, and byte-identical replay of a stored document
// must be indistinguishable from a fresh run.

// SchemaVersion is the version of the JSON document schema emitted by
// WriteExperimentJSON / WriteResultJSON. Bump it on any change to the
// envelope or row encodings; the bump flows into every JobRequest key, so
// stale store entries are never served across a schema change.
//
// Version 2 added the optional "sampled" block to Result and the
// experiment rows (absent in exact mode) plus the sample_* request
// parameters.
const SchemaVersion = 2

// experimentEnvelope is the uniform top-level JSON shape.
type experimentEnvelope struct {
	Schema     int    `json:"schema"`
	Experiment string `json:"experiment"`
	Rows       any    `json:"rows"`
}

// resultEnvelope flattens a single-run Result under the same schema
// header ({"schema":1,"workload":...}).
type resultEnvelope struct {
	Schema int `json:"schema"`
	Result
}

// WriteExperimentJSON emits one experiment's rows as a single-line JSON
// document: {"schema": v, "experiment": name, "rows": [...]}.
func WriteExperimentJSON(w io.Writer, name string, rows any) error {
	return json.NewEncoder(w).Encode(experimentEnvelope{Schema: SchemaVersion, Experiment: name, Rows: rows})
}

// WriteResultJSON emits one timed run (a single kernel or application) as
// a single-line JSON document with the schema version alongside the
// Result fields.
func WriteResultJSON(w io.Writer, r Result) error {
	return json.NewEncoder(w).Encode(resultEnvelope{Schema: SchemaVersion, Result: r})
}

// WriteHotspotsJSON emits per-PC hotspot reports in the experiment
// envelope ({"schema":v,"experiment":"hotspots","rows":[...]}); each row
// is one HotspotReport whose per-PC profiles sum to the report profile.
func WriteHotspotsJSON(w io.Writer, reps []HotspotReport) error {
	return WriteExperimentJSON(w, "hotspots", reps)
}

// SpanDoc is the JSON envelope of one stage span in a job's flight
// timeline — the serving-path counterpart of the per-instruction pipeline
// stages the observability layer exports. Offsets are microseconds from
// the flight's start, so spans from different nodes sharing one trace
// context stitch by wall-clock without exchanging monotonic clocks.
type SpanDoc struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Detail  string `json:"detail,omitempty"`
}
