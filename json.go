package mom

import (
	"encoding/json"
	"io"
)

// JSON exports of the experiment rows and single-run results. Every
// momsim experiment can emit its rows through WriteExperimentJSON, so the
// schema is uniform: one compact document per experiment with the
// experiment name and the row list. Field names are fixed by the json
// tags on the row types (snake_case) and ISA / CacheMode marshal by name,
// so the output is stable across refactors of the Go-side enums.

// experimentEnvelope is the uniform top-level JSON shape.
type experimentEnvelope struct {
	Experiment string `json:"experiment"`
	Rows       any    `json:"rows"`
}

// WriteExperimentJSON emits one experiment's rows as a single-line JSON
// document: {"experiment": name, "rows": [...]}.
func WriteExperimentJSON(w io.Writer, name string, rows any) error {
	return json.NewEncoder(w).Encode(experimentEnvelope{Experiment: name, Rows: rows})
}

// WriteResultJSON emits one timed run (a single kernel or application) as
// a single-line JSON document.
func WriteResultJSON(w io.Writer, r Result) error {
	return json.NewEncoder(w).Encode(r)
}

// WriteHotspotsJSON emits per-PC hotspot reports in the experiment
// envelope ({"experiment":"hotspots","rows":[...]}); each row is one
// HotspotReport whose per-PC profiles sum to the report profile.
func WriteHotspotsJSON(w io.Writer, reps []HotspotReport) error {
	return WriteExperimentJSON(w, "hotspots", reps)
}
