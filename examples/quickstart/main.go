// Quickstart: build a tiny MOM program with the assembler API, execute it
// functionally, then time it on a 4-way machine — the minimal end-to-end
// tour of the library (assembler -> emulator -> cycle-level simulator).
package main

import (
	"fmt"
	"log"

	mom "repro"
	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

func main() {
	// A 16x16 byte matrix lives in memory with a row stride of 16. The
	// program doubles every element using a single strided matrix load, one
	// vector packed add, and one strided matrix store — 256 byte-operations
	// in 5 instructions.
	b := asm.New("double-matrix")
	src := make([]byte, 16*16)
	for i := range src {
		src[i] = byte(i % 100)
	}
	b.AllocBytes("m", src, 8)

	base, stride := isa.R(1), isa.R(2)
	b.MovI(base, int64(b.Sym("m")))
	b.MovI(stride, 16)
	b.SetVLI(16)                                           // all 16 matrix rows
	b.MomLd(isa.V(0), base, stride, 0)                     // V0 <- the matrix
	b.Op(isa.PADDB.Vector(), isa.V(0), isa.V(0), isa.V(0)) // each byte doubled
	b.MomSt(isa.V(0), base, stride, 0)                     // store back
	prog := b.Build()

	// Functional execution.
	m := emu.New(prog)
	if _, err := m.Run(1000); err != nil {
		log.Fatal(err)
	}
	got := m.Mem.Bytes(prog.Sym("m"), 4)
	fmt.Printf("first bytes after doubling: %v (was [0 1 2 3])\n", got)

	// Cycle-level timing on the paper's 4-way MOM machine.
	sim := cpu.New(cpu.NewConfig(4, isa.ExtMOM), mem.NewPerfect(1))
	res, err := sim.Run(trace.NewLive(emu.New(prog)), 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timed: %d instructions in %d cycles (IPC %.2f, %d word-ops)\n",
		res.Insts, res.Cycles, res.IPC(), res.WordOps)

	// The same machinery drives the paper's kernels via the public API.
	r, err := mom.RunKernel("motion1", mom.MOM, 4, mom.PerfectMemory(1), mom.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("motion1 on 4-way MOM: %d cycles, IPC %.2f\n", r.Cycles, r.IPC())

	// Every run carries a cycle-attribution profile whose buckets sum
	// exactly to the cycle count — where did the time go?
	if err := r.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cycle profile:")
	for _, b := range r.Profile.Buckets() {
		if b.Cycles > 0 {
			fmt.Printf("  %-10s %6.1f%%\n", b.Name, 100*float64(b.Cycles)/float64(r.Cycles))
		}
	}

	// The observability layer drills the same attribution down to single
	// static instructions: which line of the kernel is the time going to?
	rep, err := mom.KernelHotspots("motion1", mom.MOM, 4, mom.PerfectMemory(1), mom.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hottest instructions (per-PC attributed cycles):")
	for _, row := range rep.Rows[:3] {
		fmt.Printf("  pc %4d  %-34s %6.1f%% of cycles (%d runs)\n",
			row.PC, row.Asm, 100*float64(row.Cycles)/float64(rep.Cycles), row.Count)
	}
}
