// Video pipeline: run the full mpeg2-decode application (entropy decode,
// dequantisation, IDCT, motion compensation, reconstruction) on the
// detailed memory hierarchy under each cache organisation — a miniature
// Figure 7 for one application, with the memory-system statistics that
// explain the differences.
package main

import (
	"fmt"
	"log"

	mom "repro"
)

func main() {
	fmt.Println("mpeg2 decode on the detailed memory hierarchy")

	type config struct {
		name  string
		isa   mom.ISA
		cache mom.CacheMode
	}
	configs := []config{
		{"Alpha / conventional cache", mom.Alpha, mom.Conventional},
		{"MMX   / conventional cache", mom.MMX, mom.Conventional},
		{"MOM   / multi-address cache", mom.MOM, mom.MultiAddress},
		{"MOM   / vector cache", mom.MOM, mom.VectorCache},
		{"MOM   / collapsing buffer", mom.MOM, mom.CollapsingBuffer},
	}

	for _, w := range []int{4, 8} {
		fmt.Printf("\n%d-way machine\n", w)
		var base int64
		for _, cfg := range configs {
			r, err := mom.RunApp("mpeg2decode", cfg.isa, w, mom.DetailedMemory(cfg.cache), mom.ScaleTest)
			if err != nil {
				log.Fatal(err)
			}
			if cfg.isa == mom.Alpha {
				base = r.Cycles
			}
			fmt.Printf("  %-28s %9d cycles  %5.2fx  IPC %.2f\n",
				cfg.name, r.Cycles, float64(base)/float64(r.Cycles), r.IPC())
			if cfg.isa == mom.MOM {
				fmt.Printf("      vector: %d loads / %d stores (%d elements), %d line-pair accesses\n",
					r.Mem.VecLoads, r.Mem.VecStores, r.Mem.VecElems, r.Mem.LineAccesses)
			}
			fmt.Printf("      L1 %d/%d hit/miss, L2 %d/%d, bank conflicts %d\n",
				r.Mem.L1Hits, r.Mem.L1Misses, r.Mem.L2Hits, r.Mem.L2Misses, r.Mem.BankConflicts)
		}
	}
}
