// ISA comparison: static and dynamic code properties of the four ISA
// levels on every kernel — instruction-count reduction, operations per
// instruction (fetch pressure) and static program sizes. This is the
// quantitative version of the paper's Figure 3 argument.
package main

import (
	"fmt"
	"log"

	mom "repro"
)

func main() {
	mmx, mdmx, momN := mom.ISACounts()
	fmt.Printf("modelled multimedia instruction counts: MMX %d, MDMX %d, MOM %d\n",
		mmx, mdmx, momN)
	fmt.Println("(the paper's emulation libraries: 67, 88 and 121)")

	fmt.Printf("\n%-14s %-6s %9s %9s %12s %9s\n",
		"kernel", "ISA", "static", "dynamic", "vs Alpha", "ops/inst")
	for _, k := range mom.KernelNames() {
		var alphaDyn uint64
		for _, level := range mom.AllISAs {
			p, err := mom.BuildKernel(k, level, mom.ScaleTest)
			if err != nil {
				log.Fatal(err)
			}
			r, err := mom.RunKernel(k, level, 4, mom.PerfectMemory(1), mom.ScaleTest)
			if err != nil {
				log.Fatal(err)
			}
			if level == mom.Alpha {
				alphaDyn = r.Insts
			}
			fmt.Printf("%-14s %-6s %9d %9d %11.1fx %9.2f\n",
				k, level, p.Stats().Total, r.Insts,
				float64(alphaDyn)/float64(r.Insts),
				float64(r.WordOps)/float64(r.Insts))
		}
		fmt.Println()
	}
}
