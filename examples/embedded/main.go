// Embedded-domain argument: the paper concludes MOM is "an ideal candidate
// for embedded systems where high issue rates and out-of-order execution
// are not even an option", because matrix instructions slash fetch
// pressure. This example makes that concrete: a 1-way in-order-budget MOM
// machine against much wider MMX machines, plus the latency-tolerance
// angle that matters when the embedded part has a slow memory.
package main

import (
	"fmt"
	"log"

	mom "repro"
)

func run(k string, i mom.ISA, w int, m mom.MemModel) mom.Result {
	r, err := mom.RunKernel(k, i, w, m, mom.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	kernels := []string{"motion1", "motion2", "idct", "addblock"}

	fmt.Println("1-way MOM vs wider MMX machines (cycles; perfect cache)")
	fmt.Printf("%-10s %12s %12s %12s %12s\n",
		"kernel", "MOM 1-way", "MMX 1-way", "MMX 2-way", "MMX 4-way")
	for _, k := range kernels {
		m1 := run(k, mom.MOM, 1, mom.PerfectMemory(1)).Cycles
		x1 := run(k, mom.MMX, 1, mom.PerfectMemory(1)).Cycles
		x2 := run(k, mom.MMX, 2, mom.PerfectMemory(1)).Cycles
		x4 := run(k, mom.MMX, 4, mom.PerfectMemory(1)).Cycles
		fmt.Printf("%-10s %12d %12d %12d %12d", k, m1, x1, x2, x4)
		switch {
		case m1 <= x4:
			fmt.Print("   <- 1-way MOM beats 4-way MMX\n")
		case m1 <= x2:
			fmt.Print("   <- 1-way MOM beats 2-way MMX\n")
		default:
			fmt.Print("\n")
		}
	}

	fmt.Println("\nwith a slow (50-cycle) memory, the gap widens:")
	fmt.Printf("%-10s %12s %12s\n", "kernel", "MOM 1-way", "MMX 4-way")
	for _, k := range kernels {
		m1 := run(k, mom.MOM, 1, mom.PerfectMemory(50)).Cycles
		x4 := run(k, mom.MMX, 4, mom.PerfectMemory(50)).Cycles
		marker := ""
		if m1 < x4 {
			marker = "   <- the narrow MOM machine wins outright"
		}
		fmt.Printf("%-10s %12d %12d%s\n", k, m1, x4, marker)
	}

	fmt.Println("\nwhy: instructions fetched per unit of work (motion1)")
	for _, cfg := range []struct {
		i mom.ISA
		w int
	}{{mom.MOM, 1}, {mom.MMX, 1}, {mom.MMX, 4}} {
		r := run("motion1", cfg.i, cfg.w, mom.PerfectMemory(1))
		fmt.Printf("  %-5s %d-way: %8d instructions for %d word-operations\n",
			cfg.i, cfg.w, r.Insts, r.WordOps)
	}
}
