// Motion-estimation showdown: the mpeg2 dist1 kernel (16x16 sum of
// absolute differences over a spiral search) in all four ISA levels across
// machine widths — a miniature Figure 5 focused on the paper's motivating
// example, plus the fetch-pressure numbers behind MOM's advantage.
package main

import (
	"fmt"
	"log"

	mom "repro"
)

func main() {
	fmt.Println("mpeg2 motion estimation (dist1 / motion1 kernel)")
	fmt.Println()
	fmt.Printf("%-6s %10s %10s %10s %10s   %s\n",
		"", "1-way", "2-way", "4-way", "8-way", "(cycles)")

	base := int64(0)
	for _, isaLevel := range mom.AllISAs {
		fmt.Printf("%-6s", isaLevel)
		for _, w := range []int{1, 2, 4, 8} {
			r, err := mom.RunKernel("motion1", isaLevel, w, mom.PerfectMemory(1), mom.ScaleTest)
			if err != nil {
				log.Fatal(err)
			}
			if isaLevel == mom.Alpha && w == 1 {
				base = r.Cycles
			}
			fmt.Printf(" %10d", r.Cycles)
		}
		fmt.Println()
	}

	fmt.Println("\nspeed-up vs 1-way Alpha:")
	for _, isaLevel := range mom.AllISAs {
		fmt.Printf("%-6s", isaLevel)
		for _, w := range []int{1, 2, 4, 8} {
			r, err := mom.RunKernel("motion1", isaLevel, w, mom.PerfectMemory(1), mom.ScaleTest)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.2fx", float64(base)/float64(r.Cycles))
		}
		fmt.Println()
	}

	fmt.Println("\nwhy: one MOM instruction does the work of a whole loop —")
	for _, isaLevel := range mom.AllISAs {
		r, err := mom.RunKernel("motion1", isaLevel, 4, mom.PerfectMemory(1), mom.ScaleTest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %9d dynamic instructions, %5.2f word-ops per instruction\n",
			isaLevel, r.Insts, float64(r.WordOps)/float64(r.Insts))
	}

	fmt.Println("\nmemory-latency tolerance (4-way, latency 1 -> 50 cycles):")
	for _, isaLevel := range mom.AllISAs {
		r1, err := mom.RunKernel("motion1", isaLevel, 4, mom.PerfectMemory(1), mom.ScaleTest)
		if err != nil {
			log.Fatal(err)
		}
		r50, err := mom.RunKernel("motion1", isaLevel, 4, mom.PerfectMemory(50), mom.ScaleTest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s slows down %.2fx\n", isaLevel, float64(r50.Cycles)/float64(r1.Cycles))
	}
}
