package mom

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestRequestNormalization: defaults fill in, irrelevant fields clear, so
// every spelling of the same computation shares one canonical form.
func TestRequestNormalization(t *testing.T) {
	n, err := JobRequest{Exp: "fig5", Width: 8, ISA: "mmx", Mem: "vector", Kernel: "idct"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if want := (JobRequest{Exp: "fig5", Scale: "test"}); n != want {
		t.Fatalf("fig5 normalised to %+v, want %+v", n, want)
	}
	n, err = JobRequest{Exp: "kernel", Kernel: "motion1", ISA: "mom"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	want := JobRequest{Exp: "kernel", Scale: "test", Width: 4, ISA: "MOM", Mem: "perfect", Kernel: "motion1"}
	if n != want {
		t.Fatalf("kernel point normalised to %+v, want %+v", n, want)
	}
}

// TestRequestValidation: every invalid shape is rejected with the valid
// vocabulary in the message.
func TestRequestValidation(t *testing.T) {
	for _, tc := range []struct {
		req  JobRequest
		want string // substring of the error
	}{
		{JobRequest{Exp: "nope"}, "valid: fig5"},
		{JobRequest{Exp: "fig5", Scale: "huge"}, "valid: test, bench"},
		{JobRequest{Exp: "latency", Width: 3}, "valid: 1, 2, 4, 8"},
		{JobRequest{Exp: "latency", Width: -4}, "valid: 1, 2, 4, 8"},
		{JobRequest{Exp: "kernel", Kernel: "idct", Width: -1}, "valid: 1, 2, 4, 8"},
		{JobRequest{Exp: "kernel"}, "missing kernel"},
		{JobRequest{Exp: "kernel", Kernel: "nope"}, "unknown kernel"},
		{JobRequest{Exp: "kernel", Kernel: "idct", ISA: "sse"}, "unknown ISA"},
		{JobRequest{Exp: "kernel", Kernel: "idct", Mem: "l3"}, "unknown memory model"},
		{JobRequest{Exp: "app", App: "nope"}, "unknown app"},
		{JobRequest{Exp: "memsweep"}, "missing app"},
		{JobRequest{Exp: "regsweep", Kernel: "bogus"}, "unknown kernel"},
		// Exact-only experiments reject sampling parameters instead of
		// silently caching an exact run under a sampled-looking request.
		{JobRequest{Exp: "fig5", SamplePeriod: 1501, SampleWarmup: 100, SampleInterval: 150}, "exact-only"},
		{JobRequest{Exp: "fetch", SampleInterval: 150, SamplePeriod: 1501}, "exact-only"},
		{JobRequest{Exp: "latency", SampleInterval: 150, SamplePeriod: 1501}, "exact-only"},
		{JobRequest{Exp: "regsweep", Kernel: "idct", SampleInterval: 150, SamplePeriod: 1501}, "exact-only"},
		{JobRequest{Exp: "memsweep", App: "mpeg2decode", SampleInterval: 150, SamplePeriod: 1501}, "exact-only"},
		// Sampled-capable experiments still validate the spec itself.
		{JobRequest{Exp: "kernel", Kernel: "idct", SampleInterval: 150}, "sample"},
	} {
		_, err := tc.req.Normalized()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: error %v, want one containing %q", tc.req, err, tc.want)
		}
	}
}

// TestRequestKeyStability pins the hash preimage: if this golden moves,
// SchemaVersion must be bumped with it, or a persistent store would serve
// entries computed under the old schema.
func TestRequestKeyStability(t *testing.T) {
	b, err := JobRequest{Exp: "fig5"}.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"schema":2,"exp":"fig5","scale":"test"}`; string(b) != want {
		t.Fatalf("canonical fig5 request:\n got %s\nwant %s", b, want)
	}
	key, err := JobRequest{Exp: "fig5"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 64 || strings.ToLower(key) != key {
		t.Fatalf("key %q is not lowercase hex sha256", key)
	}
	key2, _ := JobRequest{Exp: "fig5", ISA: "MDMX"}.Key()
	if key != key2 {
		t.Fatal("irrelevant field changed a fig5 key")
	}
	other, _ := JobRequest{Exp: "fig7"}.Key()
	if key == other {
		t.Fatal("different experiments share a key")
	}
}

// TestEnvelopeSchemaAndDeterminism: every JSON document carries the
// schema version, and encoding the same rows twice yields identical
// bytes (the property the content-addressed store depends on).
func TestEnvelopeSchemaAndDeterminism(t *testing.T) {
	res, err := RunKernel("idct", MOM, 4, PerfectMemory(1), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteResultJSON(&a, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteResultJSON(&b, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteResultJSON is not deterministic")
	}
	var doc map[string]any
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != float64(SchemaVersion) {
		t.Fatalf("result schema %v, want %d", doc["schema"], SchemaVersion)
	}

	a.Reset()
	if err := WriteExperimentJSON(&a, "table2", Table2()); err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(a.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env["schema"] != float64(SchemaVersion) || env["experiment"] != "table2" {
		t.Fatalf("envelope %v, want schema %d and experiment table2", env, SchemaVersion)
	}
}

// TestRunJobRequestDeterministic: the same request produces byte-identical
// result documents across runs — the store-hit-equals-recompute property.
func TestRunJobRequestDeterministic(t *testing.T) {
	req := JobRequest{Exp: "kernel", Kernel: "rgb2ycc", ISA: "MOM", Width: 4}
	a, err := RunJobRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunJobRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("RunJobRequest not deterministic:\n%s\nvs\n%s", a, b)
	}
	var doc map[string]any
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["workload"] != "rgb2ycc" {
		t.Fatalf("document workload %v, want rgb2ycc", doc["workload"])
	}
}

// TestRunJobRequestCancelled: a dead context aborts a batch driver.
func TestRunJobRequestCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunJobRequest(ctx, JobRequest{Exp: "regsweep", Kernel: "idct"}); err == nil {
		t.Fatal("cancelled regsweep returned no error")
	}
	if _, err := RunJobRequest(ctx, JobRequest{Exp: "kernel", Kernel: "idct"}); err == nil {
		t.Fatal("cancelled kernel point returned no error")
	}
}
