package mom

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/par"
	"repro/internal/regfile"
	"repro/internal/trace"
)

// This file contains the drivers that regenerate every table and figure of
// the paper's evaluation (the experiment index lives in DESIGN.md). Every
// driver follows the capture-once / replay-many pattern: the dynamic trace
// of each workload×ISA is recorded once (see tracecache.go) and replayed
// across all machine configurations in parallel.

// Widths are the issue widths of the kernel study (Table 1 columns).
var Widths = []int{1, 2, 4, 8}

// KernelSpeedup is one bar of Figure 5.
type KernelSpeedup struct {
	Kernel  string  `json:"kernel"`
	ISA     ISA     `json:"isa"`
	Width   int     `json:"width"`
	Cycles  int64   `json:"cycles"`
	Insts   uint64  `json:"insts"`
	IPC     float64 `json:"ipc"`
	Speedup float64 `json:"speedup"` // versus the 1-way Alpha run of the same kernel
}

// Figure5 reruns the kernel-level study: every kernel on every ISA at every
// issue width, with the idealised 1-cycle memory, reporting speed-ups
// relative to the 1-way Alpha machine.
func Figure5(ctx context.Context, sc Scale) ([]KernelSpeedup, error) {
	names := KernelNames()
	warmTraces(ctx, false, names, AllISAs, sc)
	type job struct {
		kernel string
		isa    ISA
		width  int
	}
	var jobs []job
	for _, k := range names {
		for _, i := range AllISAs {
			for _, w := range Widths {
				jobs = append(jobs, job{k, i, w})
			}
		}
	}
	rows := make([]KernelSpeedup, len(jobs))
	err := par.For(ctx, len(jobs), func(idx int) error {
		j := jobs[idx]
		res, err := runKernelCached(j.kernel, j.isa, j.width, PerfectMemory(1), sc, SampleSpec{})
		if err != nil {
			return err
		}
		rows[idx] = KernelSpeedup{
			Kernel: j.kernel, ISA: j.isa, Width: j.width,
			Cycles: res.Cycles, Insts: res.Insts, IPC: res.IPC(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Baselines: 1-way Alpha per kernel.
	base := map[string]int64{}
	for _, r := range rows {
		if r.ISA == Alpha && r.Width == 1 {
			base[r.Kernel] = r.Cycles
		}
	}
	for i := range rows {
		if b := base[rows[i].Kernel]; b > 0 && rows[i].Cycles > 0 {
			rows[i].Speedup = float64(b) / float64(rows[i].Cycles)
		}
	}
	return rows, nil
}

// LatencyRow is one entry of the Section 4.1 latency-tolerance study.
type LatencyRow struct {
	Kernel   string  `json:"kernel"`
	ISA      ISA     `json:"isa"`
	Width    int     `json:"width"`
	Cycles1  int64   `json:"cycles_lat1"`
	Cycles50 int64   `json:"cycles_lat50"`
	Slowdown float64 `json:"slowdown"`
}

// LatencyStudy reruns the kernels with the memory latency raised from 1 to
// 50 cycles (the streaming-reference experiment); the paper reports
// slow-downs of 3-9x for Alpha, 4-8x for MMX/MDMX and only 2-4x for MOM.
func LatencyStudy(ctx context.Context, sc Scale, width int) ([]LatencyRow, error) {
	names := KernelNames()
	warmTraces(ctx, false, names, AllISAs, sc)
	var jobs []struct {
		kernel string
		isa    ISA
	}
	for _, k := range names {
		for _, i := range AllISAs {
			jobs = append(jobs, struct {
				kernel string
				isa    ISA
			}{k, i})
		}
	}
	rows := make([]LatencyRow, len(jobs))
	err := par.For(ctx, len(jobs), func(idx int) error {
		j := jobs[idx]
		r1, err := runKernelCached(j.kernel, j.isa, width, PerfectMemory(1), sc, SampleSpec{})
		if err != nil {
			return err
		}
		r50, err := runKernelCached(j.kernel, j.isa, width, PerfectMemory(50), sc, SampleSpec{})
		if err != nil {
			return err
		}
		rows[idx] = LatencyRow{
			Kernel: j.kernel, ISA: j.isa, Width: width,
			Cycles1: r1.Cycles, Cycles50: r50.Cycles,
			Slowdown: float64(r50.Cycles) / float64(r1.Cycles),
		}
		return nil
	})
	return rows, err
}

// AppConfig is one machine configuration of the program-level study
// (Figure 7): an ISA plus a cache organisation.
type AppConfig struct {
	ISA   ISA       `json:"isa"`
	Cache CacheMode `json:"cache"`
}

func (c AppConfig) String() string {
	return fmt.Sprintf("%s/%s", c.ISA, c.Cache)
}

// Figure7Configs are the five configurations of Figure 7.
var Figure7Configs = []AppConfig{
	{Alpha, Conventional},
	{MMX, Conventional},
	{MOM, MultiAddress},
	{MOM, VectorCache},
	{MOM, CollapsingBuffer},
}

// AppSpeedup is one bar of Figure 7. For sampled runs Cycles is the
// whole-run estimate at the sampled IPC (so speed-up ratios stay
// comparable) and Sampled carries coverage and error bounds.
type AppSpeedup struct {
	App     string       `json:"app"`
	Config  AppConfig    `json:"config"`
	Width   int          `json:"width"`
	Cycles  int64        `json:"cycles"`
	Insts   uint64       `json:"insts"`
	IPC     float64      `json:"ipc"`
	Speedup float64      `json:"speedup"` // versus Alpha/conventional at the same width
	Sampled *SampledInfo `json:"sampled,omitempty"`
}

// Figure7 reruns the program-level study: the five applications on the five
// ISA/cache configurations at 4- and 8-way issue with the detailed memory
// hierarchy.
func Figure7(ctx context.Context, sc Scale) ([]AppSpeedup, error) {
	return Figure7Sampled(ctx, sc, SampleSpec{})
}

// Figure7Sampled is Figure7 under a sampling regime: every app×config×width
// point runs sampled (detailed windows + functional fast-forward over the
// recorded trace), turning the slowest experiment into an interactive one.
// A disabled spec is bit-identical to Figure7.
func Figure7Sampled(ctx context.Context, sc Scale, sp SampleSpec) ([]AppSpeedup, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	names := AppNames()
	isas := map[ISA]bool{}
	for _, cfg := range Figure7Configs {
		isas[cfg.ISA] = true
	}
	var uniq []ISA
	for _, i := range AllISAs {
		if isas[i] {
			uniq = append(uniq, i)
		}
	}
	warmTraces(ctx, true, names, uniq, sc)
	widths := []int{4, 8}
	type job struct {
		app   string
		cfg   AppConfig
		width int
	}
	var jobs []job
	for _, a := range names {
		for _, cfg := range Figure7Configs {
			for _, w := range widths {
				jobs = append(jobs, job{a, cfg, w})
			}
		}
	}
	rows := make([]AppSpeedup, len(jobs))
	err := par.For(ctx, len(jobs), func(idx int) error {
		j := jobs[idx]
		res, err := runAppCached(j.app, j.cfg.ISA, j.width, DetailedMemory(j.cfg.Cache), sc, sp)
		if err != nil {
			return err
		}
		insts := res.Insts
		if res.Sampled != nil {
			insts = res.Sampled.TotalInsts
		}
		rows[idx] = AppSpeedup{
			App: j.app, Config: j.cfg, Width: j.width,
			Cycles: estOrExactCycles(res), Insts: insts, IPC: res.IPC(),
			Sampled: res.Sampled,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := map[string]int64{}
	for _, r := range rows {
		if r.Config.ISA == Alpha {
			base[fmt.Sprintf("%s/%d", r.App, r.Width)] = r.Cycles
		}
	}
	for i := range rows {
		if b := base[fmt.Sprintf("%s/%d", rows[i].App, rows[i].Width)]; b > 0 && rows[i].Cycles > 0 {
			rows[i].Speedup = float64(b) / float64(rows[i].Cycles)
		}
	}
	return rows, nil
}

// ProfileRow is one kernel×ISA×memory cycle-attribution breakdown of the
// profiling study.
type ProfileRow struct {
	Kernel  string       `json:"kernel"`
	ISA     ISA          `json:"isa"`
	Width   int          `json:"width"`
	MemName string       `json:"mem"`
	Cycles  int64        `json:"cycles"`
	IPC     float64      `json:"ipc"`
	Profile Profile      `json:"profile"`
	Mem     MemStats     `json:"mem_stats"`
	Sampled *SampledInfo `json:"sampled,omitempty"`
}

// ProfileStudy is the cycle-attribution companion to the Section 4.1
// latency argument: every kernel on every ISA, at the given width, under
// the 1-cycle and the 50-cycle idealised memories. Comparing each ISA's
// MemWait share across the two memories shows *why* MOM tolerates latency —
// overlapped vector memory access keeps the stall share low where the
// scalar and packed ISAs serialise on loads. Every row is checked against
// the attribution identity (buckets sum to Cycles) and the memory counter
// invariants before being returned, so a broken counter fails the study
// rather than skewing it.
func ProfileStudy(ctx context.Context, sc Scale, width int) ([]ProfileRow, error) {
	return ProfileStudySampled(ctx, sc, width, SampleSpec{})
}

// ProfileStudySampled is ProfileStudy under a sampling regime; the rows'
// profiles then cover the measured intervals only, but every attribution
// and counter invariant still holds (and is still checked). A disabled
// spec is bit-identical to ProfileStudy.
func ProfileStudySampled(ctx context.Context, sc Scale, width int, sp SampleSpec) ([]ProfileRow, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	names := KernelNames()
	warmTraces(ctx, false, names, AllISAs, sc)
	mems := []MemModel{PerfectMemory(1), PerfectMemory(50)}
	type job struct {
		kernel string
		isa    ISA
		mem    MemModel
	}
	var jobs []job
	for _, k := range names {
		for _, i := range AllISAs {
			for _, m := range mems {
				jobs = append(jobs, job{k, i, m})
			}
		}
	}
	rows := make([]ProfileRow, len(jobs))
	err := par.For(ctx, len(jobs), func(idx int) error {
		j := jobs[idx]
		res, err := runKernelCached(j.kernel, j.isa, width, j.mem, sc, sp)
		if err != nil {
			return err
		}
		if err := res.CheckInvariants(); err != nil {
			return err
		}
		rows[idx] = ProfileRow{
			Kernel: j.kernel, ISA: j.isa, Width: width, MemName: j.mem.Name(),
			Cycles: res.Cycles, IPC: res.IPC(), Profile: res.Profile, Mem: res.Mem,
			Sampled: res.Sampled,
		}
		return nil
	})
	return rows, err
}

// FetchRow is one entry of the fetch-pressure comparison (word-operations
// packed per dynamic instruction).
type FetchRow struct {
	Kernel     string  `json:"kernel"`
	ISA        ISA     `json:"isa"`
	Insts      uint64  `json:"insts"`
	WordOps    uint64  `json:"word_ops"`
	OpsPerInst float64 `json:"ops_per_inst"`
}

// FetchPressure reports dynamic instruction counts and word-operations per
// instruction for every kernel and ISA — the paper's "MOM packs an order of
// magnitude more operations per instruction" argument.
func FetchPressure(ctx context.Context, sc Scale) ([]FetchRow, error) {
	names := KernelNames()
	warmTraces(ctx, false, names, AllISAs, sc)
	var jobs []struct {
		kernel string
		isa    ISA
	}
	for _, k := range names {
		for _, i := range AllISAs {
			jobs = append(jobs, struct {
				kernel string
				isa    ISA
			}{k, i})
		}
	}
	rows := make([]FetchRow, len(jobs))
	err := par.For(ctx, len(jobs), func(idx int) error {
		j := jobs[idx]
		res, err := runKernelCached(j.kernel, j.isa, 4, PerfectMemory(1), sc, SampleSpec{})
		if err != nil {
			return err
		}
		rows[idx] = FetchRow{
			Kernel: j.kernel, ISA: j.isa, Insts: res.Insts, WordOps: res.WordOps,
			OpsPerInst: float64(res.WordOps) / float64(res.Insts),
		}
		return nil
	})
	return rows, err
}

// Table1Row describes one processor configuration column.
type Table1Row struct {
	Name   string            `json:"name"`
	Values map[string]string `json:"values"`
}

// Table1 reproduces the processor-configuration table for a given ISA.
func Table1(i ISA) []Table1Row {
	var rows []Table1Row
	for _, w := range Widths {
		c := cpu.NewConfig(w, i.ext())
		rows = append(rows, Table1Row{
			Name: c.Name,
			Values: map[string]string{
				"ROB size":           fmt.Sprint(c.ROBSize),
				"Load/Store queue":   fmt.Sprint(c.LSQSize),
				"Bimodal predictor":  fmt.Sprint(c.BimodalSize),
				"BTB entries":        fmt.Sprint(c.BTBEntries),
				"INT simple/complex": fmt.Sprintf("%d/%d", c.IntSimple, c.IntComplex),
				"FP simple/complex":  fmt.Sprintf("%d/%d", c.FPSimple, c.FPComplex),
				"MED simple/complex": fmt.Sprintf("%d/%d (x%d)", c.MedSimple, c.MedComplex, c.MedLanes),
				"memory ports":       fmt.Sprintf("%d (x%d)", c.MemPorts, c.MemPortLanes),
				"INT log/ph":         fmt.Sprintf("%d/%d", isa.NumInt, c.IntPhys),
				"FP log/ph":          fmt.Sprintf("%d/%d", isa.NumFP, c.FPPhys),
			},
		})
	}
	return rows
}

// Table2Entry mirrors the register-file comparison row.
type Table2Entry struct {
	ISA            string  `json:"isa"`
	MediaRegs      string  `json:"media_regs"`
	AccRegs        string  `json:"acc_regs"`
	MediaPorts     string  `json:"media_ports"`
	AccPorts       string  `json:"acc_ports"`
	SizeBytes      int     `json:"size_bytes"`
	NormalizedArea float64 `json:"normalized_area"`
}

// Table2 reproduces the multimedia register-file comparison (4-way machine).
func Table2() []Table2Entry {
	var out []Table2Entry
	for _, e := range regfile.Table2() {
		out = append(out, Table2Entry{
			ISA: e.ISA, MediaRegs: e.MediaRegs, AccRegs: e.AccRegs,
			MediaPorts: e.MediaPorts, AccPorts: e.AccPorts,
			SizeBytes: e.SizeBytes, NormalizedArea: e.NormalizedArea,
		})
	}
	return out
}

// Table3Row describes one memory-model column (port configuration).
type Table3Row struct {
	Model  string            `json:"model"`
	Width  int               `json:"width"`
	Values map[string]string `json:"values"`
}

// Table3 reproduces the port configuration of the memory models.
func Table3() []Table3Row {
	var rows []Table3Row
	for _, mode := range []CacheMode{Conventional, MultiAddress, VectorCache, CollapsingBuffer} {
		for _, w := range []int{4, 8} {
			v := map[string]string{}
			switch mode {
			case Conventional, MultiAddress:
				if w == 4 {
					v["L1 #ports"], v["L1 #banks"], v["L1 latency"] = "2", "4", "1 cyc"
				} else {
					v["L1 #ports"], v["L1 #banks"], v["L1 latency"] = "4", "8", "2 cyc"
				}
				v["L2 latency"] = "6 cyc"
			default:
				if w == 4 {
					v["L1 #ports"], v["L1 #banks"], v["L1 latency"] = "1", "1", "1 cyc"
					v["L2 #ports"] = "1x2"
				} else {
					v["L1 #ports"], v["L1 #banks"], v["L1 latency"] = "2", "2", "1 cyc"
					v["L2 #ports"] = "1x4"
				}
				if mode == VectorCache {
					v["L2 latency"] = "8 cyc"
				} else {
					v["L2 latency"] = "10 cyc"
				}
			}
			rows = append(rows, Table3Row{Model: mode.String(), Width: w, Values: v})
		}
	}
	return rows
}

// ISACounts reports the number of multimedia instructions available to each
// extension (the paper: MMX 67, MDMX 88, MOM 121).
func ISACounts() (mmx, mdmx, mom int) {
	return isa.CountByExtension()
}

// RegSweepRow is one point of the physical-register sensitivity ablation
// (the "preliminary simulations" behind Table 2's file sizes).
type RegSweepRow struct {
	Kernel   string  `json:"kernel"`
	MomPhys  int     `json:"mom_phys"`
	Cycles   int64   `json:"cycles"`
	Slowdown float64 `json:"slowdown"` // versus the largest file swept
}

// variantCycles is the shared core of the resource ablations
// (RegisterSweep, MemorySweep): run one traced workload across n machine
// variants on a bounded pool and report each variant's cycle count. The
// trace is captured once and replayed for every variant — it is width-
// and resource-independent — with mk rebuilding the machine for the live
// fallback; build returns variant i's processor and memory configuration.
func variantCycles(ctx context.Context, n int, tr *trace.Trace, cause liveCause, mk func() *emu.Machine, build func(i int) (cpu.Config, mem.Model)) ([]int64, error) {
	cycles := make([]int64, n)
	err := par.For(ctx, n, func(i int) error {
		cfg, model := build(i)
		res, err := runConfig(cfg, model, tr, cause, mk)
		if err != nil {
			return err
		}
		cycles[i] = res.Cycles
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cycles, nil
}

// RegisterSweep varies the number of physical matrix registers on the
// 4-way MOM machine and reports the cycle cost, showing performance
// saturating around the paper's choice of 20.
func RegisterSweep(ctx context.Context, sc Scale, kernel string) ([]RegSweepRow, error) {
	k, err := kernels.ByName(kernel, kernels.Scale(sc))
	if err != nil {
		return nil, err
	}
	tr, cause := cachedTraceCause(traceKey{name: kernel, isa: MOM, scale: sc})
	sizes := []int{17, 18, 20, 24, 32}
	cycles, err := variantCycles(ctx, len(sizes), tr, cause,
		func() *emu.Machine { return emu.New(k.Build(isa.ExtMOM)) },
		func(i int) (cpu.Config, mem.Model) {
			cfg := cpu.NewConfig(4, isa.ExtMOM)
			cfg.MomPhys = sizes[i]
			return cfg, mem.NewPerfect(1)
		})
	if err != nil {
		return nil, err
	}
	rows := make([]RegSweepRow, len(sizes))
	base := cycles[len(cycles)-1]
	for i := range rows {
		rows[i] = RegSweepRow{Kernel: kernel, MomPhys: sizes[i], Cycles: cycles[i],
			Slowdown: float64(cycles[i]) / float64(base)}
	}
	return rows, nil
}

// MemSweepRow is one point of the memory-system ablation: shrinking the
// MSHR pool or the L1 banking shows which resources the streaming MOM
// accesses actually need.
type MemSweepRow struct {
	App      string  `json:"app"`
	MSHRs    int     `json:"mshrs"`
	Banks    int     `json:"banks"`
	Cycles   int64   `json:"cycles"`
	Slowdown float64 `json:"slowdown"` // versus the Table 3 configuration
}

// MemorySweep runs an application on the 4-way MOM multi-address machine
// with reduced MSHR counts and bank counts.
func MemorySweep(ctx context.Context, sc Scale, app string) ([]MemSweepRow, error) {
	type variant struct{ mshrs, banks int }
	variants := []variant{
		{8, 4}, // Table 3 baseline
		{4, 4},
		{2, 4},
		{1, 4},
		{8, 2},
		{8, 1},
	}
	a, err := apps.ByName(app, apps.Scale(sc))
	if err != nil {
		return nil, err
	}
	tr, cause := cachedTraceCause(traceKey{app: true, name: app, isa: MOM, scale: sc})
	cycles, err := variantCycles(ctx, len(variants), tr, cause,
		func() *emu.Machine { return emu.New(a.Build(isa.ExtMOM)) },
		func(i int) (cpu.Config, mem.Model) {
			return cpu.NewConfig(4, isa.ExtMOM), mem.NewHierarchy(mem.HierConfig{
				Width: 4, Mode: mem.ModeMultiAddress, MSHRs: variants[i].mshrs, L1Banks: variants[i].banks,
			})
		})
	if err != nil {
		return nil, err
	}
	rows := make([]MemSweepRow, len(variants))
	base := cycles[0]
	for i := range rows {
		rows[i] = MemSweepRow{App: app, MSHRs: variants[i].mshrs, Banks: variants[i].banks,
			Cycles: cycles[i], Slowdown: float64(cycles[i]) / float64(base)}
	}
	return rows, nil
}
