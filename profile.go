package mom

import "fmt"

// Profile is the public cycle-attribution breakdown of a timed run: every
// simulated cycle is classified into exactly one bucket of the stall
// taxonomy, so the buckets always sum to Result.Cycles. See cpu.Profile for
// how each cycle is attributed (the commit frontier walks forward and every
// cycle it crosses is charged to the structure that held it back).
type Profile struct {
	Commit      int64 `json:"commit"`       // cycles with at least one graduation
	Frontend    int64 `json:"frontend"`     // fetch/decode refill, BTB bubbles
	Mispredict  int64 `json:"mispredict"`   // branch-mispredict redirects
	RenameROB   int64 `json:"rename_rob"`   // ROB/LSQ/rename-register back-pressure
	IssueQueue  int64 `json:"issue_queue"`  // issue-width contention
	FU          int64 `json:"fu"`           // functional-unit / lane contention
	MemWait     int64 `json:"mem_wait"`     // outstanding load data (scalar or vector)
	StoreCommit int64 `json:"store_commit"` // commit stalled draining stores
	DepLatency  int64 `json:"dep_latency"`  // data dependences / raw execution latency
}

// Total sums every bucket; it equals Result.Cycles for any run.
func (p Profile) Total() int64 {
	return p.Commit + p.Frontend + p.Mispredict + p.RenameROB +
		p.IssueQueue + p.FU + p.MemWait + p.StoreCommit + p.DepLatency
}

// ProfileBucket is one named entry of the stall taxonomy.
type ProfileBucket struct {
	Name   string
	Cycles int64
}

// Buckets returns the taxonomy in canonical display order.
func (p Profile) Buckets() []ProfileBucket {
	return []ProfileBucket{
		{"commit", p.Commit},
		{"frontend", p.Frontend},
		{"mispredict", p.Mispredict},
		{"rename/rob", p.RenameROB},
		{"issue", p.IssueQueue},
		{"fu", p.FU},
		{"mem", p.MemWait},
		{"store", p.StoreCommit},
		{"dep/lat", p.DepLatency},
	}
}

// CheckInvariants verifies the accounting identities that keep the profile
// and the memory-event counters honest: the stall-attribution buckets sum
// exactly to Cycles, every cache lookup is either a hit or a miss, and the
// store components never exceed the totals. It returns the first violated
// identity; experiment drivers call it on every run so a broken counter
// fails loudly instead of skewing a figure.
func (r Result) CheckInvariants() error {
	if t := r.Profile.Total(); t != r.Cycles {
		return fmt.Errorf("%s/%s/%d-way (%s): profile buckets sum to %d, want Cycles=%d",
			r.Workload, r.ISA, r.Width, r.MemName, t, r.Cycles)
	}
	m := r.Mem
	if m.L1Hits+m.L1Misses != m.L1Lookups {
		return fmt.Errorf("%s/%s/%d-way (%s): L1 hits %d + misses %d != lookups %d",
			r.Workload, r.ISA, r.Width, r.MemName, m.L1Hits, m.L1Misses, m.L1Lookups)
	}
	if m.L2Hits+m.L2Misses != m.L2Lookups {
		return fmt.Errorf("%s/%s/%d-way (%s): L2 hits %d + misses %d != lookups %d",
			r.Workload, r.ISA, r.Width, r.MemName, m.L2Hits, m.L2Misses, m.L2Lookups)
	}
	if m.L1StoreHits > m.L1Hits || m.L1StoreMisses > m.L1Misses {
		return fmt.Errorf("%s/%s/%d-way (%s): store hit/miss components (%d/%d) exceed totals (%d/%d)",
			r.Workload, r.ISA, r.Width, r.MemName,
			m.L1StoreHits, m.L1StoreMisses, m.L1Hits, m.L1Misses)
	}
	if m.WriteBufDrains > m.Stores+m.VecElems {
		return fmt.Errorf("%s/%s/%d-way (%s): %d write-buffer drains exceed %d store elements",
			r.Workload, r.ISA, r.Width, r.MemName, m.WriteBufDrains, m.Stores+m.VecElems)
	}
	return nil
}
