package mom

// Tests for the sampled-simulation mode at the driver level: the accuracy
// bound of the default regime over every application × ISA, the exactness
// of a disabled spec, and the Sampled block's internal accounting.

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// sampledIPCTolerance is the tested accuracy bound of DefaultSampleSpec on
// the test-scale applications: the sampled whole-run IPC estimate must land
// within 10% of the exact run for every app × ISA at 4-way. (Calibrated
// headroom: the worst observed point is ~6%; see EXPERIMENTS.md for the
// full accuracy-vs-speedup table.)
const sampledIPCTolerance = 0.10

// TestSampledAccuracyApps compares the sampled estimate against the full
// detailed run for every application × ISA at 4-way issue over the
// multi-address memory system, and checks the Sampled block's accounting.
func TestSampledAccuracyApps(t *testing.T) {
	sp := DefaultSampleSpec
	for _, app := range AppNames() {
		for _, i := range AllISAs {
			app, i := app, i
			t.Run(fmt.Sprintf("%s/%s", app, i), func(t *testing.T) {
				exact, err := RunApp(app, i, 4, DetailedMemory(MultiAddress), ScaleTest)
				if err != nil {
					t.Fatal(err)
				}
				res, err := RunAppSampled(app, i, 4, DetailedMemory(MultiAddress), ScaleTest, sp)
				if err != nil {
					t.Fatal(err)
				}
				if err := res.CheckInvariants(); err != nil {
					t.Fatalf("sampled result invariants: %v", err)
				}
				s := res.Sampled
				if s == nil {
					t.Fatal("sampled run carries no Sampled block")
				}

				// Accuracy: whole-run IPC estimate vs the exact run.
				exactIPC := exact.IPC()
				estIPC := float64(s.TotalInsts) / float64(s.EstCycles)
				relErr := (estIPC - exactIPC) / exactIPC
				if relErr < 0 {
					relErr = -relErr
				}
				t.Logf("exact IPC %.4f, sampled estimate %.4f (%.1f%% error, %d windows, stderr %.4f)",
					exactIPC, estIPC, 100*relErr, s.Intervals, s.IPCStdErr)
				if relErr > sampledIPCTolerance {
					t.Errorf("sampled IPC %.4f vs exact %.4f: %.1f%% error exceeds %.0f%% bound",
						estIPC, exactIPC, 100*relErr, 100*sampledIPCTolerance)
				}

				// Accounting: the stream is fully partitioned, coverage and
				// stderr are consistent with the window count.
				if s.TotalInsts != exact.Insts {
					t.Errorf("sampled TotalInsts %d, exact run has %d", s.TotalInsts, exact.Insts)
				}
				if got := s.MeasuredInsts + s.WarmupInsts + s.SkippedInsts; got != s.TotalInsts {
					t.Errorf("measured %d + warmup %d + skipped %d = %d, want TotalInsts %d",
						s.MeasuredInsts, s.WarmupInsts, s.SkippedInsts, got, s.TotalInsts)
				}
				if s.Intervals < 2 {
					t.Errorf("only %d measured windows; the stderr needs at least 2", s.Intervals)
				}
				if s.IPCStdErr <= 0 || s.IPCStdErr >= s.IPCMean {
					t.Errorf("stderr %.4f inconsistent with mean %.4f", s.IPCStdErr, s.IPCMean)
				}
				if res.Insts != s.MeasuredInsts {
					t.Errorf("aggregated Insts %d, want measured-window insts %d", res.Insts, s.MeasuredInsts)
				}
				if s.Coverage <= 0 || s.Coverage >= 1 {
					t.Errorf("coverage %.3f outside (0,1)", s.Coverage)
				}
			})
		}
	}
}

// TestSampledDisabledBitIdentical: with sampling compiled in but disabled
// (the zero spec), the sampled entry points must reproduce the exact path's
// Result verbatim — the regression guard for "exact mode stays default and
// bit-identical".
func TestSampledDisabledBitIdentical(t *testing.T) {
	exactK, err := RunKernel("idct", MOM, 4, DetailedMemory(MultiAddress), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	viaK, err := RunKernelSampled("idct", MOM, 4, DetailedMemory(MultiAddress), ScaleTest, SampleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exactK, viaK) {
		t.Errorf("disabled-spec kernel run differs from exact:\n%+v\nvs\n%+v", viaK, exactK)
	}

	exactA, err := RunApp("gsmencode", MOM, 4, DetailedMemory(MultiAddress), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	viaA, err := RunAppSampled("gsmencode", MOM, 4, DetailedMemory(MultiAddress), ScaleTest, SampleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exactA, viaA) {
		t.Errorf("disabled-spec app run differs from exact:\n%+v\nvs\n%+v", viaA, exactA)
	}
}

// TestSampledDeterministic: the sampled path replays bit-identically — the
// window re-anchoring offsets are deterministic, so two sampled runs of the
// same workload agree field for field.
func TestSampledDeterministic(t *testing.T) {
	a, err := RunAppSampled("jpegdecode", MOM, 4, DetailedMemory(MultiAddress), ScaleTest, DefaultSampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAppSampled("jpegdecode", MOM, 4, DetailedMemory(MultiAddress), ScaleTest, DefaultSampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two sampled runs differ:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFigure7Sampled: the sampled driver covers every Figure 7 row, each
// carrying the Sampled block with a whole-run cycle estimate, and the
// speed-up ratios stay close to the exact driver's.
func TestFigure7Sampled(t *testing.T) {
	exact, err := Figure7(context.Background(), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Figure7Sampled(context.Background(), ScaleTest, DefaultSampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled) != len(exact) {
		t.Fatalf("sampled driver produced %d rows, exact %d", len(sampled), len(exact))
	}
	byKey := map[string]AppSpeedup{}
	for _, r := range exact {
		byKey[fmt.Sprintf("%s/%s/%d", r.App, r.Config, r.Width)] = r
	}
	for _, r := range sampled {
		if r.Sampled == nil {
			t.Errorf("%s/%s/%d-way: sampled row has no Sampled block", r.App, r.Config, r.Width)
			continue
		}
		e, ok := byKey[fmt.Sprintf("%s/%s/%d", r.App, r.Config, r.Width)]
		if !ok {
			t.Errorf("sampled row %s/%s/%d has no exact counterpart", r.App, r.Config, r.Width)
			continue
		}
		if r.Insts != e.Insts {
			t.Errorf("%s/%s: sampled row reports %d insts, exact %d", r.App, r.Config, r.Insts, e.Insts)
		}
		relErr := (float64(r.Cycles) - float64(e.Cycles)) / float64(e.Cycles)
		if relErr < 0 {
			relErr = -relErr
		}
		// Looser than the 4-way bound: Figure 7 includes 8-way rows, whose
		// 150-instruction windows span fewer cycles and so sample noisier.
		if relErr > 1.5*sampledIPCTolerance {
			t.Errorf("%s/%s/%d-way: estimated %d cycles vs exact %d (%.1f%% error)",
				r.App, r.Config, r.Width, r.Cycles, e.Cycles, 100*relErr)
		}
	}
}
