package mom

// The trace artifact layer persists captured traces on disk so process
// restarts, CLI invocations and CI runs replay instead of re-emulating —
// the disk extension of the capture-once/replay-many methodology. Artifacts
// live in their own content-addressed store.Store (same atomic-write, LRU
// and corruption-reads-as-miss machinery as the result store, but a
// separate instance, so trace blobs and result documents never compete for
// one byte budget) keyed by (workload, ISA, scale, trace-format version).
// The layer is pure optimisation: a missing, damaged or version-skewed
// artifact reads as a miss and the workload is recaptured.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"sync/atomic"

	"repro/internal/isa"
	"repro/internal/store"
	"repro/internal/trace"
)

var artifactStore atomic.Pointer[store.Store]

// SetTraceArtifacts installs s as the process-wide trace artifact store
// consulted (and written through) by the trace cache; nil uninstalls it.
// Like the trace cache itself, the artifact store is process-global: every
// experiment driver in the process shares one fill path.
func SetTraceArtifacts(s *store.Store) { artifactStore.Store(s) }

// TraceArtifacts returns the installed artifact store, if any.
func TraceArtifacts() *store.Store { return artifactStore.Load() }

// OpenTraceArtifacts opens (or creates) a trace artifact store rooted at
// dir, bounded to maxBytes on disk (<= 0 disables the bound), and installs
// it process-wide.
func OpenTraceArtifacts(dir string, maxBytes int64) (*store.Store, error) {
	s, err := store.Open(dir, maxBytes)
	if err != nil {
		return nil, err
	}
	SetTraceArtifacts(s)
	return s, nil
}

// TraceArtifactStats reports the artifact store's counters; ok is false
// when no store is installed.
func TraceArtifactStats() (store.Stats, bool) {
	s := artifactStore.Load()
	if s == nil {
		return store.Stats{}, false
	}
	return s.Stats(), true
}

// TraceFetcher obtains a trace artifact's encoded bytes for a content
// address from somewhere other than the local disk — momserved installs one
// that asks the key's cluster owner over HTTP. ok=false means unavailable;
// the returned reader's bytes are verified by the artifact decoder, so a
// lying peer costs a recapture, never a wrong result.
type TraceFetcher func(key string) (rc io.ReadCloser, ok bool)

var traceFetcher atomic.Pointer[TraceFetcher]

// SetTraceFetcher installs the process-wide artifact fetcher consulted when
// the local artifact store misses; nil uninstalls it.
func SetTraceFetcher(f TraceFetcher) {
	if f == nil {
		traceFetcher.Store(nil)
		return
	}
	traceFetcher.Store(&f)
}

// traceArtifactDoc is the canonical JSON preimage of an artifact content
// address. The format version is part of the key, so an encoding change
// misses on every old artifact instead of misreading old bytes; width,
// cache mode and memory model are deliberately absent — a dynamic trace
// depends only on (workload, ISA, scale).
type traceArtifactDoc struct {
	Format int    `json:"format"`
	Kind   string `json:"kind"` // "kernel" or "app"
	Name   string `json:"name"`
	ISA    string `json:"isa"`
	Scale  string `json:"scale"`
}

// TraceArtifactKey returns the content address a workload's trace artifact
// is stored under.
func TraceArtifactKey(app bool, name string, i ISA, sc Scale) string {
	kind := "kernel"
	if app {
		kind = "app"
	}
	scale := "test"
	if sc == ScaleBench {
		scale = "bench"
	}
	doc, err := json.Marshal(traceArtifactDoc{
		Format: trace.FormatVersion, Kind: kind, Name: name, ISA: i.String(), Scale: scale,
	})
	if err != nil {
		panic("mom: trace artifact doc: " + err.Error()) // fixed shape; cannot fail
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

func (k traceKey) artifactKey() string {
	return TraceArtifactKey(k.app, k.name, k.isa, k.scale)
}

// program rebuilds the workload's static program — the builders are
// deterministic, so this is the program the artifact's fingerprint is
// checked against.
func (k traceKey) program() (*isa.Program, error) {
	if k.app {
		return BuildApp(k.name, k.isa, k.scale)
	}
	return BuildKernel(k.name, k.isa, k.scale)
}

// decodeBudgeted materialises an artifact under the shared RAM trace-cache
// budget, with the same quantum-free exact reservations the capture path
// uses (DecodeGranted reserves each chunk's cost before materialising it).
// budgetRefused distinguishes "would not fit in RAM right now" — the
// artifact is fine, replay can stream it — from corruption.
func decodeBudgeted(r io.Reader, prog *isa.Program) (tr *trace.Trace, budgetRefused bool, err error) {
	reserve := func(n int64) bool {
		traceCache.mu.Lock()
		defer traceCache.mu.Unlock()
		if traceCache.bytes+traceCache.reserved+n > TraceCacheBytes {
			return false
		}
		traceCache.reserved += n
		return true
	}
	tr, granted, err := trace.DecodeGranted(r, prog, reserve)
	traceCache.mu.Lock()
	traceCache.reserved -= granted
	if err == nil {
		traceCache.bytes += tr.Bytes()
	}
	traceCache.mu.Unlock()
	if err != nil {
		if errors.Is(err, trace.ErrTooLarge) {
			return nil, true, err
		}
		return nil, false, err
	}
	return tr, false, nil
}

// loadArtifact fills one empty RAM-cache slot from the artifact layer:
// local disk first, then the peer fetcher, either decoding under the RAM
// budget. A fetched artifact is written through to the local store so the
// next restart finds it on disk. tr == nil with budgetRefused == true means
// a valid artifact exists but cannot be materialised within TraceCacheBytes
// right now; runTraced streams it from disk instead of running live.
func loadArtifact(key traceKey) (tr *trace.Trace, budgetRefused bool) {
	st := artifactStore.Load()
	f := traceFetcher.Load()
	if st == nil && f == nil {
		return nil, false
	}
	prog, err := key.program()
	if err != nil {
		return nil, false // capture will report the same fault permanently
	}
	akey := key.artifactKey()
	if st != nil {
		if rc, _, ok := st.GetStream(akey); ok {
			tr, refused, err := decodeBudgeted(rc, prog)
			rc.Close()
			switch {
			case tr != nil:
				traceStats.diskHits.Add(1)
				return tr, false
			case refused:
				return nil, true
			default:
				_ = err // corrupt artifact: drop it, fall through to refetch
				st.Invalidate(akey)
			}
		}
		traceStats.diskMisses.Add(1)
	}
	if f != nil {
		if rc, ok := (*f)(akey); ok {
			tr, refused, _ := decodeBudgeted(rc, prog)
			rc.Close()
			switch {
			case tr != nil:
				traceStats.peerFetches.Add(1)
				fillArtifact(st, akey, tr)
				return tr, false
			case refused:
				return nil, true
			}
		}
	}
	return nil, false
}

// encodeArtifact renders a trace's artifact bytes.
func encodeArtifact(tr *trace.Trace) ([]byte, error) {
	buf := bytes.NewBuffer(make([]byte, 0, tr.EncodedSize()))
	if _, err := tr.WriteTo(buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// storeArtifact writes a fresh capture through to the artifact store. Best
// effort, like every store write: a failure only costs a future recapture.
func storeArtifact(key traceKey, tr *trace.Trace) {
	st := artifactStore.Load()
	if st == nil {
		return
	}
	blob, err := encodeArtifact(tr)
	if err != nil {
		return
	}
	if st.Put(key.artifactKey(), blob) == nil {
		traceStats.diskWrites.Add(1)
	}
}

// fillArtifact persists a peer-fetched trace locally (no overwrite).
func fillArtifact(st *store.Store, akey string, tr *trace.Trace) {
	if st == nil {
		return
	}
	blob, err := encodeArtifact(tr)
	if err != nil {
		return
	}
	if st.Fill(akey, blob) == nil {
		traceStats.diskWrites.Add(1)
	}
}

// openArtifactStream opens a streaming replay source over the local disk
// artifact for key; the caller owns the closer. A header that fails to
// verify drops the artifact and misses.
func openArtifactStream(key traceKey) (*trace.Stream, io.Closer, bool) {
	st := artifactStore.Load()
	if st == nil {
		return nil, nil, false
	}
	prog, err := key.program()
	if err != nil {
		return nil, nil, false
	}
	akey := key.artifactKey()
	rc, _, ok := st.GetStream(akey)
	if !ok {
		return nil, nil, false
	}
	s, err := trace.NewStream(rc, prog)
	if err != nil {
		rc.Close()
		st.Invalidate(akey)
		return nil, nil, false
	}
	return s, rc, true
}

// invalidateArtifact drops the local artifact for key (used when a
// streaming replay surfaces corruption mid-file).
func invalidateArtifact(key traceKey) {
	if st := artifactStore.Load(); st != nil {
		st.Invalidate(key.artifactKey())
	}
}
