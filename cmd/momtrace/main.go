// Command momtrace executes a kernel functionally and reports dynamic
// statistics: operation mix, vector-length histogram and the stride
// distribution of MOM memory accesses (the inputs to the cache-organisation
// discussion of Section 4.2).
//
//	momtrace -kernel motion1 -isa MOM
//	momtrace -app gsmencode -isa MOM -stats   # trace-encoding statistics
//	momtrace -kernel idct -isa MOM -profile   # timed run + cycle attribution
//	momtrace -kernel idct -isa MOM -hot       # per-PC hotspot listing
//	momtrace -kernel idct -pipe t.json -konata t.kanata   # pipeline traces
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	mom "repro"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// extOf maps the public ISA selector to the internal extension level.
func extOf(level mom.ISA) isa.Ext {
	switch level {
	case mom.Alpha:
		return isa.ExtAlpha
	case mom.MMX:
		return isa.ExtMMX
	case mom.MDMX:
		return isa.ExtMDMX
	}
	return isa.ExtMOM
}

// maxSteps caps dynamic instructions, mirroring the library's own limit.
const maxSteps = 400_000_000

func main() {
	var (
		kernel   = flag.String("kernel", "motion1", "kernel name")
		app      = flag.String("app", "", "application name (overrides -kernel)")
		isaStr   = flag.String("isa", "MOM", "ISA: Alpha|MMX|MDMX|MOM")
		stats    = flag.Bool("stats", false, "record the trace and report encoding and capture/replay statistics")
		profile  = flag.Bool("profile", false, "also run the timing simulator (4-way, perfect memory) and report the cycle-attribution breakdown")
		hot      = flag.Bool("hot", false, "also run the timing simulator and print the per-PC hotspot listing (annotated disassembly)")
		pipe     = flag.String("pipe", "", "write a Chrome trace-event JSON pipeline trace (Perfetto) to this file")
		konata   = flag.String("konata", "", "write a Kanata pipeline log (Konata viewer) to this file")
		trStart  = flag.Uint64("trace-start", 0, "first dynamic instruction the pipeline trace records")
		trInsts  = flag.Uint64("trace-insts", 10000, "dynamic instructions the pipeline trace records (0 = to end of run)")
		storeDir = flag.String("store", "", "trace artifact store directory (capture/replay through it; -export/-import use it too)")
		export   = flag.String("export", "", "write the workload's trace artifact to this file and exit")
		imp      = flag.String("import", "", "read a trace artifact file, verify it against the workload, store it (with -store) and exit")
	)
	flag.Parse()

	level, err := checkFlags(*isaStr, *kernel, *app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "momtrace:", err)
		os.Exit(2)
	}
	var p *isa.Program
	if *app != "" {
		p, err = mom.BuildApp(*app, level, mom.ScaleTest)
	} else {
		p, err = mom.BuildKernel(*kernel, level, mom.ScaleTest)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "momtrace:", err)
		os.Exit(1)
	}
	if *storeDir != "" {
		if _, err := mom.OpenTraceArtifacts(*storeDir, 0); err != nil {
			fmt.Fprintln(os.Stderr, "momtrace:", err)
			os.Exit(1)
		}
	}
	workload := *kernel
	if *app != "" {
		workload = *app
	}
	if *imp != "" {
		importArtifact(*imp, p, *app != "", workload, level)
		return
	}
	if *export != "" {
		exportArtifact(*export, *app != "", workload, level)
		return
	}

	// The analysis consumes any trace.Source. Without -stats it reads the
	// live emulator directly; with -stats it first records the trace
	// (timing the capture), reports the encoding, and analyses the replay.
	var src trace.Source = trace.NewLive(emu.New(p))
	if *stats {
		t0 := time.Now()
		tr, err := trace.Capture(emu.New(p), maxSteps, 1<<34)
		if err != nil {
			fmt.Fprintln(os.Stderr, "momtrace: capture:", err)
			os.Exit(1)
		}
		captureT := time.Since(t0)

		t0 = time.Now()
		r := tr.Reader()
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		replayT := time.Since(t0)

		fmt.Printf("trace encoding: %s\n", p.Name)
		fmt.Printf("  records       %12d\n", tr.Records())
		fmt.Printf("  chunks        %12d\n", tr.Chunks())
		fmt.Printf("  bytes         %12d (%.2f bytes/record)\n",
			tr.Bytes(), float64(tr.Bytes())/float64(tr.Records()))
		fmt.Printf("  capture       %12v (%.1f Minsts/s)\n",
			captureT.Round(time.Microsecond),
			float64(tr.Records())/captureT.Seconds()/1e6)
		fmt.Printf("  replay drain  %12v (%.1f Minsts/s, %.1fx capture)\n",
			replayT.Round(time.Microsecond),
			float64(tr.Records())/replayT.Seconds()/1e6,
			captureT.Seconds()/replayT.Seconds())

		// Skip-drain: fast-forward over the whole trace without
		// reconstructing records — the cursor a sampled run uses to jump
		// between detailed windows. The Pos/Skipped counters confirm the
		// cursor accounts for every record it passed.
		t0 = time.Now()
		sr := tr.Reader()
		skipped := sr.Skip(tr.Records())
		skipT := time.Since(t0)
		fmt.Printf("  skip drain    %12v (%.1f Minsts/s, %.1fx replay; pos %d, skipped %d)\n",
			skipT.Round(time.Microsecond),
			float64(skipped)/max(skipT.Seconds(), 1e-9)/1e6,
			replayT.Seconds()/max(skipT.Seconds(), 1e-9),
			sr.Pos(), sr.Skipped())

		// Checkpoint sweep: phase 1 of parallel sampled simulation — one
		// functional-warming pass (default regime, 4-way multi-address)
		// that materialises the per-window checkpoints the interval
		// workers replay from.
		sim := cpu.New(cpu.NewConfig(4, extOf(level)),
			mem.NewHierarchy(mem.HierConfig{Width: 4, Mode: mem.ModeMultiAddress}))
		spec := cpu.SampleSpec{
			Period:   mom.DefaultSampleSpec.Period,
			Warmup:   mom.DefaultSampleSpec.Warmup,
			Interval: mom.DefaultSampleSpec.Interval,
		}
		t0 = time.Now()
		sw, err := sim.SweepCheckpoints(tr, maxSteps, spec)
		sweepT := time.Since(t0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "momtrace: checkpoint sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("  ckpt sweep    %12v (%d checkpoints, %.1f KB snapshots, %.1f Minsts/s)\n",
			sweepT.Round(time.Microsecond),
			sw.Checkpoints,
			float64(sw.SnapshotBytes)/1024,
			float64(sw.Insts)/max(sweepT.Seconds(), 1e-9)/1e6)

		// With a store installed, run the same workload through the full
		// artifact layer (disk fill or capture + write-through) and report
		// what the disk did.
		if _, ok := mom.TraceArtifactStats(); ok {
			before := mom.ReadTraceStats()
			if mom.CaptureWorkloadTrace(*app != "", workload, level, mom.ScaleTest) == nil {
				fmt.Fprintln(os.Stderr, "momtrace: artifact-layer capture failed")
				os.Exit(1)
			}
			after := mom.ReadTraceStats()
			st, _ := mom.TraceArtifactStats()
			fmt.Printf("  artifacts     disk hits %d, misses %d, writes %d; store holds %d artifacts, %.1f MB\n",
				after.DiskHits-before.DiskHits, after.DiskMisses-before.DiskMisses,
				after.DiskWrites-before.DiskWrites, st.Entries, float64(st.Bytes)/(1<<20))
		}
		fmt.Println()
		src = tr.Reader()
	}

	classCount := map[isa.Class]uint64{}
	vlHist := map[int]uint64{}
	strideHist := map[int64]uint64{}
	var total, wordOps, taken, branches uint64
	for {
		d, ok := src.Next()
		if !ok {
			break
		}
		total++
		classCount[d.Class]++
		switch {
		case d.Class == isa.ClassBranch:
			branches++
			if d.Taken {
				taken++
			}
		case d.Class.IsVector():
			vlHist[d.VL]++
			wordOps += uint64(d.VL)
			if d.Class.IsMem() {
				strideHist[d.Stride]++
			}
		default:
			wordOps++
		}
	}
	if err := src.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "momtrace:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: %d dynamic instructions, %d word-operations (%.2f per inst)\n",
		p.Name, total, wordOps, float64(wordOps)/float64(total))
	fmt.Printf("branches: %d (%.1f%% taken)\n\n", branches, 100*float64(taken)/float64(max(branches, 1)))

	fmt.Println("operation mix:")
	type kv struct {
		k string
		v uint64
	}
	var mix []kv
	for c, n := range classCount {
		mix = append(mix, kv{c.String(), n})
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].v > mix[j].v })
	for _, e := range mix {
		fmt.Printf("  %-8s %10d (%.1f%%)\n", e.k, e.v, 100*float64(e.v)/float64(total))
	}

	if len(vlHist) > 0 {
		fmt.Println("\nvector length histogram:")
		var vls []int
		for vl := range vlHist {
			vls = append(vls, vl)
		}
		sort.Ints(vls)
		for _, vl := range vls {
			fmt.Printf("  VL=%-3d %10d\n", vl, vlHist[vl])
		}
	}
	if len(strideHist) > 0 {
		fmt.Println("\nvector memory stride histogram (bytes):")
		var strides []int64
		for s := range strideHist {
			strides = append(strides, s)
		}
		sort.Slice(strides, func(i, j int) bool { return strides[i] < strides[j] })
		for _, s := range strides {
			fmt.Printf("  stride %-6d %10d\n", s, strideHist[s])
		}
	}

	if *profile {
		var r mom.Result
		if *app != "" {
			r, err = mom.RunApp(*app, level, 4, mom.PerfectMemory(1), mom.ScaleTest)
		} else {
			r, err = mom.RunKernel(*kernel, level, 4, mom.PerfectMemory(1), mom.ScaleTest)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "momtrace:", err)
			os.Exit(1)
		}
		if err := r.CheckInvariants(); err != nil {
			fmt.Fprintln(os.Stderr, "momtrace:", err)
			os.Exit(1)
		}
		fmt.Printf("\ncycle attribution (4-way, %s memory): %d cycles, IPC %.3f\n",
			r.MemName, r.Cycles, r.IPC())
		for _, b := range r.Profile.Buckets() {
			if b.Cycles == 0 {
				continue
			}
			fmt.Printf("  %-10s %12d (%.1f%%)\n", b.Name, b.Cycles, 100*float64(b.Cycles)/float64(r.Cycles))
		}
	}

	if *hot {
		var rep mom.HotspotReport
		if *app != "" {
			rep, err = mom.AppHotspots(*app, level, 4, mom.PerfectMemory(1), mom.ScaleTest)
		} else {
			rep, err = mom.KernelHotspots(*kernel, level, 4, mom.PerfectMemory(1), mom.ScaleTest)
		}
		if err == nil {
			err = rep.CheckInvariants()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "momtrace:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(mom.FormatHotspots([]mom.HotspotReport{rep}))
	}

	if *pipe != "" || *konata != "" {
		opt := mom.PipelineOptions{Start: *trStart, Count: *trInsts}
		var files []*os.File
		open := func(path string) *os.File {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "momtrace:", err)
				os.Exit(1)
			}
			files = append(files, f)
			return f
		}
		if *konata != "" {
			opt.Konata = open(*konata)
		}
		if *pipe != "" {
			opt.Chrome = open(*pipe)
		}
		var exp mom.PipelineExport
		if *app != "" {
			exp, err = mom.ExportAppPipeline(*app, level, 4, mom.PerfectMemory(1), mom.ScaleTest, opt)
		} else {
			exp, err = mom.ExportKernelPipeline(*kernel, level, 4, mom.PerfectMemory(1), mom.ScaleTest, opt)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "momtrace:", err)
			os.Exit(1)
		}
		for _, f := range files {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "momtrace:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("\npipeline trace: %d of %d instructions (window %d+%d)",
			exp.Recorded, exp.Result.Insts, *trStart, *trInsts)
		if *konata != "" {
			fmt.Printf(" -> %s", *konata)
		}
		if *pipe != "" {
			fmt.Printf(" -> %s", *pipe)
		}
		fmt.Println()
	}
}

// exportArtifact writes one workload's trace artifact to a file: the
// single-file interchange form of the on-disk store (momtrace -import reads
// it back, anywhere). The trace comes through the artifact layer, so a warm
// -store serves it without re-capturing.
func exportArtifact(path string, app bool, name string, level mom.ISA) {
	tr := mom.CaptureWorkloadTrace(app, name, level, mom.ScaleTest)
	if tr == nil {
		fmt.Fprintln(os.Stderr, "momtrace: capture failed")
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "momtrace:", err)
		os.Exit(1)
	}
	n, err := tr.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "momtrace: export:", err)
		os.Exit(1)
	}
	fmt.Printf("exported %s: %d records, %d bytes -> %s\n", name, tr.Records(), n, path)
}

// importArtifact reads a trace artifact file, verifies it against the named
// workload (format version, fingerprint, per-frame checksums — a damaged or
// mismatched file is rejected, never half-adopted) and, when a -store is
// open, persists the verified bytes under the workload's content address.
func importArtifact(path string, p *isa.Program, app bool, name string, level mom.ISA) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "momtrace:", err)
		os.Exit(1)
	}
	tr, err := trace.Decode(bytes.NewReader(blob), p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "momtrace: %s does not hold a valid trace of %s: %v\n", path, name, err)
		os.Exit(1)
	}
	fmt.Printf("imported %s: %d records, %d chunks, %d bytes\n", path, tr.Records(), tr.Chunks(), len(blob))
	if s := mom.TraceArtifacts(); s != nil {
		key := mom.TraceArtifactKey(app, name, level, mom.ScaleTest)
		if err := s.Put(key, blob); err != nil {
			fmt.Fprintln(os.Stderr, "momtrace: store:", err)
			os.Exit(1)
		}
		fmt.Printf("stored under %s\n", key)
	}
}

// checkFlags validates the -isa/-kernel/-app combination up front so a typo
// fails with the list of valid names instead of a mid-run build error.
func checkFlags(isaStr, kernel, app string) (mom.ISA, error) {
	level, err := mom.ParseISA(isaStr)
	if err != nil {
		return 0, err
	}
	kernelSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "kernel" {
			kernelSet = true
		}
	})
	if app != "" && kernelSet {
		return 0, fmt.Errorf("-kernel and -app are mutually exclusive (kernels: %s; apps: %s)",
			strings.Join(mom.KernelNames(), ", "), strings.Join(mom.AppNames(), ", "))
	}
	if app != "" {
		for _, n := range mom.AppNames() {
			if n == app {
				return level, nil
			}
		}
		return 0, fmt.Errorf("unknown app %q (valid: %s)", app, strings.Join(mom.AppNames(), ", "))
	}
	for _, n := range mom.KernelNames() {
		if n == kernel {
			return level, nil
		}
	}
	return 0, fmt.Errorf("unknown kernel %q (valid: %s)", kernel, strings.Join(mom.KernelNames(), ", "))
}
