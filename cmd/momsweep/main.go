// Command momsweep runs a declarative design-space sweep and reports the
// Pareto frontiers: cycles versus register-file area (the Table 2 model)
// and best IPC versus memory configuration. The grid comes from a JSON
// spec file, from axis flags, or both (flags override the spec's axes);
// it executes in-process or against a momserver. Examples:
//
//	momsweep -spec examples/sweeps/motion-width.json            # in-process
//	momsweep -spec grid.json -store /var/cache/mom              # memoised
//	momsweep -spec grid.json -server http://127.0.0.1:8347      # remote
//	momsweep -exps kernel -kernels idct -isas MMX,MOM -widths 2,4,8
//	momsweep -spec grid.json -refine                            # exact-refine the frontier
//	momsweep -spec grid.json -expand                            # show the grid, run nothing
//	momsweep -spec grid.json -server http://host:8347 -resume   # skip stored points
//
// The report goes to stdout (-format table|csv|json); the execution
// summary (points, store hits, computes, retries) goes to stderr, so
// report documents never vary with how the sweep executed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	mom "repro"
	"repro/internal/store"
	"repro/internal/sweep"
)

func main() {
	var (
		specPath = flag.String("spec", "", "sweep spec JSON file (see the design-space sweeps section of EXPERIMENTS.md)")
		name     = flag.String("name", "", "override the sweep's report label")
		exps     = flag.String("exps", "", "comma-separated experiments to grid over (overrides the spec)")
		scales   = flag.String("scales", "", "comma-separated workload scales (overrides the spec)")
		widths   = flag.String("widths", "", "comma-separated issue widths (overrides the spec)")
		isas     = flag.String("isas", "", "comma-separated ISA levels (overrides the spec)")
		mems     = flag.String("mems", "", "comma-separated memory models (overrides the spec)")
		kernels  = flag.String("kernels", "", "comma-separated kernels (overrides the spec)")
		apps     = flag.String("apps", "", "comma-separated applications (overrides the spec)")
		samples  = flag.String("samples", "", "comma-separated sampling regimes, period:warmup:interval (overrides the spec; \"exact\" = exact)")
		refine   = flag.Bool("refine", false, "re-run the sampled Pareto-frontier points exact to confirm the ranking")
		expand   = flag.Bool("expand", false, "print the expanded grid (count and keys) without running it")

		server     = flag.String("server", "", "execute against this momserver base URL instead of in-process")
		storeDir   = flag.String("store", "", "in-process only: memoise results in this content-addressed store directory")
		resume     = flag.Bool("resume", false, "skip grid points whose results are already stored (needs -store or -server)")
		traceDir   = flag.String("trace-store", "", "in-process only: persist captured traces in this artifact store directory")
		traceBytes = flag.Int64("trace-store-bytes", 1<<31, "trace artifact store size bound in bytes (<=0: unbounded)")
		parN       = flag.Int("par", 0, "in-process worker count (0 = all host cores)")
		jobMS      = flag.Int64("job-timeout-ms", 0, "remote only: per-job deadline hint sent to the server (0 = server default)")
		timeout    = flag.Duration("timeout", 0, "overall wall-clock budget for the sweep (0 = none)")

		format = flag.String("format", "table", "report format: table|csv|json")
		asJSON = flag.Bool("json", false, "emit JSON (shorthand for -format json)")
	)
	flag.Parse()

	spec, err := loadSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	if *name != "" {
		spec.Name = *name
	}
	override(&spec.Exps, *exps)
	override(&spec.Scales, *scales)
	override(&spec.ISAs, *isas)
	override(&spec.Mems, *mems)
	override(&spec.Kernels, *kernels)
	override(&spec.Apps, *apps)
	if *samples != "" {
		// "exact" names the empty (exact) regime, which a comma list cannot
		// otherwise express.
		spec.Samples = nil
		for _, s := range splitList(*samples) {
			if s == "exact" {
				s = ""
			}
			spec.Samples = append(spec.Samples, s)
		}
	}
	if *refine {
		spec.Refine = true
	}
	if *widths != "" {
		spec.Widths = nil
		for _, w := range splitList(*widths) {
			n, err := strconv.Atoi(w)
			if err != nil {
				fatal(fmt.Errorf("-widths: %q is not an integer", w))
			}
			spec.Widths = append(spec.Widths, n)
		}
	}

	if *expand {
		reqs, err := spec.Expand()
		if err != nil {
			fatal(err)
		}
		keys, err := mom.Keys(reqs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d unique points\n", len(reqs))
		for i, r := range reqs {
			fmt.Printf("  %s  %s\n", keys[i][:16], describe(r))
		}
		return
	}

	outFormat := *format
	if *asJSON {
		outFormat = "json"
	}
	switch outFormat {
	case "table", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (valid: table, csv, json)", outFormat))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var ex sweep.Executor
	switch {
	case *server != "":
		if *storeDir != "" || *parN != 0 {
			fatal(fmt.Errorf("-store and -par configure the in-process path and cannot be combined with -server"))
		}
		if *traceDir != "" {
			fatal(fmt.Errorf("-trace-store configures in-process trace capture; the server manages its own (momserver -trace-store)"))
		}
		ex = &sweep.Client{Base: strings.TrimRight(*server, "/"), TimeoutMS: *jobMS, Resume: *resume}
	default:
		if *jobMS != 0 {
			fatal(fmt.Errorf("-job-timeout-ms needs -server (in-process runs are bounded by -timeout)"))
		}
		if *resume && *storeDir == "" {
			fatal(fmt.Errorf("-resume skips points already stored, so it needs -store or -server"))
		}
		var st *store.Store
		if *storeDir != "" {
			st, err = store.Open(*storeDir, 0)
			if err != nil {
				fatal(err)
			}
		}
		if *traceDir != "" {
			if _, err := mom.OpenTraceArtifacts(*traceDir, *traceBytes); err != nil {
				fatal(err)
			}
		}
		ex = &sweep.Local{Par: *parN, Store: st, Resume: *resume}
	}

	rep, stats, err := sweep.Run(ctx, spec, ex)
	fmt.Fprintf(os.Stderr, "momsweep: %s\n", stats)
	if err != nil {
		fatal(err)
	}
	switch outFormat {
	case "json":
		err = rep.WriteJSON(os.Stdout)
	case "csv":
		err = rep.WriteCSV(os.Stdout)
	default:
		err = rep.WriteTable(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

// loadSpec reads the spec file ("-" = stdin); no file means an empty spec
// the axis flags must fill.
func loadSpec(path string) (mom.SweepSpec, error) {
	if path == "" {
		return mom.SweepSpec{}, nil
	}
	var (
		data []byte
		err  error
	)
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return mom.SweepSpec{}, err
	}
	return mom.ParseSweepSpec(data)
}

// override replaces a spec axis with a comma-separated flag value when
// the flag was given.
func override(axis *[]string, flagVal string) {
	if flagVal != "" {
		*axis = splitList(flagVal)
	}
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// describe renders one grid point for -expand.
func describe(r mom.JobRequest) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s scale=%s", r.Exp, r.Scale)
	if r.Kernel != "" {
		fmt.Fprintf(&b, " kernel=%s", r.Kernel)
	}
	if r.App != "" {
		fmt.Fprintf(&b, " app=%s", r.App)
	}
	if r.ISA != "" {
		fmt.Fprintf(&b, " isa=%s", r.ISA)
	}
	if r.Width != 0 {
		fmt.Fprintf(&b, " width=%d", r.Width)
	}
	if r.Mem != "" {
		fmt.Fprintf(&b, " mem=%s", r.Mem)
	}
	if s := r.Sample().String(); s != "" {
		fmt.Fprintf(&b, " sample=%s", s)
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "momsweep:", err)
	os.Exit(1)
}
