// Command momserver serves the paper's experiments as a concurrent job
// service with a persistent content-addressed result store. Submit a job,
// poll it, fetch its canonical JSON document; identical requests are
// served from the store byte-for-byte.
//
//	momserver -addr :8344 -store ./momstore &
//	curl -s -X POST localhost:8344/v1/jobs -d '{"exp":"fig5","scale":"test"}'
//	curl -s -X POST localhost:8344/v1/jobs \
//	    -d '{"exp":"fig7","sample_period":1501,"sample_warmup":100,"sample_interval":150}'
//	curl -s localhost:8344/v1/jobs/j00000001          # poll state
//	curl -s localhost:8344/v1/jobs/j00000001/result   # the fig7 document
//	curl -s localhost:8344/metrics                    # Prometheus text
//
// Sampled and exact requests normalise to different content-address keys,
// so their stored documents never collide; /metrics splits admitted jobs
// by experiment and mode (momserved_jobs_submitted_total).
//
// SIGINT/SIGTERM drain the service: new submissions get 503, accepted
// jobs finish (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8344", "listen address")
		storeDir   = flag.String("store", "momstore", "result store directory (empty: no store, recompute always)")
		storeBytes = flag.Int64("store-bytes", 256<<20, "result store size bound in bytes (<=0: unbounded)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job workers")
		queueCap   = flag.Int("queue", 64, "admission queue capacity (full queue answers 429)")
		timeout    = flag.Duration("timeout", 10*time.Minute, "default per-job deadline")
		maxTimeout = flag.Duration("max-timeout", time.Hour, "upper clamp on requested per-job deadlines")
		drain      = flag.Duration("drain", 2*time.Minute, "how long shutdown waits for in-flight jobs")
		peers      = flag.String("peers", "", "comma-separated base URLs of every cluster node, this one included (empty: single node)")
		self       = flag.String("self", "", "this node's base URL as it appears in -peers (required with -peers)")
	)
	flag.Parse()
	log.SetPrefix("momserver: ")
	log.SetFlags(log.LstdFlags)

	cfg := serve.Config{
		Workers:        *workers,
		QueueCap:       *queueCap,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, *storeBytes)
		if err != nil {
			log.Fatal(err)
		}
		s := st.Stats()
		log.Printf("store %s: %d entries, %.1f MB (bound %.1f MB)",
			*storeDir, s.Entries, float64(s.Bytes)/(1<<20), float64(*storeBytes)/(1<<20))
		cfg.Store = st
	}
	if *peers != "" {
		ps, err := serve.NewPeerSet(*self, strings.Split(*peers, ","))
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("cluster of %d peers, self %s", ps.Size(), ps.Self())
		cfg.Peers = ps
	}
	srv := serve.New(cfg)
	hs := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d workers, queue %d)", *addr, *workers, *queueCap)
		errc <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case got := <-sig:
		log.Printf("%v: draining (up to %v)", got, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting HTTP first, then wait for the worker pool to
		// finish every accepted job.
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
			os.Exit(1)
		}
		if cfg.Store != nil {
			s := cfg.Store.Stats()
			fmt.Printf("store: %d entries, %.1f MB, %d hits, %d misses, %d evictions\n",
				s.Entries, float64(s.Bytes)/(1<<20), s.Hits, s.Misses, s.Evictions)
		}
		log.Print("drained cleanly")
	}
}
