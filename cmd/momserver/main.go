// Command momserver serves the paper's experiments as a concurrent job
// service with a persistent content-addressed result store. Submit a job,
// poll it, fetch its canonical JSON document; identical requests are
// served from the store byte-for-byte.
//
//	momserver -addr :8344 -store ./momstore &
//	curl -s -X POST localhost:8344/v1/jobs -d '{"exp":"fig5","scale":"test"}'
//	curl -s -X POST localhost:8344/v1/jobs \
//	    -d '{"exp":"fig7","sample_period":1501,"sample_warmup":100,"sample_interval":150}'
//	curl -s localhost:8344/v1/jobs/j00000001          # poll state
//	curl -s localhost:8344/v1/jobs/j00000001/result   # the fig7 document
//	curl -s localhost:8344/metrics                    # Prometheus text
//	curl -s localhost:8344/debug/flights              # recent job timelines
//
// Sampled and exact requests normalise to different content-address keys,
// so their stored documents never collide; /metrics splits admitted jobs
// by experiment and mode (momserved_jobs_submitted_total).
//
// Observability: every submission gets a request ID and a trace context
// (propagated across peer hops via the Mom-Trace header), the flight
// recorder keeps recent per-stage job timelines behind /debug/flights
// (add ?format=chrome for a chrome://tracing document), logging is
// structured (-log-format text|json, -log-level, request IDs on every
// job line, slow-job warnings past -slow-job), and -debug mounts
// net/http/pprof under /debug/pprof.
//
// SIGINT/SIGTERM drain the service: new submissions get 503, accepted
// jobs finish (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	mom "repro"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8344", "listen address")
		storeDir   = flag.String("store", "momstore", "result store directory (empty: no store, recompute always)")
		storeBytes = flag.Int64("store-bytes", 256<<20, "result store size bound in bytes (<=0: unbounded)")
		traceDir   = flag.String("trace-store", "", "trace artifact store directory (empty: no persistence, recapture on restart)")
		traceBytes = flag.Int64("trace-store-bytes", 1<<31, "trace artifact store size bound in bytes (<=0: unbounded)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job workers")
		queueCap   = flag.Int("queue", 64, "admission queue capacity (full queue answers 429)")
		timeout    = flag.Duration("timeout", 10*time.Minute, "default per-job deadline")
		maxTimeout = flag.Duration("max-timeout", time.Hour, "upper clamp on requested per-job deadlines")
		drain      = flag.Duration("drain", 2*time.Minute, "how long shutdown waits for in-flight jobs")
		peers      = flag.String("peers", "", "comma-separated base URLs of every cluster node, this one included (empty: single node)")
		self       = flag.String("self", "", "this node's base URL as it appears in -peers (required with -peers)")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		logFormat  = flag.String("log-format", "text", "log encoding: text|json")
		slowJob    = flag.Duration("slow-job", 30*time.Second, "flights slower than this log a warning (0 disables)")
		flights    = flag.Int("flights", 256, "completed flights retained for /debug/flights")
		debug      = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof")
	)
	flag.Parse()

	logger, err := buildLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "momserver:", err)
		os.Exit(1)
	}
	fatal := func(err error) {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}

	cfg := serve.Config{
		Workers:        *workers,
		QueueCap:       *queueCap,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Logger:         logger,
		SlowJob:        *slowJob,
		FlightLog:      *flights,
		EnablePprof:    *debug,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, *storeBytes)
		if err != nil {
			fatal(err)
		}
		s := st.Stats()
		logger.Info("store opened", "dir", *storeDir, "entries", s.Entries,
			"bytes", s.Bytes, "bound_bytes", *storeBytes)
		cfg.Store = st
	}
	if *traceDir != "" {
		// The artifact store is installed process-wide: the trace cache
		// consults it before re-capturing, so a restart against a warm
		// directory replays previously-traced workloads from disk.
		st, err := mom.OpenTraceArtifacts(*traceDir, *traceBytes)
		if err != nil {
			fatal(err)
		}
		s := st.Stats()
		logger.Info("trace store opened", "dir", *traceDir, "entries", s.Entries,
			"bytes", s.Bytes, "bound_bytes", *traceBytes)
		cfg.TraceStore = st
	}
	if *peers != "" {
		ps, err := serve.NewPeerSet(*self, strings.Split(*peers, ","))
		if err != nil {
			fatal(err)
		}
		logger.Info("cluster configured", "peers", ps.Size(), "self", ps.Self())
		cfg.Peers = ps
	}
	srv := serve.New(cfg)
	hs := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers,
			"queue", *queueCap, "pprof", *debug)
		errc <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case got := <-sig:
		logger.Info("draining", "signal", got.String(), "limit", drain.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting HTTP first, then wait for the worker pool to
		// finish every accepted job.
		if err := hs.Shutdown(ctx); err != nil {
			logger.Error("http shutdown", "error", err.Error())
		}
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("drain incomplete", "error", err.Error())
			os.Exit(1)
		}
		if cfg.Store != nil {
			s := cfg.Store.Stats()
			logger.Info("store at exit", "entries", s.Entries, "bytes", s.Bytes,
				"hits", s.Hits, "misses", s.Misses, "evictions", s.Evictions)
		}
		if cfg.TraceStore != nil {
			s := cfg.TraceStore.Stats()
			ts := mom.ReadTraceStats()
			logger.Info("trace store at exit", "entries", s.Entries, "bytes", s.Bytes,
				"disk_hits", ts.DiskHits, "disk_writes", ts.DiskWrites,
				"peer_fetches", ts.PeerFetches, "stream_replays", ts.StreamReplays)
		}
		logger.Info("drained cleanly")
	}
}

// buildLogger assembles the slog handler the service logs through.
func buildLogger(w *os.File, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (valid: debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (valid: text, json)", format)
}
