// Command momsim runs the paper's experiments and prints paper-style
// tables. Examples:
//
//	momsim -exp fig5 -scale bench     # Figure 5 (kernel speed-ups)
//	momsim -exp latency               # Section 4.1 latency tolerance
//	momsim -exp fig7 -scale bench     # Figure 7 (application speed-ups)
//	momsim -exp table1 -isa MOM       # processor configurations
//	momsim -exp table2                # register file area comparison
//	momsim -exp table3                # memory model ports
//	momsim -exp fetch                 # fetch-pressure (ops per instruction)
//	momsim -exp profile               # cycle-attribution breakdown
//	momsim -exp profile -json         # same rows as machine-readable JSON
//	momsim -exp hotspots              # per-PC hotspot listings (annotated disassembly)
//	momsim -kernel motion1 -isa MOM -width 4   # one kernel run
//	momsim -app mpeg2decode -isa MOM -width 8 -cache vector
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	mom "repro"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment: fig5|latency|fig7|table1|table2|table3|fetch|profile|hotspots|isacount|all (or \"list\" to describe each)")
		scale    = flag.String("scale", "test", "workload scale: test|bench")
		isaStr   = flag.String("isa", "MOM", "ISA: Alpha|MMX|MDMX|MOM")
		width    = flag.Int("width", 4, "issue width: 1|2|4|8")
		kernel   = flag.String("kernel", "", "run a single kernel")
		app      = flag.String("app", "", "run a single application")
		cache    = flag.String("cache", "perfect", "memory: perfect|perfect50|conv|multi|vector|collapsing")
		sample   = flag.String("sample", "", "sampled simulation as period:warmup:interval dynamic instructions (fig7|profile|hotspots or single -kernel/-app runs); empty = exact")
		samPar   = flag.Int("sample-par", 0, "sampled-simulation worker count (0 = all host cores, 1 = serial; needs -sample; never changes results)")
		verify   = flag.Bool("verify", false, "verify every workload bit-exactly against the goldens")
		format   = flag.String("format", "table", "experiment output format: table|csv|json")
		asJSON   = flag.Bool("json", false, "emit JSON (shorthand for -format json; also applies to single runs)")
		verbose  = flag.Bool("v", false, "report trace capture/replay timing per experiment")
		traceDir = flag.String("trace-store", "", "persist captured traces in this directory and replay from it on later runs")
		traceMax = flag.Int64("trace-store-bytes", 1<<31, "trace artifact store size bound in bytes (<=0: unbounded; needs -trace-store)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	)
	flag.Parse()
	defer runAtExit()

	// Profiling applies to exact and sampled runs alike; the profile files
	// must be finalised even on the fatal() path, which exits through
	// runAtExit rather than the deferred stack.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		atExit(func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memProf != "" {
		path := *memProf
		atExit(func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "momsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "momsim: memprofile:", err)
			}
		})
	}

	// An interrupt (Ctrl-C / SIGTERM) cancels the experiment context:
	// par.For stops submitting work and the run exits promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sc := mom.ScaleTest
	if *scale == "bench" {
		sc = mom.ScaleBench
	}
	i, err := mom.ParseISA(*isaStr)
	if err != nil {
		fatal(err)
	}
	m, err := mom.ParseMemModel(*cache)
	if err != nil {
		fatal(err)
	}
	sp, err := mom.ParseSampleSpec(*sample)
	if err != nil {
		fatal(err)
	}
	if *traceDir != "" {
		if _, err := mom.OpenTraceArtifacts(*traceDir, *traceMax); err != nil {
			fatal(err)
		}
	}
	if sp.Enabled() && *verify {
		fatal(fmt.Errorf("-sample cannot be combined with -verify (verification is bit-exact by definition)"))
	}
	if *samPar < 0 {
		fatal(fmt.Errorf("-sample-par must be non-negative, got %d", *samPar))
	}
	if *samPar != 0 && *verify {
		fatal(fmt.Errorf("-sample-par cannot be combined with -verify (verification runs the exact path)"))
	}
	if *samPar != 0 && !sp.Enabled() {
		fatal(fmt.Errorf("-sample-par requires -sample (it parallelises the sampled windows)"))
	}
	sp.Parallelism = *samPar
	if *samPar > 1 && *exp != "" {
		for _, e := range strings.Split(*exp, ",") {
			if e == "hotspots" || e == "all" {
				fmt.Fprintln(os.Stderr, "momsim: note: hotspot attribution needs ordered per-instruction events; hotspot runs serialize regardless of -sample-par")
				break
			}
		}
	}
	if *exp != "" {
		// Validate every requested experiment up front, so a typo in a
		// comma-separated list fails with the valid names instead of
		// after the earlier experiments have already run.
		for _, e := range strings.Split(*exp, ",") {
			if err := checkExp(e); err != nil {
				fatal(err)
			}
		}
	}
	outFormat := *format
	if *asJSON {
		outFormat = "json"
	}

	switch {
	case *verify:
		for _, k := range mom.KernelNames() {
			for _, lv := range mom.AllISAs {
				if err := mom.VerifyKernel(k, lv, sc); err != nil {
					fatal(err)
				}
				fmt.Printf("ok  kernel %-14s %s\n", k, lv)
			}
		}
		for _, a := range mom.AppNames() {
			for _, lv := range mom.AllISAs {
				if err := mom.VerifyApp(a, lv, sc); err != nil {
					fatal(err)
				}
				fmt.Printf("ok  app    %-14s %s\n", a, lv)
			}
		}
	case *kernel != "":
		res, err := mom.RunKernelSampled(*kernel, i, *width, m, sc, sp)
		if err != nil {
			fatal(err)
		}
		emitResult(res, outFormat)
	case *app != "":
		res, err := mom.RunAppSampled(*app, i, *width, m, sc, sp)
		if err != nil {
			fatal(err)
		}
		emitResult(res, outFormat)
	case *exp != "":
		for _, e := range strings.Split(*exp, ",") {
			before := mom.ReadTraceStats()
			if err := runExperiment(ctx, e, sc, i, *width, sp, outFormat); err != nil {
				fatal(err)
			}
			if *verbose {
				printTraceStats(e, before, mom.ReadTraceStats())
			}
		}
	default:
		flag.Usage()
		runAtExit()
		os.Exit(2)
	}
}

func runExperiment(ctx context.Context, exp string, sc mom.Scale, i mom.ISA, width int, sp mom.SampleSpec, format string) error {
	asJSON := format == "json"
	asCSV := format == "csv"
	switch exp {
	case "fig7", "profile", "hotspots":
		// the sampled-capable drivers; handled below
	default:
		if sp.Enabled() {
			return fmt.Errorf("experiment %q does not support -sample (valid: fig7, profile, hotspots)", exp)
		}
	}
	switch exp {
	case "list":
		fmt.Print(expList())
	case "fig5":
		rows, err := mom.Figure5(ctx, sc)
		if err != nil {
			return err
		}
		switch {
		case asJSON:
			return mom.WriteExperimentJSON(os.Stdout, exp, rows)
		case asCSV:
			return mom.WriteFigure5CSV(os.Stdout, rows)
		}
		fmt.Print(mom.FormatFigure5(rows))
	case "latency":
		rows, err := mom.LatencyStudy(ctx, sc, 4)
		if err != nil {
			return err
		}
		switch {
		case asJSON:
			return mom.WriteExperimentJSON(os.Stdout, exp, rows)
		case asCSV:
			return mom.WriteLatencyCSV(os.Stdout, rows)
		}
		fmt.Print(mom.FormatLatency(rows))
	case "fig7":
		rows, err := mom.Figure7Sampled(ctx, sc, sp)
		if err != nil {
			return err
		}
		switch {
		case asJSON:
			return mom.WriteExperimentJSON(os.Stdout, exp, rows)
		case asCSV:
			return mom.WriteFigure7CSV(os.Stdout, rows)
		}
		fmt.Print(mom.FormatFigure7(rows))
	case "table1":
		rows := mom.Table1(i)
		if asJSON {
			return mom.WriteExperimentJSON(os.Stdout, exp, rows)
		}
		fmt.Print(mom.FormatTable1(rows))
	case "table2":
		rows := mom.Table2()
		if asJSON {
			return mom.WriteExperimentJSON(os.Stdout, exp, rows)
		}
		fmt.Print(mom.FormatTable2(rows))
	case "table3":
		rows := mom.Table3()
		if asJSON {
			return mom.WriteExperimentJSON(os.Stdout, exp, rows)
		}
		fmt.Print(mom.FormatTable3(rows))
	case "fetch":
		rows, err := mom.FetchPressure(ctx, sc)
		if err != nil {
			return err
		}
		if asJSON {
			return mom.WriteExperimentJSON(os.Stdout, exp, rows)
		}
		fmt.Print(mom.FormatFetch(rows))
	case "profile":
		rows, err := mom.ProfileStudySampled(ctx, sc, width, sp)
		if err != nil {
			return err
		}
		switch {
		case asJSON:
			return mom.WriteExperimentJSON(os.Stdout, exp, rows)
		case asCSV:
			return mom.WriteProfileCSV(os.Stdout, rows)
		}
		fmt.Print(mom.FormatProfile(rows))
	case "hotspots":
		reps, err := mom.HotspotStudySampled(ctx, sc, width, sp)
		if err != nil {
			return err
		}
		switch {
		case asJSON:
			return mom.WriteHotspotsJSON(os.Stdout, reps)
		case asCSV:
			return mom.WriteHotspotsCSV(os.Stdout, reps)
		}
		fmt.Print(mom.FormatHotspots(reps))
	case "regsweep":
		var all []mom.RegSweepRow
		for _, k := range []string{"idct", "motion1"} {
			rows, err := mom.RegisterSweep(ctx, sc, k)
			if err != nil {
				return err
			}
			if asJSON {
				all = append(all, rows...)
				continue
			}
			fmt.Printf("physical matrix registers vs performance — %s (4-way MOM)\n", k)
			for _, r := range rows {
				fmt.Printf("  %2d regs: %9d cycles (%.3fx of 32-reg file)\n",
					r.MomPhys, r.Cycles, r.Slowdown)
			}
			fmt.Println()
		}
		if asJSON {
			return mom.WriteExperimentJSON(os.Stdout, exp, all)
		}
	case "memsweep":
		var all []mom.MemSweepRow
		for _, app := range []string{"mpeg2decode", "jpegdecode"} {
			rows, err := mom.MemorySweep(ctx, sc, app)
			if err != nil {
				return err
			}
			if asJSON {
				all = append(all, rows...)
				continue
			}
			fmt.Printf("memory-system ablation — %s (4-way MOM, multi-address)\n", app)
			for _, r := range rows {
				fmt.Printf("  %d MSHRs, %d banks: %9d cycles (%.3fx of baseline)\n",
					r.MSHRs, r.Banks, r.Cycles, r.Slowdown)
			}
			fmt.Println()
		}
		if asJSON {
			return mom.WriteExperimentJSON(os.Stdout, exp, all)
		}
	case "isacount":
		mmx, mdmx, momN := mom.ISACounts()
		if asJSON {
			return mom.WriteExperimentJSON(os.Stdout, exp, map[string]int{
				"mmx": mmx, "mdmx": mdmx, "mom": momN,
			})
		}
		fmt.Printf("multimedia instructions: MMX %d, MDMX %d, MOM %d\n", mmx, mdmx, momN)
	case "all":
		for _, e := range []string{"table1", "table2", "table3", "isacount", "fig5", "latency", "fig7", "fetch", "profile", "hotspots"} {
			if err := runExperiment(ctx, e, sc, i, width, sp, format); err != nil {
				return err
			}
			if !asJSON {
				fmt.Println()
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// printTraceStats reports what the trace layer did during one experiment:
// captures and replays with their wall-clock totals, any live-emulation
// fall-backs, and the current cache occupancy.
func printTraceStats(exp string, before, after mom.TraceStats) {
	captures := after.Captures - before.Captures
	discarded := after.Discarded - before.Discarded
	replays := after.Replays - before.Replays
	live := after.LiveRuns - before.LiveRuns
	fmt.Printf("# %s traces: %d captured (%v), %d discarded, %d replayed (%v), %d live runs (%d budget, %d fault); cache holds %d traces, %.1f MB\n",
		exp, captures, (after.CaptureTime - before.CaptureTime).Round(time.Millisecond),
		discarded,
		replays, (after.ReplayTime - before.ReplayTime).Round(time.Millisecond),
		live, after.LiveBudget-before.LiveBudget, after.LiveFault-before.LiveFault,
		after.CachedTraces, float64(after.CachedBytes)/(1<<20))
	if st, ok := mom.TraceArtifactStats(); ok {
		fmt.Printf("# %s artifacts: %d disk hits, %d disk misses, %d disk writes, %d stream replays; store holds %d artifacts, %.1f MB\n",
			exp, after.DiskHits-before.DiskHits, after.DiskMisses-before.DiskMisses,
			after.DiskWrites-before.DiskWrites, after.StreamReplays-before.StreamReplays,
			st.Entries, float64(st.Bytes)/(1<<20))
	}
}

// emitResult reports one timed run as a human-readable summary or, with
// -json, as the full machine-readable Result document. Either way the run
// is first checked against the accounting invariants, so a broken counter
// is a hard CLI failure.
func emitResult(r mom.Result, format string) {
	if err := r.CheckInvariants(); err != nil {
		fatal(err)
	}
	if format == "json" {
		if err := mom.WriteResultJSON(os.Stdout, r); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s on %s/%d-way, %s memory\n", r.Workload, r.ISA, r.Width, r.MemName)
	fmt.Printf("  cycles        %12d\n", r.Cycles)
	fmt.Printf("  instructions  %12d\n", r.Insts)
	fmt.Printf("  IPC           %12.3f\n", r.IPC())
	if s := r.Sampled; s != nil {
		fmt.Printf("  sampled       %12d windows of %d insts (period %d, warmup %d): %.1f%% coverage, IPC %.3f ± %.3f, est. %d cycles over %d insts\n",
			s.Intervals, s.Interval, s.Period, s.Warmup,
			100*s.Coverage, s.IPCMean, s.IPCStdErr, s.EstCycles, s.TotalInsts)
	}
	fmt.Printf("  word-ops      %12d (%.2f per cycle)\n", r.WordOps, r.OPC())
	fmt.Printf("  branches      %12d (%d mispredicted)\n", r.Branches, r.Mispredicts)
	fmt.Printf("  loads/stores  %12d / %d\n", r.Loads, r.Stores)
	if r.Mem.L1Hits+r.Mem.L1Misses > 0 {
		fmt.Printf("  L1            %12d hits, %d misses\n", r.Mem.L1Hits, r.Mem.L1Misses)
		fmt.Printf("  L2            %12d hits, %d misses\n", r.Mem.L2Hits, r.Mem.L2Misses)
	}
	if r.Mem.VecLoads+r.Mem.VecStores > 0 {
		fmt.Printf("  vector mem    %12d loads, %d stores, %d elements\n",
			r.Mem.VecLoads, r.Mem.VecStores, r.Mem.VecElems)
	}
	var classes []string
	for c := range r.OpMix {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return r.OpMix[classes[i]] > r.OpMix[classes[j]] })
	fmt.Printf("  op mix       ")
	for _, c := range classes {
		fmt.Printf(" %s=%.1f%%", c, 100*float64(r.OpMix[c])/float64(r.Insts))
	}
	fmt.Println()
	fmt.Printf("  cycle profile")
	for _, b := range r.Profile.Buckets() {
		if b.Cycles > 0 {
			fmt.Printf(" %s=%.1f%%", b.Name, 100*float64(b.Cycles)/float64(r.Cycles))
		}
	}
	fmt.Println()
}

// cliExps are the experiment names runExperiment accepts: the canonical
// mom.ExpNames batch drivers plus the CLI-only tables and the "all"
// shorthand ("kernel"/"app" single points use -kernel/-app instead).
var cliExps = []string{
	"fig5", "latency", "fig7", "table1", "table2", "table3",
	"fetch", "profile", "hotspots", "regsweep", "memsweep", "isacount", "all", "list",
}

// cliOnlyDescriptions covers the names outside mom.ExpNames (the static
// tables and the CLI shorthands); everything else is described by
// mom.ExpDescription so the CLI and the batch layer never drift.
var cliOnlyDescriptions = map[string]string{
	"table1":   "processor configurations of the four modelled machines (Table 1)",
	"table2":   "multimedia register-file sizes and area estimates (Table 2)",
	"table3":   "port counts of the modelled memory systems (Table 3)",
	"isacount": "multimedia instruction counts per ISA extension",
	"all":      "every table and experiment above, in order",
	"list":     "print this list",
}

// expList renders every -exp name with its one-line description.
func expList() string {
	var b strings.Builder
	for _, e := range cliExps {
		d := mom.ExpDescription(e)
		if d == "" {
			d = cliOnlyDescriptions[e]
		}
		fmt.Fprintf(&b, "  %-9s %s\n", e, d)
	}
	b.WriteString("single machine points (the \"kernel\"/\"app\" batch experiments) run via -kernel/-app instead\n")
	return b.String()
}

// checkExp validates one -exp name up front, so a typo fails with the
// described list of valid names (mirroring the -isa/-kernel/-app
// validation of momtrace) instead of after earlier experiments in the
// list have run.
func checkExp(e string) error {
	for _, v := range cliExps {
		if e == v {
			return nil
		}
	}
	return fmt.Errorf("unknown experiment %q; valid experiments:\n%s", e, expList())
}

// atExitFns are cleanups (profile finalisers) that must run on every exit
// path. fatal() leaves via os.Exit, which skips deferred calls, so both it
// and main's deferred runAtExit drain this list explicitly.
var atExitFns []func()

func atExit(fn func()) { atExitFns = append(atExitFns, fn) }

func runAtExit() {
	for i := len(atExitFns) - 1; i >= 0; i-- {
		atExitFns[i]()
	}
	atExitFns = nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "momsim:", err)
	runAtExit()
	os.Exit(1)
}
