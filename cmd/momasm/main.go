// Command momasm builds a kernel program for a chosen ISA level and prints
// its disassembly and static statistics — useful for inspecting what the
// "compiler" (the program builders) emits for each ISA.
//
//	momasm -kernel motion1 -isa MOM
//	momasm -kernel idct -isa MMX -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	mom "repro"
)

func main() {
	var (
		kernel    = flag.String("kernel", "motion1", "kernel name")
		isaStr    = flag.String("isa", "MOM", "ISA: Alpha|MMX|MDMX|MOM")
		statsOnly = flag.Bool("stats", false, "print static statistics only")
		limit     = flag.Int("n", 0, "print at most n instructions (0 = all)")
	)
	flag.Parse()

	var level mom.ISA
	switch strings.ToLower(*isaStr) {
	case "alpha":
		level = mom.Alpha
	case "mmx":
		level = mom.MMX
	case "mdmx":
		level = mom.MDMX
	case "mom":
		level = mom.MOM
	default:
		fmt.Fprintf(os.Stderr, "momasm: unknown ISA %q\n", *isaStr)
		os.Exit(1)
	}

	p, err := mom.BuildKernel(*kernel, level, mom.ScaleTest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "momasm:", err)
		os.Exit(1)
	}

	st := p.Stats()
	fmt.Printf("%s: %d static instructions, %d bytes of data\n",
		p.Name, st.Total, len(p.Data))
	type cc struct {
		name string
		n    int
	}
	var classes []cc
	for c, n := range st.ByClass {
		classes = append(classes, cc{c.String(), n})
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].n > classes[j].n })
	for _, c := range classes {
		fmt.Printf("  %-8s %6d (%.1f%%)\n", c.name, c.n, 100*float64(c.n)/float64(st.Total))
	}
	if *statsOnly {
		return
	}
	fmt.Println()
	for idx, in := range p.Insts {
		fmt.Printf("%5d: %s\n", idx, in.String())
		if *limit > 0 && idx+1 >= *limit {
			fmt.Printf("... (%d more)\n", len(p.Insts)-idx-1)
			break
		}
	}
}
