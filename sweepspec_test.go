package mom

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestSweepExpandDeterministic: the same spec always expands to the same
// ordered key list — the property the content-addressed result set (and
// the byte-identical sweep report) is built on.
func TestSweepExpandDeterministic(t *testing.T) {
	spec := SweepSpec{
		Exps:    []string{"kernel", "fig5"},
		Kernels: []string{"motion1", "idct"},
		ISAs:    []string{"MMX", "MOM"},
		Widths:  []int{2, 4},
		Mems:    []string{"perfect", "perfect50"},
		Samples: []string{"", "1501:100:150"},
	}
	a, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ka, err := Keys(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, _ := Keys(b)
	if !reflect.DeepEqual(ka, kb) {
		t.Fatalf("expansion not deterministic:\n%v\nvs\n%v", ka, kb)
	}
	// kernel: 2 kernels × 2 ISAs × 2 widths × 2 mems × 2 samples = 32,
	// fig5: scale only = 1.
	if len(a) != 33 {
		t.Fatalf("expanded to %d requests, want 33", len(a))
	}
	seen := map[string]bool{}
	for _, k := range ka {
		if seen[k] {
			t.Fatalf("duplicate key %s in expansion", k)
		}
		seen[k] = true
	}
}

// TestSweepExpandDedup: axis values that normalise to the same canonical
// request collapse to one grid point, and unconsumed axes never multiply
// the grid.
func TestSweepExpandDedup(t *testing.T) {
	// fig5 consumes no axis but scale: four ISAs × two widths still
	// expand to exactly one request.
	reqs, err := SweepSpec{Exps: []string{"fig5"}, Widths: []int{1, 2, 4, 8}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 {
		t.Fatalf("fig5 sweep expanded to %d requests, want 1", len(reqs))
	}
	// ISA names differing only in case are the same machine.
	reqs, err = SweepSpec{
		Exps: []string{"kernel"}, Kernels: []string{"motion1"},
		ISAs: []string{"mom", "MOM", "Mom"}, Widths: []int{4},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 {
		t.Fatalf("case-variant ISA axis expanded to %d requests, want 1", len(reqs))
	}
	if reqs[0].ISA != "MOM" || reqs[0].Scale != "test" {
		t.Fatalf("expansion did not normalise: %+v", reqs[0])
	}
}

// TestSweepExpandValidation: a bad axis value fails expansion with the
// valid vocabulary, and exps is required.
func TestSweepExpandValidation(t *testing.T) {
	for _, tc := range []struct {
		spec SweepSpec
		want string
	}{
		{SweepSpec{}, "exps is required"},
		{SweepSpec{Exps: []string{"bogus"}}, "unknown experiment"},
		{SweepSpec{Exps: []string{"kernel"}, Kernels: []string{"nope"}}, "unknown kernel"},
		{SweepSpec{Exps: []string{"kernel"}, ISAs: []string{"sse"}}, "unknown ISA"},
		{SweepSpec{Exps: []string{"kernel"}, Widths: []int{3}}, "invalid width"},
		{SweepSpec{Exps: []string{"kernel"}, Samples: []string{"bad"}}, "invalid sample spec"},
		{SweepSpec{Exps: []string{"app"}, Scales: []string{"huge"}}, "unknown scale"},
	} {
		if _, err := tc.spec.Expand(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: error %v, want one containing %q", tc.spec, err, tc.want)
		}
	}
}

// TestSweepSpecParseStrict: unknown fields in a spec document are an
// error, not a silently smaller grid.
func TestSweepSpecParseStrict(t *testing.T) {
	if _, err := ParseSweepSpec([]byte(`{"exps":["fig5"],"widhts":[4]}`)); err == nil {
		t.Fatal("typoed axis name parsed without error")
	}
	s, err := ParseSweepSpec([]byte(`{"exps":["fig5"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Exps) != 1 || s.Exps[0] != "fig5" {
		t.Fatalf("parsed spec %+v", s)
	}
}

// TestSweepExampleSpec pins the committed example: it must parse, expand
// to at least 24 deduplicated requests, and stay deterministic — the CI
// sweep smoke runs exactly this file against a live momserver.
func TestSweepExampleSpec(t *testing.T) {
	data, err := os.ReadFile("examples/sweeps/motion-width.json")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSweepSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 24 {
		t.Fatalf("example spec expanded to %d requests, want >= 24", len(reqs))
	}
	keys, err := Keys(reqs)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("example spec expansion contains duplicate key %s", k)
		}
		seen[k] = true
	}
}

// TestExpDescriptions: every runnable experiment has a one-liner (the
// `momsim -exp list` surface the sweep spec's exp axis is discovered by).
func TestExpDescriptions(t *testing.T) {
	for _, e := range ExpNames {
		if ExpDescription(e) == "" {
			t.Errorf("experiment %q has no description", e)
		}
	}
	if ExpDescription("bogus") != "" {
		t.Error("unknown experiment has a description")
	}
}
