package mom

import (
	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/trace"
)

// runTransposeAblation times transposing 256 8x8 halfword tiles on the
// 4-way MOM machine, either with the dedicated MOMTRANSH instruction
// (3 instructions per tile) or with the packed unpack network (the
// MMX-style fallback MOM makes unnecessary).
func runTransposeAblation(useMatrixOp bool, width int) (int64, error) {
	const tiles = 256
	b := asm.New("transpose-ablation")
	rng := uint64(1)
	blocks := make([]int16, 64*tiles)
	for i := range blocks {
		rng = rng*6364136223846793005 + 1442695040888963407
		blocks[i] = int16(rng >> 48)
	}
	b.AllocH("in", blocks, 8)
	b.Alloc("out", 128*tiles, 8)
	inP, outP, stride, ctr := isa.R(8), isa.R(9), isa.R(10), isa.R(11)
	b.MovI(inP, int64(b.Sym("in")))
	b.MovI(outP, int64(b.Sym("out")))
	b.MovI(stride, 8)
	b.SetVLI(16)
	if useMatrixOp {
		b.Loop(ctr, tiles, func() {
			b.MomLd(isa.V(0), inP, stride, 0)
			b.Op(isa.MOMTRANSH, isa.V(1), isa.V(0), isa.Reg{})
			b.MomSt(isa.V(1), outP, stride, 0)
			b.AddI(inP, inP, 128)
			b.AddI(outP, outP, 128)
		})
	} else {
		b.Loop(ctr, tiles, func() {
			kernels.EmitTransposeUnpack(b, inP, outP)
			b.AddI(inP, inP, 128)
			b.AddI(outP, outP, 128)
		})
	}
	sim := cpu.New(cpu.NewConfig(width, isa.ExtMOM), mem.NewPerfect(1))
	res, err := sim.Run(trace.NewLive(emu.New(b.Build())), maxDynInsts)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}
