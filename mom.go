// Package mom is a full reproduction of "Exploiting a New Level of DLP in
// Multimedia Applications" (Corbal, Espasa, Valero — MICRO-32, 1999): the
// MOM matrix-oriented multimedia ISA, its MMX/MDMX/Alpha comparison
// baselines, an R10000-like out-of-order cycle-level simulator, the
// perfect-memory and detailed (multi-address / vector-cache / collapsing
// buffer) memory systems, the paper's eight kernels and five Mediabench
// applications, and drivers regenerating every table and figure of the
// evaluation.
//
// The public surface is intentionally small:
//
//   - RunKernel / RunApp time one workload on one machine.
//   - Figure5, LatencyStudy, Table1, Table2, Table3, Figure7 regenerate the
//     paper's artifacts.
//   - BuildKernel exposes the generated programs for inspection.
//   - KernelHotspots / AppHotspots / HotspotStudy attribute a run's cycles
//     to single static instructions, and ExportKernelPipeline /
//     ExportAppPipeline cut per-instruction pipeline traces (Konata /
//     Perfetto formats) from the same event stream.
package mom

import (
	"encoding/json"
	"fmt"

	"repro/internal/apps"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/trace"
)

// ISA selects the instruction-set level of a program and machine.
type ISA int

// The four ISA levels of the paper.
const (
	Alpha ISA = iota
	MMX
	MDMX
	MOM
)

// AllISAs lists the ISA levels in the paper's order.
var AllISAs = []ISA{Alpha, MMX, MDMX, MOM}

func (i ISA) String() string { return i.ext().String() }

// MarshalJSON encodes the ISA by name so the JSON schema is stable even if
// the enum values are ever reordered.
func (i ISA) MarshalJSON() ([]byte, error) { return json.Marshal(i.String()) }

func (i ISA) ext() isa.Ext {
	switch i {
	case Alpha:
		return isa.ExtAlpha
	case MMX:
		return isa.ExtMMX
	case MDMX:
		return isa.ExtMDMX
	case MOM:
		return isa.ExtMOM
	}
	panic(fmt.Sprintf("mom: bad ISA %d", int(i)))
}

// Scale selects workload sizes.
type Scale int

// Workload scales: Test keeps functional runs fast; Bench matches the
// experiment sizes used for the figures.
const (
	ScaleTest  Scale = Scale(kernels.ScaleTest)
	ScaleBench Scale = Scale(kernels.ScaleBench)
)

// CacheMode selects the memory organisation of the detailed hierarchy.
type CacheMode int

// The cache organisations of Figure 6 / Table 3.
const (
	Conventional CacheMode = iota
	MultiAddress
	VectorCache
	CollapsingBuffer
)

func (c CacheMode) String() string { return c.mode().String() }

// MarshalJSON encodes the cache mode by name, like ISA.
func (c CacheMode) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

func (c CacheMode) mode() mem.VectorMode {
	switch c {
	case Conventional:
		return mem.ModeConventional
	case MultiAddress:
		return mem.ModeMultiAddress
	case VectorCache:
		return mem.ModeVectorCache
	case CollapsingBuffer:
		return mem.ModeCollapsing
	}
	panic(fmt.Sprintf("mom: bad cache mode %d", int(c)))
}

// MemModel abstracts the memory system passed to a run.
type MemModel struct {
	build func(width int) mem.Model
	name  string
}

// Name identifies the model.
func (m MemModel) Name() string { return m.name }

// PerfectMemory returns the idealised fixed-latency memory of the kernel
// study (latency 1 = perfect cache; 50 = the latency-tolerance experiment).
func PerfectMemory(latency int) MemModel {
	return MemModel{
		build: func(int) mem.Model { return mem.NewPerfect(latency) },
		name:  fmt.Sprintf("perfect(%d)", latency),
	}
}

// DetailedMemory returns the two-level hierarchy with the chosen vector
// cache organisation; the width-dependent port counts follow Table 3.
func DetailedMemory(mode CacheMode) MemModel {
	return MemModel{
		build: func(width int) mem.Model {
			return mem.NewHierarchy(mem.HierConfig{Width: width, Mode: mode.mode()})
		},
		name: mode.String(),
	}
}

// MemStats is the public mirror of the memory-system statistics. The
// counters obey the invariants documented on mem.Stats (and enforced by
// Result.CheckInvariants): L1Hits+L1Misses == L1Lookups across loads AND
// stores, likewise for L2.
type MemStats struct {
	Loads          uint64 `json:"loads"`
	Stores         uint64 `json:"stores"`
	VecLoads       uint64 `json:"vec_loads"`
	VecStores      uint64 `json:"vec_stores"`
	VecElems       uint64 `json:"vec_elems"`
	L1Lookups      uint64 `json:"l1_lookups"`
	L1Hits         uint64 `json:"l1_hits"`
	L1Misses       uint64 `json:"l1_misses"`
	L1StoreHits    uint64 `json:"l1_store_hits"`
	L1StoreMisses  uint64 `json:"l1_store_misses"`
	L1VecInvals    uint64 `json:"l1_vec_invals"`
	L2Lookups      uint64 `json:"l2_lookups"`
	L2Hits         uint64 `json:"l2_hits"`
	L2Misses       uint64 `json:"l2_misses"`
	LineAccesses   uint64 `json:"line_accesses"`
	BankConflicts  uint64 `json:"bank_conflicts"`
	MSHRStalls     uint64 `json:"mshr_stalls"`
	WriteBufStalls uint64 `json:"write_buf_stalls"`
	WriteBufDrains uint64 `json:"write_buf_drains"`
	DRAMChanBusy   uint64 `json:"dram_chan_busy"`
	DRAMBankBusy   uint64 `json:"dram_bank_busy"`
	Unaligned      uint64 `json:"unaligned"`
}

// Result reports one timed run.
type Result struct {
	Workload    string `json:"workload"`
	ISA         ISA    `json:"isa"`
	Width       int    `json:"width"`
	MemName     string `json:"mem"`
	Cycles      int64  `json:"cycles"`
	Insts       uint64 `json:"insts"`
	WordOps     uint64 `json:"word_ops"`
	Branches    uint64 `json:"branches"`
	Mispredicts uint64 `json:"mispredicts"`
	Loads       uint64 `json:"loads"`
	Stores      uint64 `json:"stores"`
	// OpMix counts graduated instructions per operation class
	// (e.g. "int", "vload", "vmed*").
	OpMix   map[string]uint64 `json:"op_mix"`
	Mem     MemStats          `json:"mem_stats"`
	Profile Profile           `json:"profile"`
	// Sampled is non-nil only for sampled runs (RunKernelSampled /
	// RunAppSampled and the sampled experiment drivers). Cycles, Insts and
	// Profile then cover the measured intervals only — the attribution
	// identity Profile.Total() == Cycles still holds and IPC() is the
	// sampled estimate — while Sampled carries coverage and error bounds.
	Sampled *SampledInfo `json:"sampled,omitempty"`
}

// IPC returns graduated instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// OPC returns packed-word operations per cycle (fetch-pressure metric).
func (r Result) OPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.WordOps) / float64(r.Cycles)
}

func fromCPU(name string, i ISA, width int, memName string, c cpu.Result) Result {
	mix := map[string]uint64{}
	for cl, n := range c.ByClass {
		if n > 0 {
			mix[isa.Class(cl).String()] = n
		}
	}
	return Result{
		Workload: name, ISA: i, Width: width, MemName: memName,
		Cycles: c.Cycles, Insts: c.Insts, WordOps: c.WordOps,
		Branches: c.Branches, Mispredicts: c.Mispredicts,
		Loads: c.Loads, Stores: c.Stores, OpMix: mix,
		Sampled: sampledInfo(c.Sampled, c.Cycles, c.Insts),
		Mem: MemStats{
			Loads: c.Mem.Loads, Stores: c.Mem.Stores,
			VecLoads: c.Mem.VecLoads, VecStores: c.Mem.VecStores,
			VecElems:  c.Mem.VecElems,
			L1Lookups: c.Mem.L1Lookups,
			L1Hits:    c.Mem.L1Hits, L1Misses: c.Mem.L1Misses,
			L1StoreHits: c.Mem.L1StoreHits, L1StoreMisses: c.Mem.L1StoreMisses,
			L1VecInvals: c.Mem.L1VecInvals,
			L2Lookups:   c.Mem.L2Lookups,
			L2Hits:      c.Mem.L2Hits, L2Misses: c.Mem.L2Misses,
			LineAccesses:   c.Mem.LineAccesses,
			BankConflicts:  c.Mem.BankConflicts,
			MSHRStalls:     c.Mem.MSHRStalls,
			WriteBufStalls: c.Mem.WriteBufStalls,
			WriteBufDrains: c.Mem.WriteBufDrains,
			DRAMChanBusy:   c.Mem.DRAMChanBusy,
			DRAMBankBusy:   c.Mem.DRAMBankBusy,
			Unaligned:      c.Mem.Unaligned,
		},
		Profile: Profile{
			Commit:      c.Profile.Commit,
			Frontend:    c.Profile.Frontend,
			Mispredict:  c.Profile.Mispredict,
			RenameROB:   c.Profile.RenameROB,
			IssueQueue:  c.Profile.IssueQueue,
			FU:          c.Profile.FU,
			MemWait:     c.Profile.MemWait,
			StoreCommit: c.Profile.StoreCommit,
			DepLatency:  c.Profile.DepLatency,
		},
	}
}

// KernelNames lists the eight kernels of the paper's kernel-level study.
func KernelNames() []string {
	var out []string
	for _, k := range kernels.All(kernels.ScaleTest) {
		out = append(out, k.Name)
	}
	return out
}

// maxDynInsts is the safety cap on dynamic instructions per run.
const maxDynInsts = 400_000_000

// RunKernel times one kernel on one machine configuration.
func RunKernel(kernel string, i ISA, width int, m MemModel, sc Scale) (Result, error) {
	k, err := kernels.ByName(kernel, kernels.Scale(sc))
	if err != nil {
		return Result{}, err
	}
	p := k.Build(i.ext())
	sim := cpu.New(cpu.NewConfig(width, i.ext()), m.build(width))
	res, err := sim.Run(trace.NewLive(emu.New(p)), maxDynInsts)
	if err != nil {
		return Result{}, fmt.Errorf("mom: %s on %s/%d-way: %w", kernel, i, width, err)
	}
	return fromCPU(kernel, i, width, m.Name(), res), nil
}

// VerifyKernel runs a kernel functionally and checks bit-exactness against
// the golden implementation.
func VerifyKernel(kernel string, i ISA, sc Scale) error {
	k, err := kernels.ByName(kernel, kernels.Scale(sc))
	if err != nil {
		return err
	}
	return kernels.RunAndVerify(k, i.ext(), maxDynInsts)
}

// AppNames lists the five applications of the program-level study.
func AppNames() []string { return apps.Names() }

// RunApp times one full application on one machine configuration.
func RunApp(app string, i ISA, width int, m MemModel, sc Scale) (Result, error) {
	a, err := apps.ByName(app, apps.Scale(sc))
	if err != nil {
		return Result{}, err
	}
	p := a.Build(i.ext())
	sim := cpu.New(cpu.NewConfig(width, i.ext()), m.build(width))
	res, err := sim.Run(trace.NewLive(emu.New(p)), maxDynInsts)
	if err != nil {
		return Result{}, fmt.Errorf("mom: %s on %s/%d-way: %w", app, i, width, err)
	}
	return fromCPU(app, i, width, m.Name(), res), nil
}

// VerifyApp runs an application functionally and checks its outputs.
func VerifyApp(app string, i ISA, sc Scale) error {
	a, err := apps.ByName(app, apps.Scale(sc))
	if err != nil {
		return err
	}
	return apps.RunAndVerify(a, i.ext(), maxDynInsts)
}

// BuildKernel returns the generated program for inspection (disassembly,
// static statistics).
func BuildKernel(kernel string, i ISA, sc Scale) (*isa.Program, error) {
	k, err := kernels.ByName(kernel, kernels.Scale(sc))
	if err != nil {
		return nil, err
	}
	return k.Build(i.ext()), nil
}

// BuildApp returns the generated application program for inspection.
func BuildApp(app string, i ISA, sc Scale) (*isa.Program, error) {
	a, err := apps.ByName(app, apps.Scale(sc))
	if err != nil {
		return nil, err
	}
	return a.Build(i.ext()), nil
}
