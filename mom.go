// Package mom is a full reproduction of "Exploiting a New Level of DLP in
// Multimedia Applications" (Corbal, Espasa, Valero — MICRO-32, 1999): the
// MOM matrix-oriented multimedia ISA, its MMX/MDMX/Alpha comparison
// baselines, an R10000-like out-of-order cycle-level simulator, the
// perfect-memory and detailed (multi-address / vector-cache / collapsing
// buffer) memory systems, the paper's eight kernels and five Mediabench
// applications, and drivers regenerating every table and figure of the
// evaluation.
//
// The public surface is intentionally small:
//
//   - RunKernel / RunApp time one workload on one machine.
//   - Figure5, LatencyStudy, Table1, Table2, Table3, Figure7 regenerate the
//     paper's artifacts.
//   - BuildKernel exposes the generated programs for inspection.
package mom

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/trace"
)

// ISA selects the instruction-set level of a program and machine.
type ISA int

// The four ISA levels of the paper.
const (
	Alpha ISA = iota
	MMX
	MDMX
	MOM
)

// AllISAs lists the ISA levels in the paper's order.
var AllISAs = []ISA{Alpha, MMX, MDMX, MOM}

func (i ISA) String() string { return i.ext().String() }

func (i ISA) ext() isa.Ext {
	switch i {
	case Alpha:
		return isa.ExtAlpha
	case MMX:
		return isa.ExtMMX
	case MDMX:
		return isa.ExtMDMX
	case MOM:
		return isa.ExtMOM
	}
	panic(fmt.Sprintf("mom: bad ISA %d", int(i)))
}

// Scale selects workload sizes.
type Scale int

// Workload scales: Test keeps functional runs fast; Bench matches the
// experiment sizes used for the figures.
const (
	ScaleTest  Scale = Scale(kernels.ScaleTest)
	ScaleBench Scale = Scale(kernels.ScaleBench)
)

// CacheMode selects the memory organisation of the detailed hierarchy.
type CacheMode int

// The cache organisations of Figure 6 / Table 3.
const (
	Conventional CacheMode = iota
	MultiAddress
	VectorCache
	CollapsingBuffer
)

func (c CacheMode) String() string { return c.mode().String() }

func (c CacheMode) mode() mem.VectorMode {
	switch c {
	case Conventional:
		return mem.ModeConventional
	case MultiAddress:
		return mem.ModeMultiAddress
	case VectorCache:
		return mem.ModeVectorCache
	case CollapsingBuffer:
		return mem.ModeCollapsing
	}
	panic(fmt.Sprintf("mom: bad cache mode %d", int(c)))
}

// MemModel abstracts the memory system passed to a run.
type MemModel struct {
	build func(width int) mem.Model
	name  string
}

// Name identifies the model.
func (m MemModel) Name() string { return m.name }

// PerfectMemory returns the idealised fixed-latency memory of the kernel
// study (latency 1 = perfect cache; 50 = the latency-tolerance experiment).
func PerfectMemory(latency int) MemModel {
	return MemModel{
		build: func(int) mem.Model { return mem.NewPerfect(latency) },
		name:  fmt.Sprintf("perfect(%d)", latency),
	}
}

// DetailedMemory returns the two-level hierarchy with the chosen vector
// cache organisation; the width-dependent port counts follow Table 3.
func DetailedMemory(mode CacheMode) MemModel {
	return MemModel{
		build: func(width int) mem.Model {
			return mem.NewHierarchy(mem.HierConfig{Width: width, Mode: mode.mode()})
		},
		name: mode.String(),
	}
}

// MemStats is the public mirror of the memory-system statistics.
type MemStats struct {
	Loads, Stores       uint64
	VecLoads, VecStores uint64
	VecElems            uint64
	L1Hits, L1Misses    uint64
	L2Hits, L2Misses    uint64
	LineAccesses        uint64
	BankConflicts       uint64
	WriteBufStalls      uint64
	Unaligned           uint64
}

// Result reports one timed run.
type Result struct {
	Workload    string
	ISA         ISA
	Width       int
	MemName     string
	Cycles      int64
	Insts       uint64
	WordOps     uint64
	Branches    uint64
	Mispredicts uint64
	Loads       uint64
	Stores      uint64
	// OpMix counts graduated instructions per operation class
	// (e.g. "int", "vload", "vmed*").
	OpMix map[string]uint64
	Mem   MemStats
}

// IPC returns graduated instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// OPC returns packed-word operations per cycle (fetch-pressure metric).
func (r Result) OPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.WordOps) / float64(r.Cycles)
}

func fromCPU(name string, i ISA, width int, memName string, c cpu.Result) Result {
	mix := map[string]uint64{}
	for cl, n := range c.ByClass {
		if n > 0 {
			mix[isa.Class(cl).String()] = n
		}
	}
	return Result{
		Workload: name, ISA: i, Width: width, MemName: memName,
		Cycles: c.Cycles, Insts: c.Insts, WordOps: c.WordOps,
		Branches: c.Branches, Mispredicts: c.Mispredicts,
		Loads: c.Loads, Stores: c.Stores, OpMix: mix,
		Mem: MemStats{
			Loads: c.Mem.Loads, Stores: c.Mem.Stores,
			VecLoads: c.Mem.VecLoads, VecStores: c.Mem.VecStores,
			VecElems: c.Mem.VecElems,
			L1Hits:   c.Mem.L1Hits, L1Misses: c.Mem.L1Misses,
			L2Hits: c.Mem.L2Hits, L2Misses: c.Mem.L2Misses,
			LineAccesses:   c.Mem.LineAccesses,
			BankConflicts:  c.Mem.BankConflicts,
			WriteBufStalls: c.Mem.WriteBufStalls,
			Unaligned:      c.Mem.Unaligned,
		},
	}
}

// KernelNames lists the eight kernels of the paper's kernel-level study.
func KernelNames() []string {
	var out []string
	for _, k := range kernels.All(kernels.ScaleTest) {
		out = append(out, k.Name)
	}
	return out
}

// maxDynInsts is the safety cap on dynamic instructions per run.
const maxDynInsts = 400_000_000

// RunKernel times one kernel on one machine configuration.
func RunKernel(kernel string, i ISA, width int, m MemModel, sc Scale) (Result, error) {
	k, err := kernels.ByName(kernel, kernels.Scale(sc))
	if err != nil {
		return Result{}, err
	}
	p := k.Build(i.ext())
	sim := cpu.New(cpu.NewConfig(width, i.ext()), m.build(width))
	res, err := sim.Run(trace.NewLive(emu.New(p)), maxDynInsts)
	if err != nil {
		return Result{}, fmt.Errorf("mom: %s on %s/%d-way: %w", kernel, i, width, err)
	}
	return fromCPU(kernel, i, width, m.Name(), res), nil
}

// VerifyKernel runs a kernel functionally and checks bit-exactness against
// the golden implementation.
func VerifyKernel(kernel string, i ISA, sc Scale) error {
	k, err := kernels.ByName(kernel, kernels.Scale(sc))
	if err != nil {
		return err
	}
	return kernels.RunAndVerify(k, i.ext(), maxDynInsts)
}

// AppNames lists the five applications of the program-level study.
func AppNames() []string { return apps.Names() }

// RunApp times one full application on one machine configuration.
func RunApp(app string, i ISA, width int, m MemModel, sc Scale) (Result, error) {
	a, err := apps.ByName(app, apps.Scale(sc))
	if err != nil {
		return Result{}, err
	}
	p := a.Build(i.ext())
	sim := cpu.New(cpu.NewConfig(width, i.ext()), m.build(width))
	res, err := sim.Run(trace.NewLive(emu.New(p)), maxDynInsts)
	if err != nil {
		return Result{}, fmt.Errorf("mom: %s on %s/%d-way: %w", app, i, width, err)
	}
	return fromCPU(app, i, width, m.Name(), res), nil
}

// VerifyApp runs an application functionally and checks its outputs.
func VerifyApp(app string, i ISA, sc Scale) error {
	a, err := apps.ByName(app, apps.Scale(sc))
	if err != nil {
		return err
	}
	return apps.RunAndVerify(a, i.ext(), maxDynInsts)
}

// BuildKernel returns the generated program for inspection (disassembly,
// static statistics).
func BuildKernel(kernel string, i ISA, sc Scale) (*isa.Program, error) {
	k, err := kernels.ByName(kernel, kernels.Scale(sc))
	if err != nil {
		return nil, err
	}
	return k.Build(i.ext()), nil
}

// BuildApp returns the generated application program for inspection.
func BuildApp(app string, i ISA, sc Scale) (*isa.Program, error) {
	a, err := apps.ByName(app, apps.Scale(sc))
	if err != nil {
		return nil, err
	}
	return a.Build(i.ext()), nil
}
