package mom

import (
	"fmt"
	"sort"
	"strings"
)

// Text formatting for the experiment outputs (paper-style tables).

// FormatFigure5 renders the kernel speed-up study: one block per kernel,
// ISAs as rows and issue widths as columns (speed-up vs 1-way Alpha).
func FormatFigure5(rows []KernelSpeedup) string {
	var sb strings.Builder
	kernels := orderedKeys(rows, func(r KernelSpeedup) string { return r.Kernel })
	sb.WriteString("Figure 5 — kernel speed-up vs 1-way Alpha (perfect memory)\n")
	for _, k := range kernels {
		fmt.Fprintf(&sb, "\n%s\n", k)
		fmt.Fprintf(&sb, "  %-6s %8s %8s %8s %8s\n", "", "1-way", "2-way", "4-way", "8-way")
		for _, i := range AllISAs {
			fmt.Fprintf(&sb, "  %-6s", i)
			for _, w := range Widths {
				for _, r := range rows {
					if r.Kernel == k && r.ISA == i && r.Width == w {
						fmt.Fprintf(&sb, " %8.2f", r.Speedup)
					}
				}
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// FormatLatency renders the latency-tolerance study.
func FormatLatency(rows []LatencyRow) string {
	var sb strings.Builder
	sb.WriteString("Memory-latency tolerance — slowdown when latency goes 1 -> 50 cycles\n\n")
	kernels := orderedKeys(rows, func(r LatencyRow) string { return r.Kernel })
	fmt.Fprintf(&sb, "  %-14s %8s %8s %8s %8s\n", "kernel", "Alpha", "MMX", "MDMX", "MOM")
	for _, k := range kernels {
		fmt.Fprintf(&sb, "  %-14s", k)
		for _, i := range AllISAs {
			for _, r := range rows {
				if r.Kernel == k && r.ISA == i {
					fmt.Fprintf(&sb, " %7.2fx", r.Slowdown)
				}
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatFigure7 renders the program-level study.
func FormatFigure7(rows []AppSpeedup) string {
	var sb strings.Builder
	sb.WriteString("Figure 7 — application speed-up vs Alpha/conventional cache\n")
	apps := orderedKeys(rows, func(r AppSpeedup) string { return r.App })
	for _, a := range apps {
		fmt.Fprintf(&sb, "\n%s\n", a)
		fmt.Fprintf(&sb, "  %-26s %8s %8s\n", "", "4-way", "8-way")
		for _, cfg := range Figure7Configs {
			fmt.Fprintf(&sb, "  %-26s", cfg.String())
			for _, w := range []int{4, 8} {
				for _, r := range rows {
					if r.App == a && r.Config == cfg && r.Width == w {
						fmt.Fprintf(&sb, " %8.2f", r.Speedup)
					}
				}
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// FormatTable1 renders the processor configurations.
func FormatTable1(rows []Table1Row) string {
	keys := []string{
		"ROB size", "Load/Store queue", "Bimodal predictor", "BTB entries",
		"INT simple/complex", "FP simple/complex", "MED simple/complex",
		"memory ports", "INT log/ph", "FP log/ph",
	}
	var sb strings.Builder
	sb.WriteString("Table 1 — processor configurations\n\n")
	fmt.Fprintf(&sb, "  %-20s", "")
	for _, r := range rows {
		fmt.Fprintf(&sb, " %14s", r.Name)
	}
	sb.WriteString("\n")
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-20s", k)
		for _, r := range rows {
			fmt.Fprintf(&sb, " %14s", r.Values[k])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatTable2 renders the register-file comparison.
func FormatTable2(rows []Table2Entry) string {
	var sb strings.Builder
	sb.WriteString("Table 2 — multimedia register file configurations (4-way machine)\n\n")
	fmt.Fprintf(&sb, "  %-24s %10s %10s %10s\n", "", rows[0].ISA, rows[1].ISA, rows[2].ISA)
	get := func(f func(Table2Entry) string) []string {
		var out []string
		for _, r := range rows {
			out = append(out, f(r))
		}
		return out
	}
	emit := func(label string, vals []string) {
		fmt.Fprintf(&sb, "  %-24s %10s %10s %10s\n", label, vals[0], vals[1], vals[2])
	}
	emit("MEDIA log/ph registers", get(func(r Table2Entry) string { return r.MediaRegs }))
	emit("ACC log/ph registers", get(func(r Table2Entry) string { return r.AccRegs }))
	emit("MEDIA rd/wr ports", get(func(r Table2Entry) string { return r.MediaPorts }))
	emit("ACC rd/wr ports", get(func(r Table2Entry) string { return r.AccPorts }))
	emit("Register file size", get(func(r Table2Entry) string {
		return fmt.Sprintf("%.2f K", float64(r.SizeBytes)/1024)
	}))
	emit("Normalized area cost", get(func(r Table2Entry) string {
		return fmt.Sprintf("%.2f", r.NormalizedArea)
	}))
	return sb.String()
}

// FormatTable3 renders the memory-model port configurations.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3 — port configuration of the memory models\n\n")
	keys := []string{"L1 #ports", "L1 #banks", "L1 latency", "L2 #ports", "L2 latency"}
	fmt.Fprintf(&sb, "  %-22s %6s  %s\n", "model", "width", strings.Join(keys, " | "))
	for _, r := range rows {
		var vals []string
		for _, k := range keys {
			v := r.Values[k]
			if v == "" {
				v = "-"
			}
			vals = append(vals, v)
		}
		fmt.Fprintf(&sb, "  %-22s %6d  %s\n", r.Model, r.Width, strings.Join(vals, " | "))
	}
	return sb.String()
}

// FormatProfile renders the cycle-attribution study: one block per
// kernel×memory, ISAs as rows, the stall taxonomy as columns (percent of
// total cycles, which sum to 100 by construction).
func FormatProfile(rows []ProfileRow) string {
	var sb strings.Builder
	sb.WriteString("Cycle attribution — % of cycles per stall bucket (buckets sum to Cycles)\n")
	type group struct{ kernel, mem string }
	var groups []group
	seen := map[group]bool{}
	for _, r := range rows {
		g := group{r.Kernel, r.MemName}
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	for _, g := range groups {
		fmt.Fprintf(&sb, "\n%s / %s\n", g.kernel, g.mem)
		fmt.Fprintf(&sb, "  %-6s %12s", "", "cycles")
		for _, b := range (Profile{}).Buckets() {
			fmt.Fprintf(&sb, " %9s", b.Name)
		}
		sb.WriteString("\n")
		for _, i := range AllISAs {
			for _, r := range rows {
				if r.Kernel != g.kernel || r.MemName != g.mem || r.ISA != i {
					continue
				}
				fmt.Fprintf(&sb, "  %-6s %12d", r.ISA, r.Cycles)
				for _, b := range r.Profile.Buckets() {
					fmt.Fprintf(&sb, " %8.1f%%", 100*float64(b.Cycles)/float64(r.Cycles))
				}
				sb.WriteString("\n")
			}
		}
	}
	return sb.String()
}

// FormatFetch renders the fetch-pressure comparison.
func FormatFetch(rows []FetchRow) string {
	var sb strings.Builder
	sb.WriteString("Fetch pressure — word operations packed per dynamic instruction\n\n")
	kernels := orderedKeys(rows, func(r FetchRow) string { return r.Kernel })
	fmt.Fprintf(&sb, "  %-14s %8s %8s %8s %8s\n", "kernel", "Alpha", "MMX", "MDMX", "MOM")
	for _, k := range kernels {
		fmt.Fprintf(&sb, "  %-14s", k)
		for _, i := range AllISAs {
			for _, r := range rows {
				if r.Kernel == k && r.ISA == i {
					fmt.Fprintf(&sb, " %8.2f", r.OpsPerInst)
				}
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatHotspots renders per-PC hotspot reports as annotated disassembly
// listings: one block per workload×ISA, every executed static instruction
// with its dynamic count, attributed cycles (with percent of the run) and
// dominant stall bucket, plus memory-event counts when present.
func FormatHotspots(reps []HotspotReport) string {
	var sb strings.Builder
	sb.WriteString("Per-PC hotspots — attributed cycles per static instruction (rows sum to Cycles)\n")
	for _, rep := range reps {
		fmt.Fprintf(&sb, "\n%s / %s / %d-way / %s: %d cycles, %d insts, IPC %.3f\n",
			rep.Workload, rep.ISA, rep.Width, rep.MemName, rep.Cycles, rep.Insts,
			float64(rep.Insts)/float64(max(rep.Cycles, 1)))
		fmt.Fprintf(&sb, "  %4s  %-40s %10s %12s %6s  %-10s %s\n",
			"pc", "asm", "count", "cycles", "%", "bucket", "mem events")
		for _, r := range rep.Rows {
			name, cyc := dominantBucket(r.Profile)
			memev := ""
			if r.L1Misses+r.L2Misses+r.MSHRStalls+r.WriteBufStalls > 0 {
				memev = fmt.Sprintf("L1m %d L2m %d mshr %d wbuf %d",
					r.L1Misses, r.L2Misses, r.MSHRStalls, r.WriteBufStalls)
			}
			pct := 100 * float64(r.Cycles) / float64(max(rep.Cycles, 1))
			fmt.Fprintf(&sb, "  %4d  %-40s %10d %12d %5.1f%%  %-10s %s\n",
				r.PC, r.Asm, r.Count, r.Cycles, pct, fmt.Sprintf("%s %d", name, cyc), memev)
		}
	}
	return sb.String()
}

// dominantBucket returns the largest bucket of a profile (display name and
// cycles), preferring the earlier bucket in canonical order on ties.
func dominantBucket(p Profile) (string, int64) {
	best := ProfileBucket{Name: "commit"}
	for _, b := range p.Buckets() {
		if b.Cycles > best.Cycles {
			best = b
		}
	}
	return best.Name, best.Cycles
}

// orderedKeys extracts unique keys preserving first-seen order.
func orderedKeys[T any](rows []T, key func(T) string) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rows {
		k := key(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// SortRowsFigure5 orders rows kernel-major for stable output.
func SortRowsFigure5(rows []KernelSpeedup) {
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].Kernel != rows[b].Kernel {
			return rows[a].Kernel < rows[b].Kernel
		}
		if rows[a].ISA != rows[b].ISA {
			return rows[a].ISA < rows[b].ISA
		}
		return rows[a].Width < rows[b].Width
	})
}
