package mom

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/cpu"
)

// SampleSpec is the public sampled-simulation configuration (see
// cpu.SampleSpec): out of every Period dynamic instructions, Warmup are
// detailed-simulated and discarded, Interval are detailed-simulated and
// measured, and the rest fast-forward through functional warming. The zero
// value disables sampling — every driver treats a disabled spec as the
// exact path, bit-identically.
type SampleSpec struct {
	Period   uint64 `json:"period"`
	Warmup   uint64 `json:"warmup"`
	Interval uint64 `json:"interval"`

	// Parallelism is the worker count for the checkpoint-based parallel
	// interval path (cpu.SampleSpec.Parallelism). 0 — the default — means
	// "use every host core" (runtime.GOMAXPROCS); 1 forces the serial loop.
	// The knob is a pure speed lever: results are bit-identical at any
	// value, so it is excluded from JSON envelopes and content-address
	// keys (see JobRequest).
	Parallelism int `json:"-"`
}

// DefaultSampleSpec is the recommended sampling regime: ~10% of the stream
// measured in many short windows (a 150-instruction interval per 1501-
// instruction period, each window preceded by a 100-instruction detailed
// warmup on top of the continuous functional warming). The odd period keeps
// windows from phase-locking onto loop bodies. Calibrated on the test-scale
// applications: every app × ISA at 4-way lands within a few percent of the
// exact cycle count (TestSampledAccuracyApps pins the bound).
var DefaultSampleSpec = SampleSpec{Period: 1501, Warmup: 100, Interval: 150}

// Enabled reports whether the spec actually samples.
func (sp SampleSpec) Enabled() bool { return sp.Interval != 0 }

// Validate checks the spec's internal consistency.
func (sp SampleSpec) Validate() error { return sp.cpu().Validate() }

func (sp SampleSpec) cpu() cpu.SampleSpec {
	workers := sp.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return cpu.SampleSpec{Period: sp.Period, Warmup: sp.Warmup, Interval: sp.Interval, Parallelism: workers}
}

// String renders the spec in the "period:warmup:interval" form
// ParseSampleSpec accepts ("" when disabled).
func (sp SampleSpec) String() string {
	if !sp.Enabled() {
		return ""
	}
	return fmt.Sprintf("%d:%d:%d", sp.Period, sp.Warmup, sp.Interval)
}

// ParseSampleSpec parses "period:warmup:interval" (e.g. "50000:2000:2000");
// the empty string yields the disabled spec.
func ParseSampleSpec(s string) (SampleSpec, error) {
	if s == "" {
		return SampleSpec{}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return SampleSpec{}, fmt.Errorf("invalid sample spec %q (want period:warmup:interval)", s)
	}
	var vals [3]uint64
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return SampleSpec{}, fmt.Errorf("invalid sample spec %q: %v", s, err)
		}
		vals[i] = v
	}
	sp := SampleSpec{Period: vals[0], Warmup: vals[1], Interval: vals[2]}
	if err := sp.Validate(); err != nil {
		return SampleSpec{}, err
	}
	if !sp.Enabled() {
		return SampleSpec{}, fmt.Errorf("invalid sample spec %q: interval must be positive", s)
	}
	return sp, nil
}

// SampledInfo reports how a sampled run covered the stream and how good the
// estimate is; it rides on Result (and the experiment rows) only for
// sampled runs, so exact-mode JSON output is unchanged.
type SampledInfo struct {
	Period        uint64  `json:"period"`
	Warmup        uint64  `json:"warmup"`
	Interval      uint64  `json:"interval"`
	Intervals     int     `json:"intervals"`      // measured detailed windows
	MeasuredInsts uint64  `json:"measured_insts"` // instructions inside measured windows
	WarmupInsts   uint64  `json:"warmup_insts"`   // detailed-simulated but discarded
	SkippedInsts  uint64  `json:"skipped_insts"`  // fast-forwarded through warming
	TotalInsts    uint64  `json:"total_insts"`
	Coverage      float64 `json:"coverage"`   // measured / total
	EstCycles     int64   `json:"est_cycles"` // total-run cycle estimate at the sampled IPC
	IPCMean       float64 `json:"ipc_mean"`   // mean of per-window IPCs
	IPCStdErr     float64 `json:"ipc_stderr"` // stderr of that mean (interval variance)
}

// sampledInfo converts the cpu-level block, deriving coverage and the
// whole-run cycle estimate from the measured cycles/instructions.
func sampledInfo(s *cpu.Sampled, measuredCycles int64, measuredInsts uint64) *SampledInfo {
	if s == nil {
		return nil
	}
	info := &SampledInfo{
		Period: s.Spec.Period, Warmup: s.Spec.Warmup, Interval: s.Spec.Interval,
		Intervals:     s.Intervals,
		MeasuredInsts: s.MeasuredInsts,
		WarmupInsts:   s.WarmupInsts,
		SkippedInsts:  s.SkippedInsts,
		TotalInsts:    s.TotalInsts,
		Coverage:      s.Coverage(),
		IPCMean:       s.IPCMean,
		IPCStdErr:     s.IPCStdErr,
	}
	if measuredInsts > 0 {
		info.EstCycles = int64(math.Round(
			float64(s.TotalInsts) * float64(measuredCycles) / float64(measuredInsts)))
	}
	return info
}

// estOrExactCycles returns the comparable cycle count of a run: the
// whole-run estimate for sampled results, the exact count otherwise. The
// experiment drivers use it so sampled speed-up ratios compare estimated
// full runs rather than measured-window fragments.
func estOrExactCycles(r Result) int64 {
	if r.Sampled != nil {
		return r.Sampled.EstCycles
	}
	return r.Cycles
}

// RunKernelSampled times one kernel under the sampling regime. Unlike the
// always-live RunKernel it routes through the trace cache: functional
// fast-forward only wins wall-clock when it skips over a recording instead
// of re-emulating, so sampled runs capture once and sample the replay. A
// disabled spec reproduces RunKernel's result exactly.
func RunKernelSampled(kernel string, i ISA, width int, m MemModel, sc Scale, sp SampleSpec) (Result, error) {
	if err := sp.Validate(); err != nil {
		return Result{}, err
	}
	return runKernelCached(kernel, i, width, m, sc, sp)
}

// RunAppSampled is RunKernelSampled for a full application.
func RunAppSampled(app string, i ISA, width int, m MemModel, sc Scale, sp SampleSpec) (Result, error) {
	if err := sp.Validate(); err != nil {
		return Result{}, err
	}
	return runAppCached(app, i, width, m, sc, sp)
}
