package mom

import (
	"context"
	"strings"
	"testing"
)

// TestEveryWorkloadVerifies re-checks bit-exactness through the public API.
func TestEveryWorkloadVerifies(t *testing.T) {
	for _, k := range KernelNames() {
		for _, i := range AllISAs {
			k, i := k, i
			t.Run("kernel/"+k+"/"+i.String(), func(t *testing.T) {
				t.Parallel()
				if err := VerifyKernel(k, i, ScaleTest); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
	for _, a := range AppNames() {
		for _, i := range AllISAs {
			a, i := a, i
			t.Run("app/"+a+"/"+i.String(), func(t *testing.T) {
				t.Parallel()
				if err := VerifyApp(a, i, ScaleTest); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestFigure5Shape checks the qualitative claims of the kernel study.
func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5(context.Background(), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	get := func(k string, i ISA, w int) float64 {
		for _, r := range rows {
			if r.Kernel == k && r.ISA == i && r.Width == w {
				return r.Speedup
			}
		}
		t.Fatalf("missing row %s/%s/%d", k, i, w)
		return 0
	}
	for _, k := range KernelNames() {
		// Multimedia extensions beat scalar code everywhere.
		for _, w := range Widths {
			if get(k, MMX, w) <= get(k, Alpha, w) {
				t.Errorf("%s %d-way: MMX (%.2f) not faster than Alpha (%.2f)",
					k, w, get(k, MMX, w), get(k, Alpha, w))
			}
		}
		// MOM is at least competitive with MDMX at every width and strictly
		// better at 1-way (the fetch-pressure argument).
		if get(k, MOM, 1) <= get(k, MDMX, 1)*1.02 {
			t.Errorf("%s 1-way: MOM (%.2f) not clearly ahead of MDMX (%.2f)",
				k, get(k, MOM, 1), get(k, MDMX, 1))
		}
	}
	// MOM's relative advantage over MDMX shrinks as issue width grows for
	// the motion kernel (the embedded-domain argument).
	rel1 := get("motion1", MOM, 1) / get("motion1", MDMX, 1)
	rel4 := get("motion1", MOM, 4) / get("motion1", MDMX, 4)
	if rel1 <= rel4 {
		t.Errorf("motion1: MOM/MDMX advantage should shrink with width: 1-way %.2f, 4-way %.2f", rel1, rel4)
	}
	// rgb2ycc is MOM's weak kernel (tiny vector length).
	weak := get("rgb2ycc", MOM, 4) / get("rgb2ycc", MDMX, 4)
	strong := get("motion2", MOM, 4) / get("motion2", MDMX, 4)
	if weak > strong*1.5 {
		t.Errorf("rgb2ycc should be MOM's weak kernel: rgb ratio %.2f vs motion2 %.2f", weak, strong)
	}
}

// TestLatencyToleranceShape checks the Section 4.1 claim: MOM tolerates
// memory latency better than the packed ISAs and scalar code on the
// streaming kernels.
func TestLatencyToleranceShape(t *testing.T) {
	rows, err := LatencyStudy(context.Background(), ScaleTest, 4)
	if err != nil {
		t.Fatal(err)
	}
	slow := map[string]float64{}
	for _, r := range rows {
		slow[r.Kernel+"/"+r.ISA.String()] = r.Slowdown
	}
	// On the memory-streaming kernels MOM must degrade least.
	for _, k := range []string{"motion1", "motion2", "compensation", "addblock", "h2v2upsample"} {
		if slow[k+"/MOM"] >= slow[k+"/MMX"] {
			t.Errorf("%s: MOM slowdown %.2f not below MMX %.2f", k, slow[k+"/MOM"], slow[k+"/MMX"])
		}
		if slow[k+"/MOM"] >= slow[k+"/Alpha"] {
			t.Errorf("%s: MOM slowdown %.2f not below Alpha %.2f", k, slow[k+"/MOM"], slow[k+"/Alpha"])
		}
	}
}

// TestFigure7Shape checks the program-level claims.
func TestFigure7Shape(t *testing.T) {
	rows, err := Figure7(context.Background(), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	get := func(a string, cfg AppConfig, w int) float64 {
		for _, r := range rows {
			if r.App == a && r.Config == cfg && r.Width == w {
				return r.Speedup
			}
		}
		t.Fatalf("missing %s %v %d", a, cfg, w)
		return 0
	}
	var mmxSum, momSum float64
	for _, a := range AppNames() {
		for _, w := range []int{4, 8} {
			mmx := get(a, AppConfig{MMX, Conventional}, w)
			momMA := get(a, AppConfig{MOM, MultiAddress}, w)
			if mmx <= 1.0 {
				t.Errorf("%s %d-way: MMX speedup %.2f not above 1", a, w, mmx)
			}
			if momMA <= mmx {
				t.Errorf("%s %d-way: MOM (%.2f) not above MMX (%.2f)", a, w, momMA, mmx)
			}
			if w == 4 {
				mmxSum += mmx
				momSum += momMA
			}
		}
	}
	// Average MOM gain over MMX across applications (paper: ~20%).
	gain := momSum/mmxSum - 1
	if gain < 0.05 || gain > 0.60 {
		t.Errorf("mean MOM-over-MMX application gain %.1f%% outside the plausible band", 100*gain)
	}
	// mpeg2encode: the vector/collapsing caches lose the most vs
	// multi-address (large strides defeat line-pair gathering).
	encLoss := get("mpeg2encode", AppConfig{MOM, MultiAddress}, 8) /
		get("mpeg2encode", AppConfig{MOM, VectorCache}, 8)
	gsmLoss := get("gsmencode", AppConfig{MOM, MultiAddress}, 8) /
		get("gsmencode", AppConfig{MOM, VectorCache}, 8)
	if encLoss < gsmLoss {
		t.Errorf("vector cache should hurt mpeg2encode (loss %.3f) more than gsmencode (loss %.3f)",
			encLoss, gsmLoss)
	}
}

// TestTable2Shape checks the area-model reproduction.
func TestTable2Shape(t *testing.T) {
	rows := Table2()
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	if rows[0].NormalizedArea != 1.0 {
		t.Errorf("MMX area must normalise to 1.0, got %f", rows[0].NormalizedArea)
	}
	if a := rows[1].NormalizedArea; a < 1.1 || a > 1.3 {
		t.Errorf("MDMX area %f outside the paper's ~1.19 band", a)
	}
	if a := rows[2].NormalizedArea; a < 0.75 || a > 1.0 {
		t.Errorf("MOM area %f outside the paper's ~0.87 band", a)
	}
	// MOM's file is ~5x larger in raw bits yet cheaper in area.
	if rows[2].SizeBytes < 4*rows[0].SizeBytes {
		t.Errorf("MOM file %dB should be about 5x MMX %dB", rows[2].SizeBytes, rows[0].SizeBytes)
	}
}

// TestISACounts: the modelled instruction counts should be in the
// neighbourhood of the paper's library sizes (67 / 88 / 121).
func TestISACounts(t *testing.T) {
	mmx, mdmx, momN := ISACounts()
	if !(mmx < mdmx && mdmx < momN) {
		t.Errorf("counts must grow: %d %d %d", mmx, mdmx, momN)
	}
	if mmx < 45 || mmx > 90 {
		t.Errorf("MMX count %d far from the paper's 67", mmx)
	}
	if momN < 100 || momN > 160 {
		t.Errorf("MOM count %d far from the paper's 121", momN)
	}
}

// TestFormatters exercises the table renderers.
func TestFormatters(t *testing.T) {
	if s := FormatTable1(Table1(MOM)); !strings.Contains(s, "8-way") {
		t.Error("Table 1 output missing 8-way column")
	}
	if s := FormatTable2(Table2()); !strings.Contains(s, "Normalized area") {
		t.Error("Table 2 output missing area row")
	}
	if s := FormatTable3(Table3()); !strings.Contains(s, "vector-cache") {
		t.Error("Table 3 output missing vector cache row")
	}
}

// TestRunKernelErrors covers the error paths of the public API.
func TestRunKernelErrors(t *testing.T) {
	if _, err := RunKernel("nope", MOM, 4, PerfectMemory(1), ScaleTest); err == nil {
		t.Error("expected error for unknown kernel")
	}
	if _, err := RunApp("nope", MOM, 4, PerfectMemory(1), ScaleTest); err == nil {
		t.Error("expected error for unknown app")
	}
}

// TestRegisterSweepSaturates: the ablation behind Table 2's file size —
// performance must saturate at (or before) the paper's 20 physical matrix
// registers and degrade below it.
func TestRegisterSweepSaturates(t *testing.T) {
	rows, err := RegisterSweep(context.Background(), ScaleTest, "idct")
	if err != nil {
		t.Fatal(err)
	}
	byRegs := map[int]float64{}
	for _, r := range rows {
		byRegs[r.MomPhys] = r.Slowdown
	}
	if byRegs[17] < 1.2 {
		t.Errorf("17 physical registers should clearly hurt: %.3fx", byRegs[17])
	}
	if byRegs[20] > 1.05 {
		t.Errorf("20 physical registers should be within 5%% of saturation: %.3fx", byRegs[20])
	}
}

// TestCSVExports exercises the machine-readable outputs.
func TestCSVExports(t *testing.T) {
	rows := []KernelSpeedup{{Kernel: "motion1", ISA: MOM, Width: 4, Cycles: 100, IPC: 1.5, Speedup: 7}}
	var sb strings.Builder
	if err := WriteFigure5CSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "motion1,MOM,4,100,1.5000,7.0000") {
		t.Errorf("unexpected CSV: %q", sb.String())
	}
	sb.Reset()
	if err := WriteLatencyCSV(&sb, []LatencyRow{{Kernel: "idct", ISA: MMX, Width: 4, Cycles1: 10, Cycles50: 30, Slowdown: 3}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "idct,MMX,4,10,30,3.0000") {
		t.Errorf("unexpected CSV: %q", sb.String())
	}
	sb.Reset()
	if err := WriteFigure7CSV(&sb, []AppSpeedup{{App: "gsmencode", Config: AppConfig{MOM, VectorCache}, Width: 8, Cycles: 5, IPC: 1, Speedup: 2}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gsmencode,MOM,vector-cache,8,5,1.0000,2.0000") {
		t.Errorf("unexpected CSV: %q", sb.String())
	}
}
