package mom

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestHotspotAttributionIdentity is the exactness contract of the per-PC
// profiler: for every kernel, ISA and issue width, the per-PC attributed
// cycles must sum — bucket by bucket — to the cycle-attribution profile of
// a plain (unobserved) run, which itself sums to Cycles. Attaching the
// observer must not move a single cycle.
func TestHotspotAttributionIdentity(t *testing.T) {
	widths := []int{1, 2, 4, 8}
	for _, k := range KernelNames() {
		for _, i := range AllISAs {
			k, i := k, i
			t.Run(fmt.Sprintf("%s/%s", k, i), func(t *testing.T) {
				t.Parallel()
				for _, w := range widths {
					plain, err := runKernelCached(k, i, w, PerfectMemory(1), ScaleTest, SampleSpec{})
					if err != nil {
						t.Fatalf("plain %d-way: %v", w, err)
					}
					rep, err := KernelHotspots(k, i, w, PerfectMemory(1), ScaleTest)
					if err != nil {
						t.Fatalf("observed %d-way: %v", w, err)
					}
					if rep.Cycles != plain.Cycles || rep.Profile != plain.Profile {
						t.Errorf("%d-way: observed run diverges from plain\nplain:    %d cycles %+v\nobserved: %d cycles %+v",
							w, plain.Cycles, plain.Profile, rep.Cycles, rep.Profile)
					}
					if err := rep.CheckInvariants(); err != nil {
						t.Errorf("%d-way: %v", w, err)
					}
				}
			})
		}
	}
}

// TestHotspotAttributionIdentityApps spot-checks the application path under
// the detailed memory hierarchy, where the per-PC rows also carry memory
// events.
func TestHotspotAttributionIdentityApps(t *testing.T) {
	apps := AppNames()
	for n, i := range AllISAs {
		a, i := apps[n%len(apps)], i
		t.Run(fmt.Sprintf("%s/%s", a, i), func(t *testing.T) {
			t.Parallel()
			m := DetailedMemory(MultiAddress)
			plain, err := runAppCached(a, i, 4, m, ScaleTest, SampleSpec{})
			if err != nil {
				t.Fatalf("plain: %v", err)
			}
			rep, err := AppHotspots(a, i, 4, m, ScaleTest)
			if err != nil {
				t.Fatalf("observed: %v", err)
			}
			if rep.Cycles != plain.Cycles || rep.Profile != plain.Profile {
				t.Errorf("observed run diverges from plain\nplain:    %d cycles %+v\nobserved: %d cycles %+v",
					plain.Cycles, plain.Profile, rep.Cycles, rep.Profile)
			}
			if err := rep.CheckInvariants(); err != nil {
				t.Error(err)
			}
			// Under the detailed hierarchy some instruction must have missed.
			var l1 uint64
			for _, r := range rep.Rows {
				l1 += r.L1Misses
			}
			if plain.Mem.L1Misses > 0 && l1 == 0 {
				t.Errorf("run had %d L1 misses but no row claims any", plain.Mem.L1Misses)
			}
		})
	}
}

// TestHotspotJSONSchema pins the machine-readable hotspot schema: the
// experiment envelope and the snake_case row fields.
func TestHotspotJSONSchema(t *testing.T) {
	rep, err := KernelHotspots("idct", MOM, 4, PerfectMemory(1), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHotspotsJSON(&buf, []HotspotReport{rep}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Rows       []struct {
			Workload string           `json:"workload"`
			ISA      string           `json:"isa"`
			Cycles   int64            `json:"cycles"`
			Profile  map[string]int64 `json:"profile"`
			Rows     []map[string]any `json:"rows"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Experiment != "hotspots" || len(doc.Rows) != 1 {
		t.Fatalf("envelope = %q with %d rows", doc.Experiment, len(doc.Rows))
	}
	r := doc.Rows[0]
	if r.Workload != "idct" || r.ISA != "MOM" || r.Cycles != rep.Cycles {
		t.Errorf("report header = %+v", r)
	}
	var sum int64
	for _, v := range r.Profile {
		sum += v
	}
	if sum != r.Cycles {
		t.Errorf("JSON profile sums to %d, want %d", sum, r.Cycles)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no per-PC rows")
	}
	for _, key := range []string{"pc", "asm", "count", "cycles", "profile", "l1_misses", "mshr_stalls"} {
		if _, ok := r.Rows[0][key]; !ok {
			t.Errorf("per-PC row missing %q: %v", key, r.Rows[0])
		}
	}
}

// TestPipelineExportFormats exports a real kernel run through both writers
// and validates the outputs: the Kanata log round-trips through the parser,
// the Chrome trace parses as trace-event JSON, and both sinks recorded the
// requested window.
func TestPipelineExportFormats(t *testing.T) {
	var kanata, chrome bytes.Buffer
	const window = 500
	exp, err := ExportKernelPipeline("motion1", MOM, 4, PerfectMemory(1), ScaleTest,
		PipelineOptions{Start: 100, Count: window, Konata: &kanata, Chrome: &chrome})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Recorded != window {
		t.Errorf("recorded %d instructions, want %d", exp.Recorded, window)
	}
	st, err := obs.ParseKonata(bytes.NewReader(kanata.Bytes()))
	if err != nil {
		t.Fatalf("konata self-check: %v", err)
	}
	if st.Insts != window || st.Retired != window {
		t.Errorf("konata parsed %d insts, %d retired, want %d", st.Insts, st.Retired, window)
	}
	if !strings.Contains(kanata.String(), "vsad") && !strings.Contains(kanata.String(), "ldq") {
		t.Error("konata labels carry no disassembly")
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace: %v", err)
	}
	// One parent slice plus four stage slices per instruction.
	if got, want := len(doc.TraceEvents), window*5; got != want {
		t.Errorf("chrome trace has %d events, want %d", got, want)
	}
	// Exporting must not perturb the timing either.
	plain, err := runKernelCached("motion1", MOM, 4, PerfectMemory(1), ScaleTest, SampleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Result.Cycles != plain.Cycles {
		t.Errorf("export run took %d cycles, plain run %d", exp.Result.Cycles, plain.Cycles)
	}
	if _, err := ExportKernelPipeline("motion1", MOM, 4, PerfectMemory(1), ScaleTest, PipelineOptions{}); err == nil {
		t.Error("export without sinks should fail")
	}
}
