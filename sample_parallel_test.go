package mom

// Driver-level tests for parallel sampled simulation: bit-identity of the
// parallel path against the serial loop for every app × ISA × memory
// model, worker-count invariance down to the JSON envelope bytes, and the
// content-address key's independence from the parallelism knob.

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
)

// TestSampledParallelBitIdenticalApps: at DefaultSampleSpec, the parallel
// path (all host cores) must reproduce the serial path's Result verbatim
// for every application × ISA × memory model.
func TestSampledParallelBitIdenticalApps(t *testing.T) {
	for _, app := range AppNames() {
		for _, i := range AllISAs {
			for _, mn := range MemModelNames {
				app, i, mn := app, i, mn
				t.Run(fmt.Sprintf("%s/%s/%s", app, i, mn), func(t *testing.T) {
					t.Parallel()
					m, err := ParseMemModel(mn)
					if err != nil {
						t.Fatal(err)
					}
					serialSpec := DefaultSampleSpec
					serialSpec.Parallelism = 1
					serial, err := RunAppSampled(app, i, 4, m, ScaleTest, serialSpec)
					if err != nil {
						t.Fatal(err)
					}
					par, err := RunAppSampled(app, i, 4, m, ScaleTest, DefaultSampleSpec)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(serial, par) {
						t.Errorf("parallel sampled run differs from serial:\n%+v\nvs\n%+v", par, serial)
					}
				})
			}
		}
	}
}

// TestSampledParallelEnvelopeDeterminism: requests that differ only in the
// worker count must hash to the same content-address key AND produce
// byte-identical stored JSON envelopes — the two halves of the store's
// "identical work computed once" contract.
func TestSampledParallelEnvelopeDeterminism(t *testing.T) {
	base := JobRequest{
		Exp: "app", App: "gsmencode", ISA: "MOM", Mem: "multi",
		SamplePeriod:   DefaultSampleSpec.Period,
		SampleWarmup:   DefaultSampleSpec.Warmup,
		SampleInterval: DefaultSampleSpec.Interval,
	}
	var keys []string
	var docs [][]byte
	for _, workers := range []int{1, 2, 5} {
		req := base
		req.SamplePar = workers
		key, err := req.Key()
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
		doc, err := RunJobRequest(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, append([]byte(nil), doc...))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Errorf("worker count changed the content-address key: %s vs %s", keys[i], keys[0])
		}
		if !bytes.Equal(docs[i], docs[0]) {
			t.Errorf("worker count changed the stored envelope bytes:\n%s\nvs\n%s", docs[i], docs[0])
		}
	}
}

// TestRequestKeyExcludesParallelism: the canonical form itself must not
// carry the knob (key equality could otherwise hold by hash accident), and
// a negative worker count must be rejected for sample-consuming requests.
func TestRequestKeyExcludesParallelism(t *testing.T) {
	req := JobRequest{Exp: "fig7", SamplePeriod: 1501, SampleWarmup: 100, SampleInterval: 150, SamplePar: 7}
	n, err := req.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.SamplePar != 0 {
		t.Errorf("normalized request carries sample_par %d, want 0", n.SamplePar)
	}
	plain := req
	plain.SamplePar = 0
	a, err := req.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("canonical JSON differs under sample_par:\n%s\nvs\n%s", a, b)
	}
	bad := req
	bad.SamplePar = -1
	if _, err := bad.Normalized(); err == nil {
		t.Error("negative sample_par passed normalization")
	}
}
