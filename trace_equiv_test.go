package mom

import (
	"fmt"
	"reflect"
	"testing"
)

// equivConfigs are the machine configurations the equivalence tests cover:
// a narrow and a wide machine under the idealised memory, and both widths
// the detailed hierarchy supports (Table 3 only defines 4- and 8-way ports).
var equivConfigs = []struct {
	width int
	model MemModel
}{
	{1, PerfectMemory(1)},
	{8, PerfectMemory(1)},
	{4, DetailedMemory(MultiAddress)},
	{8, DetailedMemory(MultiAddress)},
}

// TestTraceReplayEquivalence is the contract of the capture/replay engine:
// timing a workload from its recorded trace must produce a Result
// field-for-field identical to the live interleaved emulate-and-time path,
// for every kernel on every ISA, at a narrow and a wide machine, under both
// the idealised and the detailed memory system.
func TestTraceReplayEquivalence(t *testing.T) {
	for _, k := range KernelNames() {
		for _, i := range AllISAs {
			k, i := k, i
			t.Run(fmt.Sprintf("%s/%s", k, i), func(t *testing.T) {
				t.Parallel()
				for _, c := range equivConfigs {
					live, err := RunKernel(k, i, c.width, c.model, ScaleTest)
					if err != nil {
						t.Fatalf("live %d-way %s: %v", c.width, c.model.Name(), err)
					}
					key := traceKey{name: k, isa: i, scale: ScaleTest}
					replay, ok, err := runTraced(key, c.width, c.model)
					if err != nil {
						t.Fatalf("replay %d-way %s: %v", c.width, c.model.Name(), err)
					}
					if !ok {
						t.Fatalf("no trace captured for %s/%s", k, i)
					}
					if !reflect.DeepEqual(live, replay) {
						t.Errorf("%d-way %s: replay diverges from live\nlive:   %+v\nreplay: %+v",
							c.width, c.model.Name(), live, replay)
					}
					// The cycle-attribution profile must be deterministic
					// too: DeepEqual above covers it, but diverging buckets
					// deserve their own message, and both sides must satisfy
					// the accounting identities.
					if live.Profile != replay.Profile {
						t.Errorf("%d-way %s: profile diverges\nlive:   %+v\nreplay: %+v",
							c.width, c.model.Name(), live.Profile, replay.Profile)
					}
					if err := live.CheckInvariants(); err != nil {
						t.Errorf("live invariants: %v", err)
					}
					if err := replay.CheckInvariants(); err != nil {
						t.Errorf("replay invariants: %v", err)
					}
				}
			})
		}
	}
}

// TestTraceReplayEquivalenceApps spot-checks the application path: one app
// per ISA, same two widths and memory systems.
func TestTraceReplayEquivalenceApps(t *testing.T) {
	apps := AppNames()
	for n, i := range AllISAs {
		a, i := apps[n%len(apps)], i
		t.Run(fmt.Sprintf("%s/%s", a, i), func(t *testing.T) {
			t.Parallel()
			for _, c := range equivConfigs {
				live, err := RunApp(a, i, c.width, c.model, ScaleTest)
				if err != nil {
					t.Fatalf("live %d-way %s: %v", c.width, c.model.Name(), err)
				}
				key := traceKey{app: true, name: a, isa: i, scale: ScaleTest}
				replay, ok, err := runTraced(key, c.width, c.model)
				if err != nil {
					t.Fatalf("replay %d-way %s: %v", c.width, c.model.Name(), err)
				}
				if !ok {
					t.Fatalf("no trace captured for %s/%s", a, i)
				}
				if !reflect.DeepEqual(live, replay) {
					t.Errorf("%d-way %s: replay diverges from live\nlive:   %+v\nreplay: %+v",
						c.width, c.model.Name(), live, replay)
				}
				if live.Profile != replay.Profile {
					t.Errorf("%d-way %s: profile diverges\nlive:   %+v\nreplay: %+v",
						c.width, c.model.Name(), live.Profile, replay.Profile)
				}
				if err := live.CheckInvariants(); err != nil {
					t.Errorf("live invariants: %v", err)
				}
			}
		})
	}
}
