package mom

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/trace"
)

// equivConfigs are the machine configurations the equivalence tests cover:
// a narrow and a wide machine under the idealised memory, and both widths
// the detailed hierarchy supports (Table 3 only defines 4- and 8-way ports).
var equivConfigs = []struct {
	width int
	model MemModel
}{
	{1, PerfectMemory(1)},
	{8, PerfectMemory(1)},
	{4, DetailedMemory(MultiAddress)},
	{8, DetailedMemory(MultiAddress)},
}

// TestTraceReplayEquivalence is the contract of the capture/replay engine:
// timing a workload from its recorded trace must produce a Result
// field-for-field identical to the live interleaved emulate-and-time path,
// for every kernel on every ISA, at a narrow and a wide machine, under both
// the idealised and the detailed memory system.
func TestTraceReplayEquivalence(t *testing.T) {
	for _, k := range KernelNames() {
		for _, i := range AllISAs {
			k, i := k, i
			t.Run(fmt.Sprintf("%s/%s", k, i), func(t *testing.T) {
				t.Parallel()
				for _, c := range equivConfigs {
					live, err := RunKernel(k, i, c.width, c.model, ScaleTest)
					if err != nil {
						t.Fatalf("live %d-way %s: %v", c.width, c.model.Name(), err)
					}
					key := traceKey{name: k, isa: i, scale: ScaleTest}
					replay, ok, err := runTraced(key, c.width, c.model, SampleSpec{})
					if err != nil {
						t.Fatalf("replay %d-way %s: %v", c.width, c.model.Name(), err)
					}
					if !ok {
						t.Fatalf("no trace captured for %s/%s", k, i)
					}
					if !reflect.DeepEqual(live, replay) {
						t.Errorf("%d-way %s: replay diverges from live\nlive:   %+v\nreplay: %+v",
							c.width, c.model.Name(), live, replay)
					}
					// The cycle-attribution profile must be deterministic
					// too: DeepEqual above covers it, but diverging buckets
					// deserve their own message, and both sides must satisfy
					// the accounting identities.
					if live.Profile != replay.Profile {
						t.Errorf("%d-way %s: profile diverges\nlive:   %+v\nreplay: %+v",
							c.width, c.model.Name(), live.Profile, replay.Profile)
					}
					if err := live.CheckInvariants(); err != nil {
						t.Errorf("live invariants: %v", err)
					}
					if err := replay.CheckInvariants(); err != nil {
						t.Errorf("replay invariants: %v", err)
					}
				}
			})
		}
	}
}

// digestObserver folds every event into a running FNV-1a hash, so two runs
// can be compared event-for-event without retaining millions of events.
type digestObserver struct {
	n   uint64
	sum uint64
}

func (d *digestObserver) Observe(ev *obs.Event) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d %d %d %d %v %d %d %d %d %d %d %d %d %d %v",
		ev.Seq, ev.PC, ev.Class, ev.VL, ev.Taken,
		ev.Fetch, ev.Dispatch, ev.Issue, ev.Complete, ev.Commit,
		ev.Committed, ev.Bucket, ev.ExecGap, ev.StoreGap, ev.Mem)
	d.n++
	d.sum = d.sum*31 + h.Sum64()
}

// TestTraceReplayEventEquivalence extends the replay contract to the
// observability layer: the obs.Event stream a timing run publishes must be
// identical whether the run is fed by the live emulator or by the recorded
// trace — every kernel, every ISA, a perfect and a detailed machine. The
// streams are compared through an order-sensitive digest; one configuration
// is additionally compared event-for-event.
func TestTraceReplayEventEquivalence(t *testing.T) {
	runDigest := func(k string, i ISA, width int, m MemModel, src trace.Source) (digestObserver, error) {
		var d digestObserver
		sim := cpu.New(cpu.NewConfig(width, i.ext()), m.build(width))
		sim.Obs = &d
		_, err := sim.Run(src, maxDynInsts)
		return d, err
	}
	liveSource := func(k string, i ISA) trace.Source {
		kk, err := kernels.ByName(k, kernels.Scale(ScaleTest))
		if err != nil {
			t.Fatal(err)
		}
		return trace.NewLive(emu.New(kk.Build(i.ext())))
	}
	for _, k := range KernelNames() {
		for _, i := range AllISAs {
			k, i := k, i
			t.Run(fmt.Sprintf("%s/%s", k, i), func(t *testing.T) {
				t.Parallel()
				tr := cachedTrace(traceKey{name: k, isa: i, scale: ScaleTest})
				if tr == nil {
					t.Fatalf("no trace captured for %s/%s", k, i)
				}
				for _, c := range []struct {
					width int
					model MemModel
				}{{4, PerfectMemory(1)}, {4, DetailedMemory(MultiAddress)}} {
					live, err := runDigest(k, i, c.width, c.model, liveSource(k, i))
					if err != nil {
						t.Fatalf("live %s: %v", c.model.Name(), err)
					}
					replay, err := runDigest(k, i, c.width, c.model, tr.Reader())
					if err != nil {
						t.Fatalf("replay %s: %v", c.model.Name(), err)
					}
					if live != replay {
						t.Errorf("%s: event streams diverge (live %d events digest %x, replay %d events digest %x)",
							c.model.Name(), live.n, live.sum, replay.n, replay.sum)
					}
				}
			})
		}
	}

	// One configuration compared event-for-event, so a digest bug cannot
	// mask a divergence silently.
	tr := cachedTrace(traceKey{name: "idct", isa: MOM, scale: ScaleTest})
	if tr == nil {
		t.Fatal("no trace captured for idct/MOM")
	}
	record := func(src trace.Source) []obs.Event {
		rec := &obs.Recorder{}
		sim := cpu.New(cpu.NewConfig(4, MOM.ext()), DetailedMemory(MultiAddress).build(4))
		sim.Obs = rec
		if _, err := sim.Run(src, maxDynInsts); err != nil {
			t.Fatal(err)
		}
		return rec.Events
	}
	live := record(liveSource("idct", MOM))
	replay := record(tr.Reader())
	if !reflect.DeepEqual(live, replay) {
		for n := range live {
			if n < len(replay) && live[n] != replay[n] {
				t.Fatalf("event %d diverges\nlive:   %+v\nreplay: %+v", n, live[n], replay[n])
			}
		}
		t.Fatalf("event streams differ in length: live %d, replay %d", len(live), len(replay))
	}
}

// TestTraceReplayEquivalenceApps spot-checks the application path: one app
// per ISA, same two widths and memory systems.
func TestTraceReplayEquivalenceApps(t *testing.T) {
	apps := AppNames()
	for n, i := range AllISAs {
		a, i := apps[n%len(apps)], i
		t.Run(fmt.Sprintf("%s/%s", a, i), func(t *testing.T) {
			t.Parallel()
			for _, c := range equivConfigs {
				live, err := RunApp(a, i, c.width, c.model, ScaleTest)
				if err != nil {
					t.Fatalf("live %d-way %s: %v", c.width, c.model.Name(), err)
				}
				key := traceKey{app: true, name: a, isa: i, scale: ScaleTest}
				replay, ok, err := runTraced(key, c.width, c.model, SampleSpec{})
				if err != nil {
					t.Fatalf("replay %d-way %s: %v", c.width, c.model.Name(), err)
				}
				if !ok {
					t.Fatalf("no trace captured for %s/%s", a, i)
				}
				if !reflect.DeepEqual(live, replay) {
					t.Errorf("%d-way %s: replay diverges from live\nlive:   %+v\nreplay: %+v",
						c.width, c.model.Name(), live, replay)
				}
				if live.Profile != replay.Profile {
					t.Errorf("%d-way %s: profile diverges\nlive:   %+v\nreplay: %+v",
						c.width, c.model.Name(), live.Profile, replay.Profile)
				}
				if err := live.CheckInvariants(); err != nil {
					t.Errorf("live invariants: %v", err)
				}
			}
		})
	}
}
