package mom

import (
	"context"
	"fmt"
	"testing"
)

// TestProfileSumsToCycles is the core identity of the attribution layer:
// for every kernel, ISA, width, and memory system, the stall buckets sum
// exactly to the cycle count, and the memory-event counters obey their own
// identities (CheckInvariants covers both).
func TestProfileSumsToCycles(t *testing.T) {
	type machine struct {
		width int
		model MemModel
	}
	var machines []machine
	for _, w := range []int{1, 2, 4, 8} {
		machines = append(machines, machine{w, PerfectMemory(1)})
	}
	machines = append(machines, machine{4, PerfectMemory(50)})
	for _, w := range []int{4, 8} {
		for _, c := range []CacheMode{Conventional, MultiAddress, VectorCache, CollapsingBuffer} {
			machines = append(machines, machine{w, DetailedMemory(c)})
		}
	}
	for _, k := range KernelNames() {
		for _, i := range AllISAs {
			k, i := k, i
			t.Run(fmt.Sprintf("%s/%s", k, i), func(t *testing.T) {
				t.Parallel()
				for _, m := range machines {
					res, err := RunKernel(k, i, m.width, m.model, ScaleTest)
					if err != nil {
						t.Fatalf("%d-way %s: %v", m.width, m.model.Name(), err)
					}
					if err := res.CheckInvariants(); err != nil {
						t.Errorf("%d-way %s: %v", m.width, m.model.Name(), err)
					}
					if res.Profile.Commit == 0 {
						t.Errorf("%d-way %s: no commit cycles in a non-empty run", m.width, m.model.Name())
					}
				}
			})
		}
	}
}

// TestProfileSumsToCyclesApps spot-checks the application path (longer
// programs with real branch behaviour) under the detailed hierarchy.
func TestProfileSumsToCyclesApps(t *testing.T) {
	apps := AppNames()
	for n, i := range AllISAs {
		a, i := apps[n%len(apps)], i
		t.Run(fmt.Sprintf("%s/%s", a, i), func(t *testing.T) {
			t.Parallel()
			for _, m := range []MemModel{PerfectMemory(1), DetailedMemory(MultiAddress)} {
				res, err := RunApp(a, i, 4, m, ScaleTest)
				if err != nil {
					t.Fatalf("%s: %v", m.Name(), err)
				}
				if err := res.CheckInvariants(); err != nil {
					t.Errorf("%s: %v", m.Name(), err)
				}
			}
		})
	}
}

// TestProfileMemWaitTracksLatency checks the taxonomy is meaningful, not
// just self-consistent: raising the idealised memory latency from 1 to 50
// cycles must grow the memory-wait share of every scalar ISA's profile.
func TestProfileMemWaitTracksLatency(t *testing.T) {
	for _, i := range []ISA{Alpha, MMX} {
		fast, err := RunKernel("motion1", i, 4, PerfectMemory(1), ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := RunKernel("motion1", i, 4, PerfectMemory(50), ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		if slow.Profile.MemWait <= fast.Profile.MemWait {
			t.Errorf("%s: MemWait did not grow with latency: %d (lat 1) vs %d (lat 50)",
				i, fast.Profile.MemWait, slow.Profile.MemWait)
		}
	}
}

// TestProfileStudyInvariants runs the experiment driver end to end: every
// row must already have passed CheckInvariants inside ProfileStudy, and the
// study must cover every kernel × ISA × both memories.
func TestProfileStudyInvariants(t *testing.T) {
	rows, err := ProfileStudy(context.Background(), ScaleTest, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := len(KernelNames()) * len(AllISAs) * 2
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if total := r.Profile.Total(); total != r.Cycles {
			t.Errorf("%s/%s (%s): buckets sum to %d, want %d", r.Kernel, r.ISA, r.MemName, total, r.Cycles)
		}
	}
}
