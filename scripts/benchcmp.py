#!/usr/bin/env python3
"""Compare a benchjson.py run against a committed baseline.

Usage: benchcmp.py baseline.json current.json [--max-regress 0.15] [--bench NAME ...]

Each --bench NAME selects the benchmark with that exact name, or — for
table-driven benchmarks that only exist as sub-benchmarks — every record
under NAME/ summed into one ns/op total, so the gate tracks the whole
suite's wall-clock rather than one noisy row. The current total must not
exceed the baseline's by more than the --max-regress fraction.

Benchmarks missing from either side are reported but do not fail the
gate, so adding or retiring a benchmark never blocks CI; only a slowdown
of an existing one does.

Exit status: 0 when every compared benchmark is within bound, 1 otherwise.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("benchmarks", [])


def total_ns(records, name):
    """Sum ns/op over the exact benchmark or its sub-benchmarks."""
    total, n = 0.0, 0
    for rec in records:
        if rec["name"] == name or rec["name"].startswith(name + "/"):
            ns = rec.get("ns_per_op")
            if ns:
                total += ns
                n += 1
    return total, n


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=0.15,
                    help="allowed fractional ns/op increase (default 0.15)")
    ap.add_argument("--bench", action="append", default=[],
                    help="benchmark name to gate on (repeatable; prefix for sub-benchmarks)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    names = args.bench or sorted(
        {r["name"].split("/")[0] for r in base} & {r["name"].split("/")[0] for r in cur})

    failed = False
    for name in names:
        bn, bcount = total_ns(base, name)
        cn, ccount = total_ns(cur, name)
        if bcount == 0 or ccount == 0:
            where = "baseline" if bcount == 0 else "current run"
            print(f"SKIP {name}: missing from {where}")
            continue
        ratio = cn / bn
        verdict = "ok"
        if ratio > 1 + args.max_regress:
            verdict = f"FAIL (> {100 * args.max_regress:.0f}% regression)"
            failed = True
        print(f"{name}: {bn:.0f} -> {cn:.0f} ns/op over {ccount} rows "
              f"({100 * (ratio - 1):+.1f}%) {verdict}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
