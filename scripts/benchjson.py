#!/usr/bin/env python3
"""Convert `go test -bench` output into a JSON benchmark summary.

Usage: benchjson.py bench.txt > BENCH_ci.json

Each benchmark line becomes one record with its name, iteration count,
ns/op, and every custom metric go's harness printed (e.g. the simulated
cycle counts and speed-ups b.ReportMetric emits). Lines that are not
benchmark results are ignored, so the raw `go test` stream can be piped
straight through `tee`.
"""

import json
import re
import sys

# e.g. "BenchmarkFigure5-8   1   123456 ns/op   2.68 MOM-vs-Alpha-4way"
LINE = re.compile(r"^(Benchmark\S+)\s+(\d+)\s+(.*)$")
METRIC = re.compile(r"([0-9.eE+-]+)\s+(\S+)")


def parse(stream):
    out = []
    for line in stream:
        m = LINE.match(line.strip())
        if not m:
            continue
        name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
        rec = {"name": name, "iterations": iters, "metrics": {}}
        for value, unit in METRIC.findall(rest):
            try:
                v = float(value)
            except ValueError:
                continue
            if unit == "ns/op":
                rec["ns_per_op"] = v
            else:
                rec["metrics"][unit] = v
        out.append(rec)
    return out


def main():
    if len(sys.argv) > 1:
        with open(sys.argv[1]) as f:
            results = parse(f)
    else:
        results = parse(sys.stdin)
    json.dump({"benchmarks": results}, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
