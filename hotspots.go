package mom

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/trace"
)

// HotspotRow attributes a run's cycles to one static instruction: its
// disassembly, dynamic execution count, cycle-attribution profile and the
// memory-system events its dynamic instances triggered. Rows with zero
// dynamic count are omitted from reports.
type HotspotRow struct {
	PC             int     `json:"pc"`
	Asm            string  `json:"asm"`
	Count          uint64  `json:"count"`
	Cycles         int64   `json:"cycles"`
	Profile        Profile `json:"profile"`
	L1Misses       uint64  `json:"l1_misses"`
	L2Misses       uint64  `json:"l2_misses"`
	MSHRStalls     uint64  `json:"mshr_stalls"`
	WriteBufStalls uint64  `json:"write_buf_stalls"`
}

// HotspotReport is the per-PC hotspot profile of one timed run. The per-row
// profiles partition the run's cycles: summed bucket by bucket over Rows
// they reproduce Profile exactly, and Profile sums to Cycles (enforced by
// CheckInvariants and the test suite).
type HotspotReport struct {
	Workload string       `json:"workload"`
	ISA      ISA          `json:"isa"`
	Width    int          `json:"width"`
	MemName  string       `json:"mem"`
	Cycles   int64        `json:"cycles"`
	Insts    uint64       `json:"insts"`
	Profile  Profile      `json:"profile"`
	Rows     []HotspotRow `json:"rows"`
	Sampled  *SampledInfo `json:"sampled,omitempty"`
}

// CheckInvariants verifies the exactness of the per-PC attribution: row
// profiles sum bucket-by-bucket to the run profile, row cycles equal each
// row's profile total, and the run profile sums to Cycles. Degenerate runs
// that graduated no instructions have no rows to check.
func (h HotspotReport) CheckInvariants() error {
	if h.Insts == 0 {
		return nil
	}
	if t := h.Profile.Total(); t != h.Cycles {
		return fmt.Errorf("%s/%s/%d-way (%s): profile buckets sum to %d, want Cycles=%d",
			h.Workload, h.ISA, h.Width, h.MemName, t, h.Cycles)
	}
	var sum Profile
	for _, r := range h.Rows {
		if r.Profile.Total() != r.Cycles {
			return fmt.Errorf("%s/%s/%d-way (%s): PC %d row profile sums to %d, want %d",
				h.Workload, h.ISA, h.Width, h.MemName, r.PC, r.Profile.Total(), r.Cycles)
		}
		sum.Commit += r.Profile.Commit
		sum.Frontend += r.Profile.Frontend
		sum.Mispredict += r.Profile.Mispredict
		sum.RenameROB += r.Profile.RenameROB
		sum.IssueQueue += r.Profile.IssueQueue
		sum.FU += r.Profile.FU
		sum.MemWait += r.Profile.MemWait
		sum.StoreCommit += r.Profile.StoreCommit
		sum.DepLatency += r.Profile.DepLatency
	}
	if sum != h.Profile {
		return fmt.Errorf("%s/%s/%d-way (%s): per-PC buckets sum to %+v, want %+v",
			h.Workload, h.ISA, h.Width, h.MemName, sum, h.Profile)
	}
	return nil
}

// runObserved times one workload with an observer attached to the pipeline,
// replaying the cached trace when one is available and falling back to live
// emulation otherwise (both paths publish identical event streams).
// Under a sampling regime the observer sees measured-interval instructions
// only, so per-PC aggregations still sum exactly to the (measured-interval)
// run profile.
func runObserved(app bool, name string, i ISA, width int, m MemModel, sc Scale, sp SampleSpec, o obs.Observer) (Result, error) {
	key := traceKey{app: app, name: name, isa: i, scale: sc}
	sim := cpu.New(cpu.NewConfig(width, i.ext()), m.build(width))
	sim.Obs = o
	var src trace.Source
	tr, cause := cachedTraceCause(key)
	switch {
	case tr != nil:
		traceStats.replays.Add(1)
		src = tr.Reader()
	default:
		if cause == liveBudget {
			// The trace would not fit RAM but may be persisted: stream it.
			if st, closer, ok := openArtifactStream(key); ok {
				defer closer.Close()
				traceStats.replays.Add(1)
				traceStats.streamReplays.Add(1)
				src = st
			}
		}
		if src == nil {
			countLiveRun(cause)
			var mk *emu.Machine
			if app {
				a, err := apps.ByName(name, apps.Scale(sc))
				if err != nil {
					return Result{}, err
				}
				mk = emu.New(a.Build(i.ext()))
			} else {
				k, err := kernels.ByName(name, kernels.Scale(sc))
				if err != nil {
					return Result{}, err
				}
				mk = emu.New(k.Build(i.ext()))
			}
			src = trace.NewLive(mk)
		}
	}
	res, err := sim.RunSampled(src, maxDynInsts, sp.cpu())
	if err != nil {
		return Result{}, fmt.Errorf("mom: %s on %s/%d-way: %w", name, i, width, err)
	}
	return fromCPU(name, i, width, m.Name(), res), nil
}

// hotspotReport times one workload with a Hotspot aggregator attached and
// assembles the per-PC report, rows sorted by attributed cycles (then PC).
func hotspotReport(app bool, name string, i ISA, width int, m MemModel, sc Scale, sp SampleSpec) (HotspotReport, error) {
	var p *isa.Program
	var err error
	if app {
		p, err = BuildApp(name, i, sc)
	} else {
		p, err = BuildKernel(name, i, sc)
	}
	if err != nil {
		return HotspotReport{}, err
	}
	hot := obs.NewHotspot(len(p.Insts))
	res, err := runObserved(app, name, i, width, m, sc, sp, hot)
	if err != nil {
		return HotspotReport{}, err
	}
	rep := HotspotReport{
		Workload: res.Workload, ISA: res.ISA, Width: res.Width, MemName: res.MemName,
		Cycles: res.Cycles, Insts: res.Insts, Profile: res.Profile, Sampled: res.Sampled,
	}
	for pc := 0; pc < hot.Statics(); pc++ {
		n := hot.Count(pc)
		if n == 0 {
			continue
		}
		b := hot.Buckets(pc)
		prof := Profile{
			Commit:      b[obs.BucketCommit],
			Frontend:    b[obs.BucketFrontend],
			Mispredict:  b[obs.BucketMispredict],
			RenameROB:   b[obs.BucketRenameROB],
			IssueQueue:  b[obs.BucketIssueQueue],
			FU:          b[obs.BucketFU],
			MemWait:     b[obs.BucketMemWait],
			StoreCommit: b[obs.BucketStoreCommit],
			DepLatency:  b[obs.BucketDepLatency],
		}
		l1, l2, mshr, wbuf := hot.MemEvents(pc)
		rep.Rows = append(rep.Rows, HotspotRow{
			PC: pc, Asm: p.Insts[pc].String(), Count: n,
			Cycles: prof.Total(), Profile: prof,
			L1Misses: l1, L2Misses: l2, MSHRStalls: mshr, WriteBufStalls: wbuf,
		})
	}
	sort.SliceStable(rep.Rows, func(a, b int) bool {
		if rep.Rows[a].Cycles != rep.Rows[b].Cycles {
			return rep.Rows[a].Cycles > rep.Rows[b].Cycles
		}
		return rep.Rows[a].PC < rep.Rows[b].PC
	})
	return rep, nil
}

// KernelHotspots profiles one kernel per static instruction.
func KernelHotspots(kernel string, i ISA, width int, m MemModel, sc Scale) (HotspotReport, error) {
	return hotspotReport(false, kernel, i, width, m, sc, SampleSpec{})
}

// AppHotspots profiles one application per static instruction.
func AppHotspots(app string, i ISA, width int, m MemModel, sc Scale) (HotspotReport, error) {
	return hotspotReport(true, app, i, width, m, sc, SampleSpec{})
}

// AppHotspotsSampled profiles an application under a sampling regime: the
// per-PC buckets cover (and sum exactly to) the measured intervals.
func AppHotspotsSampled(app string, i ISA, width int, m MemModel, sc Scale, sp SampleSpec) (HotspotReport, error) {
	if err := sp.Validate(); err != nil {
		return HotspotReport{}, err
	}
	return hotspotReport(true, app, i, width, m, sc, sp)
}

// HotspotStudy profiles every kernel at every ISA level on the given issue
// width with perfect memory (the machine of the kernel study), checking the
// attribution invariants of every report.
func HotspotStudy(ctx context.Context, sc Scale, width int) ([]HotspotReport, error) {
	return HotspotStudySampled(ctx, sc, width, SampleSpec{})
}

// HotspotStudySampled is HotspotStudy under a sampling regime; every
// report's attribution invariants are still checked exactly. A disabled
// spec is bit-identical to HotspotStudy.
func HotspotStudySampled(ctx context.Context, sc Scale, width int, sp SampleSpec) ([]HotspotReport, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	names := KernelNames()
	warmTraces(ctx, false, names, AllISAs, sc)
	type job struct {
		name string
		isa  ISA
	}
	var jobs []job
	for _, n := range names {
		for _, i := range AllISAs {
			jobs = append(jobs, job{n, i})
		}
	}
	out := make([]HotspotReport, len(jobs))
	err := par.For(ctx, len(jobs), func(idx int) error {
		rep, err := hotspotReport(false, jobs[idx].name, jobs[idx].isa, width, PerfectMemory(1), sc, sp)
		if err != nil {
			return err
		}
		if err := rep.CheckInvariants(); err != nil {
			return err
		}
		out[idx] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
