package mom

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/store"
	"repro/internal/trace"
)

// installArtifactDir opens a trace artifact store over dir and installs it
// process-wide for the duration of the test, restoring the previous store
// (and fetcher) afterwards.
func installArtifactDir(t testing.TB, dir string) *store.Store {
	t.Helper()
	prev := TraceArtifacts()
	prevF := traceFetcher.Load()
	s, err := store.Open(dir, 0)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	SetTraceArtifacts(s)
	t.Cleanup(func() {
		SetTraceArtifacts(prev)
		traceFetcher.Store(prevF)
	})
	return s
}

// artifactPath locates the on-disk file of one workload's artifact.
func artifactPath(t *testing.T, dir string, key traceKey) string {
	t.Helper()
	akey := key.artifactKey()
	p := filepath.Join(dir, akey[:2], akey)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("artifact for %v not on disk: %v", key, err)
	}
	return p
}

// TestArtifactWriteThroughAndWarmReload: a fresh capture is written through
// to the artifact store, and after the RAM slot is dropped (a process
// restart, as far as the trace cache can tell) the same workload fills from
// disk with zero recaptures.
func TestArtifactWriteThroughAndWarmReload(t *testing.T) {
	dir := t.TempDir()
	st := installArtifactDir(t, dir)
	key := traceKey{name: "addblock", isa: Alpha, scale: ScaleTest}
	resetTraceEntry(t, key)
	defer resetTraceEntry(t, key)
	base := ReadTraceStats()

	// Cold: the store misses, the capture runs and writes through.
	tr := cachedTrace(key)
	if tr == nil {
		t.Fatal("cold fill returned no trace")
	}
	st1 := ReadTraceStats()
	if c := st1.Captures - base.Captures; c != 1 {
		t.Fatalf("cold fill ran %d captures, want 1", c)
	}
	if d := st1.DiskMisses - base.DiskMisses; d != 1 {
		t.Fatalf("cold fill counted %d disk misses, want 1", d)
	}
	if w := st1.DiskWrites - base.DiskWrites; w != 1 {
		t.Fatalf("cold fill wrote %d artifacts, want 1", w)
	}
	if !st.Has(key.artifactKey()) {
		t.Fatal("capture did not persist an artifact")
	}

	// Warm: drop the RAM slot; the artifact fills it without a capture.
	resetTraceEntry(t, key)
	tr2 := cachedTrace(key)
	if tr2 == nil {
		t.Fatal("warm fill returned no trace")
	}
	st2 := ReadTraceStats()
	if c := st2.Captures - st1.Captures; c != 0 {
		t.Fatalf("warm fill ran %d captures, want 0", c)
	}
	if h := st2.DiskHits - st1.DiskHits; h != 1 {
		t.Fatalf("warm fill counted %d disk hits, want 1", h)
	}
	if tr.Records() != tr2.Records() || tr.Bytes() != tr2.Bytes() {
		t.Fatalf("disk-filled trace shape %d/%d differs from capture %d/%d",
			tr2.Records(), tr2.Bytes(), tr.Records(), tr.Records())
	}
}

// TestArtifactReplayEquivalenceReopenedStore: replaying from an artifact
// store that was closed and reopened (a real restart: fresh Store instance
// over the same directory) is bit-identical to the fresh-capture replay,
// app x ISA.
func TestArtifactReplayEquivalenceReopenedStore(t *testing.T) {
	apps := AppNames()
	if len(apps) == 0 {
		t.Skip("no applications registered")
	}
	app := apps[0]
	dir := t.TempDir()
	for _, i := range []ISA{Alpha, MOM} {
		key := traceKey{app: true, name: app, isa: i, scale: ScaleTest}
		installArtifactDir(t, dir)
		resetTraceEntry(t, key)
		fresh, err := runAppCached(app, i, 4, PerfectMemory(1), ScaleTest, SampleSpec{})
		if err != nil {
			t.Fatalf("%s/%s fresh run: %v", app, i, err)
		}
		capBase := ReadTraceStats()

		// Reopen the directory as a brand-new store and drop the RAM slot.
		installArtifactDir(t, dir)
		resetTraceEntry(t, key)
		warm, err := runAppCached(app, i, 4, PerfectMemory(1), ScaleTest, SampleSpec{})
		if err != nil {
			t.Fatalf("%s/%s warm run: %v", app, i, err)
		}
		st := ReadTraceStats()
		if c := st.Captures - capBase.Captures; c != 0 {
			t.Fatalf("%s/%s: warm run recaptured (%d captures)", app, i, c)
		}
		if h := st.DiskHits - capBase.DiskHits; h != 1 {
			t.Fatalf("%s/%s: warm run counted %d disk hits, want 1", app, i, h)
		}
		if !reflect.DeepEqual(fresh, warm) {
			t.Errorf("%s/%s: disk replay diverged from fresh capture:\nfresh %+v\nwarm  %+v",
				app, i, fresh, warm)
		}
		resetTraceEntry(t, key)
	}
}

// TestArtifactCorruptionRecaptures: a damaged artifact payload reads as a
// miss — the trace is recaptured and the bad file replaced, never decoded
// into a wrong trace.
func TestArtifactCorruptionRecaptures(t *testing.T) {
	dir := t.TempDir()
	st := installArtifactDir(t, dir)
	key := traceKey{name: "idct", isa: MOM, scale: ScaleTest}
	resetTraceEntry(t, key)
	defer resetTraceEntry(t, key)
	if cachedTrace(key) == nil {
		t.Fatal("cold fill returned no trace")
	}
	p := artifactPath(t, dir, key)
	blob, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xff // damage the payload, not the store header
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	resetTraceEntry(t, key)
	base := ReadTraceStats()
	if cachedTrace(key) == nil {
		t.Fatal("fill after corruption returned no trace")
	}
	stats := ReadTraceStats()
	if c := stats.Captures - base.Captures; c != 1 {
		t.Fatalf("corrupt artifact recaptured %d times, want 1", c)
	}
	if h := stats.DiskHits - base.DiskHits; h != 0 {
		t.Fatalf("corrupt artifact counted as %d disk hits", h)
	}
	if !st.Has(key.artifactKey()) {
		t.Fatal("recapture did not rewrite the artifact")
	}

	// The rewritten artifact must be wholesome again.
	resetTraceEntry(t, key)
	if cachedTrace(key) == nil {
		t.Fatal("fill from rewritten artifact failed")
	}
	if c := ReadTraceStats().Captures - stats.Captures; c != 0 {
		t.Fatalf("rewritten artifact recaptured (%d captures)", c)
	}
}

// TestArtifactFingerprintMismatchRecaptures: an artifact whose bytes encode
// a different program (here: planted under the wrong content address) fails
// fingerprint verification and reads as a miss, never as the wrong trace.
func TestArtifactFingerprintMismatchRecaptures(t *testing.T) {
	dir := t.TempDir()
	st := installArtifactDir(t, dir)
	donor := traceKey{name: "addblock", isa: Alpha, scale: ScaleTest}
	victim := traceKey{name: "idct", isa: Alpha, scale: ScaleTest}
	resetTraceEntry(t, donor)
	defer resetTraceEntry(t, donor)
	tr := cachedTrace(donor)
	if tr == nil {
		t.Fatal("donor capture failed")
	}
	blob, err := encodeArtifact(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(victim.artifactKey(), blob); err != nil {
		t.Fatal(err)
	}

	resetTraceEntry(t, victim)
	defer resetTraceEntry(t, victim)
	base := ReadTraceStats()
	got := cachedTrace(victim)
	if got == nil {
		t.Fatal("victim fill returned no trace")
	}
	stats := ReadTraceStats()
	if c := stats.Captures - base.Captures; c != 1 {
		t.Fatalf("mismatched artifact recaptured %d times, want 1", c)
	}
	if h := stats.DiskHits - base.DiskHits; h != 0 {
		t.Fatalf("mismatched artifact counted as %d disk hits", h)
	}
	if got.Records() == tr.Records() && got.Bytes() == tr.Bytes() {
		t.Fatal("victim fill appears to have adopted the donor trace")
	}
}

// TestArtifactKeySeparation: the content address separates workload kind,
// name, ISA, scale and format version — no two distinct workloads share an
// artifact.
func TestArtifactKeySeparation(t *testing.T) {
	keys := map[string]string{
		"kernel": TraceArtifactKey(false, "idct", Alpha, ScaleTest),
		"app":    TraceArtifactKey(true, "idct", Alpha, ScaleTest),
		"name":   TraceArtifactKey(false, "addblock", Alpha, ScaleTest),
		"isa":    TraceArtifactKey(false, "idct", MOM, ScaleTest),
		"scale":  TraceArtifactKey(false, "idct", Alpha, ScaleBench),
	}
	seen := map[string]string{}
	for dim, k := range keys {
		if len(k) != 64 {
			t.Fatalf("%s key %q is not a content address", dim, k)
		}
		if prev, ok := seen[k]; ok {
			t.Fatalf("keys for %s and %s collide", dim, prev)
		}
		seen[k] = dim
	}
}

// TestArtifactConcurrentFill: many goroutines requesting a disk-resident
// trace through an empty RAM slot perform exactly one artifact decode —
// the slot's single-flight covers the disk path like it covers captures.
func TestArtifactConcurrentFill(t *testing.T) {
	dir := t.TempDir()
	installArtifactDir(t, dir)
	key := traceKey{name: "rgb2ycc", isa: MOM, scale: ScaleTest}
	resetTraceEntry(t, key)
	defer resetTraceEntry(t, key)
	if cachedTrace(key) == nil {
		t.Fatal("cold fill returned no trace")
	}
	resetTraceEntry(t, key)
	base := ReadTraceStats()

	const n = 16
	got := make([]*trace.Trace, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = cachedTrace(key)
		}(w)
	}
	wg.Wait()
	for w := 1; w < n; w++ {
		if got[w] != got[0] {
			t.Fatalf("goroutine %d got a different trace instance", w)
		}
	}
	if got[0] == nil {
		t.Fatal("concurrent fill returned no trace")
	}
	stats := ReadTraceStats()
	if c := stats.Captures - base.Captures; c != 0 {
		t.Fatalf("concurrent disk fill ran %d captures", c)
	}
	if h := stats.DiskHits - base.DiskHits; h != 1 {
		t.Fatalf("concurrent disk fill decoded the artifact %d times, want 1", h)
	}
}

// TestArtifactPeerFetcher: when the local artifact store misses, the
// installed fetcher is consulted and a fetched artifact is decoded,
// verified and written through to the local store.
func TestArtifactPeerFetcher(t *testing.T) {
	dir := t.TempDir()
	st := installArtifactDir(t, dir)
	key := traceKey{name: "h2v2upsample", isa: MOM, scale: ScaleTest}
	resetTraceEntry(t, key)
	defer resetTraceEntry(t, key)
	tr := cachedTrace(key)
	if tr == nil {
		t.Fatal("donor capture failed")
	}
	blob, err := encodeArtifact(tr)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a restart with an empty local store but a peer that has the
	// artifact: the fetcher serves the encoded bytes.
	st.Invalidate(key.artifactKey())
	resetTraceEntry(t, key)
	var asked []string
	SetTraceFetcher(func(k string) (io.ReadCloser, bool) {
		asked = append(asked, k)
		if k != key.artifactKey() {
			return nil, false
		}
		return io.NopCloser(bytes.NewReader(blob)), true
	})
	defer SetTraceFetcher(nil)
	base := ReadTraceStats()

	got := cachedTrace(key)
	if got == nil {
		t.Fatal("fetcher-backed fill returned no trace")
	}
	stats := ReadTraceStats()
	if c := stats.Captures - base.Captures; c != 0 {
		t.Fatalf("fetcher-backed fill ran %d captures, want 0", c)
	}
	if p := stats.PeerFetches - base.PeerFetches; p != 1 {
		t.Fatalf("fill counted %d peer fetches, want 1", p)
	}
	if len(asked) != 1 || asked[0] != key.artifactKey() {
		t.Fatalf("fetcher asked for %v, want exactly the artifact key", asked)
	}
	if got.Records() != tr.Records() || got.Bytes() != tr.Bytes() {
		t.Fatal("fetched trace shape differs from the donor")
	}
	// Write-through: the next restart finds the artifact locally.
	if !st.Has(key.artifactKey()) {
		t.Fatal("fetched artifact was not persisted locally")
	}
	resetTraceEntry(t, key)
	if cachedTrace(key) == nil {
		t.Fatal("fill from the written-through artifact failed")
	}
	if h := ReadTraceStats().DiskHits - stats.DiskHits; h != 1 {
		t.Fatalf("written-through artifact counted %d disk hits, want 1", h)
	}
}

// TestArtifactStreamReplay: a disk artifact that does not fit the RAM
// budget is replayed by streaming straight from the file, bit-identical to
// the materialised replay, with no live fallback.
func TestArtifactStreamReplay(t *testing.T) {
	dir := t.TempDir()
	installArtifactDir(t, dir)
	key := traceKey{name: "motion1", isa: MOM, scale: ScaleTest}
	resetTraceEntry(t, key)
	defer resetTraceEntry(t, key)
	want, err := runKernelCached(key.name, key.isa, 4, PerfectMemory(1), ScaleTest, SampleSpec{})
	if err != nil {
		t.Fatalf("warm-up run: %v", err)
	}

	// Starve the RAM budget so the artifact cannot materialise.
	resetTraceEntry(t, key)
	old := TraceCacheBytes
	defer func() { TraceCacheBytes = old }()
	traceCache.mu.Lock()
	TraceCacheBytes = traceCache.bytes + 1
	traceCache.mu.Unlock()
	base := ReadTraceStats()

	got, err := runKernelCached(key.name, key.isa, 4, PerfectMemory(1), ScaleTest, SampleSpec{})
	if err != nil {
		t.Fatalf("streamed run: %v", err)
	}
	stats := ReadTraceStats()
	if s := stats.StreamReplays - base.StreamReplays; s != 1 {
		t.Fatalf("run used %d stream replays, want 1", s)
	}
	if l := stats.LiveRuns - base.LiveRuns; l != 0 {
		t.Fatalf("run fell back live %d times, want 0", l)
	}
	if c := stats.Captures - base.Captures; c != 0 {
		t.Fatalf("run recaptured (%d captures)", c)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("streamed replay diverged from materialised replay:\nwant %+v\ngot  %+v", want, got)
	}

	// The RAM slot must still be retryable: restore the budget and the
	// artifact materialises without a recapture.
	traceCache.mu.Lock()
	TraceCacheBytes = old
	traceCache.mu.Unlock()
	if cachedTrace(key) == nil {
		t.Fatal("slot did not recover after the budget freed")
	}
	if c := ReadTraceStats().Captures - stats.Captures; c != 0 {
		t.Fatalf("recovery recaptured (%d captures)", c)
	}
}

// TestLiveCauseSplit: the live-fallback counter attributes budget-starved
// runs to LiveBudget and permanently failed captures to LiveFault.
func TestLiveCauseSplit(t *testing.T) {
	// Fault: poison the slot the way a build/emulation fault would.
	key := traceKey{name: "compensation", isa: Alpha, scale: ScaleTest}
	resetTraceEntry(t, key)
	defer resetTraceEntry(t, key)
	traceCache.mu.Lock()
	traceCache.entries[key] = &traceEntry{state: capFailed}
	traceCache.mu.Unlock()
	base := ReadTraceStats()
	if _, err := runKernelCached(key.name, key.isa, 2, PerfectMemory(1), ScaleTest, SampleSpec{}); err != nil {
		t.Fatalf("live run over a failed slot: %v", err)
	}
	st := ReadTraceStats()
	if f := st.LiveFault - base.LiveFault; f != 1 {
		t.Fatalf("fault fallback counted %d LiveFault, want 1", f)
	}
	if b := st.LiveBudget - base.LiveBudget; b != 0 {
		t.Fatalf("fault fallback counted %d LiveBudget, want 0", b)
	}
	if l := st.LiveRuns - base.LiveRuns; l != 1 {
		t.Fatalf("fault fallback counted %d LiveRuns, want 1", l)
	}

	// Budget: a competing reservation holds the whole budget and there is
	// no artifact store, so the discarded capture falls back live.
	key2 := traceKey{name: "compensation", isa: MMX, scale: ScaleTest}
	resetTraceEntry(t, key2)
	defer resetTraceEntry(t, key2)
	traceCache.mu.Lock()
	hold := TraceCacheBytes - traceCache.bytes
	traceCache.reserved += hold
	traceCache.mu.Unlock()
	defer func() {
		traceCache.mu.Lock()
		traceCache.reserved -= hold
		traceCache.mu.Unlock()
	}()
	base = ReadTraceStats()
	if _, err := runKernelCached(key2.name, key2.isa, 2, PerfectMemory(1), ScaleTest, SampleSpec{}); err != nil {
		t.Fatalf("live run under budget contention: %v", err)
	}
	st = ReadTraceStats()
	if b := st.LiveBudget - base.LiveBudget; b != 1 {
		t.Fatalf("budget fallback counted %d LiveBudget, want 1", b)
	}
	if f := st.LiveFault - base.LiveFault; f != 0 {
		t.Fatalf("budget fallback counted %d LiveFault, want 0", f)
	}
}
