package mom

// The benchmark harness: one benchmark per paper artifact. Each benchmark
// regenerates its table/figure and reports the headline simulated metrics
// via b.ReportMetric, so `go test -bench=.` reproduces the evaluation.
//
// Benchmarks use ScaleTest workloads so the full suite stays tractable;
// `cmd/momsim -scale bench` runs the full-size versions.

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkFigure5 regenerates the kernel-level study and reports the mean
// MOM-over-MMX and MOM-over-Alpha speed-ups at 4-way issue.
func BenchmarkFigure5(b *testing.B) {
	var rows []KernelSpeedup
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Figure5(context.Background(), ScaleTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	speed := map[string]float64{}
	for _, r := range rows {
		if r.Width == 4 {
			speed[fmt.Sprintf("%s/%s", r.Kernel, r.ISA)] = r.Speedup
		}
	}
	var momVsAlpha, momVsMMX float64
	n := 0.0
	for _, k := range KernelNames() {
		momVsAlpha += speed[k+"/MOM"] / speed[k+"/Alpha"]
		momVsMMX += speed[k+"/MOM"] / speed[k+"/MMX"]
		n++
	}
	b.ReportMetric(momVsAlpha/n, "MOM-vs-Alpha-4way")
	b.ReportMetric(momVsMMX/n, "MOM-vs-MMX-4way")
	var insts uint64
	for _, r := range rows {
		insts += r.Insts
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "dyninsts/s")
}

// BenchmarkFigure5Kernels times each kernel/ISA pair individually at 4-way
// (the bars of Figure 5), reporting simulated cycles.
func BenchmarkFigure5Kernels(b *testing.B) {
	for _, k := range KernelNames() {
		for _, i := range AllISAs {
			k, i := k, i
			b.Run(fmt.Sprintf("%s/%s", k, i), func(b *testing.B) {
				var cycles int64
				for n := 0; n < b.N; n++ {
					r, err := RunKernel(k, i, 4, PerfectMemory(1), ScaleTest)
					if err != nil {
						b.Fatal(err)
					}
					cycles = r.Cycles
				}
				b.ReportMetric(float64(cycles), "simcycles")
			})
		}
	}
}

// BenchmarkLatencyStudy regenerates the Section 4.1 latency-tolerance
// experiment and reports the mean slow-down per ISA.
func BenchmarkLatencyStudy(b *testing.B) {
	var rows []LatencyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = LatencyStudy(context.Background(), ScaleTest, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	sums := map[ISA]float64{}
	counts := map[ISA]float64{}
	for _, r := range rows {
		sums[r.ISA] += r.Slowdown
		counts[r.ISA]++
	}
	for _, i := range AllISAs {
		b.ReportMetric(sums[i]/counts[i], i.String()+"-slowdown")
	}
}

// BenchmarkFigure7 regenerates the program-level study and reports the mean
// MOM (multi-address) and MMX speed-ups over Alpha at 4-way.
func BenchmarkFigure7(b *testing.B) {
	var rows []AppSpeedup
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Figure7(context.Background(), ScaleTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	var momS, mmxS float64
	n := 0.0
	for _, r := range rows {
		if r.Width != 4 {
			continue
		}
		switch {
		case r.Config.ISA == MOM && r.Config.Cache == MultiAddress:
			momS += r.Speedup
			n++
		case r.Config.ISA == MMX:
			mmxS += r.Speedup
		}
	}
	b.ReportMetric(momS/n, "MOM-vs-Alpha-apps")
	b.ReportMetric(mmxS/n, "MMX-vs-Alpha-apps")
	var insts uint64
	for _, r := range rows {
		insts += r.Insts
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "dyninsts/s")
}

// BenchmarkFigure7Apps times each application/configuration pair (the bars
// of Figure 7) at 4-way issue.
func BenchmarkFigure7Apps(b *testing.B) {
	for _, a := range AppNames() {
		for _, cfg := range Figure7Configs {
			a, cfg := a, cfg
			b.Run(fmt.Sprintf("%s/%s", a, cfg), func(b *testing.B) {
				var cycles int64
				for n := 0; n < b.N; n++ {
					r, err := RunApp(a, cfg.ISA, 4, DetailedMemory(cfg.Cache), ScaleTest)
					if err != nil {
						b.Fatal(err)
					}
					cycles = r.Cycles
				}
				b.ReportMetric(float64(cycles), "simcycles")
			})
		}
	}
}

// BenchmarkFigure7AppsSampled is BenchmarkFigure7Apps under the default
// sampling regime: the trace is captured once outside the timed region
// (sampling only pays off against a recording) and each iteration
// fast-forwards between detailed windows. Compare simcycles here against
// the exact benchmark to see the estimate quality next to the speedup.
func BenchmarkFigure7AppsSampled(b *testing.B) {
	for _, a := range AppNames() {
		for _, cfg := range Figure7Configs {
			a, cfg := a, cfg
			b.Run(fmt.Sprintf("%s/%s", a, cfg), func(b *testing.B) {
				key := traceKey{app: true, name: a, isa: cfg.ISA, scale: ScaleTest}
				if cachedTrace(key) == nil {
					b.Fatal("capture failed")
				}
				b.ResetTimer()
				var est int64
				for n := 0; n < b.N; n++ {
					r, ok, err := runTraced(key, 4, DetailedMemory(cfg.Cache), DefaultSampleSpec)
					if err != nil || !ok {
						b.Fatalf("sampled replay: ok=%v err=%v", ok, err)
					}
					est = r.Sampled.EstCycles
				}
				b.ReportMetric(float64(est), "simcycles")
			})
		}
	}
}

// BenchmarkSimThroughput measures raw simulator speed — host-side dynamic
// instructions simulated per second — on a representative kernel, comparing
// the live interleaved emulate-and-time path against replay from a recorded
// trace. The gap between the two is the functional-emulation share that
// capture-once/replay-many amortises across machine configurations.
func BenchmarkSimThroughput(b *testing.B) {
	const kernel = "idct"
	b.Run("live", func(b *testing.B) {
		var insts uint64
		for n := 0; n < b.N; n++ {
			r, err := RunKernel(kernel, MOM, 4, PerfectMemory(1), ScaleTest)
			if err != nil {
				b.Fatal(err)
			}
			insts = r.Insts
		}
		b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "dyninsts/s")
	})
	b.Run("replay", func(b *testing.B) {
		key := traceKey{name: kernel, isa: MOM, scale: ScaleTest}
		if cachedTrace(key) == nil {
			b.Fatal("capture failed")
		}
		b.ResetTimer()
		var insts uint64
		for n := 0; n < b.N; n++ {
			r, ok, err := runTraced(key, 4, PerfectMemory(1), SampleSpec{})
			if err != nil || !ok {
				b.Fatalf("replay: ok=%v err=%v", ok, err)
			}
			insts = r.Insts
		}
		b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "dyninsts/s")
	})
}

// BenchmarkTable2 recomputes the register-file area model (Table 2).
func BenchmarkTable2(b *testing.B) {
	var rows []Table2Entry
	for i := 0; i < b.N; i++ {
		rows = Table2()
	}
	for _, r := range rows {
		b.ReportMetric(r.NormalizedArea, r.ISA+"-area")
	}
}

// BenchmarkRegisterPressure sweeps the number of in-flight matrix registers
// (the "preliminary simulations" behind Table 2's 20 physical MOM
// registers): the ablation shows performance saturating around the chosen
// file size.
func BenchmarkRegisterPressure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunKernel("idct", MOM, 4, PerfectMemory(1), ScaleTest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransposeAblation compares the two ways MOM code can transpose
// 8x8 halfword tiles: the dedicated matrix transpose instruction
// (MOMTRANSH, "especially useful to switch vector dimensions without using
// pack/unpack operations" — the paper's matrix-operation argument) against
// the classic MMX unpack network. Reported metric: cycles per block.
func BenchmarkTransposeAblation(b *testing.B) {
	for _, width := range []int{1, 4} {
		for _, mode := range []string{"momtransh", "unpack-network"} {
			mode, width := mode, width
			b.Run(fmt.Sprintf("%s/%d-way", mode, width), func(b *testing.B) {
				var cycles int64
				for n := 0; n < b.N; n++ {
					c, err := runTransposeAblation(mode == "momtransh", width)
					if err != nil {
						b.Fatal(err)
					}
					cycles = c
				}
				b.ReportMetric(float64(cycles)/256, "simcycles/block")
			})
		}
	}
}

// BenchmarkColdStartApp measures what the persistent trace artifact store
// buys a fresh process: the cost of making an application's trace
// available for replay. "cold" starts from an empty artifact directory —
// full functional capture plus the write-through — while "warm" starts
// against a directory a previous "process" already filled, so the trace
// decodes back from disk instead of being re-emulated. The RAM slot is
// evicted before every iteration; that is exactly the state a restarted
// momserver or a fresh momsim invocation begins in. Every replay the
// process then runs (each width × memory configuration) pays this
// acquisition cost exactly once, so the cold/warm gap here is the
// restart head-start the store provides.
func BenchmarkColdStartApp(b *testing.B) {
	app := AppNames()[0]
	key := traceKey{app: true, name: app, isa: MOM, scale: ScaleTest}
	acquire := func(b *testing.B) {
		b.Helper()
		if tr := CaptureWorkloadTrace(true, app, MOM, ScaleTest); tr == nil {
			b.Fatalf("trace of %s unavailable", app)
		}
	}
	b.Run("cold", func(b *testing.B) {
		st := installArtifactDir(b, b.TempDir())
		for n := 0; n < b.N; n++ {
			b.StopTimer()
			resetTraceEntry(b, key)
			st.Invalidate(key.artifactKey())
			b.StartTimer()
			acquire(b)
		}
	})
	b.Run("warm", func(b *testing.B) {
		installArtifactDir(b, b.TempDir())
		resetTraceEntry(b, key) // a RAM hit would skip the write-through
		acquire(b)              // prime the artifact directory once, off the clock
		before := ReadTraceStats()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			b.StopTimer()
			resetTraceEntry(b, key)
			b.StartTimer()
			acquire(b)
		}
		ts := ReadTraceStats()
		if hits := ts.DiskHits - before.DiskHits; hits != int64(b.N) {
			b.Fatalf("%d disk hits over %d warm acquisitions — the store was not serving", hits, b.N)
		}
	})
}
