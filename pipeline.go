package mom

import (
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/obs"
)

// PipelineOptions selects the window and output sinks of a pipeline-trace
// export. Start and Count window the dynamic instruction stream (Count 0
// records from Start to the end of the run); at least one of Konata and
// Chrome must be set.
type PipelineOptions struct {
	Start  uint64    // first dynamic instruction to record
	Count  uint64    // instructions to record (0 = to end of run)
	Konata io.Writer // Kanata log sink (Konata pipeline viewer), optional
	Chrome io.Writer // Chrome trace-event JSON sink (Perfetto), optional
}

// PipelineExport reports one pipeline-trace export: the timed run the trace
// was cut from and how many instructions each sink recorded.
type PipelineExport struct {
	Result   Result
	Recorded int // instructions inside the export window
}

// exportPipeline runs one workload with the requested exporters attached.
func exportPipeline(app bool, name string, i ISA, width int, m MemModel, sc Scale, opt PipelineOptions) (PipelineExport, error) {
	if opt.Konata == nil && opt.Chrome == nil {
		return PipelineExport{}, fmt.Errorf("mom: pipeline export needs at least one output (Konata or Chrome)")
	}
	var p *isa.Program
	var err error
	if app {
		p, err = BuildApp(name, i, sc)
	} else {
		p, err = BuildKernel(name, i, sc)
	}
	if err != nil {
		return PipelineExport{}, err
	}
	disasm := make([]string, len(p.Insts))
	for pc, in := range p.Insts {
		disasm[pc] = in.String()
	}
	var kw *obs.KonataWriter
	var cw *obs.ChromeWriter
	var observers []obs.Observer
	if opt.Konata != nil {
		kw = obs.NewKonata(opt.Konata, opt.Start, opt.Count, disasm)
		observers = append(observers, kw)
	}
	if opt.Chrome != nil {
		cw = obs.NewChrome(opt.Chrome, opt.Start, opt.Count, disasm)
		observers = append(observers, cw)
	}
	res, err := runObserved(app, name, i, width, m, sc, SampleSpec{}, obs.Multi(observers...))
	if err != nil {
		return PipelineExport{}, err
	}
	exp := PipelineExport{Result: res}
	if kw != nil {
		exp.Recorded = kw.Recorded()
		if err := kw.Flush(); err != nil {
			return exp, fmt.Errorf("mom: konata export: %w", err)
		}
	}
	if cw != nil {
		exp.Recorded = cw.Recorded()
		if err := cw.Flush(); err != nil {
			return exp, fmt.Errorf("mom: chrome trace export: %w", err)
		}
	}
	return exp, nil
}

// ExportKernelPipeline exports the pipeline lifetimes of a kernel run.
func ExportKernelPipeline(kernel string, i ISA, width int, m MemModel, sc Scale, opt PipelineOptions) (PipelineExport, error) {
	return exportPipeline(false, kernel, i, width, m, sc, opt)
}

// ExportAppPipeline exports the pipeline lifetimes of an application run.
func ExportAppPipeline(app string, i ISA, width int, m MemModel, sc Scale, opt PipelineOptions) (PipelineExport, error) {
	return exportPipeline(true, app, i, width, m, sc, opt)
}
