package mom

import (
	"sync"
	"testing"
)

// resetTraceEntry removes a cache slot (and its committed bytes) so a test
// can exercise the capture path from a known-empty state, or unpoison a
// slot it deliberately drove to a failure state.
func resetTraceEntry(t testing.TB, key traceKey) {
	t.Helper()
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	if e, ok := traceCache.entries[key]; ok {
		if e.state == capRunning {
			t.Fatalf("trace entry %v has a capture in flight", key)
		}
		if e.state == capDone {
			traceCache.bytes -= e.tr.Bytes()
		}
		delete(traceCache.entries, key)
	}
}

// TestTraceDiscardForContentionRetries: a capture refused because
// concurrent captures hold the budget is discarded — not counted as a
// capture, counted as Discarded — and the slot stays retryable, so the
// same workload captures successfully once the budget frees.
func TestTraceDiscardForContentionRetries(t *testing.T) {
	key := traceKey{name: "addblock", isa: Alpha, scale: ScaleTest}
	resetTraceEntry(t, key)
	base := ReadTraceStats()

	// Fake a competing in-flight capture holding the entire budget.
	traceCache.mu.Lock()
	hold := TraceCacheBytes - traceCache.bytes
	traceCache.reserved += hold
	traceCache.mu.Unlock()
	if tr := cachedTrace(key); tr != nil {
		t.Fatal("capture succeeded with no budget available")
	}
	traceCache.mu.Lock()
	traceCache.reserved -= hold
	state := traceCache.entries[key].state
	traceCache.mu.Unlock()
	if state != capEmpty {
		t.Fatalf("discarded entry state %d, want capEmpty (retryable)", state)
	}
	st := ReadTraceStats()
	if d := st.Discarded - base.Discarded; d != 1 {
		t.Fatalf("Discarded advanced by %d, want 1", d)
	}
	if c := st.Captures - base.Captures; c != 0 {
		t.Fatalf("discarded capture counted as retained (Captures +%d)", c)
	}
	if dt := st.CaptureTime - base.CaptureTime; dt != 0 {
		t.Fatalf("discarded capture charged %v of CaptureTime", dt)
	}

	// The contention is gone: the same request must capture and retain.
	if tr := cachedTrace(key); tr == nil {
		t.Fatal("retry after the budget freed did not capture")
	}
	if st := ReadTraceStats(); st.Captures-base.Captures != 1 {
		t.Fatalf("Captures advanced by %d after retry, want 1", st.Captures-base.Captures)
	}
}

// TestTraceOverBudgetFailsPermanently: a trace that cannot fit the budget
// even with every competing reservation released fails its slot for good —
// later requests fall back live without re-running the capture emulation.
func TestTraceOverBudgetFailsPermanently(t *testing.T) {
	key := traceKey{name: "addblock", isa: MMX, scale: ScaleTest}
	resetTraceEntry(t, key)
	defer resetTraceEntry(t, key) // unpoison the slot for later tests
	old := TraceCacheBytes
	defer func() { TraceCacheBytes = old }()
	traceCache.mu.Lock()
	TraceCacheBytes = traceCache.bytes + 1 // below any real trace, occupancy aside
	traceCache.mu.Unlock()
	base := ReadTraceStats()

	if tr := cachedTrace(key); tr != nil {
		t.Fatal("capture fit a 1-byte budget")
	}
	traceCache.mu.Lock()
	state := traceCache.entries[key].state
	traceCache.mu.Unlock()
	if state != capFailed {
		t.Fatalf("entry state %d, want capFailed (permanent)", state)
	}
	if st := ReadTraceStats(); st.Discarded-base.Discarded != 1 {
		t.Fatalf("Discarded advanced by %d, want 1", st.Discarded-base.Discarded)
	}

	// A second request must not burn another functional emulation.
	if tr := cachedTrace(key); tr != nil {
		t.Fatal("failed slot returned a trace")
	}
	if st := ReadTraceStats(); st.Discarded-base.Discarded != 1 {
		t.Fatal("permanently failed capture was re-attempted")
	}
}

// TestTraceCaptureReservationInvariant: concurrent captures reserve budget
// up front a quantum at a time, so committed + reserved bytes never
// exceed TraceCacheBytes at any instant — the transient ~2x overshoot of
// the old read-budget-then-capture sequence is impossible.
func TestTraceCaptureReservationInvariant(t *testing.T) {
	keys := []traceKey{
		{name: "idct", isa: Alpha, scale: ScaleTest},
		{name: "motion2", isa: Alpha, scale: ScaleTest},
		{name: "rgb2ycc", isa: Alpha, scale: ScaleTest},
		{name: "addblock", isa: Alpha, scale: ScaleTest},
	}
	for _, k := range keys {
		resetTraceEntry(t, k)
		defer resetTraceEntry(t, k) // drop mixed outcomes of the tiny budget
	}
	old := TraceCacheBytes
	defer func() { TraceCacheBytes = old }()
	traceCache.mu.Lock()
	TraceCacheBytes = traceCache.bytes + 512<<10 // room for ~2 grant quanta
	traceCache.mu.Unlock()

	stop := make(chan struct{})
	viol := make(chan int64, 1)
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			traceCache.mu.Lock()
			tot := traceCache.bytes + traceCache.reserved
			budget := TraceCacheBytes
			traceCache.mu.Unlock()
			if tot > budget {
				select {
				case viol <- tot:
				default:
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k traceKey) {
			defer wg.Done()
			cachedTrace(k)
		}(k)
	}
	wg.Wait()
	close(stop)
	obs.Wait() // joined before the deferred budget restore writes TraceCacheBytes
	select {
	case tot := <-viol:
		t.Fatalf("bytes+reserved reached %d, budget %d", tot, TraceCacheBytes)
	default:
	}
}
