package mom

import (
	"encoding/json"
	"fmt"
	"strings"
)

// This file defines the declarative design-space sweep spec: a grid over
// the experiment axes (experiment × scale × workload × ISA × width ×
// memory model × sample regime) that expands into the canonical
// JobRequest form of every grid point. Expansion is deterministic — the
// same spec always yields the same ordered request list — and deduplicates
// up front by content-address key, so a grid whose axes collapse under
// normalisation (or whose axes repeat a value) never submits the same
// computation twice. The sweep engine in internal/sweep executes the
// expanded list (in-process or against a momserver's batch endpoint) and
// reduces the result documents to Pareto-frontier reports.

// SweepSpec is the declarative form of one design-space exploration. Exps
// is required; every other axis has a sensible default and applies only to
// the experiments that consume it (the same consumption rules as
// JobRequest.Normalized — e.g. fig5 ignores the width axis, so a fig5
// sweep over four widths is one point, not four).
type SweepSpec struct {
	Name   string   `json:"name,omitempty"`   // report label
	Exps   []string `json:"exps"`             // experiments to grid over (see ExpNames)
	Scales []string `json:"scales,omitempty"` // default ["test"]
	Widths []int    `json:"widths,omitempty"` // default [4]
	ISAs   []string `json:"isas,omitempty"`   // default all four levels
	Mems   []string `json:"mems,omitempty"`   // default ["perfect"] (see MemModelNames)
	// Kernels / Apps select the workloads of the kernel/app (and
	// regsweep/memsweep) experiments; empty means every workload.
	Kernels []string `json:"kernels,omitempty"`
	Apps    []string `json:"apps,omitempty"`
	// Samples lists sampling regimes in the "period:warmup:interval" form
	// of ParseSampleSpec; "" is exact simulation. Default [""].
	Samples []string `json:"samples,omitempty"`
	// Refine enables the sampled-first/exact-refine strategy: after the
	// grid runs (sampled where the axis says so), the Pareto-frontier
	// points are re-run exact to confirm the ranking.
	Refine bool `json:"refine,omitempty"`
}

// ParseSweepSpec decodes a spec document strictly: unknown fields are an
// error, so a typoed axis name fails instead of silently shrinking the
// grid.
func ParseSweepSpec(data []byte) (SweepSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s SweepSpec
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("sweep spec: %v", err)
	}
	return s, nil
}

// sweepAxes records which grid axes an experiment consumes, mirroring the
// per-experiment field rules of JobRequest.Normalized. Expansion only
// loops over consumed axes, so unconsumed ones never multiply the grid.
type sweepAxes struct {
	widths, isas, mems, kernels, apps, samples bool
}

var expSweepAxes = map[string]sweepAxes{
	"fig5":     {},
	"fetch":    {},
	"fig7":     {samples: true},
	"latency":  {widths: true},
	"profile":  {widths: true, samples: true},
	"hotspots": {widths: true, samples: true},
	"regsweep": {kernels: true},
	"memsweep": {apps: true},
	"kernel":   {widths: true, isas: true, mems: true, kernels: true, samples: true},
	"app":      {widths: true, isas: true, mems: true, apps: true, samples: true},
}

// withDefaults fills the optional axes.
func (s SweepSpec) withDefaults() SweepSpec {
	if len(s.Scales) == 0 {
		s.Scales = []string{"test"}
	}
	if len(s.Widths) == 0 {
		s.Widths = []int{4}
	}
	if len(s.ISAs) == 0 {
		for _, i := range AllISAs {
			s.ISAs = append(s.ISAs, i.String())
		}
	}
	if len(s.Mems) == 0 {
		s.Mems = []string{"perfect"}
	}
	if len(s.Kernels) == 0 {
		s.Kernels = KernelNames()
	}
	if len(s.Apps) == 0 {
		s.Apps = AppNames()
	}
	if len(s.Samples) == 0 {
		s.Samples = []string{""}
	}
	return s
}

// Expand materialises the grid: the cross product of every consumed axis,
// in a fixed nesting order (experiment, scale, workload, ISA, width,
// memory, sample), each point normalised and deduplicated by its
// content-address key. The returned requests are in canonical form and
// first-seen order, so the same spec always produces the same ordered key
// list, and the list never contains two requests meaning the same
// computation.
func (s SweepSpec) Expand() ([]JobRequest, error) {
	if len(s.Exps) == 0 {
		return nil, fmt.Errorf("sweep spec: exps is required (valid: %s)", strings.Join(ExpNames, ", "))
	}
	s = s.withDefaults()
	var (
		out  []JobRequest
		seen = map[string]bool{}
	)
	add := func(r JobRequest) error {
		n, err := r.Normalized()
		if err != nil {
			return fmt.Errorf("sweep spec: point %+v: %v", r, err)
		}
		key, err := n.Key()
		if err != nil {
			return err
		}
		if seen[key] {
			return nil
		}
		seen[key] = true
		out = append(out, n)
		return nil
	}
	one := []string{""}
	for _, exp := range s.Exps {
		ax, ok := expSweepAxes[exp]
		if !ok {
			return nil, fmt.Errorf("sweep spec: unknown experiment %q (valid: %s)", exp, strings.Join(ExpNames, ", "))
		}
		kernels, apps := one, one
		if ax.kernels {
			kernels = s.Kernels
		}
		if ax.apps {
			apps = s.Apps
		}
		isas, mems, samples := one, one, one
		if ax.isas {
			isas = s.ISAs
		}
		if ax.mems {
			mems = s.Mems
		}
		if ax.samples {
			samples = s.Samples
		}
		widths := []int{0}
		if ax.widths {
			widths = s.Widths
		}
		for _, sc := range s.Scales {
			for _, k := range kernels {
				for _, a := range apps {
					for _, i := range isas {
						for _, w := range widths {
							for _, m := range mems {
								for _, smp := range samples {
									sp, err := ParseSampleSpec(smp)
									if err != nil {
										return nil, fmt.Errorf("sweep spec: sample %q: %v", smp, err)
									}
									req := JobRequest{
										Exp: exp, Scale: sc, Width: w, ISA: i, Mem: m,
										Kernel: k, App: a,
										SamplePeriod: sp.Period, SampleWarmup: sp.Warmup,
										SampleInterval: sp.Interval,
									}
									if err := add(req); err != nil {
										return nil, err
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// Keys returns the content-address key of every request, in order — the
// identity of the sweep's result set.
func Keys(reqs []JobRequest) ([]string, error) {
	keys := make([]string, len(reqs))
	for i, r := range reqs {
		k, err := r.Key()
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	return keys, nil
}
