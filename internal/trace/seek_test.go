package trace

// ReaderAt tests: a cursor opened mid-trace must produce the identical
// record stream to a fresh cursor advanced to the same position, at every
// alignment relative to the chunk boundaries.

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
)

func captureTestTrace(t *testing.T) *Trace {
	t.Helper()
	k, err := kernels.ByName("idct", kernels.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Capture(emu.New(k.Build(isa.ExtMOM)), testMaxSteps, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestReaderAtMatchesSkip: ReaderAt(pos) and Reader()+Skip(pos) must yield
// identical streams, including the ea/stride column alignment.
func TestReaderAtMatchesSkip(t *testing.T) {
	tr := captureTestTrace(t)
	n := tr.Records()
	positions := []uint64{0, 1, 7, 100, chunkRecords - 1, chunkRecords, chunkRecords + 1, n / 2, n - 1, n}
	for _, pos := range positions {
		if pos > n {
			continue
		}
		skip := tr.Reader()
		if got := skip.Skip(pos); got != pos {
			t.Fatalf("Skip(%d) consumed %d", pos, got)
		}
		at := tr.ReaderAt(pos)
		if at.Pos() != pos {
			t.Fatalf("ReaderAt(%d).Pos() = %d", pos, at.Pos())
		}
		if at.Skipped() != 0 {
			t.Errorf("ReaderAt(%d) counts %d skipped records; positioning is not fast-forwarding", pos, at.Skipped())
		}
		for i := 0; ; i++ {
			want, okW := skip.Next()
			got, okG := at.Next()
			if okW != okG {
				t.Fatalf("pos %d record %d: skip ok=%v, at ok=%v", pos, i, okW, okG)
			}
			if !okW {
				break
			}
			if got != want {
				t.Fatalf("pos %d record %d: ReaderAt stream %+v != Skip stream %+v", pos, i, got, want)
			}
			if i >= 2000 { // a window-sized prefix is plenty per position
				break
			}
		}
	}
}

// TestReaderAtPastEnd: positions beyond the trace clamp to end-of-stream.
func TestReaderAtPastEnd(t *testing.T) {
	tr := captureTestTrace(t)
	r := tr.ReaderAt(tr.Records() + 1000)
	if r.Pos() != tr.Records() {
		t.Errorf("past-end position %d, want clamp to %d", r.Pos(), tr.Records())
	}
	if _, ok := r.Next(); ok {
		t.Error("past-end reader produced a record")
	}
}

// TestReaderAtTrace: the accessor hands back the underlying recording.
func TestReaderAtTrace(t *testing.T) {
	tr := captureTestTrace(t)
	if tr.Reader().Trace() != tr {
		t.Error("Reader.Trace() does not return the source trace")
	}
}
