package trace

// The on-disk trace artifact format. A recorded trace is persisted as a
// self-verifying byte stream so momserver restarts, momsim invocations and
// CI runs replay yesterday's capture instead of re-emulating:
//
//	momtrace 1 <fingerprint> <records> <chunks>\n
//	chunk frame 0
//	chunk frame 1
//	...
//
// The header names the format version, a fingerprint of the static program
// the dynamic stream belongs to, and the exact record/chunk counts. Each
// chunk frame is a 16-byte little-endian prelude — record count, effective-
// address count, stride count, CRC32 of the frame payload — followed by the
// chunk's columns (si, meta, ea, stride) packed little-endian. Per-frame
// checksums instead of one trailing digest are what make streaming replay
// safe: a decoder can hand records to the timing model as soon as a frame
// verifies, while any corruption — bit rot, truncation, a record-count lie —
// is caught no later than the frame it occurs in.
//
// The static program is deliberately NOT serialized: workload builders are
// deterministic, so the loader rebuilds the program from (workload, ISA,
// scale) and the fingerprint check rejects artifacts written by a different
// generator version. Every decode failure is ErrFormat (or an I/O error)
// and callers treat it as a cache miss, mirroring internal/store's
// corruption-reads-as-miss discipline.

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/emu"
	"repro/internal/isa"
)

// FormatVersion is the trace artifact encoding version. It participates in
// the artifact content address, so a format change simply misses on every
// old key rather than misreading old bytes.
const FormatVersion = 1

// fileMagic heads every artifact; the trailing digit is FormatVersion.
const fileMagic = "momtrace 1"

// ErrFormat reports an artifact that is not a valid trace encoding for the
// expected program: wrong magic or version, fingerprint mismatch, bad
// framing, checksum failure, truncation. Callers treat it as a miss.
var ErrFormat = errors.New("trace: bad artifact")

// frameHeaderLen is the per-chunk prelude: nrec, nea, nstride, crc32.
const frameHeaderLen = 16

// Fingerprint digests the replay-relevant identity of a program — name,
// instruction stream, data image, layout — to 16 hex characters. Two
// programs with equal fingerprints reconstruct identical dynamic records
// from the same trace columns.
func Fingerprint(p *isa.Program) string {
	h := sha256.New()
	var buf [8 * 6]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(len(p.Name)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(p.Insts)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(len(p.Data)))
	binary.LittleEndian.PutUint64(buf[24:], p.DataBase)
	binary.LittleEndian.PutUint64(buf[32:], p.MemSize)
	h.Write(buf[:40])
	io.WriteString(h, p.Name)
	reg := func(r isa.Reg) uint64 { return uint64(r.Kind)<<8 | uint64(r.Idx) }
	for i := range p.Insts {
		in := &p.Insts[i]
		binary.LittleEndian.PutUint64(buf[0:], uint64(in.Op))
		binary.LittleEndian.PutUint64(buf[8:], reg(in.Dst))
		binary.LittleEndian.PutUint64(buf[16:], reg(in.Src[0]))
		binary.LittleEndian.PutUint64(buf[24:], reg(in.Src[1]))
		binary.LittleEndian.PutUint64(buf[32:], reg(in.Src[2]))
		binary.LittleEndian.PutUint64(buf[40:], uint64(in.Imm))
		h.Write(buf[:48])
		binary.LittleEndian.PutUint64(buf[0:], uint64(in.Target))
		h.Write(buf[:8])
	}
	h.Write(p.Data)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// header renders the artifact header line for a trace.
func (t *Trace) header() string {
	return fmt.Sprintf("%s %s %d %d\n", fileMagic, Fingerprint(t.prog), t.n, len(t.chunks))
}

// EncodedSize returns the exact number of bytes WriteTo will emit.
func (t *Trace) EncodedSize() int64 {
	return int64(len(t.header())) + int64(len(t.chunks))*frameHeaderLen + t.bytes
}

// frameSize is the payload byte count of one chunk frame.
func frameSize(nrec, nea, nstr int) int64 {
	return int64(nrec)*bytesPerRecord + 8*int64(nea) + 8*int64(nstr)
}

// appendFrame packs one chunk as a frame (prelude + columns) onto dst.
func appendFrame(dst []byte, c *chunk) []byte {
	payloadAt := len(dst) + frameHeaderLen
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(c.si)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(c.ea)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(c.stride)))
	dst = append(dst, hdr[:]...)
	for _, v := range c.si {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	dst = append(dst, c.meta...)
	for _, v := range c.ea {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	for _, v := range c.stride {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	crc := crc32.ChecksumIEEE(dst[payloadAt:])
	binary.LittleEndian.PutUint32(dst[payloadAt-4:payloadAt], crc)
	return dst
}

// WriteTo encodes the trace in the momtrace artifact format. The encoding
// is a pure function of the recording, so equal traces produce
// byte-identical artifacts.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var written int64
	n, err := io.WriteString(w, t.header())
	written += int64(n)
	if err != nil {
		return written, err
	}
	var frame []byte
	for i := range t.chunks {
		frame = appendFrame(frame[:0], &t.chunks[i])
		n, err := w.Write(frame)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// readHeader parses and validates the artifact header against the program
// the caller expects the trace to replay.
func readHeader(br *bufio.Reader, p *isa.Program) (records uint64, chunks int, err error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, 0, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	var fp string
	if _, err := fmt.Sscanf(line, fileMagic+" %16s %d %d\n", &fp, &records, &chunks); err != nil {
		return 0, 0, fmt.Errorf("%w: header %q", ErrFormat, line)
	}
	if chunks < 0 || uint64(chunks) != (records+chunkRecords-1)/chunkRecords {
		return 0, 0, fmt.Errorf("%w: %d chunks cannot hold %d records", ErrFormat, chunks, records)
	}
	if want := Fingerprint(p); fp != want {
		return 0, 0, fmt.Errorf("%w: program fingerprint %s, want %s for %s", ErrFormat, fp, want, p.Name)
	}
	return records, chunks, nil
}

// readFrame reads and verifies one chunk frame into c, reusing its column
// capacity. last marks the final chunk, the only one allowed fewer than
// chunkRecords records.
func readFrame(br *bufio.Reader, c *chunk, scratch *[]byte, last bool) error {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("%w: frame prelude: %v", ErrFormat, err)
	}
	nrec := int(binary.LittleEndian.Uint32(hdr[0:]))
	nea := int(binary.LittleEndian.Uint32(hdr[4:]))
	nstr := int(binary.LittleEndian.Uint32(hdr[8:]))
	crc := binary.LittleEndian.Uint32(hdr[12:])
	if nrec <= 0 || nrec > chunkRecords || (!last && nrec != chunkRecords) ||
		nea > nrec || nstr > nea {
		return fmt.Errorf("%w: frame shape %d/%d/%d", ErrFormat, nrec, nea, nstr)
	}
	size := frameSize(nrec, nea, nstr)
	if int64(cap(*scratch)) < size {
		*scratch = make([]byte, size)
	}
	buf := (*scratch)[:size]
	if _, err := io.ReadFull(br, buf); err != nil {
		return fmt.Errorf("%w: frame payload: %v", ErrFormat, err)
	}
	if crc32.ChecksumIEEE(buf) != crc {
		return fmt.Errorf("%w: frame checksum mismatch", ErrFormat)
	}
	c.si = grow(c.si, nrec)
	c.meta = grow(c.meta, nrec)
	c.ea = grow(c.ea, nea)
	c.stride = grow(c.stride, nstr)
	for i := 0; i < nrec; i++ {
		c.si[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	copy(c.meta, buf[4*nrec:])
	off := 5 * nrec
	for i := 0; i < nea; i++ {
		c.ea[i] = binary.LittleEndian.Uint64(buf[off+8*i:])
	}
	off += 8 * nea
	for i := 0; i < nstr; i++ {
		c.stride[i] = int64(binary.LittleEndian.Uint64(buf[off+8*i:]))
	}
	return nil
}

// grow returns s resized to n, reallocating only when capacity is short.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// checkChunk validates a decoded chunk's cross-column consistency against
// the static table: the si column must index the table, and the ea/stride
// population must match the memory classes it implies — otherwise replay
// would walk the sparse columns out of step.
func checkChunk(c *chunk, static []sinst) error {
	var nea, nstr int
	for _, si := range c.si {
		if si < 0 || int(si) >= len(static) {
			return fmt.Errorf("%w: static index %d out of range", ErrFormat, si)
		}
		switch static[si].mem {
		case memScalar:
			nea++
		case memVector:
			nea++
			nstr++
		}
	}
	if nea != len(c.ea) || nstr != len(c.stride) {
		return fmt.Errorf("%w: sparse columns %d/%d, static classes imply %d/%d",
			ErrFormat, len(c.ea), len(c.stride), nea, nstr)
	}
	return nil
}

// Decode materialises an artifact written by WriteTo back into a Trace for
// the given program. Any mismatch — version, fingerprint, framing,
// checksum, truncation — is an error wrapping ErrFormat.
func Decode(r io.Reader, p *isa.Program) (*Trace, error) {
	tr, _, err := DecodeGranted(r, p, nil)
	return tr, err
}

// DecodeGranted is Decode drawing the decoded trace's memory from an
// external budget, exactly like CaptureGranted: reserve is called with the
// in-memory byte cost of each chunk before it is materialised and may
// refuse, which aborts the decode with an error wrapping ErrTooLarge (the
// artifact itself is fine — the caller may stream it instead). granted
// reports the total bytes reserved; on success it equals tr.Bytes(), and
// releasing it back to the budget is the caller's responsibility. A nil
// reserve admits everything.
func DecodeGranted(r io.Reader, p *isa.Program, reserve func(int64) bool) (tr *Trace, granted int64, err error) {
	br := bufio.NewReaderSize(r, 64<<10)
	records, chunks, err := readHeader(br, p)
	if err != nil {
		return nil, 0, err
	}
	t := &Trace{prog: p, n: records, chunks: make([]chunk, chunks)}
	var scratch []byte
	for i := 0; i < chunks; i++ {
		c := &t.chunks[i]
		if err := readFrame(br, c, &scratch, i == chunks-1); err != nil {
			return nil, granted, err
		}
		cost := frameSize(len(c.si), len(c.ea), len(c.stride))
		if reserve != nil && !reserve(cost) {
			return nil, granted, fmt.Errorf("%w: %s needs %d more bytes", ErrTooLarge, p.Name, cost)
		}
		granted += cost
		t.bytes += cost
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, granted, fmt.Errorf("%w: trailing bytes after %d chunks", ErrFormat, chunks)
	}
	var got uint64
	for i := range t.chunks {
		got += uint64(len(t.chunks[i].si))
	}
	if got != records {
		return nil, granted, fmt.Errorf("%w: %d records decoded, header says %d", ErrFormat, got, records)
	}
	t.static = buildStatic(p)
	for i := range t.chunks {
		if err := checkChunk(&t.chunks[i], t.static); err != nil {
			return nil, granted, err
		}
	}
	return t, granted, nil
}

// Stream replays an artifact directly from an io.Reader as a Source,
// decoding one verified chunk frame at a time: the timing simulator starts
// consuming records after the first ~330 KB frame lands instead of waiting
// for the whole file, and peak decoder memory is one chunk regardless of
// trace size. Corruption discovered mid-stream ends the stream (Next
// returns false) and surfaces through Err, which cpu.Sim.Run/RunSampled
// check at end of stream — a half-replayed damaged artifact can never
// produce a silently wrong result.
type Stream struct {
	prog    *isa.Program
	static  []sinst
	br      *bufio.Reader
	scratch []byte

	records uint64 // header-declared total
	chunks  int    // header-declared frame count
	read    int    // frames consumed so far

	cur           chunk
	ri, eaI, strI int
	pos           uint64
	err           error
}

// NewStream opens a streaming decoder over an artifact for the given
// program. The header is read and verified eagerly, so version skew,
// fingerprint mismatch and garbage files fail here — before the caller has
// committed a timing run to the stream.
func NewStream(r io.Reader, p *isa.Program) (*Stream, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	records, chunks, err := readHeader(br, p)
	if err != nil {
		return nil, err
	}
	return &Stream{prog: p, static: buildStatic(p), br: br, records: records, chunks: chunks}, nil
}

// Program returns the program the stream replays.
func (s *Stream) Program() *isa.Program { return s.prog }

// Records returns the header-declared record count.
func (s *Stream) Records() uint64 { return s.records }

// Pos returns how many records have been reconstructed so far.
func (s *Stream) Pos() uint64 { return s.pos }

// Err reports the corruption or I/O fault that terminated the stream, if
// any. It is nil after a complete, verified replay.
func (s *Stream) Err() error { return s.err }

// advance loads and verifies the next chunk frame.
func (s *Stream) advance() bool {
	if s.err != nil {
		return false
	}
	if s.read == s.chunks {
		if s.pos != s.records {
			s.err = fmt.Errorf("%w: stream ended at record %d of %d", ErrFormat, s.pos, s.records)
		} else if _, err := s.br.ReadByte(); err != io.EOF {
			s.err = fmt.Errorf("%w: trailing bytes after %d chunks", ErrFormat, s.chunks)
		}
		return false
	}
	if err := readFrame(s.br, &s.cur, &s.scratch, s.read == s.chunks-1); err != nil {
		s.err = err
		return false
	}
	want := chunkRecords
	if s.read == s.chunks-1 {
		want = int(s.records - uint64(s.chunks-1)*chunkRecords)
	}
	if len(s.cur.si) != want {
		s.err = fmt.Errorf("%w: frame %d holds %d records, header implies %d", ErrFormat, s.read, len(s.cur.si), want)
		return false
	}
	if err := checkChunk(&s.cur, s.static); err != nil {
		s.err = err
		return false
	}
	s.read++
	s.ri, s.eaI, s.strI = 0, 0, 0
	return true
}

// Next reconstructs the next dynamic instruction, decoding the next frame
// when the current one is exhausted.
func (s *Stream) Next() (emu.Dyn, bool) {
	if s.ri >= len(s.cur.si) {
		if !s.advance() {
			return emu.Dyn{}, false
		}
	}
	c := &s.cur
	si := c.si[s.ri]
	meta := c.meta[s.ri]
	s.ri++
	s.pos++
	st := &s.static[si]
	d := emu.Dyn{
		SI:    int(si),
		Op:    st.op,
		Class: st.class,
		Taken: meta&metaTaken != 0,
		VL:    int(meta &^ metaTaken),
	}
	if st.class == isa.ClassBranch {
		d.Target = int(st.target)
	}
	switch st.mem {
	case memScalar:
		d.EA = c.ea[s.eaI]
		s.eaI++
		d.NElem, d.Size = 1, int(st.size)
	case memVector:
		d.EA = c.ea[s.eaI]
		s.eaI++
		d.Stride = c.stride[s.strI]
		s.strI++
		d.NElem, d.Size = d.VL, int(st.size)
	}
	return d, true
}
