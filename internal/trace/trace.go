// Package trace implements the capture-once / replay-many layer between the
// functional emulator and the timing simulator. The paper instrumented each
// binary once with ATOM and fed the recorded trace to the Jinks timing
// simulator for every machine configuration; this package plays the ATOM
// role: Capture runs the emulator to completion and records the dynamic
// instruction stream in a compact chunked encoding, and any number of
// Readers replay it — concurrently — into cpu.Sim.Run.
//
// The timing model consumes the Source interface, which both a live
// emulator (Live) and a recorded trace (Reader) implement, so correctness
// never depends on a trace being available. The equivalence extends to the
// observability layer: a timing run publishes the identical obs.Event
// stream whether it is fed live or from a recording (enforced by
// TestTraceReplayEventEquivalence in the root package).
package trace

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Source is a stream of dynamic instructions plus the program they came
// from. It is implemented by the live emulator (NewLive) and by recorded
// traces (Trace.Reader).
type Source interface {
	// Program returns the static program the stream executes.
	Program() *isa.Program
	// Next returns the next dynamic instruction; ok is false at end of
	// stream (or on a fault; check Err).
	Next() (d emu.Dyn, ok bool)
	// Err reports the fault that terminated the stream, if any.
	Err() error
}

// Live adapts a functional emulator into a Source (the interleaved
// emulate-and-time path). It is single-use: the machine advances as the
// timing model consumes it.
type Live struct {
	m *emu.Machine
}

// NewLive wraps a machine as a Source.
func NewLive(m *emu.Machine) *Live { return &Live{m: m} }

// Program returns the machine's program.
func (l *Live) Program() *isa.Program { return l.m.Prog }

// Next executes one instruction.
func (l *Live) Next() (emu.Dyn, bool) { return l.m.Step() }

// Err returns the machine fault, if any.
func (l *Live) Err() error { return l.m.Err }

// chunkRecords is the number of records per chunk. Chunks keep the capture
// allocation pattern flat: no giant-slice doubling, no per-record
// allocation, and replay walks each column sequentially.
const chunkRecords = 1 << 15

// metaTaken flags a taken branch in the meta byte; the low five bits hold
// the vector length (0..MaxVL).
const metaTaken = 0x80

// A chunk stores chunkRecords dynamic instructions as struct-of-slices
// columns. Only the dynamic facts are stored: the static index, the vector
// length and branch outcome (one meta byte), and — only for the records
// that need them — the effective address and vector stride. Everything else
// in emu.Dyn (opcode, class, branch target, element size/count) is
// reconstructed from the static program during replay.
type chunk struct {
	si     []int32  // static instruction index, per record
	meta   []uint8  // VL | metaTaken, per record
	ea     []uint64 // effective address, per memory record
	stride []int64  // byte stride, per vector-memory record
}

// bytesPerRecord is the fixed per-record cost (si + meta).
const bytesPerRecord = 5

// Memory kind of a static instruction, for replay reconstruction.
const (
	memNone = iota
	memScalar
	memVector
)

// sinst is the per-static-instruction table used to rebuild emu.Dyn records.
type sinst struct {
	op     isa.Opcode
	class  isa.Class
	target int32
	size   uint8
	mem    uint8
}

// Trace is a recorded dynamic instruction stream. The recording itself is
// immutable after Capture returns, so any number of Readers may replay it
// concurrently; the aux map is a synchronized side cache for derived
// artifacts (see Aux) and never affects replay.
type Trace struct {
	prog   *isa.Program
	static []sinst
	chunks []chunk
	n      uint64
	bytes  int64

	auxMu sync.Mutex
	aux   map[any]any
}

// Aux returns the value cached under key by SetAux. Consumers use it to
// memoize expensive artifacts derived deterministically from the recording
// (decoded static tables, sampled-simulation checkpoint libraries) so
// repeated replays of the same trace pay the derivation once. Keys follow
// the context.Value convention: package-private struct types.
func (t *Trace) Aux(key any) (any, bool) {
	t.auxMu.Lock()
	defer t.auxMu.Unlock()
	v, ok := t.aux[key]
	return v, ok
}

// SetAux caches val under key for Aux. Values must be deterministic
// functions of the recording and key (concurrent computations of the same
// key may race to store; either result must be equivalent) and must be
// safe for concurrent read-only use.
func (t *Trace) SetAux(key, val any) {
	t.auxMu.Lock()
	defer t.auxMu.Unlock()
	if t.aux == nil {
		t.aux = make(map[any]any)
	}
	t.aux[key] = val
}

// ErrTooLarge is returned by Capture when the encoded trace would exceed
// the byte budget; callers fall back to live interleaved emulation.
var ErrTooLarge = errors.New("trace: exceeds memory budget")

// memSize returns the element size in bytes of a memory opcode.
func memSize(op isa.Opcode) uint8 {
	switch op {
	case isa.LDBU, isa.STB:
		return 1
	case isa.LDWU, isa.STW:
		return 2
	case isa.LDL, isa.STL:
		return 4
	}
	return 8 // LDQ/STQ, LDT/STT, LDQM/STQM, MOMLDQ/MOMSTQ
}

// buildStatic precomputes the replay reconstruction table for a program.
func buildStatic(p *isa.Program) []sinst {
	st := make([]sinst, len(p.Insts))
	for i := range p.Insts {
		in := &p.Insts[i]
		info := in.Op.Info()
		s := &st[i]
		s.op, s.class, s.target = in.Op, info.Class, int32(in.Target)
		switch info.Class {
		case isa.ClassLoad, isa.ClassStore:
			s.mem, s.size = memScalar, memSize(in.Op)
		case isa.ClassMomLoad, isa.ClassMomStore:
			s.mem, s.size = memVector, memSize(in.Op)
		}
	}
	return st
}

// Capture runs the machine to completion, recording its dynamic stream.
// It fails if the program faults, exceeds maxSteps dynamic instructions, or
// (when maxBytes > 0) the encoding grows past maxBytes.
func Capture(m *emu.Machine, maxSteps uint64, maxBytes int64) (*Trace, error) {
	var have int64
	tr, _, err := CaptureGranted(m, maxSteps, func(n int64) bool {
		if maxBytes > 0 && have+n > maxBytes {
			return false
		}
		have += n
		return true
	})
	return tr, err
}

// Grant sizes of CaptureGranted: memory is reserved a quantum at a time so
// concurrent captures sharing one budget interleave small reservations
// instead of each claiming the whole remainder up front; near exhaustion
// the requests drop to the fine quantum so a trace that fits the leftover
// budget (to within grantFine bytes) is still admitted.
const (
	grantQuantum = 256 << 10
	grantFine    = 4 << 10
)

// CaptureInfo describes one finished capture attempt to an observer
// registered with SetCaptureHook: which program was recorded, when the
// capture started and how long it ran, and — on success — the encoded
// size and record count. Err is non-nil for faults and budget discards.
type CaptureInfo struct {
	Program  string
	Start    time.Time
	Duration time.Duration
	Bytes    int64
	Records  uint64
	Err      error
}

// captureHook is consulted once per capture attempt; nil costs one atomic
// load, so instrumentation is free when nobody listens.
var captureHook atomic.Pointer[func(CaptureInfo)]

// SetCaptureHook registers a process-wide observer called after every
// capture attempt (trace.Capture and trace.CaptureGranted alike) with its
// span: start time, wall-clock duration, outcome. The momserved flight
// recorder uses it to attribute trace-capture time inside job timelines.
// Pass nil to remove the hook. The hook must be safe for concurrent calls.
func SetCaptureHook(h func(CaptureInfo)) {
	if h == nil {
		captureHook.Store(nil)
		return
	}
	captureHook.Store(&h)
}

// CaptureGranted is Capture drawing its memory from an external budget:
// reserve is called with grant requests as the encoding grows, and may
// refuse, which aborts the capture with an error wrapping ErrTooLarge.
// granted reports the total bytes reserved — surplus over tr.Bytes() on
// success, everything on failure; releasing it back to the budget is the
// caller's responsibility.
func CaptureGranted(m *emu.Machine, maxSteps uint64, reserve func(int64) bool) (tr *Trace, granted int64, err error) {
	if h := captureHook.Load(); h != nil {
		start := time.Now()
		defer func() {
			info := CaptureInfo{Program: m.Prog.Name, Start: start, Duration: time.Since(start), Err: err}
			if tr != nil {
				info.Bytes, info.Records = tr.bytes, tr.n
			}
			(*h)(info)
		}()
	}
	return captureGranted(m, maxSteps, reserve)
}

func captureGranted(m *emu.Machine, maxSteps uint64, reserve func(int64) bool) (tr *Trace, granted int64, err error) {
	t := &Trace{prog: m.Prog}
	var c *chunk
	var bytes int64
	for {
		d, ok := m.Step()
		if !ok {
			break
		}
		if t.n >= maxSteps {
			return nil, granted, fmt.Errorf("trace: %s exceeded %d steps", m.Prog.Name, maxSteps)
		}
		if c == nil || len(c.si) == chunkRecords {
			t.chunks = append(t.chunks, chunk{
				si:   make([]int32, 0, chunkRecords),
				meta: make([]uint8, 0, chunkRecords),
			})
			c = &t.chunks[len(t.chunks)-1]
		}
		c.si = append(c.si, int32(d.SI))
		meta := uint8(d.VL)
		if d.Taken {
			meta |= metaTaken
		}
		c.meta = append(c.meta, meta)
		bytes += bytesPerRecord
		if d.Class.IsMem() {
			c.ea = append(c.ea, d.EA)
			bytes += 8
			if d.Class == isa.ClassMomLoad || d.Class == isa.ClassMomStore {
				c.stride = append(c.stride, d.Stride)
				bytes += 8
			}
		}
		t.n++
		for bytes > granted {
			switch {
			case reserve(grantQuantum):
				granted += grantQuantum
			case reserve(grantFine):
				granted += grantFine
			default:
				return nil, granted, fmt.Errorf("%w: %s needs more than %d bytes", ErrTooLarge, m.Prog.Name, granted)
			}
		}
	}
	if m.Err != nil {
		return nil, granted, m.Err
	}
	t.static = buildStatic(m.Prog)
	t.bytes = bytes
	return t, granted, nil
}

// Program returns the traced program.
func (t *Trace) Program() *isa.Program { return t.prog }

// Records returns the number of dynamic instructions recorded.
func (t *Trace) Records() uint64 { return t.n }

// Chunks returns the number of storage chunks.
func (t *Trace) Chunks() int { return len(t.chunks) }

// Bytes returns the approximate encoded size in memory.
func (t *Trace) Bytes() int64 { return t.bytes }

// Reader returns a fresh replay cursor over the trace. Readers are
// independent: many may replay the same trace concurrently.
func (t *Trace) Reader() *Reader { return &Reader{t: t} }

// ReaderAt returns a replay cursor positioned after the first pos records,
// as if Reader() had been followed by Skip(pos) — but without walking the
// skipped prefix. Because every chunk except the last holds exactly
// chunkRecords records, the target chunk is found by division; only the
// consumed prefix of that one chunk is walked to align the ea/stride
// cursors (at most chunkRecords static-table lookups). The skipped count
// starts at zero: ReaderAt positions, it does not fast-forward.
func (t *Trace) ReaderAt(pos uint64) *Reader {
	if pos > t.n {
		pos = t.n
	}
	r := &Reader{t: t, pos: pos}
	r.ci = int(pos / chunkRecords)
	r.ri = int(pos % chunkRecords)
	if r.ci >= len(t.chunks) {
		return r // at end of stream
	}
	c := &t.chunks[r.ci]
	static := t.static
	for i := 0; i < r.ri; i++ {
		s := &static[c.si[i]]
		if s.mem != memNone {
			r.eaI++
			if s.mem == memVector {
				r.strI++
			}
		}
	}
	return r
}

// Cursor is an O(1) resume point for a position a Reader has already
// reached: unlike ReaderAt, which must walk the chunk prefix to realign
// the sparse ea/stride columns, a cursor carries the column offsets
// directly. Capture it with Reader.Cursor at the position of interest and
// reopen any number of independent readers there with ReaderAtCursor.
type Cursor struct {
	pos       uint64
	eaI, strI int
}

// Pos returns the stream position the cursor marks.
func (c Cursor) Pos() uint64 { return c.pos }

// Cursor captures the reader's current position for ReaderAtCursor.
func (r *Reader) Cursor() Cursor { return Cursor{pos: r.pos, eaI: r.eaI, strI: r.strI} }

// ReaderAtCursor opens a new reader at a previously captured cursor in
// O(1). The cursor must have been captured from a reader over the same
// trace.
func (t *Trace) ReaderAtCursor(c Cursor) *Reader {
	r := &Reader{t: t, pos: c.pos, eaI: c.eaI, strI: c.strI}
	r.ci = int(c.pos / chunkRecords)
	r.ri = int(c.pos % chunkRecords)
	return r
}

// Reader replays a recorded trace as a Source.
type Reader struct {
	t       *Trace
	ci      int    // chunk index
	ri      int    // record index within chunk
	eaI     int    // cursor into chunk.ea
	strI    int    // cursor into chunk.stride
	pos     uint64 // records consumed (Next + Skip)
	skipped uint64 // records consumed by Skip only
}

// Program returns the traced program.
func (r *Reader) Program() *isa.Program { return r.t.prog }

// Trace returns the recording this reader replays, so a consumer handed a
// Reader can open further cursors over the same trace (see Trace.ReaderAt).
func (r *Reader) Trace() *Trace { return r.t }

// Err always returns nil: only complete, fault-free runs are recorded.
func (r *Reader) Err() error { return nil }

// Pos returns how many records have been consumed so far, whether by Next
// or by Skip.
func (r *Reader) Pos() uint64 { return r.pos }

// Skipped returns how many of the consumed records were fast-forwarded by
// Skip or WarmNext rather than reconstructed by Next — the span of the
// trace the consumer never timed (momtrace -stats reports it; it is zero
// for full replays).
func (r *Reader) Skipped() uint64 { return r.skipped }

// Skip advances the cursor past up to n records without reconstructing
// them, returning how many were actually skipped (fewer than n only at end
// of stream). Chunk tails are skipped in O(1); a record inside a partially
// consumed span costs one static-table lookup to keep the ea/stride
// cursors aligned for the next reconstructed record.
func (r *Reader) Skip(n uint64) uint64 {
	var done uint64
	for done < n && r.ci < len(r.t.chunks) {
		c := &r.t.chunks[r.ci]
		remaining := uint64(len(c.si) - r.ri)
		left := n - done
		if remaining <= left {
			done += remaining
			r.ci++
			r.ri, r.eaI, r.strI = 0, 0, 0
			continue
		}
		static := r.t.static
		for i := uint64(0); i < left; i++ {
			s := &static[c.si[r.ri]]
			r.ri++
			if s.mem != memNone {
				r.eaI++
				if s.mem == memVector {
					r.strI++
				}
			}
		}
		done += left
	}
	r.pos += done
	r.skipped += done
	return done
}

// WarmSink receives the warming-relevant content of fast-forwarded records
// (see Reader.WarmNext): branch outcomes for predictor/BTB training and
// memory footprints for cache-tag touches. ALU records carry no long-lived
// state and are never delivered.
type WarmSink interface {
	// WarmBranch reports a branch record: its static index and outcome.
	WarmBranch(si int, taken bool)
	// WarmScalar reports a scalar memory record.
	WarmScalar(ea uint64, size int, store bool)
	// WarmVector reports a vector memory record (nelem = vector length).
	WarmVector(ea uint64, stride int64, nelem int, store bool)
}

// WarmNext advances up to n records, feeding each branch and memory record
// to sink and discarding the rest after a single static-table class check —
// the fast-forward cursor of sampled simulation. Like Skip, the consumed
// records count as skipped: they were never reconstructed for timing. It
// returns how many records were consumed (fewer than n only at end of
// stream).
func (r *Reader) WarmNext(n uint64, sink WarmSink) uint64 {
	var done uint64
	static := r.t.static
	for done < n {
		if r.ci >= len(r.t.chunks) {
			break
		}
		c := &r.t.chunks[r.ci]
		if r.ri >= len(c.si) {
			r.ci++
			r.ri, r.eaI, r.strI = 0, 0, 0
			continue
		}
		take := min(n-done, uint64(len(c.si)-r.ri))
		for k := uint64(0); k < take; k++ {
			si := c.si[r.ri]
			s := &static[si]
			switch {
			case s.mem == memScalar:
				sink.WarmScalar(c.ea[r.eaI], int(s.size), s.class == isa.ClassStore)
				r.eaI++
			case s.mem == memVector:
				vl := int(c.meta[r.ri] &^ metaTaken)
				sink.WarmVector(c.ea[r.eaI], c.stride[r.strI], vl, s.class == isa.ClassMomStore)
				r.eaI++
				r.strI++
			case s.class == isa.ClassBranch:
				sink.WarmBranch(int(si), c.meta[r.ri]&metaTaken != 0)
			}
			r.ri++
		}
		done += take
	}
	r.pos += done
	r.skipped += done
	return done
}

// Next reconstructs the next dynamic instruction from the trace.
func (r *Reader) Next() (emu.Dyn, bool) {
	for {
		if r.ci >= len(r.t.chunks) {
			return emu.Dyn{}, false
		}
		if r.ri < len(r.t.chunks[r.ci].si) {
			break
		}
		r.ci++
		r.ri, r.eaI, r.strI = 0, 0, 0
	}
	c := &r.t.chunks[r.ci]
	si := c.si[r.ri]
	meta := c.meta[r.ri]
	r.ri++
	r.pos++
	s := &r.t.static[si]
	d := emu.Dyn{
		SI:    int(si),
		Op:    s.op,
		Class: s.class,
		Taken: meta&metaTaken != 0,
		VL:    int(meta &^ metaTaken),
	}
	if s.class == isa.ClassBranch {
		d.Target = int(s.target)
	}
	switch s.mem {
	case memScalar:
		d.EA = c.ea[r.eaI]
		r.eaI++
		d.NElem, d.Size = 1, int(s.size)
	case memVector:
		d.EA = c.ea[r.eaI]
		r.eaI++
		d.Stride = c.stride[r.strI]
		r.strI++
		d.NElem, d.Size = d.VL, int(s.size)
	}
	return d, true
}
