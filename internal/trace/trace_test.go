package trace

import (
	"errors"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
)

const testMaxSteps = 50_000_000

// TestReplayMatchesLive captures every kernel (all ISAs) and checks that the
// replayed Dyn stream is field-for-field identical to a fresh live run.
func TestReplayMatchesLive(t *testing.T) {
	for _, k := range kernels.All(kernels.ScaleTest) {
		for _, ext := range []isa.Ext{isa.ExtAlpha, isa.ExtMMX, isa.ExtMDMX, isa.ExtMOM} {
			k, ext := k, ext
			t.Run(k.Name+"/"+ext.String(), func(t *testing.T) {
				t.Parallel()
				p := k.Build(ext)
				tr, err := Capture(emu.New(p), testMaxSteps, 0)
				if err != nil {
					t.Fatal(err)
				}
				live := NewLive(emu.New(k.Build(ext)))
				r := tr.Reader()
				var n uint64
				for {
					want, okW := live.Next()
					got, okG := r.Next()
					if okW != okG {
						t.Fatalf("record %d: live ok=%v, replay ok=%v", n, okW, okG)
					}
					if !okW {
						break
					}
					if got != want {
						t.Fatalf("record %d: replay %+v != live %+v", n, got, want)
					}
					n++
				}
				if n != tr.Records() {
					t.Fatalf("replayed %d records, trace holds %d", n, tr.Records())
				}
				if tr.Chunks() < 1 {
					t.Fatal("trace has no chunks")
				}
				if tr.Bytes() <= 0 {
					t.Fatal("trace reports no bytes")
				}
			})
		}
	}
}

// TestConcurrentReaders replays one trace from many goroutines at once; the
// race detector guards the sharing contract.
func TestConcurrentReaders(t *testing.T) {
	k, err := kernels.ByName("idct", kernels.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Capture(emu.New(k.Build(isa.ExtMOM)), testMaxSteps, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan uint64)
	for w := 0; w < 8; w++ {
		go func() {
			r := tr.Reader()
			var n uint64
			for {
				if _, ok := r.Next(); !ok {
					break
				}
				n++
			}
			done <- n
		}()
	}
	for w := 0; w < 8; w++ {
		if n := <-done; n != tr.Records() {
			t.Fatalf("reader saw %d records, want %d", n, tr.Records())
		}
	}
}

// TestCaptureByteBudget: a tiny budget must yield ErrTooLarge, not a
// truncated trace.
func TestCaptureByteBudget(t *testing.T) {
	k, err := kernels.ByName("idct", kernels.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Capture(emu.New(k.Build(isa.ExtMOM)), testMaxSteps, 64)
	if err == nil {
		t.Fatal("expected ErrTooLarge")
	}
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

// TestCaptureStepBudget: exceeding maxSteps is an error.
func TestCaptureStepBudget(t *testing.T) {
	k, err := kernels.ByName("idct", kernels.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Capture(emu.New(k.Build(isa.ExtMOM)), 10, 0); err == nil {
		t.Fatal("expected step-budget error")
	}
}

// TestSkipMatchesNext: Skip(n) must land the cursor exactly where n Next
// calls would — including the ea/stride columns — for every offset class
// (mid-chunk, chunk boundary, past the end), and the Pos/Skipped counters
// must account for every record.
func TestSkipMatchesNext(t *testing.T) {
	k, err := kernels.ByName("idct", kernels.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	p := k.Build(isa.ExtMOM)
	tr, err := Capture(emu.New(p), testMaxSteps, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Records()
	for _, skip := range []uint64{0, 1, 7, n / 3, n - 1, n, n + 100} {
		skip := skip
		ref := tr.Reader()
		for i := uint64(0); i < skip; i++ {
			ref.Next()
		}
		r := tr.Reader()
		want := skip
		if want > n {
			want = n
		}
		if got := r.Skip(skip); got != want {
			t.Fatalf("Skip(%d) skipped %d records, want %d", skip, got, want)
		}
		if r.Pos() != want || r.Skipped() != want {
			t.Fatalf("Skip(%d): pos %d skipped %d, want both %d", skip, r.Pos(), r.Skipped(), want)
		}
		for {
			want, okW := ref.Next()
			got, okG := r.Next()
			if okW != okG {
				t.Fatalf("after Skip(%d): ref ok=%v, skip-reader ok=%v", skip, okW, okG)
			}
			if !okW {
				break
			}
			if got != want {
				t.Fatalf("after Skip(%d): %+v != %+v", skip, got, want)
			}
		}
		if r.Pos() != n {
			t.Fatalf("after draining: pos %d, want %d", r.Pos(), n)
		}
		if r.Skipped() != want {
			t.Fatalf("after draining: skipped %d, want %d", r.Skipped(), want)
		}
	}
}

// warmRec is one record delivered to a recording WarmSink.
type warmRec struct {
	kind   string
	si     int
	taken  bool
	ea     uint64
	size   int
	stride int64
	nelem  int
	store  bool
}

type recordingSink struct{ recs []warmRec }

func (s *recordingSink) WarmBranch(si int, taken bool) {
	s.recs = append(s.recs, warmRec{kind: "branch", si: si, taken: taken})
}
func (s *recordingSink) WarmScalar(ea uint64, size int, store bool) {
	s.recs = append(s.recs, warmRec{kind: "scalar", ea: ea, size: size, store: store})
}
func (s *recordingSink) WarmVector(ea uint64, stride int64, nelem int, store bool) {
	s.recs = append(s.recs, warmRec{kind: "vector", ea: ea, stride: stride, nelem: nelem, store: store})
}

// TestWarmNextMatchesNext: the bulk fast-forward must deliver exactly the
// branch and memory records Next would reconstruct, in order, with the
// same payloads, and leave the cursor where Next would.
func TestWarmNextMatchesNext(t *testing.T) {
	k, err := kernels.ByName("motion1", kernels.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Capture(emu.New(k.Build(isa.ExtMOM)), testMaxSteps, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Records()
	span := n / 2

	// Reference: reconstruct the first span records through Next.
	var want []warmRec
	ref := tr.Reader()
	for i := uint64(0); i < span; i++ {
		d, ok := ref.Next()
		if !ok {
			t.Fatal("short stream")
		}
		switch d.Class {
		case isa.ClassBranch:
			want = append(want, warmRec{kind: "branch", si: d.SI, taken: d.Taken})
		case isa.ClassLoad, isa.ClassStore:
			want = append(want, warmRec{kind: "scalar", ea: d.EA, size: d.Size, store: d.Class == isa.ClassStore})
		case isa.ClassMomLoad, isa.ClassMomStore:
			want = append(want, warmRec{kind: "vector", ea: d.EA, stride: d.Stride, nelem: d.VL, store: d.Class == isa.ClassMomStore})
		}
	}

	sink := &recordingSink{}
	r := tr.Reader()
	if got := r.WarmNext(span, sink); got != span {
		t.Fatalf("WarmNext(%d) consumed %d", span, got)
	}
	if r.Pos() != span || r.Skipped() != span {
		t.Fatalf("pos %d skipped %d, want both %d", r.Pos(), r.Skipped(), span)
	}
	if len(sink.recs) != len(want) {
		t.Fatalf("sink saw %d warm records, want %d", len(sink.recs), len(want))
	}
	for i := range want {
		if sink.recs[i] != want[i] {
			t.Fatalf("warm record %d: %+v != %+v", i, sink.recs[i], want[i])
		}
	}

	// The reader must resume exactly where Next left the reference cursor.
	for {
		want, okW := ref.Next()
		got, okG := r.Next()
		if okW != okG {
			t.Fatalf("resume: ref ok=%v, warm-reader ok=%v", okW, okG)
		}
		if !okW {
			break
		}
		if got != want {
			t.Fatalf("resume: %+v != %+v", got, want)
		}
	}
}
