package trace

import (
	"errors"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
)

const testMaxSteps = 50_000_000

// TestReplayMatchesLive captures every kernel (all ISAs) and checks that the
// replayed Dyn stream is field-for-field identical to a fresh live run.
func TestReplayMatchesLive(t *testing.T) {
	for _, k := range kernels.All(kernels.ScaleTest) {
		for _, ext := range []isa.Ext{isa.ExtAlpha, isa.ExtMMX, isa.ExtMDMX, isa.ExtMOM} {
			k, ext := k, ext
			t.Run(k.Name+"/"+ext.String(), func(t *testing.T) {
				t.Parallel()
				p := k.Build(ext)
				tr, err := Capture(emu.New(p), testMaxSteps, 0)
				if err != nil {
					t.Fatal(err)
				}
				live := NewLive(emu.New(k.Build(ext)))
				r := tr.Reader()
				var n uint64
				for {
					want, okW := live.Next()
					got, okG := r.Next()
					if okW != okG {
						t.Fatalf("record %d: live ok=%v, replay ok=%v", n, okW, okG)
					}
					if !okW {
						break
					}
					if got != want {
						t.Fatalf("record %d: replay %+v != live %+v", n, got, want)
					}
					n++
				}
				if n != tr.Records() {
					t.Fatalf("replayed %d records, trace holds %d", n, tr.Records())
				}
				if tr.Chunks() < 1 {
					t.Fatal("trace has no chunks")
				}
				if tr.Bytes() <= 0 {
					t.Fatal("trace reports no bytes")
				}
			})
		}
	}
}

// TestConcurrentReaders replays one trace from many goroutines at once; the
// race detector guards the sharing contract.
func TestConcurrentReaders(t *testing.T) {
	k, err := kernels.ByName("idct", kernels.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Capture(emu.New(k.Build(isa.ExtMOM)), testMaxSteps, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan uint64)
	for w := 0; w < 8; w++ {
		go func() {
			r := tr.Reader()
			var n uint64
			for {
				if _, ok := r.Next(); !ok {
					break
				}
				n++
			}
			done <- n
		}()
	}
	for w := 0; w < 8; w++ {
		if n := <-done; n != tr.Records() {
			t.Fatalf("reader saw %d records, want %d", n, tr.Records())
		}
	}
}

// TestCaptureByteBudget: a tiny budget must yield ErrTooLarge, not a
// truncated trace.
func TestCaptureByteBudget(t *testing.T) {
	k, err := kernels.ByName("idct", kernels.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Capture(emu.New(k.Build(isa.ExtMOM)), testMaxSteps, 64)
	if err == nil {
		t.Fatal("expected ErrTooLarge")
	}
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

// TestCaptureStepBudget: exceeding maxSteps is an error.
func TestCaptureStepBudget(t *testing.T) {
	k, err := kernels.ByName("idct", kernels.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Capture(emu.New(k.Build(isa.ExtMOM)), 10, 0); err == nil {
		t.Fatal("expected step-budget error")
	}
}
