package trace

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
)

// captureKernel records one kernel for artifact tests.
func captureKernel(t *testing.T, name string, ext isa.Ext) (*Trace, *isa.Program) {
	t.Helper()
	k, err := kernels.ByName(name, kernels.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	p := k.Build(ext)
	tr, err := Capture(emu.New(p), testMaxSteps, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr, p
}

// encode renders a trace's artifact bytes.
func encode(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if n != tr.EncodedSize() {
		t.Fatalf("EncodedSize says %d, WriteTo wrote %d", tr.EncodedSize(), n)
	}
	return buf.Bytes()
}

// drain replays a source to completion.
func drain(t *testing.T, src Source) []emu.Dyn {
	t.Helper()
	var out []emu.Dyn
	for {
		d, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, d)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("source fault: %v", err)
	}
	return out
}

// TestArtifactRoundTrip checks encode → decode → re-encode byte identity and
// record-for-record replay equality, for both the materialising decoder and
// the streaming one, across kernels and ISAs.
func TestArtifactRoundTrip(t *testing.T) {
	for _, name := range []string{"idct", "motion1"} {
		for _, ext := range []isa.Ext{isa.ExtAlpha, isa.ExtMOM} {
			name, ext := name, ext
			t.Run(name+"/"+ext.String(), func(t *testing.T) {
				t.Parallel()
				tr, p := captureKernel(t, name, ext)
				blob := encode(t, tr)

				dec, err := Decode(bytes.NewReader(blob), p)
				if err != nil {
					t.Fatal(err)
				}
				if dec.Records() != tr.Records() || dec.Chunks() != tr.Chunks() || dec.Bytes() != tr.Bytes() {
					t.Fatalf("decoded shape %d/%d/%d, captured %d/%d/%d",
						dec.Records(), dec.Chunks(), dec.Bytes(), tr.Records(), tr.Chunks(), tr.Bytes())
				}
				if again := encode(t, dec); !bytes.Equal(again, blob) {
					t.Fatal("re-encoded artifact differs from the original bytes")
				}

				want := drain(t, tr.Reader())
				got := drain(t, dec.Reader())
				st, err := NewStream(bytes.NewReader(blob), p)
				if err != nil {
					t.Fatal(err)
				}
				streamed := drain(t, st)
				if len(got) != len(want) || len(streamed) != len(want) {
					t.Fatalf("replay lengths: capture %d, decode %d, stream %d", len(want), len(got), len(streamed))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("record %d: decoded %+v != captured %+v", i, got[i], want[i])
					}
					if streamed[i] != want[i] {
						t.Fatalf("record %d: streamed %+v != captured %+v", i, streamed[i], want[i])
					}
				}
				if st.Pos() != st.Records() {
					t.Fatalf("stream consumed %d of %d records", st.Pos(), st.Records())
				}
			})
		}
	}
}

// TestArtifactCorruption flips, truncates and mislabels artifact bytes and
// requires every damaged form to fail with ErrFormat — never decode wrong.
func TestArtifactCorruption(t *testing.T) {
	tr, p := captureKernel(t, "idct", isa.ExtMOM)
	blob := encode(t, tr)
	headerLen := bytes.IndexByte(blob, '\n') + 1

	check := func(t *testing.T, data []byte) {
		t.Helper()
		if _, err := Decode(bytes.NewReader(data), p); !errors.Is(err, ErrFormat) {
			t.Fatalf("Decode accepted damaged artifact (err=%v)", err)
		}
		st, err := NewStream(bytes.NewReader(data), p)
		if err == nil {
			for {
				if _, ok := st.Next(); !ok {
					break
				}
			}
			err = st.Err()
		}
		if !errors.Is(err, ErrFormat) {
			t.Fatalf("Stream accepted damaged artifact (err=%v)", err)
		}
	}

	t.Run("bad magic", func(t *testing.T) {
		data := append([]byte(nil), blob...)
		copy(data, "momtrace 9")
		check(t, data)
	})
	t.Run("fingerprint mismatch", func(t *testing.T) {
		// A different program's artifact must not decode for p.
		other, _ := captureKernel(t, "idct", isa.ExtAlpha)
		check(t, encode(t, other))
	})
	t.Run("truncated header", func(t *testing.T) {
		check(t, blob[:headerLen/2])
	})
	t.Run("truncated payload", func(t *testing.T) {
		check(t, blob[:headerLen+(len(blob)-headerLen)/2])
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		data := append([]byte(nil), blob...)
		data[len(data)-9] ^= 0x40
		check(t, data)
	})
	t.Run("trailing bytes", func(t *testing.T) {
		check(t, append(append([]byte(nil), blob...), 0))
	})
	t.Run("record count lie", func(t *testing.T) {
		// Rewrite the header to claim one record fewer; framing no longer
		// adds up and both decoders must notice.
		var fp string
		var records uint64
		var chunks int
		if _, err := fmt.Sscanf(string(blob[:headerLen]), fileMagic+" %16s %d %d\n", &fp, &records, &chunks); err != nil {
			t.Fatal(err)
		}
		hdr := []byte(fmt.Sprintf("%s %s %d %d\n", fileMagic, fp, records-1, chunks))
		check(t, append(hdr, blob[headerLen:]...))
	})
}

// TestStreamEarlyError verifies a mid-file flip stops the stream with an
// error only after the verified prefix replayed intact: streaming hands out
// no unverified records.
func TestStreamEarlyError(t *testing.T) {
	// Any kernel with a multi-chunk trace will do; Alpha traces are the
	// longest (no vector compression of the dynamic stream).
	var tr *Trace
	var p *isa.Program
	for _, k := range kernels.All(kernels.ScaleTest) {
		tr, p = captureKernel(t, k.Name, isa.ExtAlpha)
		if tr.Chunks() >= 2 {
			break
		}
	}
	if tr == nil || tr.Chunks() < 2 {
		t.Skip("no multi-chunk trace available at test scale")
	}
	blob := encode(t, tr)
	headerLen := bytes.IndexByte(blob, '\n') + 1
	// Damage a byte inside the SECOND frame; the first frame must replay.
	firstFrame := headerLen + frameHeaderLen + int(frameSize(chunkRecords, len(tr.chunks[0].ea), len(tr.chunks[0].stride)))
	data := append([]byte(nil), blob...)
	data[firstFrame+frameHeaderLen+10] ^= 1

	st, err := NewStream(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, tr.Reader())
	var n int
	for {
		d, ok := st.Next()
		if !ok {
			break
		}
		if d != want[n] {
			t.Fatalf("record %d: streamed %+v != captured %+v", n, d, want[n])
		}
		n++
	}
	if n != chunkRecords {
		t.Fatalf("stream yielded %d records before the damaged frame, want %d", n, chunkRecords)
	}
	if !errors.Is(st.Err(), ErrFormat) {
		t.Fatalf("stream ended without surfacing the corruption: %v", st.Err())
	}
}

// TestDecodeGrantedBudget: a refused reservation aborts with ErrTooLarge and
// reports exactly the bytes granted so far; an exact budget succeeds with
// granted == Bytes().
func TestDecodeGrantedBudget(t *testing.T) {
	tr, p := captureKernel(t, "idct", isa.ExtMOM)
	blob := encode(t, tr)

	var granted int64
	trDec, got, err := DecodeGranted(bytes.NewReader(blob), p, func(n int64) bool {
		if granted+n > tr.Bytes() {
			return false
		}
		granted += n
		return true
	})
	if err != nil || trDec == nil {
		t.Fatalf("exact budget refused: %v", err)
	}
	if got != tr.Bytes() || granted != tr.Bytes() {
		t.Fatalf("granted %d/%d, want %d", got, granted, tr.Bytes())
	}

	var small int64
	_, got, err = DecodeGranted(bytes.NewReader(blob), p, func(n int64) bool {
		if small+n > tr.Bytes()/2 {
			return false
		}
		small += n
		return true
	})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("half budget: err=%v, want ErrTooLarge", err)
	}
	if got != small {
		t.Fatalf("reported granted %d, reserved %d", got, small)
	}
}
