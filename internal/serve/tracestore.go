package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	mom "repro"
)

// Trace artifacts over the peer fabric: a node whose local artifact store
// misses asks the key's rendezvous owner before recapturing, exactly like
// result documents fill from their owner's store. The serving side is
// GET /v1/traces/{key} (raw artifact bytes; a miss is a plain 404), the
// asking side is a process-wide mom.TraceFetcher installed once and fanned
// out to every live Server with a peer set. Artifact bytes are verified by
// the trace decoder on arrival, so a damaged or lying peer costs a
// recapture, never a wrong trace.

// Flight kinds of the trace artifact paths.
const (
	KindTraceServe = "trace-serve" // served a raw trace artifact to a peer
	KindTraceFetch = "trace-fetch" // fetched a trace artifact from its owner
)

// handleTraceGet serves one raw trace artifact to a peer (or any client).
// It never captures — a miss is a plain 404, which tells the asking node to
// recapture locally. A request carrying a Mom-Trace header is a peer hop of
// a distributed flight, so the read is recorded under the caller's trace
// context for stitching.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var fr *flightRecord
	t0 := time.Now()
	if tid := r.Header.Get(TraceHeader); tid != "" {
		tc := traceCtx{trace: adoptTrace(r), reqID: "r" + newID()}
		fr = s.newFlightRecord(KindTraceServe, key, "", "", tc, t0)
	}
	settle := func(state string) {
		if fr != nil {
			now := time.Now()
			s.flights.span(fr, "trace-read", t0, now, state)
			s.flights.close(fr, state, now)
		}
	}
	if s.cfg.TraceStore == nil {
		settle(StateFailed)
		httpError(w, http.StatusNotFound, "no trace store configured")
		return
	}
	rc, n, ok := s.cfg.TraceStore.GetStream(key)
	if !ok {
		settle(StateFailed)
		httpError(w, http.StatusNotFound, "no trace artifact for key %q", key)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	_, err := io.CopyN(w, rc, n)
	if err != nil {
		settle(StateFailed)
		return
	}
	settle(StateDone)
}

// fetchPeerTrace asks the artifact key's rendezvous owner for its bytes.
// It reports ok=false when this node owns the key (nobody else would have
// it), the owner misses, or the round trip fails — the caller then
// recaptures. The body is drained before returning so the recorded span
// covers the whole transfer.
func (s *Server) fetchPeerTrace(key string) (io.ReadCloser, bool) {
	if s.cfg.Peers == nil {
		return nil, false
	}
	owner := s.cfg.Peers.Owner(key)
	if owner == s.cfg.Peers.Self() {
		return nil, false
	}
	tc := traceCtx{trace: newID(), reqID: "r" + newID()}
	t0 := time.Now()
	fr := s.newFlightRecord(KindTraceFetch, key, "", owner, tc, t0)
	settle := func(state string) {
		now := time.Now()
		s.flights.span(fr, "trace-fetch", t0, now, owner)
		s.metrics.stage("trace-fetch", now.Sub(t0))
		s.flights.close(fr, state, now)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/v1/traces/"+key, nil)
	if err != nil {
		settle(StateFailed)
		return nil, false
	}
	req.Header.Set(TraceHeader, tc.trace)
	resp, err := s.cfg.Peers.client.Do(req)
	if err != nil {
		s.metrics.add(&s.metrics.peerErrors)
		s.logPeerError("trace-fetch", owner, key, tc.trace, time.Since(t0), err)
		settle(StateFailed)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusNotFound {
			s.metrics.add(&s.metrics.peerErrors)
			s.logPeerError("trace-fetch", owner, key, tc.trace, time.Since(t0),
				fmt.Errorf("status %d", resp.StatusCode))
		}
		settle(StateFailed)
		return nil, false
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		s.metrics.add(&s.metrics.peerErrors)
		s.logPeerError("trace-fetch", owner, key, tc.trace, time.Since(t0), err)
		settle(StateFailed)
		return nil, false
	}
	s.metrics.add(&s.metrics.traceFetches)
	settle(StateDone)
	return io.NopCloser(bytes.NewReader(blob)), true
}

// traceFetchSubs fans the process-wide mom.TraceFetcher out to every live
// Server with a peer set, mirroring captureSubs: tests run several servers
// in one process, and the hook is installed exactly once.
var traceFetchSubs struct {
	once sync.Once
	mu   sync.Mutex
	subs map[*Server]struct{}
}

func subscribeTraceFetch(s *Server) {
	traceFetchSubs.once.Do(func() {
		traceFetchSubs.subs = map[*Server]struct{}{}
		mom.SetTraceFetcher(func(key string) (io.ReadCloser, bool) {
			traceFetchSubs.mu.Lock()
			subs := make([]*Server, 0, len(traceFetchSubs.subs))
			for srv := range traceFetchSubs.subs {
				subs = append(subs, srv)
			}
			traceFetchSubs.mu.Unlock()
			for _, srv := range subs {
				if rc, ok := srv.fetchPeerTrace(key); ok {
					return rc, true
				}
			}
			return nil, false
		})
	})
	traceFetchSubs.mu.Lock()
	traceFetchSubs.subs[s] = struct{}{}
	traceFetchSubs.mu.Unlock()
}

func unsubscribeTraceFetch(s *Server) {
	traceFetchSubs.mu.Lock()
	delete(traceFetchSubs.subs, s)
	traceFetchSubs.mu.Unlock()
}
