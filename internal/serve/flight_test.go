package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	mom "repro"
	"repro/internal/store"
)

// flightsPage mirrors the GET /debug/flights response shape.
type flightsPage struct {
	Flights []struct {
		Trace    string        `json:"trace"`
		Kind     string        `json:"kind"`
		Key      string        `json:"key"`
		Exp      string        `json:"exp"`
		State    string        `json:"state"`
		Peer     string        `json:"peer"`
		Requests []string      `json:"requests"`
		WallUS   int64         `json:"wall_us"`
		Spans    []mom.SpanDoc `json:"spans"`
	} `json:"flights"`
}

func fetchFlights(t *testing.T, ts *httptest.Server, query string) flightsPage {
	t.Helper()
	code, b := get(t, ts.URL+"/debug/flights"+query)
	if code != http.StatusOK {
		t.Fatalf("/debug/flights%s: status %d", query, code)
	}
	var page flightsPage
	if err := json.Unmarshal(b, &page); err != nil {
		t.Fatalf("/debug/flights%s: bad JSON: %v", query, err)
	}
	return page
}

// TestFlightRecorderEndToEnd: one computed job leaves one flight in the
// ring carrying the submission's request ID and trace, the expected stage
// spans, a telescoping timeline (every span fits inside the flight's
// wall-clock), and per-stage samples in /metrics.
func TestFlightRecorderEndToEnd(t *testing.T) {
	st, _ := store.Open(t.TempDir(), 0)
	srv := New(Config{Workers: 1, QueueCap: 4, Store: st,
		Runner: func(ctx context.Context, req mom.JobRequest) ([]byte, error) {
			time.Sleep(5 * time.Millisecond) // give the execute span real width
			return []byte("{}\n"), nil
		}})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	d, _ := post(t, ts, `{"exp":"fig5"}`)
	if d.RequestID == "" || d.Trace == "" {
		t.Fatalf("submission doc lacks identity: request_id=%q trace=%q", d.RequestID, d.Trace)
	}
	waitState(t, ts, d.ID, StateDone)

	page := fetchFlights(t, ts, "")
	if len(page.Flights) != 1 {
		t.Fatalf("flights after one job: %d, want 1", len(page.Flights))
	}
	fl := page.Flights[0]
	if fl.Kind != KindCompute || fl.State != StateDone || fl.Key != d.Key || fl.Trace != d.Trace {
		t.Fatalf("flight = kind %s state %s key %s trace %s, want compute/done for job %s/%s",
			fl.Kind, fl.State, fl.Key, fl.Trace, d.Key, d.Trace)
	}
	if len(fl.Requests) != 1 || fl.Requests[0] != d.RequestID {
		t.Fatalf("flight members %v, want [%s]", fl.Requests, d.RequestID)
	}

	// The compute path records exactly these stages, and every span must
	// telescope into the flight: non-negative offset, end within wall_us.
	bySpan := map[string]mom.SpanDoc{}
	for _, sp := range fl.Spans {
		if sp.StartUS < 0 || sp.StartUS+sp.DurUS > fl.WallUS {
			t.Errorf("span %s [%d,+%d]us escapes the flight's %dus wall-clock",
				sp.Name, sp.StartUS, sp.DurUS, fl.WallUS)
		}
		bySpan[sp.Name] = sp
	}
	for _, want := range []string{"queue", "execute", "store"} {
		if _, ok := bySpan[want]; !ok {
			t.Errorf("flight has no %q span (got %v)", want, fl.Spans)
		}
	}
	if bySpan["execute"].DurUS < 4000 {
		t.Errorf("execute span %dus, want >= 4000 (the runner sleeps 5ms)", bySpan["execute"].DurUS)
	}
	if sum := bySpan["queue"].DurUS + bySpan["execute"].DurUS + bySpan["store"].DurUS; sum > fl.WallUS {
		t.Errorf("stage durations sum to %dus > %dus wall-clock", sum, fl.WallUS)
	}

	// The same stages feed the per-stage histograms.
	for _, stage := range []string{"queue", "execute", "store"} {
		name := `momserved_stage_duration_seconds_count{stage="` + stage + `"}`
		if n := metricValue(t, ts, name); n < 1 {
			t.Errorf("%s = %g, want >= 1", name, n)
		}
	}
}

// TestFlightTraceAdoption: a well-formed Mom-Trace header is adopted as
// the submission's trace context; malformed ones are replaced, never
// echoed.
func TestFlightTraceAdoption(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 4, Runner: stubRunner(nil)})
	defer srv.Shutdown(context.Background())

	mk := func(header string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/jobs", nil)
		if header != "" {
			r.Header.Set(TraceHeader, header)
		}
		return r
	}
	const valid = "deadbeefcafe0123"
	if got := adoptTrace(mk(valid)); got != valid {
		t.Errorf("valid header %q adopted as %q", valid, got)
	}
	for _, bad := range []string{"", "short", "UPPERHEX00AA11BB", "zzzzzzzzzzzz",
		"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef0"} {
		got := adoptTrace(mk(bad))
		if got == bad {
			t.Errorf("malformed header %q was adopted verbatim", bad)
		}
		if len(got) != 16 {
			t.Errorf("replacement for %q is %q, want a fresh 16-char id", bad, got)
		}
	}
}

// TestFlightRingBound: the completed ring holds the newest cap flights
// and releases the rest.
func TestFlightRingBound(t *testing.T) {
	r := newRecorder(4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		fr := &flightRecord{trace: "t", kind: KindCompute, key: string(rune('a' + i)),
			start: base.Add(time.Duration(i) * time.Millisecond)}
		r.open(fr)
		r.close(fr, StateDone, base.Add(time.Duration(i+1)*time.Millisecond))
	}
	docs := r.snapshot("")
	if len(docs) != 4 {
		t.Fatalf("ring holds %d flights, want 4", len(docs))
	}
	if docs[0].Key != "j" || docs[3].Key != "g" {
		t.Fatalf("ring kept %s..%s newest-first, want j..g", docs[0].Key, docs[3].Key)
	}
}

// TestFlightsChromeExport: ?format=chrome emits a trace-event document
// (the same shape internal/obs exports) with one flight track.
func TestFlightsChromeExport(t *testing.T) {
	release := make(chan struct{})
	close(release)
	srv := New(Config{Workers: 1, QueueCap: 4, Runner: stubRunner(release)})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	d, _ := post(t, ts, `{"exp":"fig5"}`)
	waitState(t, ts, d.ID, StateDone)

	code, b := get(t, ts.URL+"/debug/flights?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome export: status %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit %q, want ns", doc.DisplayTimeUnit)
	}
	var flights, stages int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Cat == "flight" && ev.Ph == "X":
			flights++
			if ev.Dur < 1 {
				t.Errorf("flight event %q has dur %d, want >= 1", ev.Name, ev.Dur)
			}
		case ev.Cat == "stage" && ev.Ph == "X":
			stages++
		}
	}
	if flights != 1 || stages < 2 {
		t.Fatalf("chrome export has %d flight / %d stage events, want 1 / >=2", flights, stages)
	}
}

// BenchmarkStoreHitAdmit measures the born-done fast path — store lookup,
// flight record, structured-log hook — that every deduplicated submission
// pays. The flight recorder and slog plumbing ride this path on every
// request, so it must stay cheap.
func BenchmarkStoreHitAdmit(b *testing.B) {
	st, err := store.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	srv := New(Config{Workers: 1, QueueCap: 4, Store: st})
	defer srv.Shutdown(context.Background())

	req, err := mom.JobRequest{Exp: "fig5"}.Normalized()
	if err != nil {
		b.Fatal(err)
	}
	key, err := req.Key()
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Put(key, []byte("{}\n")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, _, err := srv.admit(req, key, time.Minute, traceCtx{trace: "deadbeefcafe0123", reqID: "r0"})
		if err != nil || !j.fromStore {
			b.Fatalf("admit: err %v, fromStore %v", err, j != nil && j.fromStore)
		}
	}
}

// TestCoalescedSubmissionsShareOneFlight: followers join the leader's
// flight record — one timeline, every member's request ID on it — rather
// than opening flights of their own.
func TestCoalescedSubmissionsShareOneFlight(t *testing.T) {
	release := make(chan struct{})
	srv := New(Config{Workers: 1, QueueCap: 4, Runner: stubRunner(release)})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	lead, _ := post(t, ts, `{"exp":"fig5"}`)
	waitState(t, ts, lead.ID, StateRunning)
	follow, _ := post(t, ts, `{"exp":"fig5"}`)
	if !follow.Coalesced {
		t.Fatal("second identical submission did not coalesce")
	}
	if follow.Trace != lead.Trace {
		t.Fatalf("follower trace %s differs from the flight's %s", follow.Trace, lead.Trace)
	}
	close(release)
	waitState(t, ts, lead.ID, StateDone)

	page := fetchFlights(t, ts, "")
	if len(page.Flights) != 1 {
		t.Fatalf("flights after a coalesced pair: %d, want 1", len(page.Flights))
	}
	fl := page.Flights[0]
	ids := map[string]bool{}
	for _, id := range fl.Requests {
		ids[id] = true
	}
	if !ids[lead.RequestID] || !ids[follow.RequestID] || len(fl.Requests) != 2 {
		t.Fatalf("flight members %v, want both %s and %s", fl.Requests, lead.RequestID, follow.RequestID)
	}
	found := false
	for _, sp := range fl.Spans {
		if sp.Name == "attach" && sp.Detail == follow.RequestID {
			found = true
		}
	}
	if !found {
		t.Fatalf("no attach span for follower %s in %v", follow.RequestID, fl.Spans)
	}
}
