package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	mom "repro"
)

// Prometheus text-format metrics, hand-rolled: the repository vendors no
// dependencies, and the exposition format for counters, gauges and
// histograms is small enough to emit directly. Everything cheap to
// recompute (jobs by state, store and trace-cache stats) is sampled at
// scrape time; only the per-experiment latency histograms accumulate.

// histBounds are the upper bounds (seconds) of the job-duration
// histogram: experiment runs span ~5ms kernel points to minutes-long
// bench-scale sweeps.
var histBounds = []float64{0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 15, 60, 300, 900}

type histogram struct {
	counts []uint64 // one per bound, +Inf bucket last
	sum    float64
	total  uint64
}

func (h *histogram) observe(seconds float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(histBounds)+1)
	}
	i := sort.SearchFloat64s(histBounds, seconds)
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// modeKey labels the submission counter: one experiment in one simulation
// mode ("sampled" when the request carries a sample interval, "exact"
// otherwise).
type modeKey struct{ exp, mode string }

type metrics struct {
	mu        sync.Mutex
	durations map[string]*histogram // by experiment name
	stages    map[string]*histogram // by flight-recorder stage name
	finished  map[string]uint64     // completed jobs by terminal state
	submitted map[modeKey]uint64    // admitted jobs by experiment and mode

	// Dedup, batch and peer counters (guarded by mu; bumped via add/batch).
	coalesced     uint64 // submissions attached to an in-flight execution
	promotions    uint64 // leader cancellations that handed the flight on
	batchRequests uint64 // POST /v1/jobs:batch calls
	batchItems    uint64 // items carried by those calls
	peerProxied   uint64 // flights forwarded to their owning peer
	peerFills     uint64 // local store fills from a peer's store or result
	peerErrors    uint64 // failed peer round trips
	traceFetches  uint64 // trace artifacts fetched from their owning peer
}

func (m *metrics) init() {
	m.durations = map[string]*histogram{}
	m.stages = map[string]*histogram{}
	m.finished = map[string]uint64{}
	m.submitted = map[modeKey]uint64{}
}

// stage records one flight-recorder stage latency (queue wait, trace
// capture, execution, store write, peer proxy RTT, peer store fill).
func (m *metrics) stage(name string, d time.Duration) {
	m.mu.Lock()
	h := m.stages[name]
	if h == nil {
		h = &histogram{}
		m.stages[name] = h
	}
	h.observe(d.Seconds())
	m.mu.Unlock()
}

// durationTotals reports the accumulated wall-clock and count of executed
// jobs across every experiment — the service rate behind Retry-After.
func (m *metrics) durationTotals() (sum float64, count uint64) {
	m.mu.Lock()
	for _, h := range m.durations {
		sum += h.sum
		count += h.total
	}
	m.mu.Unlock()
	return sum, count
}

// submit records one admitted job (store hits included — the mode split is
// about what callers ask for, not what ran).
func (m *metrics) submit(exp string, sampled bool) {
	mode := "exact"
	if sampled {
		mode = "sampled"
	}
	m.mu.Lock()
	m.submitted[modeKey{exp, mode}]++
	m.mu.Unlock()
}

// add bumps one of the plain counters declared on metrics.
func (m *metrics) add(c *uint64) {
	m.mu.Lock()
	*c++
	m.mu.Unlock()
}

// batch records one batch call carrying n items.
func (m *metrics) batch(n int) {
	m.mu.Lock()
	m.batchRequests++
	m.batchItems += uint64(n)
	m.mu.Unlock()
}

// observe records one finished job (any terminal state).
func (m *metrics) observe(exp, state string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished[state]++
	h := m.durations[exp]
	if h == nil {
		h = &histogram{}
		m.durations[exp] = h
	}
	h.observe(d.Seconds())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.writeMetrics(w)
}

// writeMetrics emits the full exposition: job lifecycle, admission queue,
// result store, trace cache, and per-experiment latency histograms.
func (s *Server) writeMetrics(w io.Writer) {
	// Jobs by current state (gauge over the retained records).
	byState := map[string]int{}
	s.mu.Lock()
	for _, j := range s.jobs {
		byState[j.state]++
	}
	queueLen := len(s.queue)
	inflightFlights := len(s.inflight)
	followers := 0
	for _, fl := range s.inflight {
		if n := len(fl.members); n > 1 {
			followers += n - 1
		}
	}
	s.mu.Unlock()
	fmt.Fprintln(w, "# HELP momserved_jobs Retained job records by lifecycle state.")
	fmt.Fprintln(w, "# TYPE momserved_jobs gauge")
	for _, st := range States {
		fmt.Fprintf(w, "momserved_jobs{state=%q} %d\n", st, byState[st])
	}
	fmt.Fprintln(w, "# HELP momserved_queue_depth Jobs waiting for a worker.")
	fmt.Fprintln(w, "# TYPE momserved_queue_depth gauge")
	fmt.Fprintf(w, "momserved_queue_depth %d\n", queueLen)
	fmt.Fprintln(w, "# HELP momserved_queue_capacity Admission queue capacity.")
	fmt.Fprintln(w, "# TYPE momserved_queue_capacity gauge")
	fmt.Fprintf(w, "momserved_queue_capacity %d\n", s.cfg.QueueCap)
	fmt.Fprintln(w, "# HELP momserved_workers Worker pool size.")
	fmt.Fprintln(w, "# TYPE momserved_workers gauge")
	fmt.Fprintf(w, "momserved_workers %d\n", s.cfg.Workers)
	fmt.Fprintln(w, "# HELP momserved_inflight_flights Distinct executions queued or running.")
	fmt.Fprintln(w, "# TYPE momserved_inflight_flights gauge")
	fmt.Fprintf(w, "momserved_inflight_flights %d\n", inflightFlights)
	fmt.Fprintln(w, "# HELP momserved_inflight_followers Jobs riding an in-flight execution beyond its leader.")
	fmt.Fprintln(w, "# TYPE momserved_inflight_followers gauge")
	fmt.Fprintf(w, "momserved_inflight_followers %d\n", followers)

	// Completed jobs by terminal state (counter).
	s.metrics.mu.Lock()
	fmt.Fprintln(w, "# HELP momserved_jobs_finished_total Jobs finished by terminal state.")
	fmt.Fprintln(w, "# TYPE momserved_jobs_finished_total counter")
	for _, st := range []string{StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "momserved_jobs_finished_total{state=%q} %d\n", st, s.metrics.finished[st])
	}
	// Admitted jobs by experiment and simulation mode (sampled vs exact).
	modes := make([]modeKey, 0, len(s.metrics.submitted))
	for k := range s.metrics.submitted {
		modes = append(modes, k)
	}
	sort.Slice(modes, func(i, j int) bool {
		if modes[i].exp != modes[j].exp {
			return modes[i].exp < modes[j].exp
		}
		return modes[i].mode < modes[j].mode
	})
	fmt.Fprintln(w, "# HELP momserved_jobs_submitted_total Admitted jobs by experiment and simulation mode.")
	fmt.Fprintln(w, "# TYPE momserved_jobs_submitted_total counter")
	for _, k := range modes {
		fmt.Fprintf(w, "momserved_jobs_submitted_total{exp=%q,mode=%q} %d\n", k.exp, k.mode, s.metrics.submitted[k])
	}
	// Per-experiment latency histograms.
	exps := make([]string, 0, len(s.metrics.durations))
	for e := range s.metrics.durations {
		exps = append(exps, e)
	}
	sort.Strings(exps)
	fmt.Fprintln(w, "# HELP momserved_job_duration_seconds Wall-clock of executed jobs (store hits excluded).")
	fmt.Fprintln(w, "# TYPE momserved_job_duration_seconds histogram")
	for _, e := range exps {
		h := s.metrics.durations[e]
		var cum uint64
		for i, b := range histBounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "momserved_job_duration_seconds_bucket{exp=%q,le=%q} %d\n", e, trimFloat(b), cum)
		}
		fmt.Fprintf(w, "momserved_job_duration_seconds_bucket{exp=%q,le=\"+Inf\"} %d\n", e, h.total)
		fmt.Fprintf(w, "momserved_job_duration_seconds_sum{exp=%q} %g\n", e, h.sum)
		fmt.Fprintf(w, "momserved_job_duration_seconds_count{exp=%q} %d\n", e, h.total)
	}
	// Per-stage latency histograms from the flight recorder.
	stages := make([]string, 0, len(s.metrics.stages))
	for st := range s.metrics.stages {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	fmt.Fprintln(w, "# HELP momserved_stage_duration_seconds Flight-recorder stage latencies (queue wait, capture, execute, store write, peer hops).")
	fmt.Fprintln(w, "# TYPE momserved_stage_duration_seconds histogram")
	for _, st := range stages {
		h := s.metrics.stages[st]
		var cum uint64
		for i, b := range histBounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "momserved_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n", st, trimFloat(b), cum)
		}
		fmt.Fprintf(w, "momserved_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", st, h.total)
		fmt.Fprintf(w, "momserved_stage_duration_seconds_sum{stage=%q} %g\n", st, h.sum)
		fmt.Fprintf(w, "momserved_stage_duration_seconds_count{stage=%q} %d\n", st, h.total)
	}
	// Singleflight dedup and batch admission.
	fmt.Fprintln(w, "# HELP momserved_dedup_coalesced_total Submissions attached to an in-flight execution.")
	fmt.Fprintln(w, "# TYPE momserved_dedup_coalesced_total counter")
	fmt.Fprintf(w, "momserved_dedup_coalesced_total %d\n", s.metrics.coalesced)
	fmt.Fprintln(w, "# HELP momserved_dedup_promotions_total Leader cancellations that promoted a follower.")
	fmt.Fprintln(w, "# TYPE momserved_dedup_promotions_total counter")
	fmt.Fprintf(w, "momserved_dedup_promotions_total %d\n", s.metrics.promotions)
	fmt.Fprintln(w, "# HELP momserved_batch_requests_total POST /v1/jobs:batch calls.")
	fmt.Fprintln(w, "# TYPE momserved_batch_requests_total counter")
	fmt.Fprintf(w, "momserved_batch_requests_total %d\n", s.metrics.batchRequests)
	fmt.Fprintln(w, "# HELP momserved_batch_jobs_total Items carried by batch calls.")
	fmt.Fprintln(w, "# TYPE momserved_batch_jobs_total counter")
	fmt.Fprintf(w, "momserved_batch_jobs_total %d\n", s.metrics.batchItems)
	// Peer routing.
	fmt.Fprintln(w, "# HELP momserved_peer_proxied_total Flights forwarded to their owning peer.")
	fmt.Fprintln(w, "# TYPE momserved_peer_proxied_total counter")
	fmt.Fprintf(w, "momserved_peer_proxied_total %d\n", s.metrics.peerProxied)
	fmt.Fprintln(w, "# HELP momserved_peer_fills_total Local store fills from a peer.")
	fmt.Fprintln(w, "# TYPE momserved_peer_fills_total counter")
	fmt.Fprintf(w, "momserved_peer_fills_total %d\n", s.metrics.peerFills)
	fmt.Fprintln(w, "# HELP momserved_peer_errors_total Failed peer round trips.")
	fmt.Fprintln(w, "# TYPE momserved_peer_errors_total counter")
	fmt.Fprintf(w, "momserved_peer_errors_total %d\n", s.metrics.peerErrors)
	fmt.Fprintln(w, "# HELP momserved_trace_peer_fetches_total Trace artifacts fetched from their owning peer.")
	fmt.Fprintln(w, "# TYPE momserved_trace_peer_fetches_total counter")
	fmt.Fprintf(w, "momserved_trace_peer_fetches_total %d\n", s.metrics.traceFetches)
	s.metrics.mu.Unlock()
	if s.cfg.Peers != nil {
		fmt.Fprintln(w, "# HELP momserved_peers Configured cluster size (this node included).")
		fmt.Fprintln(w, "# TYPE momserved_peers gauge")
		fmt.Fprintf(w, "momserved_peers %d\n", s.cfg.Peers.Size())
	}

	// Result store.
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		fmt.Fprintln(w, "# HELP momserved_store_hits_total Result-store lookups served from disk.")
		fmt.Fprintln(w, "# TYPE momserved_store_hits_total counter")
		fmt.Fprintf(w, "momserved_store_hits_total %d\n", st.Hits)
		fmt.Fprintln(w, "# HELP momserved_store_misses_total Result-store lookups that missed.")
		fmt.Fprintln(w, "# TYPE momserved_store_misses_total counter")
		fmt.Fprintf(w, "momserved_store_misses_total %d\n", st.Misses)
		fmt.Fprintln(w, "# HELP momserved_store_fills_total Entries written from a peer instead of computed locally.")
		fmt.Fprintln(w, "# TYPE momserved_store_fills_total counter")
		fmt.Fprintf(w, "momserved_store_fills_total %d\n", st.Fills)
		fmt.Fprintln(w, "# HELP momserved_store_evictions_total Entries evicted by the size bound.")
		fmt.Fprintln(w, "# TYPE momserved_store_evictions_total counter")
		fmt.Fprintf(w, "momserved_store_evictions_total %d\n", st.Evictions)
		fmt.Fprintln(w, "# HELP momserved_store_entries Entries currently stored.")
		fmt.Fprintln(w, "# TYPE momserved_store_entries gauge")
		fmt.Fprintf(w, "momserved_store_entries %d\n", st.Entries)
		fmt.Fprintln(w, "# HELP momserved_store_bytes On-disk bytes currently stored.")
		fmt.Fprintln(w, "# TYPE momserved_store_bytes gauge")
		fmt.Fprintf(w, "momserved_store_bytes %d\n", st.Bytes)
	}

	// Trace cache (the capture-once/replay-many layer every driver uses).
	ts := mom.ReadTraceStats()
	fmt.Fprintln(w, "# HELP momserved_trace_captures_total Workload traces recorded.")
	fmt.Fprintln(w, "# TYPE momserved_trace_captures_total counter")
	fmt.Fprintf(w, "momserved_trace_captures_total %d\n", ts.Captures)
	fmt.Fprintln(w, "# HELP momserved_trace_replays_total Timing runs fed from a recorded trace.")
	fmt.Fprintln(w, "# TYPE momserved_trace_replays_total counter")
	fmt.Fprintf(w, "momserved_trace_replays_total %d\n", ts.Replays)
	fmt.Fprintln(w, "# HELP momserved_trace_live_runs_total Timing runs that fell back to live emulation, by cause.")
	fmt.Fprintln(w, "# TYPE momserved_trace_live_runs_total counter")
	fmt.Fprintf(w, "momserved_trace_live_runs_total{cause=\"budget\"} %d\n", ts.LiveBudget)
	fmt.Fprintf(w, "momserved_trace_live_runs_total{cause=\"fault\"} %d\n", ts.LiveFault)
	fmt.Fprintln(w, "# HELP momserved_trace_discarded_total Trace captures discarded by the cache budget.")
	fmt.Fprintln(w, "# TYPE momserved_trace_discarded_total counter")
	fmt.Fprintf(w, "momserved_trace_discarded_total %d\n", ts.Discarded)
	fmt.Fprintln(w, "# HELP momserved_trace_capture_seconds_total Wall-clock spent capturing traces.")
	fmt.Fprintln(w, "# TYPE momserved_trace_capture_seconds_total counter")
	fmt.Fprintf(w, "momserved_trace_capture_seconds_total %g\n", ts.CaptureTime.Seconds())
	fmt.Fprintln(w, "# HELP momserved_trace_replay_seconds_total Wall-clock spent in trace-fed timing runs.")
	fmt.Fprintln(w, "# TYPE momserved_trace_replay_seconds_total counter")
	fmt.Fprintf(w, "momserved_trace_replay_seconds_total %g\n", ts.ReplayTime.Seconds())
	fmt.Fprintln(w, "# HELP momserved_trace_cached_traces Traces currently held in memory.")
	fmt.Fprintln(w, "# TYPE momserved_trace_cached_traces gauge")
	fmt.Fprintf(w, "momserved_trace_cached_traces %d\n", ts.CachedTraces)
	fmt.Fprintln(w, "# HELP momserved_trace_cached_bytes Trace bytes currently held in memory.")
	fmt.Fprintln(w, "# TYPE momserved_trace_cached_bytes gauge")
	fmt.Fprintf(w, "momserved_trace_cached_bytes %d\n", ts.CachedBytes)

	// Trace artifact layer (disk persistence of captured traces).
	fmt.Fprintln(w, "# HELP momserved_trace_disk_hits_total Traces materialised from a local disk artifact.")
	fmt.Fprintln(w, "# TYPE momserved_trace_disk_hits_total counter")
	fmt.Fprintf(w, "momserved_trace_disk_hits_total %d\n", ts.DiskHits)
	fmt.Fprintln(w, "# HELP momserved_trace_disk_misses_total Artifact lookups that found nothing usable locally.")
	fmt.Fprintln(w, "# TYPE momserved_trace_disk_misses_total counter")
	fmt.Fprintf(w, "momserved_trace_disk_misses_total %d\n", ts.DiskMisses)
	fmt.Fprintln(w, "# HELP momserved_trace_disk_writes_total Traces persisted to the local artifact store.")
	fmt.Fprintln(w, "# TYPE momserved_trace_disk_writes_total counter")
	fmt.Fprintf(w, "momserved_trace_disk_writes_total %d\n", ts.DiskWrites)
	fmt.Fprintln(w, "# HELP momserved_trace_fetches_total Traces filled from a peer's artifact store.")
	fmt.Fprintln(w, "# TYPE momserved_trace_fetches_total counter")
	fmt.Fprintf(w, "momserved_trace_fetches_total %d\n", ts.PeerFetches)
	fmt.Fprintln(w, "# HELP momserved_trace_stream_replays_total Replays streamed straight from a disk artifact.")
	fmt.Fprintln(w, "# TYPE momserved_trace_stream_replays_total counter")
	fmt.Fprintf(w, "momserved_trace_stream_replays_total %d\n", ts.StreamReplays)

	// Trace artifact store occupancy.
	if s.cfg.TraceStore != nil {
		st := s.cfg.TraceStore.Stats()
		fmt.Fprintln(w, "# HELP momserved_trace_store_hits_total Trace-artifact lookups served from disk.")
		fmt.Fprintln(w, "# TYPE momserved_trace_store_hits_total counter")
		fmt.Fprintf(w, "momserved_trace_store_hits_total %d\n", st.Hits)
		fmt.Fprintln(w, "# HELP momserved_trace_store_misses_total Trace-artifact lookups that missed.")
		fmt.Fprintln(w, "# TYPE momserved_trace_store_misses_total counter")
		fmt.Fprintf(w, "momserved_trace_store_misses_total %d\n", st.Misses)
		fmt.Fprintln(w, "# HELP momserved_trace_store_entries Trace artifacts currently stored.")
		fmt.Fprintln(w, "# TYPE momserved_trace_store_entries gauge")
		fmt.Fprintf(w, "momserved_trace_store_entries %d\n", st.Entries)
		fmt.Fprintln(w, "# HELP momserved_trace_store_bytes On-disk bytes of stored trace artifacts.")
		fmt.Fprintln(w, "# TYPE momserved_trace_store_bytes gauge")
		fmt.Fprintf(w, "momserved_trace_store_bytes %d\n", st.Bytes)
	}
}

// trimFloat formats a bucket bound the way Prometheus clients do (no
// trailing zeros).
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
