package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	mom "repro"
	"repro/internal/store"
)

// post submits a body and returns the decoded job doc and status code.
func post(t *testing.T, ts *httptest.Server, body string) (jobDoc, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d jobDoc
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &d)
	return d, resp
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// waitState polls a job until it reaches want (or any terminal state).
func waitState(t *testing.T, ts *httptest.Server, id, want string) jobDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, b := get(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, code, b)
		}
		var d jobDoc
		if err := json.Unmarshal(b, &d); err != nil {
			t.Fatal(err)
		}
		if d.State == want {
			return d
		}
		if terminal(d.State) {
			t.Fatalf("job %s reached %s (err %q), want %s", id, d.State, d.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobDoc{}
}

// metricValue extracts one sample from the /metrics exposition.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	code, b := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatal(err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestEndToEndKernelJob runs the real runner: submit one kernel point,
// poll to done, fetch the result, then re-submit and require a store hit
// with a byte-identical body.
func TestEndToEndKernelJob(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Workers: 2, QueueCap: 8, Store: st})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const req = `{"exp":"kernel","kernel":"motion1","isa":"MOM","width":4,"scale":"test"}`
	d, resp := post(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", resp.StatusCode)
	}
	if d.FromStore {
		t.Fatal("first submit claimed a store hit")
	}
	done := waitState(t, ts, d.ID, StateDone)
	code, body1 := get(t, ts.URL+done.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal(body1, &doc); err != nil {
		t.Fatalf("result is not JSON: %v", err)
	}
	if doc["schema"] != float64(mom.SchemaVersion) {
		t.Fatalf("result schema %v, want %d", doc["schema"], mom.SchemaVersion)
	}
	if doc["workload"] != "motion1" {
		t.Fatalf("result workload %v, want motion1", doc["workload"])
	}

	// Second submission: a store hit, born done, byte-identical.
	d2, resp2 := post(t, ts, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-submit: status %d, want 200", resp2.StatusCode)
	}
	if d2.State != StateDone || !d2.FromStore {
		t.Fatalf("re-submit: state=%s from_store=%v, want done from the store", d2.State, d2.FromStore)
	}
	if d2.Key != d.Key {
		t.Fatalf("same request hashed differently: %s vs %s", d2.Key, d.Key)
	}
	code, body2 := get(t, ts.URL+"/v1/jobs/"+d2.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("re-submit result: status %d", code)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("stored result differs from computed result:\n%s\nvs\n%s", body1, body2)
	}
	if hits := metricValue(t, ts, "momserved_store_hits_total"); hits < 1 {
		t.Fatalf("store hits %v, want >= 1", hits)
	}
}

// TestEquivalentRequestsShareAKey: normalisation clears fields the
// experiment does not consume, so spelling variants are one store entry.
func TestEquivalentRequestsShareAKey(t *testing.T) {
	st, _ := store.Open(t.TempDir(), 0)
	block := make(chan struct{})
	close(block)
	srv := New(Config{Workers: 1, QueueCap: 8, Store: st, Runner: stubRunner(block)})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	a, _ := post(t, ts, `{"exp":"fig5"}`)
	b, _ := post(t, ts, `{"exp":"fig5","scale":"test","width":8,"isa":"mmx"}`)
	if a.Key != b.Key {
		t.Fatalf("equivalent fig5 requests got distinct keys %s vs %s", a.Key, b.Key)
	}
}

// TestSampledRequestsKeyAndCounter: sampling parameters are part of the
// normalised request, so a sampled fig7 never aliases the exact store
// entry, and /metrics splits admitted jobs by experiment and mode.
func TestSampledRequestsKeyAndCounter(t *testing.T) {
	st, _ := store.Open(t.TempDir(), 0)
	block := make(chan struct{})
	close(block)
	srv := New(Config{Workers: 1, QueueCap: 8, Store: st, Runner: stubRunner(block)})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	exact, _ := post(t, ts, `{"exp":"fig7"}`)
	sampled, _ := post(t, ts, `{"exp":"fig7","sample_period":1501,"sample_warmup":100,"sample_interval":150}`)
	if exact.Key == sampled.Key {
		t.Fatalf("sampled fig7 shares key %s with the exact request", exact.Key)
	}
	again, _ := post(t, ts, `{"exp":"fig7","sample_period":1501,"sample_warmup":100,"sample_interval":150}`)
	if again.Key != sampled.Key {
		t.Fatalf("identical sampled requests got distinct keys %s vs %s", sampled.Key, again.Key)
	}

	// An inconsistent spec must be refused at submission.
	if _, resp := post(t, ts, `{"exp":"fig7","sample_period":100,"sample_interval":150}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid sample spec: status %d, want 400", resp.StatusCode)
	}

	if n := metricValue(t, ts, `momserved_jobs_submitted_total{exp="fig7",mode="exact"}`); n != 1 {
		t.Fatalf("exact fig7 submissions %v, want 1", n)
	}
	if n := metricValue(t, ts, `momserved_jobs_submitted_total{exp="fig7",mode="sampled"}`); n != 2 {
		t.Fatalf("sampled fig7 submissions %v, want 2", n)
	}
}

// stubRunner returns a Runner that blocks until release is closed (or the
// job context ends) and then emits a fixed document.
func stubRunner(release <-chan struct{}) Runner {
	return func(ctx context.Context, req mom.JobRequest) ([]byte, error) {
		select {
		case <-release:
			return []byte(`{"schema":1,"experiment":"` + req.Exp + `","rows":[]}` + "\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestQueueFull: with one busy worker and a one-slot queue, a third
// submission must be refused with 429 and a Retry-After hint — admission
// control, not unbounded buffering.
func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	srv := New(Config{Workers: 1, QueueCap: 1, Runner: stubRunner(release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	defer close(release)

	first, _ := post(t, ts, `{"exp":"fig5"}`)
	waitState(t, ts, first.ID, StateRunning)
	if _, resp := post(t, ts, `{"exp":"fig7"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d, want 202 (queued)", resp.StatusCode)
	}
	_, resp := post(t, ts, `{"exp":"latency"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429", resp.StatusCode)
	}
	// The hint is computed from queue depth and drain rate, but must always
	// be a sane whole-second value in [1, 300].
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
	}
	if secs < 1 || secs > 300 {
		t.Fatalf("Retry-After %d outside [1, 300]", secs)
	}
}

// TestRetryAfterTracksBacklog: once the service has observed job
// durations, the hint scales with queue depth over drain rate instead of
// answering the constant 1.
func TestRetryAfterTracksBacklog(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 8, Runner: stubRunner(nil)})
	defer srv.Shutdown(context.Background())

	if got := srv.retryAfter(); got != 1 {
		t.Fatalf("empty-history hint %d, want 1", got)
	}
	// Pretend ten 4-second jobs have completed: avg 4s per job, one
	// worker, empty queue -> ceil(4 * 1 / 1) = 4.
	for i := 0; i < 10; i++ {
		srv.metrics.observe("fig5", StateDone, 4*time.Second)
	}
	if got := srv.retryAfter(); got != 4 {
		t.Fatalf("hint with 4s average %d, want 4", got)
	}
	// A pathological average is clamped to five minutes.
	srv.metrics.observe("fig7", StateDone, 24*time.Hour)
	if got := srv.retryAfter(); got != 300 {
		t.Fatalf("clamped hint %d, want 300", got)
	}
}

// TestCancelMidRun: DELETE on a running job cancels its context; the job
// reports state cancelled and its result endpoint says so.
func TestCancelMidRun(t *testing.T) {
	release := make(chan struct{})
	srv := New(Config{Workers: 1, QueueCap: 4, Runner: stubRunner(release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	defer close(release) // LIFO: unblock the stub before draining

	d, _ := post(t, ts, `{"exp":"fig5"}`)
	waitState(t, ts, d.ID, StateRunning)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+d.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	got := waitState(t, ts, d.ID, StateCancelled)
	if got.Error == "" {
		t.Fatal("cancelled job carries no reason")
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+d.ID+"/result"); code != http.StatusConflict {
		t.Fatalf("result of cancelled job: status %d, want 409", code)
	}
}

// TestCancelQueuedJob: DELETE on a job still waiting for a worker
// cancels it instantly; the worker later skips it.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	srv := New(Config{Workers: 1, QueueCap: 4, Runner: stubRunner(release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	defer close(release) // LIFO: unblock the stub before draining

	busy, _ := post(t, ts, `{"exp":"fig5"}`)
	waitState(t, ts, busy.ID, StateRunning)
	queued, _ := post(t, ts, `{"exp":"fig7"}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var d jobDoc
	_ = json.NewDecoder(resp.Body).Decode(&d)
	resp.Body.Close()
	if d.State != StateCancelled {
		t.Fatalf("queued job after DELETE: state %s, want cancelled", d.State)
	}
}

// TestDeadlineExpires: a job whose timeout_ms elapses mid-run is
// cancelled, not failed.
func TestDeadlineExpires(t *testing.T) {
	release := make(chan struct{})
	srv := New(Config{Workers: 1, QueueCap: 4, Runner: stubRunner(release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	defer close(release) // LIFO: unblock the stub before draining

	d, resp := post(t, ts, `{"exp":"fig5","timeout_ms":30}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	got := waitState(t, ts, d.ID, StateCancelled)
	if !strings.Contains(got.Error, "deadline") {
		t.Fatalf("expired job error %q, want a deadline reason", got.Error)
	}
}

// TestGracefulShutdownDrains: Shutdown refuses new work but finishes
// every accepted job — running and queued — before returning.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 8, Runner: func(ctx context.Context, req mom.JobRequest) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return []byte("{}\n"), nil
	}})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		d, resp := post(t, ts, `{"exp":"fig5"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, d.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	for _, id := range ids {
		code, b := get(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("post-drain poll: status %d", code)
		}
		var d jobDoc
		_ = json.Unmarshal(b, &d)
		if d.State != StateDone {
			t.Fatalf("job %s after drain: state %s, want done", id, d.State)
		}
	}
	if _, resp := post(t, ts, `{"exp":"fig5"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: status %d, want 503", resp.StatusCode)
	}
}

// TestBadRequests: malformed bodies and unknown experiments are 400s with
// the valid vocabulary in the message; unknown job ids are 404s.
func TestBadRequests(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 4, Runner: stubRunner(nil)})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, body := range []string{
		`not json`,
		`{"exp":"nope"}`,
		`{"exp":"kernel","kernel":"nope"}`,
		`{"exp":"fig5","scale":"huge"}`,
		`{"exp":"kernel","kernel":"motion1","width":3}`,
		`{"exp":"fig5","bogus_field":1}`,
	} {
		if _, resp := post(t, ts, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/j99999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}

// TestMetricsExposition: the endpoint serves parseable samples for the
// core series even on a fresh server.
func TestMetricsExposition(t *testing.T) {
	st, _ := store.Open(t.TempDir(), 0)
	srv := New(Config{Workers: 1, QueueCap: 4, Store: st, Runner: stubRunner(nil)})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, name := range []string{
		"momserved_queue_depth",
		"momserved_queue_capacity",
		"momserved_workers",
		"momserved_store_hits_total",
		"momserved_store_misses_total",
		"momserved_store_evictions_total",
		"momserved_trace_captures_total",
		"momserved_trace_replays_total",
	} {
		metricValue(t, ts, name) // fails the test if absent
	}
	if v := metricValue(t, ts, "momserved_queue_capacity"); v != 4 {
		t.Fatalf("queue capacity metric %v, want 4", v)
	}
}
