package serve

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	mom "repro"
	"repro/internal/store"
)

// traceOwnedBy finds a workload whose trace-artifact key the given node
// owns — listener ports vary per run, so ownership must be discovered.
func traceOwnedBy(t *testing.T, ps *PeerSet, owner string) (name string, isa mom.ISA, key string) {
	t.Helper()
	for _, i := range mom.AllISAs {
		for _, k := range mom.KernelNames() {
			akey := mom.TraceArtifactKey(false, k, i, mom.ScaleTest)
			if ps.Owner(akey) == owner {
				return k, i, akey
			}
		}
	}
	t.Fatalf("no workload's artifact key hashes to %s", owner)
	return "", 0, ""
}

// TestPeerTraceFetch: GET /v1/traces/{key} serves raw artifact bytes from
// the owner's trace store, the non-owner's fetcher retrieves them
// byte-identically, and the owner never asks itself.
func TestPeerTraceFetch(t *testing.T) {
	ts, srvs := twoNodes(t, func(i int) Config {
		tst, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Workers: 1, QueueCap: 8, TraceStore: tst,
			Runner: countingRunner(new(int32), nil)}
	})
	owner := srvs[1].cfg.Peers.Self()
	name, isa, akey := traceOwnedBy(t, srvs[1].cfg.Peers, owner)

	tr := mom.CaptureWorkloadTrace(false, name, isa, mom.ScaleTest)
	if tr == nil {
		t.Fatalf("capture of %s/%s failed", name, isa)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	if err := srvs[1].cfg.TraceStore.Put(akey, blob); err != nil {
		t.Fatal(err)
	}

	// The owner serves the artifact; the empty node answers 404.
	code, served := get(t, ts[1].URL+"/v1/traces/"+akey)
	if code != http.StatusOK || !bytes.Equal(served, blob) {
		t.Fatalf("owner trace GET: status %d, identical %v", code, bytes.Equal(served, blob))
	}
	if code, _ := get(t, ts[0].URL+"/v1/traces/"+akey); code != http.StatusNotFound {
		t.Fatalf("empty node trace GET: status %d, want 404", code)
	}

	// The non-owner's fetcher pulls the bytes from the owner.
	rc, ok := srvs[0].fetchPeerTrace(akey)
	if !ok {
		t.Fatal("non-owner fetch reported no artifact")
	}
	fetched, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetched, blob) {
		t.Fatal("fetched artifact differs from the owner's bytes")
	}
	if v := metricValue(t, ts[0], "momserved_trace_peer_fetches_total"); v != 1 {
		t.Fatalf("trace peer fetch counter %g, want 1", v)
	}

	// The owner never asks itself for a key it owns.
	if _, ok := srvs[1].fetchPeerTrace(akey); ok {
		t.Fatal("owner fetched its own key from a peer")
	}

	// The fetch recorded a flight with its hop span on the asking node.
	var fetchedFlight bool
	for _, fl := range fetchFlights(t, ts[0], "").Flights {
		if fl.Kind != KindTraceFetch || fl.Key != akey {
			continue
		}
		fetchedFlight = true
		var hop bool
		for _, sp := range fl.Spans {
			if sp.Name == "trace-fetch" && sp.Detail == owner {
				hop = true
			}
		}
		if !hop {
			t.Errorf("trace-fetch flight has no hop span (spans %v)", fl.Spans)
		}
	}
	if !fetchedFlight {
		t.Fatal("asking node recorded no trace-fetch flight")
	}

	// Artifact-store occupancy is exported on the owner.
	if v := metricValue(t, ts[1], "momserved_trace_store_entries"); v != 1 {
		t.Fatalf("trace store entries gauge %g, want 1", v)
	}
}
