// Package serve is the momserver job service: an HTTP front end that runs
// experiment requests (mom.JobRequest) on a bounded worker pool and
// memoises their canonical result documents in a content-addressed store.
//
// The design mirrors the paper's batch methodology as a long-running
// service: a design-space exploration asks for many overlapping
// (experiment, configuration, workload) points, most of which have been
// computed before, so every submission is first looked up by its
// canonical SHA-256 key (schema version + normalised request) and only
// misses consume a worker. Between the store and the workers sits a
// singleflight layer: jobs are grouped into flights keyed by content
// address, identical submissions in flight attach to the existing flight
// as followers and share its one execution (and its one result slice, so
// every member observes byte-identical documents), and cancelling the
// leader promotes a follower instead of failing the group. A batch
// endpoint (POST /v1/jobs:batch) admits a whole request list in one round
// trip, deduplicating within the batch and against in-flight work, and an
// optional peer set consistent-hashes keys across nodes: non-owned keys
// are filled from the owner's store on miss, or proxied to the owner for
// computation, so hot results replicate toward demand. Admission control
// is a fixed-capacity queue — a full queue answers 429 with Retry-After
// rather than buffering unboundedly — and every flight runs under a
// per-job deadline with cooperative cancellation threaded through the
// experiment drivers down to par.For.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	mom "repro"
	"repro/internal/store"
)

// Job lifecycle states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// States lists the lifecycle states in order (for metrics).
var States = []string{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}

// Runner executes one normalised request and returns its canonical result
// document. Tests substitute stubs; production uses mom.RunJobRequest.
type Runner func(ctx context.Context, req mom.JobRequest) ([]byte, error)

// Config parameterises a Server. Zero values select the documented
// defaults.
type Config struct {
	Workers        int           // worker goroutines (default GOMAXPROCS)
	QueueCap       int           // admission queue capacity (default 64)
	Store          *store.Store  // optional result store (nil: recompute always)
	TraceStore     *store.Store  // optional trace artifact store served to peers (nil: 404)
	DefaultTimeout time.Duration // per-job deadline when the request names none (default 10m)
	MaxTimeout     time.Duration // upper clamp on requested deadlines (default 1h)
	MaxJobs        int           // retained job records; oldest finished are pruned (default 4096)
	Runner         Runner        // job executor (default mom.RunJobRequest)
	Peers          *PeerSet      // optional multi-node peer set (nil: single node)
	Logger         *slog.Logger  // structured log sink (nil: silent)
	SlowJob        time.Duration // flights slower than this log a warning (<=0: disabled)
	FlightLog      int           // completed flights retained for /debug/flights (default 256)
	EnablePprof    bool          // mount net/http/pprof under /debug/pprof
}

// flight is one in-flight computation: the execution unit the queue and
// workers handle. Every job submitted for the flight's key while it is
// queued or running is a member; members[0] is the leader. All members
// share the single execution and its result bytes.
type flight struct {
	key     string
	req     mom.JobRequest
	timeout time.Duration
	members []*job             // live (non-terminal) jobs; members[0] leads
	cancel  context.CancelFunc // set once the flight starts
	running bool
	started time.Time
	peer    string        // non-empty: the owning peer this flight proxies to
	rec     *flightRecord // flight-recorder timeline (never nil)
}

type job struct {
	id        string
	reqID     string // generated per-submission request ID (logs, flights)
	trace     string // cross-node trace context (Mom-Trace)
	key       string
	req       mom.JobRequest
	timeout   time.Duration
	state     string
	err       string
	result    []byte
	fromStore bool
	coalesced bool   // attached to an existing flight as a follower
	peer      string // served via this peer (store fill or proxy)
	created   time.Time
	started   time.Time
	finished  time.Time
	fl        *flight       // membership while queued/running; nil when terminal
	done      chan struct{} // closed on any terminal state
}

// Server is the job service. It implements http.Handler.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   chan *flight
	workers sync.WaitGroup

	mu       sync.Mutex
	draining bool
	nextID   int
	jobs     map[string]*job
	order    []string           // job ids oldest-first, for pruning and listing
	inflight map[string]*flight // queued/running flights by content-address key

	flights *recorder // completed-flight ring behind /debug/flights
	metrics metrics
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Minute
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = time.Hour
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	if cfg.Runner == nil {
		cfg.Runner = mom.RunJobRequest
	}
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *flight, cfg.QueueCap),
		jobs:     map[string]*job{},
		inflight: map[string]*flight{},
		flights:  newRecorder(cfg.FlightLog),
	}
	s.metrics.init()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/jobs:batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/store/{key}", s.handleStoreGet)
	s.mux.HandleFunc("GET /v1/traces/{key}", s.handleTraceGet)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/flights", s.handleFlights)
	if cfg.EnablePprof {
		// Opt-in: profiling endpoints expose stacks and heap contents, so
		// they never ride on the default mux unconditionally.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	subscribeCaptures(s)
	if cfg.Peers != nil {
		subscribeTraceFetch(s)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the service: no new submissions are admitted (503), the
// workers finish every flight already accepted — running and queued,
// peer-proxied included — and then exit. It returns ctx.Err() if the
// drain outlives ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		unsubscribeCaptures(s)
		unsubscribeTraceFetch(s)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submitBody is the POST /v1/jobs payload: the request fields flattened,
// plus an optional execution deadline. The deadline is intentionally NOT
// part of the store key — it describes how long the caller will wait, not
// what is computed.
type submitBody struct {
	mom.JobRequest
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// clampTimeout resolves a requested timeout_ms against the configured
// default and ceiling.
func (s *Server) clampTimeout(ms int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// Admission failures the HTTP layer maps to status codes.
var (
	errDraining  = errors.New("server is draining")
	errQueueFull = errors.New("job queue full")
)

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body submitBody
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req, err := body.JobRequest.Normalized()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	key, err := req.Key()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	j, code, err := s.admit(req, key, s.clampTimeout(body.TimeoutMS), newTraceCtx(r))
	switch {
	case errors.Is(err, errDraining):
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		httpError(w, http.StatusTooManyRequests, "job queue full (%d queued)", s.cfg.QueueCap)
		return
	}
	s.writeJob(w, code, j)
}

// retryAfter estimates, in whole seconds, when a refused submission is
// worth retrying: the current queue depth divided by the worker pool's
// observed drain rate (jobs per second, from the accumulated duration
// histograms). With no completed work to estimate from it answers 1 —
// the old hardcoded hint — and the estimate is clamped to [1, 300] so a
// pathological backlog cannot tell clients to go away for hours.
func (s *Server) retryAfter() int {
	depth := len(s.queue)
	sum, count := s.metrics.durationTotals()
	avg := 1.0 // no history: assume a one-second job
	if count > 0 {
		avg = sum / float64(count)
	}
	secs := math.Ceil(avg * float64(depth+1) / float64(s.cfg.Workers))
	if secs < 1 {
		return 1
	}
	if secs > 300 {
		return 300
	}
	return int(secs)
}

// admit is the single submission path shared by POST /v1/jobs, the batch
// endpoint and nothing else: store lookup, peer fill-on-miss, singleflight
// coalescing, then — only for new local work — the admission queue. The
// returned status is http.StatusOK for a job born done (store or peer
// fill) and http.StatusAccepted for one attached to a flight. Every
// admission carries a trace context; the flight recorder logs its
// timeline under it.
func (s *Server) admit(req mom.JobRequest, key string, timeout time.Duration, tc traceCtx) (*job, int, error) {
	s.metrics.submit(req.Exp, req.Sample().Enabled())
	received := time.Now()

	// Local store hit: the job is born done, no worker consumed.
	if s.cfg.Store != nil {
		if val, ok := s.cfg.Store.Get(key); ok {
			fr := s.newFlightRecord(KindStoreHit, key, req.Exp, "", tc, received)
			s.flights.span(fr, "store", received, time.Now(), "hit")
			return s.bornDone(req, key, timeout, val, "", tc, fr), http.StatusOK, nil
		}
	}

	// A key owned by a peer: fill the local store from the owner on miss,
	// so a hot result replicates toward its demand; if the owner has not
	// computed it either, a proxy flight below forwards the work.
	var owner string
	if s.cfg.Peers != nil {
		if o := s.cfg.Peers.Owner(key); o != s.cfg.Peers.Self() {
			owner = o
			t0 := time.Now()
			if val, ok := s.peerStoreGet(owner, key, tc); ok {
				fr := s.newFlightRecord(KindPeerFill, key, req.Exp, owner, tc, received)
				s.flights.span(fr, "peer-fill", t0, time.Now(), owner)
				if s.cfg.Store != nil {
					w0 := time.Now()
					_ = s.cfg.Store.Fill(key, val)
					s.flights.span(fr, "store", w0, time.Now(), "fill")
					s.metrics.stage("store", time.Since(w0))
				}
				s.metrics.add(&s.metrics.peerFills)
				return s.bornDone(req, key, timeout, val, owner, tc, fr), http.StatusOK, nil
			}
		}
	}

	now := time.Now()
	j := &job{
		reqID: tc.reqID, trace: tc.trace,
		key: key, req: req, timeout: timeout,
		state: StateQueued, created: now,
		done: make(chan struct{}),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, 0, errDraining
	}

	// Singleflight: an identical request is already queued or running —
	// attach as a follower and share its execution.
	if fl := s.inflight[key]; fl != nil {
		j.fl = fl
		j.coalesced = true
		j.peer = fl.peer
		j.trace = fl.rec.trace // the flight's context wins: one stitched trace
		if fl.running {
			j.state = StateRunning
			j.started = now
		}
		fl.members = append(fl.members, j)
		s.register(j)
		s.mu.Unlock()
		s.flights.member(fl.rec, j.reqID, now)
		s.metrics.add(&s.metrics.coalesced)
		s.logAdmit(j, "coalesced")
		return j, http.StatusAccepted, nil
	}

	kind := KindCompute
	if owner != "" {
		kind = KindProxy
	}
	fl := &flight{key: key, req: req, timeout: timeout, members: []*job{j}, peer: owner,
		rec: s.newFlightRecord(kind, key, req.Exp, owner, tc, received)}
	j.fl = fl
	j.peer = owner
	if owner != "" {
		// Peer-proxied work waits on the owner's pool, not ours: it runs
		// on its own goroutine instead of occupying a local worker.
		s.inflight[key] = fl
		s.register(j)
		s.workers.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.workers.Done()
			s.runProxy(fl)
		}()
		s.metrics.add(&s.metrics.peerProxied)
		s.logAdmit(j, kind)
		return j, http.StatusAccepted, nil
	}
	select {
	case s.queue <- fl:
		s.inflight[key] = fl
		s.register(j)
	default:
		s.mu.Unlock()
		s.flights.abandon(fl.rec)
		return nil, 0, errQueueFull
	}
	s.mu.Unlock()
	s.logAdmit(j, kind)
	return j, http.StatusAccepted, nil
}

// newFlightRecord opens a recorder timeline for one admission.
func (s *Server) newFlightRecord(kind, key, exp, peer string, tc traceCtx, received time.Time) *flightRecord {
	fr := &flightRecord{
		trace: tc.trace, kind: kind, key: key, exp: exp, peer: peer,
		reqIDs: []string{tc.reqID}, start: received,
	}
	s.flights.open(fr)
	return fr
}

// bornDone registers a job that is done on arrival (store hit or peer
// store fill) and settles its flight record.
func (s *Server) bornDone(req mom.JobRequest, key string, timeout time.Duration, val []byte, peer string, tc traceCtx, fr *flightRecord) *job {
	now := time.Now()
	j := &job{
		reqID: tc.reqID, trace: tc.trace,
		key: key, req: req, timeout: timeout,
		state: StateDone, result: val, fromStore: true, peer: peer,
		created: now, started: now, finished: now,
		done: make(chan struct{}),
	}
	close(j.done)
	s.mu.Lock()
	s.register(j)
	s.mu.Unlock()
	s.flights.close(fr, StateDone, now)
	s.logAdmit(j, fr.kind)
	return j
}

// register assigns an id, indexes the job and prunes old finished
// records. Caller holds s.mu.
func (s *Server) register(j *job) {
	s.nextID++
	j.id = fmt.Sprintf("j%08d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.jobs) > s.cfg.MaxJobs {
		pruned := false
		for i, id := range s.order {
			if old, ok := s.jobs[id]; ok && terminal(old.state) {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break // everything live; keep the records
		}
	}
}

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	docs := make([]jobDoc, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			docs = append(docs, s.doc(j))
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": docs})
}

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	s.writeJob(w, http.StatusOK, j)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	state, result, fromStore, errMsg := j.state, j.result, j.fromStore, j.err
	s.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		if fromStore {
			w.Header().Set("X-Momserved-Store", "hit")
		} else {
			w.Header().Set("X-Momserved-Store", "miss")
		}
		w.Write(result)
	case StateFailed:
		httpError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	default:
		httpError(w, http.StatusConflict, "job is %s; poll /v1/jobs/%s until done", state, j.id)
	}
}

// handleCancel withdraws one submitter's interest in its flight. A
// follower detaches without disturbing the computation; the leader hands
// the flight to the next member (promotion) rather than failing the
// group; only when the last member leaves is the computation itself
// cancelled (running) or left for the worker to drop (queued).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	var promoted bool
	s.mu.Lock()
	if fl := j.fl; fl != nil {
		wasLeader := len(fl.members) > 0 && fl.members[0] == j
		for i, m := range fl.members {
			if m == j {
				fl.members = append(fl.members[:i], fl.members[i+1:]...)
				break
			}
		}
		j.fl = nil
		j.state = StateCancelled
		j.err = "cancelled by submitter"
		if !fl.running {
			j.err = "cancelled before start"
		}
		j.finished = time.Now()
		close(j.done)
		switch {
		case len(fl.members) > 0:
			// Survivors keep the execution; if the leader left, the
			// next member now leads it.
			promoted = wasLeader
		case fl.running:
			fl.cancel() // last member gone: stop the work; finish() settles it
		default:
			// Queued with no members left. Keep it in inflight: a new
			// identical submission revives it (keeping its queue slot);
			// otherwise the worker drops it on dequeue.
		}
	}
	s.mu.Unlock()
	if promoted {
		s.metrics.add(&s.metrics.promotions)
	}
	s.writeJob(w, http.StatusOK, j)
}

func (s *Server) worker() {
	defer s.workers.Done()
	for fl := range s.queue {
		s.runFlight(fl)
	}
}

// begin moves a flight into the running state, or reports false when
// every submitter cancelled while it waited. Members admitted later
// (followers) inherit the running state as they attach.
func (s *Server) begin(fl *flight) (context.Context, context.CancelFunc, bool) {
	s.mu.Lock()
	if len(fl.members) == 0 {
		delete(s.inflight, fl.key)
		s.mu.Unlock()
		s.flights.close(fl.rec, StateCancelled, time.Now())
		return nil, nil, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), fl.timeout)
	fl.cancel = cancel
	fl.running = true
	fl.started = time.Now()
	for _, j := range fl.members {
		j.state = StateRunning
		j.started = fl.started
	}
	s.mu.Unlock()
	s.flights.span(fl.rec, "queue", fl.rec.start, fl.started, "")
	s.metrics.stage("queue", fl.started.Sub(fl.rec.start))
	return ctx, cancel, true
}

func (s *Server) runFlight(fl *flight) {
	ctx, cancel, ok := s.begin(fl)
	if !ok {
		return
	}
	defer cancel()

	out, err := s.cfg.Runner(ctx, fl.req)
	execEnd := time.Now()
	s.flights.span(fl.rec, "execute", fl.started, execEnd, "")
	s.metrics.stage("execute", execEnd.Sub(fl.started))
	ctxErr := ctx.Err()

	// Persist before the flight becomes observable as done, so a client
	// that polls done and immediately re-submits is guaranteed the store
	// hit. Best effort: a failed write only costs a future recompute.
	if err == nil && ctxErr == nil && s.cfg.Store != nil {
		_ = s.cfg.Store.Put(fl.key, out)
		now := time.Now()
		s.flights.span(fl.rec, "store", execEnd, now, "put")
		s.metrics.stage("store", now.Sub(execEnd))
	}
	s.finish(fl, out, err, ctxErr)
}

// finish settles a flight: every remaining member reaches the same
// terminal state, sharing one result slice — followers observe documents
// byte-identical to the leader's.
func (s *Server) finish(fl *flight, out []byte, err, ctxErr error) {
	state := StateDone
	var errMsg string
	switch {
	case err == nil && ctxErr == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctxErr != nil:
		state = StateCancelled
		reason := ctxErr
		if reason == nil {
			reason = err
		}
		errMsg = reason.Error()
	default:
		state = StateFailed
		errMsg = err.Error()
	}

	s.mu.Lock()
	delete(s.inflight, fl.key)
	now := time.Now()
	members := fl.members
	fl.members = nil
	for _, j := range members {
		j.fl = nil
		j.finished = now
		j.state = state
		j.err = errMsg
		if state == StateDone {
			j.result = out
		}
		close(j.done)
	}
	dur := now.Sub(fl.started)
	s.mu.Unlock()

	s.flights.close(fl.rec, state, now)
	s.logFinish(fl.rec, state, errMsg, now.Sub(fl.rec.start))
	s.metrics.observe(fl.req.Exp, state, dur)
}

// jobDoc is the public JSON shape of a job record.
type jobDoc struct {
	ID        string         `json:"id"`
	RequestID string         `json:"request_id,omitempty"`
	Trace     string         `json:"trace,omitempty"`
	State     string         `json:"state"`
	Request   mom.JobRequest `json:"request"`
	Key       string         `json:"key"`
	FromStore bool           `json:"from_store"`
	Coalesced bool           `json:"coalesced,omitempty"`
	Peer      string         `json:"peer,omitempty"`
	Error     string         `json:"error,omitempty"`
	Created   time.Time      `json:"created"`
	Started   *time.Time     `json:"started,omitempty"`
	Finished  *time.Time     `json:"finished,omitempty"`
	ResultURL string         `json:"result_url,omitempty"`
}

// doc snapshots a job. Caller holds s.mu.
func (s *Server) doc(j *job) jobDoc {
	d := jobDoc{
		ID: j.id, RequestID: j.reqID, Trace: j.trace,
		State: j.state, Request: j.req, Key: j.key,
		FromStore: j.fromStore, Coalesced: j.coalesced, Peer: j.peer,
		Error: j.err, Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		d.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		d.Finished = &t
	}
	if j.state == StateDone {
		d.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	return d
}

func (s *Server) writeJob(w http.ResponseWriter, code int, j *job) {
	s.mu.Lock()
	d := s.doc(j)
	s.mu.Unlock()
	writeJSON(w, code, d)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	writeJSON(w, code, map[string]string{"error": strings.TrimSpace(msg)})
}
