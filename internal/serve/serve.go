// Package serve is the momserver job service: an HTTP front end that runs
// experiment requests (mom.JobRequest) on a bounded worker pool and
// memoises their canonical result documents in a content-addressed store.
//
// The design mirrors the paper's batch methodology as a long-running
// service: a design-space exploration asks for many overlapping
// (experiment, configuration, workload) points, most of which have been
// computed before, so every submission is first looked up by its
// canonical SHA-256 key (schema version + normalised request) and only
// misses consume a worker. Admission control is a fixed-capacity queue —
// a full queue answers 429 with Retry-After rather than buffering
// unboundedly — and every job runs under a per-job deadline with
// cooperative cancellation threaded through the experiment drivers down
// to par.For.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	mom "repro"
	"repro/internal/store"
)

// Job lifecycle states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// States lists the lifecycle states in order (for metrics).
var States = []string{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}

// Runner executes one normalised request and returns its canonical result
// document. Tests substitute stubs; production uses mom.RunJobRequest.
type Runner func(ctx context.Context, req mom.JobRequest) ([]byte, error)

// Config parameterises a Server. Zero values select the documented
// defaults.
type Config struct {
	Workers        int           // worker goroutines (default GOMAXPROCS)
	QueueCap       int           // admission queue capacity (default 64)
	Store          *store.Store  // optional result store (nil: recompute always)
	DefaultTimeout time.Duration // per-job deadline when the request names none (default 10m)
	MaxTimeout     time.Duration // upper clamp on requested deadlines (default 1h)
	MaxJobs        int           // retained job records; oldest finished are pruned (default 4096)
	Runner         Runner        // job executor (default mom.RunJobRequest)
}

type job struct {
	id        string
	key       string
	req       mom.JobRequest
	timeout   time.Duration
	state     string
	err       string
	result    []byte
	fromStore bool
	created   time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // set while running
	done      chan struct{}      // closed on any terminal state
}

// Server is the job service. It implements http.Handler.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   chan *job
	workers sync.WaitGroup

	mu       sync.Mutex
	draining bool
	nextID   int
	jobs     map[string]*job
	order    []string // job ids oldest-first, for pruning and listing

	metrics metrics
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Minute
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = time.Hour
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	if cfg.Runner == nil {
		cfg.Runner = mom.RunJobRequest
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueCap),
		jobs:  map[string]*job{},
	}
	s.metrics.init()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the service: no new submissions are admitted (503), the
// workers finish every job already accepted — running and queued — and
// then exit. It returns ctx.Err() if the drain outlives ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submitBody is the POST /v1/jobs payload: the request fields flattened,
// plus an optional execution deadline. The deadline is intentionally NOT
// part of the store key — it describes how long the caller will wait, not
// what is computed.
type submitBody struct {
	mom.JobRequest
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body submitBody
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req, err := body.JobRequest.Normalized()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	key, err := req.Key()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	s.metrics.submit(req.Exp, req.Sample().Enabled())
	timeout := s.cfg.DefaultTimeout
	if body.TimeoutMS > 0 {
		timeout = time.Duration(body.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	// Store hit: the job is born done, no worker consumed.
	if s.cfg.Store != nil {
		if val, ok := s.cfg.Store.Get(key); ok {
			now := time.Now()
			j := &job{
				key: key, req: req, timeout: timeout,
				state: StateDone, result: val, fromStore: true,
				created: now, started: now, finished: now,
				done: make(chan struct{}),
			}
			close(j.done)
			s.mu.Lock()
			s.register(j)
			s.mu.Unlock()
			s.writeJob(w, http.StatusOK, j)
			return
		}
	}

	j := &job{
		key: key, req: req, timeout: timeout,
		state: StateQueued, created: time.Now(),
		done: make(chan struct{}),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	select {
	case s.queue <- j:
		s.register(j)
	default:
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "job queue full (%d queued)", s.cfg.QueueCap)
		return
	}
	s.mu.Unlock()
	s.writeJob(w, http.StatusAccepted, j)
}

// register assigns an id, indexes the job and prunes old finished
// records. Caller holds s.mu.
func (s *Server) register(j *job) {
	s.nextID++
	j.id = fmt.Sprintf("j%08d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.jobs) > s.cfg.MaxJobs {
		pruned := false
		for i, id := range s.order {
			if old, ok := s.jobs[id]; ok && terminal(old.state) {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break // everything live; keep the records
		}
	}
}

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	docs := make([]jobDoc, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			docs = append(docs, s.doc(j))
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": docs})
}

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	s.writeJob(w, http.StatusOK, j)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	state, result, fromStore, errMsg := j.state, j.result, j.fromStore, j.err
	s.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		if fromStore {
			w.Header().Set("X-Momserved-Store", "hit")
		} else {
			w.Header().Set("X-Momserved-Store", "miss")
		}
		w.Write(result)
	case StateFailed:
		httpError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	default:
		httpError(w, http.StatusConflict, "job is %s; poll /v1/jobs/%s until done", state, j.id)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	switch j.state {
	case StateQueued:
		// The worker that eventually drains it will see the terminal
		// state and skip it.
		j.state = StateCancelled
		j.err = "cancelled before start"
		j.finished = time.Now()
		close(j.done)
	case StateRunning:
		j.cancel() // worker finalises the state when the runner returns
	}
	s.mu.Unlock()
	s.writeJob(w, http.StatusOK, j)
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.run(j)
	}
}

func (s *Server) run(j *job) {
	s.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	s.mu.Unlock()
	defer cancel()

	out, err := s.cfg.Runner(ctx, j.req)
	ctxErr := ctx.Err()

	// Persist before the job becomes observable as done, so a client that
	// polls done and immediately re-submits is guaranteed the store hit.
	// Best effort: a failed write only costs a future recompute.
	if err == nil && ctxErr == nil && s.cfg.Store != nil {
		_ = s.cfg.Store.Put(j.key, out)
	}

	s.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil && ctxErr == nil:
		j.state = StateDone
		j.result = out
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctxErr != nil:
		j.state = StateCancelled
		reason := ctxErr
		if reason == nil {
			reason = err
		}
		j.err = reason.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	state := j.state
	dur := j.finished.Sub(j.started)
	s.mu.Unlock()
	close(j.done)

	s.metrics.observe(j.req.Exp, state, dur)
}

// jobDoc is the public JSON shape of a job record.
type jobDoc struct {
	ID        string         `json:"id"`
	State     string         `json:"state"`
	Request   mom.JobRequest `json:"request"`
	Key       string         `json:"key"`
	FromStore bool           `json:"from_store"`
	Error     string         `json:"error,omitempty"`
	Created   time.Time      `json:"created"`
	Started   *time.Time     `json:"started,omitempty"`
	Finished  *time.Time     `json:"finished,omitempty"`
	ResultURL string         `json:"result_url,omitempty"`
}

// doc snapshots a job. Caller holds s.mu.
func (s *Server) doc(j *job) jobDoc {
	d := jobDoc{
		ID: j.id, State: j.state, Request: j.req, Key: j.key,
		FromStore: j.fromStore, Error: j.err, Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		d.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		d.Finished = &t
	}
	if j.state == StateDone {
		d.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	return d
}

func (s *Server) writeJob(w http.ResponseWriter, code int, j *job) {
	s.mu.Lock()
	d := s.doc(j)
	s.mu.Unlock()
	writeJSON(w, code, d)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	writeJSON(w, code, map[string]string{"error": strings.TrimSpace(msg)})
}
