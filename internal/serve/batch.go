package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	mom "repro"
)

// maxBatchItems bounds one POST /v1/jobs:batch payload; a sweep larger
// than this submits in slices.
const maxBatchItems = 1024

// Per-item error strings of refused admissions. They are part of the
// batch endpoint's contract: clients (the sweep engine's batch client)
// match on them to decide between retrying an item (queue full) and
// abandoning the server (draining).
const (
	ErrMsgQueueFull = "job queue full"
	ErrMsgDraining  = "server is draining"
)

// BatchItem is the per-item response of the batch endpoint. Index ties it
// back to the request list (items come back in order regardless).
// Duplicate marks an item whose key already appeared earlier in the same
// batch: it carries the earlier item's job id and never reached
// admission. The type is exported for client reuse — the sweep engine
// decodes batch responses into it.
type BatchItem struct {
	Index     int    `json:"index"`
	ID        string `json:"id,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	Key       string `json:"key,omitempty"`
	State     string `json:"state,omitempty"`
	FromStore bool   `json:"from_store,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Peer      string `json:"peer,omitempty"`
	Error     string `json:"error,omitempty"`
	ResultURL string `json:"result_url,omitempty"`
}

// BatchResponse is the envelope of a batch answer, exported for client
// reuse alongside BatchItem.
type BatchResponse struct {
	Jobs []BatchItem `json:"jobs"`
}

// handleBatch admits a list of requests in one round trip. Every item is
// answered individually — an invalid or refused item does not fail its
// batch — and deduplication happens at three levels before the admission
// queue is touched: the local store (born done), earlier items of the
// same batch (Duplicate), and flights already in the air (Coalesced).
// When any item was refused for queue capacity the response carries a
// Retry-After header, so a client resubmitting the refused slice knows
// how long to back off.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body mom.BatchRequest
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(body.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch: need a jobs list")
		return
	}
	if len(body.Jobs) > maxBatchItems {
		httpError(w, http.StatusBadRequest, "batch of %d items exceeds the %d-item limit", len(body.Jobs), maxBatchItems)
		return
	}
	timeout := s.clampTimeout(body.TimeoutMS)

	// One trace context spans the whole batch — every admitted item's
	// flight records under it, so a sweep submitted in one round trip
	// reads as one distributed trace — while each item still gets its own
	// request ID.
	batchTrace := adoptTrace(r)

	items := make([]BatchItem, len(body.Jobs))
	seen := map[string]int{} // key -> index of the first item admitted for it
	refused := false
	for i, jr := range body.Jobs {
		items[i].Index = i
		req, err := jr.Normalized()
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		key, err := req.Key()
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		items[i].Key = key
		if first, ok := seen[key]; ok {
			d := items[first]
			d.Index = i
			d.Duplicate = true
			items[i] = d
			continue
		}
		j, _, err := s.admit(req, key, timeout, traceCtx{trace: batchTrace, reqID: "r" + newID()})
		switch {
		case errors.Is(err, errDraining):
			items[i].Error = ErrMsgDraining
			continue
		case errors.Is(err, errQueueFull):
			items[i].Error = ErrMsgQueueFull
			refused = true
			continue
		}
		seen[key] = i
		s.mu.Lock()
		d := s.doc(j)
		s.mu.Unlock()
		items[i] = BatchItem{
			Index: i, ID: d.ID, RequestID: d.RequestID, Key: d.Key, State: d.State,
			FromStore: d.FromStore, Coalesced: d.Coalesced, Peer: d.Peer,
			ResultURL: d.ResultURL,
		}
	}
	s.metrics.batch(len(body.Jobs))
	if refused {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	}
	writeJSON(w, http.StatusOK, BatchResponse{Jobs: items})
}
