package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	mom "repro"
)

// maxBatchItems bounds one POST /v1/jobs:batch payload; a sweep larger
// than this submits in slices.
const maxBatchItems = 1024

// batchItemDoc is the per-item response of the batch endpoint. Index ties
// it back to the request list (items come back in order regardless).
// Duplicate marks an item whose key already appeared earlier in the same
// batch: it carries the earlier item's job id and never reached admission.
type batchItemDoc struct {
	Index     int    `json:"index"`
	ID        string `json:"id,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	Key       string `json:"key,omitempty"`
	State     string `json:"state,omitempty"`
	FromStore bool   `json:"from_store,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Peer      string `json:"peer,omitempty"`
	Error     string `json:"error,omitempty"`
	ResultURL string `json:"result_url,omitempty"`
}

// handleBatch admits a list of requests in one round trip. Every item is
// answered individually — an invalid or refused item does not fail its
// batch — and deduplication happens at three levels before the admission
// queue is touched: the local store (born done), earlier items of the
// same batch (Duplicate), and flights already in the air (Coalesced).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body mom.BatchRequest
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(body.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch: need a jobs list")
		return
	}
	if len(body.Jobs) > maxBatchItems {
		httpError(w, http.StatusBadRequest, "batch of %d items exceeds the %d-item limit", len(body.Jobs), maxBatchItems)
		return
	}
	timeout := s.clampTimeout(body.TimeoutMS)

	// One trace context spans the whole batch — every admitted item's
	// flight records under it, so a sweep submitted in one round trip
	// reads as one distributed trace — while each item still gets its own
	// request ID.
	batchTrace := adoptTrace(r)

	items := make([]batchItemDoc, len(body.Jobs))
	seen := map[string]int{} // key -> index of the first item admitted for it
	for i, jr := range body.Jobs {
		items[i].Index = i
		req, err := jr.Normalized()
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		key, err := req.Key()
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		items[i].Key = key
		if first, ok := seen[key]; ok {
			d := items[first]
			d.Index = i
			d.Duplicate = true
			items[i] = d
			continue
		}
		j, _, err := s.admit(req, key, timeout, traceCtx{trace: batchTrace, reqID: "r" + newID()})
		switch {
		case errors.Is(err, errDraining):
			items[i].Error = "server is draining"
			continue
		case errors.Is(err, errQueueFull):
			items[i].Error = "job queue full"
			continue
		}
		seen[key] = i
		s.mu.Lock()
		d := s.doc(j)
		s.mu.Unlock()
		items[i] = batchItemDoc{
			Index: i, ID: d.ID, RequestID: d.RequestID, Key: d.Key, State: d.State,
			FromStore: d.FromStore, Coalesced: d.Coalesced, Peer: d.Peer,
			ResultURL: d.ResultURL,
		}
	}
	s.metrics.batch(len(body.Jobs))
	writeJSON(w, http.StatusOK, map[string]any{"jobs": items})
}
