package serve

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	mom "repro"
	"repro/internal/store"
)

func TestNewPeerSetValidation(t *testing.T) {
	for name, c := range map[string]struct {
		self  string
		peers []string
	}{
		"single peer":       {"http://a:1", []string{"http://a:1"}},
		"self not a member": {"http://c:1", []string{"http://a:1", "http://b:1"}},
		"empty self":        {"", []string{"http://a:1", "http://b:1"}},
		"duplicate peer":    {"http://a:1", []string{"http://a:1", "http://a:1/"}},
		"relative url":      {"http://a:1", []string{"http://a:1", "not-a-base-url"}},
	} {
		if _, err := NewPeerSet(c.self, c.peers); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ps, err := NewPeerSet("http://a:1/", []string{"http://b:1/", " http://a:1"})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Self() != "http://a:1" || ps.Size() != 2 {
		t.Fatalf("canonicalisation: self %q size %d", ps.Self(), ps.Size())
	}
}

// TestRendezvousOwner: every node must compute the same owner for a key
// regardless of list order, and the hash must spread keys across all
// peers.
func TestRendezvousOwner(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	ps1, err := NewPeerSet("http://a:1", peers)
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := NewPeerSet("http://b:1", []string{"http://c:1", "http://a:1", "http://b:1"})
	if err != nil {
		t.Fatal(err)
	}
	byOwner := map[string]int{}
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("%064x", i)
		o := ps1.Owner(key)
		if o2 := ps2.Owner(key); o2 != o {
			t.Fatalf("key %s: owners disagree across list orders (%s vs %s)", key, o, o2)
		}
		if ps1.Owner(key) != o {
			t.Fatalf("key %s: owner not stable", key)
		}
		byOwner[o]++
	}
	for _, p := range peers {
		if byOwner[p] == 0 {
			t.Errorf("peer %s owns none of 256 keys", p)
		}
	}
}

// twoNodes starts a 2-node cluster on real loopback listeners (allocated
// up front, so each node's Config can name the other's URL before either
// server exists). mk builds node i's Config; Peers is filled in here.
func twoNodes(t *testing.T, mk func(i int) Config) (ts [2]*httptest.Server, srvs [2]*Server) {
	t.Helper()
	var lns [2]net.Listener
	var urls [2]string
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		ps, err := NewPeerSet(urls[i], urls[:])
		if err != nil {
			t.Fatal(err)
		}
		cfg := mk(i)
		cfg.Peers = ps
		srvs[i] = New(cfg)
		hs := httptest.NewUnstartedServer(srvs[i])
		hs.Listener.Close()
		hs.Listener = lns[i]
		hs.Start()
		ts[i] = hs
		srv := srvs[i]
		t.Cleanup(func() { hs.Close() })
		t.Cleanup(func() { srv.Shutdown(context.Background()) })
	}
	return ts, srvs
}

// requestOwnedBy finds a kernel-point request whose content-address key
// the given node owns — listener ports vary per run, so ownership must be
// discovered, not hard-coded.
func requestOwnedBy(t *testing.T, ps *PeerSet, owner string) (body, key string) {
	t.Helper()
	for _, w := range []int{4, 1, 2, 8} {
		for _, k := range mom.KernelNames() {
			req := mom.JobRequest{Exp: "kernel", Kernel: k, Width: w}
			kk, err := req.Key()
			if err != nil {
				t.Fatal(err)
			}
			if ps.Owner(kk) == owner {
				return fmt.Sprintf(`{"exp":"kernel","kernel":%q,"width":%d}`, k, w), kk
			}
		}
	}
	t.Fatalf("no candidate request hashes to %s", owner)
	return "", ""
}

// TestPeerProxyComputesOnOwner: a node given a key it does not own
// forwards the flight to the owner, which computes it once; the result
// flows back, fills the submitting node's store, and the next submission
// there is a pure local hit.
func TestPeerProxyComputesOnOwner(t *testing.T) {
	var calls [2]int32
	ts, srvs := twoNodes(t, func(i int) Config {
		st, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Workers: 1, QueueCap: 8, Store: st, Runner: countingRunner(&calls[i], nil)}
	})
	owner := srvs[1].cfg.Peers.Self()
	body, key := requestOwnedBy(t, srvs[1].cfg.Peers, owner)

	d, resp := post(t, ts[0], body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("proxy submit: status %d, want 202", resp.StatusCode)
	}
	if d.Peer != owner {
		t.Fatalf("proxied job names peer %q, want %q", d.Peer, owner)
	}
	done := waitState(t, ts[0], d.ID, StateDone)
	code, got := get(t, ts[0].URL+done.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("proxied result: status %d", code)
	}
	if atomic.LoadInt32(&calls[0]) != 0 || atomic.LoadInt32(&calls[1]) != 1 {
		t.Fatalf("runner calls = %d local / %d owner, want 0 / 1",
			calls[0], calls[1])
	}

	// The result landed in node 0's own store (fill-on-completion)…
	code, filled := get(t, ts[0].URL+"/v1/store/"+key)
	if code != http.StatusOK || !bytes.Equal(filled, got) {
		t.Fatalf("local store after proxy: status %d, identical %v", code, bytes.Equal(filled, got))
	}
	// …so resubmitting is a local hit that consults no peer.
	d2, resp2 := post(t, ts[0], body)
	if resp2.StatusCode != http.StatusOK || !d2.FromStore || d2.Peer != "" {
		t.Fatalf("resubmission = status %d from_store %v peer %q, want local 200 hit",
			resp2.StatusCode, d2.FromStore, d2.Peer)
	}

	if v := metricValue(t, ts[0], "momserved_peer_proxied_total"); v != 1 {
		t.Fatalf("peer proxied counter %g, want 1", v)
	}
	if v := metricValue(t, ts[0], "momserved_peer_fills_total"); v != 1 {
		t.Fatalf("peer fills counter %g, want 1", v)
	}
	if v := metricValue(t, ts[0], "momserved_store_fills_total"); v != 1 {
		t.Fatalf("store fills counter %g, want 1", v)
	}
	if v := metricValue(t, ts[0], "momserved_peers"); v != 2 {
		t.Fatalf("peers gauge %g, want 2", v)
	}

	// The proxied job produced ONE stitched trace: the submitting node
	// recorded a proxy flight with the peer hop span, and the owner recorded
	// its compute flight under the same trace ID (carried by Mom-Trace).
	if d.Trace == "" {
		t.Fatal("proxied job carries no trace id")
	}
	var proxied bool
	for _, fl := range fetchFlights(t, ts[0], "?trace="+d.Trace).Flights {
		if fl.Kind != KindProxy || fl.Key != key {
			continue
		}
		proxied = true
		if fl.Peer != owner {
			t.Errorf("proxy flight names peer %q, want %q", fl.Peer, owner)
		}
		var hop bool
		for _, sp := range fl.Spans {
			if sp.Name == "proxy" && sp.Detail == owner {
				hop = true
			}
		}
		if !hop {
			t.Errorf("proxy flight has no proxy hop span (spans %v)", fl.Spans)
		}
	}
	if !proxied {
		t.Fatalf("node 0 recorded no proxy flight for trace %s", d.Trace)
	}
	var computed bool
	for _, fl := range fetchFlights(t, ts[1], "?trace="+d.Trace).Flights {
		if fl.Kind != KindCompute || fl.Key != key {
			continue
		}
		computed = true
		var exec bool
		for _, sp := range fl.Spans {
			if sp.Name == "execute" {
				exec = true
			}
		}
		if !exec {
			t.Errorf("owner's compute flight has no execute span (spans %v)", fl.Spans)
		}
	}
	if !computed {
		t.Fatalf("owner recorded no compute flight under trace %s — the hop did not stitch", d.Trace)
	}
}

// syncBuffer is a log sink tests can read while the server still writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestPeerOwnerUnreachable: a submission whose key a dead peer owns fails
// cleanly — no hang past the peer client timeout, the peer-error counter
// moves, and the structured log names the peer, key and operation.
func TestPeerOwnerUnreachable(t *testing.T) {
	var lns [2]net.Listener
	var urls [2]string
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	// Node 1 never starts serving: its address is in the peer set, but the
	// listener closes before any request can reach it.
	lns[1].Close()

	ps, err := NewPeerSet(urls[0], urls[:])
	if err != nil {
		t.Fatal(err)
	}
	logBuf := &syncBuffer{}
	srv := New(Config{Workers: 1, QueueCap: 4, Peers: ps, Runner: countingRunner(new(int32), nil),
		Logger: slog.New(slog.NewJSONHandler(logBuf, nil))})
	hs := httptest.NewUnstartedServer(srv)
	hs.Listener.Close()
	hs.Listener = lns[0]
	hs.Start()
	defer hs.Close()
	defer srv.Shutdown(context.Background())

	body, key := requestOwnedBy(t, ps, urls[1])
	d, resp := post(t, hs, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202 (proxied)", resp.StatusCode)
	}
	if d.Peer != urls[1] {
		t.Fatalf("job names peer %q, want the dead owner %q", d.Peer, urls[1])
	}
	got := waitState(t, hs, d.ID, StateFailed)
	if !strings.Contains(got.Error, urls[1]) {
		t.Fatalf("failure %q does not name the unreachable peer", got.Error)
	}
	if v := metricValue(t, hs, "momserved_peer_errors_total"); v < 1 {
		t.Fatalf("peer errors counter %g, want >= 1", v)
	}
	logged := logBuf.String()
	for _, want := range []string{"peer round trip failed", urls[1], key, `"op":"proxy"`} {
		if !strings.Contains(logged, want) {
			t.Errorf("peer-failure log lacks %q:\n%s", want, logged)
		}
	}
}

// TestPeerFillOnMissByteIdentical is the acceptance criterion with the
// REAL runner: a result computed locally on its owning node and the same
// result fetched through the other node's fill-on-miss path are
// byte-identical documents.
func TestPeerFillOnMissByteIdentical(t *testing.T) {
	ts, srvs := twoNodes(t, func(i int) Config {
		st, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Workers: 2, QueueCap: 8, Store: st} // default Runner: mom.RunJobRequest
	})
	owner := srvs[0].cfg.Peers.Self()
	body, _ := requestOwnedBy(t, srvs[0].cfg.Peers, owner)

	// Compute on the owner.
	d0, _ := post(t, ts[0], body)
	if d0.Peer != "" {
		t.Fatalf("owner-submitted job proxied to %q", d0.Peer)
	}
	done0 := waitState(t, ts[0], d0.ID, StateDone)
	code, local := get(t, ts[0].URL+done0.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("local result: status %d", code)
	}

	// Fetch through the non-owner: born done via peer store fill.
	d1, resp1 := post(t, ts[1], body)
	if resp1.StatusCode != http.StatusOK || !d1.FromStore || d1.Peer != owner {
		t.Fatalf("fill-on-miss = status %d from_store %v peer %q, want 200 true %q",
			resp1.StatusCode, d1.FromStore, d1.Peer, owner)
	}
	code, viaPeer := get(t, ts[1].URL+d1.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("filled result: status %d", code)
	}
	if !bytes.Equal(viaPeer, local) {
		t.Fatalf("peer-filled document differs from the locally computed one:\n%s\nvs\n%s", viaPeer, local)
	}
	if v := metricValue(t, ts[1], "momserved_peer_fills_total"); v != 1 {
		t.Fatalf("peer fills counter %g, want 1", v)
	}
}
