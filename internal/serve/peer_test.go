package serve

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	mom "repro"
	"repro/internal/store"
)

func TestNewPeerSetValidation(t *testing.T) {
	for name, c := range map[string]struct {
		self  string
		peers []string
	}{
		"single peer":       {"http://a:1", []string{"http://a:1"}},
		"self not a member": {"http://c:1", []string{"http://a:1", "http://b:1"}},
		"empty self":        {"", []string{"http://a:1", "http://b:1"}},
		"duplicate peer":    {"http://a:1", []string{"http://a:1", "http://a:1/"}},
		"relative url":      {"http://a:1", []string{"http://a:1", "not-a-base-url"}},
	} {
		if _, err := NewPeerSet(c.self, c.peers); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ps, err := NewPeerSet("http://a:1/", []string{"http://b:1/", " http://a:1"})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Self() != "http://a:1" || ps.Size() != 2 {
		t.Fatalf("canonicalisation: self %q size %d", ps.Self(), ps.Size())
	}
}

// TestRendezvousOwner: every node must compute the same owner for a key
// regardless of list order, and the hash must spread keys across all
// peers.
func TestRendezvousOwner(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	ps1, err := NewPeerSet("http://a:1", peers)
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := NewPeerSet("http://b:1", []string{"http://c:1", "http://a:1", "http://b:1"})
	if err != nil {
		t.Fatal(err)
	}
	byOwner := map[string]int{}
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("%064x", i)
		o := ps1.Owner(key)
		if o2 := ps2.Owner(key); o2 != o {
			t.Fatalf("key %s: owners disagree across list orders (%s vs %s)", key, o, o2)
		}
		if ps1.Owner(key) != o {
			t.Fatalf("key %s: owner not stable", key)
		}
		byOwner[o]++
	}
	for _, p := range peers {
		if byOwner[p] == 0 {
			t.Errorf("peer %s owns none of 256 keys", p)
		}
	}
}

// twoNodes starts a 2-node cluster on real loopback listeners (allocated
// up front, so each node's Config can name the other's URL before either
// server exists). mk builds node i's Config; Peers is filled in here.
func twoNodes(t *testing.T, mk func(i int) Config) (ts [2]*httptest.Server, srvs [2]*Server) {
	t.Helper()
	var lns [2]net.Listener
	var urls [2]string
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		ps, err := NewPeerSet(urls[i], urls[:])
		if err != nil {
			t.Fatal(err)
		}
		cfg := mk(i)
		cfg.Peers = ps
		srvs[i] = New(cfg)
		hs := httptest.NewUnstartedServer(srvs[i])
		hs.Listener.Close()
		hs.Listener = lns[i]
		hs.Start()
		ts[i] = hs
		srv := srvs[i]
		t.Cleanup(func() { hs.Close() })
		t.Cleanup(func() { srv.Shutdown(context.Background()) })
	}
	return ts, srvs
}

// requestOwnedBy finds a kernel-point request whose content-address key
// the given node owns — listener ports vary per run, so ownership must be
// discovered, not hard-coded.
func requestOwnedBy(t *testing.T, ps *PeerSet, owner string) (body, key string) {
	t.Helper()
	for _, w := range []int{4, 1, 2, 8} {
		for _, k := range mom.KernelNames() {
			req := mom.JobRequest{Exp: "kernel", Kernel: k, Width: w}
			kk, err := req.Key()
			if err != nil {
				t.Fatal(err)
			}
			if ps.Owner(kk) == owner {
				return fmt.Sprintf(`{"exp":"kernel","kernel":%q,"width":%d}`, k, w), kk
			}
		}
	}
	t.Fatalf("no candidate request hashes to %s", owner)
	return "", ""
}

// TestPeerProxyComputesOnOwner: a node given a key it does not own
// forwards the flight to the owner, which computes it once; the result
// flows back, fills the submitting node's store, and the next submission
// there is a pure local hit.
func TestPeerProxyComputesOnOwner(t *testing.T) {
	var calls [2]int32
	ts, srvs := twoNodes(t, func(i int) Config {
		st, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Workers: 1, QueueCap: 8, Store: st, Runner: countingRunner(&calls[i], nil)}
	})
	owner := srvs[1].cfg.Peers.Self()
	body, key := requestOwnedBy(t, srvs[1].cfg.Peers, owner)

	d, resp := post(t, ts[0], body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("proxy submit: status %d, want 202", resp.StatusCode)
	}
	if d.Peer != owner {
		t.Fatalf("proxied job names peer %q, want %q", d.Peer, owner)
	}
	done := waitState(t, ts[0], d.ID, StateDone)
	code, got := get(t, ts[0].URL+done.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("proxied result: status %d", code)
	}
	if atomic.LoadInt32(&calls[0]) != 0 || atomic.LoadInt32(&calls[1]) != 1 {
		t.Fatalf("runner calls = %d local / %d owner, want 0 / 1",
			calls[0], calls[1])
	}

	// The result landed in node 0's own store (fill-on-completion)…
	code, filled := get(t, ts[0].URL+"/v1/store/"+key)
	if code != http.StatusOK || !bytes.Equal(filled, got) {
		t.Fatalf("local store after proxy: status %d, identical %v", code, bytes.Equal(filled, got))
	}
	// …so resubmitting is a local hit that consults no peer.
	d2, resp2 := post(t, ts[0], body)
	if resp2.StatusCode != http.StatusOK || !d2.FromStore || d2.Peer != "" {
		t.Fatalf("resubmission = status %d from_store %v peer %q, want local 200 hit",
			resp2.StatusCode, d2.FromStore, d2.Peer)
	}

	if v := metricValue(t, ts[0], "momserved_peer_proxied_total"); v != 1 {
		t.Fatalf("peer proxied counter %g, want 1", v)
	}
	if v := metricValue(t, ts[0], "momserved_peer_fills_total"); v != 1 {
		t.Fatalf("peer fills counter %g, want 1", v)
	}
	if v := metricValue(t, ts[0], "momserved_store_fills_total"); v != 1 {
		t.Fatalf("store fills counter %g, want 1", v)
	}
	if v := metricValue(t, ts[0], "momserved_peers"); v != 2 {
		t.Fatalf("peers gauge %g, want 2", v)
	}
}

// TestPeerFillOnMissByteIdentical is the acceptance criterion with the
// REAL runner: a result computed locally on its owning node and the same
// result fetched through the other node's fill-on-miss path are
// byte-identical documents.
func TestPeerFillOnMissByteIdentical(t *testing.T) {
	ts, srvs := twoNodes(t, func(i int) Config {
		st, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Workers: 2, QueueCap: 8, Store: st} // default Runner: mom.RunJobRequest
	})
	owner := srvs[0].cfg.Peers.Self()
	body, _ := requestOwnedBy(t, srvs[0].cfg.Peers, owner)

	// Compute on the owner.
	d0, _ := post(t, ts[0], body)
	if d0.Peer != "" {
		t.Fatalf("owner-submitted job proxied to %q", d0.Peer)
	}
	done0 := waitState(t, ts[0], d0.ID, StateDone)
	code, local := get(t, ts[0].URL+done0.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("local result: status %d", code)
	}

	// Fetch through the non-owner: born done via peer store fill.
	d1, resp1 := post(t, ts[1], body)
	if resp1.StatusCode != http.StatusOK || !d1.FromStore || d1.Peer != owner {
		t.Fatalf("fill-on-miss = status %d from_store %v peer %q, want 200 true %q",
			resp1.StatusCode, d1.FromStore, d1.Peer, owner)
	}
	code, viaPeer := get(t, ts[1].URL+d1.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("filled result: status %d", code)
	}
	if !bytes.Equal(viaPeer, local) {
		t.Fatalf("peer-filled document differs from the locally computed one:\n%s\nvs\n%s", viaPeer, local)
	}
	if v := metricValue(t, ts[1], "momserved_peer_fills_total"); v != 1 {
		t.Fatalf("peer fills counter %g, want 1", v)
	}
}
