package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/store"
)

// postBatch submits one batch body and returns the decoded item list.
func postBatch(t *testing.T, ts *httptest.Server, body string) ([]BatchItem, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BatchResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out.Jobs, resp
}

// TestBatchDedupAndAdmit drives every per-item outcome through one batch:
// fresh admission, within-batch duplicate (two requests that normalise to
// the same key), coalescing with a job already in flight, and a per-item
// validation error that must not fail its siblings.
func TestBatchDedupAndAdmit(t *testing.T) {
	release := make(chan struct{})
	var calls int32
	srv := New(Config{Workers: 1, QueueCap: 8, Runner: countingRunner(&calls, release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	busy, _ := post(t, ts, `{"exp":"fetch"}`)
	waitState(t, ts, busy.ID, StateRunning)
	inflight, _ := post(t, ts, `{"exp":"latency"}`) // queued flight to coalesce with

	// fig5 ignores width, so items 0 and 1 are the same computation.
	items, resp := postBatch(t, ts, `{"jobs":[
		{"exp":"fig5"},
		{"exp":"fig5","width":8},
		{"exp":"latency"},
		{"exp":"bogus"},
		{"exp":"fig7"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d, want 200", resp.StatusCode)
	}
	if len(items) != 5 {
		t.Fatalf("batch answered %d items, want 5", len(items))
	}
	for i, it := range items {
		if it.Index != i {
			t.Fatalf("item %d carries index %d", i, it.Index)
		}
	}
	if items[0].ID == "" || items[0].State != StateQueued || items[0].Duplicate || items[0].Coalesced {
		t.Fatalf("fresh item 0 = %+v", items[0])
	}
	if !items[1].Duplicate || items[1].ID != items[0].ID || items[1].Key != items[0].Key {
		t.Fatalf("width-variant fig5 not deduplicated within the batch: %+v vs %+v", items[1], items[0])
	}
	if !items[2].Coalesced || items[2].ID == inflight.ID || items[2].ID == "" {
		t.Fatalf("latency item did not coalesce with the in-flight job: %+v", items[2])
	}
	if items[3].Error == "" || !strings.Contains(items[3].Error, "unknown experiment") {
		t.Fatalf("invalid item error %q", items[3].Error)
	}
	if items[3].ID != "" {
		t.Fatal("invalid item was assigned a job id")
	}
	if items[4].ID == "" || items[4].Duplicate || items[4].Coalesced {
		t.Fatalf("fresh item 4 = %+v", items[4])
	}

	if v := metricValue(t, ts, "momserved_batch_requests_total"); v != 1 {
		t.Fatalf("batch request counter %g, want 1", v)
	}
	if v := metricValue(t, ts, "momserved_batch_jobs_total"); v != 5 {
		t.Fatalf("batch item counter %g, want 5", v)
	}
	if v := metricValue(t, ts, "momserved_dedup_coalesced_total"); v != 1 {
		t.Fatalf("coalesced counter %g, want 1 (the latency item)", v)
	}

	close(release)
	for _, id := range []string{items[0].ID, items[2].ID, items[4].ID, inflight.ID, busy.ID} {
		waitState(t, ts, id, StateDone)
	}
	// fetch + latency + fig5 + fig7: the duplicate and the coalesced item
	// never reached a worker.
	if got := atomic.LoadInt32(&calls); got != 4 {
		t.Fatalf("runner executed %d times, want 4", got)
	}
}

// TestBatchStoreHit: batch items resolve against the result store like
// single submissions — a stored key is born done with from_store set.
func TestBatchStoreHit(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var calls int32
	srv := New(Config{Workers: 1, QueueCap: 8, Store: st, Runner: countingRunner(&calls, nil)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	d, _ := post(t, ts, `{"exp":"fig5"}`)
	waitState(t, ts, d.ID, StateDone)
	items, _ := postBatch(t, ts, `{"jobs":[{"exp":"fig5"}]}`)
	if len(items) != 1 || !items[0].FromStore || items[0].State != StateDone {
		t.Fatalf("stored key via batch = %+v, want from_store done", items)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("runner executed %d times, want 1", got)
	}
}

// TestBatchQueueFullRetryAfter: a batch containing refused items answers
// 200 with the per-item queue-full error AND a Retry-After header, so a
// retrying client knows both which items to resubmit and when.
func TestBatchQueueFullRetryAfter(t *testing.T) {
	release := make(chan struct{})
	srv := New(Config{Workers: 1, QueueCap: 1, Runner: countingRunner(new(int32), release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() { close(release); srv.Shutdown(context.Background()) }()

	busy, _ := post(t, ts, `{"exp":"fetch"}`)
	waitState(t, ts, busy.ID, StateRunning)
	post(t, ts, `{"exp":"latency"}`) // fills the 1-slot queue

	items, resp := postBatch(t, ts, `{"jobs":[{"exp":"latency"},{"exp":"fig5"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with refused item: status %d, want 200", resp.StatusCode)
	}
	if !items[0].Coalesced || items[0].Error != "" {
		t.Fatalf("queued-duplicate item should coalesce, got %+v", items[0])
	}
	if items[1].Error != ErrMsgQueueFull {
		t.Fatalf("refused item error %q, want %q", items[1].Error, ErrMsgQueueFull)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After header %q, want a positive integer", ra)
	}
}

// TestBatchValidation: malformed envelopes are refused whole; size and
// emptiness are policy, not per-item errors.
func TestBatchValidation(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 8, Runner: countingRunner(new(int32), nil)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	for name, body := range map[string]string{
		"empty list":    `{"jobs":[]}`,
		"no jobs field": `{}`,
		"bad json":      `{"jobs":`,
		"unknown field": `{"jobs":[{"exp":"fig5"}],"nope":1}`,
	} {
		if _, resp := postBatch(t, ts, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	over := `{"jobs":[` + strings.Repeat(`{"exp":"fig5"},`, maxBatchItems) + `{"exp":"fig5"}]}`
	if _, resp := postBatch(t, ts, over); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}
