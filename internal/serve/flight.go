package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	mom "repro"
	"repro/internal/trace"
)

// The job flight recorder: every submission carries a generated request
// ID and every flight accumulates a timeline of stage spans — queue wait,
// trace capture, execution, store write, peer proxy/fill hops — with
// monotonic timestamps. The trace context (a random 16-byte hex ID)
// propagates across peer hops via the Mom-Trace header, so a job that
// crosses nodes stitches into one coherent trace: every node involved
// records its own flight under the shared ID and GET /debug/flights?trace=
// assembles the pieces. A bounded ring of completed flights backs
// GET /debug/flights (JSON, or ?format=chrome for a trace-event document
// that opens in chrome://tracing / Perfetto next to the pipeline traces
// internal/obs exports).

// TraceHeader carries the trace context across peer proxy and store-fill
// HTTP hops.
const TraceHeader = "Mom-Trace"

// Flight kinds: how a submission was satisfied.
const (
	KindCompute    = "compute"     // executed on this node's worker pool
	KindProxy      = "proxy"       // forwarded to the owning peer
	KindStoreHit   = "store-hit"   // born done from the local store
	KindPeerFill   = "peer-fill"   // born done from the owner's store
	KindStoreServe = "store-serve" // served a raw document to a peer
)

// newID returns a fresh random hex identifier (16 chars). Used for both
// request IDs and trace-context IDs.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; degrade to a
		// constant rather than panicking the serving path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// traceCtx is the per-submission trace context: the cross-node trace ID
// (adopted from the Mom-Trace header or freshly generated) and this
// submission's request ID.
type traceCtx struct {
	trace string
	reqID string
}

// newTraceCtx builds the context for one submission, adopting a valid
// inbound Mom-Trace header when present.
func newTraceCtx(r *http.Request) traceCtx {
	return traceCtx{trace: adoptTrace(r), reqID: "r" + newID()}
}

// adoptTrace validates an inbound Mom-Trace header: plain lowercase hex,
// bounded length. Anything else gets a fresh ID — a malformed header must
// not become a log-injection or unbounded-memory vector.
func adoptTrace(r *http.Request) string {
	t := r.Header.Get(TraceHeader)
	if len(t) < 8 || len(t) > 64 {
		return newID()
	}
	for _, c := range t {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return newID()
		}
	}
	return t
}

// stageSpan is one recorded stage with monotonic timestamps (time.Time
// retains the monotonic reading, so in-process durations are exact).
type stageSpan struct {
	name   string
	start  time.Time
	end    time.Time
	detail string
}

// flightRecord is the recorder's view of one flight (or born-done
// submission): identity, members, and the accumulated span timeline.
type flightRecord struct {
	trace  string
	kind   string
	key    string
	exp    string
	peer   string
	state  string
	reqIDs []string
	start  time.Time
	end    time.Time
	spans  []stageSpan
}

// recorder holds the flights currently in the air and a bounded ring of
// completed ones, newest last. All record mutation goes through the
// recorder's mutex: spans arrive from worker goroutines, follower
// attachments from request handlers and capture attributions from the
// trace hook, concurrently.
type recorder struct {
	mu     sync.Mutex
	cap    int
	active map[*flightRecord]struct{}
	done   []*flightRecord
}

// span appends one completed stage span to a record.
func (r *recorder) span(fr *flightRecord, name string, start, end time.Time, detail string) {
	r.mu.Lock()
	fr.spans = append(fr.spans, stageSpan{name: name, start: start, end: end, detail: detail})
	r.mu.Unlock()
}

// member adds a follower's request ID to a record, with an instantaneous
// attach span marking when it joined the flight.
func (r *recorder) member(fr *flightRecord, reqID string, at time.Time) {
	r.mu.Lock()
	fr.reqIDs = append(fr.reqIDs, reqID)
	fr.spans = append(fr.spans, stageSpan{name: "attach", start: at, end: at, detail: reqID})
	r.mu.Unlock()
}

func newRecorder(capacity int) *recorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &recorder{cap: capacity, active: map[*flightRecord]struct{}{}}
}

// open registers a new active record.
func (r *recorder) open(fr *flightRecord) {
	r.mu.Lock()
	r.active[fr] = struct{}{}
	r.mu.Unlock()
}

// abandon drops an active record that never became a flight (admission
// refused after the record was opened).
func (r *recorder) abandon(fr *flightRecord) {
	r.mu.Lock()
	delete(r.active, fr)
	r.mu.Unlock()
}

// close finalises a record and moves it to the completed ring.
func (r *recorder) close(fr *flightRecord, state string, end time.Time) {
	r.mu.Lock()
	fr.state = state
	fr.end = end
	delete(r.active, fr)
	r.done = append(r.done, fr)
	if len(r.done) > r.cap {
		// Drop the oldest; shift rather than reslice so the backing array
		// does not pin evicted records.
		copy(r.done, r.done[len(r.done)-r.cap:])
		r.done = r.done[:r.cap]
	}
	r.mu.Unlock()
}

// attachCapture attributes one trace-capture span to every compute flight
// that was already in the air when the capture started: a capture stalls
// exactly the runs waiting on it, and the span carries its own honest
// timestamps either way.
func (r *recorder) attachCapture(info trace.CaptureInfo) {
	end := info.Start.Add(info.Duration)
	detail := info.Program
	if info.Err != nil {
		detail += ": " + info.Err.Error()
	}
	r.mu.Lock()
	for fr := range r.active {
		if fr.kind == KindCompute && fr.start.Before(info.Start) {
			fr.spans = append(fr.spans, stageSpan{name: "capture", start: info.Start, end: end, detail: detail})
		}
	}
	r.mu.Unlock()
}

// captureSubs fans the process-wide trace capture hook out to every live
// Server — tests (and the two-node suites) run several servers in one
// process, and each must only see its own flights.
var captureSubs struct {
	once sync.Once
	mu   sync.Mutex
	subs map[*Server]struct{}
}

func subscribeCaptures(s *Server) {
	captureSubs.once.Do(func() {
		captureSubs.subs = map[*Server]struct{}{}
		trace.SetCaptureHook(func(info trace.CaptureInfo) {
			captureSubs.mu.Lock()
			for srv := range captureSubs.subs {
				srv.flights.attachCapture(info)
				srv.metrics.stage("capture", info.Duration)
			}
			captureSubs.mu.Unlock()
		})
	})
	captureSubs.mu.Lock()
	captureSubs.subs[s] = struct{}{}
	captureSubs.mu.Unlock()
}

func unsubscribeCaptures(s *Server) {
	captureSubs.mu.Lock()
	delete(captureSubs.subs, s)
	captureSubs.mu.Unlock()
}

// flightDoc is the public JSON shape of one completed flight.
type flightDoc struct {
	Trace    string        `json:"trace"`
	Kind     string        `json:"kind"`
	Key      string        `json:"key"`
	Exp      string        `json:"exp,omitempty"`
	State    string        `json:"state"`
	Peer     string        `json:"peer,omitempty"`
	Requests []string      `json:"requests"`
	Start    time.Time     `json:"start"`
	WallUS   int64         `json:"wall_us"`
	Spans    []mom.SpanDoc `json:"spans"`
}

func (fr *flightRecord) doc() flightDoc {
	d := flightDoc{
		Trace: fr.trace, Kind: fr.kind, Key: fr.key, Exp: fr.exp,
		State: fr.state, Peer: fr.peer,
		Requests: append([]string(nil), fr.reqIDs...),
		Start:    fr.start.Round(0), // strip the monotonic reading for JSON
		WallUS:   fr.end.Sub(fr.start).Microseconds(),
		Spans:    make([]mom.SpanDoc, 0, len(fr.spans)),
	}
	for _, sp := range fr.spans {
		d.Spans = append(d.Spans, mom.SpanDoc{
			Name:    sp.name,
			StartUS: sp.start.Sub(fr.start).Microseconds(),
			DurUS:   sp.end.Sub(sp.start).Microseconds(),
			Detail:  sp.detail,
		})
	}
	return d
}

// snapshot returns completed flights, newest first, optionally filtered
// by trace ID.
func (r *recorder) snapshot(traceID string) []flightDoc {
	r.mu.Lock()
	docs := make([]flightDoc, 0, len(r.done))
	for i := len(r.done) - 1; i >= 0; i-- {
		fr := r.done[i]
		if traceID != "" && fr.trace != traceID {
			continue
		}
		docs = append(docs, fr.doc())
	}
	r.mu.Unlock()
	return docs
}

// handleFlights serves the completed-flight ring: JSON by default,
// Chrome-trace-event JSON with ?format=chrome (one track per flight,
// wall-clock microsecond timestamps so exports from peer nodes line up
// when loaded together), optionally filtered by ?trace=<id>.
func (s *Server) handleFlights(w http.ResponseWriter, r *http.Request) {
	docs := s.flights.snapshot(r.URL.Query().Get("trace"))
	if r.URL.Query().Get("format") == "chrome" {
		writeFlightsChrome(w, docs, s.nodeName())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"flights": docs})
}

// nodeName labels this node's process track in Chrome exports.
func (s *Server) nodeName() string {
	if s.cfg.Peers != nil {
		return s.cfg.Peers.Self()
	}
	return "momserver"
}

// chromeEvent mirrors the "X" complete-event shape of the internal/obs
// pipeline exporter, so server spans open in chrome://tracing next to the
// instruction traces.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

func writeFlightsChrome(w http.ResponseWriter, docs []flightDoc, node string) {
	events := make([]any, 0, len(docs)*4+1)
	events = append(events, chromeMeta{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": node},
	})
	for tid, d := range docs {
		base := d.Start.UnixMicro()
		wall := d.WallUS
		if wall < 1 {
			wall = 1
		}
		events = append(events, chromeEvent{
			Name: d.Kind + " " + d.Exp, Cat: "flight", Ph: "X",
			Ts: base, Dur: wall, Pid: 0, Tid: tid,
			Args: map[string]any{
				"trace": d.Trace, "key": d.Key, "state": d.State,
				"peer": d.Peer, "requests": d.Requests,
			},
		})
		for _, sp := range d.Spans {
			dur := sp.DurUS
			if dur < 1 {
				dur = 1
			}
			ev := chromeEvent{
				Name: sp.Name, Cat: "stage", Ph: "X",
				Ts: base + sp.StartUS, Dur: dur, Pid: 0, Tid: tid,
			}
			if sp.Detail != "" {
				ev.Args = map[string]any{"detail": sp.Detail}
			}
			events = append(events, ev)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
	})
}
