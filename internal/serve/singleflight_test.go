package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mom "repro"
)

// countingRunner is a stub Runner that counts executions and stamps the
// execution number into its output, so a byte-compare across jobs that
// should share one execution also detects a hidden second run. A nil
// release returns immediately; otherwise the runner blocks until release
// closes (or the job context ends).
func countingRunner(calls *int32, release <-chan struct{}) Runner {
	return func(ctx context.Context, req mom.JobRequest) ([]byte, error) {
		n := atomic.AddInt32(calls, 1)
		if release != nil {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return []byte(fmt.Sprintf(`{"exp":%q,"execution":%d}`, req.Exp, n)), nil
	}
}

// del cancels a job and returns its post-cancel doc.
func del(t *testing.T, ts *httptest.Server, id string) jobDoc {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d jobDoc
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	return d
}

// waitMetric polls /metrics until one sample reaches want.
func waitMetric(t *testing.T, ts *httptest.Server, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var v float64
	for time.Now().Before(deadline) {
		if v = metricValue(t, ts, name); v == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("metric %s stuck at %g, want %g", name, v, want)
}

// TestSingleflightCoalesces is the headline dedup guarantee: N identical
// concurrent submissions share ONE execution — the Runner fires exactly
// once — and every submitter reads a byte-identical result document.
func TestSingleflightCoalesces(t *testing.T) {
	release := make(chan struct{})
	var calls int32
	srv := New(Config{Workers: 2, QueueCap: 32, Runner: countingRunner(&calls, release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	const n = 20
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, resp := post(t, ts, `{"exp":"fig5"}`)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submission %d: status %d, want 202", i, resp.StatusCode)
			}
			ids[i] = d.ID
		}(i)
	}
	wg.Wait()
	close(release)

	results := make([][]byte, n)
	for i, id := range ids {
		if id == "" {
			t.Fatalf("submission %d got no job id", i)
		}
		waitState(t, ts, id, StateDone)
		code, b := get(t, ts.URL+"/v1/jobs/"+id+"/result")
		if code != http.StatusOK {
			t.Fatalf("result of %s: status %d", id, code)
		}
		results[i] = b
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("runner executed %d times for %d identical submissions, want 1", got, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("result %d differs from result 0:\n%s\nvs\n%s", i, results[i], results[0])
		}
	}
	if v := metricValue(t, ts, "momserved_dedup_coalesced_total"); v != n-1 {
		t.Fatalf("coalesced counter %g, want %d", v, n-1)
	}
}

// TestLeaderCancelPromotesFollower: cancelling the job that started a
// flight must not fail the group — the follower inherits the execution
// and completes, and the computation never restarts.
func TestLeaderCancelPromotesFollower(t *testing.T) {
	release := make(chan struct{})
	var calls int32
	srv := New(Config{Workers: 1, QueueCap: 8, Runner: countingRunner(&calls, release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	leader, _ := post(t, ts, `{"exp":"fig5"}`)
	waitState(t, ts, leader.ID, StateRunning)
	follower, resp := post(t, ts, `{"exp":"fig5"}`)
	if resp.StatusCode != http.StatusAccepted || !follower.Coalesced {
		t.Fatalf("second identical submission: status %d coalesced %v, want 202 true",
			resp.StatusCode, follower.Coalesced)
	}
	if follower.State != StateRunning {
		t.Fatalf("follower of a running flight born %s, want running", follower.State)
	}

	if d := del(t, ts, leader.ID); d.State != StateCancelled {
		t.Fatalf("cancelled leader state %s, want cancelled", d.State)
	}
	if v := metricValue(t, ts, "momserved_dedup_promotions_total"); v != 1 {
		t.Fatalf("promotions counter %g, want 1", v)
	}
	close(release)
	if d := waitState(t, ts, follower.ID, StateDone); d.Error != "" {
		t.Fatalf("promoted follower finished with error %q", d.Error)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("runner executed %d times across the promotion, want 1", got)
	}
	code, _ := get(t, ts.URL+"/v1/jobs/"+leader.ID+"/result")
	if code != http.StatusConflict {
		t.Fatalf("result of the cancelled leader: status %d, want 409", code)
	}
}

// TestFollowerDetachKeepsLeader: the mirror case — a follower withdrawing
// leaves the leader's execution untouched and promotes nobody.
func TestFollowerDetachKeepsLeader(t *testing.T) {
	release := make(chan struct{})
	var calls int32
	srv := New(Config{Workers: 1, QueueCap: 8, Runner: countingRunner(&calls, release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	leader, _ := post(t, ts, `{"exp":"fig5"}`)
	waitState(t, ts, leader.ID, StateRunning)
	follower, _ := post(t, ts, `{"exp":"fig5"}`)
	if d := del(t, ts, follower.ID); d.State != StateCancelled {
		t.Fatalf("detached follower state %s, want cancelled", d.State)
	}
	if v := metricValue(t, ts, "momserved_dedup_promotions_total"); v != 0 {
		t.Fatalf("follower detach promoted (counter %g)", v)
	}
	close(release)
	waitState(t, ts, leader.ID, StateDone)
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("runner executed %d times, want 1", got)
	}
}

// TestCancelLastMemberStopsComputation: when every submitter of a running
// flight has withdrawn, the computation itself is cancelled, and a later
// identical submission starts fresh.
func TestCancelLastMemberStopsComputation(t *testing.T) {
	release := make(chan struct{})
	var calls int32
	srv := New(Config{Workers: 1, QueueCap: 8, Runner: countingRunner(&calls, release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	defer close(release)

	d, _ := post(t, ts, `{"exp":"fig5"}`)
	waitState(t, ts, d.ID, StateRunning)
	del(t, ts, d.ID)
	// The runner observes the cancel and the flight settles (finished
	// counter) without waiting for release.
	waitMetric(t, ts, `momserved_jobs_finished_total{state="cancelled"}`, 1)

	again, resp := post(t, ts, `{"exp":"fig5"}`)
	if resp.StatusCode != http.StatusAccepted || again.Coalesced {
		t.Fatalf("post-cancel resubmission: status %d coalesced %v, want a fresh flight",
			resp.StatusCode, again.Coalesced)
	}
	waitState(t, ts, again.ID, StateRunning)
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Fatalf("runner executed %d times, want 2 (cancelled + fresh)", got)
	}
}

// TestQueuedFlightRevival: a queued flight whose only submitter cancelled
// keeps its queue slot; an identical submission arriving before a worker
// reaps it attaches to the empty flight and rides that slot to execution.
func TestQueuedFlightRevival(t *testing.T) {
	release := make(chan struct{})
	var calls int32
	srv := New(Config{Workers: 1, QueueCap: 8, Runner: countingRunner(&calls, release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	busy, _ := post(t, ts, `{"exp":"fetch"}`)
	waitState(t, ts, busy.ID, StateRunning)
	queued, _ := post(t, ts, `{"exp":"fig5"}`)
	if d := del(t, ts, queued.ID); d.Error != "cancelled before start" {
		t.Fatalf("queued cancel reason %q, want %q", d.Error, "cancelled before start")
	}
	revived, resp := post(t, ts, `{"exp":"fig5"}`)
	if resp.StatusCode != http.StatusAccepted || !revived.Coalesced {
		t.Fatalf("revival submission: status %d coalesced %v, want 202 true",
			resp.StatusCode, revived.Coalesced)
	}
	close(release)
	waitState(t, ts, revived.ID, StateDone)
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Fatalf("runner executed %d times, want 2 (fetch + revived fig5)", got)
	}
}

// TestQueuedFlightDropped: with no revival, the worker reaps the empty
// flight without running it, and the next submission starts over.
func TestQueuedFlightDropped(t *testing.T) {
	release := make(chan struct{})
	var calls int32
	srv := New(Config{Workers: 1, QueueCap: 8, Runner: countingRunner(&calls, release)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	busy, _ := post(t, ts, `{"exp":"fetch"}`)
	waitState(t, ts, busy.ID, StateRunning)
	queued, _ := post(t, ts, `{"exp":"fig5"}`)
	del(t, ts, queued.ID)
	close(release)
	waitState(t, ts, busy.ID, StateDone)
	waitMetric(t, ts, "momserved_inflight_flights", 0) // empty flight reaped

	again, _ := post(t, ts, `{"exp":"fig5"}`)
	if again.Coalesced {
		t.Fatal("submission after the empty flight was reaped still coalesced")
	}
	waitState(t, ts, again.ID, StateDone)
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Fatalf("runner executed %d times, want 2 (the dropped flight never ran)", got)
	}
}
