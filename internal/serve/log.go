package serve

import (
	"context"
	"io"
	"log/slog"
	"time"
)

// Structured logging for the job service. The Server never writes to a
// global logger: Config.Logger is the sink (nil keeps the library silent,
// as before this file existed), cmd/momserver builds a text or JSON
// handler from -log-format / -log-level, and every line about a job
// carries its request ID — the same IDs the flight recorder exposes under
// /debug/flights — so a log line, a flight timeline and a peer node's
// view of the same trace context all join on one key.

// discardLogger backs a nil Config.Logger so call sites never nil-check.
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, nil))

// log returns the configured structured logger (never nil).
func (s *Server) log() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return discardLogger
}

// logAdmit records one admitted submission at debug level.
func (s *Server) logAdmit(j *job, kind string) {
	lg := s.log()
	if !lg.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	attrs := []any{
		slog.String("req_id", j.reqID),
		slog.String("trace", j.trace),
		slog.String("id", j.id),
		slog.String("exp", j.req.Exp),
		slog.String("key", j.key),
		slog.String("kind", kind),
	}
	if j.peer != "" {
		attrs = append(attrs, slog.String("peer", j.peer))
	}
	lg.Debug("job admitted", attrs...)
}

// logFinish records one settled flight: identity, terminal state, and the
// per-stage latency breakdown. Flights slower than the configured
// threshold escalate to a warning.
func (s *Server) logFinish(fr *flightRecord, state, errMsg string, wall time.Duration) {
	lg := s.log()
	level := slog.LevelInfo
	slow := s.cfg.SlowJob > 0 && wall >= s.cfg.SlowJob
	if slow {
		level = slog.LevelWarn
	}
	if !lg.Enabled(context.Background(), level) {
		return
	}
	reqID := ""
	if len(fr.reqIDs) > 0 {
		reqID = fr.reqIDs[0]
	}
	attrs := []any{
		slog.String("req_id", reqID),
		slog.String("trace", fr.trace),
		slog.String("exp", fr.exp),
		slog.String("key", fr.key),
		slog.String("kind", fr.kind),
		slog.String("state", state),
		slog.Duration("wall", wall),
		slog.Int("members", len(fr.reqIDs)),
	}
	for _, sp := range fr.spans {
		attrs = append(attrs, slog.Duration(sp.name, sp.end.Sub(sp.start)))
	}
	if fr.peer != "" {
		attrs = append(attrs, slog.String("peer", fr.peer))
	}
	if errMsg != "" {
		attrs = append(attrs, slog.String("error", errMsg))
	}
	msg := "flight finished"
	if slow {
		msg = "slow job"
		attrs = append(attrs, slog.Duration("threshold", s.cfg.SlowJob))
	}
	lg.Log(context.Background(), level, msg, attrs...)
}

// logPeerError records one failed peer round trip: which peer, which key,
// what failed and how long the attempt took — the counter in /metrics
// says how often, this line says why.
func (s *Server) logPeerError(op, peer, key, trace string, elapsed time.Duration, err error) {
	s.log().Error("peer round trip failed",
		slog.String("op", op),
		slog.String("peer", peer),
		slog.String("key", key),
		slog.String("trace", trace),
		slog.Duration("elapsed", elapsed),
		slog.String("error", err.Error()),
	)
}
