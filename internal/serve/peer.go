package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	mom "repro"
)

// Multi-node momserver: every node knows the full peer set and routes
// each content-address key to one owner by rendezvous (highest-random-
// weight) hashing, so all nodes agree on ownership with no coordination
// and a peer-set change only remaps the keys of the peers that changed.
// A node asked for a key it does not own first tries to fill its local
// store from the owner's (GET /v1/store/{key} — fill-on-miss, replicating
// hot results toward their demand) and otherwise proxies the computation
// to the owner, waiting on the owner's worker pool rather than its own.

// PeerSet is the cluster membership: every node's base URL, plus which
// one is this node. It is immutable after construction; all nodes must be
// configured with the same URL strings for ownership to agree.
type PeerSet struct {
	self   string
	peers  []string
	client *http.Client
}

// NewPeerSet validates a peer list (base URLs, this node's included) and
// builds the routing table. Order does not matter; URLs are compared
// after trailing-slash trimming.
func NewPeerSet(self string, peers []string) (*PeerSet, error) {
	p := &PeerSet{
		self:   canonPeer(self),
		client: &http.Client{Timeout: 30 * time.Second},
	}
	if p.self == "" {
		return nil, fmt.Errorf("peers: -self is required when -peers is set")
	}
	seen := map[string]bool{}
	for _, raw := range peers {
		c := canonPeer(raw)
		if c == "" {
			continue
		}
		u, err := url.Parse(c)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("peers: %q is not a base URL", raw)
		}
		if seen[c] {
			return nil, fmt.Errorf("peers: duplicate peer %q", c)
		}
		seen[c] = true
		p.peers = append(p.peers, c)
	}
	if len(p.peers) < 2 {
		return nil, fmt.Errorf("peers: need at least 2 peers, have %d", len(p.peers))
	}
	if !seen[p.self] {
		return nil, fmt.Errorf("peers: self %q is not in the peer list", p.self)
	}
	return p, nil
}

func canonPeer(s string) string {
	return strings.TrimRight(strings.TrimSpace(s), "/")
}

// Self returns this node's canonical base URL.
func (p *PeerSet) Self() string { return p.self }

// Size returns the cluster size.
func (p *PeerSet) Size() int { return len(p.peers) }

// Owner maps a content-address key to the peer that owns it: the peer
// with the highest rendezvous hash score. Every node computes the same
// owner from the same peer list, with no coordination and near-uniform
// key spread; removing a peer only remaps the keys it owned.
func (p *PeerSet) Owner(key string) string {
	var best string
	var bestScore [sha256.Size]byte
	for _, peer := range p.peers {
		h := sha256.New()
		io.WriteString(h, peer)
		h.Write([]byte{0})
		io.WriteString(h, key)
		var score [sha256.Size]byte
		h.Sum(score[:0])
		if best == "" || bytes.Compare(score[:], bestScore[:]) > 0 {
			best, bestScore = peer, score
		}
	}
	return best
}

// handleStoreGet serves one raw stored document to a peer (or any
// client): the fill-on-miss read path. It never computes and never
// proxies — a miss is a plain 404, which tells the asking peer to fall
// back to proxy submission. A request carrying a Mom-Trace header is a
// peer hop of a distributed flight, so the read is recorded under the
// caller's trace context for stitching.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var fr *flightRecord
	t0 := time.Now()
	if tid := r.Header.Get(TraceHeader); tid != "" {
		tc := traceCtx{trace: adoptTrace(r), reqID: "r" + newID()}
		fr = s.newFlightRecord(KindStoreServe, key, "", "", tc, t0)
	}
	settle := func(state string) {
		if fr != nil {
			now := time.Now()
			s.flights.span(fr, "store-read", t0, now, state)
			s.flights.close(fr, state, now)
		}
	}
	if s.cfg.Store == nil {
		settle(StateFailed)
		httpError(w, http.StatusNotFound, "no store configured")
		return
	}
	val, ok := s.cfg.Store.Get(key)
	if !ok {
		settle(StateFailed)
		httpError(w, http.StatusNotFound, "no entry for key %q", key)
		return
	}
	settle(StateDone)
	w.Header().Set("Content-Type", "application/json")
	w.Write(val)
}

// peerStoreGet fetches a stored document from a peer's store, bounded by
// a short deadline so a slow peer degrades a submission to a proxy (or
// local compute), never hangs it. The trace context rides the Mom-Trace
// header so the owner's store read stitches into the submitter's flight.
func (s *Server) peerStoreGet(peer, key string, tc traceCtx) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/store/"+key, nil)
	if err != nil {
		return nil, false
	}
	req.Header.Set(TraceHeader, tc.trace)
	resp, err := s.cfg.Peers.client.Do(req)
	if err != nil {
		s.metrics.add(&s.metrics.peerErrors)
		s.logPeerError("store-fetch", peer, key, tc.trace, time.Since(t0), err)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusNotFound {
			s.metrics.add(&s.metrics.peerErrors)
			s.logPeerError("store-fetch", peer, key, tc.trace, time.Since(t0),
				fmt.Errorf("status %d", resp.StatusCode))
		}
		return nil, false
	}
	val, err := io.ReadAll(resp.Body)
	if err != nil {
		s.metrics.add(&s.metrics.peerErrors)
		s.logPeerError("store-fetch", peer, key, tc.trace, time.Since(t0), err)
		return nil, false
	}
	return val, true
}

// runProxy executes a flight whose key another node owns: submit there,
// poll to a terminal state, fetch the result, and fill the local store so
// the next request for this key is a local hit. The flight coalesces
// local duplicates exactly like a computing flight; cancellation of the
// last member cancels the wait (the owner keeps or stops the job per its
// own policy — a later resubmission would coalesce with it there).
func (s *Server) runProxy(fl *flight) {
	ctx, cancel, ok := s.begin(fl)
	if !ok {
		return
	}
	defer cancel()

	t0 := time.Now()
	out, err := s.proxyRun(ctx, fl, fl.peer, fl.req, fl.timeout)
	now := time.Now()
	s.flights.span(fl.rec, "proxy", t0, now, fl.peer)
	s.metrics.stage("proxy", now.Sub(t0))
	ctxErr := ctx.Err()
	if err == nil && ctxErr == nil && s.cfg.Store != nil {
		w0 := time.Now()
		_ = s.cfg.Store.Fill(fl.key, out)
		s.flights.span(fl.rec, "store", w0, time.Now(), "fill")
		s.metrics.stage("store", time.Since(w0))
		s.metrics.add(&s.metrics.peerFills)
	}
	if err != nil && ctxErr == nil {
		s.metrics.add(&s.metrics.peerErrors)
		s.logPeerError("proxy", fl.peer, fl.key, fl.rec.trace, now.Sub(t0), err)
	}
	s.finish(fl, out, err, ctxErr)
}

// proxyRun drives one job to completion on a peer. The flight's trace
// context rides every hop in the Mom-Trace header, so the owner records
// its side of the work under the same trace ID.
func (s *Server) proxyRun(ctx context.Context, fl *flight, peer string, req mom.JobRequest, timeout time.Duration) ([]byte, error) {
	payload, err := json.Marshal(submitBody{JobRequest: req, TimeoutMS: timeout.Milliseconds()})
	if err != nil {
		return nil, err
	}
	traceID := fl.rec.trace
	var d jobDoc
	code, err := s.peerJSON(ctx, http.MethodPost, peer+"/v1/jobs", payload, traceID, &d)
	if err != nil {
		return nil, fmt.Errorf("peer %s: submit: %w", peer, err)
	}
	switch code {
	case http.StatusOK, http.StatusAccepted:
	default:
		return nil, fmt.Errorf("peer %s: submit refused with status %d", peer, code)
	}
	for !terminal(d.State) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
		if code, err = s.peerJSON(ctx, http.MethodGet, peer+"/v1/jobs/"+d.ID, nil, traceID, &d); err != nil {
			return nil, fmt.Errorf("peer %s: poll: %w", peer, err)
		} else if code != http.StatusOK {
			return nil, fmt.Errorf("peer %s: poll status %d", peer, code)
		}
	}
	if d.State != StateDone {
		return nil, fmt.Errorf("peer %s: job %s ended %s: %s", peer, d.ID, d.State, d.Error)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+d.ResultURL, nil)
	if err != nil {
		return nil, err
	}
	hreq.Header.Set(TraceHeader, traceID)
	resp, err := s.cfg.Peers.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("peer %s: result: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: result status %d", peer, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// peerJSON performs one JSON request/response round trip with a peer,
// propagating the trace context.
func (s *Server) peerJSON(ctx context.Context, method, url string, payload []byte, traceID string, out any) (int, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return 0, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if traceID != "" {
		req.Header.Set(TraceHeader, traceID)
	}
	resp, err := s.cfg.Peers.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return resp.StatusCode, fmt.Errorf("bad response body: %w", err)
	}
	return resp.StatusCode, nil
}
