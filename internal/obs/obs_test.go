package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// synthEvents builds a small synthetic event stream with overlapping
// lifetimes, a branch and a memory instruction.
func synthEvents() []Event {
	return []Event{
		{Seq: 0, PC: 0, Class: isa.ClassIntSimple,
			Fetch: 0, Dispatch: 1, Issue: 2, Complete: 3, Commit: 4,
			Committed: 1, Bucket: BucketFrontend, ExecGap: 2},
		{Seq: 1, PC: 1, Class: isa.ClassLoad,
			Fetch: 0, Dispatch: 1, Issue: 3, Complete: 9, Commit: 10,
			Committed: 1, Bucket: BucketMemWait, ExecGap: 5,
			Mem: mem.Outcome{L1Misses: 1, L2Hits: 1}},
		{Seq: 2, PC: 2, Class: isa.ClassStore,
			Fetch: 1, Dispatch: 2, Issue: 4, Complete: 5, Commit: 12,
			Committed: 1, StoreGap: 1, Mem: mem.Outcome{WriteBufStalls: 1}},
		{Seq: 3, PC: 0, Class: isa.ClassIntSimple,
			Fetch: 1, Dispatch: 2, Issue: 5, Complete: 6, Commit: 13,
			Committed: 1, Bucket: BucketDepLatency, ExecGap: 0},
		{Seq: 4, PC: 3, Class: isa.ClassBranch, Taken: true,
			Fetch: 2, Dispatch: 3, Issue: 6, Complete: 7, Commit: 14,
			Committed: 1, Bucket: BucketIssueQueue, ExecGap: 1},
	}
}

var synthDisasm = []string{"addq r1, r2, r3", "ldq r4, r1, #8", "stq r4, r5, #0", "bne r4, #-4"}

func feed(o Observer, evs []Event) {
	for i := range evs {
		o.Observe(&evs[i])
	}
}

func TestHotspotAggregation(t *testing.T) {
	h := NewHotspot(len(synthDisasm))
	feed(h, synthEvents())
	if got := h.Count(0); got != 2 {
		t.Errorf("PC 0 count = %d, want 2", got)
	}
	b := h.Buckets(0)
	if b[BucketCommit] != 2 || b[BucketFrontend] != 2 || b[BucketDepLatency] != 0 {
		t.Errorf("PC 0 buckets = %v", b)
	}
	b = h.Buckets(2)
	if b[BucketCommit] != 1 || b[BucketStoreCommit] != 1 {
		t.Errorf("PC 2 buckets = %v", b)
	}
	l1, l2, mshr, wbuf := h.MemEvents(1)
	if l1 != 1 || l2 != 0 || mshr != 0 || wbuf != 0 {
		t.Errorf("PC 1 mem events = %d/%d/%d/%d", l1, l2, mshr, wbuf)
	}
	if _, _, _, wbuf = h.MemEvents(2); wbuf != 1 {
		t.Errorf("PC 2 write-buffer stalls = %d, want 1", wbuf)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no live observers should be nil")
	}
	r := &Recorder{}
	if Multi(nil, r) != Observer(r) {
		t.Error("Multi of one live observer should return it unwrapped")
	}
	r2 := &Recorder{}
	feed(Multi(r, r2), synthEvents())
	if len(r.Events) != 5 || len(r2.Events) != 5 {
		t.Errorf("fan-out recorded %d/%d events, want 5/5", len(r.Events), len(r2.Events))
	}
}

func TestKonataRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	k := NewKonata(&buf, 0, 0, synthDisasm)
	feed(k, synthEvents())
	if k.Recorded() != 5 {
		t.Fatalf("recorded %d, want 5", k.Recorded())
	}
	if err := k.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Kanata\t0004\n") {
		t.Fatalf("missing Kanata header:\n%s", out)
	}
	st, err := ParseKonata(strings.NewReader(out))
	if err != nil {
		t.Fatalf("self-parse: %v\n%s", err, out)
	}
	if st.Insts != 5 || st.Retired != 5 {
		t.Errorf("parsed %d insts, %d retired, want 5/5", st.Insts, st.Retired)
	}
	// Latest commit is cycle 14; the log's cycle cursor must reach it.
	if st.Cycles != 14 {
		t.Errorf("final cycle cursor = %d, want 14", st.Cycles)
	}
}

func TestKonataWindow(t *testing.T) {
	var buf bytes.Buffer
	k := NewKonata(&buf, 1, 2, synthDisasm)
	feed(k, synthEvents())
	if k.Recorded() != 2 {
		t.Fatalf("windowed recorder kept %d, want 2", k.Recorded())
	}
	if err := k.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := ParseKonata(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Insts != 2 || st.Retired != 2 {
		t.Errorf("parsed %d insts, %d retired, want 2/2", st.Insts, st.Retired)
	}
}

func TestParseKonataRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not a header\n",
		"Kanata\t0004\nS\t0\t0\tF\n",                         // stage on undeclared instruction
		"Kanata\t0004\nI\t0\t0\t0\nS\t0\t0\tF",               // stage still open at EOF
		"Kanata\t0004\nI\t0\t0\t0\nS\t0\t0\tF\nE\t0\t0\tD\n", // mismatched stage close
	} {
		if _, err := ParseKonata(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseKonata accepted %q", bad)
		}
	}
}

func TestChromeTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	c := NewChrome(&buf, 0, 0, synthDisasm)
	feed(c, synthEvents())
	if c.Recorded() != 5 {
		t.Fatalf("recorded %d, want 5", c.Recorded())
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace-event JSON: %v", err)
	}
	var insts int
	ends := map[int]int64{} // per-track previous slice end
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur < 0 {
			t.Errorf("event %q has negative duration %d", ev.Name, ev.Dur)
		}
		if ev.Cat != "inst" {
			continue
		}
		insts++
		if ev.Ts < ends[ev.Tid] {
			t.Errorf("track %d: slice %q at ts %d overlaps previous end %d",
				ev.Tid, ev.Name, ev.Ts, ends[ev.Tid])
		}
		ends[ev.Tid] = ev.Ts + ev.Dur
		if ev.Args["bucket"] == nil || ev.Args["seq"] == nil {
			t.Errorf("slice %q missing args: %v", ev.Name, ev.Args)
		}
	}
	if insts != 5 {
		t.Errorf("trace has %d inst slices, want 5", insts)
	}
	// The load (seq 1) and the overlapping store must land on different
	// tracks; five overlapping instructions cannot fit one track.
	if len(ends) < 2 {
		t.Errorf("overlapping instructions packed onto %d track(s)", len(ends))
	}
}
