// Package obs is the instruction-level observability layer of the timing
// simulator. The CPU core publishes one Event per dynamic instruction —
// its lifecycle timestamps through the pipeline, its commit-frontier stall
// attribution, and the memory-system events its accesses triggered — to an
// optional Observer. A nil observer costs nothing: the core only assembles
// events when one is attached, so cycle counts and every reported counter
// are bit-identical with observation on or off (the same contract the
// capture/replay trace layer keeps: live and replayed runs publish
// identical event streams).
//
// Three consumers ship with the package: Hotspot aggregates events into a
// per-static-instruction (per-PC) profile whose attributed cycles sum
// exactly to the run's cycle-attribution buckets; KonataWriter exports the
// per-instruction pipeline lifetimes in the Kanata log format (loadable in
// the Konata pipeline viewer); ChromeWriter exports them as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
package obs

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// Bucket names one entry of the cycle-attribution stall taxonomy; the
// values mirror cpu.Profile's fields in canonical display order.
type Bucket uint8

// The nine buckets of the stall taxonomy.
const (
	BucketCommit Bucket = iota
	BucketFrontend
	BucketMispredict
	BucketRenameROB
	BucketIssueQueue
	BucketFU
	BucketMemWait
	BucketStoreCommit
	BucketDepLatency
)

// NumBuckets is the number of stall-taxonomy buckets.
const NumBuckets = int(BucketDepLatency) + 1

var bucketNames = [NumBuckets]string{
	"commit", "frontend", "mispredict", "rename/rob", "issue",
	"fu", "mem", "store", "dep/lat",
}

func (b Bucket) String() string {
	if int(b) < NumBuckets {
		return bucketNames[b]
	}
	return "?"
}

// Event is one dynamic instruction's trip through the pipeline. The core
// passes events by pointer and reuses the backing storage: observers that
// retain an event past the Observe call must copy it.
type Event struct {
	Seq   uint64    // dynamic instruction number (0-based program order)
	PC    int       // static instruction index
	Class isa.Class // operation class
	VL    int       // vector length governing the op (vector classes)
	Taken bool      // branch outcome (branch class)

	// Lifecycle timestamps (absolute cycles). Fetch <= Dispatch < Issue <=
	// Complete < Commit always holds; Issue is the cycle the instruction won
	// an issue slot (its operand-ready cycle for no-issue NOPs).
	Fetch    int64
	Dispatch int64
	Issue    int64
	Complete int64
	Commit   int64

	// Commit-frontier attribution: the exact cycles this instruction's
	// graduation charged to the run profile. Committed is 1 when the commit
	// frontier advanced (one useful commit cycle), StoreGap is the cycles
	// charged to the store-drain bucket, and ExecGap is the cycles charged
	// to Bucket. Summing Committed+ExecGap+StoreGap over a run's events,
	// bucket by bucket, reproduces the run profile exactly.
	Committed int64
	Bucket    Bucket
	ExecGap   int64
	StoreGap  int64

	// Mem is the memory-system outcome of this instruction's accesses
	// (zero for non-memory instructions and perfect memories).
	Mem mem.Outcome
}

// Observer consumes the per-dynamic-instruction event stream of a run.
type Observer interface {
	// Observe is called once per dynamic instruction, in program (commit)
	// order. The event pointer is only valid for the duration of the call.
	Observe(ev *Event)
}

// multi fans one event stream out to several observers.
type multi struct{ obs []Observer }

func (m *multi) Observe(ev *Event) {
	for _, o := range m.obs {
		o.Observe(ev)
	}
}

// Multi combines observers into one; nil entries are dropped, and a single
// surviving observer is returned unwrapped.
func Multi(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multi{obs: live}
}

// Recorder retains every event it observes (the equivalence tests compare
// live and replayed runs event-for-event through it).
type Recorder struct {
	Events []Event
}

// Observe appends a copy of the event.
func (r *Recorder) Observe(ev *Event) { r.Events = append(r.Events, *ev) }
