package obs

// Hotspot aggregates the event stream into a per-static-instruction (per-PC)
// profile: dynamic execution count, attributed cycles per stall bucket, and
// memory-event counts. The attribution is exact by construction — every
// cycle the commit frontier crosses is charged to precisely one (PC, bucket)
// pair — so summing the per-PC buckets reproduces the run's cycle profile,
// the invariant mom.HotspotReport.CheckInvariants enforces.
type Hotspot struct {
	counts  []uint64
	buckets [][NumBuckets]int64
	l1Miss  []uint64
	l2Miss  []uint64
	mshr    []uint64
	wbuf    []uint64
}

// NewHotspot returns an aggregator for a program of nStatic instructions.
func NewHotspot(nStatic int) *Hotspot {
	return &Hotspot{
		counts:  make([]uint64, nStatic),
		buckets: make([][NumBuckets]int64, nStatic),
		l1Miss:  make([]uint64, nStatic),
		l2Miss:  make([]uint64, nStatic),
		mshr:    make([]uint64, nStatic),
		wbuf:    make([]uint64, nStatic),
	}
}

// Observe accumulates one dynamic instruction.
func (h *Hotspot) Observe(ev *Event) {
	pc := ev.PC
	h.counts[pc]++
	b := &h.buckets[pc]
	b[BucketCommit] += ev.Committed
	b[BucketStoreCommit] += ev.StoreGap
	b[ev.Bucket] += ev.ExecGap
	h.l1Miss[pc] += ev.Mem.L1Misses
	h.l2Miss[pc] += ev.Mem.L2Misses
	h.mshr[pc] += ev.Mem.MSHRStalls
	h.wbuf[pc] += ev.Mem.WriteBufStalls
}

// Count returns the dynamic execution count of a static instruction.
func (h *Hotspot) Count(pc int) uint64 { return h.counts[pc] }

// Buckets returns the attributed cycles per stall bucket of a static
// instruction.
func (h *Hotspot) Buckets(pc int) [NumBuckets]int64 { return h.buckets[pc] }

// MemEvents returns the accumulated memory-event counts of a static
// instruction: L1 misses, L2 misses, MSHR stalls and write-buffer stalls.
func (h *Hotspot) MemEvents(pc int) (l1Miss, l2Miss, mshr, wbuf uint64) {
	return h.l1Miss[pc], h.l2Miss[pc], h.mshr[pc], h.wbuf[pc]
}

// Statics returns the number of static instructions tracked.
func (h *Hotspot) Statics() int { return len(h.counts) }
