package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// KonataWriter exports the pipeline lifetimes of a (windowed) slice of the
// dynamic instruction stream in the Kanata log format (version 0004), the
// input of the Konata pipeline viewer (also produced by gem5's O3PipeView
// converters). Each instruction renders as four stages on lane 0:
//
//	F  fetch   -> dispatch   (front-end)
//	D  dispatch -> issue     (rename/queue wait)
//	X  issue   -> complete   (execute, including memory wait)
//	C  complete -> commit    (waiting for in-order graduation)
//
// Events are buffered as they are observed and the log is assembled by
// Flush, which interleaves the per-instruction records into one
// cycle-ordered command stream.
type KonataWriter struct {
	w      io.Writer
	start  uint64 // first dynamic instruction recorded
	count  uint64 // instructions recorded (0 = unbounded)
	disasm []string
	recs   []konataRec
}

type konataRec struct {
	seq                              uint64
	pc                               int
	fetch, dispatch, issue, complete int64
	commit                           int64
	detail                           string
}

// NewKonata returns a writer recording count instructions starting at
// dynamic instruction start (count 0 records to the end of the run).
// disasm supplies the per-PC label text; missing entries fall back to the
// PC number.
func NewKonata(w io.Writer, start, count uint64, disasm []string) *KonataWriter {
	return &KonataWriter{w: w, start: start, count: count, disasm: disasm}
}

// Observe buffers one instruction if it falls inside the window.
func (k *KonataWriter) Observe(ev *Event) {
	if ev.Seq < k.start || (k.count > 0 && ev.Seq >= k.start+k.count) {
		return
	}
	k.recs = append(k.recs, konataRec{
		seq: ev.Seq, pc: ev.PC,
		fetch: ev.Fetch, dispatch: ev.Dispatch, issue: ev.Issue,
		complete: ev.Complete, commit: ev.Commit,
		detail: fmt.Sprintf("bucket:%s exec:%d store:%d", ev.Bucket, ev.ExecGap, ev.StoreGap),
	})
}

// Recorded returns the number of instructions buffered so far.
func (k *KonataWriter) Recorded() int { return len(k.recs) }

func (k *KonataWriter) label(pc int) string {
	if pc >= 0 && pc < len(k.disasm) {
		return k.disasm[pc]
	}
	return fmt.Sprintf("@%d", pc)
}

// konataCmd is one log line pinned to a cycle; ord keeps a stable
// within-cycle order (ends before starts before retires is not required by
// the format, but per-instruction command order must be preserved).
type konataCmd struct {
	cycle int64
	sid   int
	ord   int
	text  string
}

// Flush assembles and writes the buffered window as a Kanata log.
func (k *KonataWriter) Flush() error {
	bw := bufio.NewWriter(k.w)
	if _, err := fmt.Fprintf(bw, "Kanata\t0004\n"); err != nil {
		return err
	}
	var cmds []konataCmd
	for sid, r := range k.recs {
		ord := 0
		add := func(cycle int64, format string, args ...any) {
			cmds = append(cmds, konataCmd{cycle, sid, ord, fmt.Sprintf(format, args...)})
			ord++
		}
		add(r.fetch, "I\t%d\t%d\t0", sid, r.seq)
		add(r.fetch, "L\t%d\t0\t%d: %s", sid, r.seq, k.label(r.pc))
		add(r.fetch, "L\t%d\t1\tpc:%d %s", sid, r.pc, r.detail)
		add(r.fetch, "S\t%d\t0\tF", sid)
		add(r.dispatch, "E\t%d\t0\tF", sid)
		add(r.dispatch, "S\t%d\t0\tD", sid)
		add(r.issue, "E\t%d\t0\tD", sid)
		add(r.issue, "S\t%d\t0\tX", sid)
		add(r.complete, "E\t%d\t0\tX", sid)
		add(r.complete, "S\t%d\t0\tC", sid)
		add(r.commit, "E\t%d\t0\tC", sid)
		add(r.commit, "R\t%d\t%d\t0", sid, sid)
	}
	sort.SliceStable(cmds, func(a, b int) bool {
		if cmds[a].cycle != cmds[b].cycle {
			return cmds[a].cycle < cmds[b].cycle
		}
		if cmds[a].sid != cmds[b].sid {
			return cmds[a].sid < cmds[b].sid
		}
		return cmds[a].ord < cmds[b].ord
	})
	cur := int64(-1)
	for i, c := range cmds {
		if i == 0 {
			if _, err := fmt.Fprintf(bw, "C=\t%d\n", c.cycle); err != nil {
				return err
			}
			cur = c.cycle
		} else if c.cycle > cur {
			if _, err := fmt.Fprintf(bw, "C\t%d\n", c.cycle-cur); err != nil {
				return err
			}
			cur = c.cycle
		}
		if _, err := fmt.Fprintln(bw, c.text); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// KonataStats summarises a parsed Kanata log (the format self-check).
type KonataStats struct {
	Insts   int   // instruction records (I lines)
	Retired int   // retire records (R lines, type 0)
	Labels  int   // label lines
	Cycles  int64 // last cycle minus first cycle
}

// ParseKonata validates a Kanata log: header, known commands, numeric
// fields, monotonic cycle stream, stages opened before they are closed and
// every instruction retired. It is the round-trip check for KonataWriter
// output (and accepts the common subset of the format generally).
func ParseKonata(r io.Reader) (KonataStats, error) {
	var st KonataStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return st, fmt.Errorf("konata: empty log")
	}
	if h := sc.Text(); h != "Kanata\t0004" {
		return st, fmt.Errorf("konata: bad header %q", h)
	}
	var cur, first int64
	haveCycle := false
	open := map[string]string{} // sid -> currently open stage ("" = none)
	retired := map[string]bool{}
	line := 1
	for sc.Scan() {
		line++
		f := strings.Split(sc.Text(), "\t")
		fail := func(format string, args ...any) (KonataStats, error) {
			return st, fmt.Errorf("konata: line %d: %s", line, fmt.Sprintf(format, args...))
		}
		num := func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
		switch f[0] {
		case "C=":
			if len(f) != 2 {
				return fail("C= wants 1 field")
			}
			n, err := num(f[1])
			if err != nil {
				return fail("bad cycle %q", f[1])
			}
			cur, first, haveCycle = n, n, true
		case "C":
			if len(f) != 2 {
				return fail("C wants 1 field")
			}
			n, err := num(f[1])
			if err != nil || n < 0 {
				return fail("bad cycle delta %q", f[1])
			}
			cur += n
		case "I":
			if len(f) != 4 {
				return fail("I wants 3 fields")
			}
			if _, ok := open[f[1]]; ok {
				return fail("duplicate instruction id %s", f[1])
			}
			open[f[1]] = ""
			st.Insts++
		case "L":
			if len(f) < 4 {
				return fail("L wants 3+ fields")
			}
			if _, ok := open[f[1]]; !ok {
				return fail("label for unknown id %s", f[1])
			}
			st.Labels++
		case "S":
			if len(f) != 4 {
				return fail("S wants 3 fields")
			}
			stage, ok := open[f[1]]
			if !ok {
				return fail("stage start for unknown id %s", f[1])
			}
			if stage != "" {
				return fail("id %s starts %s with %s still open", f[1], f[3], stage)
			}
			open[f[1]] = f[3]
		case "E":
			if len(f) != 4 {
				return fail("E wants 3 fields")
			}
			stage, ok := open[f[1]]
			if !ok {
				return fail("stage end for unknown id %s", f[1])
			}
			if stage != f[3] {
				return fail("id %s ends %s but %q is open", f[1], f[3], stage)
			}
			open[f[1]] = ""
		case "R":
			if len(f) != 4 {
				return fail("R wants 3 fields")
			}
			if _, ok := open[f[1]]; !ok {
				return fail("retire of unknown id %s", f[1])
			}
			if retired[f[1]] {
				return fail("id %s retired twice", f[1])
			}
			retired[f[1]] = true
			if f[3] == "0" {
				st.Retired++
			}
		case "W": // dependency edges are legal but KonataWriter never emits them
		default:
			return fail("unknown command %q", f[0])
		}
		if !haveCycle && (f[0] == "I" || f[0] == "S" || f[0] == "E" || f[0] == "R") {
			return fail("command before any C=")
		}
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	for id, stage := range open {
		if stage != "" {
			return st, fmt.Errorf("konata: id %s ends with stage %s open", id, stage)
		}
		if !retired[id] {
			return st, fmt.Errorf("konata: id %s never retired", id)
		}
	}
	st.Cycles = cur - first
	return st, nil
}
