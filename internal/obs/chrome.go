package obs

import (
	"encoding/json"
	"io"
)

// ChromeWriter exports the pipeline lifetimes of a (windowed) slice of the
// dynamic instruction stream as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. One simulated cycle maps
// to one microsecond of trace time. Each instruction becomes a complete
// ("X") slice named by its disassembly, spanning fetch to commit, with
// nested child slices for the four pipeline stages (F/D/X/C); instructions
// are packed onto the fewest tracks (tids) such that slices on a track
// never overlap, so the track count visualises the in-flight window.
type ChromeWriter struct {
	w      io.Writer
	start  uint64
	count  uint64
	disasm []string
	recs   []Event
}

// NewChrome returns a writer recording count instructions starting at
// dynamic instruction start (count 0 records to the end of the run).
func NewChrome(w io.Writer, start, count uint64, disasm []string) *ChromeWriter {
	return &ChromeWriter{w: w, start: start, count: count, disasm: disasm}
}

// Observe buffers one instruction if it falls inside the window.
func (c *ChromeWriter) Observe(ev *Event) {
	if ev.Seq < c.start || (c.count > 0 && ev.Seq >= c.start+c.count) {
		return
	}
	c.recs = append(c.recs, *ev)
}

// Recorded returns the number of instructions buffered so far.
func (c *ChromeWriter) Recorded() int { return len(c.recs) }

// chromeEvent is one trace-event record (the "X" complete-event shape).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func (c *ChromeWriter) label(pc int) string {
	if pc >= 0 && pc < len(c.disasm) {
		return c.disasm[pc]
	}
	return "@?"
}

// Flush writes the buffered window as a trace-event JSON document.
func (c *ChromeWriter) Flush() error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	// Greedy track packing: an instruction takes the lowest track whose
	// previous occupant committed before this one fetched.
	var trackFree []int64
	for _, ev := range c.recs {
		end := ev.Commit + 1
		tid := -1
		for t, free := range trackFree {
			if free <= ev.Fetch {
				tid = t
				break
			}
		}
		if tid < 0 {
			tid = len(trackFree)
			trackFree = append(trackFree, 0)
		}
		trackFree[tid] = end
		args := map[string]any{
			"seq":       ev.Seq,
			"pc":        ev.PC,
			"class":     ev.Class.String(),
			"bucket":    ev.Bucket.String(),
			"exec_gap":  ev.ExecGap,
			"store_gap": ev.StoreGap,
		}
		if ev.Mem.L1Misses+ev.Mem.L2Misses+ev.Mem.MSHRStalls+ev.Mem.WriteBufStalls > 0 {
			args["l1_misses"] = ev.Mem.L1Misses
			args["l2_misses"] = ev.Mem.L2Misses
			args["mshr_stalls"] = ev.Mem.MSHRStalls
			args["write_buf_stalls"] = ev.Mem.WriteBufStalls
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: c.label(ev.PC), Cat: "inst", Ph: "X",
			Ts: ev.Fetch, Dur: end - ev.Fetch, Pid: 0, Tid: tid, Args: args,
		})
		stages := [4]struct {
			name     string
			from, to int64
		}{
			{"F", ev.Fetch, ev.Dispatch},
			{"D", ev.Dispatch, ev.Issue},
			{"X", ev.Issue, ev.Complete},
			{"C", ev.Complete, end},
		}
		for _, s := range stages {
			dur := s.to - s.from
			if dur < 0 {
				dur = 0
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: s.name, Cat: "stage", Ph: "X",
				Ts: s.from, Dur: dur, Pid: 0, Tid: tid,
			})
		}
	}
	enc := json.NewEncoder(c.w)
	return enc.Encode(doc)
}
