package apps

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
)

// App bundles the program generators and the verifier for one application.
type App struct {
	Name string
	// Build produces the complete application program for one ISA level.
	Build func(ext isa.Ext) *isa.Program
	// Verify checks the outputs (bitstreams, reconstructed planes, encoded
	// frames) against the golden pipeline.
	Verify func(p *isa.Program, m *emu.Machine) error
}

// Scale selects workload sizes (mirrors kernels.Scale).
type Scale int

const (
	ScaleTest Scale = iota
	ScaleBench
)

// All returns the five applications of the paper's program-level study.
func All(sc Scale) []App {
	return []App{
		NewMPEG2Encode(sc),
		NewMPEG2Decode(sc),
		NewJPEGEncode(sc),
		NewJPEGDecode(sc),
		NewGSMEncode(sc),
	}
}

// Names lists the application names.
func Names() []string {
	var out []string
	for _, a := range All(ScaleTest) {
		out = append(out, a.Name)
	}
	return out
}

// ByName returns the application with the given name.
func ByName(name string, sc Scale) (App, error) {
	for _, a := range All(sc) {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown application %q", name)
}

// RunAndVerify executes the program functionally and applies the verifier.
func RunAndVerify(a App, ext isa.Ext, maxSteps uint64) error {
	p := a.Build(ext)
	m := emu.New(p)
	if _, err := m.Run(maxSteps); err != nil {
		return fmt.Errorf("%s/%s: %w", a.Name, ext, err)
	}
	if err := a.Verify(p, m); err != nil {
		return fmt.Errorf("%s/%s: %w", a.Name, ext, err)
	}
	return nil
}
