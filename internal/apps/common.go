package apps

import (
	"encoding/binary"
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/media"
)

// Shared geometry helpers used by both the golden pipelines and the
// program builders — sharing them guarantees block/candidate ordering
// matches exactly.

// blockOffsets returns the byte offsets of all blk x blk blocks in raster
// order for a plane of width w, height h.
func blockOffsets(w, h, blk int) []int {
	var out []int
	for by := 0; by+blk <= h; by += blk {
		for bx := 0; bx+blk <= w; bx += blk {
			out = append(out, by*w+bx)
		}
	}
	return out
}

// cand is one motion-search candidate: the biased displacement written to
// the bitstream (dx+win, dy+win) and the byte offset delta in the
// reference plane.
type cand struct {
	dxw, dyw int
	delta    int
}

// candidates returns the valid spiral candidates for the macroblock at
// (mbx, mby) in a w x h plane with search radius win.
func candidates(w, h, win, mbx, mby int) []cand {
	var out []cand
	for _, o := range media.SpiralOffsets(win) {
		x, y := mbx+o[0], mby+o[1]
		if x < 0 || y < 0 || x+16 > w || y+16 > h {
			continue
		}
		out = append(out, cand{o[0] + win, o[1] + win, o[1]*w + o[0]})
	}
	return out
}

// sadAt computes the 16x16 SAD between cur at offC and ref at offR (both
// planes width w) — offset arithmetic identical to the generated code.
func sadAt(cur, ref []byte, offC, offR, w int) int64 {
	var s int64
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			d := int64(cur[offC+j*w+i]) - int64(ref[offR+j*w+i])
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}

// bestCandidate runs the golden argmin (strictly-smaller wins, candidate
// order preserved).
func bestCandidate(cur, ref []byte, mbOff, w int, cands []cand) cand {
	best := int64(1) << 62
	var bc cand
	for _, c := range cands {
		s := sadAt(cur, ref, mbOff, mbOff+c.delta, w)
		if s < best {
			best, bc = s, c
		}
	}
	return bc
}

// diffBlock8 computes res = cur - pred over an 8x8 block at off.
func diffBlock8(cur, pred []byte, off, w int, res []int16) {
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			res[8*j+i] = int16(cur[off+j*w+i]) - int16(pred[off+j*w+i])
		}
	}
}

// addBlock8 reconstructs out = sat8(pred + res) over an 8x8 block at off.
func addBlock8(pred []byte, off, w int, res []int16, out []byte) {
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			v := int32(pred[off+j*w+i]) + int32(res[8*j+i])
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out[off+j*w+i] = byte(v)
		}
	}
}

// copyBlock16 / avgBlock16 are the golden compensation primitives.
func copyBlock16(src []byte, srcOff int, dst []byte, dstOff, w int) {
	for j := 0; j < 16; j++ {
		copy(dst[dstOff+j*w:dstOff+j*w+16], src[srcOff+j*w:srcOff+j*w+16])
	}
}

func avgBlock16(a []byte, aOff int, b []byte, bOff int, dst []byte, dstOff, w int) {
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			dst[dstOff+j*w+i] = byte((uint16(a[aOff+j*w+i]) + uint16(b[bOff+j*w+i]) + 1) >> 1)
		}
	}
}

// ---- verification helpers ----

func readBytes(m *emu.Machine, addr uint64, n int) []byte {
	b := m.Mem.Bytes(addr, n)
	out := make([]byte, n)
	copy(out, b)
	return out
}

func readU64(m *emu.Machine, addr uint64) uint64 {
	return binary.LittleEndian.Uint64(m.Mem.Bytes(addr, 8))
}

func compareBytes(what string, got, want []byte) error {
	for i := range want {
		if got[i] != want[i] {
			return mismatchErr(what, i, got[i], want[i])
		}
	}
	return nil
}

func mismatchErr(what string, i int, got, want interface{}) error {
	return fmtErrorf("%s: index %d: got %v, want %v", what, i, got, want)
}

// verifyStream checks the emitted bitstream (length word + bytes).
func verifyStream(m *emu.Machine, p *isa.Program, lenSym, bufSym string, want []byte) error {
	gotLen := readU64(m, p.Sym(lenSym))
	if gotLen != uint64(len(want)) {
		return fmtErrorf("%s: stream length %d, want %d", p.Name, gotLen, len(want))
	}
	got := readBytes(m, p.Sym(bufSym), len(want))
	return compareBytes(p.Name+"/stream", got, want)
}

// fmtErrorf is a tiny indirection keeping the fmt import in one place.
func fmtErrorf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}

// newMachine builds a machine for tests.
func newMachine(p *isa.Program) *emu.Machine { return emu.New(p) }

// ---- half-pel motion refinement (shared by golden and builders) ----

// Half-pel interpolation modes: the prediction is avg(ref@delta,
// ref@delta+moff). Mode 0 (moff 0) is the integer-pel candidate, since
// avg(x,x) = x; modes 1..4 interpolate right/left/down/up.

// hpMoff returns the byte offset of mode m in a plane of width w.
func hpMoff(m, w int) int {
	switch m {
	case 1:
		return 1
	case 2:
		return -1
	case 3:
		return w
	case 4:
		return -w
	}
	return 0
}

// hpModes returns the interpolation modes that are statically safe for the
// macroblock at (mbx, mby) given the integer search radius win: the
// interpolated partner block must stay inside the plane for every integer
// candidate. Mode 0 is always allowed.
func hpModes(w, h, win, mbx, mby int) []int {
	modes := []int{0}
	if mbx-win-1 >= 0 && mbx+16+win+1 <= w {
		modes = append(modes, 1, 2)
	}
	if mby-win-1 >= 0 && mby+16+win+1 <= h {
		modes = append(modes, 3, 4)
	}
	return modes
}

// sadAvgAt is the golden interpolated block distance:
// sum |cur - (refA+refB+1)>>1|.
func sadAvgAt(cur, ref []byte, offC, offA, offB, w int) int64 {
	var s int64
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			p := (int64(ref[offA+j*w+i]) + int64(ref[offB+j*w+i]) + 1) >> 1
			d := int64(cur[offC+j*w+i]) - p
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}
