package apps

import (
	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/media"
)

// The gsm-encode application: preemphasis (a scalar recurrence in every
// ISA — it cannot be vectorised), per-frame short-term prediction
// (autocorrelation, order-2 Yule-Walker solve, analysis filter — scalar),
// long-term-prediction lag search on the short-term residual (the
// vectorised ltpparameters kernel), long-term residual computation, RPE
// subsampling with adaptive 3-bit quantisation, and bit packing.

type gsmCfg struct {
	nFrames int
	seed    uint64
}

func gsmCfgFor(sc Scale) gsmCfg {
	c := gsmCfg{nFrames: 3, seed: 101}
	if sc == ScaleBench {
		c.nFrames = 10
	}
	return c
}

// gsmGains are the Q6 long-term gain levels per gain index.
var gsmGains = [4]int64{7, 22, 42, 64}

type gsmGolden struct {
	pre    []int16
	str    []int16 // short-term residual
	stream []byte
}

func gsmGoldenRun(c gsmCfg) *gsmGolden {
	n := 160 * (c.nFrames + 1)
	sig := media.GenPCM(n, c.seed)
	pre := media.Preemphasis(sig)

	// Short-term prediction per frame (frame 0 is untransmitted history).
	str := make([]int16, n)
	type qc struct{ q1, q2 int }
	stpq := make([]qc, c.nFrames+1)
	for f := 0; f <= c.nFrames; f++ {
		start := 160 * f
		fr := pre[start : start+160]
		a1, a2 := media.STP2(media.AutoCorr(fr, 0), media.AutoCorr(fr, 1), media.AutoCorr(fr, 2))
		q1, q2 := media.QuantSTP(a1), media.QuantSTP(a2)
		stpq[f] = qc{q1, q2}
		media.STPFilterFrame(pre, str, start, 160, media.DequantSTP(q1), media.DequantSTP(q2))
	}

	var bw media.BitWriter
	for f := 0; f < c.nFrames; f++ {
		h := stpq[f+1]
		bw.WriteBits(uint32(h.q1+64), 7)
		bw.WriteBits(uint32(h.q2+64), 7)
		for sf := 0; sf < 4; sf++ {
			pos := 160 + 160*f + 40*sf
			d := str[pos : pos+media.SubframeLen]
			lag, corr := media.LTPParameters(d, str, pos)
			energy := media.Energy40(str, pos, lag)
			gi := media.LTPGainIndex(corr, energy)
			bq := gsmGains[gi]
			var sub [14]int64
			maxmag := int64(0)
			for k := 0; k < 14; k++ {
				i := 3 * k
				e := int64(d[i]) - (bq*int64(str[pos+i-lag]))>>6
				sub[k] = e
				if e < 0 {
					e = -e
				}
				if e > maxmag {
					maxmag = e
				}
			}
			shift := uint(0)
			for (maxmag >> shift) >= 4 {
				shift++
			}
			bw.WriteBits(uint32(lag), 7)
			bw.WriteBits(uint32(gi), 2)
			bw.WriteBits(uint32(shift), 4)
			for k := 0; k < 14; k++ {
				q := sub[k] >> shift
				if q < -4 {
					q = -4
				}
				if q > 3 {
					q = 3
				}
				bw.WriteBits(uint32(q+4), 3)
			}
		}
	}
	return &gsmGolden{pre: pre, str: str, stream: bw.Flush()}
}

// emitPreemphasis appends the scalar preemphasis recurrence over n samples.
func emitPreemphasis(b *asm.Builder, srcAddr, dstAddr int64, n int) {
	sp, dp := isa.R(8), isa.R(9)
	x, prev, t, hi, lo := isa.R(11), isa.R(12), isa.R(13), isa.R(14), isa.R(15)
	ctr := isa.R(16)
	b.MovI(sp, srcAddr)
	b.MovI(dp, dstAddr)
	b.MovI(prev, 0)
	b.MovI(hi, 32767)
	b.MovI(lo, -32768)
	b.Loop(ctr, int64(n), func() {
		b.Ldwu(x, sp, 0)
		b.Op(isa.SEXTW, x, x, isa.Reg{})
		b.MulI(t, prev, 28180)
		b.SraI(t, t, 15)
		b.Sub(t, x, t)
		b.Sub(prev, hi, t) // clamp hi (prev as scratch before reassigning)
		b.Op(isa.CMOVLT, t, prev, hi)
		b.Sub(prev, t, lo)
		b.Op(isa.CMOVLT, t, prev, lo)
		b.Stw(t, dp, 0)
		b.Mov(prev, x)
		b.AddI(sp, sp, 2)
		b.AddI(dp, dp, 2)
	})
}

// emitSat16 clamps v into int16 range using hi/lo constant registers.
func emitSat16(b *asm.Builder, v, t, hi, lo isa.Reg) {
	b.Sub(t, hi, v)
	b.Op(isa.CMOVLT, v, t, hi)
	b.Sub(t, v, lo)
	b.Op(isa.CMOVLT, v, t, lo)
}

// emitSTPFrame appends the short-term analysis of one frame: three
// autocorrelations, the Yule-Walker solve, coefficient quantisation (stored
// as two words at stpqAddr) and the analysis filter into strAddr. start is
// the frame's first sample index (static).
func emitSTPFrame(b *asm.Builder, preAddr, strAddr, stpqAddr int64, start int) {
	ac := [3]isa.Reg{isa.R(4), isa.R(5), isa.R(6)}
	p1, p2, x, y, acc := isa.R(7), isa.R(8), isa.R(9), isa.R(10), isa.R(11)
	ctr, t, t2 := isa.R(12), isa.R(13), isa.R(14)
	a1, a2, hi, lo := isa.R(15), isa.R(16), isa.R(17), isa.R(18)
	sh, den := isa.R(19), isa.R(20)
	b.MovI(hi, 32767)
	b.MovI(lo, -32768)
	// Autocorrelations at lags 0..2 over the 160-sample frame.
	for lag := 0; lag < 3; lag++ {
		b.MovI(p1, preAddr+int64(2*(start+lag)))
		b.MovI(p2, preAddr+int64(2*start))
		b.MovI(acc, 0)
		b.Loop(ctr, int64(160-lag), func() {
			b.Ldwu(x, p1, 0)
			b.Op(isa.SEXTW, x, x, isa.Reg{})
			b.SraI(x, x, 2)
			b.Ldwu(y, p2, 0)
			b.Op(isa.SEXTW, y, y, isa.Reg{})
			b.SraI(y, y, 2)
			b.Mul(x, x, y)
			b.Add(acc, acc, x)
			b.AddI(p1, p1, 2)
			b.AddI(p2, p2, 2)
		})
		b.Mov(ac[lag], acc)
	}
	// Normalise below 2^20: while (ac0 >> sh) >= 2^20 { sh++ }.
	b.MovI(sh, 0)
	b.While(t, func() {
		b.Op(isa.SRA, t2, ac[0], sh)
		b.SrlI(t, t2, 20)
	}, func() {
		b.AddI(sh, sh, 1)
	})
	for i := 0; i < 3; i++ {
		b.Op(isa.SRA, ac[i], ac[i], sh)
	}
	// den = ac0^2 - ac1^2; degenerate frames predict nothing.
	b.Mul(den, ac[0], ac[0])
	b.Mul(t, ac[1], ac[1])
	b.Sub(den, den, t)
	b.MovI(a1, 0)
	b.MovI(a2, 0)
	cond, cond2 := isa.R(21), isa.R(22)
	b.Op(isa.CMPLT, cond, isa.Zero, ac[0]) // 0 < ac0
	b.Op(isa.CMPLT, cond2, isa.Zero, den)  // 0 < den
	b.Op(isa.AND, cond, cond, cond2)
	b.If(cond, func() {
		// a1 = sat16((ac1*(ac0-ac2)) << 15 / den)
		b.Sub(t, ac[0], ac[2])
		b.Mul(t, t, ac[1])
		b.SllI(t, t, 15)
		b.Op(isa.DIVQ, a1, t, den)
		emitSat16(b, a1, t2, hi, lo)
		// a2 = sat16((ac0*ac2 - ac1^2) << 15 / den)
		b.Mul(t, ac[0], ac[2])
		b.Mul(t2, ac[1], ac[1])
		b.Sub(t, t, t2)
		b.SllI(t, t, 15)
		b.Op(isa.DIVQ, a2, t, den)
		emitSat16(b, a2, t2, hi, lo)
	}, nil)
	// Quantise to 7 bits: q = clamp(a >> 9, -64, 63); store; dequantise.
	qp := isa.R(23)
	b.MovI(qp, stpqAddr)
	for i, a := range []isa.Reg{a1, a2} {
		b.SraI(a, a, 9)
		b.AddI(t, a, 64)
		b.OpI(isa.CMOVLT, a, t, -64)
		b.OpI(isa.SUBQ, t, a, 63)
		b.Op(isa.SUBQ, t, isa.Zero, t)
		b.OpI(isa.CMOVLT, a, t, 63)
		b.Stq(a, qp, int64(8*i))
		b.SllI(a, a, 9) // dequantised coefficient for the filter
	}
	// Analysis filter: d[i] = sat16(s[i] - (a1*s[i-1] + a2*s[i-2]) >> 15).
	sp, dp := isa.R(7), isa.R(8)
	filterBody := func(off1, off2 int64, zero1, zero2 bool) {
		b.Ldwu(x, sp, 0)
		b.Op(isa.SEXTW, x, x, isa.Reg{})
		if zero1 {
			b.MovI(t, 0)
		} else {
			b.Ldwu(t, sp, off1)
			b.Op(isa.SEXTW, t, t, isa.Reg{})
			b.Mul(t, t, a1)
		}
		if zero2 {
			b.MovI(t2, 0)
		} else {
			b.Ldwu(t2, sp, off2)
			b.Op(isa.SEXTW, t2, t2, isa.Reg{})
			b.Mul(t2, t2, a2)
		}
		b.Add(t, t, t2)
		b.SraI(t, t, 15)
		b.Sub(x, x, t)
		emitSat16(b, x, t2, hi, lo)
		b.Stw(x, dp, 0)
		b.AddI(sp, sp, 2)
		b.AddI(dp, dp, 2)
	}
	b.MovI(sp, preAddr+int64(2*start))
	b.MovI(dp, strAddr+int64(2*start))
	first := 0
	if start == 0 {
		// The very first samples have no predecessors: unroll them with
		// explicit zeros (the golden filter reads zeros before index 0).
		filterBody(-2, -4, true, true)
		filterBody(-2, -4, false, true)
		first = 2
	}
	b.Loop(ctr, int64(160-first), func() {
		filterBody(-2, -4, false, false)
	})
}

// NewGSMEncode builds the gsm-encode application.
func NewGSMEncode(sc Scale) App { return newGSMEncode(gsmCfgFor(sc)) }

func newGSMEncode(c gsmCfg) App {
	n := 160 * (c.nFrames + 1)
	nSub := 4 * c.nFrames
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New("gsmencode-" + ext.String())
		sig := media.GenPCM(n, c.seed)
		sigA := b.AllocH("sig", sig, 8)
		preA := b.Alloc("pre", 2*n, 8)
		strA := b.Alloc("str", 2*n, 8)
		stpqA := b.Alloc("stpq", 16*(c.nFrames+1), 8)
		b.Alloc("ltpscratch", 16*8, 8)
		b.Alloc("ltpout", 16*nSub, 8)
		b.Alloc("erpe", 8*14, 8)
		streamA := b.Alloc("stream", 32*nSub, 8)
		b.Alloc("bitlen", 8, 8)
		b.AllocQ("gains", []uint64{7, 22, 42, 64}, 8)
		// Subframe task table: address of each subframe in the short-term
		// residual.
		var tasks []uint64
		for f := 0; f < c.nFrames; f++ {
			for sf := 0; sf < 4; sf++ {
				pos := 160 + 160*f + 40*sf
				tasks = append(tasks, strA+uint64(2*pos))
			}
		}
		b.AllocQ("ltptasks", tasks, 8)

		// Phase 1: preemphasis (scalar recurrence).
		emitPreemphasis(b, int64(sigA), int64(preA), n)
		// Phase 2: short-term prediction per frame (scalar).
		for f := 0; f <= c.nFrames; f++ {
			emitSTPFrame(b, int64(preA), int64(strA), int64(stpqA)+int64(16*f), 160*f)
		}
		// Phase 3: LTP lag search on the residual (vectorised kernel).
		kernels.EmitLTPSearch(b, ext, nSub, "ltptasks", "ltpout", "ltpscratch")
		// Phase 4: residual, RPE quantisation and bit packing (scalar).
		emitGSMRPE(b, c.nFrames, int64(stpqA), int64(streamA), int64(b.Sym("bitlen")))
		return b.Build()
	}
	verify := func(p *isa.Program, m *emu.Machine) error {
		g := gsmGoldenRun(c)
		for _, chk := range []struct {
			sym  string
			want []int16
		}{{"pre", g.pre}, {"str", g.str}} {
			got := readBytes(m, p.Sym(chk.sym), 2*n)
			for i, v := range chk.want {
				if gotV := int16(uint16(got[2*i]) | uint16(got[2*i+1])<<8); gotV != v {
					return mismatchErr(p.Name+"/"+chk.sym, i, gotV, v)
				}
			}
		}
		return verifyStream(m, p, "bitlen", "stream", g.stream)
	}
	return App{Name: "gsmencode", Build: build, Verify: verify}
}

// emitGSMRPE appends the scalar residual + RPE + packing phase: per frame,
// the short-term header (two 7-bit coefficients) followed by four
// subframes of lag/gain/shift and 14 3-bit samples.
func emitGSMRPE(b *asm.Builder, nFrames int, stpqAddr, streamAddr, bitlenAddr int64) {
	taskP, outP := isa.R(4), isa.R(5)
	dR, lag, corr, energy := isa.R(6), isa.R(7), isa.R(8), isa.R(9)
	gi, bq, dpB, t, t2 := isa.R(10), isa.R(11), isa.R(12), isa.R(13), isa.R(14)
	maxmag, shift, eP := isa.R(15), isa.R(16), isa.R(17)
	c1, c2 := isa.R(18), isa.R(19)
	ctr := isa.R(26)
	bw := newBitWriter(b)
	bw.init(streamAddr)
	b.MovI(taskP, int64(b.Sym("ltptasks")))
	b.MovI(outP, int64(b.Sym("ltpout")))
	for f := 0; f < nFrames; f++ {
		// Frame header: quantised short-term coefficients (+64, 7 bits).
		hp := isa.R(27)
		b.MovI(hp, stpqAddr+int64(16*(f+1)))
		for i := int64(0); i < 2; i++ {
			b.Ldq(t, hp, 8*i)
			b.AddI(t, t, 64)
			bw.writeImm(t, 7)
		}
		b.Loop(ctr, 4, func() {
			b.Ldq(dR, taskP, 0)
			b.AddI(taskP, taskP, 8)
			b.Ldq(lag, outP, 0)
			b.Ldq(corr, outP, 8)
			b.AddI(outP, outP, 16)
			// dpB = dR - 2*lag (history window base).
			b.SllI(t, lag, 1)
			b.Sub(dpB, dR, t)
			// energy = sum dp[i]^2 over the window.
			b.MovI(energy, 0)
			for i := int64(0); i < media.SubframeLen; i++ {
				b.Ldwu(t, dpB, 2*i)
				b.Op(isa.SEXTW, t, t, isa.Reg{})
				b.Mul(t, t, t)
				b.Add(energy, energy, t)
			}
			// gain index (thresholds on corr*64/energy).
			b.MovI(gi, 0)
			b.Op(isa.CMPLT, c1, isa.Zero, energy) // 0 < energy
			b.Op(isa.CMPLT, c2, isa.Zero, corr)   // 0 < corr
			b.Op(isa.AND, c1, c1, c2)
			b.If(c1, func() {
				b.SllI(t, corr, 6)
				b.Op(isa.DIVQ, t, t, energy)
				b.OpI(isa.SUBQ, t2, t, 13)
				b.OpI(isa.CMOVGE, gi, t2, 1)
				b.OpI(isa.SUBQ, t2, t, 26)
				b.OpI(isa.CMOVGE, gi, t2, 2)
				b.OpI(isa.SUBQ, t2, t, 45)
				b.OpI(isa.CMOVGE, gi, t2, 3)
			}, nil)
			// bq = gains[gi]
			b.SllI(t, gi, 3)
			b.AddI(t, t, int64(b.Sym("gains")))
			b.Ldq(bq, t, 0)
			// Residual at the 14 subsampled positions; track max |e|.
			b.MovI(eP, int64(b.Sym("erpe")))
			b.MovI(maxmag, 0)
			for k := int64(0); k < 14; k++ {
				i := 3 * k
				b.Ldwu(t, dR, 2*i)
				b.Op(isa.SEXTW, t, t, isa.Reg{})
				b.Ldwu(t2, dpB, 2*i)
				b.Op(isa.SEXTW, t2, t2, isa.Reg{})
				b.Mul(t2, t2, bq)
				b.SraI(t2, t2, 6)
				b.Sub(t, t, t2) // e
				b.Stq(t, eP, 8*k)
				b.Op(isa.SUBQ, t2, isa.Zero, t)
				b.Op(isa.CMOVGE, t2, t, t) // t2 = |e|
				b.Sub(t, t2, maxmag)
				b.Op(isa.CMOVGE, maxmag, t, t2)
			}
			// shift = smallest s with (maxmag >> s) < 4.
			b.MovI(shift, 0)
			b.While(c1, func() {
				b.Op(isa.SRA, t, maxmag, shift)
				b.SrlI(c1, t, 2) // t >= 4
			}, func() {
				b.AddI(shift, shift, 1)
			})
			// Pack: lag(7) gain(2) shift(4) then 14 x 3-bit samples.
			bw.writeImm(lag, 7)
			bw.writeImm(gi, 2)
			bw.writeImm(shift, 4)
			b.MovI(eP, int64(b.Sym("erpe")))
			for k := int64(0); k < 14; k++ {
				b.Ldq(t, eP, 8*k)
				b.Op(isa.SRA, t, t, shift)
				// clamp to [-4, 3]
				b.AddI(t2, t, 4)
				b.OpI(isa.CMOVLT, t, t2, -4)
				b.OpI(isa.SUBQ, t2, t, 3)
				b.Op(isa.SUBQ, t2, isa.Zero, t2)
				b.OpI(isa.CMOVLT, t, t2, 3)
				b.AddI(t, t, 4)
				bw.writeImm(t, 3)
			}
		})
	}
	bw.finish(streamAddr, bitlenAddr)
}
