// Package apps implements the five Mediabench applications of the paper's
// program-level study — mpeg2 encode, mpeg2 decode, jpeg encode, jpeg
// decode and gsm encode — as complete simulated programs: the DLP-rich
// kernels are emitted through the per-ISA generators of internal/kernels,
// while control flow, quantisation and entropy coding remain scalar Alpha
// code shared by every ISA level (exactly the paper's methodology). Each
// application is verified bit-exactly against a golden Go implementation of
// the identical pipeline.
package apps

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/media"
)

// ---- bit writer (MSB-first, matches media.BitWriter bit for bit) ----

// bitWriter keeps its state in three dedicated registers for the duration
// of an entropy phase.
type bitWriter struct {
	b              *asm.Builder
	cur, nbit, ptr isa.Reg
}

// newBitWriter binds the writer to registers r20..r22.
func newBitWriter(b *asm.Builder) bitWriter {
	return bitWriter{b: b, cur: isa.R(20), nbit: isa.R(21), ptr: isa.R(22)}
}

func (w bitWriter) init(bufAddr int64) {
	w.b.MovI(w.cur, 0)
	w.b.MovI(w.nbit, 0)
	w.b.MovI(w.ptr, bufAddr)
}

// drain emits the "while nbit >= 8 emit byte" loop.
func (w bitWriter) drain() {
	b := w.b
	cond, byt := isa.R(23), isa.R(24)
	b.While(cond, func() {
		b.SrlI(cond, w.nbit, 3) // nbit >= 8
	}, func() {
		b.AddI(w.nbit, w.nbit, -8)
		b.Op(isa.SRL, byt, w.cur, w.nbit)
		b.Stb(byt, w.ptr, 0)
		b.AddI(w.ptr, w.ptr, 1)
	})
}

// writeImm writes the low n bits of v (n a build-time constant).
func (w bitWriter) writeImm(v isa.Reg, n int64) {
	b := w.b
	t := isa.R(25)
	b.SllI(w.cur, w.cur, n)
	b.AndI(t, v, (1<<n)-1)
	b.Op(isa.OR, w.cur, w.cur, t)
	b.AddI(w.nbit, w.nbit, n)
	w.drain()
}

// writeConst writes an n-bit constant.
func (w bitWriter) writeConst(v, n int64) {
	t := isa.R(24)
	w.b.MovI(t, v)
	w.writeImm(t, n)
}

// writeReg writes the low n bits of v (n in a register, 1..32).
func (w bitWriter) writeReg(v, n isa.Reg) {
	b := w.b
	t, mask, one := isa.R(25), isa.R(26), isa.R(27)
	b.Op(isa.SLL, w.cur, w.cur, n)
	b.MovI(one, 1)
	b.Op(isa.SLL, mask, one, n)
	b.AddI(mask, mask, -1)
	b.Op(isa.AND, t, v, mask)
	b.Op(isa.OR, w.cur, w.cur, t)
	b.Add(w.nbit, w.nbit, n)
	w.drain()
}

// save spills the writer state to three words at addr (other phases are
// free to clobber its registers between entropy phases).
func (w bitWriter) save(addr int64) {
	t := isa.R(23)
	w.b.MovI(t, addr)
	w.b.Stq(w.cur, t, 0)
	w.b.Stq(w.nbit, t, 8)
	w.b.Stq(w.ptr, t, 16)
}

// load restores the writer state from addr.
func (w bitWriter) load(addr int64) {
	t := isa.R(23)
	w.b.MovI(t, addr)
	w.b.Ldq(w.cur, t, 0)
	w.b.Ldq(w.nbit, t, 8)
	w.b.Ldq(w.ptr, t, 16)
}

// finish pads the last byte and stores the stream length (bytes) at lenAddr.
func (w bitWriter) finish(bufAddr, lenAddr int64) {
	b := w.b
	t, byt := isa.R(25), isa.R(24)
	b.If(w.nbit, func() {
		b.MovI(t, 8)
		b.Sub(t, t, w.nbit)
		b.Op(isa.SLL, byt, w.cur, t)
		b.Stb(byt, w.ptr, 0)
		b.AddI(w.ptr, w.ptr, 1)
	}, nil)
	b.MovI(t, bufAddr)
	b.Sub(t, w.ptr, t)
	b.MovI(byt, lenAddr)
	b.Stq(t, byt, 0)
}

// ---- bit reader (matches media.BitReader) ----

type bitReader struct {
	b              *asm.Builder
	cur, nbit, ptr isa.Reg
}

func newBitReader(b *asm.Builder) bitReader {
	return bitReader{b: b, cur: isa.R(20), nbit: isa.R(21), ptr: isa.R(22)}
}

func (r bitReader) init(bufAddr int64) {
	r.b.MovI(r.cur, 0)
	r.b.MovI(r.nbit, 0)
	r.b.MovI(r.ptr, bufAddr)
}

// save / load spill and restore the reader state around other phases.
func (r bitReader) save(addr int64) {
	t := isa.R(23)
	r.b.MovI(t, addr)
	r.b.Stq(r.cur, t, 0)
	r.b.Stq(r.nbit, t, 8)
	r.b.Stq(r.ptr, t, 16)
}

func (r bitReader) load(addr int64) {
	t := isa.R(23)
	r.b.MovI(t, addr)
	r.b.Ldq(r.cur, t, 0)
	r.b.Ldq(r.nbit, t, 8)
	r.b.Ldq(r.ptr, t, 16)
}

// readImm reads n bits (constant n) into out.
func (r bitReader) readImm(out isa.Reg, n int64) {
	b := r.b
	cond, byt := isa.R(23), isa.R(24)
	b.While(cond, func() {
		// nbit < n ?
		b.OpI(isa.CMPLT, cond, r.nbit, n)
	}, func() {
		b.SllI(r.cur, r.cur, 8)
		b.Ldbu(byt, r.ptr, 0)
		b.Op(isa.OR, r.cur, r.cur, byt)
		b.AddI(r.ptr, r.ptr, 1)
		b.AddI(r.nbit, r.nbit, 8)
	})
	b.AddI(r.nbit, r.nbit, -n)
	b.Op(isa.SRL, out, r.cur, r.nbit)
	b.AndI(out, out, (1<<n)-1)
}

// readReg reads n bits (register n) into out.
func (r bitReader) readReg(out, n isa.Reg) {
	b := r.b
	cond, byt, mask, one := isa.R(23), isa.R(24), isa.R(26), isa.R(27)
	b.While(cond, func() {
		b.Sub(cond, r.nbit, n)
		b.OpI(isa.CMPLT, cond, cond, 0)
	}, func() {
		b.SllI(r.cur, r.cur, 8)
		b.Ldbu(byt, r.ptr, 0)
		b.Op(isa.OR, r.cur, r.cur, byt)
		b.AddI(r.ptr, r.ptr, 1)
		b.AddI(r.nbit, r.nbit, 8)
	})
	b.Sub(r.nbit, r.nbit, n)
	b.Op(isa.SRL, out, r.cur, r.nbit)
	b.MovI(one, 1)
	b.Op(isa.SLL, mask, one, n)
	b.AddI(mask, mask, -1)
	b.Op(isa.AND, out, out, mask)
}

// ---- quantisation phases (scalar; shared by all ISA levels) ----

// emitQuantPhase quantises nb contiguous blocks in place at coefAddr with
// the reciprocal-multiply semantics of media.QuantizeCoef.
func emitQuantPhase(b *asm.Builder, coefAddr int64, nb int, scale int32) {
	blkP, bc := isa.R(8), isa.R(9)
	x, nx, v, nv := isa.R(11), isa.R(12), isa.R(13), isa.R(14)
	b.MovI(blkP, coefAddr)
	b.Loop(bc, int64(nb), func() {
		for i := 0; i < 64; i++ {
			step := media.ScaledStep(i, scale)
			recip := media.Recip(step)
			b.Ldwu(x, blkP, int64(2*i))
			b.Op(isa.SEXTW, x, x, isa.Reg{})
			b.Op(isa.SUBQ, nx, isa.Zero, x)
			b.Mov(v, x)
			b.Op(isa.CMOVLT, v, x, nx) // v = |x|
			b.AddI(v, v, int64(step/2))
			b.MulI(v, v, int64(recip))
			b.SraI(v, v, 16)
			b.Op(isa.SUBQ, nv, isa.Zero, v)
			b.Op(isa.CMOVLT, v, x, nv) // restore sign of x
			b.Stw(v, blkP, int64(2*i))
		}
		b.AddI(blkP, blkP, 128)
	})
}

// emitDequantPhase inverts emitQuantPhase (media.DequantizeCoef semantics).
func emitDequantPhase(b *asm.Builder, coefAddr int64, nb int, scale int32) {
	blkP, bc := isa.R(8), isa.R(9)
	x, t, hi, lo := isa.R(11), isa.R(12), isa.R(13), isa.R(14)
	b.MovI(blkP, coefAddr)
	b.MovI(hi, 32767)
	b.MovI(lo, -32768)
	b.Loop(bc, int64(nb), func() {
		for i := 0; i < 64; i++ {
			step := media.ScaledStep(i, scale)
			b.Ldwu(x, blkP, int64(2*i))
			b.Op(isa.SEXTW, x, x, isa.Reg{})
			b.MulI(x, x, int64(step))
			b.Sub(t, hi, x)
			b.Op(isa.CMOVLT, x, t, hi)
			b.Sub(t, x, lo)
			b.Op(isa.CMOVLT, x, t, lo)
			b.Stw(x, blkP, int64(2*i))
		}
		b.AddI(blkP, blkP, 128)
	})
}

// ensureZigzag allocates the zig-zag byte-offset table (2*ZigZag[pos]).
func ensureZigzag(b *asm.Builder) {
	offs := make([]int16, 64)
	for pos, zz := range media.ZigZag {
		offs[pos] = int16(2 * zz)
	}
	b.AllocH("zigzag", offs, 8)
}

// emitRLEEncodeBlocks entropy-encodes nb blocks at coefAddr through the
// bit writer (media.RLEEncodeBlock format).
func emitRLEEncodeBlocks(b *asm.Builder, w bitWriter, coefAddr int64, nb int) {
	blkP, bc := isa.R(8), isa.R(9)
	run, pos, zzP := isa.R(10), isa.R(11), isa.R(12)
	off, v, t := isa.R(13), isa.R(14), isa.R(15)
	mag, size, sign := isa.R(16), isa.R(17), isa.R(18)
	cond := isa.R(19)
	b.MovI(blkP, coefAddr)
	b.Loop(bc, int64(nb), func() {
		b.MovI(run, 0)
		b.MovI(zzP, int64(b.Sym("zigzag")))
		b.LoopVar(isa.R(28), pos, 0, 1, 64, func() {
			b.Ldwu(off, zzP, 0)
			b.AddI(zzP, zzP, 2)
			b.Add(t, blkP, off)
			b.Ldwu(v, t, 0)
			b.Op(isa.SEXTW, v, v, isa.Reg{})
			b.If(v, func() {
				// nonzero: emit run + signed value
				w.writeImm(run, 6)
				b.MovI(run, 0)
				// writeSigned(v)
				b.Op(isa.SUBQ, mag, isa.Zero, v)
				b.Op(isa.CMOVGE, mag, v, v) // mag = |v|
				b.OpI(isa.CMPLT, sign, v, 0)
				b.MovI(size, 0)
				b.Mov(t, mag)
				b.While(cond, func() {
					b.Mov(cond, t)
				}, func() {
					b.SraI(t, t, 1)
					b.AddI(size, size, 1)
				})
				w.writeImm(size, 4)
				w.writeImm(sign, 1)
				w.writeReg(mag, size)
			}, func() {
				b.AddI(run, run, 1)
			})
		})
		w.writeConst(63, 6)
		b.AddI(blkP, blkP, 128)
	})
}

// emitRLEDecodeBlocks decodes nb blocks into coefAddr (zeroed first).
func emitRLEDecodeBlocks(b *asm.Builder, r bitReader, coefAddr int64, nb int) {
	blkP, bc := isa.R(8), isa.R(9)
	run, pos, t := isa.R(10), isa.R(11), isa.R(12)
	v, mag, size, sign := isa.R(13), isa.R(14), isa.R(15), isa.R(16)
	done, cond := isa.R(17), isa.R(18)
	b.MovI(blkP, coefAddr)
	b.Loop(bc, int64(nb), func() {
		for i := int64(0); i < 128; i += 8 {
			b.Stq(isa.Zero, blkP, i)
		}
		b.MovI(pos, 0)
		b.MovI(done, 0)
		b.While(cond, func() {
			// while !done && pos < 64
			b.OpI(isa.CMPLT, cond, pos, 64)
			b.OpI(isa.CMPEQ, t, done, 0)
			b.Op(isa.AND, cond, cond, t)
		}, func() {
			r.readImm(run, 6)
			b.OpI(isa.CMPEQ, t, run, 63)
			b.If(t, func() {
				b.MovI(done, 1)
			}, func() {
				b.Add(pos, pos, run)
				// readSigned -> v
				r.readImm(size, 4)
				b.If(size, func() {
					r.readImm(sign, 1)
					r.readReg(mag, size)
					b.Op(isa.SUBQ, v, isa.Zero, mag)
					b.Op(isa.CMOVEQ, v, sign, mag) // sign==0 -> +mag
				}, func() {
					b.MovI(v, 0)
				})
				// blk[zigzag[pos]] = v; pos++
				b.OpI(isa.CMPLT, t, pos, 64)
				b.If(t, func() {
					b.SllI(t, pos, 1)
					b.AddI(t, t, int64(b.Sym("zigzag")))
					b.Ldwu(t, t, 0)
					b.Add(t, blkP, t)
					b.Stw(v, t, 0)
					b.AddI(pos, pos, 1)
				}, nil)
			})
		})
		// A block that filled all 64 positions exits the loop before
		// consuming its terminating sentinel; mirror the golden decoder.
		b.OpI(isa.CMPEQ, t, done, 0)
		b.If(t, func() { r.readImm(run, 6) }, nil)
		b.AddI(blkP, blkP, 128)
	})
}

// ---- canonical Huffman entropy coding (jpeg applications) ----

// ensureHuffTables embeds the shared canonical code book as program data.
func ensureHuffTables(b *asm.Builder) {
	t := media.JPEGACTable
	codes := make([]int32, len(t.Code))
	for i, c := range t.Code {
		codes[i] = int32(c)
	}
	b.AllocW("huff.code", codes, 8)
	lens := make([]byte, len(t.Len))
	copy(lens, t.Len)
	b.AllocBytes("huff.len", lens, 8)
	first := make([]uint64, media.MaxHuffLen+1)
	count := make([]uint64, media.MaxHuffLen+1)
	offset := make([]uint64, media.MaxHuffLen+1)
	for l := 0; l <= media.MaxHuffLen; l++ {
		first[l] = uint64(int64(t.First[l]))
		count[l] = uint64(int64(t.Count[l]))
		offset[l] = uint64(int64(t.Offset[l]))
	}
	b.AllocQ("huff.first", first, 8)
	b.AllocQ("huff.count", count, 8)
	b.AllocQ("huff.offset", offset, 8)
	syms := make([]int16, len(t.Syms))
	for i, s := range t.Syms {
		syms[i] = int16(s)
	}
	b.AllocH("huff.syms", syms, 8)
}

// huffEmitSym writes the code for a build-time-constant symbol.
func huffEmitSym(b *asm.Builder, w bitWriter, sym int) {
	t := media.JPEGACTable
	w.writeConst(int64(t.Code[sym]), int64(t.Len[sym]))
}

// emitHuffEncodeBlocks entropy-codes nb blocks at coefAddr with the
// canonical table (media.HuffEncodeBlock format).
func emitHuffEncodeBlocks(b *asm.Builder, w bitWriter, coefAddr int64, nb int) {
	blkP, bc := isa.R(8), isa.R(9)
	run, pos, zzP := isa.R(10), isa.R(11), isa.R(12)
	v, mag, size := isa.R(13), isa.R(14), isa.R(15)
	t, sym, cond := isa.R(16), isa.R(17), isa.R(18)
	codeR, lenR := isa.R(19), isa.R(4)
	b.MovI(blkP, coefAddr)
	b.Loop(bc, int64(nb), func() {
		b.MovI(run, 0)
		b.MovI(zzP, int64(b.Sym("zigzag")))
		b.LoopVar(isa.R(28), pos, 0, 1, 64, func() {
			b.Ldwu(t, zzP, 0)
			b.AddI(zzP, zzP, 2)
			b.Add(t, blkP, t)
			b.Ldwu(v, t, 0)
			b.Op(isa.SEXTW, v, v, isa.Reg{})
			b.If(v, func() {
				// Flush 16-zero runs as ZRL.
				b.While(cond, func() {
					b.SrlI(cond, run, 4) // run >= 16
				}, func() {
					huffEmitSym(b, w, 0xF0)
					b.AddI(run, run, -16)
				})
				// Magnitude category.
				b.Op(isa.SUBQ, mag, isa.Zero, v)
				b.Op(isa.CMOVGE, mag, v, v) // mag = |v|
				b.MovI(size, 0)
				b.Mov(t, mag)
				b.While(cond, func() {
					b.Mov(cond, t)
				}, func() {
					b.SrlI(t, t, 1)
					b.AddI(size, size, 1)
				})
				// Symbol code lookup.
				b.SllI(sym, run, 4)
				b.Op(isa.OR, sym, sym, size)
				b.SllI(t, sym, 2)
				b.AddI(t, t, int64(b.Sym("huff.code")))
				b.Ldl(codeR, t, 0)
				b.AddI(t, sym, int64(b.Sym("huff.len")))
				b.Ldbu(lenR, t, 0)
				w.writeReg(codeR, lenR)
				// Magnitude bits: v >= 0 -> mag; v < 0 -> v + 2^size - 1
				// (= (2^size - 1) - mag).
				b.MovI(t, 1)
				b.Op(isa.SLL, t, t, size)
				b.AddI(t, t, -1)
				b.Sub(t, t, mag)
				b.Op(isa.CMOVGE, t, v, mag) // positive: bits = mag
				w.writeReg(t, size)
				b.MovI(run, 0)
			}, func() {
				b.AddI(run, run, 1)
			})
		})
		huffEmitSym(b, w, 0x00) // EOB
		b.AddI(blkP, blkP, 128)
	})
}

// emitHuffDecodeSym decodes one canonical symbol into symR.
// Clobbers r4..r7, r14..r19 and the reader scratch registers.
func emitHuffDecodeSym(b *asm.Builder, r bitReader, symR isa.Reg) {
	code, l, found := isa.R(14), isa.R(15), isa.R(16)
	cnt, fst, t := isa.R(17), isa.R(18), isa.R(19)
	t2, c1, c2, bit := isa.R(4), isa.R(5), isa.R(6), isa.R(7)
	b.MovI(code, 0)
	b.MovI(l, 0)
	b.MovI(found, 0)
	b.MovI(symR, 0) // malformed streams decode as EOB
	b.While(c1, func() {
		// while !found && l < MaxHuffLen
		b.OpI(isa.CMPEQ, c1, found, 0)
		b.OpI(isa.CMPLT, c2, l, media.MaxHuffLen)
		b.Op(isa.AND, c1, c1, c2)
	}, func() {
		r.readImm(bit, 1)
		b.SllI(code, code, 1)
		b.Op(isa.OR, code, code, bit)
		b.AddI(l, l, 1)
		b.SllI(t, l, 3)
		b.AddI(t2, t, int64(b.Sym("huff.count")))
		b.Ldq(cnt, t2, 0)
		b.AddI(t2, t, int64(b.Sym("huff.first")))
		b.Ldq(fst, t2, 0)
		b.Sub(t, code, fst) // candidate index within this length
		b.Op(isa.CMPLE, c1, isa.Zero, t)
		b.Sub(t2, t, cnt)
		b.OpI(isa.CMPLT, c2, t2, 0)
		b.Op(isa.AND, c1, c1, c2)
		b.Op(isa.CMPLT, c2, isa.Zero, cnt)
		b.Op(isa.AND, c1, c1, c2)
		b.If(c1, func() {
			b.SllI(t2, l, 3)
			b.AddI(t2, t2, int64(b.Sym("huff.offset")))
			b.Ldq(t2, t2, 0)
			b.Add(t2, t2, t)
			b.SllI(t2, t2, 1)
			b.AddI(t2, t2, int64(b.Sym("huff.syms")))
			b.Ldwu(symR, t2, 0)
			b.MovI(found, 1)
		}, nil)
	})
}

// emitHuffDecodeBlocks decodes nb blocks into coefAddr.
func emitHuffDecodeBlocks(b *asm.Builder, r bitReader, coefAddr int64, nb int) {
	blkP, bc := isa.R(8), isa.R(9)
	pos, sym := isa.R(10), isa.R(11)
	run, size, bits, v := isa.R(12), isa.R(13), isa.R(18), isa.R(28)
	t, done, cond := isa.R(19), isa.R(25), isa.R(5)
	b.MovI(blkP, coefAddr)
	b.Loop(bc, int64(nb), func() {
		for i := int64(0); i < 128; i += 8 {
			b.Stq(isa.Zero, blkP, i)
		}
		b.MovI(pos, 0)
		b.MovI(done, 0)
		b.While(cond, func() {
			b.OpI(isa.CMPLT, cond, pos, 64)
			b.OpI(isa.CMPEQ, t, done, 0)
			b.Op(isa.AND, cond, cond, t)
		}, func() {
			emitHuffDecodeSym(b, r, sym)
			b.If(sym, func() {
				b.OpI(isa.CMPEQ, t, sym, 0xF0)
				b.If(t, func() {
					b.AddI(pos, pos, 16) // ZRL
				}, func() {
					b.SrlI(run, sym, 4)
					b.AndI(size, sym, 0xF)
					b.Add(pos, pos, run)
					r.readReg(bits, size)
					// magValue: bits < 2^(size-1) -> bits - 2^size + 1.
					b.MovI(t, 1)
					b.Op(isa.SLL, t, t, size)
					b.Sub(v, bits, t)
					b.AddI(v, v, 1)   // negative branch value
					b.SraI(t, t, 1)   // 2^(size-1)
					b.Sub(t, bits, t) // >= 0 -> positive branch
					b.Op(isa.CMOVGE, v, t, bits)
					b.OpI(isa.CMPLT, t, pos, 64)
					b.If(t, func() {
						b.SllI(t, pos, 1)
						b.AddI(t, t, int64(b.Sym("zigzag")))
						b.Ldwu(t, t, 0)
						b.Add(t, blkP, t)
						b.Stw(v, t, 0)
						b.AddI(pos, pos, 1)
					}, nil)
				})
			}, func() {
				b.MovI(done, 1) // EOB
			})
		})
		// A full block still carries its EOB.
		b.OpI(isa.CMPEQ, t, done, 0)
		b.If(t, func() { emitHuffDecodeSym(b, r, sym) }, nil)
		b.AddI(blkP, blkP, 128)
	})
}
