package apps

import (
	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/media"
)

// The jpeg applications code a planar RGB image: forward/inverse colour
// conversion, 4:2:0 chroma subsampling (encode) and h2v2 fancy upsampling
// (decode), level shift, FDCT/IDCT, quantisation and canonical-Huffman
// run/size entropy coding (JPEG's AC model). Colour conversion, DCTs, reconstruction and upsampling are
// vectorised per ISA; downsampling, quantisation and entropy stay scalar.

type jpegCfg struct {
	w, h  int
	scale int32
	seed  uint64
}

func jpegCfgFor(sc Scale) jpegCfg {
	c := jpegCfg{w: 32, h: 32, scale: 100, seed: 91}
	if sc == ScaleBench {
		c.w, c.h = 64, 64
	}
	return c
}

type jpegGolden struct {
	r, g, b    []byte // original planes
	y          []byte // full-res luma
	cbD, crD   []byte // downsampled chroma
	stream     []byte
	yRec       []byte // decoder outputs
	cbRecD     []byte // reconstructed downsampled chroma
	crRecD     []byte
	cbRec      []byte // upsampled reconstructed chroma
	crRec      []byte
	rRec, gRec []byte
	bRec       []byte
}

// jpegGoldenRun executes the full encode+decode pipeline natively.
func jpegGoldenRun(c jpegCfg) *jpegGolden {
	g := &jpegGolden{}
	rp, gp, bp := media.GenRGB(c.w, c.h, c.seed)
	g.r, g.g, g.b = rp.Pix, gp.Pix, bp.Pix
	yp, cbp, crp := media.RGB2YCCPlanes(rp, gp, bp)
	g.y = yp.Pix
	cbD := media.Downsample2x2(cbp)
	crD := media.Downsample2x2(crp)
	g.cbD, g.crD = cbD.Pix, crD.Pix

	cw, ch := c.w/2, c.h/2
	gray := func(n int) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = 128
		}
		return p
	}

	// Encode: per plane, diff vs 128, FDCT, quant; single RLE pass over all
	// blocks in (Y, Cb, Cr) order.
	type planeJob struct {
		pix  []byte
		w, h int
	}
	jobs := []planeJob{{g.y, c.w, c.h}, {g.cbD, cw, ch}, {g.crD, cw, ch}}
	var all [][64]int16
	var jobBlocks [][]int
	for _, j := range jobs {
		blocks := blockOffsets(j.w, j.h, 8)
		jobBlocks = append(jobBlocks, blocks)
		gr := gray(j.w * j.h)
		for _, off := range blocks {
			var res [64]int16
			diffBlock8(j.pix, gr, off, j.w, res[:])
			media.FDCT8x8(&res)
			media.QuantizeBlock(&res, c.scale)
			all = append(all, res)
		}
	}
	var bw media.BitWriter
	for bi := range all {
		media.HuffEncodeBlock(&bw, &all[bi])
	}
	g.stream = bw.Flush()

	// Decode: dequant, IDCT, reconstruct planes, upsample, inverse colour.
	br := media.NewBitReader(g.stream)
	recPlanes := make([][]byte, 3)
	for ji, j := range jobs {
		rec := make([]byte, j.w*j.h)
		gr := gray(j.w * j.h)
		for _, off := range jobBlocks[ji] {
			var res [64]int16
			media.HuffDecodeBlock(br, &res)
			media.DequantizeBlock(&res, c.scale)
			media.IDCT8x8(&res)
			addBlock8(gr, off, j.w, res[:], rec)
		}
		recPlanes[ji] = rec
	}
	g.yRec = recPlanes[0]
	g.cbRecD, g.crRecD = recPlanes[1], recPlanes[2]
	cbRecD := &media.Plane{W: cw, H: ch, Stride: cw, Pix: recPlanes[1]}
	crRecD := &media.Plane{W: cw, H: ch, Stride: cw, Pix: recPlanes[2]}
	g.cbRec = media.H2V2Upsample(cbRecD).Pix
	g.crRec = media.H2V2Upsample(crRecD).Pix
	n := c.w * c.h
	g.rRec = make([]byte, n)
	g.gRec = make([]byte, n)
	g.bRec = make([]byte, n)
	for i := 0; i < n; i++ {
		g.rRec[i], g.gRec[i], g.bRec[i] = media.YCC2RGB(g.yRec[i], g.cbRec[i], g.crRec[i])
	}
	return g
}

// jpegBlockCount returns (yBlocks, chromaBlocks per plane).
func jpegBlockCount(c jpegCfg) (int, int) {
	return (c.w / 8) * (c.h / 8), (c.w / 16) * (c.h / 16)
}

// emitDownsample2x2 appends the scalar 2x2 averaging downsample.
func emitDownsample2x2(b *asm.Builder, srcAddr, dstAddr int64, w, h int) {
	sp, dp := isa.R(8), isa.R(9)
	a0, a1, a2, a3 := isa.R(11), isa.R(12), isa.R(13), isa.R(14)
	i, ic, j, jc := isa.R(15), isa.R(16), isa.R(17), isa.R(18)
	b.MovI(dp, dstAddr)
	b.LoopVar(jc, j, 0, 1, int64(h/2), func() {
		b.MulI(sp, j, int64(2*w))
		b.AddI(sp, sp, srcAddr)
		b.LoopVar(ic, i, 0, 1, int64(w/2), func() {
			b.Ldbu(a0, sp, 0)
			b.Ldbu(a1, sp, 1)
			b.Ldbu(a2, sp, int64(w))
			b.Ldbu(a3, sp, int64(w)+1)
			b.Add(a0, a0, a1)
			b.Add(a0, a0, a2)
			b.Add(a0, a0, a3)
			b.AddI(a0, a0, 2)
			b.SrlI(a0, a0, 2)
			b.Stb(a0, dp, 0)
			b.AddI(sp, sp, 2)
			b.AddI(dp, dp, 1)
		})
	})
}

// jpegAllocCommon allocates data shared by encoder and decoder programs.
// Returns the residual block region base and total block count.
func jpegAllocCommon(b *asm.Builder, c jpegCfg) (resAddr uint64, totalBlocks int) {
	yb, cb := jpegBlockCount(c)
	totalBlocks = yb + 2*cb
	gray := make([]byte, c.w*c.h)
	for i := range gray {
		gray[i] = 128
	}
	b.AllocBytes("gray", gray, 8)
	resAddr = b.Alloc("res", 128*totalBlocks, 8)
	b.Alloc("bwstate", 24, 8)
	ensureZigzag(b)
	ensureHuffTables(b)
	kernels.EnsureClipTab(b)
	kernels.EnsureDCT(b)
	return
}

// jpegDiffAddTables builds the 3-address task tables for the three planes.
// kind is "dt" (cur-gray -> res) or "at" (gray+res -> out).
func jpegDiffAddTables(b *asm.Builder, c jpegCfg, kind string, planeAddrs []uint64, outAddrs []uint64, resAddr uint64) {
	cw, ch := c.w/2, c.h/2
	dims := [][2]int{{c.w, c.h}, {cw, ch}, {cw, ch}}
	gray := b.Sym("gray")
	bi := 0
	for pi, d := range dims {
		blocks := blockOffsets(d[0], d[1], 8)
		rows := make([][3]uint64, len(blocks))
		for k, off := range blocks {
			r := resAddr + uint64(128*(bi+k))
			if kind == "dt" {
				rows[k] = [3]uint64{planeAddrs[pi] + uint64(off), gray + uint64(off), r}
			} else {
				rows[k] = [3]uint64{gray + uint64(off), r, outAddrs[pi] + uint64(off)}
			}
		}
		alloc3Tasks(b, kind+".jpeg."+[]string{"y", "cb", "cr"}[pi], rows)
		bi += len(blocks)
	}
}

// NewJPEGEncode builds the jpeg-encode application.
func NewJPEGEncode(sc Scale) App { return newJPEGEncode(jpegCfgFor(sc)) }

func newJPEGEncode(c jpegCfg) App {
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New("jpegencode-" + ext.String())
		rp, gp, blp := media.GenRGB(c.w, c.h, c.seed)
		n := c.w * c.h
		// Input planes in the layout EmitRGB2YCC expects (r,g,b,bias).
		b.AllocBytes("r", rp.Pix, 8)
		b.AllocBytes("g", gp.Pix, 8)
		b.AllocBytes("b", blp.Pix, 8)
		biasPlane := make([]byte, n)
		for i := range biasPlane {
			biasPlane[i] = media.BiasVal
		}
		b.AllocBytes("bias", biasPlane, 8)
		yA := b.Alloc("y", n, 8)
		cbA := b.Alloc("cb", n, 8)
		crA := b.Alloc("cr", n, 8)
		cw, ch := c.w/2, c.h/2
		cbD := b.Alloc("cbd", cw*ch, 8)
		crD := b.Alloc("crd", cw*ch, 8)
		resAddr, total := jpegAllocCommon(b, c)
		streamA := b.Alloc("stream", n*8, 8)
		b.Alloc("bitlen", 8, 8)
		jpegDiffAddTables(b, c, "dt", []uint64{yA, cbD, crD}, nil, resAddr)

		// Phase 1: colour conversion (vectorised).
		kernels.EmitRGB2YCC(b, ext, n)
		// Phase 2: chroma downsample (scalar).
		emitDownsample2x2(b, int64(cbA), int64(cbD), c.w, c.h)
		emitDownsample2x2(b, int64(crA), int64(crD), c.w, c.h)
		// Phase 3: level shift (diff vs gray) per plane.
		yb, cbn := jpegBlockCount(c)
		for pi, tbl := range []string{"dt.jpeg.y", "dt.jpeg.cb", "dt.jpeg.cr"} {
			pw := c.w
			if pi > 0 {
				pw = cw
			}
			nb := yb
			if pi > 0 {
				nb = cbn
			}
			emitBlockPhase3(b, tbl, nb, func(a0, a1, a2 isa.Reg) {
				kernels.EmitDiffBlock8(b, ext, pw, a0, a1, a2)
			})
		}
		// Phase 4: forward DCT over all blocks.
		kernels.EmitFDCTBatch(b, ext, int64(resAddr), int64(resAddr), total)
		// Phase 5: quantise; Phase 6: entropy code.
		emitQuantPhase(b, int64(resAddr), total, c.scale)
		bw := newBitWriter(b)
		bw.init(int64(streamA))
		emitHuffEncodeBlocks(b, bw, int64(resAddr), total)
		bw.finish(int64(streamA), int64(b.Sym("bitlen")))
		return b.Build()
	}
	verify := func(p *isa.Program, m *emu.Machine) error {
		g := jpegGoldenRun(c)
		if err := verifyStream(m, p, "bitlen", "stream", g.stream); err != nil {
			return err
		}
		for _, chk := range []struct {
			sym  string
			want []byte
		}{{"y", g.y}, {"cbd", g.cbD}, {"crd", g.crD}} {
			got := readBytes(m, p.Sym(chk.sym), len(chk.want))
			if err := compareBytes(p.Name+"/"+chk.sym, got, chk.want); err != nil {
				return err
			}
		}
		return nil
	}
	return App{Name: "jpegencode", Build: build, Verify: verify}
}

// NewJPEGDecode builds the jpeg-decode application (input: the golden
// encoder's bitstream).
func NewJPEGDecode(sc Scale) App { return newJPEGDecode(jpegCfgFor(sc)) }

func newJPEGDecode(c jpegCfg) App {
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New("jpegdecode-" + ext.String())
		g := jpegGoldenRun(c)
		streamA := b.AllocBytes("stream", g.stream, 8)
		n := c.w * c.h
		cw, ch := c.w/2, c.h/2
		yRec := b.Alloc("yrec", n, 8)
		cbRecD := b.Alloc("cbrecd", cw*ch, 8)
		crRecD := b.Alloc("crrecd", cw*ch, 8)
		b.Alloc("cbrec", n, 8)
		b.Alloc("crrec", n, 8)
		b.Alloc("rout", n, 8)
		b.Alloc("gout", n, 8)
		b.Alloc("bout", n, 8)
		b.Alloc("uptmp", 2*ch*cw*2, 8) // h2v2 scratch: 2*ch rows of cw int16
		resAddr, total := jpegAllocCommon(b, c)
		jpegDiffAddTables(b, c, "at", nil, []uint64{yRec, cbRecD, crRecD}, resAddr)

		// Phase 1: entropy decode + dequant (scalar).
		br := newBitReader(b)
		br.init(int64(streamA))
		emitHuffDecodeBlocks(b, br, int64(resAddr), total)
		emitDequantPhase(b, int64(resAddr), total, c.scale)
		// Phase 2: inverse DCT (vectorised).
		kernels.EmitIDCTBatch(b, ext, int64(resAddr), int64(resAddr), total)
		// Phase 3: reconstruction (addblock vs gray) per plane.
		yb, cbn := jpegBlockCount(c)
		for pi, tbl := range []string{"at.jpeg.y", "at.jpeg.cb", "at.jpeg.cr"} {
			pw := c.w
			nb := yb
			if pi > 0 {
				pw = cw
				nb = cbn
			}
			emitBlockPhase3(b, tbl, nb, func(a0, a1, a2 isa.Reg) {
				kernels.EmitAddBlock8(b, ext, pw, a0, a1, a2)
			})
		}
		// Phase 4: chroma upsample (vectorised).
		kernels.EmitH2V2(b, ext, cw, ch, "cbrecd", "uptmp", "cbrec")
		kernels.EmitH2V2(b, ext, cw, ch, "crrecd", "uptmp", "crrec")
		// Phase 5: inverse colour conversion (vectorised).
		kernels.EmitYCC2RGB(b, ext, n, "yrec", "cbrec", "crrec", "rout", "gout", "bout")
		return b.Build()
	}
	verify := func(p *isa.Program, m *emu.Machine) error {
		g := jpegGoldenRun(c)
		for _, chk := range []struct {
			sym  string
			want []byte
		}{
			{"yrec", g.yRec}, {"cbrecd", g.cbRecD}, {"crrecd", g.crRecD},
			{"cbrec", g.cbRec}, {"crrec", g.crRec},
			{"rout", g.rRec}, {"gout", g.gRec}, {"bout", g.bRec},
		} {
			got := readBytes(m, p.Sym(chk.sym), len(chk.want))
			if err := compareBytes(p.Name+"/"+chk.sym, got, chk.want); err != nil {
				return err
			}
		}
		return nil
	}
	return App{Name: "jpegdecode", Build: build, Verify: verify}
}
