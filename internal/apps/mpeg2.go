package apps

import (
	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/media"
)

// The mpeg2 applications code a three-frame (I, P, B) luminance sequence:
// spiral full-search motion estimation with half-pel refinement
// (interpolated-reference SAD), averaging motion compensation, residual
// FDCT + quantisation + run-length/VLC entropy coding, and the
// reconstruction loop (dequantise, IDCT, saturating addblock). The kernels
// (SAD, interpolation, diff, DCTs, addblock) are vectorised per ISA; motion
// control, quantisation and entropy coding are scalar, as in the paper's
// hand-rewritten benchmarks. Chroma is omitted (the jpeg applications cover
// the colour pipeline); DESIGN.md documents the substitution.

type mpegCfg struct {
	w, h  int
	win   int
	scale int32
	seed  uint64
}

func mpegCfgFor(sc Scale) mpegCfg {
	c := mpegCfg{w: 48, h: 32, win: 2, scale: 100, seed: 81}
	if sc == ScaleBench {
		c.w, c.h = 96, 64
	}
	return c
}

// mpegGolden carries the golden pipeline products.
type mpegGolden struct {
	frames [3][]byte
	recon  [3][]byte
	stream []byte
}

// mpegEncodeGolden runs the exact pipeline the generated programs execute.
func mpegEncodeGolden(c mpegCfg) *mpegGolden {
	g := &mpegGolden{}
	for t := 0; t < 3; t++ {
		g.frames[t] = media.GenFrame(c.w, c.h, t, c.seed).Pix
		g.recon[t] = make([]byte, c.w*c.h)
	}
	gray := make([]byte, c.w*c.h)
	for i := range gray {
		gray[i] = 128
	}
	var bw media.BitWriter
	blocks := blockOffsets(c.w, c.h, 8)
	mbs := blockOffsets(c.w, c.h, 16)

	// codeFrame runs diff/fdct/quant/rle/dequant/idct over all blocks and
	// returns the reconstructed residuals.
	codeFrame := func(cur, pred []byte) [][64]int16 {
		res := make([][64]int16, len(blocks))
		for bi, off := range blocks {
			diffBlock8(cur, pred, off, c.w, res[bi][:])
		}
		for bi := range res {
			media.FDCT8x8(&res[bi])
			media.QuantizeBlock(&res[bi], c.scale)
		}
		for bi := range res {
			media.RLEEncodeBlock(&bw, &res[bi])
		}
		for bi := range res {
			media.DequantizeBlock(&res[bi], c.scale)
			media.IDCT8x8(&res[bi])
		}
		return res
	}
	reconFrame := func(pred []byte, res [][64]int16, out []byte) {
		for bi, off := range blocks {
			addBlock8(pred, off, c.w, res[bi][:], out)
		}
	}
	// searchFrame: integer-pel spiral search followed by half-pel
	// refinement over the statically-safe interpolation modes.
	type mv struct {
		cand
		mode, moff int
	}
	searchFrame := func(cur, ref []byte) []mv {
		mvs := make([]mv, len(mbs))
		for mi, off := range mbs {
			mbx, mby := off%c.w, off/c.w
			ic := bestCandidate(cur, ref, off, c.w, candidates(c.w, c.h, c.win, mbx, mby))
			best := int64(1) << 62
			m := mv{cand: ic}
			for _, mode := range hpModes(c.w, c.h, c.win, mbx, mby) {
				moff := hpMoff(mode, c.w)
				s := sadAvgAt(cur, ref, off, off+ic.delta, off+ic.delta+moff, c.w)
				if s < best {
					best = s
					m.mode, m.moff = mode, moff
				}
			}
			mvs[mi] = m
		}
		return mvs
	}
	// interpolate builds the (half-pel) prediction for one reference.
	interpolate := func(ref []byte, mvs []mv, dst []byte) {
		for mi, off := range mbs {
			avgBlock16(ref, off+mvs[mi].delta, ref, off+mvs[mi].delta+mvs[mi].moff, dst, off, c.w)
		}
	}

	// I frame.
	reconFrame(gray, codeFrame(g.frames[0], gray), g.recon[0])

	// P frame.
	pred := make([]byte, c.w*c.h)
	predB := make([]byte, c.w*c.h)
	mv1 := searchFrame(g.frames[1], g.recon[0])
	for _, m := range mv1 {
		bw.WriteBits(uint32(m.dxw), 4)
		bw.WriteBits(uint32(m.dyw), 4)
		bw.WriteBits(uint32(m.mode), 3)
	}
	interpolate(g.recon[0], mv1, pred)
	reconFrame(pred, codeFrame(g.frames[1], pred), g.recon[1])

	// B frame.
	mv2a := searchFrame(g.frames[2], g.recon[0])
	mv2b := searchFrame(g.frames[2], g.recon[1])
	for mi := range mbs {
		for _, m := range []mv{mv2a[mi], mv2b[mi]} {
			bw.WriteBits(uint32(m.dxw), 4)
			bw.WriteBits(uint32(m.dyw), 4)
			bw.WriteBits(uint32(m.mode), 3)
		}
	}
	interpolate(g.recon[0], mv2a, pred)
	interpolate(g.recon[1], mv2b, predB)
	for _, off := range mbs {
		avgBlock16(pred, off, predB, off, pred, off, c.w)
	}
	reconFrame(pred, codeFrame(g.frames[2], pred), g.recon[2])

	g.stream = bw.Flush()
	return g
}

// allocMpegCommon allocates the data shared by encoder and decoder
// programs and returns the block/MB offset lists.
func allocMpegCommon(b *asm.Builder, c mpegCfg) (blocks, mbs []int) {
	blocks = blockOffsets(c.w, c.h, 8)
	mbs = blockOffsets(c.w, c.h, 16)
	gray := make([]byte, c.w*c.h)
	for i := range gray {
		gray[i] = 128
	}
	b.AllocBytes("gray", gray, 8)
	for i := 0; i < 3; i++ {
		b.Alloc(reconSym(i), c.w*c.h, 8)
	}
	b.Alloc("pred", c.w*c.h, 8)
	b.Alloc("res", 128*len(blocks), 8)
	b.Alloc("bwstate", 24, 8)
	ensureZigzag(b)
	kernels.EnsureClipTab(b)
	kernels.EnsureDCT(b)
	b.Alloc("predB", c.w*c.h, 8)
	// Static MB offset table (for compensation loops).
	offs := make([]uint64, len(mbs))
	for i, o := range mbs {
		offs[i] = uint64(o)
	}
	b.AllocQ("mboffs", offs, 8)
	// Per-frame mv tables: 5 words per MB (dxw, dyw, delta, moff, mode).
	b.Alloc("mv1", 40*len(mbs), 8)
	b.Alloc("mv2a", 40*len(mbs), 8)
	b.Alloc("mv2b", 40*len(mbs), 8)
	// Half-pel interpolation offsets by mode id.
	negOne, negW := int64(-1), int64(-c.w)
	b.AllocQ("moffs", []uint64{0, 1, uint64(negOne), uint64(c.w), uint64(negW)}, 8)
	// Per-MB allowed interpolation modes: [mbOff, count, mode ids...].
	var hp []uint64
	for _, off := range mbs {
		mbx, mby := off%c.w, off/c.w
		modes := hpModes(c.w, c.h, c.win, mbx, mby)
		hp = append(hp, uint64(off), uint64(len(modes)))
		for _, m := range modes {
			hp = append(hp, uint64(m))
		}
	}
	b.AllocQ("hpmodes", hp, 8)
	return
}

func reconSym(i int) string { return []string{"recon0", "recon1", "recon2"}[i] }

// alloc3Tasks allocates a 3-address task table.
func alloc3Tasks(b *asm.Builder, name string, rows [][3]uint64) {
	flat := make([]uint64, 0, 3*len(rows))
	for _, r := range rows {
		flat = append(flat, r[0], r[1], r[2])
	}
	b.AllocQ(name, flat, 8)
}

// emitBlockPhase3 runs a 3-address task loop with the given per-task body.
func emitBlockPhase3(b *asm.Builder, tableSym string, n int, body func(a0, a1, a2 isa.Reg)) {
	a0, a1, a2 := isa.R(8), isa.R(9), isa.R(10)
	taskLoopSym3(b, tableSym, n, a0, a1, a2, body)
}

func taskLoopSym3(b *asm.Builder, sym string, n int, a0, a1, a2 isa.Reg, body func(a0, a1, a2 isa.Reg)) {
	tab, ctr := isa.R(1), isa.R(3)
	b.MovI(tab, int64(b.Sym(sym)))
	b.Loop(ctr, int64(n), func() {
		b.Ldq(a0, tab, 0)
		b.Ldq(a1, tab, 8)
		b.Ldq(a2, tab, 16)
		body(a0, a1, a2)
		b.AddI(tab, tab, 24)
	})
}

// emitMEPhase emits the full-search phase: candsSym is the per-MB candidate
// table ([mbOff, count, count x (dxw, dyw, delta)]); results go to mvSym
// (5 words per MB: dxw, dyw, delta, moff, mode — the last two are filled
// by the half-pel refinement).
func emitMEPhase(b *asm.Builder, ext isa.Ext, w int, candsSym, mvSym string, curAddr, refAddr int64, nMB int) {
	ptr, mvP, cnt, mbOff := isa.R(4), isa.R(5), isa.R(6), isa.R(7)
	cur, ref, sad := isa.R(8), isa.R(9), isa.R(10)
	best, bdx, bdy, bdelta := isa.R(19), isa.R(20), isa.R(21), isa.R(22)
	t, dxw, dyw, delta := isa.R(23), isa.R(24), isa.R(25), isa.R(2)
	mbCtr, candCtr := isa.R(26), isa.R(27)
	b.MovI(ptr, int64(b.Sym(candsSym)))
	b.MovI(mvP, int64(b.Sym(mvSym)))
	b.Loop(mbCtr, int64(nMB), func() {
		b.Ldq(mbOff, ptr, 0)
		b.Ldq(cnt, ptr, 8)
		b.AddI(ptr, ptr, 16)
		b.MovI(cur, curAddr)
		b.Add(cur, cur, mbOff)
		b.MovI(best, 1<<40)
		b.Mov(candCtr, cnt)
		b.LoopDyn(candCtr, func() {
			b.Ldq(dxw, ptr, 0)
			b.Ldq(dyw, ptr, 8)
			b.Ldq(delta, ptr, 16)
			b.AddI(ptr, ptr, 24)
			b.MovI(ref, refAddr)
			b.Add(ref, ref, mbOff)
			b.Add(ref, ref, delta)
			kernels.EmitBlockSAD(b, ext, w, cur, ref, sad)
			b.Sub(t, sad, best)
			b.Op(isa.CMOVLT, best, t, sad)
			b.Op(isa.CMOVLT, bdx, t, dxw)
			b.Op(isa.CMOVLT, bdy, t, dyw)
			b.Op(isa.CMOVLT, bdelta, t, delta)
		})
		b.Stq(bdx, mvP, 0)
		b.Stq(bdy, mvP, 8)
		b.Stq(bdelta, mvP, 16)
		b.Stq(isa.Zero, mvP, 24) // moff (filled by half-pel refinement)
		b.Stq(isa.Zero, mvP, 32) // mode
		b.AddI(mvP, mvP, 40)
	})
}

// emitHalfPelRefine refines each integer motion vector over the statically
// safe interpolation modes ("hpmodes" table: [mbOff, count, mode ids...]),
// writing the best (moff, mode) into the 5-word mv rows.
func emitHalfPelRefine(b *asm.Builder, ext isa.Ext, w int, mvSym string, curAddr, refAddr int64, nMB int) {
	ptr, mvP, cnt, mbOff := isa.R(4), isa.R(5), isa.R(6), isa.R(7)
	cur, refA, refB, sad := isa.R(8), isa.R(9), isa.R(10), isa.R(3)
	best, bmoff, bmode := isa.R(19), isa.R(20), isa.R(21)
	t, mode, moff, delta := isa.R(23), isa.R(24), isa.R(25), isa.R(2)
	mbCtr, modeCtr := isa.R(26), isa.R(27)
	b.MovI(ptr, int64(b.Sym("hpmodes")))
	b.MovI(mvP, int64(b.Sym(mvSym)))
	b.Loop(mbCtr, int64(nMB), func() {
		b.Ldq(mbOff, ptr, 0)
		b.Ldq(cnt, ptr, 8)
		b.AddI(ptr, ptr, 16)
		b.Ldq(delta, mvP, 16)
		b.MovI(cur, curAddr)
		b.Add(cur, cur, mbOff)
		b.MovI(refA, refAddr)
		b.Add(refA, refA, mbOff)
		b.Add(refA, refA, delta)
		b.MovI(best, 1<<40)
		b.Mov(modeCtr, cnt)
		b.LoopDyn(modeCtr, func() {
			b.Ldq(mode, ptr, 0)
			b.AddI(ptr, ptr, 8)
			// moff = moffs[mode]
			b.SllI(t, mode, 3)
			b.AddI(t, t, int64(b.Sym("moffs")))
			b.Ldq(moff, t, 0)
			b.Add(refB, refA, moff)
			kernels.EmitBlockSADAvg(b, ext, w, cur, refA, refB, sad)
			b.Sub(t, sad, best)
			b.Op(isa.CMOVLT, best, t, sad)
			b.Op(isa.CMOVLT, bmoff, t, moff)
			b.Op(isa.CMOVLT, bmode, t, mode)
		})
		b.Stq(bmoff, mvP, 24)
		b.Stq(bmode, mvP, 32)
		b.AddI(mvP, mvP, 40)
	})
}

// allocCandTable builds the per-MB candidate table.
func allocCandTable(b *asm.Builder, name string, c mpegCfg, mbs []int) {
	var flat []uint64
	for _, off := range mbs {
		mbx, mby := off%c.w, off/c.w
		cands := candidates(c.w, c.h, c.win, mbx, mby)
		flat = append(flat, uint64(off), uint64(len(cands)))
		for _, cd := range cands {
			flat = append(flat, uint64(cd.dxw), uint64(cd.dyw), uint64(int64(cd.delta)))
		}
	}
	b.AllocQ(name, flat, 8)
}

// emitInterpolatePhase builds the half-pel prediction for one reference:
// for every MB, pred = avg(ref@delta, ref@delta+moff). With moff == 0 this
// degenerates to a block copy through the same averaging datapath.
func emitInterpolatePhase(b *asm.Builder, ext isa.Ext, w int, mvSym string, refAddr, predAddr int64, nMB int) {
	offP, mvP := isa.R(4), isa.R(5)
	mbOff, delta, moff := isa.R(7), isa.R(2), isa.R(6)
	srcA, srcB, dst := isa.R(8), isa.R(9), isa.R(10)
	ctr := isa.R(26)
	b.MovI(offP, int64(b.Sym("mboffs")))
	b.MovI(mvP, int64(b.Sym(mvSym)))
	b.Loop(ctr, int64(nMB), func() {
		b.Ldq(mbOff, offP, 0)
		b.AddI(offP, offP, 8)
		b.Ldq(delta, mvP, 16)
		b.Ldq(moff, mvP, 24)
		b.AddI(mvP, mvP, 40)
		b.MovI(srcA, refAddr)
		b.Add(srcA, srcA, mbOff)
		b.Add(srcA, srcA, delta)
		b.Add(srcB, srcA, moff)
		b.MovI(dst, predAddr)
		b.Add(dst, dst, mbOff)
		kernels.EmitAvgBlock16(b, ext, w, srcA, srcB, dst)
	})
}

// emitBlendPhase averages two full prediction planes MB-by-MB (the
// bidirectional combine of B frames).
func emitBlendPhase(b *asm.Builder, ext isa.Ext, w int, aAddr, bAddr, dstAddr int64, nMB int) {
	offP := isa.R(4)
	mbOff := isa.R(7)
	srcA, srcB, dst := isa.R(8), isa.R(9), isa.R(10)
	ctr := isa.R(26)
	b.MovI(offP, int64(b.Sym("mboffs")))
	b.Loop(ctr, int64(nMB), func() {
		b.Ldq(mbOff, offP, 0)
		b.AddI(offP, offP, 8)
		b.MovI(srcA, aAddr)
		b.Add(srcA, srcA, mbOff)
		b.MovI(srcB, bAddr)
		b.Add(srcB, srcB, mbOff)
		b.MovI(dst, dstAddr)
		b.Add(dst, dst, mbOff)
		kernels.EmitAvgBlock16(b, ext, w, srcA, srcB, dst)
	})
}

// emitCodeFrame emits the shared diff/fdct/quant/rle/dequant/idct/add
// pipeline for one frame. bw must be loaded by the caller only around
// entropy; this function handles save/load itself.
func emitCodeFrame(b *asm.Builder, ext isa.Ext, c mpegCfg, bw bitWriter,
	diffTasks, addTasks string, nb int) {
	resAddr := int64(b.Sym("res"))
	emitBlockPhase3(b, diffTasks, nb, func(a0, a1, a2 isa.Reg) {
		kernels.EmitDiffBlock8(b, ext, c.w, a0, a1, a2)
	})
	kernels.EmitFDCTBatch(b, ext, resAddr, resAddr, nb)
	emitQuantPhase(b, resAddr, nb, c.scale)
	bw.load(int64(b.Sym("bwstate")))
	emitRLEEncodeBlocks(b, bw, resAddr, nb)
	bw.save(int64(b.Sym("bwstate")))
	emitDequantPhase(b, resAddr, nb, c.scale)
	kernels.EmitIDCTBatch(b, ext, resAddr, resAddr, nb)
	emitBlockPhase3(b, addTasks, nb, func(a0, a1, a2 isa.Reg) {
		kernels.EmitAddBlock8(b, ext, c.w, a0, a1, a2)
	})
}

// emitMVWrite writes nMB motion vectors (fields x fieldsPerMB of 4 bits)
// from the mv tables.
func emitMVWrite(b *asm.Builder, bw bitWriter, mvSyms []string, nMB int) {
	bw.load(int64(b.Sym("bwstate")))
	ptrs := []isa.Reg{isa.R(4), isa.R(5)}
	v, ctr := isa.R(10), isa.R(26)
	for i, s := range mvSyms {
		b.MovI(ptrs[i], int64(b.Sym(s)))
	}
	b.Loop(ctr, int64(nMB), func() {
		for i := range mvSyms {
			b.Ldq(v, ptrs[i], 0)
			bw.writeImm(v, 4)
			b.Ldq(v, ptrs[i], 8)
			bw.writeImm(v, 4)
			b.Ldq(v, ptrs[i], 32)
			bw.writeImm(v, 3)
			b.AddI(ptrs[i], ptrs[i], 40)
		}
	})
	bw.save(int64(b.Sym("bwstate")))
}

// NewMPEG2Encode builds the mpeg2-encode application.
func NewMPEG2Encode(sc Scale) App { return newMPEG2Encode(mpegCfgFor(sc)) }

func newMPEG2Encode(c mpegCfg) App {
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New("mpeg2encode-" + ext.String())
		// Originals.
		var frameAddr [3]uint64
		for t := 0; t < 3; t++ {
			frameAddr[t] = b.AllocBytes(frameSym(t), media.GenFrame(c.w, c.h, t, c.seed).Pix, 8)
		}
		blocks, mbs := allocMpegCommon(b, c)
		streamA := b.Alloc("stream", c.w*c.h*6, 8)
		b.Alloc("bitlen", 8, 8)
		allocCandTable(b, "mecands", c, mbs)

		res := b.Sym("res")
		gray, pred := b.Sym("gray"), b.Sym("pred")
		rec := [3]uint64{b.Sym("recon0"), b.Sym("recon1"), b.Sym("recon2")}
		// Diff/add task tables per frame.
		mkTasks := func(name string, cur, predBase, out uint64) {
			rows := make([][3]uint64, len(blocks))
			add := make([][3]uint64, len(blocks))
			for bi, off := range blocks {
				rows[bi] = [3]uint64{cur + uint64(off), predBase + uint64(off), res + uint64(128*bi)}
				add[bi] = [3]uint64{predBase + uint64(off), res + uint64(128*bi), out + uint64(off)}
			}
			alloc3Tasks(b, "dt."+name, rows)
			alloc3Tasks(b, "at."+name, add)
		}
		mkTasks("i", frameAddr[0], gray, rec[0])
		mkTasks("p", frameAddr[1], pred, rec[1])
		mkTasks("b", frameAddr[2], pred, rec[2])

		bw := newBitWriter(b)
		bw.init(int64(streamA))
		bw.save(int64(b.Sym("bwstate")))

		// I frame.
		emitCodeFrame(b, ext, c, bw, "dt.i", "at.i", len(blocks))
		predB := b.Sym("predB")
		// P frame: integer search, half-pel refinement, interpolation.
		emitMEPhase(b, ext, c.w, "mecands", "mv1", int64(frameAddr[1]), int64(rec[0]), len(mbs))
		emitHalfPelRefine(b, ext, c.w, "mv1", int64(frameAddr[1]), int64(rec[0]), len(mbs))
		emitMVWrite(b, bw, []string{"mv1"}, len(mbs))
		emitInterpolatePhase(b, ext, c.w, "mv1", int64(rec[0]), int64(pred), len(mbs))
		emitCodeFrame(b, ext, c, bw, "dt.p", "at.p", len(blocks))
		// B frame: two searches/refinements, bidirectional blend.
		emitMEPhase(b, ext, c.w, "mecands", "mv2a", int64(frameAddr[2]), int64(rec[0]), len(mbs))
		emitHalfPelRefine(b, ext, c.w, "mv2a", int64(frameAddr[2]), int64(rec[0]), len(mbs))
		emitMEPhase(b, ext, c.w, "mecands", "mv2b", int64(frameAddr[2]), int64(rec[1]), len(mbs))
		emitHalfPelRefine(b, ext, c.w, "mv2b", int64(frameAddr[2]), int64(rec[1]), len(mbs))
		emitMVWrite(b, bw, []string{"mv2a", "mv2b"}, len(mbs))
		emitInterpolatePhase(b, ext, c.w, "mv2a", int64(rec[0]), int64(pred), len(mbs))
		emitInterpolatePhase(b, ext, c.w, "mv2b", int64(rec[1]), int64(predB), len(mbs))
		emitBlendPhase(b, ext, c.w, int64(pred), int64(predB), int64(pred), len(mbs))
		emitCodeFrame(b, ext, c, bw, "dt.b", "at.b", len(blocks))

		bw.load(int64(b.Sym("bwstate")))
		bw.finish(int64(streamA), int64(b.Sym("bitlen")))
		return b.Build()
	}
	verify := func(p *isa.Program, m *emu.Machine) error {
		g := mpegEncodeGolden(c)
		if err := verifyStream(m, p, "bitlen", "stream", g.stream); err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			got := readBytes(m, p.Sym(reconSym(i)), c.w*c.h)
			if err := compareBytes(p.Name+"/"+reconSym(i), got, g.recon[i]); err != nil {
				return err
			}
		}
		return nil
	}
	return App{Name: "mpeg2encode", Build: build, Verify: verify}
}

func frameSym(i int) string { return []string{"f0", "f1", "f2"}[i] }

// emitDecodeFrame: rle-decode/dequant/idct/add for one frame.
func emitDecodeFrame(b *asm.Builder, ext isa.Ext, c mpegCfg, br bitReader, addTasks string, nb int) {
	resAddr := int64(b.Sym("res"))
	br.load(int64(b.Sym("bwstate")))
	emitRLEDecodeBlocks(b, br, resAddr, nb)
	br.save(int64(b.Sym("bwstate")))
	emitDequantPhase(b, resAddr, nb, c.scale)
	kernels.EmitIDCTBatch(b, ext, resAddr, resAddr, nb)
	emitBlockPhase3(b, addTasks, nb, func(a0, a1, a2 isa.Reg) {
		kernels.EmitAddBlock8(b, ext, c.w, a0, a1, a2)
	})
}

// emitMVRead parses nMB motion vectors into the mv tables, computing the
// reference offset delta = (dyw-win)*w + (dxw-win).
func emitMVRead(b *asm.Builder, br bitReader, c mpegCfg, mvSyms []string, nMB int) {
	br.load(int64(b.Sym("bwstate")))
	ptrs := []isa.Reg{isa.R(4), isa.R(5)}
	dxw, dyw, delta, t := isa.R(10), isa.R(11), isa.R(12), isa.R(13)
	ctr := isa.R(26)
	for i, s := range mvSyms {
		b.MovI(ptrs[i], int64(b.Sym(s)))
	}
	mode, moff := isa.R(14), isa.R(15)
	b.Loop(ctr, int64(nMB), func() {
		for i := range mvSyms {
			br.readImm(dxw, 4)
			br.readImm(dyw, 4)
			br.readImm(mode, 3)
			b.AddI(t, dyw, int64(-c.win))
			b.MulI(delta, t, int64(c.w))
			b.AddI(t, dxw, int64(-c.win))
			b.Add(delta, delta, t)
			b.SllI(t, mode, 3)
			b.AddI(t, t, int64(b.Sym("moffs")))
			b.Ldq(moff, t, 0)
			b.Stq(dxw, ptrs[i], 0)
			b.Stq(dyw, ptrs[i], 8)
			b.Stq(delta, ptrs[i], 16)
			b.Stq(moff, ptrs[i], 24)
			b.Stq(mode, ptrs[i], 32)
			b.AddI(ptrs[i], ptrs[i], 40)
		}
	})
	br.save(int64(b.Sym("bwstate")))
}

// NewMPEG2Decode builds the mpeg2-decode application: its input is the
// bitstream produced by the golden encoder.
func NewMPEG2Decode(sc Scale) App { return newMPEG2Decode(mpegCfgFor(sc)) }

func newMPEG2Decode(c mpegCfg) App {
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New("mpeg2decode-" + ext.String())
		g := mpegEncodeGolden(c)
		streamA := b.AllocBytes("stream", g.stream, 8)
		blocks, mbs := allocMpegCommon(b, c)

		res := b.Sym("res")
		gray, pred := b.Sym("gray"), b.Sym("pred")
		rec := [3]uint64{b.Sym("recon0"), b.Sym("recon1"), b.Sym("recon2")}
		mkAdd := func(name string, predBase, out uint64) {
			add := make([][3]uint64, len(blocks))
			for bi, off := range blocks {
				add[bi] = [3]uint64{predBase + uint64(off), res + uint64(128*bi), out + uint64(off)}
			}
			alloc3Tasks(b, "at."+name, add)
		}
		mkAdd("i", gray, rec[0])
		mkAdd("p", pred, rec[1])
		mkAdd("b", pred, rec[2])

		br := newBitReader(b)
		br.init(int64(streamA))
		br.save(int64(b.Sym("bwstate")))

		predB := b.Sym("predB")
		emitDecodeFrame(b, ext, c, br, "at.i", len(blocks))
		emitMVRead(b, br, c, []string{"mv1"}, len(mbs))
		emitInterpolatePhase(b, ext, c.w, "mv1", int64(rec[0]), int64(pred), len(mbs))
		emitDecodeFrame(b, ext, c, br, "at.p", len(blocks))
		emitMVRead(b, br, c, []string{"mv2a", "mv2b"}, len(mbs))
		emitInterpolatePhase(b, ext, c.w, "mv2a", int64(rec[0]), int64(pred), len(mbs))
		emitInterpolatePhase(b, ext, c.w, "mv2b", int64(rec[1]), int64(predB), len(mbs))
		emitBlendPhase(b, ext, c.w, int64(pred), int64(predB), int64(pred), len(mbs))
		emitDecodeFrame(b, ext, c, br, "at.b", len(blocks))
		return b.Build()
	}
	verify := func(p *isa.Program, m *emu.Machine) error {
		g := mpegEncodeGolden(c)
		for i := 0; i < 3; i++ {
			got := readBytes(m, p.Sym(reconSym(i)), c.w*c.h)
			if err := compareBytes(p.Name+"/"+reconSym(i), got, g.recon[i]); err != nil {
				return err
			}
		}
		return nil
	}
	return App{Name: "mpeg2decode", Build: build, Verify: verify}
}
