package apps

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/media"
)

// The Huffman emitters must match the golden coder bit for bit in both
// directions; these tests exercise them outside the full applications.

func TestHuffEncodeEmitterMatchesGolden(t *testing.T) {
	rng := media.NewRNG(66)
	nb := 8
	var blocks []int16
	var bw media.BitWriter
	for k := 0; k < nb; k++ {
		var blk [64]int16
		for j := 0; j < 4+rng.Intn(24); j++ {
			blk[rng.Intn(64)] = int16(rng.Intn(4000) - 2000)
		}
		blocks = append(blocks, blk[:]...)
		media.HuffEncodeBlock(&bw, &blk)
	}
	want := bw.Flush()

	b := asm.New("huffenc")
	b.AllocH("coef", blocks, 8)
	streamA := b.Alloc("stream", 8192, 8)
	b.Alloc("bitlen", 8, 8)
	ensureZigzag(b)
	ensureHuffTables(b)
	w := newBitWriter(b)
	w.init(int64(streamA))
	emitHuffEncodeBlocks(b, w, int64(b.Sym("coef")), nb)
	w.finish(int64(streamA), int64(b.Sym("bitlen")))
	m := emu.New(b.Build())
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if gotLen := readU64(m, m.Prog.Sym("bitlen")); gotLen != uint64(len(want)) {
		t.Fatalf("stream length %d want %d", gotLen, len(want))
	}
	if err := compareBytes("huffenc", readBytes(m, streamA, len(want)), want); err != nil {
		t.Fatal(err)
	}
}

func TestHuffDecodeEmitterMatchesGolden(t *testing.T) {
	rng := media.NewRNG(55)
	nb := 8
	var want [][64]int16
	var bw media.BitWriter
	for k := 0; k < nb; k++ {
		var blk [64]int16
		for j := 0; j < 4+rng.Intn(24); j++ {
			blk[rng.Intn(64)] = int16(rng.Intn(4000) - 2000)
		}
		want = append(want, blk)
		media.HuffEncodeBlock(&bw, &blk)
	}
	b := asm.New("huffdec")
	streamA := b.AllocBytes("stream", bw.Flush(), 8)
	resA := b.Alloc("res", 128*nb, 8)
	ensureZigzag(b)
	ensureHuffTables(b)
	br := newBitReader(b)
	br.init(int64(streamA))
	emitHuffDecodeBlocks(b, br, int64(resA), nb)
	m := emu.New(b.Build())
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < nb; k++ {
		for i := 0; i < 64; i++ {
			raw := m.Mem.Bytes(resA+uint64(128*k+2*i), 2)
			if got := int16(uint16(raw[0]) | uint16(raw[1])<<8); got != want[k][i] {
				t.Fatalf("block %d coef %d: got %d want %d", k, i, got, want[k][i])
			}
		}
	}
}

func TestHuffDecodeSymEmitter(t *testing.T) {
	syms := []int{0x00, 0xF0, 0x13, 0x01, 0x2A, 0x85, 0x01, 0x00}
	var bw media.BitWriter
	tab := media.JPEGACTable
	for _, s := range syms {
		if tab.Len[s] == 0 {
			t.Fatalf("symbol %#x unused", s)
		}
		bw.WriteBits(tab.Code[s], uint(tab.Len[s]))
	}
	b := asm.New("dsym")
	streamA := b.AllocBytes("stream", bw.Flush(), 8)
	outA := b.Alloc("out", 8*len(syms), 8)
	ensureHuffTables(b)
	br := newBitReader(b)
	br.init(int64(streamA))
	op := isa.R(9)
	b.MovI(op, int64(outA))
	for range syms {
		emitHuffDecodeSym(b, br, isa.R(11))
		b.Stq(isa.R(11), op, 0)
		b.AddI(op, op, 8)
	}
	m := emu.New(b.Build())
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	for i, want := range syms {
		if got := readU64(m, outA+uint64(8*i)); got != uint64(want) {
			t.Fatalf("symbol %d: got %#x want %#x", i, got, want)
		}
	}
}
