package apps

import (
	"fmt"
	"testing"

	"repro/internal/isa"
	"repro/internal/media"
)

// TestAllAppsAllISAsBitExact: every application, in every ISA variant,
// must reproduce the golden pipeline outputs (bitstreams, reconstructed
// planes) bit for bit.
func TestAllAppsAllISAsBitExact(t *testing.T) {
	for _, a := range All(ScaleTest) {
		for _, ext := range isa.AllExts {
			a, ext := a, ext
			t.Run(a.Name+"/"+ext.String(), func(t *testing.T) {
				t.Parallel()
				if err := RunAndVerify(a, ext, 500_000_000); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAppInstructionCounts: the multimedia ISAs must reduce dynamic
// instruction counts, MOM the most.
func TestAppInstructionCounts(t *testing.T) {
	for _, a := range All(ScaleTest) {
		counts := map[isa.Ext]uint64{}
		for _, ext := range isa.AllExts {
			p := a.Build(ext)
			m := newMachine(p)
			steps, err := m.Run(500_000_000)
			if err != nil {
				t.Fatalf("%s/%s: %v", a.Name, ext, err)
			}
			counts[ext] = steps
		}
		if !(counts[isa.ExtAlpha] > counts[isa.ExtMMX]) {
			t.Errorf("%s: Alpha %d not > MMX %d", a.Name, counts[isa.ExtAlpha], counts[isa.ExtMMX])
		}
		if !(counts[isa.ExtMMX] > counts[isa.ExtMOM]) {
			t.Errorf("%s: MMX %d not > MOM %d", a.Name, counts[isa.ExtMMX], counts[isa.ExtMOM])
		}
	}
}

// TestMPEG2AcrossSeedsAndSizes fuzzes the most complex application over
// several contents and geometries; every ISA must stay bit-exact.
func TestMPEG2AcrossSeedsAndSizes(t *testing.T) {
	cfgs := []mpegCfg{
		{w: 48, h: 32, win: 2, scale: 100, seed: 7},
		{w: 48, h: 32, win: 2, scale: 60, seed: 8},   // finer quantisation
		{w: 64, h: 48, win: 3, scale: 140, seed: 9},  // bigger frame, wider search
		{w: 32, h: 32, win: 1, scale: 100, seed: 10}, // tiny frame, narrow search
	}
	for _, c := range cfgs {
		for _, app := range []App{newMPEG2Encode(c), newMPEG2Decode(c)} {
			for _, ext := range isa.AllExts {
				c, app, ext := c, app, ext
				t.Run(fmt.Sprintf("%s/%dx%d-win%d-q%d-s%d/%s",
					app.Name, c.w, c.h, c.win, c.scale, c.seed, ext), func(t *testing.T) {
					t.Parallel()
					if err := RunAndVerify(app, ext, 500_000_000); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestJPEGAndGSMAcrossSeeds varies content and parameters for the remaining
// applications.
func TestJPEGAndGSMAcrossSeeds(t *testing.T) {
	var appsList []App
	for _, c := range []jpegCfg{
		{w: 32, h: 32, scale: 100, seed: 21},
		{w: 48, h: 32, scale: 70, seed: 22},
		{w: 32, h: 48, scale: 150, seed: 23},
	} {
		appsList = append(appsList, newJPEGEncode(c), newJPEGDecode(c))
	}
	for _, c := range []gsmCfg{
		{nFrames: 2, seed: 31},
		{nFrames: 5, seed: 32},
	} {
		appsList = append(appsList, newGSMEncode(c))
	}
	for ai, app := range appsList {
		for _, ext := range isa.AllExts {
			app, ext, ai := app, ext, ai
			t.Run(fmt.Sprintf("%s-%d/%s", app.Name, ai, ext), func(t *testing.T) {
				t.Parallel()
				if err := RunAndVerify(app, ext, 500_000_000); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCodecQuality: the reconstructed outputs must be visually faithful to
// the originals (the paper verified "no visually perceptible losses").
func TestCodecQuality(t *testing.T) {
	mc := mpegCfgFor(ScaleTest)
	g := mpegEncodeGolden(mc)
	for i := 0; i < 3; i++ {
		if p := media.PSNR(g.frames[i], g.recon[i]); p < 30 {
			t.Errorf("mpeg2 frame %d PSNR %.1f dB < 30", i, p)
		}
	}
	jc := jpegCfgFor(ScaleTest)
	jg := jpegGoldenRun(jc)
	if p := media.PSNR(jg.y, jg.yRec); p < 30 {
		t.Errorf("jpeg luma PSNR %.1f dB < 30", p)
	}
	if p := media.PSNR(jg.r, jg.rRec); p < 24 {
		t.Errorf("jpeg red-channel PSNR %.1f dB < 24 (chroma subsampled)", p)
	}
}

// TestAllAppsBenchScaleBitExact verifies the full-size applications;
// skipped under -short.
func TestAllAppsBenchScaleBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale verification skipped in -short mode")
	}
	for _, a := range All(ScaleBench) {
		for _, ext := range isa.AllExts {
			a, ext := a, ext
			t.Run(a.Name+"/"+ext.String(), func(t *testing.T) {
				t.Parallel()
				if err := RunAndVerify(a, ext, 1_000_000_000); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
