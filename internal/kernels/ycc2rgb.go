package kernels

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/media"
)

// EmitRGB2YCC appends the forward colour conversion over n pixels. The
// program must have allocated the planes under the symbols "r", "g", "b",
// "bias" (contiguous, in that order — the MOM variant loads them as matrix
// rows with the plane size as stride) and outputs "y", "cb", "cr".
func EmitRGB2YCC(b *asm.Builder, ext isa.Ext, n int) {
	switch ext {
	case isa.ExtAlpha:
		emitRGBAlpha(b, n)
	case isa.ExtMMX:
		emitRGBMMX(b, n)
	case isa.ExtMDMX:
		emitRGBMDMX(b, n)
	case isa.ExtMOM:
		emitRGBMOM(b, n)
	}
}

// EmitYCC2RGB appends the inverse colour conversion over n contiguous
// pixels of the named planes (media.YCC2RGB semantics).
func EmitYCC2RGB(b *asm.Builder, ext isa.Ext, n int, ySym, cbSym, crSym, rSym, gSym, bSym string) {
	yA, cbA, crA := int64(b.Sym(ySym)), int64(b.Sym(cbSym)), int64(b.Sym(crSym))
	rA, gA, bA := int64(b.Sym(rSym)), int64(b.Sym(gSym)), int64(b.Sym(bSym))

	if ext == isa.ExtAlpha {
		emitYCC2RGBAlpha(b, n, yA, cbA, crA, rA, gA, bA)
		return
	}

	// Hoisted constants.
	b.AllocQ("y2r.const."+ySym, []uint64{
		splatHWord(128),
		splatHWord(media.CRV),
		splatHWord(media.CGU),
		splatHWord(media.CGV),
		splatHWord(media.CBU),
	}, 8)
	cp := isa.R(28)
	m128, mCRV, mCGU, mCGV, mCBU := isa.M(16), isa.M(17), isa.M(18), isa.M(19), isa.M(20)
	mz := isa.M(21)
	b.MovI(cp, int64(b.Sym("y2r.const."+ySym)))
	for i, r := range []isa.Reg{m128, mCRV, mCGU, mCGV, mCBU} {
		b.Ldm(r, cp, int64(8*i))
	}
	b.Op(isa.PZERO, mz, isa.Reg{}, isa.Reg{})

	yp, cbp, crp := isa.R(8), isa.R(9), isa.R(10)
	rp, gp, bp := isa.R(11), isa.R(12), isa.R(13)
	ctr := isa.R(26)
	setPtrs := func(off int64) {
		b.MovI(yp, yA+off)
		b.MovI(cbp, cbA+off)
		b.MovI(crp, crA+off)
		b.MovI(rp, rA+off)
		b.MovI(gp, gA+off)
		b.MovI(bp, bA+off)
	}
	advance := func(step int64) {
		for _, p := range []isa.Reg{yp, cbp, crp, rp, gp, bp} {
			b.AddI(p, p, step)
		}
	}

	// body converts one group of 8 pixels (packed) or 128 pixels (vector).
	body := func(p pix, stride isa.Reg) {
		yraw, cbraw, crraw := p.r(0), p.r(1), p.r(2)
		y16l, y16h := p.r(3), p.r(4)
		cbd4l, cbd4h := p.r(5), p.r(6)
		crd4l, crd4h := p.r(7), p.r(8)
		t, outl, outh := p.r(9), p.r(10), p.r(11)
		p.ld(yraw, yp, stride, 0)
		p.ld(cbraw, cbp, stride, 0)
		p.ld(crraw, crp, stride, 0)
		p.op(isa.PUNPKLB, y16l, yraw, mz)
		p.op(isa.PUNPKHB, y16h, yraw, mz)
		diff4 := func(raw, dl, dh isa.Reg) {
			p.op(isa.PUNPKLB, dl, raw, mz)
			p.op(isa.PUNPKHB, dh, raw, mz)
			p.op(isa.PSUBH, dl, dl, m128)
			p.op(isa.PSUBH, dh, dh, m128)
			p.opi(isa.PSLLH, dl, dl, 2)
			p.opi(isa.PSLLH, dh, dh, 2)
		}
		diff4(cbraw, cbd4l, cbd4h)
		diff4(crraw, crd4l, crd4h)
		// R = sat8(y + mulh(crd4, CRV))
		p.op(isa.PMULHH, t, crd4l, mCRV)
		p.op(isa.PADDH, outl, y16l, t)
		p.op(isa.PMULHH, t, crd4h, mCRV)
		p.op(isa.PADDH, outh, y16h, t)
		p.op(isa.PACKUSHB, outl, outl, outh)
		p.st(outl, rp, stride, 0)
		// G = sat8(y - mulh(cbd4, CGU) - mulh(crd4, CGV))
		p.op(isa.PMULHH, t, cbd4l, mCGU)
		p.op(isa.PSUBH, outl, y16l, t)
		p.op(isa.PMULHH, t, crd4l, mCGV)
		p.op(isa.PSUBH, outl, outl, t)
		p.op(isa.PMULHH, t, cbd4h, mCGU)
		p.op(isa.PSUBH, outh, y16h, t)
		p.op(isa.PMULHH, t, crd4h, mCGV)
		p.op(isa.PSUBH, outh, outh, t)
		p.op(isa.PACKUSHB, outl, outl, outh)
		p.st(outl, gp, stride, 0)
		// B = sat8(y + mulh(cbd4, CBU))
		p.op(isa.PMULHH, t, cbd4l, mCBU)
		p.op(isa.PADDH, outl, y16l, t)
		p.op(isa.PMULHH, t, cbd4h, mCBU)
		p.op(isa.PADDH, outh, y16h, t)
		p.op(isa.PACKUSHB, outl, outl, outh)
		p.st(outl, bp, stride, 0)
	}

	done := 0
	if ext == isa.ExtMOM && n >= 128 {
		// 16 groups of 8 pixels per iteration (contiguous stride-8 rows).
		pv := pix{b: b, vec: true}
		stride8 := isa.R(27)
		b.MovI(stride8, 8)
		b.SetVLI(16)
		setPtrs(0)
		chunks := n / 128
		b.Loop(ctr, int64(chunks), func() {
			body(pv, stride8)
			advance(128)
		})
		done = chunks * 128
	}
	// Packed path for the whole plane (MMX/MDMX) or the MOM remainder.
	if rem := n - done; rem > 0 {
		pp := pix{b: b, vec: false}
		setPtrs(int64(done))
		b.Loop(ctr, int64(rem/8), func() {
			body(pp, isa.Reg{})
			advance(8)
		})
	}
}

func emitYCC2RGBAlpha(b *asm.Builder, n int, yA, cbA, crA, rA, gA, bA int64) {
	yp, cbp, crp := isa.R(8), isa.R(9), isa.R(10)
	rp, gp, bp := isa.R(11), isa.R(12), isa.R(13)
	yv, cbd, crd, t, t2, c255 := isa.R(14), isa.R(15), isa.R(16), isa.R(17), isa.R(18), isa.R(19)
	ctr := isa.R(26)
	b.MovI(yp, yA)
	b.MovI(cbp, cbA)
	b.MovI(crp, crA)
	b.MovI(rp, rA)
	b.MovI(gp, gA)
	b.MovI(bp, bA)
	b.MovI(c255, 255)
	mulh := func(dst, src isa.Reg, c int64) {
		// dst = (4*(src-128) * c) >> 16, computed exactly like MulH16 on the
		// pre-shifted difference.
		b.AddI(dst, src, -128)
		b.SllI(dst, dst, 2)
		b.MulI(dst, dst, c)
		b.SraI(dst, dst, 16)
		_ = src
	}
	b.Loop(ctr, int64(n), func() {
		b.Ldbu(yv, yp, 0)
		b.Ldbu(cbd, cbp, 0)
		b.Ldbu(crd, crp, 0)
		mulh(t, crd, media.CRV)
		b.Add(t, yv, t)
		emitClamp8(b, t, t2, c255)
		b.Stb(t, rp, 0)
		mulh(t, cbd, media.CGU)
		b.Op(isa.SUBQ, t, isa.Zero, t)
		b.Add(t, yv, t)
		mulh(t2, crd, media.CGV)
		b.Sub(t, t, t2)
		emitClamp8(b, t, t2, c255)
		b.Stb(t, gp, 0)
		mulh(t, cbd, media.CBU)
		b.Add(t, yv, t)
		emitClamp8(b, t, t2, c255)
		b.Stb(t, bp, 0)
		for _, p := range []isa.Reg{yp, cbp, crp, rp, gp, bp} {
			b.AddI(p, p, 1)
		}
	})
}
