package kernels

import (
	"testing"

	"repro/internal/isa"
)

// TestAllKernelsAllISAsBitExact is the central correctness gate: every
// kernel, in every ISA variant, must reproduce the golden output bit for
// bit after functional execution.
func TestAllKernelsAllISAsBitExact(t *testing.T) {
	for _, k := range All(ScaleTest) {
		for _, ext := range isa.AllExts {
			k, ext := k, ext
			t.Run(k.Name+"/"+ext.String(), func(t *testing.T) {
				t.Parallel()
				if err := RunAndVerify(k, ext, 200_000_000); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestKernelProgramsShrinkWithISA: the whole point of the ISA ladder is
// fewer dynamic instructions for the same work. Verify the ordering
// Alpha > MMX >= MDMX > MOM on dynamic instruction counts for the kernels
// where the paper predicts it.
func TestKernelProgramsShrinkWithISA(t *testing.T) {
	counts := func(name string) map[isa.Ext]uint64 {
		k, err := ByName(name, ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		out := map[isa.Ext]uint64{}
		for _, ext := range isa.AllExts {
			p := k.Build(ext)
			m := newMachine(p)
			steps, err := m.Run(200_000_000)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, ext, err)
			}
			out[ext] = steps
		}
		return out
	}
	for _, name := range []string{"motion1", "motion2", "idct", "compensation", "addblock", "ltpparameters"} {
		c := counts(name)
		if !(c[isa.ExtAlpha] > c[isa.ExtMMX]) {
			t.Errorf("%s: Alpha (%d) not larger than MMX (%d)", name, c[isa.ExtAlpha], c[isa.ExtMMX])
		}
		if !(c[isa.ExtMMX] >= c[isa.ExtMDMX]) {
			t.Errorf("%s: MMX (%d) smaller than MDMX (%d)", name, c[isa.ExtMMX], c[isa.ExtMDMX])
		}
		if !(c[isa.ExtMDMX] > c[isa.ExtMOM]) {
			t.Errorf("%s: MDMX (%d) not larger than MOM (%d)", name, c[isa.ExtMDMX], c[isa.ExtMOM])
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", ScaleTest); err == nil {
		t.Fatal("expected error for unknown kernel")
	}
}

// TestAllKernelsBenchScaleBitExact verifies the full-size (figure)
// workloads too; skipped under -short.
func TestAllKernelsBenchScaleBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale verification skipped in -short mode")
	}
	for _, k := range All(ScaleBench) {
		for _, ext := range isa.AllExts {
			k, ext := k, ext
			t.Run(k.Name+"/"+ext.String(), func(t *testing.T) {
				t.Parallel()
				if err := RunAndVerify(k, ext, 500_000_000); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
