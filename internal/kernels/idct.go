package kernels

import (
	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/media"
)

// NewIDCT builds the 8x8 inverse-DCT kernel over a batch of coefficient
// blocks (block stride 128 bytes).
//
// The 2-D transform is column pass -> transpose -> column pass ->
// transpose, with the input prescale folded into the first pass and the
// output descale folded into the last transpose.
//
//   - Alpha: scalar multiply-accumulate per output.
//   - MMX: 4 columns per packed word; each 16x16 product is promoted to
//     32-bit lanes (PMULLH/PMULHH + unpacks) — the data-promotion overhead
//     the paper attributes to MMX-like ISAs.
//   - MDMX: the packed accumulators absorb the promotion: one ACCMULH per
//     coefficient and a single "round and clip" readback per output row.
//   - MOM: the MMX structure vectorised across 16 blocks at once (matrix
//     registers hold the same row of 16 different blocks; the block stride
//     becomes the vector stride).
func NewIDCT(sc Scale) Kernel {
	nb := 16
	if sc == ScaleBench {
		nb = 64
	}
	seed := uint64(71)
	genBlocks := func() []int16 {
		// Realistic sparse coefficients: FDCT of synthetic pixels, then
		// quantise/dequantise.
		rng := media.NewRNG(seed)
		out := make([]int16, 64*nb)
		for bi := 0; bi < nb; bi++ {
			var blk [64]int16
			for i := range blk {
				blk[i] = int16(rng.Intn(256) - 128)
			}
			media.FDCT8x8(&blk)
			media.QuantizeBlock(&blk, 100)
			media.DequantizeBlock(&blk, 100)
			copy(out[64*bi:], blk[:])
		}
		return out
	}
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New("idct-" + ext.String())
		blocks := genBlocks()
		b.AllocH("blocks", blocks, 8)
		b.Alloc("out", 128*nb, 8)
		chunk := 1
		if ext == isa.ExtMOM {
			chunk = 16
		}
		b.Alloc("t1", 128*chunk, 8)
		b.Alloc("t2", 128*chunk, 8)
		// Splat table: word (u,n) = DCTMat[u][n] in all four lanes.
		splats := make([]uint64, 64)
		for u := 0; u < 8; u++ {
			for n := 0; n < 8; n++ {
				splats[u*8+n] = splatHWord(media.DCTMat[u][n])
			}
		}
		b.AllocQ("coef", splats, 8)
		switch ext {
		case isa.ExtAlpha:
			emitIDCTAlpha(b, nb)
		case isa.ExtMMX:
			emitIDCTPacked(b, nb, false)
		case isa.ExtMDMX:
			emitIDCTPacked(b, nb, true)
		case isa.ExtMOM:
			emitIDCTMOM(b, nb)
		}
		return b.Build()
	}
	verify := func(prog *isa.Program, m *emu.Machine) error {
		blocks := genBlocks()
		got := readI16s(m, prog.Sym("out"), 64*nb)
		for bi := 0; bi < nb; bi++ {
			var blk [64]int16
			copy(blk[:], blocks[64*bi:64*bi+64])
			media.IDCT8x8(&blk)
			for i, wv := range blk {
				if got[64*bi+i] != wv {
					return mismatch(prog.Name, 64*bi+i, got[64*bi+i], wv)
				}
			}
		}
		return nil
	}
	return Kernel{Name: "idct", Build: build, Verify: verify}
}

// emitIDCTAlpha: scalar reference implementation (column pass with
// prescale into t1, row pass with descale into out).
func emitIDCTAlpha(b *asm.Builder, nb int) {
	blkP, outP, t1P := isa.R(8), isa.R(9), isa.R(7)
	bc := isa.R(10)
	b.MovI(blkP, int64(b.Sym("blocks")))
	b.MovI(outP, int64(b.Sym("out")))
	b.MovI(t1P, int64(b.Sym("t1")))
	b.Loop(bc, int64(nb), func() {
		emitIDCTAlphaBlock(b, blkP, outP, t1P)
		b.AddI(blkP, blkP, 128)
		b.AddI(outP, outP, 128)
	})
}

// emitIDCTAlphaBlock: scalar inverse transform of one block (blkP -> outP,
// with t1P as inter-pass scratch).
func emitIDCTAlphaBlock(b *asm.Builder, blkP, outP, t1P isa.Reg) {
	x := [8]isa.Reg{isa.R(11), isa.R(12), isa.R(13), isa.R(14), isa.R(15), isa.R(16), isa.R(17), isa.R(18)}
	acc, t, hi16, lo16 := isa.R(19), isa.R(20), isa.R(21), isa.R(22)
	b.MovI(hi16, 32767)
	b.MovI(lo16, -32768)
	clamp := func() {
		// acc = sat16(acc)
		b.Sub(t, hi16, acc)
		b.Op(isa.CMOVLT, acc, t, hi16)
		b.Sub(t, acc, lo16)
		b.Op(isa.CMOVLT, acc, t, lo16)
	}
	mac := func(get func(u int) isa.Reg, coef func(u int) int64) {
		b.MovI(acc, int64(media.DCTBias))
		for u := 0; u < 8; u++ {
			b.MulI(t, get(u), coef(u))
			b.Add(acc, acc, t)
		}
		b.SraI(acc, acc, 16)
		clamp()
	}
	// Column pass: for each column j, outputs n into t1.
	for j := 0; j < 8; j++ {
		for u := 0; u < 8; u++ {
			b.Ldwu(x[u], blkP, int64(u*16+2*j))
			b.Op(isa.SEXTW, x[u], x[u], isa.Reg{})
			b.SllI(x[u], x[u], media.IDCTPre)
		}
		for n := 0; n < 8; n++ {
			nn := n
			mac(func(u int) isa.Reg { return x[u] },
				func(u int) int64 { return int64(media.DCTMat[u][nn]) })
			b.Stw(acc, t1P, int64(n*16+2*j))
		}
	}
	// Row pass with descale: row n of t1 -> row n of out.
	for n := 0; n < 8; n++ {
		for v := 0; v < 8; v++ {
			b.Ldwu(x[v], t1P, int64(n*16+2*v))
			b.Op(isa.SEXTW, x[v], x[v], isa.Reg{})
		}
		for mcol := 0; mcol < 8; mcol++ {
			mm := mcol
			mac(func(v int) isa.Reg { return x[v] },
				func(v int) int64 { return int64(media.DCTMat[v][mm]) })
			b.AddI(acc, acc, 1<<(media.IDCTPost-1))
			b.SraI(acc, acc, media.IDCTPost)
			b.Stw(acc, outP, int64(n*16+2*mcol))
		}
	}
}

// idctRegs names the packed registers shared by the MMX/MOM emitters.
var (
	idctX    = [8]int{0, 1, 2, 3, 4, 5, 6, 7} // x rows
	idctAccs = [4]int{8, 9, 10, 11}           // accEL accEH accOL accOH
	idctTmp  = [3]int{12, 13, 14}
)

// emitIDCTColPassPromote emits one column pass over both 4-column groups
// using 32-bit promotion (the MMX/MOM path). src/dst are base registers;
// stride is the vector stride register (vec mode only). coefP points at the
// splat table; biasW holds [32768,32768] in 32-bit lanes.
func emitIDCTColPassPromote(p pix, src, dst, stride isa.Reg, coefP, biasW isa.Reg, prescale bool) {
	b := p.b
	coefM := isa.M(15)
	for _, off := range []int64{0, 8} {
		for u := 0; u < 8; u++ {
			p.ld(p.r(idctX[u]), src, stride, int64(u*16)+off)
			if prescale {
				p.opi(isa.PSLLH, p.r(idctX[u]), p.r(idctX[u]), media.IDCTPre)
			}
		}
		for n := 0; n < 4; n++ {
			accEL, accEH := p.r(idctAccs[0]), p.r(idctAccs[1])
			accOL, accOH := p.r(idctAccs[2]), p.r(idctAccs[3])
			lo, hi, pt := p.r(idctTmp[0]), p.r(idctTmp[1]), p.r(idctTmp[2])
			// E starts from the rounding bias; O starts from zero.
			p.broadcast(accEL, biasW)
			p.broadcast(accEH, biasW)
			first := true
			addProd := func(u int, aL, aH isa.Reg, init bool) {
				b.Ldm(coefM, coefP, int64(8*(u*8+n)))
				p.op(isa.PMULLH, lo, p.r(idctX[u]), coefM)
				p.op(isa.PMULHH, hi, p.r(idctX[u]), coefM)
				p.op(isa.PUNPKLH, pt, lo, hi)
				if init {
					p.op(isa.PUNPKHH, aH, lo, hi)
					p.op(isa.PMOV, aL, pt, isa.Reg{})
					// aH already holds the product's high pair
				} else {
					p.op(isa.PADDW, aL, aL, pt)
					p.op(isa.PUNPKHH, pt, lo, hi)
					p.op(isa.PADDW, aH, aH, pt)
				}
			}
			for j := 0; j < 4; j++ {
				addProd(2*j, accEL, accEH, false)
			}
			for j := 0; j < 4; j++ {
				addProd(2*j+1, accOL, accOH, first)
				first = false
			}
			// y[n] = sat16((E+O)>>16); y[7-n] = sat16((E-O)>>16)
			emitCombine := func(sub bool, outRow int) {
				op := isa.PADDW
				if sub {
					op = isa.PSUBW
				}
				p.op(op, lo, accEL, accOL)
				p.op(op, hi, accEH, accOH)
				p.opi(isa.PSRAW, lo, lo, 16)
				p.opi(isa.PSRAW, hi, hi, 16)
				p.op(isa.PACKSSWH, lo, lo, hi)
				p.st(lo, dst, stride, int64(outRow*16)+off)
			}
			emitCombine(false, n)
			emitCombine(true, 7-n)
		}
	}
}

// emitIDCTColPassAcc emits one column pass using packed accumulators
// (the MDMX path; vec is always false here).
func emitIDCTColPassAcc(b *asm.Builder, src, dst isa.Reg, coefP isa.Reg, m256, m128 isa.Reg, prescale bool) {
	coefM := isa.M(15)
	res := isa.M(14)
	for _, off := range []int64{0, 8} {
		for u := 0; u < 8; u++ {
			b.Ldm(isa.M(idctX[u]), src, off+int64(u*16))
			if prescale {
				b.OpI(isa.PSLLH, isa.M(idctX[u]), isa.M(idctX[u]), media.IDCTPre)
			}
		}
		for n := 0; n < 8; n++ {
			a := isa.A(n % 2) // alternate accumulators to relax the chain
			b.Op(isa.ACLR, a, isa.Reg{}, isa.Reg{})
			for u := 0; u < 8; u++ {
				b.Ldm(coefM, coefP, int64(8*(u*8+n)))
				b.Op(isa.ACCMULH, a, isa.M(idctX[u]), coefM)
			}
			b.Op(isa.ACCMULH, a, m256, m128) // rounding bias 256*128
			b.OpI(isa.RACH, res, a, 16)
			b.Stm(res, dst, off+int64(n*16))
		}
	}
}

// emitTranspose8x8 transposes an 8x8 halfword block from src to dst using
// four 4x4 quadrant transposes. If shift > 0, (y + round) >> shift is
// applied before the store (round is a media register holding the splatted
// rounding constant).
func emitTranspose8x8(p pix, src, dst, stride isa.Reg, round isa.Reg, shift int64) {
	in := [4]isa.Reg{p.r(0), p.r(1), p.r(2), p.r(3)}
	out := [4]isa.Reg{p.r(4), p.r(5), p.r(6), p.r(7)}
	tmp := [4]isa.Reg{p.r(8), p.r(9), p.r(10), p.r(11)}
	for qa := 0; qa < 2; qa++ { // row quadrant
		for qb := 0; qb < 2; qb++ { // column quadrant
			for i := 0; i < 4; i++ {
				p.ld(in[i], src, stride, int64((4*qa+i)*16+8*qb))
			}
			p.transpose4x4h(in, out, tmp)
			for i := 0; i < 4; i++ {
				v := out[i]
				if shift > 0 {
					p.op(isa.PADDH, v, v, round)
					p.opi(isa.PSRAH, v, v, shift)
				}
				p.st(v, dst, stride, int64((4*qb+i)*16+8*qa))
			}
		}
	}
}

// emitIDCTPacked drives the per-block loop for MMX (acc=false) and MDMX
// (acc=true).
func emitIDCTPacked(b *asm.Builder, nb int, acc bool) {
	blkP, outP := isa.R(8), isa.R(9)
	t1P, t2P, coefP, bc := isa.R(7), isa.R(6), isa.R(5), isa.R(10)
	b.MovI(blkP, int64(b.Sym("blocks")))
	b.MovI(outP, int64(b.Sym("out")))
	b.MovI(t1P, int64(b.Sym("t1")))
	b.MovI(t2P, int64(b.Sym("t2")))
	b.MovI(coefP, int64(b.Sym("coef")))
	p := pix{b: b, vec: false}
	t := isa.R(11)
	biasW, m1 := isa.M(30), isa.M(29)
	m256, m128 := isa.M(28), isa.M(27)
	b.AllocQ("idctconst", []uint64{
		uint64(media.DCTBias) | uint64(media.DCTBias)<<32,
		splatHWord(1),
		splatHWord(256),
		splatHWord(128),
	}, 8)
	b.MovI(t, int64(b.Sym("idctconst")))
	b.Ldm(biasW, t, 0)
	b.Ldm(m1, t, 8)
	b.Ldm(m256, t, 16)
	b.Ldm(m128, t, 24)
	b.Loop(bc, int64(nb), func() {
		if acc {
			emitIDCTColPassAcc(b, blkP, t1P, coefP, m256, m128, true)
		} else {
			emitIDCTColPassPromote(p, blkP, t1P, isa.Reg{}, coefP, biasW, true)
		}
		emitTranspose8x8(p, t1P, t2P, isa.Reg{}, m1, 0)
		if acc {
			emitIDCTColPassAcc(b, t2P, t1P, coefP, m256, m128, false)
		} else {
			emitIDCTColPassPromote(p, t2P, t1P, isa.Reg{}, coefP, biasW, false)
		}
		emitTranspose8x8(p, t1P, outP, isa.Reg{}, m1, media.IDCTPost)
		b.AddI(blkP, blkP, 128)
		b.AddI(outP, outP, 128)
	})
}

// emitIDCTMOM drives the 16-blocks-at-a-time MOM loop: every packed word of
// the MMX structure becomes a 16-deep matrix register column with the block
// stride (128 bytes) as vector stride.
func emitIDCTMOM(b *asm.Builder, nb int) {
	blkP, outP := isa.R(8), isa.R(9)
	t1P, t2P, coefP, bc := isa.R(7), isa.R(6), isa.R(5), isa.R(10)
	stride := isa.R(12)
	b.MovI(blkP, int64(b.Sym("blocks")))
	b.MovI(outP, int64(b.Sym("out")))
	b.MovI(t1P, int64(b.Sym("t1")))
	b.MovI(t2P, int64(b.Sym("t2")))
	b.MovI(coefP, int64(b.Sym("coef")))
	b.MovI(stride, 128)
	b.SetVLI(16)
	p := pix{b: b, vec: true}
	t := isa.R(11)
	biasW, m1 := isa.M(30), isa.M(29)
	b.AllocQ("idctconst", []uint64{
		uint64(media.DCTBias) | uint64(media.DCTBias)<<32,
		splatHWord(1),
	}, 8)
	b.MovI(t, int64(b.Sym("idctconst")))
	b.Ldm(biasW, t, 0)
	b.Ldm(m1, t, 8)
	if nb%16 != 0 {
		panic("idct MOM path needs a multiple of 16 blocks")
	}
	b.Loop(bc, int64(nb/16), func() {
		emitIDCTColPassPromote(p, blkP, t1P, stride, coefP, biasW, true)
		emitTranspose8x8(p, t1P, t2P, stride, m1, 0)
		emitIDCTColPassPromote(p, t2P, t1P, stride, coefP, biasW, false)
		emitTranspose8x8(p, t1P, outP, stride, m1, media.IDCTPost)
		b.AddI(blkP, blkP, 16*128)
		b.AddI(outP, outP, 16*128)
	})
}
