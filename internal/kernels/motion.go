package kernels

import (
	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/media"
)

// The motion kernels reproduce the mpeg2 dist1/dist2 functions of Figures 1
// and 2: a 16x16 block distance (sum of absolute / squared differences)
// evaluated over the spiral candidate list of fullsearch. Each "task" is
// one (current block, candidate block) pair; the kernel writes one 64-bit
// distance per task.

type motionParams struct {
	w, h   int
	win    int
	blocks [][2]int
	seed   uint64
}

func motionConfig(sc Scale) motionParams {
	p := motionParams{w: 128, h: 96, win: 3, seed: 1}
	margin := 16 + p.win
	step := 48
	if sc == ScaleBench {
		step = 32
		p.win = 4
		margin = 16 + p.win
	}
	for by := p.win; by+margin <= p.h; by += step {
		for bx := p.win; bx+margin <= p.w; bx += step {
			p.blocks = append(p.blocks, [2]int{bx, by})
		}
	}
	return p
}

// buildMotionTasks allocates the two frames and the task table, returning
// the builder plus the golden (curOff, refOff) pairs.
func (p motionParams) buildTasks(b *asm.Builder) (cur, ref *media.Plane, tasks [][2]uint64) {
	cur = media.GenFrame(p.w, p.h, 1, p.seed)
	ref = media.GenFrame(p.w, p.h, 0, p.seed)
	curA := b.AllocBytes("cur", cur.Pix, 8)
	refA := b.AllocBytes("ref", ref.Pix, 8)
	offs := media.SpiralOffsets(p.win)
	for _, blk := range p.blocks {
		bx, by := blk[0], blk[1]
		for _, o := range offs {
			x, y := bx+o[0], by+o[1]
			if x < 0 || y < 0 || x+16 > p.w || y+16 > p.h {
				continue
			}
			tasks = append(tasks, [2]uint64{
				curA + uint64(by*p.w+bx),
				refA + uint64(y*p.w+x),
			})
		}
	}
	flat := make([]uint64, 0, 2*len(tasks))
	for _, t := range tasks {
		flat = append(flat, t[0], t[1])
	}
	b.AllocQ("tasks", flat, 8)
	b.Alloc("out", 8*len(tasks), 8)
	return cur, ref, tasks
}

// motionTaskLoop emits the per-task loop: loads the two block addresses,
// invokes body (which must leave the distance in res), stores the result.
func motionTaskLoop(b *asm.Builder, nTasks int, curR, refR, res isa.Reg, body func()) {
	tab, out, ctr := isa.R(1), isa.R(2), isa.R(3)
	b.MovI(tab, int64(b.Sym("tasks")))
	b.MovI(out, int64(b.Sym("out")))
	b.Loop(ctr, int64(nTasks), func() {
		b.Ldq(curR, tab, 0)
		b.Ldq(refR, tab, 8)
		body()
		b.Stq(res, out, 0)
		b.AddI(tab, tab, 16)
		b.AddI(out, out, 8)
	})
}

// NewMotion1 builds the SAD kernel (mpeg2 dist1).
func NewMotion1(sc Scale) Kernel {
	return newMotionKernel("motion1", sc, false)
}

// NewMotion2 builds the SQD kernel (mpeg2 sum-of-quadratic-differences).
func NewMotion2(sc Scale) Kernel {
	return newMotionKernel("motion2", sc, true)
}

func newMotionKernel(name string, sc Scale, squared bool) Kernel {
	p := motionConfig(sc)
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New(name + "-" + ext.String())
		_, _, tasks := p.buildTasks(b)
		curR, refR, res := isa.R(8), isa.R(9), isa.R(10)
		switch ext {
		case isa.ExtAlpha:
			motionTaskLoop(b, len(tasks), curR, refR, res, func() {
				emitMotionAlpha(b, p.w, curR, refR, res, squared)
			})
		case isa.ExtMMX:
			motionTaskLoop(b, len(tasks), curR, refR, res, func() {
				emitMotionMMX(b, p.w, curR, refR, res, squared)
			})
		case isa.ExtMDMX:
			motionTaskLoop(b, len(tasks), curR, refR, res, func() {
				emitMotionMDMX(b, p.w, curR, refR, res, squared)
			})
		case isa.ExtMOM:
			stride := isa.R(20)
			b.MovI(stride, int64(p.w))
			b.SetVLI(16)
			motionTaskLoop(b, len(tasks), curR, refR, res, func() {
				emitMotionMOM(b, curR, refR, stride, res, squared)
			})
		}
		return b.Build()
	}
	verify := func(prog *isa.Program, m *emu.Machine) error {
		cur := media.GenFrame(p.w, p.h, 1, p.seed)
		ref := media.GenFrame(p.w, p.h, 0, p.seed)
		// Recompute the task list exactly as buildTasks did.
		var want []int64
		offs := media.SpiralOffsets(p.win)
		for _, blk := range p.blocks {
			bx, by := blk[0], blk[1]
			for _, o := range offs {
				x, y := bx+o[0], by+o[1]
				if x < 0 || y < 0 || x+16 > p.w || y+16 > p.h {
					continue
				}
				if squared {
					want = append(want, media.SQD16(cur, bx, by, ref, x, y))
				} else {
					want = append(want, media.SAD16(cur, bx, by, ref, x, y))
				}
			}
		}
		got := readU64s(m, prog.Sym("out"), len(want))
		for i := range want {
			if int64(got[i]) != want[i] {
				return mismatch(prog.Name, i, int64(got[i]), want[i])
			}
		}
		return nil
	}
	return Kernel{Name: name, Build: build, Verify: verify}
}

// emitMotionAlpha: plain scalar code, inner loop fully unrolled (the paper
// used loop unrolling on all versions), abs via CMOV as the Alpha compiler
// would emit.
func emitMotionAlpha(b *asm.Builder, w int, curR, refR, res isa.Reg, squared bool) {
	a, bb, d, nd, row := isa.R(11), isa.R(12), isa.R(13), isa.R(14), isa.R(15)
	cp, rp := isa.R(16), isa.R(17)
	b.MovI(res, 0)
	b.Mov(cp, curR)
	b.Mov(rp, refR)
	b.Loop(row, 16, func() {
		for i := int64(0); i < 16; i++ {
			b.Ldbu(a, cp, i)
			b.Ldbu(bb, rp, i)
			b.Sub(d, a, bb)
			if squared {
				b.Mul(d, d, d)
			} else {
				b.Op(isa.SUBQ, nd, isa.Zero, d)
				b.Op(isa.CMOVLT, d, d, nd)
			}
			b.Add(res, res, d)
		}
		b.AddI(cp, cp, int64(w))
		b.AddI(rp, rp, int64(w))
	})
}

// emitMotionMMX: 8 pixels per packed op; SAD uses the (enhanced) PSADBW,
// SQD promotes |a-b| to halfwords and uses PMADDH.
func emitMotionMMX(b *asm.Builder, w int, curR, refR, res isa.Reg, squared bool) {
	m0, m1, m2, m3 := isa.M(0), isa.M(1), isa.M(2), isa.M(3)
	d0, d1, lo, hi := isa.M(4), isa.M(5), isa.M(6), isa.M(7)
	acc0, acc1, zero := isa.M(8), isa.M(9), isa.M(10)
	row, cp, rp, t := isa.R(15), isa.R(16), isa.R(17), isa.R(18)
	b.Op(isa.PZERO, acc0, isa.Reg{}, isa.Reg{})
	b.Op(isa.PZERO, acc1, isa.Reg{}, isa.Reg{})
	b.Op(isa.PZERO, zero, isa.Reg{}, isa.Reg{})
	b.Mov(cp, curR)
	b.Mov(rp, refR)
	b.Loop(row, 16, func() {
		b.Ldm(m0, cp, 0)
		b.Ldm(m1, cp, 8)
		b.Ldm(m2, rp, 0)
		b.Ldm(m3, rp, 8)
		if !squared {
			b.Op(isa.PSADBW, d0, m0, m2)
			b.Op(isa.PSADBW, d1, m1, m3)
			b.Op(isa.PADDW, acc0, acc0, d0)
			b.Op(isa.PADDW, acc1, acc1, d1)
		} else {
			for _, pair := range [][3]isa.Reg{{m0, m2, d0}, {m1, m3, d1}} {
				b.Op(isa.PABSDB, pair[2], pair[0], pair[1])
				b.Op(isa.PUNPKLB, lo, pair[2], zero)
				b.Op(isa.PUNPKHB, hi, pair[2], zero)
				b.Op(isa.PMADDH, lo, lo, lo)
				b.Op(isa.PMADDH, hi, hi, hi)
				b.Op(isa.PADDW, acc0, acc0, lo)
				b.Op(isa.PADDW, acc1, acc1, hi)
			}
		}
		b.AddI(cp, cp, int64(w))
		b.AddI(rp, rp, int64(w))
	})
	// Fold the two accumulators and their 32-bit lanes into res.
	b.Op(isa.PADDW, acc0, acc0, acc1)
	b.OpI(isa.PSRLQ, acc1, acc0, 32)
	b.Op(isa.PADDW, acc0, acc0, acc1)
	b.Op(isa.MFM, t, acc0, isa.Reg{})
	b.MovI(res, 0)
	b.OpI(isa.AND, res, t, 0xffffffff)
}

// emitMotionMDMX: packed accumulators absorb the reduction; two logical
// accumulators break the recurrence in half.
func emitMotionMDMX(b *asm.Builder, w int, curR, refR, res isa.Reg, squared bool) {
	m0, m1, m2, m3 := isa.M(0), isa.M(1), isa.M(2), isa.M(3)
	row, cp, rp, t := isa.R(15), isa.R(16), isa.R(17), isa.R(18)
	op := isa.ACCABDB
	if squared {
		op = isa.ACCSQDB
	}
	b.Op(isa.ACLR, isa.A(0), isa.Reg{}, isa.Reg{})
	b.Op(isa.ACLR, isa.A(1), isa.Reg{}, isa.Reg{})
	b.Mov(cp, curR)
	b.Mov(rp, refR)
	b.Loop(row, 16, func() {
		b.Ldm(m0, cp, 0)
		b.Ldm(m1, cp, 8)
		b.Ldm(m2, rp, 0)
		b.Ldm(m3, rp, 8)
		b.Op(op, isa.A(0), m0, m2)
		b.Op(op, isa.A(1), m1, m3)
		b.AddI(cp, cp, int64(w))
		b.AddI(rp, rp, int64(w))
	})
	b.OpI(isa.RACSUM, res, isa.A(0), 0)
	b.OpI(isa.RACSUM, t, isa.A(1), 0)
	b.Add(res, res, t)
}

// emitMotionMOM: the whole 16x16 block distance is four strided matrix
// loads and two matrix-accumulator operations — no row loop at all.
func emitMotionMOM(b *asm.Builder, curR, refR, stride, res isa.Reg, squared bool) {
	t := isa.R(18)
	op := isa.ACCABDB.Vector()
	if squared {
		op = isa.ACCSQDB.Vector()
	}
	b.MomLd(isa.V(0), curR, stride, 0)
	b.MomLd(isa.V(1), curR, stride, 8)
	b.MomLd(isa.V(2), refR, stride, 0)
	b.MomLd(isa.V(3), refR, stride, 8)
	b.Op(isa.ACLR, isa.VA(0), isa.Reg{}, isa.Reg{})
	b.Op(isa.ACLR, isa.VA(1), isa.Reg{}, isa.Reg{})
	b.Op(op, isa.VA(0), isa.V(0), isa.V(2))
	b.Op(op, isa.VA(1), isa.V(1), isa.V(3))
	b.OpI(isa.RACSUM, res, isa.VA(0), 0)
	b.OpI(isa.RACSUM, t, isa.VA(1), 0)
	b.Add(res, res, t)
}
