package kernels

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/media"
)

// This file exports the kernel code generators in a form the application
// programs (internal/apps) can compose: each Emit* function appends one
// vectorised phase to an application program under construction.
//
// Register convention: callers may keep live state in r1..r5 only; the
// emitters are free to clobber r6..r28, every media/matrix register and the
// accumulators. Address arguments passed in registers use r8/r9/r10 by
// convention and are preserved.

// EnsureDCT allocates the shared DCT data (coefficient splat table,
// rounding constants and inter-pass scratch). Call once per program before
// any EmitIDCTBatch/EmitFDCTBatch.
func EnsureDCT(b *asm.Builder) {
	b.Alloc("dct.t1", 128*16, 8)
	b.Alloc("dct.t2", 128*16, 8)
	splats := make([]uint64, 64)
	for u := 0; u < 8; u++ {
		for n := 0; n < 8; n++ {
			splats[u*8+n] = splatHWord(media.DCTMat[u][n])
		}
	}
	b.AllocQ("dct.coef", splats, 8)
	b.AllocQ("dct.const", []uint64{
		uint64(media.DCTBias) | uint64(media.DCTBias)<<32, // 32-bit-lane bias
		splatHWord(1 << (media.IDCTPost - 1)),             // idct rounding
		splatHWord(256),                                   // bias product hi
		splatHWord(128),                                   // bias product lo
		splatHWord(1 << (media.FDCTPost - 1)),             // fdct rounding
	}, 8)
}

// dctConsts loads the hoisted constants; returns (biasW, roundI, m256,
// m128, roundF).
func dctConsts(b *asm.Builder) (biasW, roundI, m256, m128, roundF isa.Reg) {
	biasW, roundI, m256, m128, roundF = isa.M(30), isa.M(29), isa.M(28), isa.M(27), isa.M(26)
	t := isa.R(28)
	b.MovI(t, int64(b.Sym("dct.const")))
	b.Ldm(biasW, t, 0)
	b.Ldm(roundI, t, 8)
	b.Ldm(m256, t, 16)
	b.Ldm(m128, t, 24)
	b.Ldm(roundF, t, 32)
	return
}

// EmitIDCTBatch appends an inverse DCT over nb contiguous 8x8 int16 blocks
// (block stride 128 bytes) from srcAddr to dstAddr.
func EmitIDCTBatch(b *asm.Builder, ext isa.Ext, srcAddr, dstAddr int64, nb int) {
	emitDCTBatch(b, ext, srcAddr, dstAddr, nb, false)
}

// EmitFDCTBatch appends a forward DCT over nb contiguous blocks (input:
// level-shifted pixels as int16).
func EmitFDCTBatch(b *asm.Builder, ext isa.Ext, srcAddr, dstAddr int64, nb int) {
	emitDCTBatch(b, ext, srcAddr, dstAddr, nb, true)
}

func emitDCTBatch(b *asm.Builder, ext isa.Ext, srcAddr, dstAddr int64, nb int, forward bool) {
	if nb == 0 {
		return
	}
	blkP, outP := isa.R(8), isa.R(9)
	t1P, t2P, coefP, bc := isa.R(6), isa.R(7), isa.R(10), isa.R(23)
	b.MovI(blkP, srcAddr)
	b.MovI(outP, dstAddr)
	b.MovI(t1P, int64(b.Sym("dct.t1")))
	b.MovI(t2P, int64(b.Sym("dct.t2")))
	b.MovI(coefP, int64(b.Sym("dct.coef")))
	biasW, roundI, m256, m128, roundF := dctConsts(b)
	round, post := roundI, int64(media.IDCTPost)
	if forward {
		round, post = roundF, int64(media.FDCTPost)
	}

	switch ext {
	case isa.ExtAlpha:
		b.Loop(bc, int64(nb), func() {
			if forward {
				emitFDCTAlphaBlock(b, blkP, outP, t1P)
			} else {
				emitIDCTAlphaBlock(b, blkP, outP, t1P)
			}
			b.AddI(blkP, blkP, 128)
			b.AddI(outP, outP, 128)
		})

	case isa.ExtMMX, isa.ExtMDMX:
		p := pix{b: b, vec: false}
		acc := ext == isa.ExtMDMX
		b.Loop(bc, int64(nb), func() {
			if acc && forward {
				emitFDCTColPassAcc(b, blkP, t1P, coefP, m256, m128, true)
			} else if acc {
				emitIDCTColPassAcc(b, blkP, t1P, coefP, m256, m128, true)
			} else if forward {
				emitFDCTColPassPromote(p, blkP, t1P, isa.Reg{}, coefP, biasW, true)
			} else {
				emitIDCTColPassPromote(p, blkP, t1P, isa.Reg{}, coefP, biasW, true)
			}
			emitTranspose8x8(p, t1P, t2P, isa.Reg{}, round, 0)
			if acc && forward {
				emitFDCTColPassAcc(b, t2P, t1P, coefP, m256, m128, false)
			} else if acc {
				emitIDCTColPassAcc(b, t2P, t1P, coefP, m256, m128, false)
			} else if forward {
				emitFDCTColPassPromote(p, t2P, t1P, isa.Reg{}, coefP, biasW, false)
			} else {
				emitIDCTColPassPromote(p, t2P, t1P, isa.Reg{}, coefP, biasW, false)
			}
			emitTranspose8x8(p, t1P, outP, isa.Reg{}, round, post)
			b.AddI(blkP, blkP, 128)
			b.AddI(outP, outP, 128)
		})

	case isa.ExtMOM:
		p := pix{b: b, vec: true}
		stride := isa.R(24)
		b.MovI(stride, 128)
		chunkBody := func() {
			if forward {
				emitFDCTColPassPromote(p, blkP, t1P, stride, coefP, biasW, true)
			} else {
				emitIDCTColPassPromote(p, blkP, t1P, stride, coefP, biasW, true)
			}
			emitTranspose8x8(p, t1P, t2P, stride, round, 0)
			if forward {
				emitFDCTColPassPromote(p, t2P, t1P, stride, coefP, biasW, false)
			} else {
				emitIDCTColPassPromote(p, t2P, t1P, stride, coefP, biasW, false)
			}
			emitTranspose8x8(p, t1P, outP, stride, round, post)
		}
		full, rem := nb/16, nb%16
		if full > 0 {
			b.SetVLI(16)
			b.Loop(bc, int64(full), func() {
				chunkBody()
				b.AddI(blkP, blkP, 16*128)
				b.AddI(outP, outP, 16*128)
			})
		}
		if rem > 0 {
			b.SetVLI(rem)
			chunkBody()
			b.SetVLI(16)
		}
	}
}

// EmitBlockSAD appends a 16x16 SAD: res <- sum |cur - ref| with row stride
// w. curR/refR hold the block base addresses.
func EmitBlockSAD(b *asm.Builder, ext isa.Ext, w int, curR, refR, res isa.Reg) {
	switch ext {
	case isa.ExtAlpha:
		emitMotionAlpha(b, w, curR, refR, res, false)
	case isa.ExtMMX:
		emitMotionMMX(b, w, curR, refR, res, false)
	case isa.ExtMDMX:
		emitMotionMDMX(b, w, curR, refR, res, false)
	case isa.ExtMOM:
		stride := isa.R(28)
		b.MovI(stride, int64(w))
		b.SetVLI(16)
		emitMotionMOM(b, curR, refR, stride, res, false)
	}
}

// EmitAvgBlock16 appends a 16x16 bidirectional average: out = (f+g+1)>>1,
// all three with row stride w.
func EmitAvgBlock16(b *asm.Builder, ext isa.Ext, w int, fR, gR, oR isa.Reg) {
	switch ext {
	case isa.ExtAlpha:
		x, y, row := isa.R(11), isa.R(12), isa.R(13)
		fp, gp, op := isa.R(14), isa.R(15), isa.R(16)
		b.Mov(fp, fR)
		b.Mov(gp, gR)
		b.Mov(op, oR)
		b.Loop(row, 16, func() {
			for i := int64(0); i < 16; i++ {
				b.Ldbu(x, fp, i)
				b.Ldbu(y, gp, i)
				b.Add(x, x, y)
				b.AddI(x, x, 1)
				b.SrlI(x, x, 1)
				b.Stb(x, op, i)
			}
			b.AddI(fp, fp, int64(w))
			b.AddI(gp, gp, int64(w))
			b.AddI(op, op, int64(w))
		})
	case isa.ExtMMX, isa.ExtMDMX:
		p := pix{b: b, vec: false}
		row := isa.R(13)
		fp, gp, op := isa.R(14), isa.R(15), isa.R(16)
		b.Mov(fp, fR)
		b.Mov(gp, gR)
		b.Mov(op, oR)
		b.Loop(row, 16, func() {
			for _, off := range []int64{0, 8} {
				p.ld(p.r(0), fp, isa.Reg{}, off)
				p.ld(p.r(1), gp, isa.Reg{}, off)
				p.op(isa.PAVGB, p.r(2), p.r(0), p.r(1))
				p.st(p.r(2), op, isa.Reg{}, off)
			}
			b.AddI(fp, fp, int64(w))
			b.AddI(gp, gp, int64(w))
			b.AddI(op, op, int64(w))
		})
	case isa.ExtMOM:
		p := pix{b: b, vec: true}
		stride := isa.R(28)
		b.MovI(stride, int64(w))
		b.SetVLI(16)
		for _, off := range []int64{0, 8} {
			p.ld(p.r(0), fR, stride, off)
			p.ld(p.r(1), gR, stride, off)
			p.op(isa.PAVGB, p.r(2), p.r(0), p.r(1))
			p.st(p.r(2), oR, stride, off)
		}
	}
}

// EmitCopyBlock16 appends a 16x16 block copy with row stride w (motion
// compensation for P blocks without interpolation).
func EmitCopyBlock16(b *asm.Builder, ext isa.Ext, w int, sR, dR isa.Reg) {
	switch ext {
	case isa.ExtAlpha:
		x, row := isa.R(11), isa.R(13)
		sp, dp := isa.R(14), isa.R(15)
		b.Mov(sp, sR)
		b.Mov(dp, dR)
		b.Loop(row, 16, func() {
			for i := int64(0); i < 16; i += 8 {
				b.Ldq(x, sp, i)
				b.Stq(x, dp, i)
			}
			b.AddI(sp, sp, int64(w))
			b.AddI(dp, dp, int64(w))
		})
	case isa.ExtMMX, isa.ExtMDMX:
		row := isa.R(13)
		sp, dp := isa.R(14), isa.R(15)
		b.Mov(sp, sR)
		b.Mov(dp, dR)
		b.Loop(row, 16, func() {
			for _, off := range []int64{0, 8} {
				b.Ldm(isa.M(0), sp, off)
				b.Stm(isa.M(0), dp, off)
			}
			b.AddI(sp, sp, int64(w))
			b.AddI(dp, dp, int64(w))
		})
	case isa.ExtMOM:
		stride := isa.R(28)
		b.MovI(stride, int64(w))
		b.SetVLI(16)
		for _, off := range []int64{0, 8} {
			b.MomLd(isa.V(0), sR, stride, off)
			b.MomSt(isa.V(0), dR, stride, off)
		}
	}
}

// EmitAddBlock8 appends an 8x8 reconstruction: out = sat8(pred + res)
// where pred/out have row stride w and res is an int16 block (stride 16
// bytes). The Alpha version uses the memory clip table at symbol
// "cliptab" (EnsureClipTab).
func EmitAddBlock8(b *asm.Builder, ext isa.Ext, w int, predR, resR, outR isa.Reg) {
	switch ext {
	case isa.ExtAlpha:
		tabR := isa.R(28)
		b.MovI(tabR, int64(b.Sym("cliptab")))
		x, y, a, row := isa.R(11), isa.R(12), isa.R(13), isa.R(14)
		pp, rp, op := isa.R(15), isa.R(16), isa.R(17)
		b.Mov(pp, predR)
		b.Mov(rp, resR)
		b.Mov(op, outR)
		b.Loop(row, 8, func() {
			for i := int64(0); i < 8; i++ {
				b.Ldbu(x, pp, i)
				b.Ldwu(y, rp, 2*i)
				b.Op(isa.SEXTW, y, y, isa.Reg{})
				b.Add(x, x, y)
				b.Add(a, tabR, x)
				b.Ldbu(x, a, 512)
				b.Stb(x, op, i)
			}
			b.AddI(pp, pp, int64(w))
			b.AddI(rp, rp, 16)
			b.AddI(op, op, int64(w))
		})
	case isa.ExtMMX, isa.ExtMDMX:
		p := pix{b: b, vec: false}
		b.Op(isa.PZERO, isa.M(25), isa.Reg{}, isa.Reg{})
		row := isa.R(14)
		pp, rp, op := isa.R(15), isa.R(16), isa.R(17)
		b.Mov(pp, predR)
		b.Mov(rp, resR)
		b.Mov(op, outR)
		b.Loop(row, 8, func() {
			p.ld(p.r(0), pp, isa.Reg{}, 0)
			p.op(isa.PUNPKLB, p.r(1), p.r(0), isa.M(25))
			p.op(isa.PUNPKHB, p.r(2), p.r(0), isa.M(25))
			p.ld(p.r(3), rp, isa.Reg{}, 0)
			p.ld(p.r(4), rp, isa.Reg{}, 8)
			p.op(isa.PADDH, p.r(1), p.r(1), p.r(3))
			p.op(isa.PADDH, p.r(2), p.r(2), p.r(4))
			p.op(isa.PACKUSHB, p.r(5), p.r(1), p.r(2))
			p.st(p.r(5), op, isa.Reg{}, 0)
			b.AddI(pp, pp, int64(w))
			b.AddI(rp, rp, 16)
			b.AddI(op, op, int64(w))
		})
	case isa.ExtMOM:
		p := pix{b: b, vec: true}
		strideW, stride16 := isa.R(28), isa.R(27)
		b.MovI(strideW, int64(w))
		b.MovI(stride16, 16)
		b.Op(isa.PZERO, isa.M(25), isa.Reg{}, isa.Reg{})
		b.SetVLI(8)
		p.ld(p.r(0), predR, strideW, 0)
		p.op(isa.PUNPKLB, p.r(1), p.r(0), isa.M(25))
		p.op(isa.PUNPKHB, p.r(2), p.r(0), isa.M(25))
		p.ld(p.r(3), resR, stride16, 0)
		p.ld(p.r(4), resR, stride16, 8)
		p.op(isa.PADDH, p.r(1), p.r(1), p.r(3))
		p.op(isa.PADDH, p.r(2), p.r(2), p.r(4))
		p.op(isa.PACKUSHB, p.r(5), p.r(1), p.r(2))
		p.st(p.r(5), outR, strideW, 0)
		b.SetVLI(16)
	}
}

// EnsureClipTab allocates the Alpha saturation lookup table used by
// EmitAddBlock8 (covering sums in [-512, 1023]).
func EnsureClipTab(b *asm.Builder) {
	tab := make([]byte, 1536)
	for i := range tab {
		v := i - 512
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		tab[i] = byte(v)
	}
	b.AllocBytes("cliptab", tab, 8)
}

// EmitDiffBlock8 appends an 8x8 residual computation: res (int16, stride
// 16 bytes) = cur - pred (bytes, row stride w).
func EmitDiffBlock8(b *asm.Builder, ext isa.Ext, w int, curR, predR, resR isa.Reg) {
	switch ext {
	case isa.ExtAlpha:
		x, y, row := isa.R(11), isa.R(12), isa.R(14)
		cp, pp, rp := isa.R(15), isa.R(16), isa.R(17)
		b.Mov(cp, curR)
		b.Mov(pp, predR)
		b.Mov(rp, resR)
		b.Loop(row, 8, func() {
			for i := int64(0); i < 8; i++ {
				b.Ldbu(x, cp, i)
				b.Ldbu(y, pp, i)
				b.Sub(x, x, y)
				b.Stw(x, rp, 2*i)
			}
			b.AddI(cp, cp, int64(w))
			b.AddI(pp, pp, int64(w))
			b.AddI(rp, rp, 16)
		})
	case isa.ExtMMX, isa.ExtMDMX:
		p := pix{b: b, vec: false}
		b.Op(isa.PZERO, isa.M(25), isa.Reg{}, isa.Reg{})
		row := isa.R(14)
		cp, pp, rp := isa.R(15), isa.R(16), isa.R(17)
		b.Mov(cp, curR)
		b.Mov(pp, predR)
		b.Mov(rp, resR)
		b.Loop(row, 8, func() {
			emitDiffRow(p, cp, pp, rp, isa.Reg{}, isa.Reg{})
			b.AddI(cp, cp, int64(w))
			b.AddI(pp, pp, int64(w))
			b.AddI(rp, rp, 16)
		})
	case isa.ExtMOM:
		p := pix{b: b, vec: true}
		strideW, stride16 := isa.R(28), isa.R(27)
		b.MovI(strideW, int64(w))
		b.MovI(stride16, 16)
		b.Op(isa.PZERO, isa.M(25), isa.Reg{}, isa.Reg{})
		b.SetVLI(8)
		emitDiffRow(p, curR, predR, resR, strideW, stride16)
		b.SetVLI(16)
	}
}

// emitDiffRow: 8 pixels -> 2 words of int16 differences.
func emitDiffRow(p pix, cp, pp, rp isa.Reg, strideIn, strideOut isa.Reg) {
	p.ld(p.r(0), cp, strideIn, 0)
	p.ld(p.r(1), pp, strideIn, 0)
	p.op(isa.PUNPKLB, p.r(2), p.r(0), isa.M(25))
	p.op(isa.PUNPKHB, p.r(3), p.r(0), isa.M(25))
	p.op(isa.PUNPKLB, p.r(4), p.r(1), isa.M(25))
	p.op(isa.PUNPKHB, p.r(5), p.r(1), isa.M(25))
	p.op(isa.PSUBH, p.r(2), p.r(2), p.r(4))
	p.op(isa.PSUBH, p.r(3), p.r(3), p.r(5))
	p.st(p.r(2), rp, strideOut, 0)
	p.st(p.r(3), rp, strideOut, 8)
}

// EmitTransposeUnpack transposes one 8x8 halfword tile (row pitch 16
// bytes) from srcP to dstP with the packed unpack network — the MMX-style
// fallback used by the transpose ablation (MOM's MOMTRANSH does the same in
// one instruction).
func EmitTransposeUnpack(b *asm.Builder, srcP, dstP isa.Reg) {
	p := pix{b: b, vec: false}
	emitTranspose8x8(p, srcP, dstP, isa.Reg{}, isa.M(29), 0)
}

// EmitBlockSADAvg appends a 16x16 SAD against an interpolated reference:
// res <- sum |cur - avg(refA, refB)| with row stride w. With refB == refA
// this degenerates to the integer-pel distance (avg(x,x) = x), which lets
// half-pel motion search treat every candidate uniformly.
func EmitBlockSADAvg(b *asm.Builder, ext isa.Ext, w int, curR, refAR, refBR, res isa.Reg) {
	switch ext {
	case isa.ExtAlpha:
		a, pq, q, nd, row := isa.R(11), isa.R(12), isa.R(13), isa.R(14), isa.R(15)
		cp, ap, bp := isa.R(16), isa.R(17), isa.R(18)
		b.MovI(res, 0)
		b.Mov(cp, curR)
		b.Mov(ap, refAR)
		b.Mov(bp, refBR)
		b.Loop(row, 16, func() {
			for i := int64(0); i < 16; i++ {
				b.Ldbu(pq, ap, i)
				b.Ldbu(q, bp, i)
				b.Add(pq, pq, q)
				b.AddI(pq, pq, 1)
				b.SrlI(pq, pq, 1)
				b.Ldbu(a, cp, i)
				b.Sub(a, a, pq)
				b.Op(isa.SUBQ, nd, isa.Zero, a)
				b.Op(isa.CMOVLT, a, a, nd)
				b.Add(res, res, a)
			}
			b.AddI(cp, cp, int64(w))
			b.AddI(ap, ap, int64(w))
			b.AddI(bp, bp, int64(w))
		})
	case isa.ExtMMX:
		row, cp, ap, bp, t := isa.R(15), isa.R(16), isa.R(17), isa.R(18), isa.R(13)
		b.Op(isa.PZERO, isa.M(8), isa.Reg{}, isa.Reg{})
		b.Op(isa.PZERO, isa.M(9), isa.Reg{}, isa.Reg{})
		b.Mov(cp, curR)
		b.Mov(ap, refAR)
		b.Mov(bp, refBR)
		b.Loop(row, 16, func() {
			for k, off := range []int64{0, 8} {
				b.Ldm(isa.M(0), cp, off)
				b.Ldm(isa.M(1), ap, off)
				b.Ldm(isa.M(2), bp, off)
				b.Op(isa.PAVGB, isa.M(1), isa.M(1), isa.M(2))
				b.Op(isa.PSADBW, isa.M(3), isa.M(0), isa.M(1))
				b.Op(isa.PADDW, isa.M(8+k), isa.M(8+k), isa.M(3))
			}
			b.AddI(cp, cp, int64(w))
			b.AddI(ap, ap, int64(w))
			b.AddI(bp, bp, int64(w))
		})
		b.Op(isa.PADDW, isa.M(8), isa.M(8), isa.M(9))
		b.OpI(isa.PSRLQ, isa.M(9), isa.M(8), 32)
		b.Op(isa.PADDW, isa.M(8), isa.M(8), isa.M(9))
		b.Op(isa.MFM, t, isa.M(8), isa.Reg{})
		b.OpI(isa.AND, res, t, 0xffffffff)
	case isa.ExtMDMX:
		row, cp, ap, bp, t := isa.R(15), isa.R(16), isa.R(17), isa.R(18), isa.R(13)
		b.Op(isa.ACLR, isa.A(0), isa.Reg{}, isa.Reg{})
		b.Op(isa.ACLR, isa.A(1), isa.Reg{}, isa.Reg{})
		b.Mov(cp, curR)
		b.Mov(ap, refAR)
		b.Mov(bp, refBR)
		b.Loop(row, 16, func() {
			for k, off := range []int64{0, 8} {
				b.Ldm(isa.M(0), cp, off)
				b.Ldm(isa.M(1), ap, off)
				b.Ldm(isa.M(2), bp, off)
				b.Op(isa.PAVGB, isa.M(1), isa.M(1), isa.M(2))
				b.Op(isa.ACCABDB, isa.A(k), isa.M(0), isa.M(1))
			}
			b.AddI(cp, cp, int64(w))
			b.AddI(ap, ap, int64(w))
			b.AddI(bp, bp, int64(w))
		})
		b.OpI(isa.RACSUM, res, isa.A(0), 0)
		b.OpI(isa.RACSUM, t, isa.A(1), 0)
		b.Add(res, res, t)
	case isa.ExtMOM:
		stride, t := isa.R(28), isa.R(13)
		b.MovI(stride, int64(w))
		b.SetVLI(16)
		b.Op(isa.ACLR, isa.VA(0), isa.Reg{}, isa.Reg{})
		b.Op(isa.ACLR, isa.VA(1), isa.Reg{}, isa.Reg{})
		for k, off := range []int64{0, 8} {
			b.MomLd(isa.V(0), curR, stride, off)
			b.MomLd(isa.V(1), refAR, stride, off)
			b.MomLd(isa.V(2), refBR, stride, off)
			b.Op(isa.PAVGB.Vector(), isa.V(1), isa.V(1), isa.V(2))
			b.Op(isa.ACCABDB.Vector(), isa.VA(k), isa.V(0), isa.V(1))
		}
		b.OpI(isa.RACSUM, res, isa.VA(0), 0)
		b.OpI(isa.RACSUM, t, isa.VA(1), 0)
		b.Add(res, res, t)
	}
}
