package kernels

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/media"
)

// taskLoop iterates a table of nAddr 64-bit addresses per task, loading them
// into addrRegs and invoking body.
func taskLoop(b *asm.Builder, nTasks, nAddr int, addrRegs []isa.Reg, body func()) {
	taskLoopSym(b, "tasks", nTasks, nAddr, addrRegs, body)
}

// taskLoopSym is taskLoop over an arbitrarily named task table symbol.
func taskLoopSym(b *asm.Builder, sym string, nTasks, nAddr int, addrRegs []isa.Reg, body func()) {
	tab, ctr := isa.R(1), isa.R(3)
	b.MovI(tab, int64(b.Sym(sym)))
	b.Loop(ctr, int64(nTasks), func() {
		for i := 0; i < nAddr; i++ {
			b.Ldq(addrRegs[i], tab, int64(8*i))
		}
		body()
		b.AddI(tab, tab, int64(8*nAddr))
	})
}

// blockGrid returns top-left corners of bxb blocks covering the plane.
func blockGrid(w, h, blk, step int) [][2]int {
	var out [][2]int
	for y := 0; y+blk <= h; y += step {
		for x := 0; x+blk <= w; x += step {
			out = append(out, [2]int{x, y})
		}
	}
	return out
}

// ---- compensation: bidirectional motion compensation (pred = avg) ----

// NewCompensation builds the mpeg2 motion-compensation kernel: for each
// 16x16 block, pred = (fwd + bwd + 1) >> 1.
func NewCompensation(sc Scale) Kernel {
	w, h := 64, 48
	if sc == ScaleBench {
		w, h = 128, 96
	}
	seed := uint64(21)
	blocks := blockGrid(w, h, 16, 16)
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New("compensation-" + ext.String())
		fwd := media.GenFrame(w, h, 0, seed)
		bwd := media.GenFrame(w, h, 2, seed)
		fA := b.AllocBytes("fwd", fwd.Pix, 8)
		bA := b.AllocBytes("bwd", bwd.Pix, 8)
		oA := b.Alloc("out", w*h, 8)
		var flat []uint64
		for _, bl := range blocks {
			off := uint64(bl[1]*w + bl[0])
			flat = append(flat, fA+off, bA+off, oA+off)
		}
		b.AllocQ("tasks", flat, 8)

		fR, bR, oR := isa.R(8), isa.R(9), isa.R(10)
		switch ext {
		case isa.ExtAlpha:
			taskLoop(b, len(blocks), 3, []isa.Reg{fR, bR, oR}, func() {
				x, y, row := isa.R(11), isa.R(12), isa.R(13)
				fp, bp, op := isa.R(14), isa.R(15), isa.R(16)
				b.Mov(fp, fR)
				b.Mov(bp, bR)
				b.Mov(op, oR)
				b.Loop(row, 16, func() {
					for i := int64(0); i < 16; i++ {
						b.Ldbu(x, fp, i)
						b.Ldbu(y, bp, i)
						b.Add(x, x, y)
						b.AddI(x, x, 1)
						b.SrlI(x, x, 1)
						b.Stb(x, op, i)
					}
					b.AddI(fp, fp, int64(w))
					b.AddI(bp, bp, int64(w))
					b.AddI(op, op, int64(w))
				})
			})
		case isa.ExtMMX, isa.ExtMDMX:
			p := pix{b: b, vec: false}
			taskLoop(b, len(blocks), 3, []isa.Reg{fR, bR, oR}, func() {
				row := isa.R(13)
				fp, bp, op := isa.R(14), isa.R(15), isa.R(16)
				b.Mov(fp, fR)
				b.Mov(bp, bR)
				b.Mov(op, oR)
				b.Loop(row, 16, func() {
					for _, off := range []int64{0, 8} {
						p.ld(p.r(0), fp, isa.Reg{}, off)
						p.ld(p.r(1), bp, isa.Reg{}, off)
						p.op(isa.PAVGB, p.r(2), p.r(0), p.r(1))
						p.st(p.r(2), op, isa.Reg{}, off)
					}
					b.AddI(fp, fp, int64(w))
					b.AddI(bp, bp, int64(w))
					b.AddI(op, op, int64(w))
				})
			})
		case isa.ExtMOM:
			p := pix{b: b, vec: true}
			stride := isa.R(20)
			b.MovI(stride, int64(w))
			b.SetVLI(16)
			taskLoop(b, len(blocks), 3, []isa.Reg{fR, bR, oR}, func() {
				for _, off := range []int64{0, 8} {
					p.ld(p.r(0), fR, stride, off)
					p.ld(p.r(1), bR, stride, off)
					p.op(isa.PAVGB, p.r(2), p.r(0), p.r(1))
					p.st(p.r(2), oR, stride, off)
				}
			})
		}
		return b.Build()
	}
	verify := func(prog *isa.Program, m *emu.Machine) error {
		fwd := media.GenFrame(w, h, 0, seed)
		bwd := media.GenFrame(w, h, 2, seed)
		want := make([]byte, w*h)
		for _, bl := range blocks {
			for j := 0; j < 16; j++ {
				for i := 0; i < 16; i++ {
					x, y := bl[0]+i, bl[1]+j
					want[y*w+x] = byte((uint16(fwd.At(x, y)) + uint16(bwd.At(x, y)) + 1) >> 1)
				}
			}
		}
		got := readBytes(m, prog.Sym("out"), w*h)
		for i := range want {
			if got[i] != want[i] {
				return mismatch(prog.Name, i, got[i], want[i])
			}
		}
		return nil
	}
	return Kernel{Name: "compensation", Build: build, Verify: verify}
}

// ---- addblock: residual reconstruction with saturation ----

// NewAddBlock builds the mpeg2 addblock kernel: out = sat8(pred + residual)
// over 8x8 blocks. The Alpha version saturates through a memory lookup
// table, exactly like the original mpeg2 code (which is why it is
// memory-bound); the multimedia versions use saturating packed arithmetic.
func NewAddBlock(sc Scale) Kernel {
	w, h := 64, 48
	if sc == ScaleBench {
		w, h = 128, 96
	}
	seed := uint64(31)
	blocks := blockGrid(w, h, 8, 8)
	genResiduals := func() []int16 {
		rng := media.NewRNG(seed + 1)
		res := make([]int16, 64*len(blocks))
		for i := range res {
			res[i] = rng.I16(300)
		}
		return res
	}
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New("addblock-" + ext.String())
		pred := media.GenFrame(w, h, 0, seed)
		res := genResiduals()
		pA := b.AllocBytes("pred", pred.Pix, 8)
		rA := b.AllocH("res", res, 8)
		oA := b.Alloc("out", w*h, 8)
		// Saturation lookup table covering sums in [-512, 1023].
		tab := make([]byte, 1536)
		for i := range tab {
			v := i - 512
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			tab[i] = byte(v)
		}
		b.AllocBytes("cliptab", tab, 8)
		var flat []uint64
		for bi, bl := range blocks {
			flat = append(flat, pA+uint64(bl[1]*w+bl[0]), rA+uint64(128*bi), oA+uint64(bl[1]*w+bl[0]))
		}
		b.AllocQ("tasks", flat, 8)

		pR, rR, oR := isa.R(8), isa.R(9), isa.R(10)
		switch ext {
		case isa.ExtAlpha:
			tabR := isa.R(20)
			b.MovI(tabR, int64(b.Sym("cliptab")))
			taskLoop(b, len(blocks), 3, []isa.Reg{pR, rR, oR}, func() {
				x, y, a, row := isa.R(11), isa.R(12), isa.R(13), isa.R(14)
				pp, rp, op := isa.R(15), isa.R(16), isa.R(17)
				b.Mov(pp, pR)
				b.Mov(rp, rR)
				b.Mov(op, oR)
				b.Loop(row, 8, func() {
					for i := int64(0); i < 8; i++ {
						b.Ldbu(x, pp, i)
						b.Ldwu(y, rp, 2*i)
						b.Op(isa.SEXTW, y, y, isa.Reg{})
						b.Add(x, x, y)
						b.Add(a, tabR, x)
						b.Ldbu(x, a, 512)
						b.Stb(x, op, i)
					}
					b.AddI(pp, pp, int64(w))
					b.AddI(rp, rp, 16)
					b.AddI(op, op, int64(w))
				})
			})
		case isa.ExtMMX, isa.ExtMDMX:
			p := pix{b: b, vec: false}
			b.Op(isa.PZERO, isa.M(31), isa.Reg{}, isa.Reg{})
			taskLoop(b, len(blocks), 3, []isa.Reg{pR, rR, oR}, func() {
				row := isa.R(14)
				pp, rp, op := isa.R(15), isa.R(16), isa.R(17)
				b.Mov(pp, pR)
				b.Mov(rp, rR)
				b.Mov(op, oR)
				b.Loop(row, 8, func() {
					p.ld(p.r(0), pp, isa.Reg{}, 0)
					p.op(isa.PUNPKLB, p.r(1), p.r(0), isa.M(31))
					p.op(isa.PUNPKHB, p.r(2), p.r(0), isa.M(31))
					p.ld(p.r(3), rp, isa.Reg{}, 0)
					p.ld(p.r(4), rp, isa.Reg{}, 8)
					p.op(isa.PADDH, p.r(1), p.r(1), p.r(3))
					p.op(isa.PADDH, p.r(2), p.r(2), p.r(4))
					p.op(isa.PACKUSHB, p.r(5), p.r(1), p.r(2))
					p.st(p.r(5), op, isa.Reg{}, 0)
					b.AddI(pp, pp, int64(w))
					b.AddI(rp, rp, 16)
					b.AddI(op, op, int64(w))
				})
			})
		case isa.ExtMOM:
			p := pix{b: b, vec: true}
			strideW, stride16 := isa.R(20), isa.R(21)
			b.MovI(strideW, int64(w))
			b.MovI(stride16, 16)
			b.Op(isa.PZERO, isa.M(31), isa.Reg{}, isa.Reg{})
			b.SetVLI(8)
			taskLoop(b, len(blocks), 3, []isa.Reg{pR, rR, oR}, func() {
				p.ld(p.r(0), pR, strideW, 0)
				p.op(isa.PUNPKLB, p.r(1), p.r(0), isa.M(31))
				p.op(isa.PUNPKHB, p.r(2), p.r(0), isa.M(31))
				p.ld(p.r(3), rR, stride16, 0)
				p.ld(p.r(4), rR, stride16, 8)
				p.op(isa.PADDH, p.r(1), p.r(1), p.r(3))
				p.op(isa.PADDH, p.r(2), p.r(2), p.r(4))
				p.op(isa.PACKUSHB, p.r(5), p.r(1), p.r(2))
				p.st(p.r(5), oR, strideW, 0)
			})
		}
		return b.Build()
	}
	verify := func(prog *isa.Program, m *emu.Machine) error {
		pred := media.GenFrame(w, h, 0, seed)
		res := genResiduals()
		want := make([]byte, w*h)
		for bi, bl := range blocks {
			for j := 0; j < 8; j++ {
				for i := 0; i < 8; i++ {
					x, y := bl[0]+i, bl[1]+j
					v := int32(pred.At(x, y)) + int32(res[64*bi+8*j+i])
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					want[y*w+x] = byte(v)
				}
			}
		}
		got := readBytes(m, prog.Sym("out"), w*h)
		for i := range want {
			if got[i] != want[i] {
				return mismatch(prog.Name, i, got[i], want[i])
			}
		}
		return nil
	}
	return Kernel{Name: "addblock", Build: build, Verify: verify}
}

// ---- h2v2upsample: 2x image zoom with the triangular filter ----

// NewH2V2 builds the jpeg h2v2 upsampling kernel (image zoom).
func NewH2V2(sc Scale) Kernel {
	w, h := 48, 32
	if sc == ScaleBench {
		w, h = 96, 64
	}
	seed := uint64(41)
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New("h2v2-" + ext.String())
		in := media.GenFrame(w, h, 0, seed)
		b.AllocBytes("in", in.Pix, 8)
		b.Alloc("tmp", 2*h*w*2, 8) // 2h rows of w int16
		b.Alloc("out", 2*w*2*h, 8)
		emitH2V2(b, ext, w, h)
		return b.Build()
	}
	verify := func(prog *isa.Program, m *emu.Machine) error {
		in := media.GenFrame(w, h, 0, seed)
		want := media.H2V2Upsample(in)
		got := readBytes(m, prog.Sym("out"), 2*w*2*h)
		for i := range want.Pix {
			if got[i] != want.Pix[i] {
				return fmt.Errorf("%s: pixel (%d,%d): got %d, want %d",
					prog.Name, i%(2*w), i/(2*w), got[i], want.Pix[i])
			}
		}
		return nil
	}
	return Kernel{Name: "h2v2upsample", Build: build, Verify: verify}
}

// emitH2V2 emits the two-phase upsampler. tmpRowB is the tmp row pitch in
// bytes (w int16 samples).
func emitH2V2(b *asm.Builder, ext isa.Ext, w, h int) {
	EmitH2V2(b, ext, w, h, "in", "tmp", "out")
}

// EmitH2V2 appends the full 2x upsampler over named plane symbols (input
// w x h bytes; tmp 2h rows of w int16; out 2w x 2h bytes).
func EmitH2V2(b *asm.Builder, ext isa.Ext, w, h int, inSym, tmpSym, outSym string) {
	inA, tmpA, outA := int64(b.Sym(inSym)), int64(b.Sym(tmpSym)), int64(b.Sym(outSym))
	switch ext {
	case isa.ExtAlpha:
		emitH2V2VertScalar(b, w, h, 0, h, inA, tmpA)
		emitH2V2HorizScalar(b, w, h, 0, 2*h, tmpA, outA)
	case isa.ExtMMX, isa.ExtMDMX:
		emitH2V2VertPacked(b, w, h, inA, tmpA)
		emitH2V2HorizPacked(b, w, h, tmpA, outA)
	case isa.ExtMOM:
		emitH2V2VertMOM(b, w, h, inA, tmpA)
		emitH2V2HorizMOM(b, w, h, tmpA, outA)
	}
}

// emitH2V2VertScalar: vertical pass for rows [j0,j1).
func emitH2V2VertScalar(b *asm.Builder, w, h, j0, j1 int, inA, tmpA int64) {
	if j1 <= j0 {
		return
	}
	tmpRowB := int64(2 * w)
	j, jc := isa.R(8), isa.R(9)
	cp, up, dp, t0 := isa.R(10), isa.R(11), isa.R(12), isa.R(13)
	c, u, d, s3 := isa.R(14), isa.R(15), isa.R(16), isa.R(17)
	r0p, r1p, i, ic := isa.R(18), isa.R(19), isa.R(20), isa.R(21)
	b.LoopVar(jc, j, int64(j0), 1, int64(j1-j0), func() {
		// Row pointers with border clamping via CMOV.
		b.MulI(cp, j, int64(w))
		b.AddI(cp, cp, inA)
		b.AddI(up, cp, int64(-w))
		b.Mov(t0, j) // j==0 -> up = cp
		b.Op(isa.CMOVEQ, up, t0, cp)
		b.AddI(dp, cp, int64(w))
		b.AddI(t0, j, int64(-(h - 1))) // j==h-1 -> down = cp
		b.Op(isa.CMOVEQ, dp, t0, cp)
		b.MulI(r0p, j, 2*tmpRowB)
		b.AddI(r0p, r0p, tmpA)
		b.AddI(r1p, r0p, tmpRowB)
		b.LoopVar(ic, i, 0, 1, int64(w), func() {
			b.Ldbu(c, cp, 0)
			b.Ldbu(u, up, 0)
			b.Ldbu(d, dp, 0)
			b.Add(s3, c, c)
			b.Add(s3, s3, c)
			b.Add(t0, s3, u)
			b.AddI(t0, t0, 2)
			b.SrlI(t0, t0, 2)
			b.Stw(t0, r0p, 0)
			b.Add(t0, s3, d)
			b.AddI(t0, t0, 1)
			b.SrlI(t0, t0, 2)
			b.Stw(t0, r1p, 0)
			b.AddI(cp, cp, 1)
			b.AddI(up, up, 1)
			b.AddI(dp, dp, 1)
			b.AddI(r0p, r0p, 2)
			b.AddI(r1p, r1p, 2)
		})
	})
}

// emitH2V2HorizScalar: horizontal pass over tmp rows [r0,r1).
func emitH2V2HorizScalar(b *asm.Builder, w, h, r0, r1 int, tmpA, outA int64) {
	if r1 <= r0 {
		return
	}
	tmpRowB := int64(2 * w)
	outRowB := int64(2 * w) // 2w bytes per output row
	j, jc := isa.R(8), isa.R(9)
	tp, op, t0 := isa.R(10), isa.R(11), isa.R(12)
	c, l, rr, s3 := isa.R(13), isa.R(14), isa.R(15), isa.R(16)
	i, ic := isa.R(17), isa.R(18)
	b.LoopVar(jc, j, int64(r0), 1, int64(r1-r0), func() {
		b.MulI(tp, j, tmpRowB)
		b.AddI(tp, tp, tmpA)
		b.MulI(op, j, outRowB)
		b.AddI(op, op, outA)
		// Border: out[0] = tmp[0]; out[1] = (3*t0 + t1 + 1) >> 2.
		b.Ldwu(c, tp, 0)
		b.Stb(c, op, 0)
		b.Ldwu(rr, tp, 2)
		b.Add(s3, c, c)
		b.Add(s3, s3, c)
		b.Add(t0, s3, rr)
		b.AddI(t0, t0, 1)
		b.SrlI(t0, t0, 2)
		b.Stb(t0, op, 1)
		// Interior i in [1, w-2].
		b.AddI(tp, tp, 2)
		b.AddI(op, op, 2)
		b.LoopVar(ic, i, 1, 1, int64(w-2), func() {
			b.Ldwu(c, tp, 0)
			b.Ldwu(l, tp, -2)
			b.Ldwu(rr, tp, 2)
			b.Add(s3, c, c)
			b.Add(s3, s3, c)
			b.Add(t0, s3, l)
			b.AddI(t0, t0, 2)
			b.SrlI(t0, t0, 2)
			b.Stb(t0, op, 0)
			b.Add(t0, s3, rr)
			b.AddI(t0, t0, 1)
			b.SrlI(t0, t0, 2)
			b.Stb(t0, op, 1)
			b.AddI(tp, tp, 2)
			b.AddI(op, op, 2)
		})
		// Border: out[2w-2] = (3*t[w-1] + t[w-2] + 2) >> 2; out[2w-1] = t[w-1].
		b.Ldwu(c, tp, 0)
		b.Ldwu(l, tp, -2)
		b.Add(s3, c, c)
		b.Add(s3, s3, c)
		b.Add(t0, s3, l)
		b.AddI(t0, t0, 2)
		b.SrlI(t0, t0, 2)
		b.Stb(t0, op, 0)
		b.Stb(c, op, 1)
	})
}

// emitH2V2VertPacked: vertical pass, 8 pixels per iteration. Used by
// MMX/MDMX for all rows.
func emitH2V2VertPacked(b *asm.Builder, w, h int, inA, tmpA int64) {
	p := pix{b: b, vec: false}
	tmpRowB := int64(2 * w)
	j, jc := isa.R(8), isa.R(9)
	cp, up, dp, t0 := isa.R(10), isa.R(11), isa.R(12), isa.R(13)
	r0p, ic := isa.R(18), isa.R(21)
	mz, m2, m1 := isa.M(29), isa.M(30), isa.M(28)
	b.Op(isa.PZERO, mz, isa.Reg{}, isa.Reg{})
	b.MovI(t0, 2)
	b.Op(isa.PSPLATH, m2, t0, isa.Reg{})
	b.MovI(t0, 1)
	b.Op(isa.PSPLATH, m1, t0, isa.Reg{})
	b.LoopVar(jc, j, 0, 1, int64(h), func() {
		b.MulI(cp, j, int64(w))
		b.AddI(cp, cp, inA)
		b.AddI(up, cp, int64(-w))
		b.Mov(t0, j)
		b.Op(isa.CMOVEQ, up, t0, cp)
		b.AddI(dp, cp, int64(w))
		b.AddI(t0, j, int64(-(h - 1)))
		b.Op(isa.CMOVEQ, dp, t0, cp)
		b.MulI(r0p, j, 2*tmpRowB)
		b.AddI(r0p, r0p, tmpA)
		b.Loop(ic, int64(w/8), func() {
			emitVertBlend(p, cp, up, dp, r0p, isa.Reg{}, isa.Reg{}, tmpRowB, mz, m2, m1)
			b.AddI(cp, cp, 8)
			b.AddI(up, up, 8)
			b.AddI(dp, dp, 8)
			b.AddI(r0p, r0p, 16)
		})
	})
}

// emitVertBlend emits the 8-pixel vertical blend shared by the packed and
// matrix paths. In vector mode, strideIn/strideOut carry the row strides.
func emitVertBlend(p pix, cp, up, dp, r0p isa.Reg, strideIn, strideOut isa.Reg, tmpRowB int64, mz, m2, m1 isa.Reg) {
	c, u, d := p.r(0), p.r(1), p.r(2)
	clo, chi, ulo, uhi, dlo, dhi := p.r(3), p.r(4), p.r(5), p.r(6), p.r(7), p.r(8)
	s3lo, s3hi, t := p.r(9), p.r(10), p.r(11)
	p.ld(c, cp, strideIn, 0)
	p.ld(u, up, strideIn, 0)
	p.ld(d, dp, strideIn, 0)
	p.op(isa.PUNPKLB, clo, c, mz)
	p.op(isa.PUNPKHB, chi, c, mz)
	p.op(isa.PUNPKLB, ulo, u, mz)
	p.op(isa.PUNPKHB, uhi, u, mz)
	p.op(isa.PUNPKLB, dlo, d, mz)
	p.op(isa.PUNPKHB, dhi, d, mz)
	p.op(isa.PADDH, s3lo, clo, clo)
	p.op(isa.PADDH, s3lo, s3lo, clo)
	p.op(isa.PADDH, s3hi, chi, chi)
	p.op(isa.PADDH, s3hi, s3hi, chi)
	// r0 = (3c + up + 2) >> 2
	p.op(isa.PADDH, t, s3lo, ulo)
	p.op(isa.PADDH, t, t, m2)
	p.opi(isa.PSRAH, t, t, 2)
	p.st(t, r0p, strideOut, 0)
	p.op(isa.PADDH, t, s3hi, uhi)
	p.op(isa.PADDH, t, t, m2)
	p.opi(isa.PSRAH, t, t, 2)
	p.st(t, r0p, strideOut, 8)
	// r1 = (3c + down + 1) >> 2
	p.op(isa.PADDH, t, s3lo, dlo)
	p.op(isa.PADDH, t, t, m1)
	p.opi(isa.PSRAH, t, t, 2)
	p.st(t, r0p, strideOut, tmpRowB)
	p.op(isa.PADDH, t, s3hi, dhi)
	p.op(isa.PADDH, t, t, m1)
	p.opi(isa.PSRAH, t, t, 2)
	p.st(t, r0p, strideOut, tmpRowB+8)
}

// emitH2V2HorizPacked: horizontal pass, 4 samples -> 8 output bytes per
// iteration; the four border outputs per row stay scalar.
func emitH2V2HorizPacked(b *asm.Builder, w, h int, tmpA, outA int64) {
	p := pix{b: b, vec: false}
	tmpRowB := int64(2 * w)
	outRowB := int64(2 * w)
	j, jc := isa.R(8), isa.R(9)
	tp, op := isa.R(10), isa.R(11)
	ic := isa.R(17)
	m2, m1 := isa.M(30), isa.M(28)
	t0 := isa.R(13)
	b.MovI(t0, 2)
	b.Op(isa.PSPLATH, m2, t0, isa.Reg{})
	b.MovI(t0, 1)
	b.Op(isa.PSPLATH, m1, t0, isa.Reg{})
	b.LoopVar(jc, j, 0, 1, int64(2*h), func() {
		b.MulI(tp, j, tmpRowB)
		b.AddI(tp, tp, tmpA)
		b.MulI(op, j, outRowB)
		b.AddI(op, op, outA)
		emitHorizBorderLeft(b, tp, op)
		b.AddI(tp, tp, 2)
		b.AddI(op, op, 2)
		// Interior: i in [1, w-2], 4 at a time; (w-2) might not divide by 4,
		// so run floor((w-2)/4) groups and finish the remainder scalar.
		groups := (w - 2) / 4
		rem := (w - 2) % 4
		b.Loop(ic, int64(groups), func() {
			emitHorizBlend(p, tp, op, isa.Reg{}, isa.Reg{}, m2, m1)
			b.AddI(tp, tp, 8)
			b.AddI(op, op, 8)
		})
		emitHorizScalarN(b, tp, op, rem)
		emitHorizBorderRight(b, tp, op, rem)
	})
}

// emitHorizBlend: 4 int16 samples -> 8 interleaved output bytes.
func emitHorizBlend(p pix, tp, op isa.Reg, strideIn, strideOut isa.Reg, m2, m1 isa.Reg) {
	c, l, r := p.r(0), p.r(1), p.r(2)
	s3, e, o, lo, hi := p.r(3), p.r(4), p.r(5), p.r(6), p.r(7)
	p.ld(c, tp, strideIn, 0)
	p.ld(l, tp, strideIn, -2)
	p.ld(r, tp, strideIn, 2)
	p.op(isa.PADDH, s3, c, c)
	p.op(isa.PADDH, s3, s3, c)
	p.op(isa.PADDH, e, s3, l)
	p.op(isa.PADDH, e, e, m2)
	p.opi(isa.PSRAH, e, e, 2)
	p.op(isa.PADDH, o, s3, r)
	p.op(isa.PADDH, o, o, m1)
	p.opi(isa.PSRAH, o, o, 2)
	p.op(isa.PUNPKLH, lo, e, o)
	p.op(isa.PUNPKHH, hi, e, o)
	p.op(isa.PACKUSHB, lo, lo, hi)
	p.st(lo, op, strideOut, 0)
}

func emitHorizBorderLeft(b *asm.Builder, tp, op isa.Reg) {
	c, rr, s3, t0 := isa.R(13), isa.R(14), isa.R(15), isa.R(16)
	b.Ldwu(c, tp, 0)
	b.Stb(c, op, 0)
	b.Ldwu(rr, tp, 2)
	b.Add(s3, c, c)
	b.Add(s3, s3, c)
	b.Add(t0, s3, rr)
	b.AddI(t0, t0, 1)
	b.SrlI(t0, t0, 2)
	b.Stb(t0, op, 1)
}

// emitHorizScalarN finishes n interior samples scalar (pointer-relative).
func emitHorizScalarN(b *asm.Builder, tp, op isa.Reg, n int) {
	c, l, rr, s3, t0 := isa.R(13), isa.R(14), isa.R(15), isa.R(16), isa.R(12)
	for k := 0; k < n; k++ {
		b.Ldwu(c, tp, 0)
		b.Ldwu(l, tp, -2)
		b.Ldwu(rr, tp, 2)
		b.Add(s3, c, c)
		b.Add(s3, s3, c)
		b.Add(t0, s3, l)
		b.AddI(t0, t0, 2)
		b.SrlI(t0, t0, 2)
		b.Stb(t0, op, 0)
		b.Add(t0, s3, rr)
		b.AddI(t0, t0, 1)
		b.SrlI(t0, t0, 2)
		b.Stb(t0, op, 1)
		b.AddI(tp, tp, 2)
		b.AddI(op, op, 2)
	}
}

func emitHorizBorderRight(b *asm.Builder, tp, op isa.Reg, rem int) {
	c, l, s3, t0 := isa.R(13), isa.R(14), isa.R(15), isa.R(16)
	_ = rem
	b.Ldwu(c, tp, 0)
	b.Ldwu(l, tp, -2)
	b.Add(s3, c, c)
	b.Add(s3, s3, c)
	b.Add(t0, s3, l)
	b.AddI(t0, t0, 2)
	b.SrlI(t0, t0, 2)
	b.Stb(t0, op, 0)
	b.Stb(c, op, 1)
}

// emitH2V2VertMOM: vertical pass vectorised across rows (VL=16); the first
// and last rows (border clamping) run through the packed path.
func emitH2V2VertMOM(b *asm.Builder, w, h int, inA, tmpA int64) {
	p := pix{b: b, vec: true}
	tmpRowB := int64(2 * w)
	mz, m2, m1 := isa.M(29), isa.M(30), isa.M(28)
	t0 := isa.R(13)
	b.Op(isa.PZERO, mz, isa.Reg{}, isa.Reg{})
	b.MovI(t0, 2)
	b.Op(isa.PSPLATH, m2, t0, isa.Reg{})
	b.MovI(t0, 1)
	b.Op(isa.PSPLATH, m1, t0, isa.Reg{})

	// Interior rows [1, h-1): chunks of up to 16 rows.
	strideIn, strideOut := isa.R(22), isa.R(23)
	b.MovI(strideIn, int64(w))
	b.MovI(strideOut, 2*tmpRowB)
	j, rows, cp, r0p, ic := isa.R(8), isa.R(24), isa.R(10), isa.R(18), isa.R(21)
	jc := isa.R(9)
	nChunks := (h - 2 + 15) / 16
	b.MovI(j, 1)
	b.Loop(jc, int64(nChunks), func() {
		// rows = min(16, (h-1) - j), clamped via CMOV.
		b.MovI(rows, int64(h-1))
		b.Sub(rows, rows, j)
		b.AddI(t0, rows, -16)
		b.MovI(ic, 16)
		b.Op(isa.CMOVGE, rows, t0, ic)
		b.SetVL(rows)
		b.MulI(cp, j, int64(w))
		b.AddI(cp, cp, inA)
		b.MulI(r0p, j, 2*tmpRowB)
		b.AddI(r0p, r0p, tmpA)
		b.Loop(ic, int64(w/8), func() {
			upP, dnP := isa.R(11), isa.R(12)
			b.AddI(upP, cp, int64(-w))
			b.AddI(dnP, cp, int64(w))
			emitVertBlend(p, cp, upP, dnP, r0p, strideIn, strideOut, tmpRowB, mz, m2, m1)
			b.AddI(cp, cp, 8)
			b.AddI(r0p, r0p, 16)
		})
		b.AddI(j, j, 16)
	})
	// Border rows 0 and h-1 through the packed path.
	b.SetVLI(16)
	emitH2V2VertPackedRows(b, w, h, []int{0, h - 1}, inA, tmpA)
}

// emitH2V2VertPackedRows runs the packed vertical blend for specific rows.
func emitH2V2VertPackedRows(b *asm.Builder, w, h int, rows []int, inA, tmpA int64) {
	p := pix{b: b, vec: false}
	tmpRowB := int64(2 * w)
	mz, m2, m1 := isa.M(29), isa.M(30), isa.M(28)
	cp, up, dp, r0p, ic := isa.R(10), isa.R(11), isa.R(12), isa.R(18), isa.R(21)
	for _, j := range rows {
		uj, dj := j-1, j+1
		if uj < 0 {
			uj = 0
		}
		if dj >= h {
			dj = h - 1
		}
		b.MovI(cp, inA+int64(j*w))
		b.MovI(up, inA+int64(uj*w))
		b.MovI(dp, inA+int64(dj*w))
		b.MovI(r0p, tmpA+int64(j)*2*tmpRowB)
		b.Loop(ic, int64(w/8), func() {
			emitVertBlend(p, cp, up, dp, r0p, isa.Reg{}, isa.Reg{}, tmpRowB, mz, m2, m1)
			b.AddI(cp, cp, 8)
			b.AddI(up, up, 8)
			b.AddI(dp, dp, 8)
			b.AddI(r0p, r0p, 16)
		})
	}
}

// emitH2V2HorizMOM: horizontal pass vectorised across tmp rows (VL up to
// 16); the per-row border outputs stay scalar.
func emitH2V2HorizMOM(b *asm.Builder, w, h int, tmpA, outA int64) {
	p := pix{b: b, vec: true}
	tmpRowB := int64(2 * w)
	outRowB := int64(2 * w)
	m2, m1 := isa.M(30), isa.M(28)
	t0 := isa.R(13)
	b.MovI(t0, 2)
	b.Op(isa.PSPLATH, m2, t0, isa.Reg{})
	b.MovI(t0, 1)
	b.Op(isa.PSPLATH, m1, t0, isa.Reg{})

	strideIn, strideOut := isa.R(22), isa.R(23)
	b.MovI(strideIn, tmpRowB)
	b.MovI(strideOut, outRowB)
	nRows := 2 * h
	j, jc, rows, tp, op, ic := isa.R(8), isa.R(9), isa.R(24), isa.R(10), isa.R(11), isa.R(17)
	nChunks := (nRows + 15) / 16
	groups := (w - 2) / 4
	rem := (w - 2) % 4
	b.MovI(j, 0)
	b.Loop(jc, int64(nChunks), func() {
		b.MovI(rows, int64(nRows))
		b.Sub(rows, rows, j)
		b.AddI(t0, rows, -16)
		b.MovI(ic, 16)
		b.Op(isa.CMOVGE, rows, t0, ic)
		b.SetVL(rows)
		b.MulI(tp, j, tmpRowB)
		b.AddI(tp, tp, tmpA+2)
		b.MulI(op, j, outRowB)
		b.AddI(op, op, outA+2)
		b.Loop(ic, int64(groups), func() {
			emitHorizBlend(p, tp, op, strideIn, strideOut, m2, m1)
			b.AddI(tp, tp, 8)
			b.AddI(op, op, 8)
		})
		b.AddI(j, j, 16)
	})
	// Borders and remainder, scalar over every row.
	jr, jrc := isa.R(8), isa.R(9)
	b.LoopVar(jrc, jr, 0, 1, int64(nRows), func() {
		b.MulI(tp, jr, tmpRowB)
		b.AddI(tp, tp, tmpA)
		b.MulI(op, jr, outRowB)
		b.AddI(op, op, outA)
		emitHorizBorderLeft(b, tp, op)
		// Position pointers at the remainder start: 1 + groups*4 samples in.
		b.MulI(tp, jr, tmpRowB)
		b.AddI(tp, tp, tmpA+int64(2*(1+groups*4)))
		b.MulI(op, jr, outRowB)
		b.AddI(op, op, outA+int64(2*(1+groups*4)))
		emitHorizScalarN(b, tp, op, rem)
		emitHorizBorderRight(b, tp, op, rem)
	})
}
