package kernels

import (
	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/media"
)

// NewLTP builds the GSM long-term-prediction parameter kernel: for each
// subframe, the cross-correlation against the reconstructed history is
// maximised over lags 40..120. MOM vectorises the lag dimension (16 lags
// per stride -2 matrix load); MDMX reduces each lag with one accumulator;
// MMX uses PMADDH with a horizontal fold; Alpha is a scalar MAC loop.
func NewLTP(sc Scale) Kernel {
	nSub := 12
	if sc == ScaleBench {
		nSub = 32
	}
	seed := uint64(61)
	sigLen := 160 + 160*nSub
	positions := make([]int, nSub)
	for s := range positions {
		positions[s] = 160 + 160*s
	}
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New("ltpparameters-" + ext.String())
		sig := media.GenPCM(sigLen, seed)
		sigA := b.AllocH("sig", sig, 8)
		b.Alloc("out", 16*nSub, 8) // bestLag, bestCorr per subframe
		b.Alloc("scratch", 16*8, 8)
		var flat []uint64
		for _, pos := range positions {
			flat = append(flat, sigA+uint64(2*pos))
		}
		b.AllocQ("tasks", flat, 8)
		EmitLTPSearch(b, ext, nSub, "tasks", "out", "scratch")
		return b.Build()
	}
	verify := func(prog *isa.Program, m *emu.Machine) error {
		sig := media.GenPCM(sigLen, seed)
		got := readU64s(m, prog.Sym("out"), 2*nSub)
		for s, pos := range positions {
			lag, corr := media.LTPParameters(sig[pos:pos+media.SubframeLen], sig, pos)
			if int64(got[2*s]) != int64(lag) {
				return mismatch(prog.Name+"/lag", s, int64(got[2*s]), lag)
			}
			if int64(got[2*s+1]) != int64(corr) {
				return mismatch(prog.Name+"/corr", s, int64(got[2*s+1]), corr)
			}
		}
		return nil
	}
	return Kernel{Name: "ltpparameters", Build: build, Verify: verify}
}

// EmitLTPSearch appends the full LTP lag search: tasksSym is a table of one
// address per subframe (the subframe start inside the 16-bit signal);
// outSym receives (bestLag, bestCorr) as two 64-bit words per subframe;
// scratchSym needs 16*8 bytes (MOM correlation spill).
func EmitLTPSearch(b *asm.Builder, ext isa.Ext, nSub int, tasksSym, outSym, scratchSym string) {
	dR := isa.R(8) // subframe base address
	outP := isa.R(2)
	b.MovI(outP, int64(b.Sym(outSym)))
	best, bestLag, corr, lag, t := isa.R(10), isa.R(11), isa.R(12), isa.R(13), isa.R(14)

	argmaxUpdate := func() {
		// if corr > best { best = corr; bestLag = lag }
		b.Sub(t, best, corr)
		b.Op(isa.CMOVLT, bestLag, t, lag)
		b.Op(isa.CMOVLT, best, t, corr)
	}
	storeResult := func() {
		b.Stq(bestLag, outP, 0)
		b.Stq(best, outP, 8)
		b.AddI(outP, outP, 16)
	}

	switch ext {
	case isa.ExtAlpha:
		dpP, a, c, lc := isa.R(15), isa.R(16), isa.R(17), isa.R(18)
		taskLoopSym(b, tasksSym, nSub, 1, []isa.Reg{dR}, func() {
			b.MovI(best, -(1 << 31))
			b.MovI(bestLag, media.LTPMinLag)
			b.LoopVar(lc, lag, media.LTPMinLag, 1, media.LTPMaxLag-media.LTPMinLag+1, func() {
				b.SllI(t, lag, 1)
				b.Sub(dpP, dR, t)
				b.MovI(corr, 0)
				for i := int64(0); i < media.SubframeLen; i++ {
					b.Ldwu(a, dR, 2*i)
					b.Op(isa.SEXTW, a, a, isa.Reg{})
					b.Ldwu(c, dpP, 2*i)
					b.Op(isa.SEXTW, c, c, isa.Reg{})
					b.Mul(a, a, c)
					b.Add(corr, corr, a)
				}
				argmaxUpdate()
			})
			storeResult()
		})

	case isa.ExtMMX:
		dpP, lc := isa.R(15), isa.R(18)
		acc, prod, dw := isa.M(10), isa.M(11), isa.M(12)
		taskLoopSym(b, tasksSym, nSub, 1, []isa.Reg{dR}, func() {
			// Hoist the 10 subframe words into M0..M9.
			for j := 0; j < 10; j++ {
				b.Ldm(isa.M(j), dR, int64(8*j))
			}
			b.MovI(best, -(1 << 31))
			b.MovI(bestLag, media.LTPMinLag)
			b.LoopVar(lc, lag, media.LTPMinLag, 1, media.LTPMaxLag-media.LTPMinLag+1, func() {
				b.SllI(t, lag, 1)
				b.Sub(dpP, dR, t)
				b.Op(isa.PZERO, acc, isa.Reg{}, isa.Reg{})
				for j := 0; j < 10; j++ {
					b.Ldm(dw, dpP, int64(8*j))
					b.Op(isa.PMADDH, prod, dw, isa.M(j))
					b.Op(isa.PADDW, acc, acc, prod)
				}
				b.OpI(isa.PSRLQ, prod, acc, 32)
				b.Op(isa.PADDW, acc, acc, prod)
				b.Op(isa.MFM, corr, acc, isa.Reg{})
				b.Op(isa.SEXTL, corr, corr, isa.Reg{})
				argmaxUpdate()
			})
			storeResult()
		})

	case isa.ExtMDMX:
		dpP, lc := isa.R(15), isa.R(18)
		dw := isa.M(12)
		taskLoopSym(b, tasksSym, nSub, 1, []isa.Reg{dR}, func() {
			for j := 0; j < 10; j++ {
				b.Ldm(isa.M(j), dR, int64(8*j))
			}
			b.MovI(best, -(1 << 31))
			b.MovI(bestLag, media.LTPMinLag)
			b.LoopVar(lc, lag, media.LTPMinLag, 1, media.LTPMaxLag-media.LTPMinLag+1, func() {
				b.SllI(t, lag, 1)
				b.Sub(dpP, dR, t)
				b.Op(isa.ACLR, isa.A(0), isa.Reg{}, isa.Reg{})
				for j := 0; j < 10; j++ {
					b.Ldm(dw, dpP, int64(8*j))
					b.Op(isa.ACCMULH, isa.A(0), dw, isa.M(j))
				}
				b.OpI(isa.RACSUM, corr, isa.A(0), 1) // halfword-mode sum
				argmaxUpdate()
			})
			storeResult()
		})

	case isa.ExtMOM:
		// 16 lags at a time: the matrix load with stride -2 brings the
		// history window of 16 consecutive lags as 16 matrix rows.
		dpP, rem, rows, lc := isa.R(15), isa.R(16), isa.R(17), isa.R(18)
		scr, sp, k := isa.R(19), isa.R(20), isa.R(21)
		strideNeg2, stride8 := isa.R(22), isa.R(23)
		mz := isa.M(12)
		b.MovI(strideNeg2, -2)
		b.MovI(stride8, 8)
		b.Op(isa.PZERO, mz, isa.Reg{}, isa.Reg{})
		b.MovI(scr, int64(b.Sym(scratchSym)))
		taskLoopSym(b, tasksSym, nSub, 1, []isa.Reg{dR}, func() {
			for j := 0; j < 10; j++ {
				b.Ldm(isa.M(j), dR, int64(8*j))
			}
			b.MovI(best, -(1 << 31))
			b.MovI(bestLag, media.LTPMinLag)
			b.MovI(lag, media.LTPMinLag)
			b.MovI(rem, media.LTPMaxLag-media.LTPMinLag+1)
			nChunks := (media.LTPMaxLag - media.LTPMinLag + 1 + 15) / 16
			b.Loop(lc, int64(nChunks), func() {
				// rows = min(16, rem)
				b.Mov(rows, rem)
				b.AddI(t, rows, -16)
				b.MovI(k, 16)
				b.Op(isa.CMOVGE, rows, t, k)
				b.SetVL(rows)
				// base = d - 2*lag (history window for the first lag of
				// this chunk); row w sits 2 bytes lower per lag.
				b.SllI(t, lag, 1)
				b.Sub(dpP, dR, t)
				b.Op(isa.MOMSPLAT, isa.V(3), mz, isa.Reg{})
				for j := 0; j < 10; j++ {
					b.MomLd(isa.V(1), dpP, strideNeg2, int64(8*j))
					b.Op(isa.PMADDH.Vector(), isa.V(2), isa.V(1), isa.M(j))
					b.Op(isa.PADDW.Vector(), isa.V(3), isa.V(3), isa.V(2))
				}
				// Horizontal fold per row, spill, scalar argmax scan.
				b.OpI(isa.PSRLQ.Vector(), isa.V(4), isa.V(3), 32)
				b.Op(isa.PADDW.Vector(), isa.V(4), isa.V(4), isa.V(3))
				b.MomSt(isa.V(4), scr, stride8, 0)
				b.Mov(sp, scr)
				b.Mov(k, rows)
				b.LoopDyn(k, func() {
					b.Ldl(corr, sp, 0)
					argmaxUpdate()
					b.AddI(sp, sp, 8)
					b.AddI(lag, lag, 1)
				})
				b.AddI(rem, rem, -16)
			})
			storeResult()
		})
		b.SetVLI(16)
	}
}
