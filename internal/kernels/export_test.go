package kernels

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/media"
)

// The exported emitters are the building blocks of the applications; test
// each against the golden arithmetic on every ISA level.

func runProg(t *testing.T, p *isa.Program) *emu.Machine {
	t.Helper()
	m := emu.New(p)
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEmitDiffAndAddBlockRoundTrip(t *testing.T) {
	w := 32
	for _, ext := range isa.AllExts {
		b := asm.New("diffadd")
		cur := media.GenFrame(w, 16, 0, 7)
		pred := media.GenFrame(w, 16, 1, 7)
		curA := b.AllocBytes("cur", cur.Pix, 8)
		predA := b.AllocBytes("pred", pred.Pix, 8)
		resA := b.Alloc("res", 128, 8)
		outA := b.Alloc("out", w*16, 8)
		EnsureClipTab(b)
		c, p, r, o := isa.R(8), isa.R(9), isa.R(10), isa.R(7)
		b.MovI(c, int64(curA))
		b.MovI(p, int64(predA))
		b.MovI(r, int64(resA))
		b.MovI(o, int64(outA))
		EmitDiffBlock8(b, ext, w, c, p, r)
		EmitAddBlock8(b, ext, w, p, r, o)
		m := runProg(t, b.Build())
		// pred + (cur - pred) must reconstruct cur exactly over the block.
		got := m.Mem.Bytes(outA, w*16)
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				if got[j*w+i] != cur.Pix[j*w+i] {
					t.Fatalf("%v: (%d,%d) = %d, want %d", ext, i, j, got[j*w+i], cur.Pix[j*w+i])
				}
			}
		}
	}
}

func TestEmitCopyAndAvgBlock(t *testing.T) {
	w := 48
	for _, ext := range isa.AllExts {
		b := asm.New("copyavg")
		src1 := media.GenFrame(w, 16, 0, 9)
		src2 := media.GenFrame(w, 16, 1, 9)
		aA := b.AllocBytes("a", src1.Pix, 8)
		bA := b.AllocBytes("b", src2.Pix, 8)
		cpA := b.Alloc("cp", w*16, 8)
		avA := b.Alloc("av", w*16, 8)
		ra, rb, rc := isa.R(8), isa.R(9), isa.R(10)
		b.MovI(ra, int64(aA))
		b.MovI(rb, int64(bA))
		b.MovI(rc, int64(cpA))
		EmitCopyBlock16(b, ext, w, ra, rc)
		b.MovI(rc, int64(avA))
		EmitAvgBlock16(b, ext, w, ra, rb, rc)
		m := runProg(t, b.Build())
		gotCp := m.Mem.Bytes(cpA, w*16)
		gotAv := m.Mem.Bytes(avA, w*16)
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				if gotCp[j*w+i] != src1.Pix[j*w+i] {
					t.Fatalf("%v copy (%d,%d)", ext, i, j)
				}
				want := byte((uint16(src1.Pix[j*w+i]) + uint16(src2.Pix[j*w+i]) + 1) >> 1)
				if gotAv[j*w+i] != want {
					t.Fatalf("%v avg (%d,%d) = %d want %d", ext, i, j, gotAv[j*w+i], want)
				}
			}
		}
	}
}

func TestEmitBlockSADMatchesGolden(t *testing.T) {
	w := 64
	cur := media.GenFrame(w, 32, 0, 11)
	ref := media.GenFrame(w, 32, 1, 11)
	want := media.SAD16(cur, 8, 4, ref, 11, 7)
	for _, ext := range isa.AllExts {
		b := asm.New("sad")
		curA := b.AllocBytes("cur", cur.Pix, 8)
		refA := b.AllocBytes("ref", ref.Pix, 8)
		outA := b.Alloc("out", 8, 8)
		rc, rr, rs, ro := isa.R(8), isa.R(9), isa.R(10), isa.R(7)
		b.MovI(rc, int64(curA)+int64(4*w+8))
		b.MovI(rr, int64(refA)+int64(7*w+11))
		EmitBlockSAD(b, ext, w, rc, rr, rs)
		b.MovI(ro, int64(outA))
		b.Stq(rs, ro, 0)
		m := runProg(t, b.Build())
		if got := int64(m.Mem.Load64(outA)); got != want {
			t.Errorf("%v: SAD = %d, want %d", ext, got, want)
		}
	}
}

func TestEmitFDCTIDCTBatchRoundTrip(t *testing.T) {
	// FDCT then IDCT of pixel-range blocks must round-trip within the
	// fixed-point tolerance, identically across ISAs.
	nb := 20 // deliberately not a multiple of 16 (exercises the MOM tail)
	rng := media.NewRNG(13)
	blocks := make([]int16, 64*nb)
	for i := range blocks {
		blocks[i] = int16(rng.Intn(256) - 128)
	}
	var ref []int16
	for _, ext := range isa.AllExts {
		b := asm.New("dct")
		b.AllocH("blocks", blocks, 8)
		b.Alloc("mid", 128*nb, 8)
		b.Alloc("out", 128*nb, 8)
		EnsureDCT(b)
		EmitFDCTBatch(b, ext, int64(b.Sym("blocks")), int64(b.Sym("mid")), nb)
		EmitIDCTBatch(b, ext, int64(b.Sym("mid")), int64(b.Sym("out")), nb)
		m := runProg(t, b.Build())
		got := readI16s(m, m.Prog.Sym("out"), 64*nb)
		if ref == nil {
			ref = got
			// Round-trip quality vs the original pixels.
			worst := 0
			for i := range got {
				d := int(got[i]) - int(blocks[i])
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
			if worst > 6 {
				t.Errorf("round-trip worst error %d > 6", worst)
			}
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%v: output %d differs across ISAs: %d vs %d", ext, i, got[i], ref[i])
			}
		}
	}
}

func TestEmitYCC2RGBMatchesGolden(t *testing.T) {
	n := 256 + 8 // exercises the MOM remainder path
	rng := media.NewRNG(17)
	y := make([]byte, n)
	cb := make([]byte, n)
	cr := make([]byte, n)
	for i := 0; i < n; i++ {
		y[i], cb[i], cr[i] = rng.Byte(), rng.Byte(), rng.Byte()
	}
	for _, ext := range isa.AllExts {
		b := asm.New("y2r")
		b.AllocBytes("y", y, 8)
		b.AllocBytes("cb", cb, 8)
		b.AllocBytes("cr", cr, 8)
		b.Alloc("r", n, 8)
		b.Alloc("g", n, 8)
		b.Alloc("b2", n, 8)
		EmitYCC2RGB(b, ext, n, "y", "cb", "cr", "r", "g", "b2")
		m := runProg(t, b.Build())
		gr := m.Mem.Bytes(m.Prog.Sym("r"), n)
		gg := m.Mem.Bytes(m.Prog.Sym("g"), n)
		gb := m.Mem.Bytes(m.Prog.Sym("b2"), n)
		for i := 0; i < n; i++ {
			wr, wg, wb := media.YCC2RGB(y[i], cb[i], cr[i])
			if gr[i] != wr || gg[i] != wg || gb[i] != wb {
				t.Fatalf("%v: pixel %d = (%d,%d,%d), want (%d,%d,%d)",
					ext, i, gr[i], gg[i], gb[i], wr, wg, wb)
			}
		}
	}
}

func TestTranspose4x4hEmitter(t *testing.T) {
	// The packed 4x4 transpose network against a directly-computed matrix.
	b := asm.New("t4")
	var words []uint64
	for r := 0; r < 4; r++ {
		var w uint64
		for c := 0; c < 4; c++ {
			w |= uint64(uint16(r*4+c)) << (16 * uint(c))
		}
		words = append(words, w)
	}
	b.AllocQ("in", words, 8)
	b.Alloc("out", 32, 8)
	base, outp := isa.R(1), isa.R(2)
	b.MovI(base, int64(b.Sym("in")))
	b.MovI(outp, int64(b.Sym("out")))
	for i := 0; i < 4; i++ {
		b.Ldm(isa.M(i), base, int64(8*i))
	}
	p := pix{b: b, vec: false}
	p.transpose4x4h(
		[4]isa.Reg{isa.M(0), isa.M(1), isa.M(2), isa.M(3)},
		[4]isa.Reg{isa.M(4), isa.M(5), isa.M(6), isa.M(7)},
		[4]isa.Reg{isa.M(8), isa.M(9), isa.M(10), isa.M(11)})
	for i := 0; i < 4; i++ {
		b.Stm(isa.M(4+i), outp, int64(8*i))
	}
	m := runProg(t, b.Build())
	out := m.Mem.Bytes(m.Prog.Sym("out"), 32)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			got := uint16(out[2*(r*4+c)]) | uint16(out[2*(r*4+c)+1])<<8
			if got != uint16(c*4+r) {
				t.Fatalf("transpose (%d,%d) = %d, want %d", r, c, got, c*4+r)
			}
		}
	}
}
