package kernels

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/media"
)

// Forward-DCT emitters, mirroring the IDCT structure. The encoders
// vectorise their DCT exactly like the decoders' IDCT: column pass ->
// transpose -> column pass -> transpose, with the symmetric/antisymmetric
// input split (s[n] = x[n]+x[7-n], d[n] = x[n]-x[7-n]) replacing the
// even/odd output split.

// emitFDCTColPassPromote: one forward column pass over both 4-column
// groups with 32-bit promotion (MMX/MOM path).
func emitFDCTColPassPromote(p pix, src, dst, stride isa.Reg, coefP, biasW isa.Reg, prescale bool) {
	b := p.b
	coefM := isa.M(15)
	for _, off := range []int64{0, 8} {
		for u := 0; u < 8; u++ {
			p.ld(p.r(idctX[u]), src, stride, int64(u*16)+off)
			if prescale {
				p.opi(isa.PSLLH, p.r(idctX[u]), p.r(idctX[u]), media.FDCTPre)
			}
		}
		// In-place symmetric split: x[n] <- s[n], x[7-n] <- d[n].
		t := p.r(idctTmp[0])
		for n := 0; n < 4; n++ {
			p.op(isa.PADDH, t, p.r(idctX[n]), p.r(idctX[7-n]))
			p.op(isa.PSUBH, p.r(idctX[7-n]), p.r(idctX[n]), p.r(idctX[7-n]))
			p.op(isa.PMOV, p.r(idctX[n]), t, isa.Reg{})
		}
		// X[2k] from s (x[0..3]); X[2k+1] from d (x[7-n] holds d[n]).
		for k := 0; k < 4; k++ {
			accL, accH := p.r(idctAccs[0]), p.r(idctAccs[1])
			lo, hi, pt := p.r(idctTmp[0]), p.r(idctTmp[1]), p.r(idctTmp[2])
			emitMACGroup := func(coefRow int, operand func(n int) isa.Reg, outRow int) {
				p.broadcast(accL, biasW)
				p.broadcast(accH, biasW)
				for n := 0; n < 4; n++ {
					b.Ldm(coefM, coefP, int64(8*(coefRow*8+n)))
					p.op(isa.PMULLH, lo, operand(n), coefM)
					p.op(isa.PMULHH, hi, operand(n), coefM)
					p.op(isa.PUNPKLH, pt, lo, hi)
					p.op(isa.PADDW, accL, accL, pt)
					p.op(isa.PUNPKHH, pt, lo, hi)
					p.op(isa.PADDW, accH, accH, pt)
				}
				p.opi(isa.PSRAW, accL, accL, 16)
				p.opi(isa.PSRAW, accH, accH, 16)
				p.op(isa.PACKSSWH, accL, accL, accH)
				p.st(accL, dst, stride, int64(outRow*16)+off)
			}
			emitMACGroup(2*k, func(n int) isa.Reg { return p.r(idctX[n]) }, 2*k)
			emitMACGroup(2*k+1, func(n int) isa.Reg { return p.r(idctX[7-n]) }, 2*k+1)
		}
	}
}

// emitFDCTColPassAcc: the MDMX accumulator version of the forward pass.
func emitFDCTColPassAcc(b *asm.Builder, src, dst isa.Reg, coefP isa.Reg, m256, m128 isa.Reg, prescale bool) {
	coefM := isa.M(15)
	res := isa.M(14)
	t := isa.M(13)
	for _, off := range []int64{0, 8} {
		for u := 0; u < 8; u++ {
			b.Ldm(isa.M(idctX[u]), src, off+int64(u*16))
			if prescale {
				b.OpI(isa.PSLLH, isa.M(idctX[u]), isa.M(idctX[u]), media.FDCTPre)
			}
		}
		for n := 0; n < 4; n++ {
			b.Op(isa.PADDH, t, isa.M(idctX[n]), isa.M(idctX[7-n]))
			b.Op(isa.PSUBH, isa.M(idctX[7-n]), isa.M(idctX[n]), isa.M(idctX[7-n]))
			b.Op(isa.PMOV, isa.M(idctX[n]), t, isa.Reg{})
		}
		for k := 0; k < 4; k++ {
			for sub := 0; sub < 2; sub++ { // even then odd output
				u := 2*k + sub
				a := isa.A(u % 2)
				b.Op(isa.ACLR, a, isa.Reg{}, isa.Reg{})
				for n := 0; n < 4; n++ {
					b.Ldm(coefM, coefP, int64(8*(u*8+n)))
					operand := isa.M(idctX[n])
					if sub == 1 {
						operand = isa.M(idctX[7-n])
					}
					b.Op(isa.ACCMULH, a, operand, coefM)
				}
				b.Op(isa.ACCMULH, a, m256, m128)
				b.OpI(isa.RACH, res, a, 16)
				b.Stm(res, dst, off+int64(u*16))
			}
		}
	}
}

// emitFDCTAlphaBlock: scalar forward transform of one block (blkP -> outP),
// using t1P as the inter-pass scratch block.
func emitFDCTAlphaBlock(b *asm.Builder, blkP, outP, t1P isa.Reg) {
	x := [8]isa.Reg{isa.R(11), isa.R(12), isa.R(13), isa.R(14), isa.R(15), isa.R(16), isa.R(17), isa.R(18)}
	acc, t, hi16, lo16 := isa.R(19), isa.R(20), isa.R(21), isa.R(22)
	b.MovI(hi16, 32767)
	b.MovI(lo16, -32768)
	clamp := func() {
		b.Sub(t, hi16, acc)
		b.Op(isa.CMOVLT, acc, t, hi16)
		b.Sub(t, acc, lo16)
		b.Op(isa.CMOVLT, acc, t, lo16)
	}
	mac := func(coef func(n int) int64) {
		b.MovI(acc, int64(media.DCTBias))
		for n := 0; n < 8; n++ {
			b.MulI(t, x[n], coef(n))
			b.Add(acc, acc, t)
		}
		b.SraI(acc, acc, 16)
		clamp()
	}
	// Column pass with prescale into t1.
	for j := 0; j < 8; j++ {
		for n := 0; n < 8; n++ {
			b.Ldwu(x[n], blkP, int64(n*16+2*j))
			b.Op(isa.SEXTW, x[n], x[n], isa.Reg{})
			b.SllI(x[n], x[n], media.FDCTPre)
		}
		for u := 0; u < 8; u++ {
			uu := u
			mac(func(n int) int64 { return int64(media.DCTMat[uu][n]) })
			b.Stw(acc, t1P, int64(u*16+2*j))
		}
	}
	// Row pass with descale into out.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			b.Ldwu(x[v], t1P, int64(u*16+2*v))
			b.Op(isa.SEXTW, x[v], x[v], isa.Reg{})
		}
		for vv := 0; vv < 8; vv++ {
			v := vv
			mac(func(n int) int64 { return int64(media.DCTMat[v][n]) })
			b.AddI(acc, acc, 1<<(media.FDCTPost-1))
			b.SraI(acc, acc, media.FDCTPost)
			b.Stw(acc, outP, int64(u*16+2*vv))
		}
	}
}
