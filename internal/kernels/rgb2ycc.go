package kernels

import (
	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/media"
	"repro/internal/simd"
)

// NewRGB2YCC builds the colour-space-conversion kernel over planar RGB.
// This is the kernel where the paper observes MOM's advantage collapse: the
// natural MOM vectorisation runs along the colour dimension, so the vector
// length is tiny (3 in the paper; 4 here, including the bias row of the
// matrix-per-vector operation).
func NewRGB2YCC(sc Scale) Kernel {
	w, h := 64, 32
	if sc == ScaleBench {
		w, h = 128, 64
	}
	seed := uint64(51)
	n := w * h
	build := func(ext isa.Ext) *isa.Program {
		b := asm.New("rgb2ycc-" + ext.String())
		r, g, bl := media.GenRGB(w, h, seed)
		// The four input planes are allocated contiguously so a MOM load
		// with stride = plane size fetches (R, G, B, bias) as matrix rows.
		b.AllocBytes("r", r.Pix, 8)
		b.AllocBytes("g", g.Pix, 8)
		b.AllocBytes("b", bl.Pix, 8)
		biasPlane := make([]byte, n)
		for i := range biasPlane {
			biasPlane[i] = media.BiasVal // 128 in every sample
		}
		b.AllocBytes("bias", biasPlane, 8)
		b.Alloc("y", n, 8)
		b.Alloc("cb", n, 8)
		b.Alloc("cr", n, 8)
		switch ext {
		case isa.ExtAlpha:
			emitRGBAlpha(b, n)
		case isa.ExtMMX:
			emitRGBMMX(b, n)
		case isa.ExtMDMX:
			emitRGBMDMX(b, n)
		case isa.ExtMOM:
			emitRGBMOM(b, n)
		}
		return b.Build()
	}
	verify := func(prog *isa.Program, m *emu.Machine) error {
		r, g, bl := media.GenRGB(w, h, seed)
		wy, wcb, wcr := media.RGB2YCCPlanes(r, g, bl)
		for _, c := range []struct {
			sym  string
			want []byte
		}{{"y", wy.Pix}, {"cb", wcb.Pix}, {"cr", wcr.Pix}} {
			got := readBytes(m, prog.Sym(c.sym), n)
			for i := range c.want {
				if got[i] != c.want[i] {
					return mismatch(prog.Name+"/"+c.sym, i, got[i], c.want[i])
				}
			}
		}
		return nil
	}
	return Kernel{Name: "rgb2ycc", Build: build, Verify: verify}
}

// emitClamp8 clamps t into [0,255] with two conditional moves.
// c255 must hold 255; tmp is scratch.
func emitClamp8(b *asm.Builder, t, tmp, c255 isa.Reg) {
	b.Op(isa.CMOVLT, t, t, isa.Zero) // t < 0 -> 0
	b.Sub(tmp, c255, t)              // 255 - t < 0 -> 255
	b.Op(isa.CMOVLT, t, tmp, c255)
}

func emitRGBAlpha(b *asm.Builder, n int) {
	rp, gp, bp := isa.R(8), isa.R(9), isa.R(10)
	yp, cbp, crp := isa.R(11), isa.R(12), isa.R(13)
	rv, gv, bv := isa.R(14), isa.R(15), isa.R(16)
	acc, t, c255, ctr := isa.R(17), isa.R(18), isa.R(19), isa.R(20)
	b.MovI(rp, int64(b.Sym("r")))
	b.MovI(gp, int64(b.Sym("g")))
	b.MovI(bp, int64(b.Sym("b")))
	b.MovI(yp, int64(b.Sym("y")))
	b.MovI(cbp, int64(b.Sym("cb")))
	b.MovI(crp, int64(b.Sym("cr")))
	b.MovI(c255, 255)
	bias := int64(media.BiasMul) * int64(media.BiasVal)
	b.Loop(ctr, int64(n), func() {
		b.Ldbu(rv, rp, 0)
		b.Ldbu(gv, gp, 0)
		b.Ldbu(bv, bp, 0)
		// Y
		b.MulI(acc, rv, media.CYR)
		b.MulI(t, gv, media.CYG1)
		b.Add(acc, acc, t)
		b.MulI(t, gv, media.CYG2)
		b.Add(acc, acc, t)
		b.MulI(t, bv, media.CYB)
		b.Add(acc, acc, t)
		b.AddI(acc, acc, bias)
		b.SraI(acc, acc, 16)
		emitClamp8(b, acc, t, c255)
		b.Stb(acc, yp, 0)
		// Cb / Cr
		for _, cc := range []struct {
			cr, cg, cb int64
			out        isa.Reg
		}{
			{media.CBR, media.CBG, media.CBB, cbp},
			{media.CRR, media.CRG, media.CRB, crp},
		} {
			b.MulI(acc, rv, cc.cr)
			b.MulI(t, gv, cc.cg)
			b.Add(acc, acc, t)
			b.MulI(t, bv, cc.cb)
			b.Add(acc, acc, t)
			b.AddI(acc, acc, bias)
			b.SraI(acc, acc, 16)
			b.AddI(acc, acc, 128)
			emitClamp8(b, acc, t, c255)
			b.Stb(acc, cc.out, 0)
		}
		for _, p := range []isa.Reg{rp, gp, bp, yp, cbp, crp} {
			b.AddI(p, p, 1)
		}
	})
}

// splatHWord builds the 64-bit image of four identical halfwords.
func splatHWord(v int16) uint64 {
	return simd.SplatH(uint64(uint16(v)))
}

// pairWord builds [a,b,a,b] halfword lanes (PMADDH coefficient pairs).
func pairWord(a, b int16) uint64 {
	return uint64(uint16(a)) | uint64(uint16(b))<<16 |
		uint64(uint16(a))<<32 | uint64(uint16(b))<<48
}

func emitRGBMMX(b *asm.Builder, n int) {
	// Hoisted constants.
	consts := []struct {
		reg isa.Reg
		val uint64
	}{
		{isa.M(16), pairWord(media.CYR, media.CYG1)},    // Y: (r,g) pair
		{isa.M(17), pairWord(media.CYG2, media.CYB)},    // Y: (g,b) pair
		{isa.M(18), pairWord(media.CBR, media.CBG)},     // Cb: (r,g)
		{isa.M(19), pairWord(media.CBB, media.BiasMul)}, // Cb: (b,128->bias)
		{isa.M(20), pairWord(media.CRR, media.CRG)},     // Cr: (r,g)
		{isa.M(21), pairWord(media.CRB, media.BiasMul)}, // Cr: (b,bias)
		{isa.M(22), uint64(32768) | uint64(32768)<<32},  // Y bias per 32-lane
		{isa.M(23), splatHWord(128)},                    // chroma offset
		{isa.M(24), splatHWord(media.BiasVal)},          // 128s to pair with b
	}
	b.AllocQ("mmxconst", func() []uint64 {
		vs := make([]uint64, len(consts))
		for i, c := range consts {
			vs[i] = c.val
		}
		return vs
	}(), 8)
	cb := isa.R(7)
	b.MovI(cb, int64(b.Sym("mmxconst")))
	for i, c := range consts {
		b.Ldm(c.reg, cb, int64(8*i))
	}
	mz := isa.M(25)
	b.Op(isa.PZERO, mz, isa.Reg{}, isa.Reg{})

	rp, gp, bp := isa.R(8), isa.R(9), isa.R(10)
	yp, cbp, crp := isa.R(11), isa.R(12), isa.R(13)
	ctr := isa.R(20)
	b.MovI(rp, int64(b.Sym("r")))
	b.MovI(gp, int64(b.Sym("g")))
	b.MovI(bp, int64(b.Sym("b")))
	b.MovI(yp, int64(b.Sym("y")))
	b.MovI(cbp, int64(b.Sym("cb")))
	b.MovI(crp, int64(b.Sym("cr")))

	raw, r16, g16, b16 := isa.M(0), isa.M(1), isa.M(2), isa.M(3)
	rg, gb, b5 := [4]isa.Reg{isa.M(4), isa.M(5), isa.M(6), isa.M(7)},
		[4]isa.Reg{isa.M(8), isa.M(9), isa.M(10), isa.M(11)},
		[4]isa.Reg{isa.M(12), isa.M(13), isa.M(14), isa.M(15)}
	t1, t2 := isa.M(26), isa.M(27)
	q0, q1, q2, q3 := isa.M(28), isa.M(29), isa.M(30), isa.M(31)

	b.Loop(ctr, int64(n/8), func() {
		// Unpack 8 pixels of each plane to halfwords (lo and hi quartets).
		for half := 0; half < 2; half++ {
			unp := isa.PUNPKLB
			if half == 1 {
				unp = isa.PUNPKHB
			}
			b.Ldm(raw, rp, 0)
			b.Op(unp, r16, raw, mz)
			b.Ldm(raw, gp, 0)
			b.Op(unp, g16, raw, mz)
			b.Ldm(raw, bp, 0)
			b.Op(unp, b16, raw, mz)
			b.Op(isa.PUNPKLH, rg[2*half], r16, g16)
			b.Op(isa.PUNPKHH, rg[2*half+1], r16, g16)
			b.Op(isa.PUNPKLH, gb[2*half], g16, b16)
			b.Op(isa.PUNPKHH, gb[2*half+1], g16, b16)
			b.Op(isa.PUNPKLH, b5[2*half], b16, isa.M(24))
			b.Op(isa.PUNPKHH, b5[2*half+1], b16, isa.M(24))
		}
		quads := [4]isa.Reg{q0, q1, q2, q3}
		// Y = (maddh(rg, cY1) + maddh(gb, cY2) + 32768) >> 16
		for q := 0; q < 4; q++ {
			b.Op(isa.PMADDH, t1, rg[q], isa.M(16))
			b.Op(isa.PMADDH, t2, gb[q], isa.M(17))
			b.Op(isa.PADDW, t1, t1, t2)
			b.Op(isa.PADDW, t1, t1, isa.M(22))
			b.OpI(isa.PSRAW, quads[q], t1, 16)
		}
		b.Op(isa.PACKSSWH, q0, q0, q1)
		b.Op(isa.PACKSSWH, q2, q2, q3)
		b.Op(isa.PACKUSHB, q0, q0, q2)
		b.Stm(q0, yp, 0)
		// Cb and Cr: (maddh(rg,c1) + maddh(b5,c2)) >> 16, then +128.
		for _, cc := range []struct {
			c1, c2 isa.Reg
			out    isa.Reg
		}{
			{isa.M(18), isa.M(19), cbp},
			{isa.M(20), isa.M(21), crp},
		} {
			for q := 0; q < 4; q++ {
				b.Op(isa.PMADDH, t1, rg[q], cc.c1)
				b.Op(isa.PMADDH, t2, b5[q], cc.c2)
				b.Op(isa.PADDW, t1, t1, t2)
				b.OpI(isa.PSRAW, quads[q], t1, 16)
			}
			b.Op(isa.PACKSSWH, q0, q0, q1)
			b.Op(isa.PACKSSWH, q2, q2, q3)
			b.Op(isa.PADDH, q0, q0, isa.M(23))
			b.Op(isa.PADDH, q2, q2, isa.M(23))
			b.Op(isa.PACKUSHB, q0, q0, q2)
			b.Stm(q0, cc.out, 0)
		}
		for _, p := range []isa.Reg{rp, gp, bp, yp, cbp, crp} {
			b.AddI(p, p, 8)
		}
	})
}

func emitRGBMDMX(b *asm.Builder, n int) {
	consts := []struct {
		reg isa.Reg
		val uint64
	}{
		{isa.M(16), splatHWord(media.CYR)},
		{isa.M(17), splatHWord(media.CYG1)},
		{isa.M(18), splatHWord(media.CYG2)},
		{isa.M(19), splatHWord(media.CYB)},
		{isa.M(20), splatHWord(media.CBR)},
		{isa.M(21), splatHWord(media.CBG)},
		{isa.M(22), splatHWord(media.CBB)},
		{isa.M(23), splatHWord(media.CRR)},
		{isa.M(24), splatHWord(media.CRG)},
		{isa.M(25), splatHWord(media.CRB)},
		{isa.M(26), splatHWord(media.BiasMul)},
		{isa.M(27), splatHWord(media.BiasVal)},
		{isa.M(28), splatHWord(128)},
	}
	b.AllocQ("mdmxconst", func() []uint64 {
		vs := make([]uint64, len(consts))
		for i, c := range consts {
			vs[i] = c.val
		}
		return vs
	}(), 8)
	cb := isa.R(7)
	b.MovI(cb, int64(b.Sym("mdmxconst")))
	for i, c := range consts {
		b.Ldm(c.reg, cb, int64(8*i))
	}
	mz := isa.M(29)
	b.Op(isa.PZERO, mz, isa.Reg{}, isa.Reg{})

	rp, gp, bp := isa.R(8), isa.R(9), isa.R(10)
	yp, cbp, crp := isa.R(11), isa.R(12), isa.R(13)
	ctr := isa.R(20)
	b.MovI(rp, int64(b.Sym("r")))
	b.MovI(gp, int64(b.Sym("g")))
	b.MovI(bp, int64(b.Sym("b")))
	b.MovI(yp, int64(b.Sym("y")))
	b.MovI(cbp, int64(b.Sym("cb")))
	b.MovI(crp, int64(b.Sym("cr")))

	raw := isa.M(0)
	r16 := [2]isa.Reg{isa.M(1), isa.M(2)}
	g16 := [2]isa.Reg{isa.M(3), isa.M(4)}
	b16 := [2]isa.Reg{isa.M(5), isa.M(6)}
	res := [2]isa.Reg{isa.M(7), isa.M(8)}

	b.Loop(ctr, int64(n/8), func() {
		for half := 0; half < 2; half++ {
			unp := isa.PUNPKLB
			if half == 1 {
				unp = isa.PUNPKHB
			}
			b.Ldm(raw, rp, 0)
			b.Op(unp, r16[half], raw, mz)
			b.Ldm(raw, gp, 0)
			b.Op(unp, g16[half], raw, mz)
			b.Ldm(raw, bp, 0)
			b.Op(unp, b16[half], raw, mz)
		}
		// Y: five multiply-accumulates per quartet, then clip to register.
		for half := 0; half < 2; half++ {
			a := isa.A(half)
			b.Op(isa.ACLR, a, isa.Reg{}, isa.Reg{})
			b.Op(isa.ACCMULH, a, r16[half], isa.M(16))
			b.Op(isa.ACCMULH, a, g16[half], isa.M(17))
			b.Op(isa.ACCMULH, a, g16[half], isa.M(18))
			b.Op(isa.ACCMULH, a, b16[half], isa.M(19))
			b.Op(isa.ACCMULH, a, isa.M(26), isa.M(27))
			b.OpI(isa.RACH, res[half], a, 16)
		}
		b.Op(isa.PACKUSHB, res[0], res[0], res[1])
		b.Stm(res[0], yp, 0)
		for _, cc := range []struct {
			cr, cg, cbb isa.Reg
			out         isa.Reg
		}{
			{isa.M(20), isa.M(21), isa.M(22), cbp},
			{isa.M(23), isa.M(24), isa.M(25), crp},
		} {
			for half := 0; half < 2; half++ {
				a := isa.A(half)
				b.Op(isa.ACLR, a, isa.Reg{}, isa.Reg{})
				b.Op(isa.ACCMULH, a, r16[half], cc.cr)
				b.Op(isa.ACCMULH, a, g16[half], cc.cg)
				b.Op(isa.ACCMULH, a, b16[half], cc.cbb)
				b.Op(isa.ACCMULH, a, isa.M(26), isa.M(27))
				b.OpI(isa.RACH, res[half], a, 16)
				b.Op(isa.PADDH, res[half], res[half], isa.M(28))
			}
			b.Op(isa.PACKUSHB, res[0], res[0], res[1])
			b.Stm(res[0], cc.out, 0)
		}
		for _, p := range []isa.Reg{rp, gp, bp, yp, cbp, crp} {
			b.AddI(p, p, 8)
		}
	})
}

func emitRGBMOM(b *asm.Builder, n int) {
	// Coefficient vectors for matrix-per-vector: lane k multiplies matrix
	// row k (R, G, B, bias128).
	consts := []struct {
		reg isa.Reg
		val uint64
	}{
		{isa.M(16), pack4(media.CYR, media.CYG1, media.CYB, media.BiasMul)},
		{isa.M(17), pack4(0, media.CYG2, 0, 0)},
		{isa.M(18), pack4(media.CBR, media.CBG, media.CBB, media.BiasMul)},
		{isa.M(19), pack4(media.CRR, media.CRG, media.CRB, media.BiasMul)},
		{isa.M(20), splatHWord(128)},
	}
	b.AllocQ("momconst", func() []uint64 {
		vs := make([]uint64, len(consts))
		for i, c := range consts {
			vs[i] = c.val
		}
		return vs
	}(), 8)
	cb := isa.R(7)
	b.MovI(cb, int64(b.Sym("momconst")))
	for i, c := range consts {
		b.Ldm(c.reg, cb, int64(8*i))
	}
	mz := isa.M(21)
	b.Op(isa.PZERO, mz, isa.Reg{}, isa.Reg{})

	rp := isa.R(8)
	yp, cbp, crp := isa.R(11), isa.R(12), isa.R(13)
	stride, ctr := isa.R(14), isa.R(20)
	b.MovI(rp, int64(b.Sym("r")))
	b.MovI(yp, int64(b.Sym("y")))
	b.MovI(cbp, int64(b.Sym("cb")))
	b.MovI(crp, int64(b.Sym("cr")))
	b.MovI(stride, int64(n)) // plane size = row stride of the matrix load
	b.SetVLI(4)

	res := [2]isa.Reg{isa.M(0), isa.M(1)}
	b.Loop(ctr, int64(n/8), func() {
		// One strided load brings 8 pixels of R, G, B and bias as the four
		// matrix rows; unpack bytes to halfwords across all rows at once.
		b.MomLd(isa.V(0), rp, stride, 0)
		b.Op(isa.PUNPKLB.Vector(), isa.V(1), isa.V(0), mz)
		b.Op(isa.PUNPKHB.Vector(), isa.V(2), isa.V(0), mz)
		// Y: two matrix-per-vector passes (split green coefficient).
		for half := 0; half < 2; half++ {
			v := isa.V(1 + half)
			va := isa.VA(half % isa.NumMomAcc)
			b.Op(isa.ACLR, va, isa.Reg{}, isa.Reg{})
			b.Op(isa.MOMMPVH, va, v, isa.M(16))
			b.Op(isa.MOMMPVH, va, v, isa.M(17))
			b.OpI(isa.RACH, res[half], va, 16)
		}
		b.Op(isa.PACKUSHB, res[0], res[0], res[1])
		b.Stm(res[0], yp, 0)
		// Cb / Cr: one pass each plus the +128 offset.
		for _, cc := range []struct {
			coef isa.Reg
			out  isa.Reg
		}{
			{isa.M(18), cbp},
			{isa.M(19), crp},
		} {
			for half := 0; half < 2; half++ {
				v := isa.V(1 + half)
				va := isa.VA(half % isa.NumMomAcc)
				b.Op(isa.ACLR, va, isa.Reg{}, isa.Reg{})
				b.Op(isa.MOMMPVH, va, v, cc.coef)
				b.OpI(isa.RACH, res[half], va, 16)
				b.Op(isa.PADDH, res[half], res[half], isa.M(20))
			}
			b.Op(isa.PACKUSHB, res[0], res[0], res[1])
			b.Stm(res[0], cc.out, 0)
		}
		b.AddI(rp, rp, 8)
		for _, p := range []isa.Reg{yp, cbp, crp} {
			b.AddI(p, p, 8)
		}
	})
}

// pack4 packs four int16 lanes into a 64-bit word.
func pack4(a, b, c, d int16) uint64 {
	return uint64(uint16(a)) | uint64(uint16(b))<<16 |
		uint64(uint16(c))<<32 | uint64(uint16(d))<<48
}
