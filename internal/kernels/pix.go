package kernels

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

// pix is a small emission context that lets one packed-code emitter serve
// both the MMX/MDMX single-word path and the MOM matrix path: in vector
// mode every packed opcode becomes its MOM twin, register indices map to
// matrix registers, and loads/stores become strided vector accesses
// governed by VL. This mirrors how the paper derives MOM code: "first
// generate MMX-like code for the inner loop, then vectorise it across the
// outer loop".
type pix struct {
	b   *asm.Builder
	vec bool
}

// r maps a packed register index to M (packed) or V (matrix) register.
func (p pix) r(i int) isa.Reg {
	if p.vec {
		return isa.V(i)
	}
	return isa.M(i)
}

// acc maps an accumulator index to A (MDMX) or VA (MOM).
func (p pix) acc(i int) isa.Reg {
	if p.vec {
		return isa.VA(i)
	}
	return isa.A(i)
}

// vop translates a packed opcode in vector mode.
func (p pix) vop(op isa.Opcode) isa.Opcode {
	if p.vec {
		return op.Vector()
	}
	return op
}

// op emits a packed/vector arithmetic op. Media-register operands (isa.M)
// pass through unchanged in vector mode, where they act as broadcast
// constants across all matrix words.
func (p pix) op(op isa.Opcode, dst, s0, s1 isa.Reg) {
	p.b.Op(p.vop(op), dst, s0, s1)
}

// opi emits a packed/vector op with an immediate (shifts).
func (p pix) opi(op isa.Opcode, dst, s0 isa.Reg, imm int64) {
	p.b.OpI(p.vop(op), dst, s0, imm)
}

// ld loads a 64-bit word (packed) or a strided word vector (matrix).
// stride is only used in vector mode.
func (p pix) ld(dst, base, stride isa.Reg, off int64) {
	if p.vec {
		p.b.MomLd(dst, base, stride, off)
	} else {
		p.b.Ldm(dst, base, off)
	}
}

// st stores a 64-bit word or a strided word vector.
func (p pix) st(val, base, stride isa.Reg, off int64) {
	if p.vec {
		p.b.MomSt(val, base, stride, off)
	} else {
		p.b.Stm(val, base, off)
	}
}

// broadcast copies a media-register value into a packed register (PMOV) or
// into every word of a matrix register (MOMSPLAT).
func (p pix) broadcast(dst isa.Reg, mediaSrc isa.Reg) {
	if p.vec {
		p.b.Op(isa.MOMSPLAT, dst, mediaSrc, isa.Reg{})
	} else {
		p.b.Op(isa.PMOV, dst, mediaSrc, isa.Reg{})
	}
}

// zero emits a packed/vector register clear. In vector mode there is no
// direct "vpzero"; splatting a zeroed media register does the job.
func (p pix) zero(dst isa.Reg, zeroMedia isa.Reg) {
	if p.vec {
		p.b.Op(isa.MOMSPLAT, dst, zeroMedia, isa.Reg{})
	} else {
		p.b.Op(isa.PZERO, dst, isa.Reg{}, isa.Reg{})
	}
}

// transpose4x4h emits a 4x4 transpose of 16-bit elements across four
// packed/matrix registers: out[i] holds former column i. tmp must name four
// scratch registers distinct from in/out; out may alias in.
func (p pix) transpose4x4h(in, out, tmp [4]isa.Reg) {
	t0, t1, t2, t3 := tmp[0], tmp[1], tmp[2], tmp[3]
	p.op(isa.PUNPKLH, t0, in[0], in[1]) // a00 a10 a01 a11
	p.op(isa.PUNPKLH, t1, in[2], in[3]) // a20 a30 a21 a31
	p.op(isa.PUNPKHH, t2, in[0], in[1]) // a02 a12 a03 a13
	p.op(isa.PUNPKHH, t3, in[2], in[3]) // a22 a32 a23 a33
	p.op(isa.PUNPKLW, out[0], t0, t1)   // a00 a10 a20 a30
	p.op(isa.PUNPKHW, out[1], t0, t1)   // a01 a11 a21 a31
	p.op(isa.PUNPKLW, out[2], t2, t3)   // a02 a12 a22 a32
	p.op(isa.PUNPKHW, out[3], t2, t3)   // a03 a13 a23 a33
}
