// Package kernels implements the paper's eight multimedia kernels — idct,
// motion1 (SAD), motion2 (SQD), rgb2ycc, compensation, addblock,
// ltpparameters and h2v2upsample — each in four ISA variants (Alpha scalar,
// MMX, MDMX, MOM), together with bit-exact golden verification against the
// reference implementations in internal/media.
//
// Every kernel follows the same pattern the paper's methodology used: the
// DLP-rich function is hand-written against the emulation ISA (here, the
// asm builder), the rest stays scalar, and the output in simulated memory
// is compared against the golden result computed natively.
package kernels

import (
	"encoding/binary"
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Kernel bundles the program generators and the verifier for one kernel.
type Kernel struct {
	Name string
	// Build produces the program for one ISA level. Programs embed their
	// input data and write results to well-known symbols.
	Build func(ext isa.Ext) *isa.Program
	// Verify checks the results left in the machine's memory after
	// functional execution against the golden implementation.
	Verify func(p *isa.Program, m *emu.Machine) error
}

// Scale selects a workload size.
type Scale int

const (
	// ScaleTest is sized for unit tests (fast functional runs).
	ScaleTest Scale = iota
	// ScaleBench is sized for the Figure 5 / latency experiments.
	ScaleBench
)

// All returns the eight kernels of the paper at the given scale.
func All(sc Scale) []Kernel {
	return []Kernel{
		NewMotion1(sc),
		NewMotion2(sc),
		NewIDCT(sc),
		NewRGB2YCC(sc),
		NewCompensation(sc),
		NewAddBlock(sc),
		NewLTP(sc),
		NewH2V2(sc),
	}
}

// ByName returns the kernel with the given name at the given scale.
func ByName(name string, sc Scale) (Kernel, error) {
	for _, k := range All(sc) {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("kernels: unknown kernel %q", name)
}

// RunAndVerify executes the program functionally and applies the verifier.
func RunAndVerify(k Kernel, ext isa.Ext, maxSteps uint64) error {
	p := k.Build(ext)
	m := emu.New(p)
	if _, err := m.Run(maxSteps); err != nil {
		return fmt.Errorf("%s/%s: %w", k.Name, ext, err)
	}
	if err := k.Verify(p, m); err != nil {
		return fmt.Errorf("%s/%s: %w", k.Name, ext, err)
	}
	return nil
}

// ---- result extraction helpers ----

func readU64s(m *emu.Machine, addr uint64, n int) []uint64 {
	out := make([]uint64, n)
	b := m.Mem.Bytes(addr, 8*n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

func readI16s(m *emu.Machine, addr uint64, n int) []int16 {
	out := make([]int16, n)
	b := m.Mem.Bytes(addr, 2*n)
	for i := range out {
		out[i] = int16(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return out
}

func readBytes(m *emu.Machine, addr uint64, n int) []byte {
	b := m.Mem.Bytes(addr, n)
	out := make([]byte, n)
	copy(out, b)
	return out
}

func readI32s(m *emu.Machine, addr uint64, n int) []int32 {
	out := make([]int32, n)
	b := m.Mem.Bytes(addr, 4*n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// mismatch formats a first-difference error.
func mismatch(what string, i int, got, want interface{}) error {
	return fmt.Errorf("%s: index %d: got %v, want %v", what, i, got, want)
}

// newMachine is a tiny indirection so tests can build machines without
// importing emu directly everywhere.
func newMachine(p *isa.Program) *emu.Machine { return emu.New(p) }
