package media

import "math"

// Fixed-point 8x8 DCT/IDCT.
//
// The transform is the orthonormal DCT-II with coefficients quantised to
// Q0.16 fixed point (c = round(D*65536), |c| <= 32767, every coefficient
// fits a signed halfword). Each 1-D output is
//
//	y[n] = sat16( (sum_u C[n][u]*x[u] + 32768) >> 16 )
//
// i.e. an exact integer multiply-accumulate, rounded half-up and saturated
// to 16 bits. Implementations are free to accumulate in any order and to
// use the even/odd (IDCT) or symmetric/antisymmetric (FDCT) decomposition:
// with the operand bounds below, no partial sum exceeds 31 bits, so 32-bit
// packed accumulation (MMX data promotion), 48-bit packed accumulators
// (MDMX/MOM) and 64-bit scalar accumulation all yield identical bits.
//
// The 2-D transforms run a column pass then a row pass:
//
//	IDCT: prescale x <<= 1;  two passes;  out = (y + 1) >> 1
//	FDCT: prescale x <<= 4;  two passes;  out = (y + 8) >> 4
//
// Bounds: IDCT inputs are dequantised coefficients (|x| <= 2047), so the
// prescaled input is <= 4094, pass-1 outputs <= sum|D| * 4094 < 10852 and
// pass-2 partial sums < 2^31. FDCT inputs are level-shifted pixels
// (|x| <= 128 -> prescaled <= 2048; the symmetric split doubles this to
// 4096), with the same comfortable margins.
// The FDCT prescale of 3 is chosen so that even worst-case inputs of
// +/-255 (P/B-frame residuals) can never overflow 32-bit packed partial
// sums in the promoted MMX/MOM accumulation path; the IDCT operates on
// genuine (quantised-transform) coefficient data, whose pass-1 outputs stay
// far below the 32-bit margin.
const (
	IDCTPre  = 1
	IDCTPost = 1
	FDCTPre  = 3
	FDCTPost = 3

	// DCTBias is the rounding bias added before the >>16.
	DCTBias = 32768
)

// DCTMat is the Q0.16 orthonormal DCT matrix: DCTMat[u][n] = round(
// c(u) * cos((2n+1) u pi / 16) * 65536), c(0)=sqrt(1/8), c(u)=1/2.
//
//	FDCT 1-D: X[u] = sat16((sum_n DCTMat[u][n]*x[n] + DCTBias) >> 16)
//	IDCT 1-D: x[n] = sat16((sum_u DCTMat[u][n]*X[u] + DCTBias) >> 16)
var DCTMat [8][8]int16

func init() {
	for u := 0; u < 8; u++ {
		cu := 0.5
		if u == 0 {
			cu = math.Sqrt(1.0 / 8.0)
		}
		for n := 0; n < 8; n++ {
			v := cu * math.Cos(float64(2*n+1)*float64(u)*math.Pi/16)
			DCTMat[u][n] = int16(math.Round(v * 65536))
		}
	}
}

// MulH16 is the packed multiply-high primitive (PMULHH semantics):
// the high 16 bits of the 32-bit signed product.
func MulH16(c, v int16) int16 { return int16((int32(c) * int32(v)) >> 16) }

// MACRow computes one 1-D output: sat16((sum coef[i]*x[i] + DCTBias)>>16).
func MACRow(coef, x []int16) int16 {
	var s int64
	for i := range coef {
		s += int64(coef[i]) * int64(x[i])
	}
	s = (s + DCTBias) >> 16
	if s > 32767 {
		s = 32767
	}
	if s < -32768 {
		s = -32768
	}
	return int16(s)
}

// idct1D transforms one 8-vector in place.
func idct1D(x *[8]int16) {
	var y [8]int16
	var col [8]int16
	for n := 0; n < 8; n++ {
		for u := 0; u < 8; u++ {
			col[u] = DCTMat[u][n]
		}
		y[n] = MACRow(col[:], x[:])
	}
	*x = y
}

// fdct1D transforms one 8-vector in place.
func fdct1D(x *[8]int16) {
	var y [8]int16
	for u := 0; u < 8; u++ {
		y[u] = MACRow(DCTMat[u][:], x[:])
	}
	*x = y
}

// IDCT8x8 computes the fixed-point 2-D inverse DCT of blk (row-major 64
// coefficients) in place.
func IDCT8x8(blk *[64]int16) {
	for i := range blk {
		blk[i] <<= IDCTPre
	}
	var v [8]int16
	for j := 0; j < 8; j++ { // column pass
		for n := 0; n < 8; n++ {
			v[n] = blk[n*8+j]
		}
		idct1D(&v)
		for n := 0; n < 8; n++ {
			blk[n*8+j] = v[n]
		}
	}
	for n := 0; n < 8; n++ { // row pass
		copy(v[:], blk[n*8:n*8+8])
		idct1D(&v)
		copy(blk[n*8:n*8+8], v[:])
	}
	for i := range blk {
		blk[i] = (blk[i] + 1<<(IDCTPost-1)) >> IDCTPost
	}
}

// FDCT8x8 computes the fixed-point 2-D forward DCT of blk in place. The
// input must already be level-shifted (range about [-128,127]).
func FDCT8x8(blk *[64]int16) {
	for i := range blk {
		blk[i] <<= FDCTPre
	}
	var v [8]int16
	for j := 0; j < 8; j++ { // column pass
		for n := 0; n < 8; n++ {
			v[n] = blk[n*8+j]
		}
		fdct1D(&v)
		for n := 0; n < 8; n++ {
			blk[n*8+j] = v[n]
		}
	}
	for n := 0; n < 8; n++ { // row pass
		copy(v[:], blk[n*8:n*8+8])
		fdct1D(&v)
		copy(blk[n*8:n*8+8], v[:])
	}
	for i := range blk {
		blk[i] = (blk[i] + 1<<(FDCTPost-1)) >> FDCTPost
	}
}

// IDCT8x8Float is the reference floating-point inverse transform used only
// by quality tests.
func IDCT8x8Float(blk *[64]int16) [64]float64 {
	var out [64]float64
	for n := 0; n < 8; n++ {
		for m := 0; m < 8; m++ {
			var s float64
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					cu, cv := 0.5, 0.5
					if u == 0 {
						cu = math.Sqrt(1.0 / 8.0)
					}
					if v == 0 {
						cv = math.Sqrt(1.0 / 8.0)
					}
					s += cu * cv * float64(blk[u*8+v]) *
						math.Cos(float64(2*n+1)*float64(u)*math.Pi/16) *
						math.Cos(float64(2*m+1)*float64(v)*math.Pi/16)
				}
			}
			out[n*8+m] = s
		}
	}
	return out
}
