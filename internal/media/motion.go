package media

// Golden motion-estimation kernels: dist1 (sum of absolute differences) and
// dist2 (sum of squared differences) over 16x16 blocks, plus the spiral
// full-search of the mpeg2 encoder (Figures 1 and 2 of the paper).

// SAD16 computes the 16x16 sum of absolute differences between a block at
// (ax,ay) in plane a and a block at (bx,by) in plane b.
func SAD16(a *Plane, ax, ay int, b *Plane, bx, by int) int64 {
	var s int64
	for j := 0; j < 16; j++ {
		ra := a.Pix[(ay+j)*a.Stride+ax:]
		rb := b.Pix[(by+j)*b.Stride+bx:]
		for i := 0; i < 16; i++ {
			d := int64(ra[i]) - int64(rb[i])
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}

// SQD16 computes the 16x16 sum of squared differences.
func SQD16(a *Plane, ax, ay int, b *Plane, bx, by int) int64 {
	var s int64
	for j := 0; j < 16; j++ {
		ra := a.Pix[(ay+j)*a.Stride+ax:]
		rb := b.Pix[(by+j)*b.Stride+bx:]
		for i := 0; i < 16; i++ {
			d := int64(ra[i]) - int64(rb[i])
			s += d * d
		}
	}
	return s
}

// SpiralOffsets enumerates the spiral search path of the mpeg2 fullsearch
// function for a window of radius win: for l = 1..win, 8*l candidate
// positions walked counter-clockwise starting at (-l,-l). The centre (0,0)
// is prepended.
func SpiralOffsets(win int) [][2]int {
	offs := [][2]int{{0, 0}}
	for l := 1; l <= win; l++ {
		i, j := -l, -l
		for k := 0; k < 8*l; k++ {
			offs = append(offs, [2]int{i, j})
			switch {
			case k < 2*l:
				i++
			case k < 4*l:
				j++
			case k < 6*l:
				i--
			default:
				j--
			}
		}
	}
	return offs
}

// FullSearch runs the spiral search around (cx,cy) in ref for the block at
// (bx,by) in cur, returning the best offset and its SAD. Candidates falling
// outside ref are skipped. Ties keep the earlier (spiral-order) candidate,
// exactly as dist1<dmin does in the original code.
func FullSearch(cur *Plane, bx, by int, ref *Plane, cx, cy, win int) (dx, dy int, best int64) {
	best = 1 << 62
	for _, o := range SpiralOffsets(win) {
		x, y := cx+o[0], cy+o[1]
		if x < 0 || y < 0 || x+16 > ref.W || y+16 > ref.H {
			continue
		}
		d := SAD16(cur, bx, by, ref, x, y)
		if d < best {
			best, dx, dy = d, o[0], o[1]
		}
	}
	return dx, dy, best
}
