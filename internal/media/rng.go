// Package media provides the substrate the workloads are built from:
// deterministic synthetic media content (video frames, images, speech-like
// PCM) standing in for the Mediabench inputs, and golden fixed-point
// implementations of every kernel and codec stage (DCT/IDCT, quantisation,
// colour conversion, motion estimation/compensation, GSM long-term
// prediction, upsampling, bit-level entropy coding). The golden routines
// define the bit-exact semantics the ISA-level programs must reproduce.
package media

// RNG is a deterministic SplitMix64 generator; all synthetic content is
// derived from seeds so every experiment is reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Byte returns a uniform byte.
func (r *RNG) Byte() byte { return byte(r.Next()) }

// I16 returns a uniform int16 in [-lim, lim].
func (r *RNG) I16(lim int) int16 {
	if lim <= 0 {
		return 0
	}
	return int16(r.Intn(2*lim+1) - lim)
}
