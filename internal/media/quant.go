package media

// Quantisation and zig-zag scanning for the block codecs.

// LumaQuant is a JPEG-flavoured luminance quantisation table (row-major).
var LumaQuant = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// ZigZag maps scan order -> block index.
var ZigZag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Recip returns the Q0.16 reciprocal used by the quantiser. It is the exact
// value both the golden code and the ISA-level programs use.
func Recip(q int32) int32 { return (1 << 16) / q }

// QuantizeCoef quantises one coefficient with the reciprocal-multiply
// semantics (sign-magnitude, round-half-up on the magnitude):
//
//	q(x) = sgn(x) * ((|x| + step/2) * recip >> 16)
func QuantizeCoef(x int16, step int32) int16 {
	recip := Recip(step)
	mag := int64(x)
	neg := mag < 0
	if neg {
		mag = -mag
	}
	// 64-bit arithmetic: mag*recip can exceed 31 bits for step 1.
	v := (mag + int64(step)/2) * int64(recip) >> 16
	if neg {
		v = -v
	}
	return int16(v)
}

// DequantizeCoef inverts QuantizeCoef up to quantisation error.
func DequantizeCoef(x int16, step int32) int16 {
	v := int32(x) * step
	if v > 32767 {
		v = 32767
	}
	if v < -32768 {
		v = -32768
	}
	return int16(v)
}

// QuantizeBlock applies QuantizeCoef over a block with a scaled table.
// scale is a percentage-style factor (100 = table as is; larger = coarser).
func QuantizeBlock(blk *[64]int16, scale int32) {
	for i := range blk {
		blk[i] = QuantizeCoef(blk[i], ScaledStep(i, scale))
	}
}

// DequantizeBlock inverts QuantizeBlock.
func DequantizeBlock(blk *[64]int16, scale int32) {
	for i := range blk {
		blk[i] = DequantizeCoef(blk[i], ScaledStep(i, scale))
	}
}

// ScaledStep returns the quantisation step for block index i at the given
// scale, clamped to [1, 255].
func ScaledStep(i int, scale int32) int32 {
	s := (LumaQuant[i]*scale + 50) / 100
	if s < 1 {
		s = 1
	}
	if s > 255 {
		s = 255
	}
	return s
}
