package media

import "sort"

// Canonical Huffman coding for the jpeg-style entropy stage.
//
// Symbols follow JPEG's AC coding model: a (run, size) pair packed as
// run<<4 | size, where run is the number of preceding zero coefficients
// (0..15) and size the magnitude category of the nonzero value; the code is
// followed by `size` raw magnitude bits (negative values are stored as
// v + 2^size - 1, exactly like JPEG). Two special symbols: EOB (0x00) ends
// a block early, ZRL (0xF0) encodes a run of 16 zeros.
//
// The code book is canonical and deterministic: it is built once from a
// fixed frequency profile, and the resulting code/length tables are
// embedded as data into the generated programs, so the golden coder and
// the ISA-level coders share identical bits.

// HuffTable is a canonical Huffman code book.
type HuffTable struct {
	Code []uint32 // code value per symbol (MSB-first)
	Len  []uint8  // code length per symbol (0 = symbol unused)

	// Canonical decoding tables, indexed by code length 1..MaxHuffLen:
	First  [MaxHuffLen + 1]int32 // first code value of this length
	Count  [MaxHuffLen + 1]int32 // number of codes of this length
	Offset [MaxHuffLen + 1]int32 // index of the first symbol of this length
	Syms   []uint16              // symbols ordered by (length, code)
}

// MaxHuffLen bounds code lengths (JPEG uses 16).
const MaxHuffLen = 16

// BuildCanonical constructs a length-limited canonical Huffman table for
// the given symbol frequencies (zero-frequency symbols get no code).
func BuildCanonical(freqs []int) *HuffTable {
	type node struct {
		sym  int // -1 for internal
		freq int
		l, r int // child indices
	}
	var nodes []node
	var heap []int // indices into nodes, maintained as a simple sorted slice
	for s, f := range freqs {
		if f > 0 {
			nodes = append(nodes, node{sym: s, freq: f, l: -1, r: -1})
			heap = append(heap, len(nodes)-1)
		}
	}
	if len(heap) == 0 {
		return &HuffTable{Code: make([]uint32, len(freqs)), Len: make([]uint8, len(freqs))}
	}
	if len(heap) == 1 {
		t := &HuffTable{Code: make([]uint32, len(freqs)), Len: make([]uint8, len(freqs))}
		t.Len[nodes[heap[0]].sym] = 1
		finishCanonical(t)
		return t
	}
	less := func(a, b int) bool {
		if nodes[a].freq != nodes[b].freq {
			return nodes[a].freq < nodes[b].freq
		}
		// Tie-break on symbol/creation order for determinism.
		return a < b
	}
	for len(heap) > 1 {
		sort.Slice(heap, func(i, j int) bool { return less(heap[i], heap[j]) })
		a, b := heap[0], heap[1]
		heap = heap[2:]
		nodes = append(nodes, node{sym: -1, freq: nodes[a].freq + nodes[b].freq, l: a, r: b})
		heap = append(heap, len(nodes)-1)
	}
	// Depth-first walk assigns lengths.
	lens := make([]uint8, len(freqs))
	var walk func(idx int, depth uint8)
	walk = func(idx int, depth uint8) {
		nd := nodes[idx]
		if nd.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			lens[nd.sym] = depth
			return
		}
		walk(nd.l, depth+1)
		walk(nd.r, depth+1)
	}
	walk(heap[0], 0)
	// Length-limit to MaxHuffLen with the simple push-down heuristic.
	for limitOnce(lens) {
	}
	t := &HuffTable{Code: make([]uint32, len(freqs)), Len: lens}
	finishCanonical(t)
	return t
}

// limitOnce shortens one over-long code by pairing it under a shorter one;
// returns true if another pass is needed.
func limitOnce(lens []uint8) bool {
	over := -1
	for s, l := range lens {
		if l > MaxHuffLen {
			over = s
			break
		}
	}
	if over < 0 {
		return false
	}
	// Find the longest code <= MaxHuffLen-1 and split it.
	best, bestLen := -1, uint8(0)
	for s, l := range lens {
		if s != over && l > bestLen && l < MaxHuffLen {
			best, bestLen = s, l
		}
	}
	lens[best]++
	lens[over] = lens[best]
	return true
}

// finishCanonical assigns canonical code values and decode tables from the
// length assignment (Kraft-valid by construction).
func finishCanonical(t *HuffTable) {
	type se struct {
		sym int
		l   uint8
	}
	var entries []se
	for s, l := range t.Len {
		if l > 0 {
			entries = append(entries, se{s, l})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].l != entries[j].l {
			return entries[i].l < entries[j].l
		}
		return entries[i].sym < entries[j].sym
	})
	code := uint32(0)
	prevLen := uint8(0)
	t.Syms = make([]uint16, 0, len(entries))
	for idx, e := range entries {
		code <<= (e.l - prevLen)
		prevLen = e.l
		t.Code[e.sym] = code
		if t.Count[e.l] == 0 {
			t.First[e.l] = int32(code)
			t.Offset[e.l] = int32(idx)
		}
		t.Count[e.l]++
		t.Syms = append(t.Syms, uint16(e.sym))
		code++
	}
}

// jpegACFreqs is the fixed frequency profile the jpeg applications use:
// short runs and small magnitudes dominate, EOB is very common.
func jpegACFreqs() []int {
	f := make([]int, 256)
	f[0x00] = 4000 // EOB
	f[0xF0] = 60   // ZRL
	for run := 0; run < 16; run++ {
		for size := 1; size <= 12; size++ {
			weight := 3000 / ((run + 1) * size * size)
			if weight < 1 {
				weight = 1
			}
			f[run<<4|size] = weight
		}
	}
	return f
}

// JPEGACTable is the shared code book.
var JPEGACTable = BuildCanonical(jpegACFreqs())

// magSize returns JPEG's magnitude category (number of bits).
func magSize(v int32) uint {
	if v < 0 {
		v = -v
	}
	var s uint
	for v > 0 {
		v >>= 1
		s++
	}
	return s
}

// magBits returns the raw magnitude bits: v >= 0 -> v; v < 0 -> v+2^s-1.
func magBits(v int32, s uint) uint32 {
	if v < 0 {
		return uint32(v + (1 << s) - 1)
	}
	return uint32(v)
}

// magValue inverts magBits.
func magValue(bits uint32, s uint) int32 {
	if s == 0 {
		return 0
	}
	if bits < 1<<(s-1) { // negative range
		return int32(bits) - (1 << s) + 1
	}
	return int32(bits)
}

// HuffEncodeBlock writes one quantised block in zig-zag order using the
// shared AC table (the DC coefficient is coded like any other symbol with
// run 0).
func HuffEncodeBlock(w *BitWriter, blk *[64]int16) {
	t := JPEGACTable
	emit := func(sym int) {
		w.WriteBits(t.Code[sym], uint(t.Len[sym]))
	}
	run := 0
	for _, zz := range ZigZag {
		v := int32(blk[zz])
		if v == 0 {
			run++
			continue
		}
		for run >= 16 {
			emit(0xF0)
			run -= 16
		}
		s := magSize(v)
		emit(run<<4 | int(s))
		w.WriteBits(magBits(v, s), s)
		run = 0
	}
	emit(0x00) // EOB (always, also for full blocks; the decoder consumes it)
}

// HuffDecodeSym reads one canonically-coded symbol.
func HuffDecodeSym(r *BitReader) int {
	t := JPEGACTable
	code := int32(0)
	for l := 1; l <= MaxHuffLen; l++ {
		code = code<<1 | int32(r.ReadBits(1))
		if t.Count[l] > 0 && code-t.First[l] < t.Count[l] && code >= t.First[l] {
			return int(t.Syms[t.Offset[l]+code-t.First[l]])
		}
	}
	return 0 // malformed stream decodes as EOB
}

// HuffDecodeBlock reverses HuffEncodeBlock.
func HuffDecodeBlock(r *BitReader, blk *[64]int16) {
	for i := range blk {
		blk[i] = 0
	}
	pos := 0
	for pos < 64 {
		sym := HuffDecodeSym(r)
		if sym == 0x00 {
			return
		}
		if sym == 0xF0 {
			pos += 16
			continue
		}
		run := sym >> 4
		s := uint(sym & 0xF)
		pos += run
		bits := r.ReadBits(s)
		if pos < 64 {
			blk[ZigZag[pos]] = int16(magValue(bits, s))
			pos++
		}
	}
	// A full block still carries its EOB.
	HuffDecodeSym(r)
}
