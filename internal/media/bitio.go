package media

// Minimal MSB-first bit I/O used by the codecs' entropy stages. The scalar
// (Alpha) programs in the applications implement exactly this writer, so
// the simulated bitstreams can be compared byte-for-byte with the golden
// encoder output.

// BitWriter packs bits MSB-first.
type BitWriter struct {
	buf  []byte
	cur  uint64
	nbit uint
}

// WriteBits appends the low n bits of v (n <= 32).
func (w *BitWriter) WriteBits(v uint32, n uint) {
	if n == 0 {
		return
	}
	w.cur = w.cur<<n | uint64(v&(1<<n-1))
	w.nbit += n
	for w.nbit >= 8 {
		w.nbit -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nbit))
	}
}

// Flush pads the final partial byte with zeros and returns the stream.
func (w *BitWriter) Flush() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nbit)))
		w.cur, w.nbit = 0, 0
	}
	return w.buf
}

// Len returns the number of complete bytes written so far.
func (w *BitWriter) Len() int { return len(w.buf) }

// BitReader reads bits MSB-first.
type BitReader struct {
	buf  []byte
	pos  int
	cur  uint64
	nbit uint
}

// NewBitReader wraps a byte stream.
func NewBitReader(b []byte) *BitReader { return &BitReader{buf: b} }

// ReadBits extracts n bits (n <= 32); reading past the end returns zeros.
func (r *BitReader) ReadBits(n uint) uint32 {
	for r.nbit < n {
		var b byte
		if r.pos < len(r.buf) {
			b = r.buf[r.pos]
			r.pos++
		}
		r.cur = r.cur<<8 | uint64(b)
		r.nbit += 8
	}
	r.nbit -= n
	return uint32(r.cur>>r.nbit) & (1<<n - 1)
}

// RLEEncodeBlock writes a zig-zag run-length code of a quantised block:
// for each nonzero coefficient, 6 bits of run, then a signed magnitude code
// (4-bit size + bits); terminated by run=63 sentinel.
func RLEEncodeBlock(w *BitWriter, blk *[64]int16) {
	run := 0
	for _, zz := range ZigZag {
		v := blk[zz]
		if v == 0 {
			run++
			continue
		}
		w.WriteBits(uint32(run), 6)
		writeSigned(w, int32(v))
		run = 0
	}
	w.WriteBits(63, 6)
}

// RLEDecodeBlock reverses RLEEncodeBlock.
func RLEDecodeBlock(r *BitReader, blk *[64]int16) {
	for i := range blk {
		blk[i] = 0
	}
	pos := 0
	for pos < 64 {
		run := int(r.ReadBits(6))
		if run == 63 {
			return
		}
		pos += run
		v := readSigned(r)
		if pos < 64 {
			blk[ZigZag[pos]] = int16(v)
			pos++
		}
	}
	// consume the sentinel if the block was exactly full
	if r.ReadBits(6) != 63 {
		// tolerated: malformed stream fills the block and stops
		return
	}
}

func writeSigned(w *BitWriter, v int32) {
	neg := v < 0
	mag := v
	if neg {
		mag = -v
	}
	size := uint(0)
	for m := mag; m > 0; m >>= 1 {
		size++
	}
	w.WriteBits(uint32(size), 4)
	if size > 0 {
		sign := uint32(0)
		if neg {
			sign = 1
		}
		w.WriteBits(sign, 1)
		w.WriteBits(uint32(mag), size)
	}
}

func readSigned(r *BitReader) int32 {
	size := uint(r.ReadBits(4))
	if size == 0 {
		return 0
	}
	neg := r.ReadBits(1) == 1
	mag := int32(r.ReadBits(size))
	if neg {
		return -mag
	}
	return mag
}
