package media

// Golden implementations of the pixel-filter kernels: motion compensation
// (averaging prediction), addblock (residual reconstruction with
// saturation) and the jpeg h2v2 upsampler.

// AvgPred computes the bidirectional prediction (fwd+bwd+1)>>1 per pixel —
// the exact semantics of the packed-average instruction.
func AvgPred(fwd, bwd []byte) []byte {
	out := make([]byte, len(fwd))
	for i := range fwd {
		out[i] = byte((uint16(fwd[i]) + uint16(bwd[i]) + 1) >> 1)
	}
	return out
}

// AddBlock reconstructs pixels: out = sat8(pred + residual). residual is a
// signed 16-bit block. The original mpeg2 code performs the saturation with
// a memory lookup table; the multimedia ISAs do it with saturating packed
// adds — both produce these values.
func AddBlock(pred []byte, residual []int16) []byte {
	out := make([]byte, len(pred))
	for i := range pred {
		v := int32(pred[i]) + int32(residual[i])
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out[i] = byte(v)
	}
	return out
}

// H2V2Upsample doubles a plane in both dimensions with the triangular
// (3x+y+rounding)/4 filter used by the jpeg "fancy" upsampler. Only the
// interior rows/columns get the full filter; borders replicate, which is
// also what the kernels implement.
//
// Horizontal:  out[2i] = (3*in[i] + in[i-1] + 2) >> 2
//
//	out[2i+1] = (3*in[i] + in[i+1] + 1) >> 2
//
// applied after the same filter vertically.
func H2V2Upsample(in *Plane) *Plane {
	w, h := in.W, in.H
	// Vertical pass: 2h rows, each blending a row with its neighbour.
	tmp := make([][]int16, 2*h)
	for j := 0; j < h; j++ {
		up, down := j-1, j+1
		if up < 0 {
			up = 0
		}
		if down >= h {
			down = h - 1
		}
		r0 := make([]int16, w)
		r1 := make([]int16, w)
		for i := 0; i < w; i++ {
			c := int16(in.At(i, j))
			r0[i] = (3*c + int16(in.At(i, up)) + 2) >> 2
			r1[i] = (3*c + int16(in.At(i, down)) + 1) >> 2
		}
		tmp[2*j] = r0
		tmp[2*j+1] = r1
	}
	out := NewPlane(2*w, 2*h)
	for j := 0; j < 2*h; j++ {
		row := tmp[j]
		for i := 0; i < w; i++ {
			left, right := i-1, i+1
			if left < 0 {
				left = 0
			}
			if right >= w {
				right = w - 1
			}
			c := row[i]
			out.Set(2*i, j, byte((3*c+row[left]+2)>>2))
			out.Set(2*i+1, j, byte((3*c+row[right]+1)>>2))
		}
	}
	return out
}
