package media

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDCTRoundTrip(t *testing.T) {
	rng := NewRNG(7)
	worst := 0
	for trial := 0; trial < 200; trial++ {
		var blk, orig [64]int16
		for i := range blk {
			blk[i] = int16(rng.Intn(256) - 128) // level-shifted pixels
			orig[i] = blk[i]
		}
		FDCT8x8(&blk)
		IDCT8x8(&blk)
		for i := range blk {
			d := int(blk[i]) - int(orig[i])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	// The truncating Q0.16 multiplies bias each pass slightly; an error of a
	// few grey levels is the expected cost of 16-bit transform arithmetic.
	if worst > 6 {
		t.Errorf("round-trip worst-case error %d > 6", worst)
	}
}

func TestIDCTMatchesFloatReference(t *testing.T) {
	rng := NewRNG(11)
	for trial := 0; trial < 50; trial++ {
		var blk [64]int16
		// sparse, quantised-looking coefficients
		for k := 0; k < 10; k++ {
			blk[rng.Intn(64)] = int16(rng.Intn(400) - 200)
		}
		ref := IDCT8x8Float(&blk)
		got := blk
		IDCT8x8(&got)
		var mse float64
		for i := range got {
			d := float64(got[i]) - ref[i]
			mse += d * d
		}
		mse /= 64
		if rmse := math.Sqrt(mse); rmse > 1.5 {
			t.Fatalf("trial %d: IDCT rmse vs float reference %.3f > 1.5", trial, rmse)
		}
	}
}

func TestDCTDCOnly(t *testing.T) {
	var blk [64]int16
	for i := range blk {
		blk[i] = 64
	}
	FDCT8x8(&blk)
	// DC of a constant-64 block: 8*64 = 512 under the orthonormal scaling.
	if blk[0] < 500 || blk[0] > 524 {
		t.Errorf("DC = %d, want ~512", blk[0])
	}
	for i := 1; i < 64; i++ {
		if blk[i] > 4 || blk[i] < -4 {
			t.Errorf("AC[%d] = %d, want ~0", i, blk[i])
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	f := func(x int16, stepRaw uint8) bool {
		step := int32(stepRaw%64) + 1
		q := QuantizeCoef(x, step)
		d := DequantizeCoef(q, step)
		diff := int32(x) - int32(d)
		if diff < 0 {
			diff = -diff
		}
		// reciprocal rounding can add at most ~one extra step of error
		return diff <= 2*step
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeZeroAndSigns(t *testing.T) {
	if QuantizeCoef(0, 16) != 0 {
		t.Error("quant(0) != 0")
	}
	for _, x := range []int16{5, 100, 3000, -5, -100, -3000} {
		q := QuantizeCoef(x, 16)
		if (x > 0 && q < 0) || (x < 0 && q > 0) {
			t.Errorf("quant(%d) = %d: sign flipped", x, q)
		}
		nq := QuantizeCoef(-x, 16)
		if nq != -q {
			t.Errorf("quant not odd-symmetric: q(%d)=%d q(%d)=%d", x, q, -x, nq)
		}
	}
}

func TestRGB2YCCPlausible(t *testing.T) {
	// Grey must map to Y=grey, Cb~128, Cr~128.
	for _, v := range []byte{0, 64, 128, 200, 255} {
		y, cb, cr := RGB2YCC(v, v, v)
		if d := int(y) - int(v); d < -2 || d > 2 {
			t.Errorf("grey %d -> Y %d", v, y)
		}
		if d := int(cb) - 128; d < -2 || d > 2 {
			t.Errorf("grey %d -> Cb %d", v, cb)
		}
		if d := int(cr) - 128; d < -2 || d > 2 {
			t.Errorf("grey %d -> Cr %d", v, cr)
		}
	}
	// Pure red has high Cr.
	_, _, cr := RGB2YCC(255, 0, 0)
	if cr < 200 {
		t.Errorf("red Cr = %d, want > 200", cr)
	}
}

func TestColorRoundTrip(t *testing.T) {
	rng := NewRNG(3)
	worst := 0
	for i := 0; i < 2000; i++ {
		r0, g0, b0 := rng.Byte(), rng.Byte(), rng.Byte()
		y, cb, cr := RGB2YCC(r0, g0, b0)
		r1, g1, b1 := YCC2RGB(y, cb, cr)
		for _, d := range []int{int(r0) - int(r1), int(g0) - int(g1), int(b0) - int(b1)} {
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 6 {
		t.Errorf("colour round-trip worst error %d > 6", worst)
	}
}

func TestSADProperties(t *testing.T) {
	a := GenFrame(64, 48, 0, 1)
	b := GenFrame(64, 48, 1, 1)
	if SAD16(a, 8, 8, a, 8, 8) != 0 {
		t.Error("SAD of identical blocks must be 0")
	}
	if SAD16(a, 8, 8, b, 8, 8) < 0 {
		t.Error("SAD must be non-negative")
	}
	if SAD16(a, 8, 8, b, 8, 8) != SAD16(b, 8, 8, a, 8, 8) {
		t.Error("SAD must be symmetric")
	}
	if SQD16(a, 8, 8, a, 8, 8) != 0 {
		t.Error("SQD of identical blocks must be 0")
	}
}

func TestFullSearchFindsPlantedMotion(t *testing.T) {
	ref := GenFrame(96, 64, 0, 42)
	cur := NewPlane(96, 64)
	// shift ref by (+3,-2) to make cur
	for y := 0; y < 64; y++ {
		for x := 0; x < 96; x++ {
			sx, sy := x+3, y-2
			if sx < 0 {
				sx = 0
			}
			if sx >= 96 {
				sx = 95
			}
			if sy < 0 {
				sy = 0
			}
			if sy >= 64 {
				sy = 63
			}
			cur.Set(x, y, ref.At(sx, sy))
		}
	}
	dx, dy, sad := FullSearch(cur, 32, 24, ref, 32, 24, 4)
	if dx != 3 || dy != -2 {
		t.Errorf("found motion (%d,%d) sad=%d, want (3,-2)", dx, dy, sad)
	}
}

func TestSpiralOffsets(t *testing.T) {
	offs := SpiralOffsets(2)
	if len(offs) != 1+8+16 {
		t.Fatalf("spiral(2) has %d offsets, want 25", len(offs))
	}
	seen := map[[2]int]bool{}
	for _, o := range offs {
		if seen[o] {
			t.Fatalf("duplicate offset %v", o)
		}
		seen[o] = true
		if o[0] < -2 || o[0] > 2 || o[1] < -2 || o[1] > 2 {
			t.Fatalf("offset %v outside window", o)
		}
	}
}

func TestLTPFindsPitch(t *testing.T) {
	// Build a perfectly periodic signal: best lag must equal the period.
	period := 64
	n := 400
	base := make([]int16, period)
	for i := range base {
		base[i] = int16(1000*math.Sin(2*math.Pi*float64(i)/float64(period))) +
			int16(200*math.Sin(4*math.Pi*float64(i)/float64(period)+0.7))
	}
	sig := make([]int16, n)
	for i := range sig {
		sig[i] = base[i%period] // exactly periodic
	}
	pos := 240
	d := sig[pos : pos+SubframeLen]
	lag, corr := LTPParameters(d, sig, pos)
	// The 40-sample window covers only part of a 64-sample period, so the
	// raw cross-correlation peak can sit a sample or two off the period
	// (the unnormalised estimator GSM uses has the same property).
	if lag < period-2 || lag > period+2 {
		t.Errorf("best lag %d (corr %d), want %d +/- 2", lag, corr, period)
	}
	if corr <= 0 {
		t.Errorf("peak correlation %d not positive", corr)
	}
}

func TestBitIORoundTrip(t *testing.T) {
	f := func(vals []uint16, widths []uint8) bool {
		var w BitWriter
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		wid := make([]uint, n)
		for i := 0; i < n; i++ {
			wid[i] = uint(widths[i]%16) + 1
			w.WriteBits(uint32(vals[i])&(1<<wid[i]-1), wid[i])
		}
		r := NewBitReader(w.Flush())
		for i := 0; i < n; i++ {
			if r.ReadBits(wid[i]) != uint32(vals[i])&(1<<wid[i]-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRLEBlockRoundTrip(t *testing.T) {
	rng := NewRNG(99)
	for trial := 0; trial < 100; trial++ {
		var blk [64]int16
		for k := 0; k < rng.Intn(20); k++ {
			blk[rng.Intn(64)] = int16(rng.Intn(2000) - 1000)
		}
		var w BitWriter
		RLEEncodeBlock(&w, &blk)
		var got [64]int16
		RLEDecodeBlock(NewBitReader(w.Flush()), &got)
		if got != blk {
			t.Fatalf("trial %d: RLE round trip mismatch", trial)
		}
	}
}

func TestUpsampleProperties(t *testing.T) {
	in := GenFrame(24, 16, 0, 5)
	out := H2V2Upsample(in)
	if out.W != 48 || out.H != 32 {
		t.Fatalf("output %dx%d, want 48x32", out.W, out.H)
	}
	// A constant plane must stay constant.
	c := NewPlane(8, 8)
	for i := range c.Pix {
		c.Pix[i] = 77
	}
	up := H2V2Upsample(c)
	for i, v := range up.Pix {
		if v != 77 {
			t.Fatalf("constant plane changed at %d: %d", i, v)
		}
	}
}

func TestGenDeterminism(t *testing.T) {
	a := GenFrame(40, 30, 2, 9)
	b := GenFrame(40, 30, 2, 9)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("frame generation is not deterministic")
		}
	}
	p1 := GenPCM(100, 4)
	p2 := GenPCM(100, 4)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("PCM generation is not deterministic")
		}
	}
}

func TestSTP2PredictsPeriodicSignal(t *testing.T) {
	// A strongly autocorrelated signal must yield a residual with far less
	// energy than the input.
	sig := GenPCM(480, 77)
	pre := Preemphasis(sig)
	ac0 := AutoCorr(pre, 0)
	a1, a2 := STP2(ac0, AutoCorr(pre, 1), AutoCorr(pre, 2))
	a1q := DequantSTP(QuantSTP(a1))
	a2q := DequantSTP(QuantSTP(a2))
	res := make([]int16, len(pre))
	STPFilterFrame(pre, res, 0, len(pre), a1q, a2q)
	var eIn, eOut int64
	for i := range pre {
		eIn += int64(pre[i]) * int64(pre[i])
		eOut += int64(res[i]) * int64(res[i])
	}
	if eOut*2 >= eIn {
		t.Errorf("short-term predictor removed too little energy: in=%d out=%d", eIn, eOut)
	}
}

func TestSTP2Degenerate(t *testing.T) {
	a1, a2 := STP2(0, 0, 0)
	if a1 != 0 || a2 != 0 {
		t.Error("zero-energy frame must predict nothing")
	}
	a1, a2 = STP2(100, 200, 0) // den < 0
	if a1 != 0 || a2 != 0 {
		t.Error("degenerate denominator must predict nothing")
	}
}

func TestQuantSTPRange(t *testing.T) {
	for _, a := range []int16{-32768, -511, 0, 511, 32767} {
		q := QuantSTP(a)
		if q < -64 || q > 63 {
			t.Errorf("QuantSTP(%d) = %d outside 7-bit range", a, q)
		}
		d := DequantSTP(q)
		if diff := int(a) - int(d); diff < -32768 || diff > 32767 {
			t.Errorf("DequantSTP wildly off for %d", a)
		}
	}
}

func TestHuffmanCanonicalProperties(t *testing.T) {
	tab := JPEGACTable
	// Kraft inequality must hold with equality-or-less.
	sum := 0.0
	used := 0
	for s, l := range tab.Len {
		if l == 0 {
			continue
		}
		used++
		sum += 1 / float64(uint64(1)<<l)
		if l > MaxHuffLen {
			t.Fatalf("symbol %#x has over-long code %d", s, l)
		}
	}
	if used < 100 {
		t.Fatalf("only %d symbols coded", used)
	}
	if sum > 1.0000001 {
		t.Fatalf("Kraft sum %f > 1: not a prefix code", sum)
	}
	// No code is a prefix of another.
	for a, la := range tab.Len {
		for b, lb := range tab.Len {
			if a == b || la == 0 || lb == 0 || la > lb {
				continue
			}
			if tab.Code[b]>>(lb-la) == tab.Code[a] {
				t.Fatalf("code of %#x is a prefix of %#x", a, b)
			}
		}
	}
	// Frequent symbols get short codes: EOB must be among the shortest.
	for s, l := range tab.Len {
		if l > 0 && l < tab.Len[0x00] {
			t.Fatalf("EOB (len %d) longer than symbol %#x (len %d)", tab.Len[0x00], s, l)
		}
	}
}

func TestHuffmanBlockRoundTrip(t *testing.T) {
	rng := NewRNG(123)
	for trial := 0; trial < 200; trial++ {
		var blk [64]int16
		// Mixed density: some sparse, some dense, some with long runs.
		nnz := rng.Intn(30)
		for k := 0; k < nnz; k++ {
			blk[rng.Intn(64)] = int16(rng.Intn(4000) - 2000)
		}
		var w BitWriter
		HuffEncodeBlock(&w, &blk)
		var got [64]int16
		HuffDecodeBlock(NewBitReader(w.Flush()), &got)
		if got != blk {
			t.Fatalf("trial %d: huffman round trip mismatch", trial)
		}
	}
}

func TestHuffmanBeatsFixedRLE(t *testing.T) {
	// On realistic (sparse, small-valued) blocks the Huffman coder should
	// be tighter than the fixed-width RLE coder.
	rng := NewRNG(5)
	var hw, rw BitWriter
	for trial := 0; trial < 100; trial++ {
		var blk [64]int16
		for i := range blk {
			blk[i] = int16(rng.Intn(256) - 128)
		}
		FDCT8x8(&blk)
		QuantizeBlock(&blk, 100)
		HuffEncodeBlock(&hw, &blk)
		RLEEncodeBlock(&rw, &blk)
	}
	h, r := len(hw.Flush()), len(rw.Flush())
	if h >= r {
		t.Errorf("huffman (%d bytes) not tighter than fixed RLE (%d bytes)", h, r)
	}
}

func TestMagnitudeCoding(t *testing.T) {
	for _, v := range []int32{0, 1, -1, 2, -2, 255, -255, 2047, -2048, 32767, -32768} {
		s := magSize(v)
		if v != 0 && (v >= 1<<s || v <= -(1<<s) || (v < 1<<(s-1) && v > -(1<<(s-1))-0)) {
			// category bounds: 2^(s-1) <= |v| < 2^s
			av := v
			if av < 0 {
				av = -av
			}
			if av < 1<<(s-1) || av >= 1<<s {
				t.Fatalf("magSize(%d) = %d: category bounds violated", v, s)
			}
		}
		if got := magValue(magBits(v, s), s); got != v {
			t.Fatalf("magnitude round trip: %d -> %d", v, got)
		}
	}
}
