package media

import "math"

// Plane is an 8-bit image plane with an explicit row stride, mirroring the
// layout the kernels see in simulated memory.
type Plane struct {
	W, H   int
	Stride int
	Pix    []byte
}

// NewPlane allocates a plane with Stride == W.
func NewPlane(w, h int) *Plane {
	return &Plane{W: w, H: h, Stride: w, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x, y).
func (p *Plane) At(x, y int) byte { return p.Pix[y*p.Stride+x] }

// Set stores a pixel at (x, y).
func (p *Plane) Set(x, y int, v byte) { p.Pix[y*p.Stride+x] = v }

// Clone returns a deep copy.
func (p *Plane) Clone() *Plane {
	q := &Plane{W: p.W, H: p.H, Stride: p.Stride, Pix: make([]byte, len(p.Pix))}
	copy(q.Pix, p.Pix)
	return q
}

// GenFrame synthesises a video frame: a smooth gradient background, a set of
// textured moving objects (so motion estimation has real work to do), and a
// sprinkle of sensor-like noise. t is the frame time; objects translate with
// t, which gives consecutive frames genuine displaced content.
func GenFrame(w, h, t int, seed uint64) *Plane {
	p := NewPlane(w, h)
	rng := NewRNG(seed)
	// Background gradient with gentle sinusoidal texture.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 64 + (x*48)/max(w, 1) + (y*32)/max(h, 1)
			v += int(12 * math.Sin(float64(x)/9.0) * math.Cos(float64(y)/11.0))
			p.Set(x, y, clamp8(v))
		}
	}
	// Moving textured rectangles.
	nObj := 4
	for o := 0; o < nObj; o++ {
		ow := min(12+rng.Intn(20), w)
		oh := min(12+rng.Intn(20), h)
		baseX := rng.Intn(max(w-ow, 1))
		baseY := rng.Intn(max(h-oh, 1))
		dx := rng.Intn(7) - 3
		dy := rng.Intn(5) - 2
		ox := mod(baseX+dx*t, max(w-ow, 1))
		oy := mod(baseY+dy*t, max(h-oh, 1))
		tone := 30 + rng.Intn(180)
		txSeed := rng.Next()
		tx := NewRNG(txSeed)
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				v := tone + int(tx.Next()%23) - 11
				p.Set(ox+x, oy+y, clamp8(v))
			}
		}
	}
	// Light noise.
	for i := 0; i < w*h/16; i++ {
		idx := rng.Intn(w * h)
		p.Pix[idx] = clamp8(int(p.Pix[idx]) + rng.Intn(9) - 4)
	}
	return p
}

// GenRGB synthesises three planar colour planes of a photographic-looking
// test image (gradients + blobs + noise), one byte per sample.
func GenRGB(w, h int, seed uint64) (r, g, b *Plane) {
	r, g, b = NewPlane(w, h), NewPlane(w, h), NewPlane(w, h)
	rng := NewRNG(seed)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fr := 100 + (x*120)/max(w, 1)
			fg := 80 + (y*130)/max(h, 1)
			fb := 60 + ((x+y)*90)/max(w+h, 1)
			fr += int(20 * math.Sin(float64(x)/13))
			fg += int(15 * math.Cos(float64(y)/7))
			r.Set(x, y, clamp8(fr+rng.Intn(7)-3))
			g.Set(x, y, clamp8(fg+rng.Intn(7)-3))
			b.Set(x, y, clamp8(fb+rng.Intn(7)-3))
		}
	}
	return
}

// GenPCM synthesises n samples of voiced-speech-like 13-bit PCM: a few
// harmonics with a slowly wandering pitch plus noise. GSM long-term
// prediction finds genuine periodicity in this signal.
func GenPCM(n int, seed uint64) []int16 {
	rng := NewRNG(seed)
	out := make([]int16, n)
	pitch := 55.0 + float64(rng.Intn(40))
	phase := 0.0
	for i := 0; i < n; i++ {
		pitch += (float64(rng.Intn(9)) - 4) * 0.01
		phase += 2 * math.Pi / pitch
		v := 1200*math.Sin(phase) + 500*math.Sin(2*phase+0.5) + 280*math.Sin(3*phase+1.1)
		v += float64(rng.Intn(121) - 60)
		if v > 4095 {
			v = 4095
		}
		if v < -4096 {
			v = -4096
		}
		out[i] = int16(v)
	}
	return out
}

// GenBlock16 produces a 16x16 pixel block cut from a generated frame.
func GenBlock16(seed uint64) []byte {
	f := GenFrame(32, 32, 0, seed)
	blk := make([]byte, 16*16)
	for y := 0; y < 16; y++ {
		copy(blk[y*16:(y+1)*16], f.Pix[(y+8)*f.Stride+8:(y+8)*f.Stride+24])
	}
	return blk
}

func clamp8(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

func mod(a, m int) int {
	if m <= 0 {
		return 0
	}
	a %= m
	if a < 0 {
		a += m
	}
	return a
}

// PSNR computes the peak signal-to-noise ratio (dB) between two
// equally-sized 8-bit planes — the quality metric backing the paper's
// "no visually perceptible losses in accuracy" verification.
func PSNR(a, b []byte) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var se float64
	for i := range a {
		d := float64(int(a[i]) - int(b[i]))
		se += d * d
	}
	if se == 0 {
		return math.Inf(1)
	}
	mse := se / float64(len(a))
	return 10 * math.Log10(255*255/mse)
}
