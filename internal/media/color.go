package media

// Planar RGB -> YCbCr conversion with Q0.16 signed coefficients, chosen so
// every constant fits a signed halfword (so the packed-multiply form is
// expressible in all three multimedia ISAs with identical results).
//
// Each output sample is computed as a sum of 16x16 products accumulated at
// >= 32-bit precision, with a rounding bias that is itself expressible as a
// 16x16 product (128*256 = 32768), so every ISA can fold it into one extra
// multiply-accumulate (MMX pairs it into a PMADDH, MDMX adds one ACCMULH,
// MOM adds a fourth matrix row to the matrix-per-vector operation):
//
//	Y  = sat8(  (cYR*R + cYG1*G + cYG2*G + cYB*B + 128*256) >> 16 )
//	Cb = sat8( ((cBR*R + cBG*G  + cBB*B  + 128*256) >> 16) + 128 )
//	Cr = sat8( ((cRR*R + cRG*G  + cRB*B  + 128*256) >> 16) + 128 )
//
// The chroma +128 offset is added after the arithmetic shift (exactly
// equivalent to a 128<<16 bias, since the bias is a multiple of 2^16).
const (
	CYR, CYB      = 19595, 7471
	CYG1, CYG2    = 32767, 5703 // cYG = 38470 does not fit int16: split in two
	CBR, CBG, CBB = -11059, -21709, 32767
	CRR, CRG, CRB = 32767, -27439, -5329

	// Rounding bias as a 16x16 product (128*256 = 32768).
	BiasMul, BiasVal = 256, 128
)

// RGB2YCC converts one pixel using the exact fixed-point recipe above.
// The green Y coefficient (38470) exceeds the int16 range, so it is split
// into two products (32767 + 5703), exactly as the packed code does.
func RGB2YCC(r, g, b byte) (y, cb, cr byte) {
	ri, gi, bi := int32(r), int32(g), int32(b)
	bias := int32(BiasMul) * int32(BiasVal)
	ys := int32(CYR)*ri + int32(CYG1)*gi + int32(CYG2)*gi + int32(CYB)*bi + bias
	cbs := int32(CBR)*ri + int32(CBG)*gi + int32(CBB)*bi + bias
	crs := int32(CRR)*ri + int32(CRG)*gi + int32(CRB)*bi + bias
	return sat8i32(ys >> 16), sat8i32((cbs >> 16) + 128), sat8i32((crs >> 16) + 128)
}

// Inverse-conversion coefficients (Q0.14).
const (
	CRV = 22970
	CGU = 5638
	CGV = 11700
	CBU = 29032
)

// YCC2RGB is the inverse conversion (used by the jpeg-decode application).
// Coefficients are Q0.14; each product is evaluated with the packed
// multiply-high primitive on a <<2 pre-shifted difference, so
// (c * d) >> 14 == MulH16(4*d, c) exactly, and every ISA (including the
// scalar one) computes the identical per-term-truncated value:
//
//	R = sat8( Y + mulh16(4*(Cr-128), CRV) )
//	G = sat8( Y - mulh16(4*(Cb-128), CGU) - mulh16(4*(Cr-128), CGV) )
//	B = sat8( Y + mulh16(4*(Cb-128), CBU) )
func YCC2RGB(y, cb, cr byte) (r, g, b byte) {
	yy := int32(y)
	cbd4 := int16((int32(cb) - 128) << 2)
	crd4 := int16((int32(cr) - 128) << 2)
	r = sat8i32(yy + int32(MulH16(crd4, CRV)))
	g = sat8i32(yy - int32(MulH16(cbd4, CGU)) - int32(MulH16(crd4, CGV)))
	b = sat8i32(yy + int32(MulH16(cbd4, CBU)))
	return
}

// RGB2YCCPlanes converts whole planes (golden reference for the kernel).
func RGB2YCCPlanes(r, g, b *Plane) (y, cb, cr *Plane) {
	y, cb, cr = NewPlane(r.W, r.H), NewPlane(r.W, r.H), NewPlane(r.W, r.H)
	for j := 0; j < r.H; j++ {
		for i := 0; i < r.W; i++ {
			yy, cbb, crr := RGB2YCC(r.At(i, j), g.At(i, j), b.At(i, j))
			y.Set(i, j, yy)
			cb.Set(i, j, cbb)
			cr.Set(i, j, crr)
		}
	}
	return
}

// Downsample2x2 averages 2x2 blocks (chroma subsampling for the encoders).
func Downsample2x2(p *Plane) *Plane {
	out := NewPlane(p.W/2, p.H/2)
	for j := 0; j < out.H; j++ {
		for i := 0; i < out.W; i++ {
			s := int(p.At(2*i, 2*j)) + int(p.At(2*i+1, 2*j)) +
				int(p.At(2*i, 2*j+1)) + int(p.At(2*i+1, 2*j+1))
			out.Set(i, j, byte((s+2)>>2))
		}
	}
	return out
}

func sat8i32(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
