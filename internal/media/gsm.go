package media

// Golden GSM 06.10-style long-term-prediction parameter computation
// (the ltpparameters kernel) and the small helpers the gsm-encode
// application composes.

// LTPMinLag and LTPMaxLag bound the long-term predictor lag search.
const (
	LTPMinLag   = 40
	LTPMaxLag   = 120
	SubframeLen = 40
)

// LTPCorr computes the cross-correlation sum_{i<40} d[i]*dp[i-lag] with
// 32-bit wrapping accumulation (the exact arithmetic of the packed
// implementations; with 13-bit inputs the sum never overflows 32 bits, so
// wrapping equals exact).
func LTPCorr(d []int16, dp []int16, dpPos, lag int) int32 {
	var s int32
	for i := 0; i < SubframeLen; i++ {
		s += int32(d[i]) * int32(dp[dpPos+i-lag])
	}
	return s
}

// LTPParameters finds the lag in [LTPMinLag, LTPMaxLag] maximising the
// cross-correlation of subframe d against history dp (dpPos is the index of
// the subframe start inside dp). It returns the best lag and its
// correlation; ties keep the smaller lag.
func LTPParameters(d []int16, dp []int16, dpPos int) (bestLag int, bestCorr int32) {
	bestLag = LTPMinLag
	bestCorr = -1 << 31
	for lag := LTPMinLag; lag <= LTPMaxLag; lag++ {
		c := LTPCorr(d, dp, dpPos, lag)
		if c > bestCorr {
			bestCorr, bestLag = c, lag
		}
	}
	return
}

// LTPGainIndex quantises the gain ratio corr/energy into the 2-bit GSM gain
// index (coarse approximation of the standard's table).
func LTPGainIndex(corr int32, energy int32) int {
	if energy <= 0 || corr <= 0 {
		return 0
	}
	// ratio in Q6
	r := int64(corr) * 64 / int64(energy)
	switch {
	case r < 13:
		return 0
	case r < 26:
		return 1
	case r < 45:
		return 2
	default:
		return 3
	}
}

// Energy40 computes the energy of a 40-sample window at dp[pos-lag...].
func Energy40(dp []int16, pos, lag int) int32 {
	var s int32
	for i := 0; i < SubframeLen; i++ {
		v := int32(dp[pos+i-lag])
		s += v * v
	}
	return s
}

// Preemphasis applies the GSM front-end preemphasis filter
// s'[i] = sat16(s[i] - (28180*s[i-1])>>15) with the exact fixed-point
// arithmetic used by the ISA-level code.
func Preemphasis(s []int16) []int16 {
	out := make([]int16, len(s))
	var prev int32
	for i, v := range s {
		t := int32(v) - (28180*prev)>>15
		if t > 32767 {
			t = 32767
		}
		if t < -32768 {
			t = -32768
		}
		out[i] = int16(t)
		prev = int32(v)
	}
	return out
}

// ---- short-term prediction (simplified order-2 LPC) ----
//
// Real GSM 06.10 runs an order-8 Schur recursion and lattice filter; this
// reproduction uses an order-2 predictor with a closed-form Yule-Walker
// solution, which preserves the pipeline structure (autocorrelation ->
// coefficient solve -> quantise -> analysis filter -> LTP on the residual)
// while staying expressible as straightforward scalar integer code whose
// semantics the ISA-level programs reproduce exactly.

// AutoCorr computes sum (s[i]>>2)*(s[i-lag]>>2) over i in [lag, len).
// The >>2 prescale keeps every downstream product inside int64.
func AutoCorr(s []int16, lag int) int64 {
	var acc int64
	for i := lag; i < len(s); i++ {
		acc += int64(s[i]>>2) * int64(s[i-lag]>>2)
	}
	return acc
}

// normShift returns the right-shift that brings v under 2^20 (0 if already
// small); both golden and generated code use the same loop.
func normShift(v int64) uint {
	var sh uint
	for v>>sh >= 1<<20 {
		sh++
	}
	return sh
}

// STP2 solves the order-2 Yule-Walker equations in Q15:
//
//	a1 = ((ac1*(ac0-ac2)) << 15) / (ac0^2 - ac1^2)
//	a2 = ((ac0*ac2 - ac1^2) << 15) / (ac0^2 - ac1^2)
//
// after normalising the autocorrelations below 2^20. Degenerate frames
// (den <= 0) predict nothing.
func STP2(ac0, ac1, ac2 int64) (a1, a2 int16) {
	sh := normShift(ac0)
	ac0 >>= sh
	ac1 >>= sh
	ac2 >>= sh
	den := ac0*ac0 - ac1*ac1
	if ac0 <= 0 || den <= 0 {
		return 0, 0
	}
	n1 := (ac1 * (ac0 - ac2)) << 15 / den
	n2 := (ac0*ac2 - ac1*ac1) << 15 / den
	return satSTP(n1), satSTP(n2)
}

func satSTP(v int64) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// QuantSTP quantises a Q15 coefficient to a 7-bit index.
func QuantSTP(a int16) int {
	q := int(a) >> 9
	if q < -64 {
		q = -64
	}
	if q > 63 {
		q = 63
	}
	return q
}

// DequantSTP reverses QuantSTP.
func DequantSTP(q int) int16 { return int16(q << 9) }

// STPFilterFrame writes the short-term residual of s[start:start+n] into
// dst[start:start+n]: d[i] = sat16(s[i] - (a1*s[i-1] + a2*s[i-2]) >> 15),
// reading predecessors from the full signal (zero before index 0).
func STPFilterFrame(s []int16, dst []int16, start, n int, a1, a2 int16) {
	at := func(i int) int64 {
		if i < 0 {
			return 0
		}
		return int64(s[i])
	}
	for i := start; i < start+n; i++ {
		p := (int64(a1)*at(i-1) + int64(a2)*at(i-2)) >> 15
		v := int64(s[i]) - p
		if v > 32767 {
			v = 32767
		}
		if v < -32768 {
			v = -32768
		}
		dst[i] = int16(v)
	}
}
