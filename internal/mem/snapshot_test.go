package mem

// Checkpoint snapshot/restore round-trip tests: a clone seeded from a
// snapshot must behave exactly like the original — same tag state, same
// LRU order, same subsequent timing — for every memory-model organisation.

import (
	"reflect"
	"testing"
)

// churn drives a deterministic access mix through a model, exercising
// scalar loads/stores, both vector paths and line-crossing accesses.
func churn(m Model, seed uint64) {
	cycle := int64(0)
	for i := uint64(0); i < 2000; i++ {
		addr := (seed + i*i*2654435761) % (1 << 22)
		switch i % 5 {
		case 0:
			cycle = m.Load(cycle+1, addr, 8)
		case 1:
			cycle = m.Store(cycle+1, addr, 4)
		case 2:
			cycle = m.LoadVector(cycle+1, addr, 16, 8, 2)
		case 3:
			cycle = m.StoreVector(cycle+1, addr, 8, 4, 2)
		case 4:
			cycle = m.Load(cycle+1, addr|30, 8) // line-crossing
		}
	}
}

// warmChurn is churn through the Warmer interface (no timing, no stats).
func warmChurn(w Warmer, seed uint64) {
	for i := uint64(0); i < 2000; i++ {
		addr := (seed + i*i*2654435761) % (1 << 22)
		switch i % 5 {
		case 0:
			w.WarmLoad(addr, 8)
		case 1:
			w.WarmStore(addr, 4)
		case 2:
			w.WarmLoadVector(addr, 16, 8)
		case 3:
			w.WarmStoreVector(addr, 8, 4)
		case 4:
			w.WarmLoad(addr|30, 8)
		}
	}
}

func snapModels(t *testing.T) map[string]func() Snapshotter {
	t.Helper()
	return map[string]func() Snapshotter{
		"perfect": func() Snapshotter { return NewPerfect(1) },
		"conventional": func() Snapshotter {
			return NewHierarchy(HierConfig{Width: 4, Mode: ModeConventional})
		},
		"multi-address": func() Snapshotter {
			return NewHierarchy(HierConfig{Width: 4, Mode: ModeMultiAddress})
		},
		"vector-cache": func() Snapshotter {
			return NewHierarchy(HierConfig{Width: 4, Mode: ModeVectorCache})
		},
		"collapsing": func() Snapshotter {
			return NewHierarchy(HierConfig{Width: 4, Mode: ModeCollapsing})
		},
	}
}

// TestSnapshotRoundTrip: snapshotting a warmed model and cloning from the
// snapshot reproduces the identical tag state (snapshot of the clone equals
// the original snapshot), and the clone starts with zeroed stats.
func TestSnapshotRoundTrip(t *testing.T) {
	for name, mk := range snapModels(t) {
		src := mk()
		warmChurn(src, 12345)
		snap := src.SnapshotTags()
		cloneM := src.NewFromSnapshot(snap)
		if cloneM.Stats() != (Stats{}) {
			t.Errorf("%s: clone starts with non-zero stats %+v", name, cloneM.Stats())
		}
		clone, ok := cloneM.(Snapshotter)
		if !ok {
			t.Fatalf("%s: clone is not a Snapshotter", name)
		}
		again := clone.SnapshotTags()
		if !reflect.DeepEqual(snap, again) {
			t.Errorf("%s: snapshot round-trip diverged", name)
		}
	}
}

// TestSnapshotCloneBehaves: after restoring, the clone must time a further
// access sequence exactly like the original (same final stats), proving the
// restored LRU order and dirty bits are behaviourally faithful.
func TestSnapshotCloneBehaves(t *testing.T) {
	for name, mk := range snapModels(t) {
		src := mk()
		warmChurn(src, 999)
		clone := src.NewFromSnapshot(src.SnapshotTags())
		orig := mk().NewFromSnapshot(src.SnapshotTags()) // second clone, fresh timing state
		churn(clone, 777)
		churn(orig, 777)
		if clone.Stats() != orig.Stats() {
			t.Errorf("%s: clones diverged after identical access mix:\n%+v\nvs\n%+v",
				name, clone.Stats(), orig.Stats())
		}
	}
}

// TestSnapshotIndependence: mutating a clone never leaks into the source
// model or into sibling clones.
func TestSnapshotIndependence(t *testing.T) {
	src := NewHierarchy(HierConfig{Width: 4, Mode: ModeMultiAddress})
	warmChurn(src, 42)
	snap := src.SnapshotTags()
	a := src.NewFromSnapshot(snap)
	b := src.NewFromSnapshot(snap)
	churn(a, 1)
	if !reflect.DeepEqual(src.SnapshotTags(), snap) {
		t.Error("churning a clone mutated the source model")
	}
	if !reflect.DeepEqual(b.(Snapshotter).SnapshotTags(), snap) {
		t.Error("churning one clone mutated a sibling clone")
	}
}

// TestSnapshotBytes: the footprint accounting tracks the valid-line count.
func TestSnapshotBytes(t *testing.T) {
	h := NewHierarchy(HierConfig{Width: 4, Mode: ModeMultiAddress})
	empty := h.SnapshotTags()
	if got := empty.Bytes(); got != 16 { // two bare ticks
		t.Errorf("empty snapshot bytes = %d, want 16", got)
	}
	warmChurn(h, 7)
	if full := h.SnapshotTags(); full.Bytes() <= empty.Bytes() {
		t.Errorf("warmed snapshot (%d bytes) not larger than empty (%d)",
			full.Bytes(), empty.Bytes())
	}
	var nilSnap *TagSnapshot
	if nilSnap.Bytes() != 0 {
		t.Error("nil snapshot must report zero bytes")
	}
}
