package mem

import "fmt"

// VectorMode selects how MOM vector accesses reach memory (Figure 6).
type VectorMode int

const (
	// ModeConventional has no special vector path (Alpha/MMX/MDMX machines;
	// a MOM access would be decomposed element-wise through L1 like
	// multi-address, but conventional configs never run MOM code).
	ModeConventional VectorMode = iota
	// ModeMultiAddress decouples a vector access element-wise across all
	// memory ports into the banked L1.
	ModeMultiAddress
	// ModeVectorCache bypasses L1: stride-one-ish requests are serviced as
	// whole interleaved line pairs out of the L2-side vector cache.
	ModeVectorCache
	// ModeCollapsing adds the collapsing buffer: any elements falling in a
	// consecutive line pair are gathered in one access (higher latency).
	ModeCollapsing
)

func (m VectorMode) String() string {
	switch m {
	case ModeConventional:
		return "conventional"
	case ModeMultiAddress:
		return "multi-address"
	case ModeVectorCache:
		return "vector-cache"
	case ModeCollapsing:
		return "collapsing-buffer"
	}
	return "?"
}

// HierConfig selects a detailed-hierarchy configuration (Table 3).
type HierConfig struct {
	Width int // 4 or 8 (port/bank/latency scaling)
	Mode  VectorMode

	// Optional overrides for ablation studies (0 = Table 3 default).
	MSHRs   int // miss-status holding registers per cache level
	L1Banks int // L1 bank count
}

// dram models the Direct Rambus main memory: one 3.2 GB/s channel (about
// 6.4 bytes per CPU cycle, so a 128-byte L2 line occupies the channel for
// 20 cycles) feeding 8 internal banks.
type dram struct {
	latency  int64
	chanOcc  int64
	bankOcc  int64
	chanFree int64
	banks    [8]int64
}

func newDRAM() *dram { return &dram{latency: 60, chanOcc: 20, bankOcc: 40} }

func (d *dram) access(cycle int64, addr uint64, st *Stats) int64 {
	b := (addr >> 13) & 7
	if w := d.chanFree - cycle; w > 0 {
		st.DRAMChanBusy += uint64(w)
	}
	if w := d.banks[b] - cycle; w > 0 {
		st.DRAMBankBusy += uint64(w)
	}
	start := max(cycle, max(d.chanFree, d.banks[b]))
	d.chanFree = start + d.chanOcc
	d.banks[b] = start + d.bankOcc
	return start + d.latency
}

// writeback charges channel/bank occupancy without a latency result.
func (d *dram) writeback(cycle int64, addr uint64, st *Stats) {
	d.access(cycle, addr, st)
}

func (d *dram) reset() {
	d.chanFree = 0
	d.banks = [8]int64{}
}

// level2 is the on-chip 1 MB 2-way write-back L2 with 128-byte lines and
// 8 MSHRs.
type level2 struct {
	arr      *cacheArr
	mshr     *resource
	portFree int64
	lat      int64
	mem      *dram
}

func newLevel2() *level2 { return newLevel2WithMSHRs(8) }

func newLevel2WithMSHRs(mshrs int) *level2 {
	return &level2{
		arr:  newCacheArr(1<<20, 128, 2),
		mshr: newResource(mshrs),
		lat:  6,
		mem:  newDRAM(),
	}
}

// access serves one line request; store marks the line dirty.
func (l *level2) access(cycle int64, addr uint64, store bool, st *Stats) int64 {
	start := max(cycle, l.portFree)
	l.portFree = start + 1
	st.L2Lookups++
	if l.arr.lookup(addr, store) {
		st.L2Hits++
		return start + l.lat
	}
	st.L2Misses++
	slot, mstart := l.mshr.take(start)
	if mstart > start {
		st.MSHRStalls++
	}
	done := l.mem.access(mstart+l.lat, addr, st)
	l.mshr.set(slot, done)
	evicted, wasDirty, wasValid := l.arr.fill(addr, store)
	if wasValid && wasDirty {
		l.mem.writeback(done, evicted, st)
	}
	return done
}

func (l *level2) reset() {
	l.arr.reset()
	l.mshr.reset()
	l.portFree = 0
	l.mem.reset()
}

// Hierarchy is the full detailed memory system of the application study.
type Hierarchy struct {
	cfg HierConfig

	l1      *cacheArr
	l1Banks []int64
	l1Lat   int64
	l1MSHR  *resource

	wb       *resource // coalescing write buffer slots
	wbLines  []uint64  // line address per slot (for coalescing)
	l2       *level2
	vcPort   int64 // vector-cache port availability
	vcOcc    int64 // cycles a line-pair access occupies the VC port
	vcLat    int64
	nPorts   int
	stats    Stats
	l1LineSz uint64
	l2LineSz uint64
}

// NewHierarchy builds the Table 3 configuration for the given width and
// vector mode.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	if cfg.Width != 4 && cfg.Width != 8 {
		panic(fmt.Sprintf("mem: hierarchy width must be 4 or 8, got %d", cfg.Width))
	}
	mshrs := cfg.MSHRs
	if mshrs <= 0 {
		mshrs = 8
	}
	h := &Hierarchy{cfg: cfg, l2: newLevel2WithMSHRs(mshrs), l1LineSz: 32, l2LineSz: 128}
	h.l1 = newCacheArr(32<<10, 32, 1)
	h.l1MSHR = newResource(mshrs)
	h.wb = newResource(8)
	h.wbLines = make([]uint64, 8)
	banks := 4
	h.l1Lat = 1
	h.nPorts = 2
	if cfg.Width == 8 {
		banks = 8
		h.nPorts = 4
		h.l1Lat = 2
	}
	switch cfg.Mode {
	case ModeVectorCache, ModeCollapsing:
		// Table 3: "L2 latency 8/10 cyc" = vector cache 8, collapsing
		// buffer 10 (the extra collapse network stage), at both widths;
		// the 8-way machine doubles the vector-port width instead.
		h.vcLat = 8
		if cfg.Mode == ModeCollapsing {
			h.vcLat = 10
		}
		h.vcOcc = 2
		banks = 1
		h.l1Lat = 1
		h.nPorts = 1
		if cfg.Width == 8 {
			h.vcOcc = 1
			banks = 2
			h.nPorts = 2
		}
	}
	if cfg.L1Banks > 0 {
		banks = cfg.L1Banks
	}
	h.l1Banks = make([]int64, banks)
	return h
}

func (h *Hierarchy) Name() string {
	return fmt.Sprintf("%s/%d-way", h.cfg.Mode, h.cfg.Width)
}

func (h *Hierarchy) Reset() {
	h.l1.reset()
	h.l1MSHR.reset()
	h.wb.reset()
	for i := range h.wbLines {
		h.wbLines[i] = 0
	}
	h.l2.reset()
	for i := range h.l1Banks {
		h.l1Banks[i] = 0
	}
	h.vcPort = 0
	h.stats = Stats{}
}

func (h *Hierarchy) Stats() Stats { return h.stats }

func (h *Hierarchy) VectorReservesAllPorts() bool {
	return h.cfg.Mode == ModeMultiAddress || h.cfg.Mode == ModeConventional
}

// scalarLoad runs one (aligned) element access through L1.
func (h *Hierarchy) scalarLoad(cycle int64, addr uint64) int64 {
	b := int(h.l1.line(addr)) % len(h.l1Banks)
	start := max(cycle, h.l1Banks[b])
	if start > cycle {
		h.stats.BankConflicts++
	}
	h.l1Banks[b] = start + 1
	h.stats.L1Lookups++
	if h.l1.lookup(addr, false) {
		h.stats.L1Hits++
		return start + h.l1Lat
	}
	h.stats.L1Misses++
	slot, mstart := h.l1MSHR.take(start)
	if mstart > start {
		h.stats.MSHRStalls++
	}
	done := h.l2.access(mstart+h.l1Lat, addr, false, &h.stats)
	h.l1MSHR.set(slot, done)
	h.l1.fill(addr, false) // write-through: never dirty
	return done
}

// Load times a scalar load, splitting line-crossing accesses.
func (h *Hierarchy) Load(cycle int64, addr uint64, size int) int64 {
	h.stats.Loads++
	done := h.scalarLoad(cycle, addr)
	if (addr&(h.l1LineSz-1))+uint64(size) > h.l1LineSz {
		h.stats.Unaligned++
		d2 := h.scalarLoad(cycle+1, addr+uint64(size))
		done = max(done, d2)
	}
	return done
}

// Store accepts a scalar store: L1 is write-through with a coalescing
// 8-deep write buffer draining into L2.
func (h *Hierarchy) Store(cycle int64, addr uint64, size int) int64 {
	h.stats.Stores++
	return h.storeElem(cycle, addr)
}

// storeElem is one store element's trip through the write-through L1 and
// the coalescing write buffer, without the Stores counter: Store charges it
// once per scalar store, the multi-address vector path once per vector
// store while streaming every element through here. The L1 probe counts a
// hit or a miss either way (no-allocate: a miss never fills the line), so
// L1Hits+L1Misses covers store lookups too.
func (h *Hierarchy) storeElem(cycle int64, addr uint64) int64 {
	h.stats.L1Lookups++
	if h.l1.lookup(addr, false) {
		h.stats.L1Hits++
		h.stats.L1StoreHits++
	} else {
		h.stats.L1Misses++
		h.stats.L1StoreMisses++
	}
	line := addr &^ (h.l2LineSz - 1)
	// Coalesce with an in-flight buffer entry for the same L2 line.
	for i, la := range h.wbLines {
		if la == line && h.wb.busy[i] > cycle {
			return cycle
		}
	}
	slot, start := h.wb.take(cycle)
	if start > cycle {
		h.stats.WriteBufStalls++
	}
	h.stats.WriteBufDrains++
	done := h.l2.access(start, addr, true, &h.stats)
	h.wb.set(slot, done)
	h.wbLines[slot] = line
	return start
}

// LoadVector dispatches by mode.
func (h *Hierarchy) LoadVector(cycle int64, base uint64, stride int64, n, rate int) int64 {
	h.stats.VecLoads++
	h.stats.VecElems += uint64(n)
	switch h.cfg.Mode {
	case ModeVectorCache, ModeCollapsing:
		return h.vcAccess(cycle, base, stride, n, false)
	default:
		return h.maAccess(cycle, base, stride, n, rate, false)
	}
}

// StoreVector dispatches by mode.
func (h *Hierarchy) StoreVector(cycle int64, base uint64, stride int64, n, rate int) int64 {
	h.stats.VecStores++
	h.stats.VecElems += uint64(n)
	switch h.cfg.Mode {
	case ModeVectorCache, ModeCollapsing:
		return h.vcAccess(cycle, base, stride, n, true)
	default:
		return h.maAccess(cycle, base, stride, n, rate, true)
	}
}

// maAccess: multi-address — elements stream through the banked L1 at the
// port rate, exactly like independent scalar accesses.
func (h *Hierarchy) maAccess(cycle int64, base uint64, stride int64, n, rate int, store bool) int64 {
	if rate < 1 {
		rate = 1
	}
	var done int64
	for k := 0; k < n; k++ {
		addr := base + uint64(int64(k)*stride)
		// Elements stream at the port rate: k/rate is the port/bank
		// occupancy charge, identical for coalesced and drained stores.
		t := cycle + int64(k/rate)
		var d int64
		if store {
			// One VecStores event with n element probes; Stores counts only
			// scalar stores (storeElem leaves it alone).
			d = h.storeElem(t, addr)
		} else {
			d = h.scalarLoad(t, addr)
			if (addr&(h.l1LineSz-1))+8 > h.l1LineSz {
				h.stats.Unaligned++
				d = max(d, h.scalarLoad(t+1, addr+8))
			}
		}
		done = max(done, d)
	}
	return done
}

// vcAccess: the vector / collapsing-buffer cache. Elements are consumed in
// aligned L2 line-pair windows; each window access occupies the VC port and
// checks both lines in the L2 arrays (bypassing L1). MOM stores invalidate
// any stale L1 copies (the exclusive-bit/inclusion coherence of the paper).
func (h *Hierarchy) vcAccess(cycle int64, base uint64, stride int64, n int, store bool) int64 {
	pairSz := 2 * h.l2LineSz
	consumed := make([]bool, n)
	left := n
	var done int64
	for left > 0 {
		// Find the first unconsumed element; its aligned pair is the window.
		first := 0
		for consumed[first] {
			first++
		}
		addr0 := base + uint64(int64(first)*stride)
		win := addr0 &^ (pairSz - 1)
		h.stats.LineAccesses++
		start := max(cycle, h.vcPort)
		h.vcPort = start + h.vcOcc
		// Access the two lines in L2.
		d1 := h.l2.access(start, win, store, &h.stats)
		d2 := h.l2.access(start, win+h.l2LineSz, store, &h.stats)
		d := max(d1, d2) + (h.vcLat - h.l2.lat)
		// Consume elements starting inside the window; an element whose
		// last byte spills past the pair costs one extra line access.
		consume := func(k int) bool {
			a := base + uint64(int64(k)*stride)
			if a < win || a >= win+pairSz {
				return false
			}
			consumed[k] = true
			left--
			if store && h.l1.invalidate(a) {
				h.stats.L1VecInvals++
			}
			if a+8 > win+pairSz {
				h.stats.Unaligned++
				h.stats.LineAccesses++
				dx := h.l2.access(start, win+pairSz, store, &h.stats)
				d = max(d, dx+(h.vcLat-h.l2.lat))
				// The spilled bytes land in the line past the pair; a store
				// must invalidate any stale L1 copy of that line too (same
				// inclusion coherence as the in-window invalidate above).
				if store && h.l1.invalidate(win+pairSz) {
					h.stats.L1VecInvals++
				}
			}
			return true
		}
		if h.cfg.Mode == ModeCollapsing {
			for k := first; k < n; k++ {
				if !consumed[k] {
					consume(k)
				}
			}
		} else {
			// Vector cache: a run of consecutive elements from `first`.
			for k := first; k < n; k++ {
				if consumed[k] {
					continue
				}
				if !consume(k) && k > first {
					break
				}
			}
		}
		done = max(done, d)
	}
	return done
}
