package mem

// Perfect is an idealised memory with unlimited bandwidth and a fixed
// latency: the "equivalent model of a perfect cache" used for the
// kernel-level study. With Latency=1 it models the paper's perfect cache;
// with Latency=50 it models the streaming-reference latency experiment of
// Section 4.1.
type Perfect struct {
	Latency int64
	stats   Stats
}

// NewPerfect returns a Perfect memory with the given fixed latency.
func NewPerfect(latency int) *Perfect {
	if latency < 1 {
		latency = 1
	}
	return &Perfect{Latency: int64(latency)}
}

func (p *Perfect) Name() string { return "perfect" }

func (p *Perfect) Reset() { p.stats = Stats{} }

func (p *Perfect) Load(cycle int64, addr uint64, size int) int64 {
	p.stats.Loads++
	return cycle + p.Latency
}

func (p *Perfect) Store(cycle int64, addr uint64, size int) int64 {
	p.stats.Stores++
	return cycle
}

func (p *Perfect) LoadVector(cycle int64, base uint64, stride int64, n, rate int) int64 {
	p.stats.VecLoads++
	p.stats.VecElems += uint64(n)
	if rate < 1 {
		rate = 1
	}
	// Elements stream at the port rate; the last element's data returns
	// Latency cycles after its address is issued.
	last := cycle + int64((n-1)/rate)
	return last + p.Latency
}

func (p *Perfect) StoreVector(cycle int64, base uint64, stride int64, n, rate int) int64 {
	p.stats.VecStores++
	p.stats.VecElems += uint64(n)
	if rate < 1 {
		rate = 1
	}
	return cycle + int64((n-1)/rate)
}

func (p *Perfect) VectorReservesAllPorts() bool { return true }

func (p *Perfect) Stats() Stats { return p.stats }
