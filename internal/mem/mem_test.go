package mem

import "testing"

func TestPerfectLatency(t *testing.T) {
	p := NewPerfect(1)
	if done := p.Load(100, 0x1000, 8); done != 101 {
		t.Errorf("load done at %d, want 101", done)
	}
	p50 := NewPerfect(50)
	if done := p50.Load(100, 0x1000, 8); done != 150 {
		t.Errorf("load done at %d, want 150", done)
	}
	// Vector: 16 elements at rate 2 -> last address at +7, data at +7+lat.
	if done := p50.LoadVector(100, 0x1000, 8, 16, 2); done != 100+7+50 {
		t.Errorf("vector load done at %d, want %d", done, 157)
	}
}

func newHier(w int, mode VectorMode) *Hierarchy {
	return NewHierarchy(HierConfig{Width: w, Mode: mode})
}

func TestL1HitMissLatency(t *testing.T) {
	h := newHier(4, ModeConventional)
	first := h.Load(0, 0x2000, 8)
	if first <= 1 {
		t.Errorf("cold miss served too fast: %d", first)
	}
	second := h.Load(first, 0x2000, 8)
	if second != first+1 {
		t.Errorf("L1 hit latency: got %d cycles", second-first)
	}
	st := h.Stats()
	if st.L1Misses != 1 || st.L1Hits != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestL1LineGranularity(t *testing.T) {
	h := newHier(4, ModeConventional)
	h.Load(0, 0x2000, 8)
	// Same 32-byte line: hit. Next line: miss.
	d := h.Load(1000, 0x2010, 8)
	if d != 1001 {
		t.Errorf("same-line access should hit: %d", d-1000)
	}
	h.Load(2000, 0x2020, 8)
	st := h.Stats()
	if st.L1Misses != 2 {
		t.Errorf("expected 2 misses, got %d", st.L1Misses)
	}
}

func TestL2FasterThanDRAM(t *testing.T) {
	h := newHier(4, ModeConventional)
	cold := h.Load(0, 0x4000, 8) // misses L1+L2, goes to DRAM
	// Evict from L1 (direct-mapped, 32KB): same set, different tag.
	h.Load(cold, 0x4000+32<<10, 8)
	warm := h.Load(10_000, 0x4000, 8) // misses L1, hits L2
	if warm-10_000 >= cold {
		t.Errorf("L2 hit (%d) not faster than DRAM (%d)", warm-10_000, cold)
	}
}

func TestWriteBufferAbsorbsStores(t *testing.T) {
	h := newHier(4, ModeConventional)
	// A few stores to distinct lines are accepted immediately.
	for i := 0; i < 4; i++ {
		if acc := h.Store(int64(i), uint64(0x8000+i*128), 8); acc != int64(i) {
			t.Errorf("store %d delayed to %d", i, acc)
		}
	}
	// A long burst must eventually stall on the 8-deep buffer.
	stalled := false
	for i := 0; i < 64; i++ {
		if acc := h.Store(100, uint64(0x10000+i*128), 8); acc > 100 {
			stalled = true
			break
		}
	}
	if !stalled {
		t.Error("write buffer never back-pressured a store burst")
	}
}

func TestStoreCoalescing(t *testing.T) {
	h := newHier(4, ModeConventional)
	h.Store(0, 0x9000, 8)
	before := h.Stats().L2Hits + h.Stats().L2Misses
	h.Store(1, 0x9008, 8) // same L2 line, still in flight -> coalesced
	after := h.Stats().L2Hits + h.Stats().L2Misses
	if after != before {
		t.Error("same-line store was not coalesced")
	}
}

func TestStoreMissCounting(t *testing.T) {
	h := newHier(4, ModeConventional)
	h.Store(0, 0x9000, 8) // cold: the L1 probe must record a store miss
	st := h.Stats()
	if st.L1Lookups != 1 || st.L1Misses != 1 || st.L1StoreMisses != 1 {
		t.Errorf("cold store: lookups=%d misses=%d storeMisses=%d, want 1/1/1",
			st.L1Lookups, st.L1Misses, st.L1StoreMisses)
	}
	// Write-through no-allocate: the miss must NOT have filled the line, so
	// a load to it still misses.
	h.Load(100, 0x9000, 8)
	if got := h.Stats().L1Misses; got != 2 {
		t.Errorf("store miss allocated the line (L1Misses=%d, want 2)", got)
	}
	// The load filled it; a store to the cached line is a store hit.
	h.Store(1000, 0x9008, 8)
	st = h.Stats()
	if st.L1StoreHits != 1 {
		t.Errorf("store to a cached line: L1StoreHits=%d, want 1", st.L1StoreHits)
	}
	if st.L1Hits+st.L1Misses != st.L1Lookups {
		t.Errorf("lookup identity broken: %d+%d != %d", st.L1Hits, st.L1Misses, st.L1Lookups)
	}
}

func TestVectorStoreElementAccounting(t *testing.T) {
	h := newHier(4, ModeMultiAddress)
	h.StoreVector(0, 0x3000, 64, 16, 2)
	st := h.Stats()
	if st.VecStores != 1 || st.VecElems != 16 {
		t.Errorf("vector store events: %+v", st)
	}
	if st.Stores != 0 {
		t.Errorf("a vector store must not count scalar Stores, got %d", st.Stores)
	}
	if st.L1Lookups != 16 {
		t.Errorf("multi-address store must probe L1 once per element: %d probes", st.L1Lookups)
	}
	if st.L1Hits+st.L1Misses != st.L1Lookups {
		t.Errorf("lookup identity broken: %d+%d != %d", st.L1Hits, st.L1Misses, st.L1Lookups)
	}
	if st.L1StoreHits+st.L1StoreMisses != st.L1Lookups {
		t.Errorf("store components %d+%d must cover all %d probes",
			st.L1StoreHits, st.L1StoreMisses, st.L1Lookups)
	}
}

func TestVectorStorePairSpillInvalidatesL1(t *testing.T) {
	// An element whose last byte spills past its aligned 256-byte line pair
	// touches the next L2 line too; a store must invalidate any stale L1
	// copy of that spilled line, or a later scalar load reads stale data.
	for _, mode := range []VectorMode{ModeVectorCache, ModeCollapsing} {
		h := newHier(4, mode)
		h.Load(0, 0x4100, 8) // cache the line just past the pair [0x4000,0x4100)
		if h.Stats().L1Misses != 1 {
			t.Fatalf("%v: expected one cold miss", mode)
		}
		h.StoreVector(100, 0x40fc, 8, 1, 2) // spills 0x40fc..0x4103 into 0x4100
		if h.Stats().Unaligned == 0 {
			t.Fatalf("%v: spill element not detected as unaligned", mode)
		}
		if h.Stats().L1VecInvals == 0 {
			t.Errorf("%v: spill store did not invalidate the stale L1 line", mode)
		}
		if d := h.Load(1000, 0x4100, 8); d == 1001 {
			t.Errorf("%v: stale L1 line survived a spilling vector store", mode)
		}
	}
}

func TestMSHRStallCounting(t *testing.T) {
	h := NewHierarchy(HierConfig{Width: 4, Mode: ModeConventional, MSHRs: 1})
	// Two same-cycle misses to different lines in different banks: the
	// second must queue on the single MSHR.
	h.Load(0, 0x2000, 8)
	h.Load(0, 0x2020, 8)
	if h.Stats().MSHRStalls == 0 {
		t.Error("second concurrent miss did not record an MSHR stall")
	}
}

func TestWriteBufferDrainCoalescing(t *testing.T) {
	h := newHier(4, ModeConventional)
	h.Store(0, 0xa000, 8)
	h.Store(1, 0xa008, 8) // same L2 line, in flight -> coalesced, no drain
	st := h.Stats()
	if st.Stores != 2 {
		t.Errorf("Stores=%d, want 2", st.Stores)
	}
	if st.WriteBufDrains != 1 {
		t.Errorf("coalesced burst drained %d times, want 1", st.WriteBufDrains)
	}
	h.Store(2, 0xa080, 8) // next L2 line -> its own drain
	if got := h.Stats().WriteBufDrains; got != 2 {
		t.Errorf("distinct-line store drained %d times total, want 2", got)
	}
}

func TestUnalignedSplit(t *testing.T) {
	h := newHier(4, ModeConventional)
	h.Load(0, 0x201e, 8) // crosses a 32-byte line
	if h.Stats().Unaligned != 1 {
		t.Errorf("unaligned count %d, want 1", h.Stats().Unaligned)
	}
}

func TestMultiAddressVectorUsesL1(t *testing.T) {
	h := newHier(4, ModeMultiAddress)
	h.LoadVector(0, 0x3000, 64, 16, 2)
	st := h.Stats()
	if st.VecLoads != 1 || st.VecElems != 16 {
		t.Errorf("vector stats: %+v", st)
	}
	if st.L1Hits+st.L1Misses < 16 {
		t.Errorf("multi-address must probe L1 per element: %d probes", st.L1Hits+st.L1Misses)
	}
	if !h.VectorReservesAllPorts() {
		t.Error("multi-address must reserve all ports")
	}
}

func TestVectorCacheLinePairs(t *testing.T) {
	h := newHier(4, ModeVectorCache)
	// Stride-8 (contiguous) 16-element access = 128 bytes: one aligned
	// line pair.
	h.LoadVector(0, 0x4000, 8, 16, 2)
	st := h.Stats()
	if st.LineAccesses != 1 {
		t.Errorf("contiguous access took %d line-pair accesses, want 1", st.LineAccesses)
	}
	if st.L1Hits+st.L1Misses != 0 {
		t.Error("vector cache must bypass L1")
	}
	if h.VectorReservesAllPorts() {
		t.Error("vector cache should not reserve the CPU ports")
	}
	// A large stride defeats the line pairing (the mpeg2encode effect).
	h2 := newHier(4, ModeVectorCache)
	h2.LoadVector(0, 0x4000, 512, 16, 2)
	if h2.Stats().LineAccesses < 8 {
		t.Errorf("large-stride access should need many line pairs, got %d", h2.Stats().LineAccesses)
	}
}

func TestCollapsingGathersBetterOnNegativeStride(t *testing.T) {
	// Descending addresses within a window: both consume them, but the
	// collapsing buffer must never need more accesses than the vector
	// cache.
	for _, stride := range []int64{-2, -64, 48, 96} {
		vc := newHier(4, ModeVectorCache)
		cb := newHier(4, ModeCollapsing)
		vc.LoadVector(0, 0x8000, stride, 16, 2)
		cb.LoadVector(0, 0x8000, stride, 16, 2)
		if cb.Stats().LineAccesses > vc.Stats().LineAccesses {
			t.Errorf("stride %d: collapsing %d accesses > vector %d",
				stride, cb.Stats().LineAccesses, vc.Stats().LineAccesses)
		}
	}
}

func TestVectorStoreInvalidatesL1(t *testing.T) {
	h := newHier(4, ModeVectorCache)
	h.Load(0, 0x5000, 8) // bring the line into L1
	if h.Stats().L1Misses != 1 {
		t.Fatal("expected one cold miss")
	}
	h.StoreVector(100, 0x5000, 8, 16, 2) // MOM store overlapping the line
	d := h.Load(1000, 0x5000, 8)
	if d == 1001 {
		t.Error("stale L1 line survived a vector store (coherence violation)")
	}
}

func TestBankConflicts(t *testing.T) {
	h := newHier(4, ModeConventional)
	// Two simultaneous accesses to lines in the same bank (4 banks,
	// bank = line index % 4 -> addresses 128 bytes apart share a bank).
	h.Load(10, 0x2000, 8)
	h.Load(10, 0x2000+128, 8)
	if h.Stats().BankConflicts == 0 {
		t.Error("same-cycle same-bank accesses should conflict")
	}
}

func TestResetClearsState(t *testing.T) {
	h := newHier(4, ModeConventional)
	h.Load(0, 0x2000, 8)
	h.Reset()
	if h.Stats() != (Stats{}) {
		t.Error("Reset did not clear stats")
	}
	if d := h.Load(0, 0x2000, 8); d <= 1 {
		t.Error("Reset did not clear cache contents")
	}
}

func TestDRAMBankAndChannelContention(t *testing.T) {
	var st Stats
	d := newDRAM()
	first := d.access(0, 0, &st)
	second := d.access(0, 0, &st) // same bank, same cycle
	if second <= first {
		t.Error("same-bank DRAM accesses must serialise")
	}
	if st.DRAMBankBusy == 0 {
		t.Error("same-bank serialisation must be counted as DRAMBankBusy cycles")
	}
	d2 := newDRAM()
	var st2 Stats
	a := d2.access(0, 0, &st2)
	b := d2.access(0, 1<<13, &st2) // different bank, channel still shared
	if b <= a-d2.latency+d2.chanOcc-1 {
		t.Log("channel occupancy serialisation weak (acceptable)")
	}
	if st2.DRAMChanBusy == 0 {
		t.Error("shared-channel wait must be counted as DRAMChanBusy cycles")
	}
	if st2.DRAMBankBusy != 0 {
		t.Errorf("different banks must not count bank-busy cycles, got %d", st2.DRAMBankBusy)
	}
}

// TestHierarchyRandomisedInvariants drives every model with a pseudo-random
// access mix and checks basic sanity: completions never precede requests,
// and replaying the same sequence is deterministic.
func TestHierarchyRandomisedInvariants(t *testing.T) {
	modes := []VectorMode{ModeConventional, ModeMultiAddress, ModeVectorCache, ModeCollapsing}
	for _, mode := range modes {
		for _, width := range []int{4, 8} {
			run := func() []int64 {
				h := newHier(width, mode)
				state := uint64(12345)
				next := func(n uint64) uint64 {
					state = state*6364136223846793005 + 1442695040888963407
					return state % n
				}
				var results []int64
				cycle := int64(0)
				for i := 0; i < 3000; i++ {
					cycle += int64(next(3))
					addr := 0x1000 + next(1<<16)
					var done int64
					switch next(5) {
					case 0:
						done = h.Store(cycle, addr, 8)
						if done < cycle {
							t.Fatalf("%v/%d: store accepted at %d before request %d", mode, width, done, cycle)
						}
					case 1:
						stride := int64(next(256)) - 64
						done = h.LoadVector(cycle, addr, stride, int(next(16))+1, 2)
						if done <= cycle {
							t.Fatalf("%v/%d: vector load done at %d, requested %d", mode, width, done, cycle)
						}
					case 2:
						done = h.StoreVector(cycle, addr, 8, int(next(16))+1, 2)
						if done < cycle {
							t.Fatalf("%v/%d: vector store accepted early", mode, width)
						}
					default:
						done = h.Load(cycle, addr, 8)
						if done <= cycle {
							t.Fatalf("%v/%d: load done at %d, requested %d", mode, width, done, cycle)
						}
					}
					results = append(results, done)
				}
				// The counter identities must hold for any access mix.
				st := h.Stats()
				if st.L1Hits+st.L1Misses != st.L1Lookups {
					t.Fatalf("%v/%d: L1 %d+%d != %d lookups", mode, width, st.L1Hits, st.L1Misses, st.L1Lookups)
				}
				if st.L2Hits+st.L2Misses != st.L2Lookups {
					t.Fatalf("%v/%d: L2 %d+%d != %d lookups", mode, width, st.L2Hits, st.L2Misses, st.L2Lookups)
				}
				if st.L1StoreHits > st.L1Hits || st.L1StoreMisses > st.L1Misses {
					t.Fatalf("%v/%d: store components exceed totals: %+v", mode, width, st)
				}
				if st.WriteBufDrains > st.Stores+st.VecElems {
					t.Fatalf("%v/%d: %d drains exceed %d store elements", mode, width, st.WriteBufDrains, st.Stores+st.VecElems)
				}
				return results
			}
			a, b := run(), run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v/%d: non-deterministic at access %d: %d vs %d", mode, width, i, a[i], b[i])
				}
			}
		}
	}
}
