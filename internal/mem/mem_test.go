package mem

import "testing"

func TestPerfectLatency(t *testing.T) {
	p := NewPerfect(1)
	if done := p.Load(100, 0x1000, 8); done != 101 {
		t.Errorf("load done at %d, want 101", done)
	}
	p50 := NewPerfect(50)
	if done := p50.Load(100, 0x1000, 8); done != 150 {
		t.Errorf("load done at %d, want 150", done)
	}
	// Vector: 16 elements at rate 2 -> last address at +7, data at +7+lat.
	if done := p50.LoadVector(100, 0x1000, 8, 16, 2); done != 100+7+50 {
		t.Errorf("vector load done at %d, want %d", done, 157)
	}
}

func newHier(w int, mode VectorMode) *Hierarchy {
	return NewHierarchy(HierConfig{Width: w, Mode: mode})
}

func TestL1HitMissLatency(t *testing.T) {
	h := newHier(4, ModeConventional)
	first := h.Load(0, 0x2000, 8)
	if first <= 1 {
		t.Errorf("cold miss served too fast: %d", first)
	}
	second := h.Load(first, 0x2000, 8)
	if second != first+1 {
		t.Errorf("L1 hit latency: got %d cycles", second-first)
	}
	st := h.Stats()
	if st.L1Misses != 1 || st.L1Hits != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestL1LineGranularity(t *testing.T) {
	h := newHier(4, ModeConventional)
	h.Load(0, 0x2000, 8)
	// Same 32-byte line: hit. Next line: miss.
	d := h.Load(1000, 0x2010, 8)
	if d != 1001 {
		t.Errorf("same-line access should hit: %d", d-1000)
	}
	h.Load(2000, 0x2020, 8)
	st := h.Stats()
	if st.L1Misses != 2 {
		t.Errorf("expected 2 misses, got %d", st.L1Misses)
	}
}

func TestL2FasterThanDRAM(t *testing.T) {
	h := newHier(4, ModeConventional)
	cold := h.Load(0, 0x4000, 8) // misses L1+L2, goes to DRAM
	// Evict from L1 (direct-mapped, 32KB): same set, different tag.
	h.Load(cold, 0x4000+32<<10, 8)
	warm := h.Load(10_000, 0x4000, 8) // misses L1, hits L2
	if warm-10_000 >= cold {
		t.Errorf("L2 hit (%d) not faster than DRAM (%d)", warm-10_000, cold)
	}
}

func TestWriteBufferAbsorbsStores(t *testing.T) {
	h := newHier(4, ModeConventional)
	// A few stores to distinct lines are accepted immediately.
	for i := 0; i < 4; i++ {
		if acc := h.Store(int64(i), uint64(0x8000+i*128), 8); acc != int64(i) {
			t.Errorf("store %d delayed to %d", i, acc)
		}
	}
	// A long burst must eventually stall on the 8-deep buffer.
	stalled := false
	for i := 0; i < 64; i++ {
		if acc := h.Store(100, uint64(0x10000+i*128), 8); acc > 100 {
			stalled = true
			break
		}
	}
	if !stalled {
		t.Error("write buffer never back-pressured a store burst")
	}
}

func TestStoreCoalescing(t *testing.T) {
	h := newHier(4, ModeConventional)
	h.Store(0, 0x9000, 8)
	before := h.Stats().L2Hits + h.Stats().L2Misses
	h.Store(1, 0x9008, 8) // same L2 line, still in flight -> coalesced
	after := h.Stats().L2Hits + h.Stats().L2Misses
	if after != before {
		t.Error("same-line store was not coalesced")
	}
}

func TestUnalignedSplit(t *testing.T) {
	h := newHier(4, ModeConventional)
	h.Load(0, 0x201e, 8) // crosses a 32-byte line
	if h.Stats().Unaligned != 1 {
		t.Errorf("unaligned count %d, want 1", h.Stats().Unaligned)
	}
}

func TestMultiAddressVectorUsesL1(t *testing.T) {
	h := newHier(4, ModeMultiAddress)
	h.LoadVector(0, 0x3000, 64, 16, 2)
	st := h.Stats()
	if st.VecLoads != 1 || st.VecElems != 16 {
		t.Errorf("vector stats: %+v", st)
	}
	if st.L1Hits+st.L1Misses < 16 {
		t.Errorf("multi-address must probe L1 per element: %d probes", st.L1Hits+st.L1Misses)
	}
	if !h.VectorReservesAllPorts() {
		t.Error("multi-address must reserve all ports")
	}
}

func TestVectorCacheLinePairs(t *testing.T) {
	h := newHier(4, ModeVectorCache)
	// Stride-8 (contiguous) 16-element access = 128 bytes: one aligned
	// line pair.
	h.LoadVector(0, 0x4000, 8, 16, 2)
	st := h.Stats()
	if st.LineAccesses != 1 {
		t.Errorf("contiguous access took %d line-pair accesses, want 1", st.LineAccesses)
	}
	if st.L1Hits+st.L1Misses != 0 {
		t.Error("vector cache must bypass L1")
	}
	if h.VectorReservesAllPorts() {
		t.Error("vector cache should not reserve the CPU ports")
	}
	// A large stride defeats the line pairing (the mpeg2encode effect).
	h2 := newHier(4, ModeVectorCache)
	h2.LoadVector(0, 0x4000, 512, 16, 2)
	if h2.Stats().LineAccesses < 8 {
		t.Errorf("large-stride access should need many line pairs, got %d", h2.Stats().LineAccesses)
	}
}

func TestCollapsingGathersBetterOnNegativeStride(t *testing.T) {
	// Descending addresses within a window: both consume them, but the
	// collapsing buffer must never need more accesses than the vector
	// cache.
	for _, stride := range []int64{-2, -64, 48, 96} {
		vc := newHier(4, ModeVectorCache)
		cb := newHier(4, ModeCollapsing)
		vc.LoadVector(0, 0x8000, stride, 16, 2)
		cb.LoadVector(0, 0x8000, stride, 16, 2)
		if cb.Stats().LineAccesses > vc.Stats().LineAccesses {
			t.Errorf("stride %d: collapsing %d accesses > vector %d",
				stride, cb.Stats().LineAccesses, vc.Stats().LineAccesses)
		}
	}
}

func TestVectorStoreInvalidatesL1(t *testing.T) {
	h := newHier(4, ModeVectorCache)
	h.Load(0, 0x5000, 8) // bring the line into L1
	if h.Stats().L1Misses != 1 {
		t.Fatal("expected one cold miss")
	}
	h.StoreVector(100, 0x5000, 8, 16, 2) // MOM store overlapping the line
	d := h.Load(1000, 0x5000, 8)
	if d == 1001 {
		t.Error("stale L1 line survived a vector store (coherence violation)")
	}
}

func TestBankConflicts(t *testing.T) {
	h := newHier(4, ModeConventional)
	// Two simultaneous accesses to lines in the same bank (4 banks,
	// bank = line index % 4 -> addresses 128 bytes apart share a bank).
	h.Load(10, 0x2000, 8)
	h.Load(10, 0x2000+128, 8)
	if h.Stats().BankConflicts == 0 {
		t.Error("same-cycle same-bank accesses should conflict")
	}
}

func TestResetClearsState(t *testing.T) {
	h := newHier(4, ModeConventional)
	h.Load(0, 0x2000, 8)
	h.Reset()
	if h.Stats() != (Stats{}) {
		t.Error("Reset did not clear stats")
	}
	if d := h.Load(0, 0x2000, 8); d <= 1 {
		t.Error("Reset did not clear cache contents")
	}
}

func TestDRAMBankAndChannelContention(t *testing.T) {
	d := newDRAM()
	first := d.access(0, 0)
	second := d.access(0, 0) // same bank, same cycle
	if second <= first {
		t.Error("same-bank DRAM accesses must serialise")
	}
	d2 := newDRAM()
	a := d2.access(0, 0)
	b := d2.access(0, 1<<13) // different bank, channel still shared
	if b <= a-d2.latency+d2.chanOcc-1 {
		t.Log("channel occupancy serialisation weak (acceptable)")
	}
}

// TestHierarchyRandomisedInvariants drives every model with a pseudo-random
// access mix and checks basic sanity: completions never precede requests,
// and replaying the same sequence is deterministic.
func TestHierarchyRandomisedInvariants(t *testing.T) {
	modes := []VectorMode{ModeConventional, ModeMultiAddress, ModeVectorCache, ModeCollapsing}
	for _, mode := range modes {
		for _, width := range []int{4, 8} {
			run := func() []int64 {
				h := newHier(width, mode)
				state := uint64(12345)
				next := func(n uint64) uint64 {
					state = state*6364136223846793005 + 1442695040888963407
					return state % n
				}
				var results []int64
				cycle := int64(0)
				for i := 0; i < 3000; i++ {
					cycle += int64(next(3))
					addr := 0x1000 + next(1<<16)
					var done int64
					switch next(5) {
					case 0:
						done = h.Store(cycle, addr, 8)
						if done < cycle {
							t.Fatalf("%v/%d: store accepted at %d before request %d", mode, width, done, cycle)
						}
					case 1:
						stride := int64(next(256)) - 64
						done = h.LoadVector(cycle, addr, stride, int(next(16))+1, 2)
						if done <= cycle {
							t.Fatalf("%v/%d: vector load done at %d, requested %d", mode, width, done, cycle)
						}
					case 2:
						done = h.StoreVector(cycle, addr, 8, int(next(16))+1, 2)
						if done < cycle {
							t.Fatalf("%v/%d: vector store accepted early", mode, width)
						}
					default:
						done = h.Load(cycle, addr, 8)
						if done <= cycle {
							t.Fatalf("%v/%d: load done at %d, requested %d", mode, width, done, cycle)
						}
					}
					results = append(results, done)
				}
				return results
			}
			a, b := run(), run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v/%d: non-deterministic at access %d: %d vs %d", mode, width, i, a[i], b[i])
				}
			}
		}
	}
}
