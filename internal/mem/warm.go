package mem

// Warmer is the functional-warming interface for sampled simulation: a
// warm touch replays an access's effect on long-lived state — cache tag
// arrays, LRU order, dirty bits — without charging any timing resource
// (ports, banks, MSHRs, write buffer, DRAM) and without counting any Stats
// event. During fast-forward between detailed windows the sampling
// controller drives every memory reference through these entry points so
// the tag arrays a detailed window inherits look as if the skipped span had
// been simulated in full.
//
// Warming is intentionally order-faithful but contention-blind: two
// accesses that would have been reordered by bank conflicts touch the
// arrays in program order here. Tag state (unlike timing) is insensitive
// to that reordering at L1/L2 granularity, which is what makes the touch
// path cheap.
type Warmer interface {
	// WarmLoad touches the lines a scalar load of size bytes at addr would
	// fetch (including a line-crossing second access).
	WarmLoad(addr uint64, size int)
	// WarmStore touches the line a scalar store probes (write-through
	// no-allocate L1 probe plus the L2 line the write buffer drains into).
	WarmStore(addr uint64, size int)
	// WarmLoadVector touches every line a strided vector load of n 8-byte
	// elements would fetch, following the configured vector organisation.
	WarmLoadVector(base uint64, stride int64, n int)
	// WarmStoreVector is the store counterpart of WarmLoadVector, including
	// the L1 invalidations MOM stores perform on the vector-cache paths.
	WarmStoreVector(base uint64, stride int64, n int)
}

// warm touches one L2 line's tag state: LRU refresh on hit, plain fill on
// miss (the evicted line's writeback is timing-only, so it is dropped).
func (l *level2) warm(addr uint64, store bool) {
	if l.arr.lookup(addr, store) {
		return
	}
	l.arr.fill(addr, store)
}

// warmLoadElem mirrors scalarLoad's state effects: L1 probe, and on a miss
// the L2 touch plus the write-through (never dirty) L1 fill.
func (h *Hierarchy) warmLoadElem(addr uint64) {
	if h.l1.lookup(addr, false) {
		return
	}
	h.l2.warm(addr, false)
	h.l1.fill(addr, false)
}

// warmStoreElem mirrors storeElem's state effects: a no-allocate L1 probe
// (LRU refresh on hit, no fill on miss) and the dirty L2 touch the write
// buffer would eventually perform.
func (h *Hierarchy) warmStoreElem(addr uint64) {
	h.l1.lookup(addr, false)
	h.l2.warm(addr, true)
}

// WarmLoad implements Warmer.
func (h *Hierarchy) WarmLoad(addr uint64, size int) {
	h.warmLoadElem(addr)
	if (addr&(h.l1LineSz-1))+uint64(size) > h.l1LineSz {
		h.warmLoadElem(addr + uint64(size))
	}
}

// WarmStore implements Warmer.
func (h *Hierarchy) WarmStore(addr uint64, size int) {
	h.warmStoreElem(addr)
}

// WarmLoadVector implements Warmer.
func (h *Hierarchy) WarmLoadVector(base uint64, stride int64, n int) {
	switch h.cfg.Mode {
	case ModeVectorCache, ModeCollapsing:
		h.warmVC(base, stride, n, false)
	default:
		for k := 0; k < n; k++ {
			addr := base + uint64(int64(k)*stride)
			h.warmLoadElem(addr)
			if (addr&(h.l1LineSz-1))+8 > h.l1LineSz {
				h.warmLoadElem(addr + 8)
			}
		}
	}
}

// WarmStoreVector implements Warmer.
func (h *Hierarchy) WarmStoreVector(base uint64, stride int64, n int) {
	switch h.cfg.Mode {
	case ModeVectorCache, ModeCollapsing:
		h.warmVC(base, stride, n, true)
	default:
		for k := 0; k < n; k++ {
			h.warmStoreElem(base + uint64(int64(k)*stride))
		}
	}
}

// warmVC touches the aligned L2 line-pair windows a vector-cache or
// collapsing-buffer access walks, deduplicating consecutive elements in the
// same window, and performs the store-side L1 invalidations (inclusion
// coherence), including the extra line a pair-spilling element reaches.
func (h *Hierarchy) warmVC(base uint64, stride int64, n int, store bool) {
	pairSz := 2 * h.l2LineSz
	prevWin := ^uint64(0)
	for k := 0; k < n; k++ {
		a := base + uint64(int64(k)*stride)
		win := a &^ (pairSz - 1)
		if win != prevWin {
			h.l2.warm(win, store)
			h.l2.warm(win+h.l2LineSz, store)
			prevWin = win
		}
		if store {
			h.l1.invalidate(a)
		}
		if a+8 > win+pairSz {
			h.l2.warm(win+pairSz, store)
			if store {
				h.l1.invalidate(win + pairSz)
			}
		}
	}
}

// Perfect has no long-lived state: warming is a no-op, declared so sampled
// kernel runs can use the same controller path as hierarchy runs.

// WarmLoad implements Warmer.
func (p *Perfect) WarmLoad(addr uint64, size int) {}

// WarmStore implements Warmer.
func (p *Perfect) WarmStore(addr uint64, size int) {}

// WarmLoadVector implements Warmer.
func (p *Perfect) WarmLoadVector(base uint64, stride int64, n int) {}

// WarmStoreVector implements Warmer.
func (p *Perfect) WarmStoreVector(base uint64, stride int64, n int) {}
