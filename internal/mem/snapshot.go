package mem

// Checkpoint support for parallel sampled simulation. A worker replaying a
// detailed window needs a private memory-model instance whose tag arrays
// look exactly as functional warming left them at the window's period
// boundary. Only the long-lived state is captured: tags, valid/dirty bits,
// LRU order and the LRU tick. Timing resources (ports, banks, MSHRs, write
// buffer, DRAM cursors) are deliberately NOT captured — each window
// re-anchors its cycle base on fresh resource state, exactly as the serial
// sampled loop leaves drained cursors behind after a long skip span.

// CacheSnap is a sparse snapshot of one tag array: only the valid lines are
// recorded (slot index, tag, dirty bit, LRU stamp) plus the global LRU
// tick. Invalid slots carry no observable state — fill prefers the first
// invalid way and lookup/invalidate skip invalid entries — so restoring the
// valid lines into a fresh array reproduces the source array's behaviour
// exactly while keeping checkpoints proportional to the working set, not
// the cache capacity.
type CacheSnap struct {
	Idx     []int32 // slot index (set*ways+way) of each valid line
	Tags    []uint64
	Dirty   []bool
	LastUse []int64
	Tick    int64
}

// snapshot captures the array's valid lines.
func (c *cacheArr) snapshot() CacheSnap {
	var s CacheSnap
	s.Tick = c.tick
	for i, v := range c.valid {
		if !v {
			continue
		}
		s.Idx = append(s.Idx, int32(i))
		s.Tags = append(s.Tags, c.tags[i])
		s.Dirty = append(s.Dirty, c.dirty[i])
		s.LastUse = append(s.LastUse, c.lastUse[i])
	}
	return s
}

// restore writes a snapshot into a fresh (all-invalid) array; the caller
// guarantees freshness, so no reset pass is needed.
func (c *cacheArr) restore(s CacheSnap) {
	for k, i := range s.Idx {
		c.tags[i] = s.Tags[k]
		c.valid[i] = true
		c.dirty[i] = s.Dirty[k]
		c.lastUse[i] = s.LastUse[k]
	}
	c.tick = s.Tick
}

// bytes is the approximate in-memory size of the snapshot.
func (s *CacheSnap) bytes() int64 {
	return int64(len(s.Idx))*(4+8+1+8) + 8
}

// TagSnapshot is the complete long-lived state of a memory model at a
// checkpoint. A nil *TagSnapshot is valid and means "no long-lived state"
// (the Perfect model).
type TagSnapshot struct {
	L1, L2 CacheSnap
}

// Bytes returns the approximate in-memory size of the snapshot.
func (t *TagSnapshot) Bytes() int64 {
	if t == nil {
		return 0
	}
	return t.L1.bytes() + t.L2.bytes()
}

// Snapshotter is implemented by memory models whose long-lived state can be
// captured at a checkpoint and cloned into fresh, independent instances —
// the contract the parallel sampled path needs to hand each interval worker
// a private memory system. Both detailed hierarchies and the stateless
// Perfect model implement it.
type Snapshotter interface {
	Warmer
	// SnapshotTags captures the model's long-lived state (nil when the
	// model has none).
	SnapshotTags() *TagSnapshot
	// NewFromSnapshot returns a fresh Model with the receiver's
	// configuration and the snapshot's tag state, sharing no mutable state
	// with the receiver or any other clone.
	NewFromSnapshot(snap *TagSnapshot) Model
}

// SnapshotTags implements Snapshotter: both cache levels' tag arrays.
func (h *Hierarchy) SnapshotTags() *TagSnapshot {
	return &TagSnapshot{L1: h.l1.snapshot(), L2: h.l2.arr.snapshot()}
}

// NewFromSnapshot implements Snapshotter for all four hierarchy modes: a
// fresh hierarchy of the same configuration (zeroed timing resources and
// statistics) with the snapshot's tag state.
func (h *Hierarchy) NewFromSnapshot(snap *TagSnapshot) Model {
	nh := NewHierarchy(h.cfg)
	if snap != nil {
		nh.l1.restore(snap.L1)
		nh.l2.arr.restore(snap.L2)
	}
	return nh
}

// SnapshotTags implements Snapshotter: Perfect has no long-lived state.
func (p *Perfect) SnapshotTags() *TagSnapshot { return nil }

// NewFromSnapshot implements Snapshotter.
func (p *Perfect) NewFromSnapshot(snap *TagSnapshot) Model {
	return &Perfect{Latency: p.Latency}
}
