// Package mem implements the memory-system timing models: an idealised
// fixed-latency memory (used for the kernel-level study, Figure 5 and the
// latency-tolerance experiment) and the detailed two-level hierarchy of the
// full-application study (Section 4.2), including the three MOM-specific
// cache organisations: multi-address cache, vector cache and collapsing
// buffer cache (Figure 6 / Table 3).
package mem

// Model is the timing interface the CPU core uses. All methods take and
// return absolute cycle numbers. Models are single-core and not safe for
// concurrent use (like the simulated hardware, there is one of them).
type Model interface {
	Name() string
	// Reset clears all cache state and statistics.
	Reset()
	// Load returns the cycle at which the loaded data is available.
	Load(cycle int64, addr uint64, size int) int64
	// Store returns the cycle at which the store is accepted (write buffer
	// occupancy may push this later; commit stalls until acceptance).
	Store(cycle int64, addr uint64, size int) int64
	// LoadVector times a MOM vector load of n 8-byte elements with the given
	// byte stride. rate is the maximum number of elements the processor can
	// supply addresses for per cycle (memory ports x lanes). It returns the
	// cycle at which the last element is available.
	LoadVector(cycle int64, base uint64, stride int64, n, rate int) int64
	// StoreVector times a MOM vector store; returns acceptance of the last
	// element.
	StoreVector(cycle int64, base uint64, stride int64, n, rate int) int64
	// VectorReservesAllPorts reports whether a MOM memory instruction
	// occupies every CPU memory-issue port while it streams (true for the
	// multi-address organisation, which decouples one access across all
	// ports) or just the port it issued on (vector/collapsing caches, which
	// move whole lines on the L2 side).
	VectorReservesAllPorts() bool
	Stats() Stats
}

// Stats aggregates memory-system event counts.
type Stats struct {
	Loads, Stores       uint64
	VecLoads, VecStores uint64
	VecElems            uint64
	L1Hits, L1Misses    uint64
	L2Hits, L2Misses    uint64
	LineAccesses        uint64 // vector-cache line(-pair) accesses
	BankConflicts       uint64
	WriteBufStalls      uint64
	Unaligned           uint64
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.VecLoads += o.VecLoads
	s.VecStores += o.VecStores
	s.VecElems += o.VecElems
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.L2Hits += o.L2Hits
	s.L2Misses += o.L2Misses
	s.LineAccesses += o.LineAccesses
	s.BankConflicts += o.BankConflicts
	s.WriteBufStalls += o.WriteBufStalls
	s.Unaligned += o.Unaligned
}
