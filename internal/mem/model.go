// Package mem implements the memory-system timing models: an idealised
// fixed-latency memory (used for the kernel-level study, Figure 5 and the
// latency-tolerance experiment) and the detailed two-level hierarchy of the
// full-application study (Section 4.2), including the three MOM-specific
// cache organisations: multi-address cache, vector cache and collapsing
// buffer cache (Figure 6 / Table 3).
package mem

// Model is the timing interface the CPU core uses. All methods take and
// return absolute cycle numbers. Models are single-core and not safe for
// concurrent use (like the simulated hardware, there is one of them).
type Model interface {
	Name() string
	// Reset clears all cache state and statistics.
	Reset()
	// Load returns the cycle at which the loaded data is available.
	Load(cycle int64, addr uint64, size int) int64
	// Store returns the cycle at which the store is accepted (write buffer
	// occupancy may push this later; commit stalls until acceptance).
	Store(cycle int64, addr uint64, size int) int64
	// LoadVector times a MOM vector load of n 8-byte elements with the given
	// byte stride. rate is the maximum number of elements the processor can
	// supply addresses for per cycle (memory ports x lanes). It returns the
	// cycle at which the last element is available.
	LoadVector(cycle int64, base uint64, stride int64, n, rate int) int64
	// StoreVector times a MOM vector store; returns acceptance of the last
	// element.
	StoreVector(cycle int64, base uint64, stride int64, n, rate int) int64
	// VectorReservesAllPorts reports whether a MOM memory instruction
	// occupies every CPU memory-issue port while it streams (true for the
	// multi-address organisation, which decouples one access across all
	// ports) or just the port it issued on (vector/collapsing caches, which
	// move whole lines on the L2 side).
	VectorReservesAllPorts() bool
	Stats() Stats
}

// Stats aggregates memory-system event counts. Counter invariants (checked
// by the test suites, cheap enough to assert after any run):
//
//	L1Hits + L1Misses == L1Lookups   (loads, stores and vector elements)
//	L2Hits + L2Misses == L2Lookups
//	L1StoreHits + L1StoreMisses <= L1Lookups
//
// Event counters never feed back into timing: two models that report
// different statistics for the same access sequence are a bug, but fixing a
// counter must never move a cycle.
type Stats struct {
	Loads, Stores       uint64
	VecLoads, VecStores uint64
	VecElems            uint64

	L1Lookups        uint64 // every L1 tag probe (loads, stores, vector elements)
	L1Hits, L1Misses uint64
	// Store components of the L1 probes above. L1 is write-through
	// no-allocate: a store miss is counted but never fills the line.
	L1StoreHits, L1StoreMisses uint64
	L1VecInvals                uint64 // L1 lines invalidated by MOM stores (inclusion coherence)

	L2Lookups        uint64
	L2Hits, L2Misses uint64

	LineAccesses   uint64 // vector-cache line(-pair) accesses
	BankConflicts  uint64
	MSHRStalls     uint64 // accesses delayed because every MSHR was in flight
	WriteBufStalls uint64
	WriteBufDrains uint64 // write-buffer entries drained into L2 (non-coalesced stores)
	DRAMChanBusy   uint64 // cycles requests waited for the Rambus channel
	DRAMBankBusy   uint64 // cycles requests waited for a busy DRAM bank
	Unaligned      uint64
}

// Outcome summarises the memory-system events one dynamic instruction's
// accesses triggered, for the instruction-level observability layer: the
// CPU core snapshots Stats around an access and Diff extracts the delta.
// Like the counters it derives from, an Outcome never feeds back into
// timing.
type Outcome struct {
	L1Hits, L1Misses           uint64
	L2Hits, L2Misses           uint64
	MSHRStalls, WriteBufStalls uint64
}

// Diff returns the per-access outcome between two Stats snapshots.
func Diff(before, after Stats) Outcome {
	return Outcome{
		L1Hits:         after.L1Hits - before.L1Hits,
		L1Misses:       after.L1Misses - before.L1Misses,
		L2Hits:         after.L2Hits - before.L2Hits,
		L2Misses:       after.L2Misses - before.L2Misses,
		MSHRStalls:     after.MSHRStalls - before.MSHRStalls,
		WriteBufStalls: after.WriteBufStalls - before.WriteBufStalls,
	}
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.VecLoads += o.VecLoads
	s.VecStores += o.VecStores
	s.VecElems += o.VecElems
	s.L1Lookups += o.L1Lookups
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.L1StoreHits += o.L1StoreHits
	s.L1StoreMisses += o.L1StoreMisses
	s.L1VecInvals += o.L1VecInvals
	s.L2Lookups += o.L2Lookups
	s.L2Hits += o.L2Hits
	s.L2Misses += o.L2Misses
	s.LineAccesses += o.LineAccesses
	s.BankConflicts += o.BankConflicts
	s.MSHRStalls += o.MSHRStalls
	s.WriteBufStalls += o.WriteBufStalls
	s.WriteBufDrains += o.WriteBufDrains
	s.DRAMChanBusy += o.DRAMChanBusy
	s.DRAMBankBusy += o.DRAMBankBusy
	s.Unaligned += o.Unaligned
}
