package mem

// cacheArr is a set-associative tag array with LRU replacement.
type cacheArr struct {
	sets, ways int
	lineBits   uint
	tags       []uint64
	valid      []bool
	dirty      []bool
	lastUse    []int64
	tick       int64
}

func newCacheArr(sizeBytes, lineBytes, ways int) *cacheArr {
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	sets := sizeBytes / lineBytes / ways
	if sets < 1 || sets&(sets-1) != 0 {
		panic("mem: cache sets must be a positive power of two")
	}
	n := sets * ways
	return &cacheArr{
		sets: sets, ways: ways, lineBits: lineBits,
		tags:    make([]uint64, n),
		valid:   make([]bool, n),
		dirty:   make([]bool, n),
		lastUse: make([]int64, n),
	}
}

func (c *cacheArr) line(addr uint64) uint64 { return addr >> c.lineBits }

func (c *cacheArr) index(addr uint64) (set int, tag uint64) {
	l := c.line(addr)
	return int(l % uint64(c.sets)), l / uint64(c.sets)
}

// lookup probes the array; on hit it refreshes LRU and returns the way.
func (c *cacheArr) lookup(addr uint64, markDirty bool) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.tick++
			c.lastUse[base+w] = c.tick
			if markDirty {
				c.dirty[base+w] = true
			}
			return true
		}
	}
	return false
}

// fill inserts the line for addr, returning the evicted line address and
// whether it was dirty (valid eviction only when wasValid).
func (c *cacheArr) fill(addr uint64, dirty bool) (evicted uint64, wasDirty, wasValid bool) {
	set, tag := c.index(addr)
	base := set * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.lastUse[base+w] < c.lastUse[victim] {
			victim = base + w
		}
	}
	if c.valid[victim] {
		oldLine := c.tags[victim]*uint64(c.sets) + uint64(set)
		evicted = oldLine << c.lineBits
		wasDirty = c.dirty[victim]
		wasValid = true
	}
	c.tick++
	c.tags[victim] = tag
	c.valid[victim] = true
	c.dirty[victim] = dirty
	c.lastUse[victim] = c.tick
	return
}

// invalidate drops the line containing addr if present, reporting whether a
// valid copy was actually removed.
func (c *cacheArr) invalidate(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	dropped := false
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.valid[base+w] = false
			c.dirty[base+w] = false
			dropped = true
		}
	}
	return dropped
}

func (c *cacheArr) reset() {
	clear(c.valid)
	clear(c.dirty)
	clear(c.lastUse)
	c.tick = 0
}

// resource models a small pool of slots each busy until a given cycle
// (MSHRs, write-buffer entries).
type resource struct {
	busy []int64
}

func newResource(n int) *resource { return &resource{busy: make([]int64, n)} }

// take reserves the earliest-free slot from cycle t, busy until done is
// later stored by the caller via set. It returns the slot index and the
// earliest start cycle.
func (r *resource) take(t int64) (slot int, start int64) {
	best, bb := 0, r.busy[0]
	for i, b := range r.busy {
		if b < bb {
			bb, best = b, i
		}
	}
	if bb > t {
		t = bb
	}
	return best, t
}

func (r *resource) set(slot int, until int64) { r.busy[slot] = until }

func (r *resource) reset() {
	for i := range r.busy {
		r.busy[i] = 0
	}
}
