package regfile

import "testing"

func TestTable2Ratios(t *testing.T) {
	rows := Table2()
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	if rows[0].NormalizedArea != 1.0 {
		t.Errorf("MMX must normalise to 1, got %f", rows[0].NormalizedArea)
	}
	// Paper: MDMX ~1.19, MOM ~0.87.
	if a := rows[1].NormalizedArea; a < 1.10 || a > 1.30 {
		t.Errorf("MDMX area %f outside [1.10, 1.30]", a)
	}
	if a := rows[2].NormalizedArea; a < 0.75 || a > 1.00 {
		t.Errorf("MOM area %f outside [0.75, 1.00]", a)
	}
}

func TestTable2Sizes(t *testing.T) {
	rows := Table2()
	// Paper: 0.5K, 0.78K, 2.6K.
	if rows[0].SizeBytes != 512 {
		t.Errorf("MMX size %d, want 512", rows[0].SizeBytes)
	}
	if rows[1].SizeBytes != 800 {
		t.Errorf("MDMX size %d, want 800 (0.78K)", rows[1].SizeBytes)
	}
	if rows[2].SizeBytes != 2656 {
		t.Errorf("MOM size %d, want 2656 (2.6K)", rows[2].SizeBytes)
	}
	// MOM's file is about 5x MMX's.
	if r := float64(rows[2].SizeBytes) / float64(rows[0].SizeBytes); r < 4.5 || r > 5.5 {
		t.Errorf("MOM/MMX size ratio %f, want ~5", r)
	}
}

// TestNormalizedArea: the exported per-ISA lookup agrees with the Table 2
// rows (it is the sweep engine's source for the area axis of its Pareto
// reports), Alpha has no multimedia file, and unknown names miss.
func TestNormalizedArea(t *testing.T) {
	rows := Table2()
	for i, isa := range []string{"MMX", "MDMX", "MOM"} {
		a, ok := NormalizedArea(isa)
		if !ok {
			t.Fatalf("NormalizedArea(%q) missed", isa)
		}
		if a != rows[i].NormalizedArea {
			t.Errorf("NormalizedArea(%q) = %f, want Table 2's %f", isa, a, rows[i].NormalizedArea)
		}
	}
	if a, ok := NormalizedArea("Alpha"); !ok || a != 0 {
		t.Errorf("NormalizedArea(Alpha) = %f, %v; want 0, true", a, ok)
	}
	if _, ok := NormalizedArea("SSE"); ok {
		t.Error("NormalizedArea accepted an unknown ISA")
	}
}

func TestPortScalingDominatesArea(t *testing.T) {
	m := DefaultModel
	narrow := Config{Regs: 64, BitsPer: 64, ReadPorts: 2, WrPorts: 1, Banks: 1}
	wide := narrow
	wide.ReadPorts, wide.WrPorts = 6, 3
	if m.Area(wide) < 3*m.Area(narrow) {
		t.Errorf("tripling ports should grow area superlinearly: %f vs %f",
			m.Area(wide), m.Area(narrow))
	}
}

func TestBankingTradeoff(t *testing.T) {
	m := DefaultModel
	// Same storage: one heavily-ported monolith vs 8 lightly-ported banks.
	mono := Config{Regs: 20, BitsPer: 1024, ReadPorts: 6, WrPorts: 3, Banks: 1}
	banked := Config{Regs: 20, BitsPer: 1024, ReadPorts: 2, WrPorts: 1, Banks: 8}
	if m.Area(banked) >= m.Area(mono) {
		t.Errorf("banking with fewer ports should save area: %f vs %f",
			m.Area(banked), m.Area(mono))
	}
	// But banking a tiny file is not free (per-bank overhead).
	tinyMono := Config{Regs: 4, BitsPer: 192, ReadPorts: 2, WrPorts: 1, Banks: 1}
	tinyBanked := tinyMono
	tinyBanked.Banks = 8
	if m.Area(tinyBanked) <= m.Area(tinyMono) {
		t.Error("banking a tiny file should cost overhead")
	}
}
