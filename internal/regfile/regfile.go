// Package regfile implements the register-file area model used to
// reproduce Table 2 of the paper: although the MOM matrix register file
// holds about five times the bits of the MMX file, interleaving the
// elements of every matrix register across banks lets each bank make do
// with far fewer ports, so the estimated area is of the same order.
//
// The model follows the standard port-dominated cell-growth law (as in
// López et al., which the paper cites): the area of one storage cell grows
// with the square of the port count, because every read port adds a
// wordline and every write port adds a wordline and a bitline pair:
//
//	cellArea(r, w) = (r + w + overhead) * (r + 2*w + overhead)
//
// A banked file pays a per-bank fixed overhead (decoders, sense amps and
// the inter-bank interconnect/crossbar).
package regfile

// Config describes one register file.
type Config struct {
	Name      string
	Regs      int // physical registers
	BitsPer   int // bits per register
	ReadPorts int
	WrPorts   int
	Banks     int // interleaving banks (1 = monolithic)
}

// Model carries the calibration constants of the area model.
type Model struct {
	// CellOverhead models the port-independent part of a cell (supply
	// rails, device area).
	CellOverhead float64
	// BankOverhead is the fixed per-bank cost, expressed in equivalent
	// cell-area units, covering decoders and the crossbar that routes
	// lanes to banks.
	BankOverhead float64
}

// DefaultModel is calibrated so the Table 2 ratios come out as published
// (MMX 1.0, MDMX ~1.19, MOM ~0.87 on the 4-way machine).
var DefaultModel = Model{CellOverhead: 1.0, BankOverhead: 5000}

// Area returns the estimated area of the file in arbitrary units.
func (m Model) Area(c Config) float64 {
	banks := c.Banks
	if banks < 1 {
		banks = 1
	}
	bitsPerBank := float64(c.Regs*c.BitsPer) / float64(banks)
	r, w := float64(c.ReadPorts), float64(c.WrPorts)
	cell := (r + w + m.CellOverhead) * (r + 2*w + m.CellOverhead)
	area := float64(banks) * bitsPerBank * cell
	if banks > 1 {
		area += float64(banks) * m.BankOverhead
	}
	return area
}

// SizeBytes returns the raw storage of the file.
func SizeBytes(c Config) int { return c.Regs * c.BitsPer / 8 }

// Table2Entry is one row of the reproduced table.
type Table2Entry struct {
	ISA            string
	MediaRegs      string // log/phys
	AccRegs        string
	MediaPorts     string // rd/wr
	AccPorts       string
	SizeBytes      int
	NormalizedArea float64
}

// The Table 2 register-file configurations of the 4-way machine: MMX
// needs a 6r/3w monolithic 64x64b file; MDMX adds a 4r/2w accumulator
// file; MOM interleaves 20 matrix registers across 8 banks of 2r/1w each
// (plus a small accumulator file). Shared by Table2 and NormalizedArea so
// the report rows of the design-space sweep engine cite exactly the
// published area model.
var (
	mmxMedia  = Config{Name: "MMX media", Regs: 64, BitsPer: 64, ReadPorts: 6, WrPorts: 3, Banks: 1}
	mdmxMedia = Config{Name: "MDMX media", Regs: 52, BitsPer: 64, ReadPorts: 6, WrPorts: 3, Banks: 1}
	mdmxAcc   = Config{Name: "MDMX acc", Regs: 16, BitsPer: 192, ReadPorts: 4, WrPorts: 2, Banks: 1}
	momMedia  = Config{Name: "MOM media", Regs: 20, BitsPer: 16 * 64, ReadPorts: 2, WrPorts: 1, Banks: 8}
	momAcc    = Config{Name: "MOM acc", Regs: 4, BitsPer: 192, ReadPorts: 2, WrPorts: 1, Banks: 1}
)

// NormalizedArea returns the estimated multimedia register-file area of
// one ISA level, normalised to the MMX file (the Table 2 convention:
// MMX 1.0, MDMX ~1.19, MOM ~0.87). Alpha carries no multimedia file, so
// its area is 0. The second return is false for names outside the four
// ISA levels; the canonical spellings of mom.ISA.String() are expected
// ("Alpha", "MMX", "MDMX", "MOM").
func NormalizedArea(isa string) (float64, bool) {
	m := DefaultModel
	base := m.Area(mmxMedia)
	switch isa {
	case "Alpha":
		return 0, true
	case "MMX":
		return m.Area(mmxMedia) / base, true
	case "MDMX":
		return (m.Area(mdmxMedia) + m.Area(mdmxAcc)) / base, true
	case "MOM":
		return (m.Area(momMedia) + m.Area(momAcc)) / base, true
	}
	return 0, false
}

// Table2 reproduces the multimedia register file comparison for the 4-way
// machine from the shared configurations above.
func Table2() []Table2Entry {
	m := DefaultModel

	base := m.Area(mmxMedia)
	return []Table2Entry{
		{
			ISA: "MMX", MediaRegs: "32/64", AccRegs: "-",
			MediaPorts: "6/3", AccPorts: "-",
			SizeBytes:      SizeBytes(mmxMedia),
			NormalizedArea: m.Area(mmxMedia) / base,
		},
		{
			ISA: "MDMX", MediaRegs: "32/52", AccRegs: "4/16",
			MediaPorts: "6/3", AccPorts: "4/2",
			SizeBytes:      SizeBytes(mdmxMedia) + SizeBytes(mdmxAcc),
			NormalizedArea: (m.Area(mdmxMedia) + m.Area(mdmxAcc)) / base,
		},
		{
			ISA: "MOM", MediaRegs: "16/20", AccRegs: "2/4",
			MediaPorts: "2/1 (8-b)", AccPorts: "2/1",
			SizeBytes:      SizeBytes(momMedia) + SizeBytes(momAcc),
			NormalizedArea: (m.Area(momMedia) + m.Area(momAcc)) / base,
		},
	}
}
