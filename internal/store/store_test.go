package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func key(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func open(t *testing.T, dir string, max int64) *Store {
	t.Helper()
	s, err := Open(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	val := []byte(`{"schema":1,"experiment":"fig5","rows":[]}` + "\n")
	if _, ok := s.Get(key("a")); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(key("a"), val); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key("a"))
	if !ok || string(got) != string(val) {
		t.Fatalf("got %q ok=%v, want the stored value", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 put / 1 entry", st)
	}
}

func TestInvalidKeyRejected(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if err := s.Put("not-a-hash", []byte("x")); err == nil {
		t.Fatal("Put accepted an invalid key")
	}
	if _, ok := s.Get("../escape"); ok {
		t.Fatal("Get accepted an invalid key")
	}
}

// TestReopenPersists: values survive process restarts, including their
// recency order.
func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if err := s.Put(key("a"), []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key("b"), []byte("beta")); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, 0)
	got, ok := s2.Get(key("a"))
	if !ok || string(got) != "alpha" {
		t.Fatalf("after reopen: got %q ok=%v", got, ok)
	}
	if st := s2.Stats(); st.Entries != 2 {
		t.Fatalf("after reopen: %d entries, want 2", st.Entries)
	}
}

// TestCorruptionIsAMiss: a truncated or tampered file must read as a miss
// (and be dropped), never as an error or a wrong value.
func TestCorruptionIsAMiss(t *testing.T) {
	for _, tc := range []struct {
		name   string
		damage func(path string) error
	}{
		{"truncated", func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, b[:len(b)-3], 0o644)
		}},
		{"flipped-byte", func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			b[len(b)-1] ^= 0xff
			return os.WriteFile(p, b, 0o644)
		}},
		{"emptied", func(p string) error {
			return os.WriteFile(p, nil, 0o644)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, 0)
			k := key("victim")
			if err := s.Put(k, []byte("precious result bytes")); err != nil {
				t.Fatal(err)
			}
			if err := tc.damage(filepath.Join(dir, k[:2], k)); err != nil {
				t.Fatal(err)
			}
			if v, ok := s.Get(k); ok {
				t.Fatalf("corrupt entry served as a hit: %q", v)
			}
			if st := s.Stats(); st.Entries != 0 {
				t.Fatalf("corrupt entry not dropped: %+v", st)
			}
			// The key is writable again afterwards.
			if err := s.Put(k, []byte("fresh")); err != nil {
				t.Fatal(err)
			}
			if v, ok := s.Get(k); !ok || string(v) != "fresh" {
				t.Fatalf("re-put after corruption: got %q ok=%v", v, ok)
			}
		})
	}
}

// TestEvictionOrder: the size bound evicts least-recently-used first, and
// a Get refreshes recency.
func TestEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	// Each entry is header (~77B) + 100B payload; budget fits ~3 entries.
	s := open(t, dir, 560)
	val := make([]byte, 100)
	keys := []string{key("k0"), key("k1"), key("k2")}
	for _, k := range keys {
		if err := s.Put(k, val); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Entries != 3 || st.Evictions != 0 {
		t.Fatalf("setup: %+v, want 3 entries and no evictions", st)
	}
	// Touch k0 so k1 becomes the LRU entry, then overflow.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("k0 missing before overflow")
	}
	if err := s.Put(key("k3"), val); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("after overflow: %+v, want exactly 1 eviction", st)
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("k1 survived: eviction was not least-recently-used")
	}
	for _, k := range []string{keys[0], keys[2], key("k3")} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s evicted out of order", k)
		}
	}
}

// TestOversizedValueEvicted: a single value larger than the whole budget
// is admitted and immediately evicted — the store never exceeds its bound.
func TestOversizedValueEvicted(t *testing.T) {
	s := open(t, t.TempDir(), 64)
	if err := s.Put(key("big"), make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Bytes > 64 || st.Entries != 0 {
		t.Fatalf("budget exceeded: %+v", st)
	}
}

// TestOpenCleansTempFiles: leftovers from an interrupted Put are removed
// and never indexed.
func TestOpenCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(sub, "tmp-12345")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, 0)
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("temp file indexed: %+v", st)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file not cleaned: %v", err)
	}
}

// TestConcurrentAccess hammers one store from many goroutines; the race
// detector owns the assertions.
func TestConcurrentAccess(t *testing.T) {
	s := open(t, t.TempDir(), 2048)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("k%d", (g+i)%16))
				if i%3 == 0 {
					_ = s.Put(k, []byte(fmt.Sprintf("value %d.%d", g, i)))
				} else {
					s.Get(k)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	s.Stats()
}

// TestFill: a peer-sourced write lands like a Put but is counted as a
// fill, and an already-present key is left untouched — content-addressed
// entries cannot go stale, so the first verified value wins.
func TestFill(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	val := []byte(`{"schema":1,"experiment":"fig5","rows":[]}` + "\n")
	if err := s.Fill(key("a"), val); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key("a"))
	if !ok || string(got) != string(val) {
		t.Fatalf("got %q ok=%v, want the filled value", got, ok)
	}
	st := s.Stats()
	if st.Fills != 1 || st.Puts != 0 {
		t.Fatalf("stats %+v, want 1 fill / 0 puts", st)
	}
	// Filling over an existing entry is a no-op, not an overwrite.
	if err := s.Fill(key("a"), []byte("different")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(key("a")); string(got) != string(val) {
		t.Fatalf("second fill overwrote the entry: %q", got)
	}
	if st := s.Stats(); st.Fills != 1 {
		t.Fatalf("no-op fill counted (stats %+v)", st)
	}
	if err := s.Fill("not-a-key", val); err == nil {
		t.Fatal("invalid key accepted")
	}
}

// TestHas probes the index without disturbing counters or recency.
func TestHas(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if s.Has(key("a")) {
		t.Fatal("Has on empty store")
	}
	if s.Has("bogus") {
		t.Fatal("Has accepted an invalid key")
	}
	if err := s.Put(key("a"), []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if !s.Has(key("a")) {
		t.Fatal("Has missed a stored key")
	}
	st := s.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Has touched the hit/miss counters: %+v", st)
	}
}

// TestGetStream streams a payload back byte-identically, counts a hit, and
// treats header damage as a removing miss.
func TestGetStream(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	val := []byte("payload bytes that stream back")
	if _, _, ok := s.GetStream(key("a")); ok {
		t.Fatal("stream hit on empty store")
	}
	if err := s.Put(key("a"), val); err != nil {
		t.Fatal(err)
	}
	rc, n, ok := s.GetStream(key("a"))
	if !ok || n != int64(len(val)) {
		t.Fatalf("GetStream ok=%v n=%d, want %d payload bytes", ok, n, len(val))
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(got) != string(val) {
		t.Fatalf("streamed %q (err=%v), want %q", got, err, val)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss", st)
	}

	// Wreck the header; the stream must miss and drop the entry.
	path := s.path(key("a"))
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.GetStream(key("a")); ok {
		t.Fatal("GetStream served a damaged header")
	}
	if s.Has(key("a")) {
		t.Fatal("damaged entry still indexed")
	}
}

// TestInvalidate lets a streaming consumer reject a payload its own
// verification caught (GetStream does not checksum payloads).
func TestInvalidate(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if err := s.Put(key("a"), []byte("fine")); err != nil {
		t.Fatal(err)
	}
	s.Invalidate(key("a"))
	if s.Has(key("a")) {
		t.Fatal("Invalidate left the entry indexed")
	}
	if _, ok := s.Get(key("a")); ok {
		t.Fatal("Invalidate left the entry readable")
	}
	s.Invalidate(key("a")) // absent key: no-op
	s.Invalidate("bogus")  // invalid key: no-op
}
