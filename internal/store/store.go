// Package store is a disk-backed, content-addressed result store: values
// are byte blobs keyed by a caller-computed SHA-256 (the canonical hash of
// an experiment request — see mom.JobRequest.Key), written atomically and
// bounded by an LRU size budget.
//
// The store is an optimisation, never a source of truth: any damaged,
// truncated or unreadable entry reads as a miss (and is removed), so the
// worst failure mode is recomputing a result. Writes go through a
// temp-file + rename, so a crash can never leave a half-written value
// under a valid key.
package store

import (
	"bufio"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// fileMagic heads every entry file; the trailing 1 is the on-disk format
// version (independent of the value schema, which is part of the key).
const fileMagic = "momstore 1"

// Stats is a snapshot of the store counters.
type Stats struct {
	Hits      uint64 // Get found a valid entry
	Misses    uint64 // Get found nothing (or a corrupt entry)
	Puts      uint64 // values written by local computation
	Fills     uint64 // values written from a peer (Fill)
	Evictions uint64 // entries removed by the LRU bound
	Entries   int    // entries currently held
	Bytes     int64  // on-disk bytes currently held (headers included)
}

type entry struct {
	key  string
	size int64
	elem *list.Element // position in the recency list
}

// Store is a size-bounded content-addressed blob store rooted at one
// directory. It is safe for concurrent use.
type Store struct {
	dir string
	max int64 // payload-byte budget; <= 0 means unbounded

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used
	bytes   int64
	stats   Stats
}

// Open loads (or creates) a store rooted at dir, bounded to maxBytes on
// disk (<= 0 disables the bound). Existing entries are indexed
// without reading their payloads; their LRU order is rebuilt from file
// modification times, which Get refreshes, so recency survives restarts.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		max:     maxBytes,
		entries: map[string]*entry{},
		lru:     list.New(),
	}
	type found struct {
		key   string
		size  int64
		mtime time.Time
	}
	var have []found
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if !validKey(name) {
			if strings.HasPrefix(name, "tmp-") {
				os.Remove(path) // leftover from an interrupted Put
			}
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent eviction; skip
		}
		have = append(have, found{key: name, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	// Oldest first, so the most recently touched entries end up at the
	// front of the LRU list.
	sort.Slice(have, func(i, j int) bool { return have[i].mtime.Before(have[j].mtime) })
	for _, f := range have {
		e := &entry{key: f.key, size: f.size}
		e.elem = s.lru.PushFront(e)
		s.entries[f.key] = e
		s.bytes += f.size
	}
	s.evictLocked()
	return s, nil
}

// validKey reports whether key is a lowercase hex SHA-256 digest.
func validKey(key string) bool {
	if len(key) != 2*sha256.Size {
		return false
	}
	_, err := hex.DecodeString(key)
	return err == nil && strings.ToLower(key) == key
}

// path returns the entry file for a key, sharded by the first two hex
// digits so no single directory grows unbounded.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Get returns the stored value for key. Any failure — absent entry,
// truncated file, checksum mismatch — is a miss; damaged entries are
// removed so they are not re-verified on every lookup.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if !ok {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	val, err := readEntry(s.path(key))
	if err != nil {
		s.removeDamaged(key)
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	// Refresh the mtime (best effort) so LRU order survives a restart.
	now := time.Now()
	_ = os.Chtimes(s.path(key), now, now)
	s.count(func(st *Stats) { st.Hits++ })
	return val, true
}

// Has reports whether key is currently indexed, without opening or
// verifying the entry and without touching recency or the hit/miss
// counters. Callers that need the bytes still use Get/GetStream — an
// indexed entry can turn out damaged.
func (s *Store) Has(key string) bool {
	if !validKey(key) {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// GetStream opens the stored value for key as a payload reader, so large
// values stream to their consumer instead of materialising. Only the header
// is verified here — magic, declared length — NOT the payload checksum:
// GetStream exists for payloads that carry their own internal framing
// checks (trace artifacts verify per-chunk CRCs and a program fingerprint
// as they decode). A consumer whose own verification fails must call
// Invalidate. The returned size is the declared payload length; the reader
// yields at most that many bytes and the caller owns Close.
func (s *Store) GetStream(key string) (io.ReadCloser, int64, bool) {
	if !validKey(key) {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, 0, false
	}
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if !ok {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, 0, false
	}
	f, err := os.Open(s.path(key))
	if err != nil {
		s.removeDamaged(key)
		s.count(func(st *Stats) { st.Misses++ })
		return nil, 0, false
	}
	br := bufio.NewReaderSize(f, 64<<10)
	header, err := br.ReadString('\n')
	var n int64
	if err == nil {
		var wantHex string
		_, err = fmt.Sscanf(header, fileMagic+" %64s %d\n", &wantHex, &n)
	}
	if err != nil || n < 0 {
		f.Close()
		s.removeDamaged(key)
		s.count(func(st *Stats) { st.Misses++ })
		return nil, 0, false
	}
	now := time.Now()
	_ = os.Chtimes(s.path(key), now, now)
	s.count(func(st *Stats) { st.Hits++ })
	return &streamEntry{r: io.LimitReader(br, n), f: f}, n, true
}

// streamEntry couples a payload-bounded reader with its file handle.
type streamEntry struct {
	r io.Reader
	f *os.File
}

func (s *streamEntry) Read(p []byte) (int, error) { return s.r.Read(p) }
func (s *streamEntry) Close() error               { return s.f.Close() }

// Invalidate drops an entry whose payload a GetStream consumer found
// damaged by its own verification, so the corrupt bytes are not served
// again. Invalidating an absent key is a no-op.
func (s *Store) Invalidate(key string) {
	if !validKey(key) {
		return
	}
	s.removeDamaged(key)
}

// Put stores val under key, atomically (write to a temp file in the same
// directory, fsync, rename) and then evicts least-recently-used entries
// until the store fits its budget. Re-putting an existing key refreshes
// its value and recency.
func (s *Store) Put(key string, val []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	sum := sha256.Sum256(val)
	if _, err := fmt.Fprintf(tmp, "%s %s %d\n", fileMagic, hex.EncodeToString(sum[:]), len(val)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	info, err := os.Stat(tmp.Name())
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.bytes += info.Size() - e.size
		e.size = info.Size()
		s.lru.MoveToFront(e.elem)
	} else {
		e := &entry{key: key, size: info.Size()}
		e.elem = s.lru.PushFront(e)
		s.entries[key] = e
		s.bytes += info.Size()
	}
	s.stats.Puts++
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// Fill stores a value obtained from a peer rather than computed locally.
// The write path is identical to Put — atomic, verified, LRU-bounded — it
// is counted separately so fill-on-miss traffic is visible, and a value
// already present is left untouched (the peer's copy of an entry this
// store already verified cannot be fresher: keys are content addresses).
func (s *Store) Fill(key string, val []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	_, ok := s.entries[key]
	s.mu.Unlock()
	if ok {
		return nil
	}
	if err := s.Put(key, val); err != nil {
		return err
	}
	s.count(func(st *Stats) { st.Fills++; st.Puts-- })
	return nil
}

// evictLocked drops least-recently-used entries until the byte budget is
// met. Caller holds s.mu.
func (s *Store) evictLocked() {
	if s.max <= 0 {
		return
	}
	for s.bytes > s.max {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.bytes -= e.size
		s.stats.Evictions++
		os.Remove(s.path(e.key))
	}
}

// removeDamaged drops a key whose file failed verification.
func (s *Store) removeDamaged(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		s.lru.Remove(e.elem)
		delete(s.entries, key)
		s.bytes -= e.size
	}
	os.Remove(s.path(key))
}

// Stats returns a snapshot of the counters and current occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// readEntry reads and verifies one entry file: header line, declared
// length, payload checksum. Any mismatch is an error (the caller treats
// it as a miss).
func readEntry(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	header, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	var wantHex string
	var n int
	if _, err := fmt.Sscanf(header, fileMagic+" %64s %d\n", &wantHex, &n); err != nil {
		return nil, fmt.Errorf("store: bad header in %s: %w", path, err)
	}
	if n < 0 {
		return nil, fmt.Errorf("store: bad length in %s", path)
	}
	val := make([]byte, n)
	if _, err := io.ReadFull(r, val); err != nil {
		return nil, fmt.Errorf("store: truncated %s: %w", path, err)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("store: trailing bytes in %s", path)
	}
	sum := sha256.Sum256(val)
	if hex.EncodeToString(sum[:]) != wantHex {
		return nil, fmt.Errorf("store: checksum mismatch in %s", path)
	}
	return val, nil
}
