package cpu

// Parallel sampled simulation: a two-phase checkpoint/execute pipeline.
//
// The serial sampled loop (RunSampled) interleaves detailed windows with
// functional fast-forward, so the whole run is one long dependence chain
// even though the measured intervals never exchange transient state — each
// window starts from a re-anchored, cleared pipeline and only inherits the
// long-lived structures (branch predictor, BTB, cache tag arrays) that
// functional warming maintains anyway.
//
// Phase 1 (checkpoint sweep) exploits that: a single fast pass over the
// recorded trace drives *every* span — including the spans the serial loop
// would have simulated in detail — through the functional-warming path,
// and snapshots the long-lived state plus the trace position at period
// boundaries into compact Checkpoint values. Checkpoints are taken every
// blockWindows windows, not every window: a coarser grain amortises the
// snapshot/restore cost while still feeding every core (the windows inside
// a block chain exactly like the serial loop, so nothing is lost).
//
// Phase 2 fans the blocks out across par.ForN workers. Each worker seeds
// a private runState and a private memory-model clone from its checkpoint,
// opens its own trace cursor at the checkpoint position (Trace.ReaderAt),
// and re-runs the serial control flow over its block — detailed warmup,
// detailed measured interval, functional fast-forward — for up to
// blockWindows windows. A deterministic ordered reduce then rebuilds the
// aggregates in block order, so the result is bit-identical to the serial
// loop:
//
//   - Counter deltas and interval (insts, cycles) pairs are integers and a
//     pure function of the window's inherited long-lived state, which the
//     sweep reproduces exactly (warming and detailed execution train the
//     predictor/BTB identically and touch the same tag-array lines).
//   - A block's cycle arithmetic is translation-invariant: the serial loop
//     re-anchors each window at a base past which every busy-until cursor
//     has drained, so replaying the block with its first window at base 0
//     shifts every window's base by the same constant and leaves every
//     per-window cycle delta unchanged. The minParallelSkip gate below
//     enforces the "drained" part at block boundaries (within a block the
//     worker chains its own cursors, faithfully shifted).
//   - The IPC list is assembled in block order, window order within each
//     block — the identical float sequence into meanStdErr.
//   - Mem stats count only detailed-simulated accesses; summing the
//     workers' private stats in block order equals the serial model's
//     final counters.

import (
	"context"
	"fmt"

	"repro/internal/mem"
	"repro/internal/par"
	"repro/internal/trace"
)

// minParallelSkip is the minimum functional fast-forward span (in dynamic
// instructions) required for the parallel path. The serial loop re-anchors
// each window at base = lastCommit+1+skipped, and its memory model carries
// busy-until cursors from the previous window; replaying a block with its
// first window re-based to zero is bit-identical only once those cursors
// have drained below the block's original base. The deepest overhang a
// window can leave behind is a few hundred cycles (DRAM latency +
// channel/bank occupancy + queued MSHR and write-buffer drains), so a skip
// of 1024 instructions — at least 1024 cycles of base advance — clears it
// with margin. Shorter skips fall back to the serial loop rather than risk
// divergence.
const minParallelSkip = 1024

// blockOversubscribe is how many blocks the parallel path carves per
// worker. Windows are near-uniform in cost, so a small factor is enough to
// smooth the tail while keeping the checkpoint count — and with it the
// snapshot, clone and cursor-positioning overhead — low.
const blockOversubscribe = 4

// recordedSpec is the spec as recorded in Sampled: the parallelism knob is
// cleared because it never changes results, so serial and parallel runs of
// the same sampling regime report the same Sampled block.
func recordedSpec(spec SampleSpec) SampleSpec {
	spec.Parallelism = 0
	return spec
}

// parallelOK reports whether RunSampled may take the parallel path:
// parallelism requested, no observer (hotspot attribution needs ordered
// events), a recorded trace positioned at the start, a memory model that
// can snapshot/clone its long-lived state, and a skip span long enough to
// guarantee the serial loop's cursors drain between windows.
func (s *Sim) parallelOK(src trace.Source, spec SampleSpec) bool {
	if spec.Parallelism <= 1 || s.Obs != nil {
		return false
	}
	if spec.Period-spec.Warmup-spec.Interval < minParallelSkip {
		return false
	}
	rd, ok := src.(*trace.Reader)
	if !ok || rd.Pos() != 0 {
		return false
	}
	_, ok = s.Mem.(mem.Snapshotter)
	return ok
}

// Checkpoint is the complete inheritance of one block of detailed windows:
// the trace position and global instruction index where the block's first
// window starts, and the long-lived microarchitectural state as functional
// warming left it — branch-predictor counters, BTB tags and the memory
// model's tag arrays. Everything transient (pipeline rings, issue slots,
// busy-until cursors) is deliberately absent: windows re-anchor on cleared
// transient state in the serial loop too.
type Checkpoint struct {
	Cur     trace.Cursor // trace position at the block's first window
	Idx     uint64       // dynamic instructions consumed before the block
	PredCtr []uint8
	BTBTag  []int32
	Tags    *mem.TagSnapshot // nil for stateless models
}

// Bytes returns the approximate in-memory size of the checkpoint.
func (c *Checkpoint) Bytes() int64 {
	return int64(len(c.PredCtr)) + 4*int64(len(c.BTBTag)) + c.Tags.Bytes() + 16
}

// sweepCheckpoints is phase 1: one functional-warming pass over the trace
// that mirrors the serial loop's span structure span for span — warmup,
// measured interval, fast-forward — but warms where the serial loop would
// simulate, materialising a Checkpoint at every-th window boundary. It
// accumulates the stream-coverage counters (WarmupInsts, SkippedInsts,
// TotalInsts) into smp exactly as the serial loop would; the measured-
// window counters come from the phase-2 workers.
func (s *Sim) sweepCheckpoints(rd *trace.Reader, statics []staticInst, maxInsts uint64, spec SampleSpec, sm mem.Snapshotter, smp *Sampled, every int) []Checkpoint {
	rs := acquireState(&s.Cfg)
	defer releaseState(rs)
	var cps []Checkpoint
	idx := uint64(0)
	more := true
	for window := 0; more && idx < maxInsts; window++ {
		if window%every == 0 {
			cps = append(cps, Checkpoint{
				Cur:     rd.Cursor(),
				Idx:     idx,
				PredCtr: rs.pred.snapshot(),
				BTBTag:  rs.targets.snapshot(),
				Tags:    sm.SnapshotTags(),
			})
		}
		// Warmup prefix (the serial loop simulates it in detail; its
		// counters are discarded but its Mem stats count, so even a
		// measureless tail window must be replayed by a worker).
		got, m := warmSpan(rd, statics, rs, sm, min(spec.Warmup, maxInsts-idx))
		idx += got
		smp.WarmupInsts += got
		more = m
		if !more || idx >= maxInsts {
			break
		}

		// Measured interval.
		got, m = warmSpan(rd, statics, rs, sm, min(spec.Interval, maxInsts-idx))
		idx += got
		more = m
		if got == 0 {
			break
		}
		if !more || idx >= maxInsts {
			break
		}

		// Functional fast-forward to the next period (same on both paths).
		skip := spec.Period - spec.Warmup - spec.Interval
		if rem := maxInsts - idx; skip > rem {
			skip = rem
		}
		got, more = warmSpan(rd, statics, rs, sm, skip)
		idx += got
		smp.SkippedInsts += got
	}
	smp.TotalInsts = idx
	return cps
}

// blockResult is one worker's output: the block's measured-interval
// aggregates in window order, plus the block's private Mem stats (warmup
// included — the serial run counts warmup accesses too).
type blockResult struct {
	delta     Result
	cycles    int64
	intervals int
	measured  uint64
	ipcs      []float64
	mem       mem.Stats
}

// runBlock replays up to `windows` checkpointed windows in full detail on
// private state: a fresh runState seeded with the checkpoint's
// predictor/BTB tables, a memory-model clone seeded with its tag arrays,
// and a trace cursor opened at its position. The control flow is the
// serial loop's, verbatim — detailed warmup, detailed measured interval,
// functional fast-forward, chained re-anchor bases — except the first
// window runs at base 0 (a pure translation; see the file comment) and the
// fast-forward after the block's last window is elided (the next block's
// checkpoint already embodies it).
func (s *Sim) runBlock(tr *trace.Trace, statics []staticInst, sm mem.Snapshotter, cp *Checkpoint, windows int, maxInsts uint64, spec SampleSpec, out *blockResult) error {
	model := sm.NewFromSnapshot(cp.Tags)
	wsim := &Sim{Cfg: s.Cfg, Mem: model}
	warmer, _ := model.(mem.Warmer)
	ws := acquireState(&s.Cfg)
	defer releaseState(ws)
	ws.pred.restore(cp.PredCtr)
	ws.targets.restore(cp.BTBTag)
	ws.idx = cp.Idx
	rd := tr.ReaderAtCursor(cp.Cur)

	var scratch Result
	base := int64(0)
	more := true
	for w := 0; w < windows && more && ws.idx < maxInsts; w++ {
		ws.startWindow(&s.Cfg, base)

		pre := ws.idx
		var err error
		more, err = wsim.runSpan(ws, rd, statics, &scratch, min(ws.idx+spec.Warmup, maxInsts), nil)
		if err != nil {
			return err
		}
		if !more || ws.idx >= maxInsts {
			break
		}

		snap := scratch
		startFrontier := ws.profFrontier
		pre = ws.idx
		more, err = wsim.runSpan(ws, rd, statics, &scratch, min(ws.idx+spec.Interval, maxInsts), nil)
		if err != nil {
			return err
		}
		mInsts := ws.idx - pre
		if mInsts == 0 {
			break
		}
		mCycles := ws.profFrontier - startFrontier
		addDelta(&out.delta, &scratch, &snap)
		out.cycles += mCycles
		out.intervals++
		out.measured += mInsts
		if mCycles > 0 {
			out.ipcs = append(out.ipcs, float64(mInsts)/float64(mCycles))
		}
		if !more || ws.idx >= maxInsts || w == windows-1 {
			break
		}

		skip := spec.Period - spec.Warmup - spec.Interval
		if rem := maxInsts - ws.idx; skip > rem {
			skip = rem
		}
		var skipped uint64
		skipped, more = warmSpan(rd, statics, ws, warmer, skip)
		ws.idx += skipped
		base = ws.lastCommit + 1 + int64(skipped)
	}
	out.mem = model.Stats()
	return nil
}

// ckptKey identifies a checkpoint library in a trace's aux cache: the
// sweep's output is a deterministic function of the recording, the
// sampling regime, the instruction budget, the block grain, the warming
// behaviour of the memory model (Name captures mode and width) and the
// predictor/BTB geometry. Parallelism is deliberately absent — checkpoints
// are identical for every worker count at the same grain.
type ckptKey struct {
	period, warmup, interval, maxInsts uint64
	every                              int
	mem                                string
	bimodal, btb                       int
}

// ckptLibrary is a cached phase-1 result: the block checkpoints plus the
// stream-coverage counters the sweep accumulated. Checkpoints are shared
// read-only by every phase-2 worker of every subsequent run, so repeat
// experiments over the same trace pay the functional-warming pass once —
// the sampled-simulation analogue of capture-once / replay-many.
type ckptLibrary struct {
	cps                    []Checkpoint
	warmup, skipped, total uint64
}

// runSampledParallel is the two-phase pipeline behind RunSampled when
// parallelOK holds: sweep checkpoints (or reuse the trace's cached
// library), fan the blocks out over spec.Parallelism workers, and reduce
// in block order. The result is bit-identical to the serial loop's.
func (s *Sim) runSampledParallel(tr *trace.Trace, rd *trace.Reader, maxInsts uint64, spec SampleSpec, sm mem.Snapshotter) (Result, error) {
	statics := staticsForTrace(tr)
	smp := &Sampled{Spec: recordedSpec(spec)}

	// Block grain: enough blocks to feed every worker several times over,
	// as few checkpoints as that allows.
	records := min(tr.Records(), maxInsts)
	nWindows := (records + spec.Period - 1) / spec.Period
	blocks := uint64(spec.Parallelism) * blockOversubscribe
	if blocks > nWindows {
		blocks = nWindows
	}
	if blocks < 1 {
		blocks = 1
	}
	every := int((nWindows + blocks - 1) / blocks)

	key := ckptKey{
		period: spec.Period, warmup: spec.Warmup, interval: spec.Interval,
		maxInsts: maxInsts, every: every, mem: s.Mem.Name(),
		bimodal: s.Cfg.BimodalSize, btb: s.Cfg.BTBEntries,
	}
	var lib *ckptLibrary
	if v, ok := tr.Aux(key); ok {
		lib = v.(*ckptLibrary)
	} else {
		var sweep Sampled
		cps := s.sweepCheckpoints(rd, statics, maxInsts, spec, sm, &sweep, every)
		lib = &ckptLibrary{cps: cps, warmup: sweep.WarmupInsts, skipped: sweep.SkippedInsts, total: sweep.TotalInsts}
		tr.SetAux(key, lib)
	}
	smp.WarmupInsts, smp.SkippedInsts, smp.TotalInsts = lib.warmup, lib.skipped, lib.total
	cps := lib.cps

	results := make([]blockResult, len(cps))
	err := par.ForN(context.Background(), spec.Parallelism, len(cps), func(i int) error {
		return s.runBlock(tr, statics, sm, &cps[i], every, maxInsts, spec, &results[i])
	})
	if err != nil {
		return Result{}, err
	}

	// Deterministic ordered reduce: identical interval order, identical
	// addDelta accumulation, identical IPC sequence into meanStdErr.
	var agg, zero Result
	var ipcs []float64
	for i := range results {
		r := &results[i]
		addDelta(&agg, &r.delta, &zero)
		agg.Cycles += r.cycles
		smp.Intervals += r.intervals
		smp.MeasuredInsts += r.measured
		ipcs = append(ipcs, r.ipcs...)
		agg.Mem.Add(r.mem)
	}
	agg.Insts = smp.MeasuredInsts
	smp.IPCMean, smp.IPCStdErr = meanStdErr(ipcs)
	agg.Sampled = smp
	return agg, nil
}

// SweepStats summarises a phase-1 checkpoint sweep (momtrace -stats).
type SweepStats struct {
	Checkpoints   int    // windows materialised
	SnapshotBytes int64  // total checkpoint footprint
	Insts         uint64 // trace records the sweep covered
}

// SweepCheckpoints runs the phase-1 checkpoint sweep alone, at the finest
// grain (one checkpoint per window), and reports its footprint — the
// diagnostic behind momtrace -stats. It requires an enabled spec and a
// snapshottable memory model.
func (s *Sim) SweepCheckpoints(tr *trace.Trace, maxInsts uint64, spec SampleSpec) (SweepStats, error) {
	if err := spec.Validate(); err != nil {
		return SweepStats{}, err
	}
	if !spec.Enabled() {
		return SweepStats{}, fmt.Errorf("cpu: checkpoint sweep needs an enabled sample spec")
	}
	sm, ok := s.Mem.(mem.Snapshotter)
	if !ok {
		return SweepStats{}, fmt.Errorf("cpu: memory model %s cannot snapshot", s.Mem.Name())
	}
	statics := staticsForTrace(tr)
	var smp Sampled
	cps := s.sweepCheckpoints(tr.Reader(), statics, maxInsts, spec, sm, &smp, 1)
	st := SweepStats{Checkpoints: len(cps), Insts: smp.TotalInsts}
	for i := range cps {
		st.SnapshotBytes += cps[i].Bytes()
	}
	return st, nil
}
