package cpu_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

func sumProgram(n int) *isa.Program {
	b := asm.New("sum")
	vals := make([]byte, n)
	for i := range vals {
		vals[i] = byte(i)
	}
	b.AllocBytes("in", vals, 8)
	b.Alloc("out", 8, 8)
	ptr, acc, tmp, ctr, outp := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	b.MovI(ptr, int64(b.Sym("in")))
	b.MovI(outp, int64(b.Sym("out")))
	b.MovI(acc, 0)
	b.Loop(ctr, int64(n), func() {
		b.Ldbu(tmp, ptr, 0)
		b.Add(acc, acc, tmp)
		b.AddI(ptr, ptr, 1)
	})
	b.Stq(acc, outp, 0)
	return b.Build()
}

func run(t *testing.T, p *isa.Program, width int, ext isa.Ext, lat int) cpu.Result {
	t.Helper()
	sim := cpu.New(cpu.NewConfig(width, ext), mem.NewPerfect(lat))
	res, err := sim.Run(trace.NewLive(emu.New(p)), 10_000_000)
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return res
}

func TestBasicInvariants(t *testing.T) {
	p := sumProgram(500)
	for _, w := range []int{1, 2, 4, 8} {
		res := run(t, p, w, isa.ExtAlpha, 1)
		if res.Insts == 0 {
			t.Fatal("no instructions graduated")
		}
		// Cycles must at least cover insts/width.
		if minCycles := int64(res.Insts) / int64(w); res.Cycles < minCycles {
			t.Errorf("width %d: cycles %d < lower bound %d", w, res.Cycles, minCycles)
		}
		if ipc := res.IPC(); ipc > float64(w)+1e-9 {
			t.Errorf("width %d: IPC %f exceeds width", w, ipc)
		}
	}
}

func TestWiderIsNotSlower(t *testing.T) {
	p := sumProgram(2000)
	prev := run(t, p, 1, isa.ExtAlpha, 1).Cycles
	for _, w := range []int{2, 4, 8} {
		c := run(t, p, w, isa.ExtAlpha, 1).Cycles
		if c > prev+prev/10 {
			t.Errorf("width %d slower than narrower machine: %d > %d", w, c, prev)
		}
		prev = c
	}
}

func TestHigherLatencyIsSlower(t *testing.T) {
	p := sumProgram(2000)
	c1 := run(t, p, 4, isa.ExtAlpha, 1).Cycles
	c50 := run(t, p, 4, isa.ExtAlpha, 50).Cycles
	if c50 <= c1 {
		t.Errorf("latency 50 not slower: %d <= %d", c50, c1)
	}
}

func TestDeterminism(t *testing.T) {
	p := sumProgram(777)
	a := run(t, p, 4, isa.ExtAlpha, 1)
	b := run(t, p, 4, isa.ExtAlpha, 1)
	if a != b {
		t.Errorf("non-deterministic results: %+v vs %+v", a, b)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	p := sumProgram(5000)
	res := run(t, p, 4, isa.ExtAlpha, 1)
	if res.Branches == 0 {
		t.Fatal("no branches recorded")
	}
	// A do-while loop branch is nearly always taken; the bimodal predictor
	// should mispredict a tiny fraction after warm-up.
	rate := float64(res.Mispredicts) / float64(res.Branches)
	if rate > 0.05 {
		t.Errorf("mispredict rate %.3f too high for a simple loop", rate)
	}
}

func TestMDMXAccumulatorRecurrence(t *testing.T) {
	// A chain of dependent accumulator multiplies must serialise at the
	// multiply latency, while independent packed multiplies can pipeline.
	build := func(acc bool) *isa.Program {
		b := asm.New("chain")
		b.Alloc("buf", 8, 8)
		base := isa.R(1)
		b.MovI(base, int64(b.Sym("buf")))
		b.Ldm(isa.M(0), base, 0)
		b.Ldm(isa.M(1), base, 0)
		b.Op(isa.ACLR, isa.A(0), isa.Reg{}, isa.Reg{})
		for i := 0; i < 200; i++ {
			if acc {
				b.Op(isa.ACCMULH, isa.A(0), isa.M(0), isa.M(1))
			} else {
				b.Op(isa.PMULLH, isa.M(2+i%16), isa.M(0), isa.M(1))
			}
		}
		return b.Build()
	}
	chained := run(t, build(true), 4, isa.ExtMDMX, 1).Cycles
	indep := run(t, build(false), 4, isa.ExtMDMX, 1).Cycles
	if chained < indep*2 {
		t.Errorf("accumulator recurrence not serialising: chained=%d indep=%d", chained, indep)
	}
}

func TestMOMPipelinedAccumulation(t *testing.T) {
	// One MOM accumulator instruction performs 16 word-accumulations but
	// pays the dependence latency only once per instruction, so per word-op
	// it must be far cheaper than MDMX's per-instruction recurrence.
	bMom := asm.New("momacc")
	bMom.Alloc("buf", 16*8, 8)
	base, stride := isa.R(1), isa.R(2)
	bMom.MovI(base, int64(bMom.Sym("buf")))
	bMom.MovI(stride, 8)
	bMom.SetVLI(16)
	bMom.MomLd(isa.V(0), base, stride, 0)
	bMom.MomLd(isa.V(1), base, stride, 0)
	bMom.Op(isa.ACLR, isa.VA(0), isa.Reg{}, isa.Reg{})
	for i := 0; i < 50; i++ {
		bMom.Op(isa.ACCMULH.Vector(), isa.VA(0), isa.V(0), isa.V(1))
	}
	mom := run(t, bMom.Build(), 4, isa.ExtMOM, 1)

	bMdmx := asm.New("mdmxacc")
	bMdmx.Alloc("buf", 8, 8)
	bMdmx.MovI(base, int64(bMdmx.Sym("buf")))
	bMdmx.Ldm(isa.M(0), base, 0)
	bMdmx.Ldm(isa.M(1), base, 0)
	bMdmx.Op(isa.ACLR, isa.A(0), isa.Reg{}, isa.Reg{})
	for i := 0; i < 50*16; i++ { // same number of word accumulations
		bMdmx.Op(isa.ACCMULH, isa.A(0), isa.M(0), isa.M(1))
	}
	mdmx := run(t, bMdmx.Build(), 4, isa.ExtMDMX, 1)

	if mom.Cycles*2 >= mdmx.Cycles {
		t.Errorf("MOM accumulation not pipelining vs MDMX: mom=%d mdmx=%d",
			mom.Cycles, mdmx.Cycles)
	}
}

func TestVectorOccupancyScalesWithVL(t *testing.T) {
	build := func(vl int) *isa.Program {
		b := asm.New("occ")
		b.Alloc("buf", 16*8, 8)
		base, stride := isa.R(1), isa.R(2)
		b.MovI(base, int64(b.Sym("buf")))
		b.MovI(stride, 8)
		b.SetVLI(vl)
		b.MomLd(isa.V(0), base, stride, 0)
		for i := 0; i < 400; i++ {
			b.Op(isa.PADDB.Vector(), isa.V(1+i%8), isa.V(0), isa.V(0))
		}
		return b.Build()
	}
	short := run(t, build(2), 4, isa.ExtMOM, 1).Cycles
	long := run(t, build(16), 4, isa.ExtMOM, 1).Cycles
	if long < short*4 {
		t.Errorf("VL=16 should occupy ~8x the unit of VL=2: short=%d long=%d", short, long)
	}
}
