package cpu_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// runCfg runs a program under an explicit configuration.
func runCfg(t *testing.T, p *isa.Program, cfg cpu.Config, m mem.Model) cpu.Result {
	t.Helper()
	sim := cpu.New(cfg, m)
	res, err := sim.Run(trace.NewLive(emu.New(p)), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMispredictPenaltyVisible: a data-dependent unpredictable branch
// pattern must cost far more cycles than an always-taken one.
func TestMispredictPenaltyVisible(t *testing.T) {
	build := func(pattern []byte) *isa.Program {
		b := asm.New("br")
		b.AllocBytes("pat", pattern, 8)
		ptr, v, acc, ctr := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		b.MovI(ptr, int64(b.Sym("pat")))
		b.MovI(acc, 0)
		b.Loop(ctr, int64(len(pattern)), func() {
			b.Ldbu(v, ptr, 0)
			b.If(v, func() {
				b.AddI(acc, acc, 3)
			}, func() {
				b.AddI(acc, acc, 5)
			})
			b.AddI(ptr, ptr, 1)
		})
		return b.Build()
	}
	n := 4000
	allTaken := make([]byte, n)
	alternating := make([]byte, n)
	rngState := uint64(12345)
	for i := range allTaken {
		allTaken[i] = 1
		rngState = rngState*6364136223846793005 + 1442695040888963407
		alternating[i] = byte(rngState >> 62 & 1)
	}
	cfg := cpu.NewConfig(4, isa.ExtAlpha)
	easy := runCfg(t, build(allTaken), cfg, mem.NewPerfect(1))
	hard := runCfg(t, build(alternating), cfg, mem.NewPerfect(1))
	if hard.Mispredicts < easy.Mispredicts*5 {
		t.Errorf("random pattern should mispredict more: %d vs %d",
			hard.Mispredicts, easy.Mispredicts)
	}
	if hard.Cycles < easy.Cycles+int64(hard.Mispredicts) {
		t.Errorf("mispredicts should cost cycles: hard=%d easy=%d mispredicts=%d",
			hard.Cycles, easy.Cycles, hard.Mispredicts)
	}
}

// TestStoreLoadForwardingOrdering: a load must observe an older store to
// the same address (functional) and pay a dependence (timing).
func TestStoreLoadForwardingOrdering(t *testing.T) {
	b := asm.New("stld")
	b.Alloc("buf", 64, 8)
	base, v, w := isa.R(1), isa.R(2), isa.R(3)
	ctr := isa.R(4)
	b.MovI(base, int64(b.Sym("buf")))
	b.MovI(v, 7)
	b.Loop(ctr, 500, func() {
		b.Stq(v, base, 0)
		b.Ldq(w, base, 0) // must wait for the store
		b.Add(v, w, w)
	})
	p := b.Build()
	m := emu.New(p)
	if _, err := m.Run(100_000); err != nil {
		t.Fatal(err)
	}
	res := runCfg(t, p, cpu.NewConfig(4, isa.ExtAlpha), mem.NewPerfect(1))
	// The chain store->load->add->store can't beat ~3 cycles per iteration.
	if res.Cycles < 3*500 {
		t.Errorf("store-load chain too fast: %d cycles for 500 iterations", res.Cycles)
	}
}

// TestRenameStallsWithTinyRegisterFile: shrinking the matrix physical file
// must cost cycles on register-hungry vector code.
func TestRenameStallsWithTinyRegisterFile(t *testing.T) {
	b := asm.New("regs")
	b.Alloc("buf", 16*8, 8)
	base, stride := isa.R(1), isa.R(2)
	b.MovI(base, int64(b.Sym("buf")))
	b.MovI(stride, 8)
	b.SetVLI(16)
	ctr := isa.R(3)
	b.Loop(ctr, 200, func() {
		for i := 0; i < 8; i++ {
			b.MomLd(isa.V(i), base, stride, 0)
		}
		for i := 0; i < 8; i++ {
			b.Op(isa.PADDB.Vector(), isa.V(8+i%8), isa.V(i), isa.V(i))
		}
	})
	p := b.Build()

	big := cpu.NewConfig(4, isa.ExtMOM)
	big.MomPhys = 32
	small := cpu.NewConfig(4, isa.ExtMOM)
	small.MomPhys = 17 // one in-flight matrix write
	cBig := runCfg(t, p, big, mem.NewPerfect(1))
	cSmall := runCfg(t, p, small, mem.NewPerfect(1))
	if cSmall.Cycles <= cBig.Cycles {
		t.Errorf("tiny register file should stall rename: %d vs %d",
			cSmall.Cycles, cBig.Cycles)
	}
}

// TestVectorPortReservation: with a memory model that reserves all ports
// for vector accesses (multi-address), interleaved scalar loads should
// suffer compared to the vector-cache organisation that leaves the L1
// ports alone.
func TestVectorPortReservation(t *testing.T) {
	b := asm.New("ports")
	b.Alloc("buf", 4096, 8)
	base, stride, s := isa.R(1), isa.R(2), isa.R(4)
	ctr := isa.R(3)
	b.MovI(base, int64(b.Sym("buf")))
	b.MovI(stride, 8)
	b.SetVLI(16)
	b.Loop(ctr, 300, func() {
		b.MomLd(isa.V(0), base, stride, 0)
		for i := int64(0); i < 4; i++ {
			b.Ldq(s, base, 512+8*i) // independent scalar loads
		}
	})
	p := b.Build()
	cfg := cpu.NewConfig(4, isa.ExtMOM)
	ma := runCfg(t, p, cfg, mem.NewHierarchy(mem.HierConfig{Width: 4, Mode: mem.ModeMultiAddress}))
	vc := runCfg(t, p, cfg, mem.NewHierarchy(mem.HierConfig{Width: 4, Mode: mem.ModeVectorCache}))
	// Both must complete; the vector cache keeps scalar bandwidth free, so
	// it should not be drastically slower despite its longer latency.
	if vc.Cycles > 3*ma.Cycles {
		t.Errorf("vector cache unexpectedly slow: %d vs %d", vc.Cycles, ma.Cycles)
	}
}

// TestUnalignedLoadsCostMore: byte-misaligned 64-bit loads occupy the port
// twice.
func TestUnalignedLoadsCostMore(t *testing.T) {
	build := func(off int64) *isa.Program {
		b := asm.New("unaligned")
		b.Alloc("buf", 4096, 8)
		base, v, ctr := isa.R(1), isa.R(2), isa.R(3)
		b.MovI(base, int64(b.Sym("buf")))
		b.Loop(ctr, 2000, func() {
			b.Ldq(v, base, off)
			b.Ldq(v, base, off+64)
		})
		return b.Build()
	}
	cfg := cpu.NewConfig(1, isa.ExtAlpha) // one port: occupancy visible
	aligned := runCfg(t, build(0), cfg, mem.NewPerfect(1))
	misaligned := runCfg(t, build(3), cfg, mem.NewPerfect(1))
	if misaligned.Cycles <= aligned.Cycles {
		t.Errorf("unaligned loads should cost extra port cycles: %d vs %d",
			misaligned.Cycles, aligned.Cycles)
	}
}

// TestEightWayMOMLanesHelp: the 2-lane multimedia units of the 8-way MOM
// machine must beat a hypothetical single-lane variant on vector code.
func TestEightWayMOMLanesHelp(t *testing.T) {
	b := asm.New("lanes")
	b.Alloc("buf", 16*8, 8)
	base, stride, ctr := isa.R(1), isa.R(2), isa.R(3)
	b.MovI(base, int64(b.Sym("buf")))
	b.MovI(stride, 8)
	b.SetVLI(16)
	b.MomLd(isa.V(0), base, stride, 0)
	b.Loop(ctr, 500, func() {
		b.Op(isa.PADDB.Vector(), isa.V(1), isa.V(0), isa.V(0))
		b.Op(isa.PADDH.Vector(), isa.V(2), isa.V(0), isa.V(0))
	})
	p := b.Build()
	two := cpu.NewConfig(8, isa.ExtMOM)
	one := two
	one.MedLanes = 1
	rTwo := runCfg(t, p, two, mem.NewPerfect(1))
	rOne := runCfg(t, p, one, mem.NewPerfect(1))
	if rTwo.Cycles >= rOne.Cycles {
		t.Errorf("2-lane units should be faster: %d vs %d", rTwo.Cycles, rOne.Cycles)
	}
}

// TestWordOpsAccounting: vector ops contribute VL word-operations.
func TestWordOpsAccounting(t *testing.T) {
	b := asm.New("ops")
	b.Alloc("buf", 16*8, 8)
	base, stride := isa.R(1), isa.R(2)
	b.MovI(base, int64(b.Sym("buf")))
	b.MovI(stride, 8)
	b.SetVLI(10)
	b.MomLd(isa.V(0), base, stride, 0)
	b.Op(isa.PADDB.Vector(), isa.V(1), isa.V(0), isa.V(0))
	p := b.Build()
	res := runCfg(t, p, cpu.NewConfig(4, isa.ExtMOM), mem.NewPerfect(1))
	if res.WordOps != 20 { // 10 loaded elements + 10 vector adds
		t.Errorf("WordOps = %d, want 20", res.WordOps)
	}
}

// TestConfigValidation rejects broken configurations.
func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid width")
		}
	}()
	cpu.NewConfig(3, isa.ExtAlpha)
}

// TestROBSizeLimitsOverlap: with long-latency operations, a larger ROB
// must expose more parallelism.
func TestROBSizeLimitsOverlap(t *testing.T) {
	b := asm.New("rob")
	b.Alloc("buf", 8, 8)
	base := isa.R(1)
	b.MovI(base, int64(b.Sym("buf")))
	ctr := isa.R(2)
	// Independent long-latency multiplies.
	b.Loop(ctr, 400, func() {
		for i := 3; i < 11; i++ {
			b.OpI(isa.MULQ, isa.R(i), isa.R(i), 7)
		}
	})
	p := b.Build()
	small := cpu.NewConfig(4, isa.ExtAlpha)
	small.ROBSize = 8
	big := cpu.NewConfig(4, isa.ExtAlpha)
	big.ROBSize = 64
	cs := runCfg(t, p, small, mem.NewPerfect(1)).Cycles
	cb := runCfg(t, p, big, mem.NewPerfect(1)).Cycles
	if cb >= cs {
		t.Errorf("bigger ROB should help: %d (64-entry) vs %d (8-entry)", cb, cs)
	}
}

// TestLSQLimitsMemoryParallelism: a tiny LSQ throttles independent loads
// under a long memory latency.
func TestLSQLimitsMemoryParallelism(t *testing.T) {
	b := asm.New("lsq")
	b.Alloc("buf", 4096, 8)
	base := isa.R(1)
	b.MovI(base, int64(b.Sym("buf")))
	ctr := isa.R(2)
	b.Loop(ctr, 300, func() {
		for i := 0; i < 8; i++ {
			b.Ldq(isa.R(3+i), base, int64(8*i))
		}
	})
	p := b.Build()
	small := cpu.NewConfig(4, isa.ExtAlpha)
	small.LSQSize = 2
	big := cpu.NewConfig(4, isa.ExtAlpha)
	big.LSQSize = 32
	cs := runCfg(t, p, small, mem.NewPerfect(20)).Cycles
	cb := runCfg(t, p, big, mem.NewPerfect(20)).Cycles
	if cb >= cs {
		t.Errorf("bigger LSQ should help under latency: %d vs %d", cb, cs)
	}
}

// TestByClassAccounting: the per-class counters must sum to the
// instruction count.
func TestByClassAccounting(t *testing.T) {
	p := sumProgram(500)
	res := run(t, p, 4, isa.ExtAlpha, 1)
	var sum uint64
	for _, n := range res.ByClass {
		sum += n
	}
	if sum != res.Insts {
		t.Errorf("class counts sum to %d, want %d", sum, res.Insts)
	}
	if res.ByClass[isa.ClassLoad] == 0 || res.ByClass[isa.ClassBranch] == 0 {
		t.Error("expected loads and branches in the mix")
	}
}
