package cpu

import (
	"fmt"
	"sync"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Result summarises one timed run.
type Result struct {
	Cycles      int64
	Insts       uint64
	WordOps     uint64 // packed-word operations (vector ops count VL words)
	Branches    uint64
	Mispredicts uint64
	BTBMisses   uint64
	Loads       uint64
	Stores      uint64
	ByClass     [16]uint64 // graduated instructions per isa.Class
	Mem         mem.Stats
	Profile     Profile
	// Sampled is non-nil only for RunSampled runs; it describes the sampling
	// regime and the statistical quality of the estimate. For sampled runs
	// Cycles/Insts/WordOps/Profile cover the measured intervals only (so IPC
	// and the attribution identity stay exact), while Mem covers every
	// detailed-simulated access including warmup prefixes.
	Sampled *Sampled
}

// Profile attributes every simulated cycle to the machine structure that
// bounded forward progress during it. The commit stage is in order, so the
// simulated time is exactly the path of the commit frontier: whenever the
// frontier advances past a cycle in which nothing graduated, that cycle was
// lost to whichever constraint held back the instruction that eventually
// advanced it. The buckets always sum to Result.Cycles — the identity every
// profile consumer (and TestProfileAttributionIdentity) relies on.
type Profile struct {
	// Commit counts cycles in which at least one instruction graduated.
	Commit int64
	// Frontend counts cycles lost refilling the fetch/decode pipe: initial
	// fill, taken-branch fetch breaks and BTB-miss bubbles.
	Frontend int64
	// Mispredict counts cycles lost to branch-mispredict redirects.
	Mispredict int64
	// RenameROB counts dispatch stalls on a full ROB, LSQ or exhausted
	// physical (rename) registers.
	RenameROB int64
	// IssueQueue counts cycles waiting for an issue slot (issue-width
	// contention among ready instructions).
	IssueQueue int64
	// FU counts cycles waiting for a functional unit or vector lane.
	FU int64
	// MemWait counts cycles waiting for load data (scalar or vector) to
	// return from the memory system.
	MemWait int64
	// StoreCommit counts commit stalls draining stores into the memory
	// system (write-buffer back-pressure at graduation).
	StoreCommit int64
	// DepLatency counts cycles serialised on data dependences and raw
	// execution latency with no structural resource at fault.
	DepLatency int64
}

// Total sums every bucket; it equals Result.Cycles for any completed run.
func (p Profile) Total() int64 {
	return p.Commit + p.Frontend + p.Mispredict + p.RenameROB +
		p.IssueQueue + p.FU + p.MemWait + p.StoreCommit + p.DepLatency
}

// IPC returns graduated instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// OPC returns packed-word operations per cycle (a fetch-pressure metric:
// MOM packs an order of magnitude more operations per instruction).
func (r Result) OPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.WordOps) / float64(r.Cycles)
}

// ---- resource helpers ----

// slots hands out up to width slots per cycle to requests whose earliest
// cycle is non-decreasing (fetch, dispatch, commit are in program order).
type slots struct {
	width int
	cycle int64
	used  int
}

func (s *slots) take(earliest int64) int64 {
	if earliest > s.cycle {
		s.cycle, s.used = earliest, 0
	}
	if s.used < s.width {
		s.used++
		return s.cycle
	}
	s.cycle++
	s.used = 1
	return s.cycle
}

// wideSlots hands out up to width slots per cycle for non-monotonic requests
// (issue is out of order). It is a ring of per-cycle counters anchored at
// the dispatch frontier, which lower-bounds every future request: advancing
// the frontier retires old cells, and the ring doubles if a request lands
// further ahead of the frontier than the current window covers.
type wideSlots struct {
	width int32
	base  int64   // cycle stored in slot base&mask
	used  []int32 // per-cycle issue counts; length is a power of two
	mask  int64
}

func newWideSlots(width int) *wideSlots {
	const n = 1 << 10
	return &wideSlots{width: int32(width), used: make([]int32, n), mask: n - 1}
}

// grow widens the window until cycle c fits, re-anchoring every live cell.
func (s *wideSlots) grow(c int64) {
	n := int64(len(s.used))
	for c-s.base >= n {
		n *= 2
	}
	wide := make([]int32, n)
	for cyc := s.base; cyc < s.base+int64(len(s.used)); cyc++ {
		wide[cyc&(n-1)] = s.used[cyc&s.mask]
	}
	s.used, s.mask = wide, n-1
}

func (s *wideSlots) take(earliest int64) int64 {
	c := earliest
	if c < s.base {
		c = s.base
	}
	if c-s.base >= int64(len(s.used)) {
		s.grow(c)
	}
	for s.used[c&s.mask] >= s.width {
		c++
		if c-s.base >= int64(len(s.used)) {
			s.grow(c)
		}
	}
	s.used[c&s.mask]++
	return c
}

// advance moves the window base to the dispatch frontier, clearing the
// cells that fall behind it (they can never be requested again).
func (s *wideSlots) advance(frontier int64) {
	if frontier <= s.base {
		return
	}
	if frontier-s.base >= int64(len(s.used)) {
		clear(s.used)
	} else {
		for c := s.base; c < frontier; c++ {
			s.used[c&s.mask] = 0
		}
	}
	s.base = frontier
}

// pool is a set of identical functional units.
type pool struct {
	busy []int64 // first cycle each unit is free
}

func newPool(n int) *pool { return &pool{busy: make([]int64, n)} }

func (p *pool) empty() bool { return len(p.busy) == 0 }

// minFree returns the earliest cycle any unit is free (0 if the pool is
// empty; callers must check empty()).
func (p *pool) minFree() int64 {
	var m int64 = 1 << 62
	for _, b := range p.busy {
		if b < m {
			m = b
		}
	}
	if m == 1<<62 {
		m = 0
	}
	return m
}

// takeAt reserves the least-busy unit for occ cycles starting no earlier
// than t; it returns the actual start cycle.
func (p *pool) takeAt(t, occ int64) int64 {
	best, bb := -1, int64(1)<<62
	for i, b := range p.busy {
		if b < bb {
			bb, best = b, i
		}
	}
	start := t
	if bb > start {
		start = bb
	}
	p.busy[best] = start + occ
	return start
}

// takeAll reserves every unit in the pool for occ cycles (multi-address
// vector accesses reserve all memory ports).
func (p *pool) takeAll(t, occ int64) int64 {
	start := t
	for _, b := range p.busy {
		if b > start {
			start = b
		}
	}
	for i := range p.busy {
		p.busy[i] = start + occ
	}
	return start
}

// takeEither picks the least-busy unit across two pools (simple operations
// may execute on complex units).
func takeEither(a, b *pool, t, occ int64) int64 {
	switch {
	case a.empty():
		return b.takeAt(t, occ)
	case b.empty():
		return a.takeAt(t, occ)
	}
	if a.minFree() <= b.minFree() {
		return a.takeAt(t, occ)
	}
	return b.takeAt(t, occ)
}

func minFreeEither(a, b *pool) int64 {
	switch {
	case a.empty():
		return b.minFree()
	case b.empty():
		return a.minFree()
	}
	am, bm := a.minFree(), b.minFree()
	if am < bm {
		return am
	}
	return bm
}

// storeWindow tracks in-flight stores for load-store ordering.
type storeWindow struct {
	lo, hi []uint64 // address ranges [lo,hi)
	ready  []int64  // cycle store data is ready (forwarding source)
	head   int
}

func newStoreWindow(n int) *storeWindow {
	return &storeWindow{lo: make([]uint64, n), hi: make([]uint64, n), ready: make([]int64, n)}
}

func (w *storeWindow) add(lo, hi uint64, ready int64) {
	w.lo[w.head], w.hi[w.head], w.ready[w.head] = lo, hi, ready
	w.head = (w.head + 1) % len(w.lo)
}

// conflictReady returns the latest data-ready time among stores overlapping
// [lo,hi), or 0 if none conflict.
func (w *storeWindow) conflictReady(lo, hi uint64) int64 {
	var r int64
	for i := range w.lo {
		if w.lo[i] < hi && lo < w.hi[i] && w.ready[i] > r {
			r = w.ready[i]
		}
	}
	return r
}

// vecRange computes the byte range touched by a strided vector access.
func vecRange(base uint64, stride int64, n, size int) (lo, hi uint64) {
	if n <= 0 {
		return base, base
	}
	last := base + uint64(int64(n-1)*stride)
	lo, hi = base, last
	if last < base {
		lo, hi = last, base
	}
	return lo, hi + uint64(size)
}

const regKeySpace = 8 * 64

func regKey(r isa.Reg) int { return int(r.Kind)<<6 | int(r.Idx) }

// Sim runs programs on one processor configuration and memory model.
// Obs, when non-nil, receives one obs.Event per dynamic instruction; a nil
// observer is free (Run only assembles events when one is attached, and no
// timing or counter depends on observation).
type Sim struct {
	Cfg Config
	Mem mem.Model
	Obs obs.Observer
}

// New creates a simulator from a configuration and a memory model.
func New(cfg Config, m mem.Model) *Sim {
	cfg.Validate()
	return &Sim{Cfg: cfg, Mem: m}
}

// staticInst caches the per-static-instruction facts the timing loop needs,
// hoisting the Op.Info() map lookups and DepsOf normalisation out of the
// per-dynamic-instruction path.
type staticInst struct {
	lat     int64
	class   isa.Class
	isMem   bool
	isBR    bool  // unconditional branch (always predicted taken)
	dstKey  int32 // regKey of the destination, -1 if none
	dstKind isa.RegKind
	nsrc    uint8
	srcKeys [4]int32
}

// buildStatics computes the staticInst table for a program; it runs once
// per Run, then every dynamic instruction is a single slice index.
func buildStatics(p *isa.Program) []staticInst {
	sts := make([]staticInst, len(p.Insts))
	for i := range p.Insts {
		in := &p.Insts[i]
		info := in.Op.Info()
		dst, srcs := isa.DepsOf(in)
		st := &sts[i]
		st.lat, st.class = int64(info.Lat), info.Class
		st.isMem = info.Class.IsMem()
		st.isBR = in.Op == isa.BR
		st.dstKey = -1
		if dst.Valid() {
			st.dstKey, st.dstKind = int32(regKey(dst)), dst.Kind
		}
		for _, src := range srcs {
			if !src.Valid() {
				break
			}
			st.srcKeys[st.nsrc] = int32(regKey(src))
			st.nsrc++
		}
	}
	return sts
}

// staticsAuxKey keys the memoized staticInst table in a trace's aux cache.
type staticsAuxKey struct{}

// staticsForTrace returns the staticInst table for a recorded trace,
// memoized on the trace: the table is a pure function of the immutable
// program, and rebuilding it (one Op.Info map lookup per static) otherwise
// dominates short sampled replays.
func staticsForTrace(tr *trace.Trace) []staticInst {
	if v, ok := tr.Aux(staticsAuxKey{}); ok {
		return v.([]staticInst)
	}
	sts := buildStatics(tr.Program())
	tr.SetAux(staticsAuxKey{}, sts)
	return sts
}

// staticsFor resolves the staticInst table for any source, memoizing via
// the trace when the source is a recorded-trace reader.
func staticsFor(src trace.Source) []staticInst {
	if rd, ok := src.(*trace.Reader); ok {
		return staticsForTrace(rd.Trace())
	}
	return buildStatics(src.Program())
}

// runState holds every piece of per-run mutable timing state. Pooling it
// (statePool) lets repeated runs — and the per-window restarts of sampled
// runs — reuse all allocations: after the first run of a given
// configuration, Run allocates only the statics table.
type runState struct {
	pred    *bimodal
	targets *btb

	intS, intC *pool
	fpS, fpC   *pool
	medS, medC *pool
	ports      *pool

	dispatchSlots slots
	commitSlots   slots
	issueSlots    *wideSlots

	robRing []int64
	lsqRing []int64
	lsqHead int

	renameRing [8][]int64
	renameHead [8]int

	lastWriter [regKeySpace]int64
	stores     *storeWindow

	// Span cursors: runSpan loads these into locals on entry and stores
	// them back on exit, so a run can be split across several spans.
	fetchCycle, lastDispatch, lastCommit int64
	fetchUsed                            int
	idx                                  uint64

	// Cycle-attribution state: profFrontier is the last cycle already
	// accounted for (-1 before anything commits, so the telescoping sum of
	// frontier advances is exactly lastCommit+1 == Cycles), and
	// redirectCycle marks a fetch cycle installed by a mispredict redirect
	// so the refill bubble is attributed to Mispredict, not Frontend.
	profFrontier, redirectCycle int64

	// ev is the observer event scratch; observers that retain an event past
	// the Observe call must copy it (the obs contract), so reusing one
	// backing struct per state is safe and keeps the hot loop allocation-free.
	ev obs.Event
}

var statePool sync.Pool

// acquireState returns a runState sized and reset for cfg, reusing pooled
// allocations when the sizes match.
func acquireState(cfg *Config) *runState {
	rs, _ := statePool.Get().(*runState)
	if rs == nil {
		rs = &runState{}
	}
	rs.ensure(cfg)
	return rs
}

func releaseState(rs *runState) { statePool.Put(rs) }

// ensurePool resizes (or clears) a functional-unit pool in place.
func ensurePool(pp **pool, n int) {
	if p := *pp; p != nil && len(p.busy) == n {
		clear(p.busy)
		return
	}
	*pp = newPool(n)
}

// ensureRing resizes (or clears) an int64 ring; n <= 0 yields nil, which the
// rename path tests for (a nil ring means unlimited in-flight writes).
func ensureRing(r []int64, n int) []int64 {
	if n <= 0 {
		return nil
	}
	if len(r) != n {
		return make([]int64, n)
	}
	clear(r)
	return r
}

// reset re-anchors the issue window at base, clearing every cell but keeping
// any grown capacity.
func (s *wideSlots) reset(base int64) {
	clear(s.used)
	s.base = base
}

// reset clears the in-flight store window.
func (w *storeWindow) reset() {
	clear(w.lo)
	clear(w.hi)
	clear(w.ready)
	w.head = 0
}

// ensure makes the state match cfg's structure sizes and resets everything
// to run-start values (identical to a freshly allocated state).
func (rs *runState) ensure(cfg *Config) {
	if rs.pred != nil && len(rs.pred.ctr) == cfg.BimodalSize {
		for i := range rs.pred.ctr {
			rs.pred.ctr[i] = 1
		}
	} else {
		rs.pred = newBimodal(cfg.BimodalSize)
	}
	if rs.targets != nil && len(rs.targets.tag) == cfg.BTBEntries {
		for i := range rs.targets.tag {
			rs.targets.tag[i] = -1
		}
	} else {
		rs.targets = newBTB(cfg.BTBEntries)
	}

	ensurePool(&rs.intS, cfg.IntSimple)
	ensurePool(&rs.intC, cfg.IntComplex)
	ensurePool(&rs.fpS, cfg.FPSimple)
	ensurePool(&rs.fpC, cfg.FPComplex)
	ensurePool(&rs.medS, cfg.MedSimple)
	ensurePool(&rs.medC, cfg.MedComplex)
	ensurePool(&rs.ports, cfg.MemPorts)

	rs.dispatchSlots = slots{width: cfg.Width}
	rs.commitSlots = slots{width: cfg.Width}
	if rs.issueSlots != nil && rs.issueSlots.width == int32(cfg.Width) {
		rs.issueSlots.reset(0)
	} else {
		rs.issueSlots = newWideSlots(cfg.Width)
	}

	rs.robRing = ensureRing(rs.robRing, cfg.ROBSize)
	rs.lsqRing = ensureRing(rs.lsqRing, cfg.LSQSize)
	rs.lsqHead = 0
	for k := isa.RegKind(0); k < 8; k++ {
		rs.renameRing[k] = ensureRing(rs.renameRing[k], cfg.inFlight(k))
		rs.renameHead[k] = 0
	}
	clear(rs.lastWriter[:])
	if rs.stores != nil && len(rs.stores.lo) == cfg.LSQSize {
		rs.stores.reset()
	} else {
		rs.stores = newStoreWindow(cfg.LSQSize)
	}

	rs.fetchCycle, rs.lastDispatch, rs.lastCommit = 0, 0, 0
	rs.fetchUsed = 0
	rs.idx = 0
	rs.profFrontier, rs.redirectCycle = -1, -1
}

// Run consumes a dynamic instruction stream to completion (or maxInsts
// dynamic instructions, whichever comes first) under the timing model and
// returns the result. The source may be a live emulator (trace.NewLive) or
// a recorded trace reader — both produce identical results; a fresh source
// must be supplied for a fresh run.
func (s *Sim) Run(src trace.Source, maxInsts uint64) (Result, error) {
	statics := staticsFor(src)
	rs := acquireState(&s.Cfg)
	defer releaseState(rs)

	var res Result
	if _, err := s.runSpan(rs, src, statics, &res, maxInsts, s.Obs); err != nil {
		return res, err
	}

	res.Cycles = rs.lastCommit + 1
	res.Insts = rs.idx
	if rs.idx == 0 {
		// Nothing committed: the whole (degenerate) run was front-end time.
		res.Profile.Frontend = res.Cycles
	}
	res.Mem = s.Mem.Stats()
	return res, src.Err()
}

// runSpan advances the detailed pipeline until rs.idx reaches limit, the
// stream ends (more == false) or the source faults. Counters and profile
// buckets accumulate into res; Cycles/Insts/Mem finalisation is the
// caller's job, which is what lets Run and the sampled-window controller
// share the exact same loop.
func (s *Sim) runSpan(rs *runState, src trace.Source, statics []staticInst, res *Result, limit uint64, observer obs.Observer) (more bool, err error) {
	cfg := &s.Cfg
	memModel := s.Mem

	pred, targets := rs.pred, rs.targets
	intS, intC := rs.intS, rs.intC
	fpS, fpC := rs.fpS, rs.fpC
	medS, medC := rs.medS, rs.medC
	ports := rs.ports
	dispatchSlots, commitSlots := &rs.dispatchSlots, &rs.commitSlots
	issueSlots := rs.issueSlots
	robRing, lsqRing := rs.robRing, rs.lsqRing
	lsqHead := rs.lsqHead
	renameRing := &rs.renameRing
	renameHead := &rs.renameHead
	lastWriter := &rs.lastWriter
	stores := rs.stores

	fetchCycle, lastDispatch, lastCommit := rs.fetchCycle, rs.lastDispatch, rs.lastCommit
	fetchUsed := rs.fetchUsed
	idx := rs.idx
	prof := &res.Profile
	profFrontier, redirectCycle := rs.profFrontier, rs.redirectCycle

	vecRate := cfg.MemPorts * cfg.MemPortLanes

	// Observer scratch, hoisted out of the loop: memBefore only holds a
	// meaningful snapshot within one iteration, guarded by observer != nil.
	var memBefore mem.Stats

	more = true
loop:
	for idx < limit {
		d, ok := src.Next()
		if !ok {
			more = false
			break
		}
		st := &statics[d.SI]
		res.ByClass[st.class]++

		// ---- fetch ----
		if fetchUsed >= cfg.Width {
			fetchCycle++
			fetchUsed = 0
		}
		f := fetchCycle
		fetchUsed++

		// ---- dispatch (rename + ROB/LSQ allocation) ----
		earliest := f + int64(cfg.FrontDepth)
		frontWait := earliest - lastDispatch // fetch arrived behind dispatch
		if frontWait < 0 {
			frontWait = 0
		}
		if earliest < lastDispatch {
			earliest = lastDispatch
		}
		flowEarliest := earliest
		if c := robRing[idx%uint64(cfg.ROBSize)]; c+1 > earliest {
			earliest = c + 1
		}
		isMem := st.isMem
		if isMem {
			if c := lsqRing[lsqHead]; c+1 > earliest {
				earliest = c + 1
			}
		}
		if st.dstKey >= 0 {
			ring := renameRing[st.dstKind]
			if ring != nil {
				if c := ring[renameHead[st.dstKind]]; c+1 > earliest {
					earliest = c + 1
				}
			}
		}
		structWait := earliest - flowEarliest // ROB/LSQ/rename back-pressure
		dispatch := dispatchSlots.take(earliest)
		frontWait += dispatch - earliest // dispatch-width overflow
		lastDispatch = dispatch
		issueSlots.advance(dispatch)

		// ---- operand readiness ----
		ready := dispatch + 1
		for _, key := range st.srcKeys[:st.nsrc] {
			if t := lastWriter[key]; t > ready {
				ready = t
			}
		}

		// ---- issue + execute ----
		// Alongside the timing, each arm records how long the instruction
		// waited at each stage (fuWait: unit busy, issWait: no issue slot,
		// memWait: load data outstanding) for the cycle attribution below,
		// and the cycle it won an issue slot (issueAt) for the observer.
		var complete int64
		var issWait, fuWait, memWait, issueAt int64
		if observer != nil && isMem {
			memBefore = memModel.Stats()
		}
		lat := st.lat
		switch st.class {
		case isa.ClassNop:
			complete = ready
			issueAt = ready

		case isa.ClassIntSimple, isa.ClassBranch, isa.ClassCtl:
			t0 := max(ready, minFreeEither(intS, intC))
			c := issueSlots.take(t0)
			issueAt = c
			start := takeEither(intS, intC, c, 1)
			complete = start + lat
			fuWait, issWait = (t0-ready)+(start-c), c-t0

		case isa.ClassIntComplex:
			t0 := max(ready, intC.minFree())
			c := issueSlots.take(t0)
			issueAt = c
			start := intC.takeAt(c, 1)
			complete = start + lat
			fuWait, issWait = (t0-ready)+(start-c), c-t0

		case isa.ClassFPSimple:
			t0 := max(ready, minFreeEither(fpS, fpC))
			c := issueSlots.take(t0)
			issueAt = c
			start := takeEither(fpS, fpC, c, 1)
			complete = start + lat
			fuWait, issWait = (t0-ready)+(start-c), c-t0

		case isa.ClassFPComplex:
			t0 := max(ready, fpC.minFree())
			c := issueSlots.take(t0)
			issueAt = c
			start := fpC.takeAt(c, 1)
			complete = start + lat
			fuWait, issWait = (t0-ready)+(start-c), c-t0

		case isa.ClassMedSimple:
			t0 := max(ready, minFreeEither(medS, medC))
			c := issueSlots.take(t0)
			issueAt = c
			start := takeEither(medS, medC, c, 1)
			complete = start + lat
			fuWait, issWait = (t0-ready)+(start-c), c-t0
			res.WordOps++

		case isa.ClassMedComplex:
			t0 := max(ready, medC.minFree())
			c := issueSlots.take(t0)
			issueAt = c
			start := medC.takeAt(c, 1)
			complete = start + lat
			fuWait, issWait = (t0-ready)+(start-c), c-t0
			res.WordOps++

		case isa.ClassMomSimple, isa.ClassMomComplex:
			// A matrix operation executes VL word-operations on one
			// multimedia unit at MedLanes words per cycle; the result is
			// architecturally complete when the last word drains.
			occ := occupancy(d.VL, cfg.MedLanes)
			var t0, start int64
			if st.class == isa.ClassMomSimple {
				t0 = max(ready, minFreeEither(medS, medC))
				c := issueSlots.take(t0)
				issueAt = c
				start = takeEither(medS, medC, c, occ)
				fuWait, issWait = (t0-ready)+(start-c), c-t0
			} else {
				t0 = max(ready, medC.minFree())
				c := issueSlots.take(t0)
				issueAt = c
				start = medC.takeAt(c, occ)
				fuWait, issWait = (t0-ready)+(start-c), c-t0
			}
			complete = start + occ - 1 + lat
			res.WordOps += uint64(d.VL)

		case isa.ClassLoad:
			res.Loads++
			occ := int64(1)
			if unaligned(d.EA, d.Size) {
				occ = 2 // the port splits it into two aligned accesses
			}
			t0 := max(ready, ports.minFree())
			c := issueSlots.take(t0)
			issueAt = c
			start := ports.takeAt(c, occ)
			agDone := start + occ
			lo, hi := d.EA, d.EA+uint64(d.Size)
			memDone := memModel.Load(agDone, d.EA, d.Size)
			if fwd := stores.conflictReady(lo, hi); fwd > 0 {
				if fwd+1 > memDone {
					memDone = fwd + 1
				}
			}
			complete = memDone
			fuWait, issWait = (t0-ready)+(start-c), c-t0
			memWait = complete - agDone
			res.WordOps++

		case isa.ClassStore:
			res.Stores++
			t0 := max(ready, ports.minFree())
			c := issueSlots.take(t0)
			issueAt = c
			start := ports.takeAt(c, 1)
			complete = max(start+1, ready)
			stores.add(d.EA, d.EA+uint64(d.Size), complete)
			fuWait, issWait = (t0-ready)+(start-c), c-t0
			res.WordOps++

		case isa.ClassMomLoad:
			res.Loads++
			occ := occupancy(d.NElem, vecRate)
			var start int64
			if memModel.VectorReservesAllPorts() {
				t0 := max(ready, ports.minFree())
				c := issueSlots.take(t0)
				issueAt = c
				start = ports.takeAll(c, occ)
				fuWait, issWait = (t0-ready)+(start-c), c-t0
			} else {
				t0 := max(ready, ports.minFree())
				c := issueSlots.take(t0)
				issueAt = c
				start = ports.takeAt(c, 1)
				fuWait, issWait = (t0-ready)+(start-c), c-t0
			}
			lo, hi := vecRange(d.EA, d.Stride, d.NElem, d.Size)
			memDone := memModel.LoadVector(start+1, d.EA, d.Stride, d.NElem, vecRate)
			if fwd := stores.conflictReady(lo, hi); fwd > 0 && fwd+1 > memDone {
				memDone = fwd + 1
			}
			complete = memDone
			if memWait = complete - (start + occ); memWait < 0 {
				memWait = 0
			}
			res.WordOps += uint64(d.NElem)

		case isa.ClassMomStore:
			res.Stores++
			occ := occupancy(d.NElem, vecRate)
			var start int64
			if memModel.VectorReservesAllPorts() {
				t0 := max(ready, ports.minFree())
				c := issueSlots.take(t0)
				issueAt = c
				start = ports.takeAll(c, occ)
				fuWait, issWait = (t0-ready)+(start-c), c-t0
			} else {
				t0 := max(ready, ports.minFree())
				c := issueSlots.take(t0)
				issueAt = c
				start = ports.takeAt(c, 1)
				fuWait, issWait = (t0-ready)+(start-c), c-t0
			}
			complete = max(start+occ, ready)
			lo, hi := vecRange(d.EA, d.Stride, d.NElem, d.Size)
			stores.add(lo, hi, complete)
			res.WordOps += uint64(d.NElem)

		default:
			err = fmt.Errorf("cpu: unhandled class %v", st.class)
			break loop
		}

		// ---- commit (in order, width per cycle) ----
		preCommit := commitSlots.take(max(complete+1, lastCommit))
		commit := preCommit
		switch st.class {
		case isa.ClassStore:
			if acc := memModel.Store(commit, d.EA, d.Size); acc > commit {
				commit = commitSlots.take(acc)
			}
		case isa.ClassMomStore:
			if acc := memModel.StoreVector(commit, d.EA, d.Stride, d.NElem, vecRate); acc > commit {
				commit = commitSlots.take(acc)
			}
		}

		// ---- cycle attribution ----
		// The commit frontier advanced adv cycles while graduating this
		// instruction: one is the useful commit cycle, any gap between the
		// store-accept push and preCommit stalled on the write buffer, and
		// the rest is charged to the stage this instruction waited on
		// longest (ties go to the earlier pipeline stage in list order).
		var evCommitted, evExecGap, evStoreGap int64
		evBucket := obs.BucketDepLatency
		if adv := commit - profFrontier; adv > 0 {
			prof.Commit++
			evCommitted = 1
			execGap := preCommit - profFrontier - 1
			if execGap < 0 {
				execGap = 0
			}
			if storeGap := adv - 1 - execGap; storeGap > 0 {
				prof.StoreCommit += storeGap
				evStoreGap = storeGap
			}
			if execGap > 0 {
				cause, best := &prof.DepLatency, ready-(dispatch+1)
				bucket := obs.BucketDepLatency
				if frontWait > best {
					cause, best = &prof.Frontend, frontWait
					bucket = obs.BucketFrontend
					if f == redirectCycle {
						cause = &prof.Mispredict
						bucket = obs.BucketMispredict
					}
				}
				if structWait > best {
					cause, best = &prof.RenameROB, structWait
					bucket = obs.BucketRenameROB
				}
				if issWait > best {
					cause, best = &prof.IssueQueue, issWait
					bucket = obs.BucketIssueQueue
				}
				if fuWait > best {
					cause, best = &prof.FU, fuWait
					bucket = obs.BucketFU
				}
				if memWait > best {
					cause = &prof.MemWait
					bucket = obs.BucketMemWait
				}
				*cause += execGap
				evBucket = bucket
				evExecGap = execGap
			}
		}
		profFrontier = commit
		lastCommit = commit
		robRing[idx%uint64(cfg.ROBSize)] = commit
		if isMem {
			lsqRing[lsqHead] = commit
			lsqHead = (lsqHead + 1) % cfg.LSQSize
		}
		if st.dstKey >= 0 {
			lastWriter[st.dstKey] = complete
			if ring := renameRing[st.dstKind]; ring != nil {
				ring[renameHead[st.dstKind]] = commit
				renameHead[st.dstKind] = (renameHead[st.dstKind] + 1) % len(ring)
			}
		}

		if observer != nil {
			emitEvent(observer, memModel, &memBefore, &rs.ev, idx, d, st, isMem,
				f, dispatch, issueAt, complete, commit,
				evCommitted, evBucket, evExecGap, evStoreGap)
		}

		// ---- branch resolution and fetch redirect ----
		if st.class == isa.ClassBranch {
			res.Branches++
			predTaken := st.isBR || pred.predict(d.SI)
			btbHit := targets.hit(d.SI)
			if !st.isBR {
				pred.update(d.SI, d.Taken)
			}
			if d.Taken {
				targets.insert(d.SI)
			}
			switch {
			case d.Taken != predTaken:
				res.Mispredicts++
				r := complete + 1 + int64(cfg.MispredictPenalty)
				if r > fetchCycle {
					fetchCycle = r
					redirectCycle = r
				}
				fetchUsed = 0
			case d.Taken && btbHit:
				// Correctly predicted taken: redirect next cycle, the taken
				// branch ends this fetch group.
				fetchCycle = f + 1
				fetchUsed = 0
			case d.Taken: // predicted taken but BTB miss: decode-time bubble
				res.BTBMisses++
				fetchCycle = f + 2
				fetchUsed = 0
			}
		}
		idx++
	}

	rs.lsqHead = lsqHead
	rs.fetchCycle, rs.lastDispatch, rs.lastCommit = fetchCycle, lastDispatch, lastCommit
	rs.fetchUsed = fetchUsed
	rs.idx = idx
	rs.profFrontier, rs.redirectCycle = profFrontier, redirectCycle
	return more, err
}

// emitEvent assembles and publishes one instruction's observability event.
// It is deliberately out-of-line (and must stay that way): keeping the
// event assembly out of Run's loop body keeps the nil-observer fast path's
// code layout untouched.
//
// The event struct is written through a caller-owned scratch pointer (the
// obs contract lets the core reuse backing storage), so the observed path
// allocates nothing per instruction either.
//
//go:noinline
func emitEvent(observer obs.Observer, memModel mem.Model, memBefore *mem.Stats,
	ev *obs.Event, idx uint64, d emu.Dyn, st *staticInst, isMem bool,
	f, dispatch, issueAt, complete, commit int64,
	evCommitted int64, evBucket obs.Bucket, evExecGap, evStoreGap int64) {
	*ev = obs.Event{
		Seq: idx, PC: d.SI, Class: st.class, VL: d.VL, Taken: d.Taken,
		Fetch: f, Dispatch: dispatch, Issue: issueAt,
		Complete: complete, Commit: commit,
		Committed: evCommitted, Bucket: evBucket,
		ExecGap: evExecGap, StoreGap: evStoreGap,
	}
	if isMem {
		ev.Mem = mem.Diff(*memBefore, memModel.Stats())
	}
	observer.Observe(ev)
}

// occupancy returns how many cycles n elements occupy at rate per cycle.
func occupancy(n, rate int) int64 {
	if n < 1 {
		return 1
	}
	if rate < 1 {
		rate = 1
	}
	return int64((n + rate - 1) / rate)
}

// unaligned reports whether a scalar access is misaligned for its size.
func unaligned(addr uint64, size int) bool {
	if size <= 1 {
		return false
	}
	return addr%uint64(size) != 0
}
