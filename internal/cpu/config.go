// Package cpu implements the cycle-level out-of-order superscalar timing
// model: an R10000-like core with a dedicated multimedia unit and register
// file, configurable from 1-way to 8-way issue exactly as Table 1 of the
// paper, driven by the dynamic instruction stream of the functional
// emulator (trace-driven timing, as ATOM+Jinks in the paper).
package cpu

import (
	"fmt"

	"repro/internal/isa"
)

// Config describes one processor configuration (a column of Table 1 plus the
// multimedia register file row of Table 2 appropriate to the ISA).
type Config struct {
	Name  string
	Width int // fetch = dispatch = issue = commit width

	ROBSize int
	LSQSize int

	BimodalSize int // entries of 2-bit counters
	BTBEntries  int

	IntSimple, IntComplex int
	FPSimple, FPComplex   int
	MedSimple, MedComplex int
	MedLanes              int // vector lanes per multimedia unit (MOM)

	MemPorts     int
	MemPortLanes int // vector elements per cycle per memory port

	// Physical register counts (logical counts come from package isa).
	IntPhys, FPPhys, MedPhys, AccPhys, MomPhys, MomAccPhys int

	// FrontDepth is the number of front-end stages between fetch and
	// dispatch; MispredictPenalty is the extra redirect delay beyond branch
	// resolution.
	FrontDepth        int
	MispredictPenalty int
}

// Validate panics on nonsensical configurations (these are build-time
// tables, so failing loudly is correct).
func (c *Config) Validate() {
	if c.Width < 1 || c.ROBSize < c.Width || c.LSQSize < 1 {
		panic(fmt.Sprintf("cpu: bad config %+v", c))
	}
	if c.IntSimple+c.IntComplex == 0 || c.MemPorts == 0 {
		panic("cpu: config needs at least one int unit and one memory port")
	}
}

// table1 gives the width-dependent core parameters from Table 1.
var table1 = map[int]Config{
	1: {Width: 1, ROBSize: 8, LSQSize: 4, BimodalSize: 512, BTBEntries: 64,
		IntSimple: 0, IntComplex: 1, FPSimple: 0, FPComplex: 1,
		MedSimple: 0, MedComplex: 1, MedLanes: 1,
		MemPorts: 1, MemPortLanes: 1, IntPhys: 40, FPPhys: 40},
	2: {Width: 2, ROBSize: 16, LSQSize: 8, BimodalSize: 2048, BTBEntries: 256,
		IntSimple: 1, IntComplex: 1, FPSimple: 1, FPComplex: 1,
		MedSimple: 1, MedComplex: 1, MedLanes: 1,
		MemPorts: 1, MemPortLanes: 1, IntPhys: 48, FPPhys: 48},
	4: {Width: 4, ROBSize: 32, LSQSize: 16, BimodalSize: 4096, BTBEntries: 512,
		IntSimple: 2, IntComplex: 1, FPSimple: 2, FPComplex: 1,
		MedSimple: 1, MedComplex: 1, MedLanes: 1,
		MemPorts: 2, MemPortLanes: 1, IntPhys: 64, FPPhys: 64},
	8: {Width: 8, ROBSize: 64, LSQSize: 32, BimodalSize: 16384, BTBEntries: 1024,
		IntSimple: 2, IntComplex: 2, FPSimple: 2, FPComplex: 2,
		MedSimple: 2, MedComplex: 2, MedLanes: 1,
		MemPorts: 4, MemPortLanes: 1, IntPhys: 96, FPPhys: 96},
}

// mediaRF gives the multimedia register file configuration per ISA extension
// (Table 2 for the 4-way machine, scaled with width like the int/fp files).
type mediaRF struct {
	med, acc, mom, momAcc int
}

var table2 = map[isa.Ext]map[int]mediaRF{
	isa.ExtAlpha: {1: {}, 2: {}, 4: {}, 8: {}},
	isa.ExtMMX: {
		1: {med: 40}, 2: {med: 48}, 4: {med: 64}, 8: {med: 96},
	},
	isa.ExtMDMX: {
		1: {med: 36, acc: 8}, 2: {med: 42, acc: 12},
		4: {med: 52, acc: 16}, 8: {med: 78, acc: 24},
	},
	isa.ExtMOM: {
		1: {mom: 18, momAcc: 3}, 2: {mom: 19, momAcc: 3},
		4: {mom: 20, momAcc: 4}, 8: {mom: 24, momAcc: 6},
	},
}

// NewConfig builds the processor configuration for a given issue width
// (1, 2, 4 or 8) and ISA extension. It reproduces Table 1, including the
// 8-way MOM peculiarity: instead of 4 single-lane multimedia units and 4
// single-lane memory ports, MOM gets 2 units of width 2 and 2 double-lane
// memory ports.
func NewConfig(width int, ext isa.Ext) Config {
	base, ok := table1[width]
	if !ok {
		panic(fmt.Sprintf("cpu: unsupported width %d", width))
	}
	c := base
	c.Name = fmt.Sprintf("%d-way %s", width, ext)
	c.FrontDepth = 3
	c.MispredictPenalty = 2
	rf := table2[ext][width]
	c.MedPhys, c.AccPhys, c.MomPhys, c.MomAccPhys = rf.med, rf.acc, rf.mom, rf.momAcc
	if ext == isa.ExtMOM && width == 8 {
		// 2 multimedia units of width 2 (Table 1: "4 - (2x2)"), and memory
		// ports able to leverage two vector elements per cycle.
		c.MedSimple, c.MedComplex, c.MedLanes = 1, 1, 2
		c.MemPorts, c.MemPortLanes = 2, 2
	}
	// MOM registers also exist on narrower machines with a single lane.
	c.Validate()
	return c
}

// inFlight returns how many in-flight destination writes of the given kind
// the rename stage allows (physical minus logical registers). A zero result
// for a kind a program never writes is harmless.
func (c *Config) inFlight(kind isa.RegKind) int {
	switch kind {
	case isa.KindInt, isa.KindVL:
		return c.IntPhys - isa.NumInt
	case isa.KindFP:
		return c.FPPhys - isa.NumFP
	case isa.KindMedia:
		return c.MedPhys - isa.NumMedia
	case isa.KindAcc:
		return c.AccPhys - isa.NumAcc
	case isa.KindMom:
		return c.MomPhys - isa.NumMom
	case isa.KindMomAcc:
		return c.MomAccPhys - isa.NumMomAcc
	}
	return 0
}
