package cpu_test

// Tests for the cpu-level sampled-simulation engine: spec validation, the
// profile telescoping identity over aggregated windows, determinism, and
// the equivalence of the bulk (trace.Reader) and generic (any Source)
// functional-warming paths.

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/trace"
)

func TestSampleSpecValidate(t *testing.T) {
	cases := []struct {
		spec cpu.SampleSpec
		ok   bool
	}{
		{cpu.SampleSpec{}, true},             // disabled
		{cpu.SampleSpec{Period: 100}, false}, // period without interval
		{cpu.SampleSpec{Warmup: 10}, false},  // warmup without interval
		{cpu.SampleSpec{Period: 1000, Warmup: 100, Interval: 100}, true},
		{cpu.SampleSpec{Period: 200, Warmup: 100, Interval: 100}, false}, // nothing left to skip
		{cpu.SampleSpec{Period: 50, Interval: 100}, false},               // interval exceeds period
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.ok && err != nil {
			t.Errorf("%+v: unexpected error %v", c.spec, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%+v: validation passed, want error", c.spec)
		}
	}
}

// capture records one test kernel for the sampled-path tests.
func captureKernel(t *testing.T, name string, ext isa.Ext) *trace.Trace {
	t.Helper()
	k, err := kernels.ByName(name, kernels.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Capture(emu.New(k.Build(ext)), 50_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

var testSpec = cpu.SampleSpec{Period: 700, Warmup: 60, Interval: 100}

// TestSampledProfileIdentity: the aggregated measured-interval profile must
// telescope exactly like an exact run's — Profile.Total() == Cycles — and
// the Sampled block must partition the stream.
func TestSampledProfileIdentity(t *testing.T) {
	for _, ext := range []isa.Ext{isa.ExtAlpha, isa.ExtMOM} {
		tr := captureKernel(t, "idct", ext)
		sim := cpu.New(cpu.NewConfig(4, ext), mem.NewHierarchy(mem.HierConfig{Width: 4, Mode: mem.ModeMultiAddress}))
		res, err := sim.RunSampled(tr.Reader(), 50_000_000, testSpec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sampled == nil {
			t.Fatal("no Sampled block")
		}
		if res.Sampled.Intervals == 0 {
			t.Fatal("no measured intervals")
		}
		if got := res.Profile.Total(); got != res.Cycles {
			t.Errorf("%v: profile total %d != cycles %d", ext, got, res.Cycles)
		}
		s := res.Sampled
		if s.MeasuredInsts+s.WarmupInsts+s.SkippedInsts != s.TotalInsts {
			t.Errorf("%v: measured %d + warmup %d + skipped %d != total %d",
				ext, s.MeasuredInsts, s.WarmupInsts, s.SkippedInsts, s.TotalInsts)
		}
		if s.TotalInsts != tr.Records() {
			t.Errorf("%v: total %d insts, trace has %d", ext, s.TotalInsts, tr.Records())
		}
		if res.Insts != s.MeasuredInsts {
			t.Errorf("%v: result insts %d != measured %d", ext, res.Insts, s.MeasuredInsts)
		}
	}
}

// TestSampledDisabledIsRun: a disabled spec must be Run, field for field.
func TestSampledDisabledIsRun(t *testing.T) {
	tr := captureKernel(t, "motion1", isa.ExtMOM)
	mk := func() *cpu.Sim {
		return cpu.New(cpu.NewConfig(4, isa.ExtMOM), mem.NewHierarchy(mem.HierConfig{Width: 4, Mode: mem.ModeMultiAddress}))
	}
	exact, err := mk().Run(tr.Reader(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	via, err := mk().RunSampled(tr.Reader(), 50_000_000, cpu.SampleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact, via) {
		t.Errorf("disabled RunSampled differs from Run:\n%+v\nvs\n%+v", via, exact)
	}
}

// TestSampledWarmPathsAgree: a recorded trace takes the bulk WarmNext
// fast-forward; a live emulator takes the generic per-record loop. Both
// must warm identically, so the two sampled runs agree field for field.
func TestSampledWarmPathsAgree(t *testing.T) {
	for _, ext := range []isa.Ext{isa.ExtAlpha, isa.ExtMMX, isa.ExtMOM} {
		k, err := kernels.ByName("idct", kernels.ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		tr := captureKernel(t, "idct", ext)
		mk := func() *cpu.Sim {
			return cpu.New(cpu.NewConfig(4, ext), mem.NewHierarchy(mem.HierConfig{Width: 4, Mode: mem.ModeMultiAddress}))
		}
		bulk, err := mk().RunSampled(tr.Reader(), 50_000_000, testSpec)
		if err != nil {
			t.Fatal(err)
		}
		generic, err := mk().RunSampled(trace.NewLive(emu.New(k.Build(ext))), 50_000_000, testSpec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bulk, generic) {
			t.Errorf("%v: bulk-warm and generic-warm sampled runs differ:\n%+v\nvs\n%+v", ext, bulk, generic)
		}
	}
}

// TestSampledDeterministic: two sampled replays of one trace are identical.
func TestSampledDeterministic(t *testing.T) {
	tr := captureKernel(t, "idct", isa.ExtMOM)
	mk := func() *cpu.Sim {
		return cpu.New(cpu.NewConfig(4, isa.ExtMOM), mem.NewHierarchy(mem.HierConfig{Width: 4, Mode: mem.ModeMultiAddress}))
	}
	a, err := mk().RunSampled(tr.Reader(), 50_000_000, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().RunSampled(tr.Reader(), 50_000_000, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two sampled replays differ:\n%+v\nvs\n%+v", a, b)
	}
}
