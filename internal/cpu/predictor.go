package cpu

// bimodal is a classic 2-bit saturating-counter branch direction predictor
// indexed by static instruction index.
type bimodal struct {
	ctr  []uint8
	mask uint32
}

func newBimodal(size int) *bimodal {
	if size&(size-1) != 0 || size == 0 {
		panic("cpu: bimodal size must be a power of two")
	}
	b := &bimodal{ctr: make([]uint8, size), mask: uint32(size - 1)}
	for i := range b.ctr {
		b.ctr[i] = 1 // weakly not-taken
	}
	return b
}

// snapshot returns a copy of the counter table (checkpoint capture).
func (b *bimodal) snapshot() []uint8 {
	return append([]uint8(nil), b.ctr...)
}

// restore overwrites the counter table from a snapshot of the same size.
func (b *bimodal) restore(ctr []uint8) {
	copy(b.ctr, ctr)
}

func (b *bimodal) predict(si int) bool {
	return b.ctr[uint32(si)&b.mask] >= 2
}

func (b *bimodal) update(si int, taken bool) {
	c := &b.ctr[uint32(si)&b.mask]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// btb is a direct-mapped branch target buffer keyed by static instruction
// index. In a trace-driven model the target value itself is known; the BTB
// models whether the front end could redirect without a bubble.
type btb struct {
	tag  []int32
	mask uint32
}

func newBTB(entries int) *btb {
	if entries&(entries-1) != 0 || entries == 0 {
		panic("cpu: BTB entries must be a power of two")
	}
	t := &btb{tag: make([]int32, entries), mask: uint32(entries - 1)}
	for i := range t.tag {
		t.tag[i] = -1
	}
	return t
}

// snapshot returns a copy of the tag array (checkpoint capture).
func (t *btb) snapshot() []int32 {
	return append([]int32(nil), t.tag...)
}

// restore overwrites the tag array from a snapshot of the same size.
func (t *btb) restore(tag []int32) {
	copy(t.tag, tag)
}

func (t *btb) hit(si int) bool {
	return t.tag[uint32(si)&t.mask] == int32(si)
}

func (t *btb) insert(si int) {
	t.tag[uint32(si)&t.mask] = int32(si)
}
