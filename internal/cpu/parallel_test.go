package cpu_test

// Tests for the parallel (two-phase checkpoint) sampled path: bit-identity
// against the serial loop across memory models, invariance under the
// worker count, and the serial fallback when the preconditions fail.

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// parTestSpec has a skip span (Period-Warmup-Interval = 1640) long enough
// for the parallel path's drain gate; the shared testSpec (skip 540) is
// below it and exercises the fallback instead.
var parTestSpec = cpu.SampleSpec{Period: 1800, Warmup: 60, Interval: 100}

// parTestModels pairs each snapshot-capable memory model with an ISA whose
// code exercises it (the vector organisations need MOM vector accesses).
func parTestModels(width int) []struct {
	name string
	ext  isa.Ext
	mk   func() mem.Model
} {
	return []struct {
		name string
		ext  isa.Ext
		mk   func() mem.Model
	}{
		{"perfect", isa.ExtMOM, func() mem.Model { return mem.NewPerfect(1) }},
		{"conventional", isa.ExtAlpha, func() mem.Model {
			return mem.NewHierarchy(mem.HierConfig{Width: width, Mode: mem.ModeConventional})
		}},
		{"multi-address", isa.ExtMOM, func() mem.Model {
			return mem.NewHierarchy(mem.HierConfig{Width: width, Mode: mem.ModeMultiAddress})
		}},
		{"vector-cache", isa.ExtMOM, func() mem.Model {
			return mem.NewHierarchy(mem.HierConfig{Width: width, Mode: mem.ModeVectorCache})
		}},
		{"collapsing", isa.ExtMOM, func() mem.Model {
			return mem.NewHierarchy(mem.HierConfig{Width: width, Mode: mem.ModeCollapsing})
		}},
	}
}

// TestParallelSampledBitIdentity: the parallel path must reproduce the
// serial sampled result field for field — counters, cycles, Mem stats,
// IPC mean and stderr — for every memory-model organisation.
func TestParallelSampledBitIdentity(t *testing.T) {
	for _, kernel := range []string{"idct", "motion1"} {
		for _, m := range parTestModels(4) {
			tr := captureKernel(t, kernel, m.ext)
			serialSpec := parTestSpec
			serialSpec.Parallelism = 1
			serial, err := cpu.New(cpu.NewConfig(4, m.ext), m.mk()).RunSampled(tr.Reader(), 50_000_000, serialSpec)
			if err != nil {
				t.Fatal(err)
			}
			parSpec := parTestSpec
			parSpec.Parallelism = 4
			par, err := cpu.New(cpu.NewConfig(4, m.ext), m.mk()).RunSampled(tr.Reader(), 50_000_000, parSpec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("%s/%s: parallel sampled run differs from serial:\n%+v\nvs\n%+v",
					kernel, m.name, par, serial)
			}
		}
	}
}

// TestParallelWorkerCountInvariance: any worker count yields the identical
// result (the reduce is ordered, not arrival-ordered).
func TestParallelWorkerCountInvariance(t *testing.T) {
	tr := captureKernel(t, "idct", isa.ExtMOM)
	run := func(workers int) cpu.Result {
		spec := parTestSpec
		spec.Parallelism = workers
		sim := cpu.New(cpu.NewConfig(4, isa.ExtMOM), mem.NewHierarchy(mem.HierConfig{Width: 4, Mode: mem.ModeMultiAddress}))
		res, err := sim.RunSampled(tr.Reader(), 50_000_000, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(2)
	for _, workers := range []int{3, 7, 16} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("worker count %d changed the result:\n%+v\nvs\n%+v", workers, got, want)
		}
	}
}

// TestParallelShortSkipFallsBack: a skip span below the drain gate must
// fall back to the serial loop (and so still match it exactly).
func TestParallelShortSkipFallsBack(t *testing.T) {
	tr := captureKernel(t, "idct", isa.ExtMOM)
	mk := func() *cpu.Sim {
		return cpu.New(cpu.NewConfig(4, isa.ExtMOM), mem.NewHierarchy(mem.HierConfig{Width: 4, Mode: mem.ModeMultiAddress}))
	}
	serial, err := mk().RunSampled(tr.Reader(), 50_000_000, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec
	spec.Parallelism = 8
	par, err := mk().RunSampled(tr.Reader(), 50_000_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("short-skip parallel request differs from serial:\n%+v\nvs\n%+v", par, serial)
	}
}

// TestSampleSpecParallelismValidate: negative worker counts are rejected,
// and the recorded Sampled.Spec never carries the knob.
func TestSampleSpecParallelismValidate(t *testing.T) {
	bad := cpu.SampleSpec{Period: 1000, Warmup: 100, Interval: 100, Parallelism: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative parallelism passed validation")
	}
	tr := captureKernel(t, "idct", isa.ExtMOM)
	spec := parTestSpec
	spec.Parallelism = 4
	res, err := cpu.New(cpu.NewConfig(4, isa.ExtMOM), mem.NewPerfect(1)).RunSampled(tr.Reader(), 50_000_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled.Spec.Parallelism != 0 {
		t.Errorf("recorded spec carries parallelism %d, want 0", res.Sampled.Spec.Parallelism)
	}
}

// TestSweepCheckpoints: the phase-1 sweep covers the whole stream and
// reports a plausible footprint.
func TestSweepCheckpoints(t *testing.T) {
	tr := captureKernel(t, "idct", isa.ExtMOM)
	sim := cpu.New(cpu.NewConfig(4, isa.ExtMOM), mem.NewHierarchy(mem.HierConfig{Width: 4, Mode: mem.ModeMultiAddress}))
	st, err := sim.SweepCheckpoints(tr, 50_000_000, parTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Insts != tr.Records() {
		t.Errorf("sweep covered %d insts, trace has %d", st.Insts, tr.Records())
	}
	want := int(tr.Records()/parTestSpec.Period) + 1
	if st.Checkpoints < want/2 || st.Checkpoints > want+1 {
		t.Errorf("unexpected checkpoint count %d for %d records (period %d)",
			st.Checkpoints, tr.Records(), parTestSpec.Period)
	}
	if st.SnapshotBytes <= 0 {
		t.Errorf("non-positive snapshot footprint %d", st.SnapshotBytes)
	}
}
