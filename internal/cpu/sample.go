package cpu

// SMARTS-style sampled simulation (Wunderlich et al., ISCA 2003 — see
// EXPERIMENTS.md): the dynamic instruction stream is split into fixed-size
// periods; the head of each period is detailed-simulated (a warmup prefix
// whose measurements are discarded, then a measured interval), and the tail
// is fast-forwarded through a functional-warming path that updates only
// long-lived microarchitectural state — branch predictor, BTB and cache tag
// arrays (mem.Warmer) — at trace-replay speed. The per-interval IPCs give
// both the estimate and its standard error via the usual interval-variance
// formula.

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// SampleSpec configures sampled simulation. All counts are dynamic
// instructions. Each period of Period instructions runs Warmup detailed
// (discarded) instructions, then Interval detailed measured instructions,
// then fast-forwards the remaining Period-Warmup-Interval through the
// functional-warming path. A zero Interval disables sampling entirely.
type SampleSpec struct {
	Period   uint64
	Warmup   uint64
	Interval uint64

	// Parallelism is the number of workers that execute detailed windows
	// concurrently through the two-phase checkpoint pipeline (see
	// runSampledParallel). 0 and 1 both mean serial. The knob never changes
	// results: the parallel path is bit-identical to the serial loop, and
	// RunSampled silently falls back to serial whenever the preconditions
	// (recorded trace at position zero, snapshottable memory model, no
	// observer, a long enough skip span) do not hold.
	Parallelism int
}

// Enabled reports whether the spec actually samples.
func (sp SampleSpec) Enabled() bool { return sp.Interval != 0 }

// Validate checks the spec's internal consistency.
func (sp SampleSpec) Validate() error {
	if sp.Parallelism < 0 {
		return fmt.Errorf("cpu: negative sample parallelism %d", sp.Parallelism)
	}
	if !sp.Enabled() {
		if sp.Period != 0 || sp.Warmup != 0 {
			return errors.New("cpu: sample spec without a measured interval")
		}
		return nil
	}
	if sp.Period <= sp.Warmup+sp.Interval {
		return fmt.Errorf("cpu: sample period %d must exceed warmup %d + interval %d",
			sp.Period, sp.Warmup, sp.Interval)
	}
	return nil
}

// Sampled summarises how a sampled run covered the stream and how good the
// IPC estimate is.
type Sampled struct {
	Spec          SampleSpec
	Intervals     int    // measured detailed windows
	MeasuredInsts uint64 // instructions inside measured intervals
	WarmupInsts   uint64 // detailed-simulated but discarded
	SkippedInsts  uint64 // fast-forwarded through functional warming
	TotalInsts    uint64 // measured + warmup + skipped
	IPCMean       float64
	IPCStdErr     float64 // stderr of IPCMean over the measured intervals
}

// Coverage is the measured fraction of the dynamic instruction stream.
func (s *Sampled) Coverage() float64 {
	if s.TotalInsts == 0 {
		return 0
	}
	return float64(s.MeasuredInsts) / float64(s.TotalInsts)
}

// startWindow re-anchors every transient pipeline structure at cycle base
// for a fresh detailed window, preserving the long-lived state (predictor,
// BTB — and the memory model's tag arrays, which live outside runState).
// base continues the run's cycle axis monotonically so the memory model's
// busy-until cursors (ports, MSHRs, DRAM channel) stay meaningful.
func (rs *runState) startWindow(cfg *Config, base int64) {
	clear(rs.intS.busy)
	clear(rs.intC.busy)
	clear(rs.fpS.busy)
	clear(rs.fpC.busy)
	clear(rs.medS.busy)
	clear(rs.medC.busy)
	clear(rs.ports.busy)
	rs.dispatchSlots = slots{width: cfg.Width}
	rs.commitSlots = slots{width: cfg.Width}
	rs.issueSlots.reset(base)
	clear(rs.robRing)
	clear(rs.lsqRing)
	rs.lsqHead = 0
	for k := range rs.renameRing {
		clear(rs.renameRing[k])
		rs.renameHead[k] = 0
	}
	clear(rs.lastWriter[:])
	rs.stores.reset()
	rs.fetchCycle, rs.lastDispatch, rs.lastCommit = base, base, base-1
	rs.fetchUsed = 0
	rs.profFrontier, rs.redirectCycle = base-1, -1
}

// warmSink adapts the run's predictor/BTB/memory state to trace.WarmSink
// for the bulk fast-forward path. Its warming effects are identical to the
// generic warmSpan loop below, record for record.
type warmSink struct {
	rs      *runState
	statics []staticInst
	w       mem.Warmer // nil when the memory model cannot warm
}

func (k *warmSink) WarmBranch(si int, taken bool) {
	if !k.statics[si].isBR {
		k.rs.pred.update(si, taken)
	}
	if taken {
		k.rs.targets.insert(si)
	}
}

func (k *warmSink) WarmScalar(ea uint64, size int, store bool) {
	if k.w == nil {
		return
	}
	if store {
		k.w.WarmStore(ea, size)
	} else {
		k.w.WarmLoad(ea, size)
	}
}

func (k *warmSink) WarmVector(ea uint64, stride int64, nelem int, store bool) {
	if k.w == nil {
		return
	}
	if store {
		k.w.WarmStoreVector(ea, stride, nelem)
	} else {
		k.w.WarmLoadVector(ea, stride, nelem)
	}
}

// bulkWarmer is the fast-forward protocol a source may offer (trace.Reader
// does): consume records wholesale, delivering only the warming-relevant
// ones, without reconstructing emu.Dyn values.
type bulkWarmer interface {
	WarmNext(n uint64, sink trace.WarmSink) uint64
}

// warmSpan fast-forwards up to n records through functional warming:
// branches train the predictor and BTB exactly as the detailed path would,
// memory references touch the model's tag arrays through mem.Warmer, and
// everything else is skipped. It reports how many records were consumed and
// whether the stream still has more.
func warmSpan(src trace.Source, statics []staticInst, rs *runState, w mem.Warmer, n uint64) (consumed uint64, more bool) {
	if bw, ok := src.(bulkWarmer); ok {
		consumed = bw.WarmNext(n, &warmSink{rs: rs, statics: statics, w: w})
		return consumed, consumed == n
	}
	pred, targets := rs.pred, rs.targets
	for consumed < n {
		d, ok := src.Next()
		if !ok {
			return consumed, false
		}
		consumed++
		st := &statics[d.SI]
		switch st.class {
		case isa.ClassBranch:
			if !st.isBR {
				pred.update(d.SI, d.Taken)
			}
			if d.Taken {
				targets.insert(d.SI)
			}
		case isa.ClassLoad:
			if w != nil {
				w.WarmLoad(d.EA, d.Size)
			}
		case isa.ClassStore:
			if w != nil {
				w.WarmStore(d.EA, d.Size)
			}
		case isa.ClassMomLoad:
			if w != nil {
				w.WarmLoadVector(d.EA, d.Stride, d.NElem)
			}
		case isa.ClassMomStore:
			if w != nil {
				w.WarmStoreVector(d.EA, d.Stride, d.NElem)
			}
		}
	}
	return consumed, true
}

// addDelta accumulates the counter-wise difference cur-snap into dst
// (everything except Cycles, Insts and Mem, which the sampled controller
// finalises itself).
func addDelta(dst, cur, snap *Result) {
	dst.WordOps += cur.WordOps - snap.WordOps
	dst.Branches += cur.Branches - snap.Branches
	dst.Mispredicts += cur.Mispredicts - snap.Mispredicts
	dst.BTBMisses += cur.BTBMisses - snap.BTBMisses
	dst.Loads += cur.Loads - snap.Loads
	dst.Stores += cur.Stores - snap.Stores
	for i := range dst.ByClass {
		dst.ByClass[i] += cur.ByClass[i] - snap.ByClass[i]
	}
	dp, cp, sp := &dst.Profile, &cur.Profile, &snap.Profile
	dp.Commit += cp.Commit - sp.Commit
	dp.Frontend += cp.Frontend - sp.Frontend
	dp.Mispredict += cp.Mispredict - sp.Mispredict
	dp.RenameROB += cp.RenameROB - sp.RenameROB
	dp.IssueQueue += cp.IssueQueue - sp.IssueQueue
	dp.FU += cp.FU - sp.FU
	dp.MemWait += cp.MemWait - sp.MemWait
	dp.StoreCommit += cp.StoreCommit - sp.StoreCommit
	dp.DepLatency += cp.DepLatency - sp.DepLatency
}

// meanStdErr returns the sample mean and the standard error of that mean
// (sqrt of the unbiased variance over k), zero stderr below two samples.
func meanStdErr(xs []float64) (mean, stderr float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / (n - 1) / n)
}

// RunSampled consumes the stream like Run, but under the sampling regime of
// spec. A disabled spec delegates to Run and is bit-identical to it. For an
// enabled spec the returned Result aggregates the measured intervals only
// (so Profile.Total() == Cycles and IPC() is the sampled estimate), carries
// the run's Mem stats for every detailed-simulated access (warmup included;
// warm touches count nothing), and attaches a Sampled block. The observer,
// if any, sees measured-interval instructions only, so per-PC hotspot
// buckets still sum exactly to the aggregated profile.
func (s *Sim) RunSampled(src trace.Source, maxInsts uint64, spec SampleSpec) (Result, error) {
	if !spec.Enabled() {
		return s.Run(src, maxInsts)
	}
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if s.parallelOK(src, spec) {
		rd := src.(*trace.Reader)
		return s.runSampledParallel(rd.Trace(), rd, maxInsts, spec, s.Mem.(mem.Snapshotter))
	}
	statics := staticsFor(src)
	rs := acquireState(&s.Cfg)
	defer releaseState(rs)
	warmer, _ := s.Mem.(mem.Warmer)

	// scratch accumulates raw detailed-span counters (warmup + measured);
	// snapshots around each measured interval extract its delta into agg.
	var scratch, agg Result
	smp := &Sampled{Spec: recordedSpec(spec)}
	var ipcs []float64

	base := int64(0)
	more := true
	for more && rs.idx < maxInsts {
		rs.startWindow(&s.Cfg, base)

		// Warmup prefix: detailed, discarded, unobserved.
		pre := rs.idx
		var err error
		more, err = s.runSpan(rs, src, statics, &scratch, min(rs.idx+spec.Warmup, maxInsts), nil)
		if err != nil {
			return agg, err
		}
		smp.WarmupInsts += rs.idx - pre
		if !more || rs.idx >= maxInsts {
			break
		}

		// Measured interval.
		snap := scratch
		startFrontier := rs.profFrontier
		pre = rs.idx
		more, err = s.runSpan(rs, src, statics, &scratch, min(rs.idx+spec.Interval, maxInsts), s.Obs)
		if err != nil {
			return agg, err
		}
		mInsts := rs.idx - pre
		if mInsts == 0 {
			break
		}
		mCycles := rs.profFrontier - startFrontier
		addDelta(&agg, &scratch, &snap)
		agg.Cycles += mCycles
		smp.Intervals++
		smp.MeasuredInsts += mInsts
		if mCycles > 0 {
			ipcs = append(ipcs, float64(mInsts)/float64(mCycles))
		}
		if !more || rs.idx >= maxInsts {
			break
		}

		// Functional fast-forward to the next period.
		skip := spec.Period - spec.Warmup - spec.Interval
		if rem := maxInsts - rs.idx; skip > rem {
			skip = rem
		}
		var skipped uint64
		skipped, more = warmSpan(src, statics, rs, warmer, skip)
		rs.idx += skipped
		smp.SkippedInsts += skipped
		// Re-anchor the next window past the skipped span at ~1 CPI, far
		// enough ahead that the memory model's busy-until cursors from this
		// window have drained; the offset is deterministic, so sampled runs
		// replay bit-identically.
		base = rs.lastCommit + 1 + int64(skipped)
	}

	agg.Insts = smp.MeasuredInsts
	smp.TotalInsts = rs.idx
	smp.IPCMean, smp.IPCStdErr = meanStdErr(ipcs)
	agg.Mem = s.Mem.Stats()
	agg.Sampled = smp
	return agg, src.Err()
}
