// Package isa defines the instruction-set model shared by the functional
// emulator and the cycle-level timing simulator.
//
// The baseline scalar ISA is Alpha-like (as in the paper, every multimedia
// extension is layered on top of the Alpha ISA). Three multimedia extension
// families are modelled:
//
//   - MMX-like: packed 64-bit SIMD operations on 32 logical media registers.
//   - MDMX-like: the same packed operations plus 192-bit packed accumulators.
//   - MOM: matrix registers of 16 x 64-bit packed words executed under a
//     vector-length (VL) register, with strided vector memory instructions
//     and matrix accumulator operations.
//
// Vector (MOM) variants of packed opcodes are derived mechanically: for a
// packed opcode op, op.Vector() is the MOM opcode that applies op to every
// active word of the matrix register operands.
package isa

import "fmt"

// RegKind identifies an architectural register file.
type RegKind uint8

const (
	KindNone   RegKind = iota
	KindInt            // R0..R31 (R31 hardwired to zero)
	KindFP             // F0..F31
	KindMedia          // M0..M31 64-bit packed multimedia registers
	KindAcc            // A0..A3 192-bit packed accumulators (MDMX)
	KindMom            // V0..V15 matrix registers (16 x 64-bit words)
	KindMomAcc         // VA0..VA1 MOM 192-bit packed accumulators
	KindVL             // the vector-length register (renamed via the int pool)
)

func (k RegKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindInt:
		return "int"
	case KindFP:
		return "fp"
	case KindMedia:
		return "media"
	case KindAcc:
		return "acc"
	case KindMom:
		return "mom"
	case KindMomAcc:
		return "momacc"
	case KindVL:
		return "vl"
	}
	return "?"
}

// Reg is an architectural register operand.
type Reg struct {
	Kind RegKind
	Idx  uint8
}

// Register constructors.
func R(i int) Reg  { return Reg{KindInt, uint8(i)} }
func F(i int) Reg  { return Reg{KindFP, uint8(i)} }
func M(i int) Reg  { return Reg{KindMedia, uint8(i)} }
func A(i int) Reg  { return Reg{KindAcc, uint8(i)} }
func V(i int) Reg  { return Reg{KindMom, uint8(i)} }
func VA(i int) Reg { return Reg{KindMomAcc, uint8(i)} }

// VLReg is the architectural vector-length register.
var VLReg = Reg{KindVL, 0}

// Zero is the hardwired-zero integer register.
var Zero = R(31)

func (r Reg) Valid() bool { return r.Kind != KindNone }

func (r Reg) String() string {
	switch r.Kind {
	case KindNone:
		return "-"
	case KindInt:
		return fmt.Sprintf("r%d", r.Idx)
	case KindFP:
		return fmt.Sprintf("f%d", r.Idx)
	case KindMedia:
		return fmt.Sprintf("m%d", r.Idx)
	case KindAcc:
		return fmt.Sprintf("a%d", r.Idx)
	case KindMom:
		return fmt.Sprintf("v%d", r.Idx)
	case KindMomAcc:
		return fmt.Sprintf("va%d", r.Idx)
	case KindVL:
		return "vl"
	}
	return "?"
}

// Limits of the architectural register files (logical registers), following
// Table 2 of the paper.
const (
	NumInt    = 32
	NumFP     = 32
	NumMedia  = 32
	NumAcc    = 4
	NumMom    = 16
	NumMomAcc = 2
	// MaxVL is the number of 64-bit words in a MOM matrix register.
	MaxVL = 16
)

// Inst is one static instruction.
//
// Operand conventions:
//   - ALU ops: Dst <- Src[0] op Src[1]; if Src[1] is invalid the second
//     operand is the immediate Imm (Alpha-style literal form).
//   - Loads: Dst <- mem[Src[0] + Imm].
//   - Stores: mem[Src[1] + Imm] <- Src[0].
//   - Conditional branches test Src[0] against zero; Target is the index of
//     the destination instruction.
//   - MOM loads: Dst(V) <- mem[Src[0] + k*Src[1]] for k in 0..VL-1
//     (Src[1] is the stride register; Imm is added to the base).
//   - MOM stores: mem[Src[1] + Imm + k*Src[2]] <- Src[0](V) words.
//   - CMOV and PCMOV additionally read Dst.
type Inst struct {
	Op     Opcode
	Dst    Reg
	Src    [3]Reg
	Imm    int64
	Target int // branch target (static instruction index)
}

func (in Inst) String() string {
	info := in.Op.Info()
	s := info.Name
	if in.Dst.Valid() {
		s += " " + in.Dst.String()
	}
	for _, r := range in.Src {
		if r.Valid() {
			s += ", " + r.String()
		}
	}
	if in.Imm != 0 || !in.Src[1].Valid() {
		s += fmt.Sprintf(", #%d", in.Imm)
	}
	if in.Op.Info().Class == ClassBranch {
		s += fmt.Sprintf(" -> @%d", in.Target)
	}
	return s
}

// Program is a complete executable unit: code plus an initial data image.
type Program struct {
	Name     string
	Insts    []Inst
	Data     []byte            // initial data segment contents
	DataBase uint64            // base address of the data segment
	Symbols  map[string]uint64 // symbol -> address
	MemSize  uint64            // total memory to reserve (>= DataBase+len(Data))
}

// Sym returns the address of a named data symbol, panicking if absent
// (program construction is a build-time activity; a missing symbol is a
// programming error, not a runtime condition).
func (p *Program) Sym(name string) uint64 {
	a, ok := p.Symbols[name]
	if !ok {
		panic("isa: unknown symbol " + name)
	}
	return a
}

// StaticStats summarises the static composition of a program.
type StaticStats struct {
	Total    int
	ByClass  map[Class]int
	Branches int
}

// Stats computes static statistics for the program.
func (p *Program) Stats() StaticStats {
	st := StaticStats{ByClass: make(map[Class]int)}
	for _, in := range p.Insts {
		st.Total++
		c := in.Op.Info().Class
		st.ByClass[c]++
		if c == ClassBranch {
			st.Branches++
		}
	}
	return st
}
