package isa

// Class buckets opcodes by the functional unit / pipeline resource they use.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntSimple
	ClassIntComplex
	ClassFPSimple
	ClassFPComplex
	ClassMedSimple
	ClassMedComplex
	ClassLoad
	ClassStore
	ClassBranch
	ClassMomLoad
	ClassMomStore
	ClassMomSimple  // vector (matrix) packed op, simple pipe
	ClassMomComplex // vector packed op needing the complex (multiplier) pipe
	ClassCtl        // VL management etc.
)

func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntSimple:
		return "int"
	case ClassIntComplex:
		return "int*"
	case ClassFPSimple:
		return "fp"
	case ClassFPComplex:
		return "fp*"
	case ClassMedSimple:
		return "med"
	case ClassMedComplex:
		return "med*"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "br"
	case ClassMomLoad:
		return "vload"
	case ClassMomStore:
		return "vstore"
	case ClassMomSimple:
		return "vmed"
	case ClassMomComplex:
		return "vmed*"
	case ClassCtl:
		return "ctl"
	}
	return "?"
}

// IsMem reports whether the class accesses memory.
func (c Class) IsMem() bool {
	switch c {
	case ClassLoad, ClassStore, ClassMomLoad, ClassMomStore:
		return true
	}
	return false
}

// IsVector reports whether the class is a MOM vector class.
func (c Class) IsVector() bool {
	switch c {
	case ClassMomLoad, ClassMomStore, ClassMomSimple, ClassMomComplex:
		return true
	}
	return false
}

// Opcode identifies an operation. Packed (media) opcodes occupy a contiguous
// block; adding VectorDelta to a packed opcode yields its MOM matrix variant.
type Opcode uint16

// VectorDelta separates the packed opcode block from its MOM vector twins.
const VectorDelta Opcode = 512

const (
	NOP Opcode = iota

	// ---- Scalar integer ----
	LDA  // dst = src0 + imm
	ADDQ // dst = src0 + op2
	SUBQ
	MULQ
	DIVQ // signed divide (complex)
	UMULH
	AND
	OR
	XOR
	BIC // and-not
	SLL
	SRL
	SRA
	CMPEQ
	CMPLT // signed
	CMPLE
	CMPULT
	CMPULE
	CMOVEQ // dst = src1 if src0 == 0 (reads dst)
	CMOVNE
	CMOVLT
	CMOVGE
	SEXTB
	SEXTW
	SEXTL

	// ---- Scalar memory ----
	LDBU
	LDWU
	LDL // sign-extending 32-bit load
	LDQ
	STB
	STW
	STL
	STQ
	LDT // FP load
	STT // FP store

	// ---- Branches ----
	BR // unconditional
	BEQ
	BNE
	BLT
	BLE
	BGT
	BGE

	// ---- Scalar FP ----
	ADDT
	SUBT
	MULT
	DIVT
	CVTQT // int -> fp
	CVTTQ // fp -> int (truncate)

	// ---- Media register moves / loads ----
	LDQM  // media <- mem[src0+imm] (64-bit, unaligned permitted)
	STQM  // mem[src1+imm] <- media src0
	MTM   // media <- int
	MFM   // int <- media
	PZERO // media <- 0

	// ---- Packed block begin (everything in [packedFirst,packedLast] has a
	// MOM vector twin at +VectorDelta) ----

	PADDB // 8x8 wrap
	PADDH // 4x16 wrap
	PADDW // 2x32 wrap
	PADDSB
	PADDSH
	PADDUSB
	PADDUSH
	PSUBB
	PSUBH
	PSUBW
	PSUBSB
	PSUBSH
	PSUBUSB
	PSUBUSH
	PMULLH  // 4x16 -> low 16
	PMULHH  // 4x16 -> high 16 signed
	PMULHUH // 4x16 -> high 16 unsigned
	PMADDH  // pairs of 16x16 products summed -> 2x32
	PAVGB   // unsigned average with rounding
	PAVGH
	PABSDB // |a-b| unsigned per byte
	PABSDH
	PSADBW // sum over 8 bytes of |a-b| -> single 64-bit value
	PMINUB
	PMAXUB
	PMINSH
	PMAXSH
	PCMPEQB
	PCMPEQH
	PCMPGTB // signed compare, all-ones mask on true
	PCMPGTH
	PCMPGTUB // unsigned compare
	PAND
	POR
	PXOR
	PANDN // src0 &^ src1
	PSLLH // shift amount: op2 (register low 6 bits or immediate)
	PSLLW
	PSLLQ
	PSRLH
	PSRLW
	PSRLQ
	PSRAH
	PSRAW
	PACKSSHB // two 4x16 -> one 8x8 signed-saturate (src0 low, src1 high)
	PACKUSHB
	PACKSSWH
	PUNPKLB // interleave low 4 bytes of src0,src1
	PUNPKHB
	PUNPKLH // interleave low 2 halves
	PUNPKHH
	PUNPKLW
	PUNPKHW
	PSPLATB // broadcast low byte of int src0 to all 8 byte lanes
	PSPLATH // broadcast low half of int src0 to all 4 half lanes
	PCMOV   // per-bit select: dst = (src0 & src2) | (src1 &^ src2)
	PMOV    // dst = src0 (media move)

	// ---- Accumulator (MDMX-style) ops; also inside the packed block so the
	// MOM matrix accumulator variants come for free at +VectorDelta ----

	ACLR    // acc <- 0
	ACCADDB // acc8x24 += unsigned bytes of src0
	ACCADDH // acc4x48 += signed halves of src0
	ACCSUBB
	ACCSUBH
	ACCMULB // acc8x24 += sbyte(src0)*sbyte(src1)
	ACCMULH // acc4x48 += s16(src0)*s16(src1)
	ACCMACH // acc2x(2x48?) -- reserved; see note in emulator
	ACCABDB // acc8x24 += |a-b| unsigned bytes
	ACCABDH
	ACCSQDB // acc8x24 += (a-b)^2 (unsigned bytes, signed diff)
	ACCSQDH // acc4x48 += (a-b)^2 (signed halves)

	// packed block end marker (exclusive)
	packedEnd

	// ---- Accumulator readback / reduction (shared by MDMX and MOM) ----
	RACH   // media <- sat16(acc4x48 >> imm) packed
	RACB   // media <- satu8(acc8x24 >> imm) packed
	RACSUM // int <- sum of all acc lanes (enhanced reduction op)
	WACH   // acc4x48 <- sign-extended halves of media src0 (restore)
	WACB   // acc8x24 <- zero-extended bytes of media src0

	// ---- MOM-specific ----
	SETVL     // VL <- min(max(src0,0), 16); also writes dst int reg with VL
	SETVLI    // VL <- imm
	MOMLDQ    // V <- VL words from mem[src0 + imm + k*src1]
	MOMSTQ    // VL words of src0 V -> mem[src1 + imm + k*src2]
	MOMSPLAT  // all MaxVL words of dst V <- media src0
	MOMEXT    // media <- word Imm of V src0
	MOMINS    // word Imm of dst V <- media src0 (reads dst)
	MOMMPVH   // va4x48[l] += sum_k s16(Vsrc0[k].h[l]) * s16(Msrc1.h[k%4])
	MOMTRANSH // dst V <- 8x8 16-bit transpose of src0 V (rows = word pairs)
	MOMRSUMW  // media <- per-lane-32 sum across VL words of src0 V
	MOMRMAXH  // media <- per-lane-16 signed max across VL words of src0 V

	numScalarOps = iota
)

// packedFirst is the first opcode that has a vector twin.
const packedFirst = PADDB

// Vector returns the MOM matrix variant of a packed opcode.
// It panics if op has no vector form.
func (op Opcode) Vector() Opcode {
	if op < packedFirst || op >= packedEnd {
		panic("isa: opcode " + op.Info().Name + " has no vector form")
	}
	return op + VectorDelta
}

// Scalar returns the packed (single-word) opcode underlying a vector opcode.
func (op Opcode) Scalar() Opcode {
	if op.IsVectorPacked() {
		return op - VectorDelta
	}
	return op
}

// IsVectorPacked reports whether op is a derived MOM vector opcode.
func (op Opcode) IsVectorPacked() bool {
	return op >= packedFirst+VectorDelta && op < packedEnd+VectorDelta
}

// Info describes static properties of an opcode.
type Info struct {
	Name  string
	Class Class
	Lat   int // execution latency in cycles (memory ops: address-gen latency)
}

var infoTab = map[Opcode]Info{}

func reg(op Opcode, name string, c Class, lat int) {
	infoTab[op] = Info{name, c, lat}
}

// Latency constants, loosely following an R10000-era design.
const (
	latSimple  = 1
	latMul     = 3
	latDiv     = 20
	latFPAdd   = 3
	latFPMul   = 3
	latFPDiv   = 18
	latMedSimp = 1
	latMedMul  = 3
	latMedSAD  = 2
)

func init() {
	reg(NOP, "nop", ClassNop, 1)

	ints := func(op Opcode, n string) { reg(op, n, ClassIntSimple, latSimple) }
	ints(LDA, "lda")
	ints(ADDQ, "addq")
	ints(SUBQ, "subq")
	reg(MULQ, "mulq", ClassIntComplex, latMul)
	reg(DIVQ, "divq", ClassIntComplex, latDiv)
	reg(UMULH, "umulh", ClassIntComplex, latMul)
	ints(AND, "and")
	ints(OR, "or")
	ints(XOR, "xor")
	ints(BIC, "bic")
	ints(SLL, "sll")
	ints(SRL, "srl")
	ints(SRA, "sra")
	ints(CMPEQ, "cmpeq")
	ints(CMPLT, "cmplt")
	ints(CMPLE, "cmple")
	ints(CMPULT, "cmpult")
	ints(CMPULE, "cmpule")
	ints(CMOVEQ, "cmoveq")
	ints(CMOVNE, "cmovne")
	ints(CMOVLT, "cmovlt")
	ints(CMOVGE, "cmovge")
	ints(SEXTB, "sextb")
	ints(SEXTW, "sextw")
	ints(SEXTL, "sextl")

	reg(LDBU, "ldbu", ClassLoad, 1)
	reg(LDWU, "ldwu", ClassLoad, 1)
	reg(LDL, "ldl", ClassLoad, 1)
	reg(LDQ, "ldq", ClassLoad, 1)
	reg(STB, "stb", ClassStore, 1)
	reg(STW, "stw", ClassStore, 1)
	reg(STL, "stl", ClassStore, 1)
	reg(STQ, "stq", ClassStore, 1)
	reg(LDT, "ldt", ClassLoad, 1)
	reg(STT, "stt", ClassStore, 1)

	reg(BR, "br", ClassBranch, 1)
	reg(BEQ, "beq", ClassBranch, 1)
	reg(BNE, "bne", ClassBranch, 1)
	reg(BLT, "blt", ClassBranch, 1)
	reg(BLE, "ble", ClassBranch, 1)
	reg(BGT, "bgt", ClassBranch, 1)
	reg(BGE, "bge", ClassBranch, 1)

	reg(ADDT, "addt", ClassFPSimple, latFPAdd)
	reg(SUBT, "subt", ClassFPSimple, latFPAdd)
	reg(MULT, "mult", ClassFPComplex, latFPMul)
	reg(DIVT, "divt", ClassFPComplex, latFPDiv)
	reg(CVTQT, "cvtqt", ClassFPSimple, latFPAdd)
	reg(CVTTQ, "cvttq", ClassFPSimple, latFPAdd)

	reg(LDQM, "ldqm", ClassLoad, 1)
	reg(STQM, "stqm", ClassStore, 1)
	reg(MTM, "mtm", ClassMedSimple, latMedSimp)
	reg(MFM, "mfm", ClassMedSimple, latMedSimp)
	reg(PZERO, "pzero", ClassMedSimple, latMedSimp)

	med := func(op Opcode, n string) { reg(op, n, ClassMedSimple, latMedSimp) }
	medc := func(op Opcode, n string, lat int) { reg(op, n, ClassMedComplex, lat) }
	med(PADDB, "paddb")
	med(PADDH, "paddh")
	med(PADDW, "paddw")
	med(PADDSB, "paddsb")
	med(PADDSH, "paddsh")
	med(PADDUSB, "paddusb")
	med(PADDUSH, "paddush")
	med(PSUBB, "psubb")
	med(PSUBH, "psubh")
	med(PSUBW, "psubw")
	med(PSUBSB, "psubsb")
	med(PSUBSH, "psubsh")
	med(PSUBUSB, "psubusb")
	med(PSUBUSH, "psubush")
	medc(PMULLH, "pmullh", latMedMul)
	medc(PMULHH, "pmulhh", latMedMul)
	medc(PMULHUH, "pmulhuh", latMedMul)
	medc(PMADDH, "pmaddh", latMedMul)
	med(PAVGB, "pavgb")
	med(PAVGH, "pavgh")
	med(PABSDB, "pabsdb")
	med(PABSDH, "pabsdh")
	medc(PSADBW, "psadbw", latMedSAD)
	med(PMINUB, "pminub")
	med(PMAXUB, "pmaxub")
	med(PMINSH, "pminsh")
	med(PMAXSH, "pmaxsh")
	med(PCMPEQB, "pcmpeqb")
	med(PCMPEQH, "pcmpeqh")
	med(PCMPGTB, "pcmpgtb")
	med(PCMPGTH, "pcmpgth")
	med(PCMPGTUB, "pcmpgtub")
	med(PAND, "pand")
	med(POR, "por")
	med(PXOR, "pxor")
	med(PANDN, "pandn")
	med(PSLLH, "psllh")
	med(PSLLW, "psllw")
	med(PSLLQ, "psllq")
	med(PSRLH, "psrlh")
	med(PSRLW, "psrlw")
	med(PSRLQ, "psrlq")
	med(PSRAH, "psrah")
	med(PSRAW, "psraw")
	med(PACKSSHB, "packsshb")
	med(PACKUSHB, "packushb")
	med(PACKSSWH, "packsswh")
	med(PUNPKLB, "punpklb")
	med(PUNPKHB, "punpkhb")
	med(PUNPKLH, "punpklh")
	med(PUNPKHH, "punpkhh")
	med(PUNPKLW, "punpklw")
	med(PUNPKHW, "punpkhw")
	med(PSPLATB, "psplatb")
	med(PSPLATH, "psplath")
	med(PCMOV, "pcmov")
	med(PMOV, "pmov")

	med(ACLR, "aclr")
	med(ACCADDB, "accaddb")
	med(ACCADDH, "accaddh")
	med(ACCSUBB, "accsubb")
	med(ACCSUBH, "accsubh")
	medc(ACCMULB, "accmulb", latMedMul)
	medc(ACCMULH, "accmulh", latMedMul)
	medc(ACCMACH, "accmach", latMedMul)
	medc(ACCABDB, "accabdb", latMedSAD)
	medc(ACCABDH, "accabdh", latMedSAD)
	medc(ACCSQDB, "accsqdb", latMedMul)
	medc(ACCSQDH, "accsqdh", latMedMul)

	med(RACH, "rach")
	med(RACB, "racb")
	medc(RACSUM, "racsum", latMedSAD)
	med(WACH, "wach")
	med(WACB, "wacb")

	reg(SETVL, "setvl", ClassCtl, 1)
	reg(SETVLI, "setvli", ClassCtl, 1)
	reg(MOMLDQ, "momldq", ClassMomLoad, 1)
	reg(MOMSTQ, "momstq", ClassMomStore, 1)
	reg(MOMSPLAT, "momsplat", ClassMomSimple, latMedSimp)
	reg(MOMEXT, "momext", ClassMedSimple, latMedSimp)
	reg(MOMINS, "momins", ClassMomSimple, latMedSimp)
	reg(MOMMPVH, "mommpvh", ClassMomComplex, latMedMul)
	reg(MOMTRANSH, "momtransh", ClassMomSimple, 2)
	reg(MOMRSUMW, "momrsumw", ClassMomComplex, latMedSAD)
	reg(MOMRMAXH, "momrmaxh", ClassMomComplex, latMedSAD)

	// Derive the MOM vector twins of every packed opcode.
	for op := packedFirst; op < packedEnd; op++ {
		in, ok := infoTab[op]
		if !ok {
			continue // gap (there are none, but be safe)
		}
		cls := ClassMomSimple
		if in.Class == ClassMedComplex {
			cls = ClassMomComplex
		}
		infoTab[op+VectorDelta] = Info{"v" + in.Name, cls, in.Lat}
	}
}

// Info returns the static description of op.
func (op Opcode) Info() Info {
	in, ok := infoTab[op]
	if !ok {
		return Info{Name: "op?", Class: ClassNop, Lat: 1}
	}
	return in
}

// Known reports whether op is a registered opcode.
func (op Opcode) Known() bool {
	_, ok := infoTab[op]
	return ok
}

// AllOpcodes returns every registered opcode (useful for exhaustive tests).
func AllOpcodes() []Opcode {
	ops := make([]Opcode, 0, len(infoTab))
	for op := range infoTab {
		ops = append(ops, op)
	}
	return ops
}

// CountByExtension returns the number of opcodes available to each ISA
// level, mirroring the paper's instruction counts (MMX ~67, MDMX ~88,
// MOM ~121). Scalar/branch/FP opcodes are excluded (they belong to the
// Alpha base).
func CountByExtension() (mmx, mdmx, mom int) {
	for op := range infoTab {
		in := infoTab[op]
		switch in.Class {
		case ClassMedSimple, ClassMedComplex:
			if op >= ACLR && op <= ACCSQDH || op >= RACH && op <= WACB {
				mdmx++ // accumulator ops: MDMX and MOM only
				mom++
			} else if op == MOMEXT {
				mom++
			} else {
				mmx++
				mdmx++
				mom++
			}
		case ClassMomSimple, ClassMomComplex, ClassMomLoad, ClassMomStore, ClassCtl:
			mom++
		case ClassLoad, ClassStore:
			if op == LDQM || op == STQM {
				mmx++
				mdmx++
				mom++
			}
		}
	}
	return
}
