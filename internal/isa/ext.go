package isa

// Ext identifies which ISA level a program (or machine configuration) uses.
// The baseline is always the Alpha-like scalar ISA; the three extensions add
// the multimedia register files and opcodes they introduce.
type Ext uint8

const (
	ExtAlpha Ext = iota // scalar baseline only
	ExtMMX              // + packed ops on media registers
	ExtMDMX             // + packed accumulators
	ExtMOM              // + matrix registers, VL, strided vector memory
)

func (e Ext) String() string {
	switch e {
	case ExtAlpha:
		return "Alpha"
	case ExtMMX:
		return "MMX"
	case ExtMDMX:
		return "MDMX"
	case ExtMOM:
		return "MOM"
	}
	return "?"
}

// AllExts lists the four ISA levels in the paper's order.
var AllExts = []Ext{ExtAlpha, ExtMMX, ExtMDMX, ExtMOM}
