package isa

// DepsOf returns the architectural destination register and source registers
// of an instruction, normalising the implicit operands:
//
//   - CMOV* and MOMINS read their destination.
//   - Accumulator read-modify-write ops (ACC*, MOMMPVH) read their
//     destination accumulator.
//   - Every MOM vector op implicitly reads VL.
//   - SETVL/SETVLI write VL.
//
// Invalid (zero) Reg values in the returned srcs array mean "no operand".
// Reads of the hardwired zero register are reported as no operand.
func DepsOf(in *Inst) (dst Reg, srcs [4]Reg) {
	dst = in.Dst
	n := 0
	addSrc := func(r Reg) {
		if !r.Valid() || (r.Kind == KindInt && r.Idx == 31) {
			return
		}
		srcs[n] = r
		n++
	}
	for _, r := range in.Src {
		addSrc(r)
	}
	switch in.Op {
	case CMOVEQ, CMOVNE, CMOVLT, CMOVGE, MOMINS:
		addSrc(in.Dst)
	case SETVL, SETVLI:
		dst = VLReg
	}
	// Accumulator RMW: every ACC op except ACLR/WACH/WACB reads the acc.
	sc := in.Op.Scalar()
	if sc >= ACCADDB && sc <= ACCSQDH || in.Op == MOMMPVH {
		addSrc(in.Dst)
	}
	// MOM vector ops depend on VL.
	cls := in.Op.Info().Class
	if cls.IsVector() {
		addSrc(VLReg)
	}
	if dst.Kind == KindInt && dst.Idx == 31 {
		dst = Reg{} // writes to the zero register are discarded
	}
	return dst, srcs
}
