package isa

import "testing"

func TestEveryOpcodeHasInfo(t *testing.T) {
	for _, op := range AllOpcodes() {
		in := op.Info()
		if in.Name == "" || in.Name == "op?" {
			t.Errorf("opcode %d has no name", op)
		}
		if in.Lat < 1 {
			t.Errorf("opcode %s has latency %d", in.Name, in.Lat)
		}
	}
}

func TestVectorTwinDerivation(t *testing.T) {
	// Every packed opcode has a vector twin with a "v" name, a vector
	// class, and Scalar() must invert Vector().
	for op := packedFirst; op < packedEnd; op++ {
		if !op.Known() {
			continue
		}
		v := op.Vector()
		if !v.Known() {
			t.Fatalf("%s has no registered vector twin", op.Info().Name)
		}
		if v.Scalar() != op {
			t.Errorf("Scalar(Vector(%s)) != %s", op.Info().Name, op.Info().Name)
		}
		if got := v.Info().Name; got != "v"+op.Info().Name {
			t.Errorf("vector twin of %s named %s", op.Info().Name, got)
		}
		if !v.Info().Class.IsVector() {
			t.Errorf("vector twin of %s has class %v", op.Info().Name, v.Info().Class)
		}
	}
}

func TestVectorOfScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Vector() of a scalar opcode must panic")
		}
	}()
	ADDQ.Vector()
}

func TestCountByExtension(t *testing.T) {
	mmx, mdmx, mom := CountByExtension()
	if !(mmx < mdmx && mdmx < mom) {
		t.Errorf("counts must be increasing: %d %d %d", mmx, mdmx, mom)
	}
	t.Logf("instruction counts: MMX=%d MDMX=%d MOM=%d (paper: 67/88/121)", mmx, mdmx, mom)
}

func TestDepsOfConventions(t *testing.T) {
	// CMOV reads its destination.
	in := Inst{Op: CMOVLT, Dst: R(1), Src: [3]Reg{R(2), R(3)}}
	_, srcs := DepsOf(&in)
	found := false
	for _, s := range srcs {
		if s == R(1) {
			found = true
		}
	}
	if !found {
		t.Error("CMOV must read its destination")
	}
	// Accumulator ops read-modify-write the accumulator.
	in = Inst{Op: ACCMULH, Dst: A(0), Src: [3]Reg{M(1), M(2)}}
	_, srcs = DepsOf(&in)
	found = false
	for _, s := range srcs {
		if s == A(0) {
			found = true
		}
	}
	if !found {
		t.Error("ACC ops must read the accumulator")
	}
	// Vector ops depend on VL.
	in = Inst{Op: PADDB.Vector(), Dst: V(0), Src: [3]Reg{V(1), V(2)}}
	_, srcs = DepsOf(&in)
	found = false
	for _, s := range srcs {
		if s == VLReg {
			found = true
		}
	}
	if !found {
		t.Error("vector ops must read VL")
	}
	// SETVL writes VL.
	in = Inst{Op: SETVLI, Imm: 8}
	dst, _ := DepsOf(&in)
	if dst != VLReg {
		t.Error("SETVLI must write VL")
	}
	// Reads of R31 are dropped; writes to R31 are discarded.
	in = Inst{Op: ADDQ, Dst: R(31), Src: [3]Reg{R(31), R(2)}}
	dst, srcs = DepsOf(&in)
	if dst.Valid() {
		t.Error("write to R31 must be discarded")
	}
	for _, s := range srcs {
		if s.Kind == KindInt && s.Idx == 31 {
			t.Error("read of R31 must be dropped")
		}
	}
}

func TestRegString(t *testing.T) {
	cases := map[string]Reg{
		"r3": R(3), "f1": F(1), "m31": M(31), "a2": A(2), "v15": V(15), "va1": VA(1), "vl": VLReg,
	}
	for want, r := range cases {
		if got := r.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !ClassMomLoad.IsMem() || !ClassMomLoad.IsVector() {
		t.Error("ClassMomLoad predicates wrong")
	}
	if ClassIntSimple.IsMem() || ClassIntSimple.IsVector() {
		t.Error("ClassIntSimple predicates wrong")
	}
	if !ClassLoad.IsMem() || ClassLoad.IsVector() {
		t.Error("ClassLoad predicates wrong")
	}
}
