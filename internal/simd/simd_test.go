package simd

import (
	"testing"
	"testing/quick"
)

// refB applies a scalar byte function lane-wise (independent reference).
func refB(a, b uint64, f func(x, y int) int) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		x := int(a >> (8 * uint(i)) & 0xff)
		y := int(b >> (8 * uint(i)) & 0xff)
		r |= uint64(uint8(f(x, y))) << (8 * uint(i))
	}
	return r
}

func refH(a, b uint64, f func(x, y int) int) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		x := int(int16(a >> (16 * uint(i))))
		y := int(int16(b >> (16 * uint(i))))
		r |= uint64(uint16(f(x, y))) << (16 * uint(i))
	}
	return r
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func TestPackedOpsAgainstScalarReference(t *testing.T) {
	cases := []struct {
		name string
		got  func(a, b uint64) uint64
		want func(a, b uint64) uint64
	}{
		{"AddB", AddB, func(a, b uint64) uint64 {
			return refB(a, b, func(x, y int) int { return x + y })
		}},
		{"AddUSB", AddUSB, func(a, b uint64) uint64 {
			return refB(a, b, func(x, y int) int { return clamp(x+y, 0, 255) })
		}},
		{"SubUSB", SubUSB, func(a, b uint64) uint64 {
			return refB(a, b, func(x, y int) int { return clamp(x-y, 0, 255) })
		}},
		{"AddSB", AddSB, func(a, b uint64) uint64 {
			return refB(a, b, func(x, y int) int {
				return clamp(int(int8(uint8(x)))+int(int8(uint8(y))), -128, 127)
			})
		}},
		{"AddSH", AddSH, func(a, b uint64) uint64 {
			return refH(a, b, func(x, y int) int { return clamp(x+y, -32768, 32767) })
		}},
		{"SubSH", SubSH, func(a, b uint64) uint64 {
			return refH(a, b, func(x, y int) int { return clamp(x-y, -32768, 32767) })
		}},
		{"AvgB", AvgB, func(a, b uint64) uint64 {
			return refB(a, b, func(x, y int) int { return (x + y + 1) / 2 })
		}},
		{"AbsDB", AbsDB, func(a, b uint64) uint64 {
			return refB(a, b, func(x, y int) int {
				if x > y {
					return x - y
				}
				return y - x
			})
		}},
		{"MulLH", MulLH, func(a, b uint64) uint64 {
			return refH(a, b, func(x, y int) int { return x * y })
		}},
		{"MulHH", MulHH, func(a, b uint64) uint64 {
			return refH(a, b, func(x, y int) int { return (x * y) >> 16 })
		}},
		{"MinUB", MinUB, func(a, b uint64) uint64 {
			return refB(a, b, func(x, y int) int {
				if x < y {
					return x
				}
				return y
			})
		}},
		{"MaxSH", MaxSH, func(a, b uint64) uint64 {
			return refH(a, b, func(x, y int) int {
				xs, ys := int(int16(uint16(x))), int(int16(uint16(y)))
				if xs > ys {
					return xs
				}
				return ys
			})
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			f := func(a, b uint64) bool { return c.got(a, b) == c.want(a, b) }
			if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSADBWMatchesSum(t *testing.T) {
	f := func(a, b uint64) bool {
		var want uint64
		for i := 0; i < 8; i++ {
			x, y := int(GetB(a, i)), int(GetB(b, i))
			if x > y {
				want += uint64(x - y)
			} else {
				want += uint64(y - x)
			}
		}
		return SADBW(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnpackPackRoundTrip(t *testing.T) {
	// Unpacking lo+hi bytes with zero gives non-negative halfwords <= 255,
	// so the unsigned-saturating pack must reproduce the original word.
	f := func(a uint64) bool {
		lo := UnpackLB(a, 0)
		hi := UnpackHB(a, 0)
		return PackUSHB(lo, hi) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnpackInterleaving(t *testing.T) {
	a := PackB([8]uint8{0, 1, 2, 3, 4, 5, 6, 7})
	b := PackB([8]uint8{10, 11, 12, 13, 14, 15, 16, 17})
	if got, want := UnpackLB(a, b), PackB([8]uint8{0, 10, 1, 11, 2, 12, 3, 13}); got != want {
		t.Errorf("UnpackLB = %x, want %x", got, want)
	}
	if got, want := UnpackHB(a, b), PackB([8]uint8{4, 14, 5, 15, 6, 16, 7, 17}); got != want {
		t.Errorf("UnpackHB = %x, want %x", got, want)
	}
	ah := PackH([4]uint16{100, 200, 300, 400})
	bh := PackH([4]uint16{500, 600, 700, 800})
	if got, want := UnpackLH(ah, bh), PackH([4]uint16{100, 500, 200, 600}); got != want {
		t.Errorf("UnpackLH = %x, want %x", got, want)
	}
	if got, want := UnpackHH(ah, bh), PackH([4]uint16{300, 700, 400, 800}); got != want {
		t.Errorf("UnpackHH = %x, want %x", got, want)
	}
}

func TestMAddH(t *testing.T) {
	a := PackH([4]uint16{uint16(0xfffd), 2, 100, uint16(0xffce)}) // -3, 2, 100, -50
	b := PackH([4]uint16{7, 9, 3, 4})
	got := MAddH(a, b)
	w0 := int32(-3*7 + 2*9)
	w1 := int32(100*3 - 50*4)
	if int32(GetW(got, 0)) != w0 || int32(GetW(got, 1)) != w1 {
		t.Errorf("MAddH = (%d,%d), want (%d,%d)", int32(GetW(got, 0)), int32(GetW(got, 1)), w0, w1)
	}
}

func TestShifts(t *testing.T) {
	x := PackH([4]uint16{0x8000, 0x0001, 0x7fff, 0x0100})
	if got := SraH(x, 4); GetH(got, 0) != 0xf800 {
		t.Errorf("SraH sign extension failed: %x", got)
	}
	if got := SrlH(x, 4); GetH(got, 0) != 0x0800 {
		t.Errorf("SrlH logical failed: %x", got)
	}
	if got := SllH(x, 4); GetH(got, 1) != 0x0010 {
		t.Errorf("SllH failed: %x", got)
	}
	if SllH(x, 16) != 0 || SrlH(x, 16) != 0 {
		t.Error("halfword shifts by >= 16 must produce 0 (logical) lanes")
	}
}

func TestSplat(t *testing.T) {
	if SplatB(0xab) != 0xabababababababab {
		t.Error("SplatB failed")
	}
	if SplatH(0x1234) != 0x1234123412341234 {
		t.Error("SplatH failed")
	}
}

func TestSelect(t *testing.T) {
	f := func(a, b, m uint64) bool {
		return Select(a, b, m) == (a&m | b&^m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ---- accumulator tests ----

func TestAccLaneIsolation(t *testing.T) {
	// Writing one lane must not disturb its neighbours, across the full
	// 192-bit extent (lanes straddle 64-bit word boundaries).
	for mode, lanes := range map[string]int{"24": 8, "48": 4} {
		for i := 0; i < lanes; i++ {
			var a Acc
			if mode == "24" {
				a.SetLane24(i, -1) // all ones in the lane
				for j := 0; j < lanes; j++ {
					want := int64(0)
					if j == i {
						want = -1
					}
					if got := a.Lane24(j); got != want {
						t.Fatalf("24-bit lane %d after writing lane %d: %d", j, i, got)
					}
				}
			} else {
				a.SetLane48(i, -1)
				for j := 0; j < lanes; j++ {
					want := int64(0)
					if j == i {
						want = -1
					}
					if got := a.Lane48(j); got != want {
						t.Fatalf("48-bit lane %d after writing lane %d: %d", j, i, got)
					}
				}
			}
		}
	}
}

func TestAccWraparound(t *testing.T) {
	var a Acc
	a.SetLane24(3, 1<<23-1) // max positive 24-bit
	a.AddB(SetB(0, 3, 1))   // +1 in lane 3
	if got := a.Lane24(3); got != -(1 << 23) {
		t.Errorf("24-bit lane must wrap: got %d", got)
	}
}

func TestAccMulHMatchesDirectSum(t *testing.T) {
	f := func(xs, ys [5]uint64) bool {
		var a Acc
		want := [4]int64{}
		for k := 0; k < 5; k++ {
			a.MulH(xs[k], ys[k])
			for l := 0; l < 4; l++ {
				want[l] += int64(int16(GetH(xs[k], l))) * int64(int16(GetH(ys[k], l)))
			}
		}
		for l := 0; l < 4; l++ {
			if a.Lane48(l) != want[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAccReadHSaturates(t *testing.T) {
	var a Acc
	a.SetLane48(0, 1<<40) // huge positive
	a.SetLane48(1, -(1 << 40))
	a.SetLane48(2, 123<<16)
	got := a.ReadH(16)
	if int16(GetH(got, 0)) != 32767 {
		t.Errorf("lane 0 should saturate high: %d", int16(GetH(got, 0)))
	}
	if int16(GetH(got, 1)) != -32768 {
		t.Errorf("lane 1 should saturate low: %d", int16(GetH(got, 1)))
	}
	if int16(GetH(got, 2)) != 123 {
		t.Errorf("lane 2 should pass through: %d", int16(GetH(got, 2)))
	}
}

func TestAccSADAccumulation(t *testing.T) {
	// AbsDB over several words must equal the scalar SAD per lane.
	f := func(xs, ys [4]uint64) bool {
		var a Acc
		want := [8]int64{}
		for k := range xs {
			a.AbsDB(xs[k], ys[k])
			for l := 0; l < 8; l++ {
				d := int64(GetB(xs[k], l)) - int64(GetB(ys[k], l))
				if d < 0 {
					d = -d
				}
				want[l] += d
			}
		}
		var sum int64
		for l := 0; l < 8; l++ {
			if a.Lane24(l) != want[l] {
				return false
			}
			sum += want[l]
		}
		return a.SumB() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAccClearAndRestore(t *testing.T) {
	var a Acc
	a.MulH(0x7fff7fff7fff7fff, 0x7fff7fff7fff7fff)
	if a.IsZero() {
		t.Fatal("accumulator should be nonzero")
	}
	a.Clear()
	if !a.IsZero() {
		t.Fatal("Clear failed")
	}
	a.WriteH(PackH([4]uint16{0xfffb, 7, 0, 9})) // -5, 7, 0, 9
	if a.Lane48(0) != -5 || a.Lane48(1) != 7 || a.Lane48(3) != 9 {
		t.Errorf("WriteH failed: %d %d %d", a.Lane48(0), a.Lane48(1), a.Lane48(3))
	}
}

func TestMPVH(t *testing.T) {
	var a Acc
	x := PackH([4]uint16{1, 2, 3, 4})
	a.MPVH(x, 10)
	a.MPVH(x, -1)
	for l := 0; l < 4; l++ {
		want := int64(l+1) * 9
		if a.Lane48(l) != want {
			t.Errorf("lane %d: got %d want %d", l, a.Lane48(l), want)
		}
	}
}
