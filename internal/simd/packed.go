// Package simd implements bit-exact packed fixed-point arithmetic on 64-bit
// multimedia words, plus the 192-bit packed accumulators used by the MDMX
// and MOM instruction sets.
//
// A 64-bit word is viewed as 8 byte lanes (B), 4 halfword lanes (H) or
// 2 word lanes (W), little-endian: lane i of width w occupies bits
// [i*w, (i+1)*w).
package simd

// ---- Lane access ----

// GetB returns byte lane i (0..7).
func GetB(x uint64, i int) uint8 { return uint8(x >> (uint(i) * 8)) }

// GetH returns halfword lane i (0..3).
func GetH(x uint64, i int) uint16 { return uint16(x >> (uint(i) * 16)) }

// GetW returns word lane i (0..1).
func GetW(x uint64, i int) uint32 { return uint32(x >> (uint(i) * 32)) }

// SetB returns x with byte lane i replaced by v.
func SetB(x uint64, i int, v uint8) uint64 {
	sh := uint(i) * 8
	return x&^(0xff<<sh) | uint64(v)<<sh
}

// SetH returns x with halfword lane i replaced by v.
func SetH(x uint64, i int, v uint16) uint64 {
	sh := uint(i) * 16
	return x&^(0xffff<<sh) | uint64(v)<<sh
}

// SetW returns x with word lane i replaced by v.
func SetW(x uint64, i int, v uint32) uint64 {
	sh := uint(i) * 32
	return x&^(0xffffffff<<sh) | uint64(v)<<sh
}

// PackB builds a word from 8 byte lanes.
func PackB(b [8]uint8) uint64 {
	var x uint64
	for i, v := range b {
		x |= uint64(v) << (uint(i) * 8)
	}
	return x
}

// PackH builds a word from 4 halfword lanes.
func PackH(h [4]uint16) uint64 {
	var x uint64
	for i, v := range h {
		x |= uint64(v) << (uint(i) * 16)
	}
	return x
}

// ---- Saturation helpers ----

// SatS8 clamps v to [-128, 127].
func SatS8(v int32) int8 {
	if v < -128 {
		return -128
	}
	if v > 127 {
		return 127
	}
	return int8(v)
}

// SatU8 clamps v to [0, 255].
func SatU8(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// SatS16 clamps v to [-32768, 32767].
func SatS16(v int64) int16 {
	if v < -32768 {
		return -32768
	}
	if v > 32767 {
		return 32767
	}
	return int16(v)
}

// SatU16 clamps v to [0, 65535].
func SatU16(v int64) uint16 {
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return uint16(v)
}

// ---- Per-lane map helpers ----

func mapB(a, b uint64, f func(x, y uint8) uint8) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		r |= uint64(f(GetB(a, i), GetB(b, i))) << (uint(i) * 8)
	}
	return r
}

func mapH(a, b uint64, f func(x, y uint16) uint16) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r |= uint64(f(GetH(a, i), GetH(b, i))) << (uint(i) * 16)
	}
	return r
}

func mapW(a, b uint64, f func(x, y uint32) uint32) uint64 {
	var r uint64
	for i := 0; i < 2; i++ {
		r |= uint64(f(GetW(a, i), GetW(b, i))) << (uint(i) * 32)
	}
	return r
}

// ---- Add / subtract ----

// AddB adds byte lanes with wraparound.
func AddB(a, b uint64) uint64 { return mapB(a, b, func(x, y uint8) uint8 { return x + y }) }

// AddH adds halfword lanes with wraparound.
func AddH(a, b uint64) uint64 { return mapH(a, b, func(x, y uint16) uint16 { return x + y }) }

// AddW adds word lanes with wraparound.
func AddW(a, b uint64) uint64 { return mapW(a, b, func(x, y uint32) uint32 { return x + y }) }

// AddSB adds byte lanes with signed saturation.
func AddSB(a, b uint64) uint64 {
	return mapB(a, b, func(x, y uint8) uint8 {
		return uint8(SatS8(int32(int8(x)) + int32(int8(y))))
	})
}

// AddSH adds halfword lanes with signed saturation.
func AddSH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 {
		return uint16(SatS16(int64(int16(x)) + int64(int16(y))))
	})
}

// AddUSB adds byte lanes with unsigned saturation.
func AddUSB(a, b uint64) uint64 {
	return mapB(a, b, func(x, y uint8) uint8 { return SatU8(int32(x) + int32(y)) })
}

// AddUSH adds halfword lanes with unsigned saturation.
func AddUSH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 { return SatU16(int64(x) + int64(y)) })
}

// SubB subtracts byte lanes with wraparound.
func SubB(a, b uint64) uint64 { return mapB(a, b, func(x, y uint8) uint8 { return x - y }) }

// SubH subtracts halfword lanes with wraparound.
func SubH(a, b uint64) uint64 { return mapH(a, b, func(x, y uint16) uint16 { return x - y }) }

// SubW subtracts word lanes with wraparound.
func SubW(a, b uint64) uint64 { return mapW(a, b, func(x, y uint32) uint32 { return x - y }) }

// SubSB subtracts byte lanes with signed saturation.
func SubSB(a, b uint64) uint64 {
	return mapB(a, b, func(x, y uint8) uint8 {
		return uint8(SatS8(int32(int8(x)) - int32(int8(y))))
	})
}

// SubSH subtracts halfword lanes with signed saturation.
func SubSH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 {
		return uint16(SatS16(int64(int16(x)) - int64(int16(y))))
	})
}

// SubUSB subtracts byte lanes with unsigned saturation (floor at 0).
func SubUSB(a, b uint64) uint64 {
	return mapB(a, b, func(x, y uint8) uint8 { return SatU8(int32(x) - int32(y)) })
}

// SubUSH subtracts halfword lanes with unsigned saturation.
func SubUSH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 { return SatU16(int64(x) - int64(y)) })
}

// ---- Multiply ----

// MulLH multiplies halfword lanes, keeping the low 16 bits.
func MulLH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 {
		return uint16(int32(int16(x)) * int32(int16(y)))
	})
}

// MulHH multiplies halfword lanes (signed), keeping the high 16 bits.
func MulHH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 {
		return uint16(uint32(int32(int16(x))*int32(int16(y))) >> 16)
	})
}

// MulHUH multiplies halfword lanes (unsigned), keeping the high 16 bits.
func MulHUH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 {
		return uint16(uint32(x) * uint32(y) >> 16)
	})
}

// MAddH multiplies halfword lanes (signed) and adds adjacent pairs of the
// 32-bit products, producing 2 word lanes (MMX PMADDWD semantics).
func MAddH(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 2; i++ {
		p0 := int32(int16(GetH(a, 2*i))) * int32(int16(GetH(b, 2*i)))
		p1 := int32(int16(GetH(a, 2*i+1))) * int32(int16(GetH(b, 2*i+1)))
		r |= uint64(uint32(p0+p1)) << (uint(i) * 32)
	}
	return r
}

// ---- Average / absolute difference / SAD ----

// AvgB averages unsigned byte lanes with upward rounding.
func AvgB(a, b uint64) uint64 {
	return mapB(a, b, func(x, y uint8) uint8 {
		return uint8((uint16(x) + uint16(y) + 1) >> 1)
	})
}

// AvgH averages unsigned halfword lanes with upward rounding.
func AvgH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 {
		return uint16((uint32(x) + uint32(y) + 1) >> 1)
	})
}

// AbsDB computes |a-b| over unsigned byte lanes.
func AbsDB(a, b uint64) uint64 {
	return mapB(a, b, func(x, y uint8) uint8 {
		if x > y {
			return x - y
		}
		return y - x
	})
}

// AbsDH computes |a-b| over signed halfword lanes.
func AbsDH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 {
		d := int32(int16(x)) - int32(int16(y))
		if d < 0 {
			d = -d
		}
		return uint16(d)
	})
}

// SADBW sums |a-b| over the 8 unsigned byte lanes into a single 64-bit value.
func SADBW(a, b uint64) uint64 {
	var s uint64
	for i := 0; i < 8; i++ {
		x, y := GetB(a, i), GetB(b, i)
		if x > y {
			s += uint64(x - y)
		} else {
			s += uint64(y - x)
		}
	}
	return s
}

// ---- Min / max ----

// MinUB takes the per-lane unsigned byte minimum.
func MinUB(a, b uint64) uint64 {
	return mapB(a, b, func(x, y uint8) uint8 {
		if x < y {
			return x
		}
		return y
	})
}

// MaxUB takes the per-lane unsigned byte maximum.
func MaxUB(a, b uint64) uint64 {
	return mapB(a, b, func(x, y uint8) uint8 {
		if x > y {
			return x
		}
		return y
	})
}

// MinSH takes the per-lane signed halfword minimum.
func MinSH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 {
		if int16(x) < int16(y) {
			return x
		}
		return y
	})
}

// MaxSH takes the per-lane signed halfword maximum.
func MaxSH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 {
		if int16(x) > int16(y) {
			return x
		}
		return y
	})
}

// ---- Compares (mask results: all-ones on true) ----

// CmpEqB compares byte lanes for equality.
func CmpEqB(a, b uint64) uint64 {
	return mapB(a, b, func(x, y uint8) uint8 {
		if x == y {
			return 0xff
		}
		return 0
	})
}

// CmpEqH compares halfword lanes for equality.
func CmpEqH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 {
		if x == y {
			return 0xffff
		}
		return 0
	})
}

// CmpGtB compares signed byte lanes (a > b).
func CmpGtB(a, b uint64) uint64 {
	return mapB(a, b, func(x, y uint8) uint8 {
		if int8(x) > int8(y) {
			return 0xff
		}
		return 0
	})
}

// CmpGtH compares signed halfword lanes (a > b).
func CmpGtH(a, b uint64) uint64 {
	return mapH(a, b, func(x, y uint16) uint16 {
		if int16(x) > int16(y) {
			return 0xffff
		}
		return 0
	})
}

// CmpGtUB compares unsigned byte lanes (a > b).
func CmpGtUB(a, b uint64) uint64 {
	return mapB(a, b, func(x, y uint8) uint8 {
		if x > y {
			return 0xff
		}
		return 0
	})
}

// ---- Shifts (sh is masked per lane width) ----

// SllH shifts halfword lanes left.
func SllH(a uint64, sh uint) uint64 {
	if sh >= 16 {
		return 0
	}
	return mapH(a, 0, func(x, _ uint16) uint16 { return x << sh })
}

// SllW shifts word lanes left.
func SllW(a uint64, sh uint) uint64 {
	if sh >= 32 {
		return 0
	}
	return mapW(a, 0, func(x, _ uint32) uint32 { return x << sh })
}

// SrlH shifts halfword lanes right (logical).
func SrlH(a uint64, sh uint) uint64 {
	if sh >= 16 {
		return 0
	}
	return mapH(a, 0, func(x, _ uint16) uint16 { return x >> sh })
}

// SrlW shifts word lanes right (logical).
func SrlW(a uint64, sh uint) uint64 {
	if sh >= 32 {
		return 0
	}
	return mapW(a, 0, func(x, _ uint32) uint32 { return x >> sh })
}

// SraH shifts halfword lanes right (arithmetic).
func SraH(a uint64, sh uint) uint64 {
	if sh > 15 {
		sh = 15
	}
	return mapH(a, 0, func(x, _ uint16) uint16 { return uint16(int16(x) >> sh) })
}

// SraW shifts word lanes right (arithmetic).
func SraW(a uint64, sh uint) uint64 {
	if sh > 31 {
		sh = 31
	}
	return mapW(a, 0, func(x, _ uint32) uint32 { return uint32(int32(x) >> sh) })
}

// ---- Pack / unpack ----

// PackSSHB packs 8 signed halfwords (a low, b high) into 8 signed-saturated bytes.
func PackSSHB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r |= uint64(uint8(SatS8(int32(int16(GetH(a, i)))))) << (uint(i) * 8)
		r |= uint64(uint8(SatS8(int32(int16(GetH(b, i)))))) << (uint(i+4) * 8)
	}
	return r
}

// PackUSHB packs 8 signed halfwords into 8 unsigned-saturated bytes.
func PackUSHB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r |= uint64(SatU8(int32(int16(GetH(a, i))))) << (uint(i) * 8)
		r |= uint64(SatU8(int32(int16(GetH(b, i))))) << (uint(i+4) * 8)
	}
	return r
}

// PackSSWH packs 4 signed words into 4 signed-saturated halfwords.
func PackSSWH(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 2; i++ {
		r |= uint64(uint16(SatS16(int64(int32(GetW(a, i)))))) << (uint(i) * 16)
		r |= uint64(uint16(SatS16(int64(int32(GetW(b, i)))))) << (uint(i+2) * 16)
	}
	return r
}

// UnpackLB interleaves the low 4 bytes of a and b: a0 b0 a1 b1 a2 b2 a3 b3.
func UnpackLB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r |= uint64(GetB(a, i)) << (uint(2*i) * 8)
		r |= uint64(GetB(b, i)) << (uint(2*i+1) * 8)
	}
	return r
}

// UnpackHB interleaves the high 4 bytes of a and b.
func UnpackHB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r |= uint64(GetB(a, i+4)) << (uint(2*i) * 8)
		r |= uint64(GetB(b, i+4)) << (uint(2*i+1) * 8)
	}
	return r
}

// UnpackLH interleaves the low 2 halfwords of a and b.
func UnpackLH(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 2; i++ {
		r |= uint64(GetH(a, i)) << (uint(2*i) * 16)
		r |= uint64(GetH(b, i)) << (uint(2*i+1) * 16)
	}
	return r
}

// UnpackHH interleaves the high 2 halfwords of a and b.
func UnpackHH(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 2; i++ {
		r |= uint64(GetH(a, i+2)) << (uint(2*i) * 16)
		r |= uint64(GetH(b, i+2)) << (uint(2*i+1) * 16)
	}
	return r
}

// UnpackLW places the low words of a and b side by side (a0 b0).
func UnpackLW(a, b uint64) uint64 {
	return uint64(GetW(a, 0)) | uint64(GetW(b, 0))<<32
}

// UnpackHW places the high words of a and b side by side (a1 b1).
func UnpackHW(a, b uint64) uint64 {
	return uint64(GetW(a, 1)) | uint64(GetW(b, 1))<<32
}

// SplatB broadcasts the low byte of v to all 8 lanes.
func SplatB(v uint64) uint64 {
	b := v & 0xff
	b |= b << 8
	b |= b << 16
	b |= b << 32
	return b
}

// SplatH broadcasts the low halfword of v to all 4 lanes.
func SplatH(v uint64) uint64 {
	h := v & 0xffff
	h |= h << 16
	h |= h << 32
	return h
}

// Select implements the per-bit conditional move: (a & mask) | (b &^ mask).
func Select(a, b, mask uint64) uint64 { return a&mask | b&^mask }
