package simd

// Acc is a 192-bit packed accumulator as introduced by MDMX and adopted by
// MOM. The raw bits can be viewed either as 8 lanes of 24 bits (byte mode)
// or 4 lanes of 48 bits (halfword mode); both views share storage exactly as
// in hardware, so mixing modes reinterprets bits rather than losing them.
type Acc struct {
	raw [3]uint64 // little-endian 192 bits
}

// Bits returns the raw 192-bit contents.
func (a *Acc) Bits() [3]uint64 { return a.raw }

// SetBits overwrites the raw contents.
func (a *Acc) SetBits(b [3]uint64) { a.raw = b }

// Clear zeroes the accumulator.
func (a *Acc) Clear() { a.raw = [3]uint64{} }

// IsZero reports whether the accumulator is all zero.
func (a *Acc) IsZero() bool { return a.raw == [3]uint64{} }

// getBits extracts w bits starting at bit position pos (w <= 64,
// fields never cross more than one 64-bit boundary for w in {24,48}).
func (a *Acc) getBits(pos, w uint) uint64 {
	idx, off := pos/64, pos%64
	v := a.raw[idx] >> off
	if off+w > 64 {
		v |= a.raw[idx+1] << (64 - off)
	}
	return v & (1<<w - 1)
}

// setBits stores the low w bits of v at bit position pos.
func (a *Acc) setBits(pos, w uint, v uint64) {
	v &= 1<<w - 1
	idx, off := pos/64, pos%64
	mask := (uint64(1)<<w - 1) << off
	a.raw[idx] = a.raw[idx]&^mask | v<<off
	if off+w > 64 {
		rem := off + w - 64
		mask2 := uint64(1)<<rem - 1
		a.raw[idx+1] = a.raw[idx+1]&^mask2 | v>>(64-off)
	}
}

// signExt sign-extends the low w bits of v.
func signExt(v uint64, w uint) int64 {
	sh := 64 - w
	return int64(v<<sh) >> sh
}

// Lane24 returns byte-mode lane i (0..7) sign-extended.
func (a *Acc) Lane24(i int) int64 { return signExt(a.getBits(uint(i)*24, 24), 24) }

// SetLane24 stores v (wrapped to 24 bits) into byte-mode lane i.
func (a *Acc) SetLane24(i int, v int64) { a.setBits(uint(i)*24, 24, uint64(v)) }

// Lane48 returns halfword-mode lane i (0..3) sign-extended.
func (a *Acc) Lane48(i int) int64 { return signExt(a.getBits(uint(i)*48, 48), 48) }

// SetLane48 stores v (wrapped to 48 bits) into halfword-mode lane i.
func (a *Acc) SetLane48(i int, v int64) { a.setBits(uint(i)*48, 48, uint64(v)) }

// ---- Accumulating operations ----

// AddB accumulates the unsigned byte lanes of x into the 8x24 view.
func (a *Acc) AddB(x uint64) {
	for i := 0; i < 8; i++ {
		a.SetLane24(i, a.Lane24(i)+int64(GetB(x, i)))
	}
}

// SubB subtracts the unsigned byte lanes of x from the 8x24 view.
func (a *Acc) SubB(x uint64) {
	for i := 0; i < 8; i++ {
		a.SetLane24(i, a.Lane24(i)-int64(GetB(x, i)))
	}
}

// AddH accumulates the signed halfword lanes of x into the 4x48 view.
func (a *Acc) AddH(x uint64) {
	for i := 0; i < 4; i++ {
		a.SetLane48(i, a.Lane48(i)+int64(int16(GetH(x, i))))
	}
}

// SubH subtracts the signed halfword lanes of x from the 4x48 view.
func (a *Acc) SubH(x uint64) {
	for i := 0; i < 4; i++ {
		a.SetLane48(i, a.Lane48(i)-int64(int16(GetH(x, i))))
	}
}

// MulB accumulates signed byte products into the 8x24 view.
func (a *Acc) MulB(x, y uint64) {
	for i := 0; i < 8; i++ {
		p := int64(int8(GetB(x, i))) * int64(int8(GetB(y, i)))
		a.SetLane24(i, a.Lane24(i)+p)
	}
}

// MulH accumulates signed halfword products into the 4x48 view.
func (a *Acc) MulH(x, y uint64) {
	for i := 0; i < 4; i++ {
		p := int64(int16(GetH(x, i))) * int64(int16(GetH(y, i)))
		a.SetLane48(i, a.Lane48(i)+p)
	}
}

// AbsDB accumulates |x-y| over unsigned byte lanes into the 8x24 view.
func (a *Acc) AbsDB(x, y uint64) {
	for i := 0; i < 8; i++ {
		xv, yv := int64(GetB(x, i)), int64(GetB(y, i))
		d := xv - yv
		if d < 0 {
			d = -d
		}
		a.SetLane24(i, a.Lane24(i)+d)
	}
}

// AbsDH accumulates |x-y| over signed halfword lanes into the 4x48 view.
func (a *Acc) AbsDH(x, y uint64) {
	for i := 0; i < 4; i++ {
		d := int64(int16(GetH(x, i))) - int64(int16(GetH(y, i)))
		if d < 0 {
			d = -d
		}
		a.SetLane48(i, a.Lane48(i)+d)
	}
}

// SqDB accumulates (x-y)^2 over unsigned byte lanes into the 8x24 view.
func (a *Acc) SqDB(x, y uint64) {
	for i := 0; i < 8; i++ {
		d := int64(GetB(x, i)) - int64(GetB(y, i))
		a.SetLane24(i, a.Lane24(i)+d*d)
	}
}

// SqDH accumulates (x-y)^2 over signed halfword lanes into the 4x48 view.
func (a *Acc) SqDH(x, y uint64) {
	for i := 0; i < 4; i++ {
		d := int64(int16(GetH(x, i))) - int64(int16(GetH(y, i)))
		a.SetLane48(i, a.Lane48(i)+d*d)
	}
}

// MPVH implements the matrix-per-vector step: for halfword lane l,
// lane48[l] += coef * s16(x.h[l]). The coefficient is supplied by the caller
// (the emulator selects it from the coefficient register by row index).
func (a *Acc) MPVH(x uint64, coef int64) {
	for l := 0; l < 4; l++ {
		a.SetLane48(l, a.Lane48(l)+coef*int64(int16(GetH(x, l))))
	}
}

// ---- Readback ----

// ReadH shifts each 48-bit lane right arithmetically by sh and packs the four
// results into signed-saturated halfwords (MDMX "round and clip to register").
func (a *Acc) ReadH(sh uint) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		v := a.Lane48(i) >> sh
		r |= uint64(uint16(SatS16(v))) << (uint(i) * 16)
	}
	return r
}

// ReadB shifts each 24-bit lane right arithmetically by sh and packs the
// eight results into unsigned-saturated bytes.
func (a *Acc) ReadB(sh uint) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		v := a.Lane24(i) >> sh
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		r |= uint64(v) << (uint(i) * 8)
	}
	return r
}

// SumB returns the sum of the eight 24-bit lanes (enhanced reduction).
func (a *Acc) SumB() int64 {
	var s int64
	for i := 0; i < 8; i++ {
		s += a.Lane24(i)
	}
	return s
}

// SumH returns the sum of the four 48-bit lanes (enhanced reduction).
func (a *Acc) SumH() int64 {
	var s int64
	for i := 0; i < 4; i++ {
		s += a.Lane48(i)
	}
	return s
}

// WriteH loads the 4x48 view from the sign-extended halfword lanes of x
// (accumulator restore).
func (a *Acc) WriteH(x uint64) {
	a.Clear()
	for i := 0; i < 4; i++ {
		a.SetLane48(i, int64(int16(GetH(x, i))))
	}
}

// WriteB loads the 8x24 view from the zero-extended byte lanes of x.
func (a *Acc) WriteB(x uint64) {
	a.Clear()
	for i := 0; i < 8; i++ {
		a.SetLane24(i, int64(GetB(x, i)))
	}
}
