package sweep

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	mom "repro"
)

func pt(workload, isa string, cycles int64, area float64) Point {
	return Point{Exp: "kernel", Workload: workload, ISA: isa, Cycles: cycles, Area: area,
		Key: fmt.Sprintf("k-%s-%s-%d", workload, isa, cycles)}
}

// TestMarkDominated: strict dominance on (cycles, area), ties keep both.
func TestMarkDominated(t *testing.T) {
	points := []Point{
		pt("k", "MOM", 100, 0.87),  // frontier: fewest cycles
		pt("k", "Alpha", 400, 0),   // frontier: zero area
		pt("k", "MMX", 300, 1.0),   // dominated by MOM (fewer cycles, less area)
		pt("k", "MDMX", 250, 1.19), // dominated by MOM
		pt("k", "MOM", 100, 0.87),  // exact tie with point 0: both stay
	}
	markDominated(points)
	want := []bool{false, false, true, true, false}
	for i, w := range want {
		if points[i].Dominated != w {
			t.Errorf("point %d (%s %s): dominated=%v, want %v", i, points[i].ISA, points[i].Workload, points[i].Dominated, w)
		}
	}
}

// TestFrontierKeysOrder: frontier identity is cycles-ascending with
// area/key tiebreaks — stable no matter the point order.
func TestFrontierKeysOrder(t *testing.T) {
	points := []Point{
		pt("b", "Alpha", 400, 0),
		pt("a", "MOM", 100, 0.87),
		pt("c", "MMX", 300, 1.0), // dominated
	}
	markDominated(points)
	got := frontierKeys(points)
	want := []string{points[1].Key, points[0].Key}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("frontier keys %v, want %v", got, want)
	}

	// Same points, shuffled: identical frontier.
	shuffled := []Point{points[2], points[0], points[1]}
	markDominated(shuffled)
	again := frontierKeys(shuffled)
	if len(again) != 2 || again[0] != want[0] || again[1] != want[1] {
		t.Fatalf("shuffled frontier keys %v, want %v", again, want)
	}
}

// TestMemFrontier: one row per memory model ranked by MemModelNames
// order; a row is dominated when a simpler configuration reaches its IPC.
func TestMemFrontier(t *testing.T) {
	mk := func(mem string, ipc float64, key string) Point {
		return Point{Mem: mem, IPC: ipc, Key: key}
	}
	points := []Point{
		mk("perfect", 2.0, "a"),
		mk("perfect", 1.5, "b"),    // not the best perfect point
		mk("perfect50", 1.2, "c"),  // dominated: perfect is simpler-ranked and faster
		mk("collapsing", 2.5, "d"), // frontier: beats every simpler model
		mk("conv", 1.0, "e"),       // dominated
	}
	rows := memFrontier(points)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byMem := map[string]MemFrontierRow{}
	for i, row := range rows {
		byMem[row.Mem] = row
		if i > 0 && rows[i-1].Rank >= row.Rank {
			t.Fatalf("rows not rank-ordered: %+v", rows)
		}
	}
	if r := byMem["perfect"]; r.IPC != 2.0 || r.Key != "a" || r.Dominated {
		t.Errorf("perfect row %+v, want best point a undominated", r)
	}
	if r := byMem["perfect50"]; !r.Dominated {
		t.Errorf("perfect50 row %+v, want dominated by perfect", r)
	}
	if r := byMem["collapsing"]; r.Dominated || r.IPC != 2.5 {
		t.Errorf("collapsing row %+v, want undominated frontier", r)
	}
	if r := byMem["conv"]; !r.Dominated {
		t.Errorf("conv row %+v, want dominated", r)
	}
}

// TestReduce: kernel/app points reduce with metrics from their canonical
// documents (sampled documents contribute whole-stream estimates); other
// experiments are counted, not reduced; missing documents are errors.
func TestReduce(t *testing.T) {
	reqs := []mom.JobRequest{
		{Exp: "kernel", Kernel: "motion1", ISA: "MOM", Width: 4, Mem: "perfect", Scale: "test"},
		{Exp: "fig5", Scale: "test"},
		{Exp: "app", App: "mpeg2decode", ISA: "MMX", Width: 4, Mem: "conv", Scale: "test",
			SamplePeriod: 1501, SampleWarmup: 100, SampleInterval: 150},
	}
	for i := range reqs {
		n, err := reqs[i].Normalized()
		if err != nil {
			t.Fatal(err)
		}
		reqs[i] = n
	}
	docs := Results{}
	k0, _ := reqs[0].Key()
	k1, _ := reqs[1].Key()
	k2, _ := reqs[2].Key()
	docs[k0] = []byte(`{"schema":2,"workload":"motion1","cycles":1000,"insts":500}`)
	docs[k1] = []byte(`{"schema":2,"experiment":"fig5","rows":[]}`)
	docs[k2] = []byte(`{"schema":2,"workload":"mpeg2decode","cycles":90,"insts":60,` +
		`"sampled":{"total_insts":6000,"est_cycles":9000,"ipc_mean":0.66}}`)

	points, skipped, err := Reduce(reqs, docs)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped %d, want 1 (the fig5 grid point)", skipped)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	p := points[0]
	if p.Cycles != 1000 || p.Insts != 500 || p.IPC != 0.5 || p.Area < 0.75 || p.Area > 1.0 {
		t.Errorf("exact kernel point %+v", p)
	}
	q := points[1]
	if q.Cycles != 9000 || q.Insts != 6000 || q.Sample != "1501:100:150" {
		t.Errorf("sampled app point should adopt whole-stream estimates: %+v", q)
	}
	if q.IPC != float64(6000)/float64(9000) {
		t.Errorf("sampled IPC %f", q.IPC)
	}

	delete(docs, k0)
	if _, _, err := Reduce(reqs, docs); err == nil {
		t.Fatal("Reduce accepted a grid with a missing document")
	}
}

// TestReportRoundTrip: WriteJSON output parses back and survives the
// strict schema check; CSV and table writers accept the same report.
func TestReportRoundTrip(t *testing.T) {
	points := []Point{pt("motion1", "MOM", 100, 0.87), pt("motion1", "MMX", 300, 1.0)}
	markDominated(points)
	rep := &Report{
		Schema: mom.SchemaVersion, Sweep: "t", Spec: mom.SweepSpec{Name: "t", Exps: []string{"kernel"}},
		Points: points, AreaFrontier: frontierKeys(points), MemFrontier: memFrontier(points),
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Sweep != "t" || len(back.Points) != 2 || len(back.AreaFrontier) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, err := ParseReport([]byte(`{"schema":1}`)); err == nil {
		t.Fatal("ParseReport accepted a stale schema")
	}
	var csvBuf, tblBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csvBuf.String(), "\n"); lines != 3 {
		t.Errorf("CSV has %d lines, want header + 2 points", lines)
	}
	if err := rep.WriteTable(&tblBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tblBuf.String(), "Pareto frontier") {
		t.Errorf("table output:\n%s", tblBuf.String())
	}
}
