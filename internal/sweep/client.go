package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	mom "repro"
	"repro/internal/serve"
)

// Client executes a sweep against a momserver through the batch endpoint.
// It submits in bounded slices, resubmits only the items the server
// refused for queue capacity — honouring the Retry-After hint under a
// capped, jittered exponential backoff — polls the admitted jobs to
// completion, and fetches their canonical result documents. A draining
// server (or any per-item error other than queue-full) aborts the sweep
// rather than retrying: those are answers, not congestion.
type Client struct {
	Base      string       // server base URL, e.g. "http://127.0.0.1:8347"
	HTTP      *http.Client // nil = http.DefaultClient
	TimeoutMS int64        // per-job server-side deadline hint (0 = server default)
	Resume    bool         // probe GET /v1/store/{key} first; submit only the misses

	MaxAttempts int           // submit rounds per item before giving up (default 8)
	BaseDelay   time.Duration // first backoff step (default 250ms)
	MaxDelay    time.Duration // backoff cap, also caps Retry-After (default 15s)
	PollEvery   time.Duration // job status poll interval (default 50ms)
	BatchSize   int           // items per POST, clamped to the server's 1024 limit (default 256)

	// Jitter maps a computed delay to the slept delay. nil selects equal
	// jitter (uniform in [d/2, d]); tests pin it for determinism.
	Jitter func(time.Duration) time.Duration
}

// tracked is one admitted job the client waits on.
type tracked struct {
	key       string
	id        string
	state     string
	resultURL string
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) defaults() (attempts int, base, maxd, poll time.Duration, batch int, jitter func(time.Duration) time.Duration) {
	attempts, base, maxd, poll, batch, jitter = c.MaxAttempts, c.BaseDelay, c.MaxDelay, c.PollEvery, c.BatchSize, c.Jitter
	if attempts <= 0 {
		attempts = 8
	}
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if maxd <= 0 {
		maxd = 15 * time.Second
	}
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	if batch <= 0 || batch > 1024 {
		batch = 256
	}
	if jitter == nil {
		jitter = equalJitter
	}
	return
}

// equalJitter spreads a delay uniformly over its upper half, the standard
// compromise between desynchronising clients and bounding the wait.
func equalJitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(d-half+1)
}

// Execute implements Executor against the server's batch endpoint.
func (c *Client) Execute(ctx context.Context, reqs []mom.JobRequest) (Results, Stats, error) {
	keys, err := mom.Keys(reqs)
	if err != nil {
		return nil, Stats{}, err
	}
	attempts, base, maxDelay, poll, batchSize, jitter := c.defaults()
	stats := Stats{Points: len(reqs)}
	out := make(Results, len(reqs))

	jobs := make(map[string]*tracked, len(reqs)) // by key
	var order []string                           // keys in first-seen order, for deterministic polling
	pending := make([]int, 0, len(reqs))
	for i := range reqs {
		if c.Resume {
			// The resume pre-pass asks the store directly, point by point,
			// before submitting anything: a sweep interrupted yesterday
			// resubmits only what it never finished.
			doc, ok, err := c.probeStored(ctx, keys[i])
			if err != nil {
				return nil, stats, err
			}
			if ok {
				out[keys[i]] = doc
				stats.StoreHits++
				stats.Resumed++
				continue
			}
		}
		pending = append(pending, i)
	}

	for attempt := 1; len(pending) > 0; attempt++ {
		if attempt > attempts {
			return nil, stats, fmt.Errorf("sweep: server still refusing %d of %d items after %d submit attempts",
				len(pending), len(reqs), attempts)
		}
		if attempt > 1 {
			stats.Retried++
		}
		var refused []int
		var retryAfter time.Duration
		for start := 0; start < len(pending); start += batchSize {
			end := min(start+batchSize, len(pending))
			slice := pending[start:end]
			items, ra, err := c.postBatch(ctx, reqs, slice)
			if err != nil {
				return nil, stats, err
			}
			if ra > retryAfter {
				retryAfter = ra
			}
			if items == nil { // whole slice refused (HTTP 429)
				refused = append(refused, slice...)
				continue
			}
			if len(items) != len(slice) {
				return nil, stats, fmt.Errorf("sweep: batch answered %d items for %d requests", len(items), len(slice))
			}
			for n, it := range items {
				i := slice[n]
				switch {
				case it.Error == serve.ErrMsgQueueFull:
					refused = append(refused, i)
				case it.Error == serve.ErrMsgDraining:
					return nil, stats, fmt.Errorf("sweep: server is draining; aborting with %d items unsubmitted", len(pending)-n)
				case it.Error != "":
					return nil, stats, fmt.Errorf("sweep: point %s (%s %s) refused: %s", keys[i][:12], reqs[i].Exp, workload(reqs[i]), it.Error)
				default:
					if it.Key != keys[i] {
						return nil, stats, fmt.Errorf("sweep: server keyed point %d as %s, client computed %s — version skew?", i, it.Key, keys[i])
					}
					if _, ok := jobs[it.Key]; ok { // duplicate key (shouldn't survive Expand's dedup)
						continue
					}
					jobs[it.Key] = &tracked{key: it.Key, id: it.ID, state: it.State, resultURL: it.ResultURL}
					order = append(order, it.Key)
					if it.FromStore {
						stats.StoreHits++
					} else if it.Coalesced {
						stats.Coalesced++
					} else {
						stats.Computed++
					}
				}
			}
		}
		pending = refused
		if len(pending) == 0 {
			break
		}
		if err := sleepCtx(ctx, backoffDelay(attempt, base, maxDelay, retryAfter, jitter)); err != nil {
			return nil, stats, err
		}
	}

	// Poll every job to a terminal state, then fetch documents.
	for _, key := range order {
		j := jobs[key]
		for j.state != serve.StateDone {
			switch j.state {
			case serve.StateFailed, serve.StateCancelled:
				return nil, stats, fmt.Errorf("sweep: job %s (%s) ended %s", j.id, key[:12], j.state)
			}
			if err := sleepCtx(ctx, poll); err != nil {
				return nil, stats, err
			}
			if err := c.pollJob(ctx, j); err != nil {
				return nil, stats, err
			}
		}
		doc, err := c.fetch(ctx, j.resultURL)
		if err != nil {
			return nil, stats, fmt.Errorf("sweep: result of job %s: %w", j.id, err)
		}
		out[key] = doc
	}
	return out, stats, nil
}

// postBatch submits one slice. It returns (nil, retryAfter, nil) when the
// server refused the whole request with 429 — the caller resubmits the
// slice after backing off — and a hard error for anything else non-200.
func (c *Client) postBatch(ctx context.Context, reqs []mom.JobRequest, slice []int) ([]serve.BatchItem, time.Duration, error) {
	body := mom.BatchRequest{Jobs: make([]mom.JobRequest, len(slice)), TimeoutMS: c.TimeoutMS}
	for n, i := range slice {
		body.Jobs[n] = reqs[i]
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs:batch", bytes.NewReader(buf))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	ra := parseRetryAfter(resp.Header.Get("Retry-After"))
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return nil, ra, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, fmt.Errorf("sweep: server unavailable (draining?): %s", bytes.TrimSpace(msg))
	case resp.StatusCode != http.StatusOK:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, fmt.Errorf("sweep: batch submit: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var out serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, fmt.Errorf("sweep: batch response: %w", err)
	}
	return out.Jobs, ra, nil
}

// probeStored asks the server's content-addressed store for one key's
// document. A 404 is a miss (the point must run); any other non-200 is a
// hard error — a resume pass against a broken server should fail loudly,
// not silently recompute the whole grid.
func (c *Client) probeStored(ctx context.Context, key string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/store/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		doc, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, fmt.Errorf("sweep: resume probe %s: %w", key[:12], err)
		}
		return doc, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, false, fmt.Errorf("sweep: resume probe %s: status %d: %s", key[:12], resp.StatusCode, bytes.TrimSpace(msg))
	}
}

// pollJob refreshes one job's state from GET /v1/jobs/{id}.
func (c *Client) pollJob(ctx context.Context, j *tracked) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+j.id, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("sweep: poll job %s: status %d: %s", j.id, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var doc struct {
		State     string `json:"state"`
		Error     string `json:"error"`
		ResultURL string `json:"result_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("sweep: poll job %s: %w", j.id, err)
	}
	j.state = doc.State
	if doc.ResultURL != "" {
		j.resultURL = doc.ResultURL
	}
	if doc.State == serve.StateFailed && doc.Error != "" {
		return fmt.Errorf("sweep: job %s failed: %s", j.id, doc.Error)
	}
	return nil
}

// fetch downloads one result document.
func (c *Client) fetch(ctx context.Context, resultURL string) ([]byte, error) {
	if resultURL == "" {
		return nil, fmt.Errorf("done job carries no result URL")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+resultURL, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return io.ReadAll(resp.Body)
}

// backoffDelay computes the slept delay of one retry round: exponential
// from base, floored by the server's Retry-After hint, capped at maxDelay
// (the cap wins over the hint — a pathological header cannot park the
// client), then jittered. attempt is the round that just refused (≥1).
func backoffDelay(attempt int, base, maxDelay, retryAfter time.Duration, jitter func(time.Duration) time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > maxDelay {
		d = maxDelay
	}
	return jitter(d)
}

// parseRetryAfter reads the integer-seconds form of the header
// (momserver's form); anything else means no hint.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx waits d or until the context dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
