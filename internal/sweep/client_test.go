package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	mom "repro"
	"repro/internal/serve"
)

// stubServer scripts the batch endpoint one POST at a time: each entry of
// rounds answers one submission. Admitted items are born done with a
// result URL serving "doc:<key>".
type stubServer struct {
	t      *testing.T
	posts  atomic.Int32
	probes atomic.Int32
	stored map[string][]byte // documents GET /v1/store/{key} serves (nil: all 404)
	rounds []func(w http.ResponseWriter, keys []string, items []serve.BatchItem)
}

func (s *stubServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs:batch", func(w http.ResponseWriter, r *http.Request) {
		n := int(s.posts.Add(1)) - 1
		var body mom.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			s.t.Errorf("stub: bad batch body: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		keys := make([]string, len(body.Jobs))
		items := make([]serve.BatchItem, len(body.Jobs))
		for i, jr := range body.Jobs {
			req, err := jr.Normalized()
			if err != nil {
				s.t.Errorf("stub: item %d: %v", i, err)
			}
			keys[i], _ = req.Key()
			items[i] = serve.BatchItem{Index: i, Key: keys[i]}
		}
		if n >= len(s.rounds) {
			s.t.Errorf("stub: unscripted POST #%d", n+1)
			w.WriteHeader(http.StatusTeapot)
			return
		}
		s.rounds[n](w, keys, items)
	})
	mux.HandleFunc("GET /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		s.probes.Add(1)
		doc, ok := s.stored[r.PathValue("key")]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write(doc)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		json.NewEncoder(w).Encode(map[string]any{
			"id": id, "state": serve.StateDone, "result_url": "/v1/jobs/" + id + "/result",
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		// Job ids are "j-<key>" below, so the document names its key.
		fmt.Fprintf(w, "doc:%s", strings.TrimPrefix(r.PathValue("id"), "j-"))
	})
	return mux
}

// admitAll scripts a round that admits every item born-done.
func admitAll(w http.ResponseWriter, keys []string, items []serve.BatchItem) {
	for i := range items {
		items[i].ID = "j-" + keys[i]
		items[i].State = serve.StateDone
		items[i].ResultURL = "/v1/jobs/" + items[i].ID + "/result"
	}
	json.NewEncoder(w).Encode(serve.BatchResponse{Jobs: items})
}

// refuseAll scripts a round that refuses every item queue-full with a
// Retry-After hint.
func refuseAll(retryAfter string) func(http.ResponseWriter, []string, []serve.BatchItem) {
	return func(w http.ResponseWriter, keys []string, items []serve.BatchItem) {
		for i := range items {
			items[i].Error = serve.ErrMsgQueueFull
		}
		w.Header().Set("Retry-After", retryAfter)
		json.NewEncoder(w).Encode(serve.BatchResponse{Jobs: items})
	}
}

func twoReqs(t *testing.T) []mom.JobRequest {
	t.Helper()
	spec := mom.SweepSpec{Exps: []string{"kernel"}, Kernels: []string{"motion1"}, ISAs: []string{"Alpha", "MOM"}}
	reqs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestClientRetriesQueueFull: refused items are resubmitted after a
// backoff and the sweep completes once the queue drains; the Retry-After
// hint is honoured but capped at MaxDelay.
func TestClientRetriesQueueFull(t *testing.T) {
	stub := &stubServer{t: t}
	stub.rounds = []func(http.ResponseWriter, []string, []serve.BatchItem){
		refuseAll("1"), // 1s hint — must be capped to MaxDelay below
		admitAll,
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	var slept []time.Duration
	c := &Client{
		Base: ts.URL, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		Jitter: func(d time.Duration) time.Duration { slept = append(slept, d); return d },
	}
	reqs := twoReqs(t)
	out, stats, err := c.Execute(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := stub.posts.Load(); got != 2 {
		t.Fatalf("server saw %d POSTs, want 2", got)
	}
	if stats.Retried != 1 || stats.Points != 2 || stats.Computed != 2 {
		t.Fatalf("stats %+v", stats)
	}
	if len(slept) != 1 || slept[0] != 5*time.Millisecond {
		t.Fatalf("backoff slept %v, want the 1s Retry-After capped to MaxDelay (5ms)", slept)
	}
	keys, _ := mom.Keys(reqs)
	for _, k := range keys {
		if string(out[k]) != "doc:"+k {
			t.Fatalf("document for %s = %q", k[:12], out[k])
		}
	}
}

// TestClientHonorsRetryAfter: when the hint exceeds the exponential step
// but fits under the cap, the hint wins.
func TestClientHonorsRetryAfter(t *testing.T) {
	stub := &stubServer{t: t}
	stub.rounds = []func(http.ResponseWriter, []string, []serve.BatchItem){refuseAll("2"), admitAll}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	var computed time.Duration
	c := &Client{
		Base: ts.URL, BaseDelay: time.Millisecond, MaxDelay: time.Hour,
		// The jitter hook observes the computed delay and substitutes a
		// fast one so the test does not actually wait two seconds.
		Jitter: func(d time.Duration) time.Duration { computed = d; return time.Millisecond },
	}
	if _, _, err := c.Execute(context.Background(), twoReqs(t)); err != nil {
		t.Fatal(err)
	}
	if computed != 2*time.Second {
		t.Fatalf("computed delay %v, want the 2s Retry-After hint", computed)
	}
}

// TestClientWholeRequest429: a server answering 429 (a front proxy, say)
// retries the whole slice with the same backoff discipline.
func TestClientWholeRequest429(t *testing.T) {
	stub := &stubServer{t: t}
	stub.rounds = []func(http.ResponseWriter, []string, []serve.BatchItem){
		func(w http.ResponseWriter, _ []string, _ []serve.BatchItem) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		},
		admitAll,
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	c := &Client{Base: ts.URL, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		Jitter: func(d time.Duration) time.Duration { return d }}
	_, stats, err := c.Execute(context.Background(), twoReqs(t))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retried != 1 || stub.posts.Load() != 2 {
		t.Fatalf("stats %+v after %d POSTs", stats, stub.posts.Load())
	}
}

// TestClientDrainMidRetry: a server that starts draining between retry
// rounds aborts the sweep immediately — draining is an answer, not
// congestion, so no further submissions happen.
func TestClientDrainMidRetry(t *testing.T) {
	stub := &stubServer{t: t}
	stub.rounds = []func(http.ResponseWriter, []string, []serve.BatchItem){
		refuseAll("0"),
		func(w http.ResponseWriter, _ []string, items []serve.BatchItem) {
			for i := range items {
				items[i].Error = serve.ErrMsgDraining
			}
			json.NewEncoder(w).Encode(serve.BatchResponse{Jobs: items})
		},
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	c := &Client{Base: ts.URL, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
		Jitter: func(d time.Duration) time.Duration { return d }}
	_, _, err := c.Execute(context.Background(), twoReqs(t))
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("err = %v, want a draining abort", err)
	}
	if got := stub.posts.Load(); got != 2 {
		t.Fatalf("server saw %d POSTs, want 2 (no retry after the drain answer)", got)
	}
}

// TestClientContextCancelDuringBackoff: cancellation interrupts the
// backoff sleep promptly instead of waiting it out.
func TestClientContextCancelDuringBackoff(t *testing.T) {
	stub := &stubServer{t: t}
	stub.rounds = []func(http.ResponseWriter, []string, []serve.BatchItem){refuseAll("60")}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	c := &Client{Base: ts.URL, BaseDelay: time.Second, MaxDelay: time.Hour,
		Jitter: func(d time.Duration) time.Duration { return d }}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.Execute(ctx, twoReqs(t))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — the 60s Retry-After was slept through", elapsed)
	}
}

// TestClientGivesUp: a server that never admits exhausts MaxAttempts with
// a diagnostic instead of spinning forever.
func TestClientGivesUp(t *testing.T) {
	stub := &stubServer{t: t}
	stub.rounds = []func(http.ResponseWriter, []string, []serve.BatchItem){
		refuseAll("0"), refuseAll("0"), refuseAll("0"),
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	c := &Client{Base: ts.URL, MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
		Jitter: func(d time.Duration) time.Duration { return d }}
	_, stats, err := c.Execute(context.Background(), twoReqs(t))
	if err == nil || !strings.Contains(err.Error(), "3 submit attempts") {
		t.Fatalf("err = %v, want a give-up diagnostic", err)
	}
	if stats.Retried != 2 {
		t.Fatalf("stats %+v, want 2 retry rounds", stats)
	}
}

// TestClientPerItemError: a non-capacity item error (validation) fails
// the sweep naming the point rather than retrying.
func TestClientPerItemError(t *testing.T) {
	stub := &stubServer{t: t}
	stub.rounds = []func(http.ResponseWriter, []string, []serve.BatchItem){
		func(w http.ResponseWriter, _ []string, items []serve.BatchItem) {
			items[0].Error = "unknown experiment"
			json.NewEncoder(w).Encode(serve.BatchResponse{Jobs: items})
		},
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	c := &Client{Base: ts.URL}
	_, _, err := c.Execute(context.Background(), twoReqs(t))
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want the item's refusal surfaced", err)
	}
	if stub.posts.Load() != 1 {
		t.Fatal("validation errors must not be retried")
	}
}

// TestClientResumeSkipsStoredPoints: with Resume set, points whose
// documents the server store already holds are fetched in the pre-pass
// and never submitted; only the misses reach the batch endpoint.
func TestClientResumeSkipsStoredPoints(t *testing.T) {
	reqs := twoReqs(t)
	keys, _ := mom.Keys(reqs)
	stub := &stubServer{t: t, stored: map[string][]byte{keys[0]: []byte("doc:" + keys[0])}}
	stub.rounds = []func(http.ResponseWriter, []string, []serve.BatchItem){
		func(w http.ResponseWriter, keys []string, items []serve.BatchItem) {
			if len(items) != 1 || keys[0] != reqKey(t, reqs[1]) {
				t.Errorf("resume submitted %d items (first key %s), want only the missing point", len(items), keys[0][:12])
			}
			admitAll(w, keys, items)
		},
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	c := &Client{Base: ts.URL, Resume: true}
	out, stats, err := c.Execute(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stub.posts.Load() != 1 || stub.probes.Load() != 2 {
		t.Fatalf("server saw %d POSTs and %d probes, want 1 and 2", stub.posts.Load(), stub.probes.Load())
	}
	if stats.Resumed != 1 || stats.StoreHits != 1 || stats.Computed != 1 || stats.Points != 2 {
		t.Fatalf("stats %+v", stats)
	}
	for _, k := range keys {
		if string(out[k]) != "doc:"+k {
			t.Fatalf("document for %s = %q", k[:12], out[k])
		}
	}
}

// TestClientResumeAllStored: a fully-stored grid resumes without a single
// batch submission.
func TestClientResumeAllStored(t *testing.T) {
	reqs := twoReqs(t)
	keys, _ := mom.Keys(reqs)
	stub := &stubServer{t: t, stored: map[string][]byte{}}
	for _, k := range keys {
		stub.stored[k] = []byte("doc:" + k)
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	out, stats, err := (&Client{Base: ts.URL, Resume: true}).Execute(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stub.posts.Load() != 0 {
		t.Fatalf("fully-stored resume still POSTed %d times", stub.posts.Load())
	}
	if stats.Resumed != 2 || stats.StoreHits != 2 || stats.Computed != 0 || len(out) != 2 {
		t.Fatalf("stats %+v with %d documents", stats, len(out))
	}
}

// TestClientResumeProbeError: a store probe answering neither 200 nor 404
// aborts the sweep — silently recomputing a whole grid because the store
// endpoint is broken would defeat the point of resuming.
func TestClientResumeProbeError(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "store exploded", http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	_, _, err := (&Client{Base: ts.URL, Resume: true}).Execute(context.Background(), twoReqs(t))
	if err == nil || !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("err = %v, want the probe failure surfaced", err)
	}
}

func reqKey(t *testing.T, r mom.JobRequest) string {
	t.Helper()
	k, err := r.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestEqualJitter: the default jitter keeps delays in [d/2, d].
func TestEqualJitter(t *testing.T) {
	d := 10 * time.Second
	for i := 0; i < 100; i++ {
		j := equalJitter(d)
		if j < d/2 || j > d {
			t.Fatalf("equalJitter(%v) = %v outside [%v, %v]", d, j, d/2, d)
		}
	}
}

// TestBackoffDelay: exponential growth from base, floored by the hint,
// capped at max.
func TestBackoffDelay(t *testing.T) {
	ident := func(d time.Duration) time.Duration { return d }
	base, maxd := 100*time.Millisecond, time.Second
	for _, tc := range []struct {
		attempt int
		hint    time.Duration
		want    time.Duration
	}{
		{1, 0, 100 * time.Millisecond},
		{2, 0, 200 * time.Millisecond},
		{5, 0, time.Second},                                 // capped
		{1, 500 * time.Millisecond, 500 * time.Millisecond}, // hint floors
		{1, time.Minute, time.Second},                       // hint capped
	} {
		if got := backoffDelay(tc.attempt, base, maxd, tc.hint, ident); got != tc.want {
			t.Errorf("backoffDelay(attempt=%d, hint=%v) = %v, want %v", tc.attempt, tc.hint, got, tc.want)
		}
	}
}
