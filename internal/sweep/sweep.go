// Package sweep is the design-space exploration engine: it executes the
// deduplicated grid a mom.SweepSpec expands to — in-process on a bounded
// worker pool, or remotely against a momserver's batch endpoint — and
// reduces the canonical result documents to Pareto-frontier reports
// (cycles versus register-file area from the Table 2 model, and IPC
// versus memory configuration).
//
// The engine is built on the content-address identity of JobRequest: the
// grid is deduplicated by key before anything runs, results are memoised
// under the same keys (a local store for in-process runs, the momserver
// store for remote ones), and because every driver is deterministic the
// report assembled from those documents is byte-identical across runs and
// across execution paths. The sampled-first/exact-refine strategy runs
// the grid under its sampling regime first, then re-runs only the
// Pareto-frontier points exact until the frontier is confirmed.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	mom "repro"
	"repro/internal/par"
	"repro/internal/store"
)

// Results maps content-address keys to canonical result documents.
type Results map[string][]byte

// Stats summarises how a sweep executed. It is reporting-only and never
// part of the report document, so execution-path details (hits versus
// computes, retries) cannot break the report's byte reproducibility.
type Stats struct {
	Points    int // grid points submitted for execution (including refine re-runs)
	StoreHits int // answered by a content-addressed store without running
	Coalesced int // attached to an in-flight computation (remote only)
	Computed  int // actually executed
	Retried   int // submit rounds beyond the first (remote admission backoff)
	Skipped   int // executed points that are not reducible to report rows
	Resumed   int // store hits found by the -resume pre-pass (subset of StoreHits)
}

func (s *Stats) add(o Stats) {
	s.Points += o.Points
	s.StoreHits += o.StoreHits
	s.Coalesced += o.Coalesced
	s.Computed += o.Computed
	s.Retried += o.Retried
	s.Skipped += o.Skipped
	s.Resumed += o.Resumed
}

// String renders the stats as the one-line execution summary momsweep
// prints to stderr (machine-greppable key=value form).
func (s Stats) String() string {
	return fmt.Sprintf("points=%d store_hits=%d coalesced=%d computed=%d retried=%d skipped=%d resumed=%d",
		s.Points, s.StoreHits, s.Coalesced, s.Computed, s.Retried, s.Skipped, s.Resumed)
}

// An Executor runs a list of canonical requests and returns their result
// documents keyed by content address. Local runs in-process; Client runs
// against a momserver.
type Executor interface {
	Execute(ctx context.Context, reqs []mom.JobRequest) (Results, Stats, error)
}

// Local executes requests in-process on a bounded worker pool, memoising
// documents in an optional content-addressed store so re-running a sweep
// (or overlapping sweeps) recomputes nothing.
type Local struct {
	Par    int          // worker count (0 = all host cores)
	Store  *store.Store // optional; nil recomputes every point
	Resume bool         // count store hits as resumed points (momsweep -resume)
}

// Execute runs every request, first consulting the store. Documents are
// byte-identical to what a momserver would produce: both paths run
// mom.RunJobRequest on the canonical request form.
func (l *Local) Execute(ctx context.Context, reqs []mom.JobRequest) (Results, Stats, error) {
	keys, err := mom.Keys(reqs)
	if err != nil {
		return nil, Stats{}, err
	}
	workers := l.Par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make(Results, len(reqs))
	stats := Stats{Points: len(reqs)}
	var mu sync.Mutex
	err = par.ForN(ctx, workers, len(reqs), func(i int) error {
		key := keys[i]
		if l.Store != nil {
			if val, ok := l.Store.Get(key); ok {
				mu.Lock()
				out[key] = val
				stats.StoreHits++
				if l.Resume {
					stats.Resumed++
				}
				mu.Unlock()
				return nil
			}
		}
		doc, err := mom.RunJobRequest(ctx, reqs[i])
		if err != nil {
			return fmt.Errorf("sweep: point %s (%s %s): %w", key[:12], reqs[i].Exp, workload(reqs[i]), err)
		}
		if l.Store != nil {
			// Best effort, like the server's write path: a failed write
			// only costs a future recompute.
			_ = l.Store.Put(key, doc)
		}
		mu.Lock()
		out[key] = doc
		stats.Computed++
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// workload names the axis point of a request for error messages.
func workload(r mom.JobRequest) string {
	if r.Kernel != "" {
		return r.Kernel
	}
	if r.App != "" {
		return r.App
	}
	return "-"
}

// Run executes a sweep end to end: expand the spec, execute the grid,
// reduce to Pareto-marked points, and — when the spec asks for it —
// refine the frontier exact. The returned report depends only on the spec
// and the simulated machines, never on the execution path, so local and
// remote runs of the same spec produce byte-identical reports.
func Run(ctx context.Context, spec mom.SweepSpec, ex Executor) (*Report, Stats, error) {
	reqs, err := spec.Expand()
	if err != nil {
		return nil, Stats{}, err
	}
	docs, stats, err := ex.Execute(ctx, reqs)
	if err != nil {
		return nil, stats, err
	}
	points, skipped, err := Reduce(reqs, docs)
	if err != nil {
		return nil, stats, err
	}
	stats.Skipped += skipped
	if len(points) == 0 {
		return nil, stats, fmt.Errorf("sweep: no kernel/app points to reduce (the report axes need single-workload runs; the grid held %d other points)", skipped)
	}
	markDominated(points)
	before := frontierKeys(points)
	if spec.Refine {
		if err := refine(ctx, points, docs, ex, &stats); err != nil {
			return nil, stats, err
		}
	}
	after := frontierKeys(points)
	rep := &Report{
		Schema:       mom.SchemaVersion,
		Sweep:        spec.Name,
		Spec:         spec,
		Points:       points,
		AreaFrontier: after,
		MemFrontier:  memFrontier(points),
		Refined:      spec.Refine,
	}
	if spec.Refine && !equalKeys(before, after) {
		rep.FrontierChanged = true
	}
	return rep, stats, nil
}

// refine implements the sampled-first/exact-refine strategy: every
// sampled point on the current frontier is re-run exact (its sampling
// parameters cleared — a different computation, so a different key) and
// its metrics replaced by the exact run's; dominance is then recomputed.
// Because refinement can promote a previously dominated sampled point
// onto the frontier, the loop repeats until the frontier holds no
// unrefined sampled points; it terminates because each round refines at
// least one point.
func refine(ctx context.Context, points []Point, docs Results, ex Executor, stats *Stats) error {
	for {
		var (
			idx   []int
			fresh []mom.JobRequest
			want  = map[string]bool{}
		)
		for i := range points {
			p := &points[i]
			if p.Dominated || p.Sample == "" || p.Refined {
				continue
			}
			exact, err := exactTwin(*p)
			if err != nil {
				return err
			}
			key, err := exact.Key()
			if err != nil {
				return err
			}
			p.ExactKey = key
			idx = append(idx, i)
			// The exact twin may already be in the grid (or shared by two
			// frontier points); execute it once at most.
			if _, ok := docs[key]; !ok && !want[key] {
				want[key] = true
				fresh = append(fresh, exact)
			}
		}
		if len(idx) == 0 {
			return nil
		}
		if len(fresh) > 0 {
			extra, st, err := ex.Execute(ctx, fresh)
			if err != nil {
				return err
			}
			stats.add(st)
			for k, v := range extra {
				docs[k] = v
			}
		}
		for _, i := range idx {
			p := &points[i]
			doc, ok := docs[p.ExactKey]
			if !ok {
				return fmt.Errorf("sweep: refine: no document for exact key %s", p.ExactKey)
			}
			if err := p.adopt(doc); err != nil {
				return err
			}
			p.Refined = true
		}
		markDominated(points)
	}
}

// exactTwin is the exact-simulation form of a sampled point's request.
func exactTwin(p Point) (mom.JobRequest, error) {
	r := mom.JobRequest{Exp: p.Exp, Scale: p.Scale, Width: p.Width, ISA: p.ISA, Mem: p.Mem}
	if p.Exp == "kernel" {
		r.Kernel = p.Workload
	} else {
		r.App = p.Workload
	}
	return r.Normalized()
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
