package sweep

import (
	"encoding/json"
	"fmt"
	"sort"

	mom "repro"
	"repro/internal/regfile"
)

// Point is one reduced grid point of a sweep report: the machine point
// that ran, the cycle/IPC metrics of its canonical result document, and
// the register-file area of its ISA level from the Table 2 model. Every
// field is derived from the request and the document — never from how or
// where the point executed — so reports reproduce byte-identically.
type Point struct {
	Exp      string  `json:"exp"`
	Workload string  `json:"workload"`
	ISA      string  `json:"isa"`
	Width    int     `json:"width"`
	Mem      string  `json:"mem"`
	Scale    string  `json:"scale"`
	Sample   string  `json:"sample,omitempty"` // sampling regime of the grid run ("" = exact)
	Key      string  `json:"key"`              // content address of the grid run
	Cycles   int64   `json:"cycles"`           // exact, or the sampled estimate
	Insts    uint64  `json:"insts"`            // graduated (sampled: total-stream count)
	IPC      float64 `json:"ipc"`
	Area     float64 `json:"area"` // normalised multimedia register-file area (Table 2)
	// Dominated marks a point beaten on both axes of the cycles-vs-area
	// trade-off by some other point; the frontier is the undominated rest.
	Dominated bool `json:"dominated"`
	// Refined: the metrics above were replaced by an exact re-run (under
	// ExactKey) because the point sat on the frontier of a sampled sweep.
	Refined  bool   `json:"refined,omitempty"`
	ExactKey string `json:"exact_key,omitempty"`
}

// resultDoc is the slice of the canonical kernel/app result document the
// reducer needs.
type resultDoc struct {
	Schema   int    `json:"schema"`
	Workload string `json:"workload"`
	Cycles   int64  `json:"cycles"`
	Insts    uint64 `json:"insts"`
	Sampled  *struct {
		TotalInsts uint64 `json:"total_insts"`
		EstCycles  int64  `json:"est_cycles"`
	} `json:"sampled"`
}

// adopt replaces the point's metrics with those of a canonical result
// document. Sampled documents contribute their whole-stream estimates
// (est_cycles over total_insts), so sampled and exact points compare on
// the same axis.
func (p *Point) adopt(doc []byte) error {
	var d resultDoc
	if err := json.Unmarshal(doc, &d); err != nil {
		return fmt.Errorf("sweep: result document for %s %s: %w", p.Exp, p.Workload, err)
	}
	p.Cycles, p.Insts = d.Cycles, d.Insts
	if d.Sampled != nil {
		p.Cycles, p.Insts = d.Sampled.EstCycles, d.Sampled.TotalInsts
	}
	if p.Cycles > 0 {
		p.IPC = float64(p.Insts) / float64(p.Cycles)
	} else {
		p.IPC = 0
	}
	return nil
}

// Reduce turns the executed grid into report points, in grid order. Only
// single-workload runs ("kernel"/"app") carry the per-point metrics the
// Pareto axes need; other experiments in the grid execute fine but are
// counted as skipped rather than reduced.
func Reduce(reqs []mom.JobRequest, docs Results) ([]Point, int, error) {
	points := make([]Point, 0, len(reqs))
	skipped := 0
	for _, r := range reqs {
		if r.Exp != "kernel" && r.Exp != "app" {
			skipped++
			continue
		}
		key, err := r.Key()
		if err != nil {
			return nil, skipped, err
		}
		doc, ok := docs[key]
		if !ok {
			return nil, skipped, fmt.Errorf("sweep: no document for point %s (%s %s)", key[:12], r.Exp, workload(r))
		}
		area, ok := regfile.NormalizedArea(r.ISA)
		if !ok {
			return nil, skipped, fmt.Errorf("sweep: no register-file area model for ISA %q", r.ISA)
		}
		p := Point{
			Exp: r.Exp, Workload: workload(r), ISA: r.ISA, Width: r.Width,
			Mem: r.Mem, Scale: r.Scale, Sample: r.Sample().String(),
			Key: key, Area: area,
		}
		if err := p.adopt(doc); err != nil {
			return nil, skipped, err
		}
		points = append(points, p)
	}
	return points, skipped, nil
}

// markDominated marks every point beaten on the (cycles, area) trade-off:
// p is dominated when some q is no worse on both axes and strictly better
// on at least one. Ties on both axes dominate neither way, so duplicate
// trade-off points share the frontier.
func markDominated(points []Point) {
	for i := range points {
		p := &points[i]
		p.Dominated = false
		for j := range points {
			if i == j {
				continue
			}
			q := &points[j]
			if q.Cycles <= p.Cycles && q.Area <= p.Area &&
				(q.Cycles < p.Cycles || q.Area < p.Area) {
				p.Dominated = true
				break
			}
		}
	}
}

// frontierKeys lists the undominated points' keys, ordered by cycles
// ascending (ties: area, then key) — a deterministic frontier identity
// that local and remote runs of the same spec agree on byte for byte.
func frontierKeys(points []Point) []string {
	var f []*Point
	for i := range points {
		if !points[i].Dominated {
			f = append(f, &points[i])
		}
	}
	sort.Slice(f, func(i, j int) bool {
		if f[i].Cycles != f[j].Cycles {
			return f[i].Cycles < f[j].Cycles
		}
		if f[i].Area != f[j].Area {
			return f[i].Area < f[j].Area
		}
		return f[i].Key < f[j].Key
	})
	keys := make([]string, len(f))
	for i, p := range f {
		keys[i] = p.Key
	}
	return keys
}

// MemFrontierRow is one memory configuration's entry in the IPC-versus-
// memory-model trade-off: the best IPC any grid point achieved under that
// model, against the model's complexity rank (its position in
// mom.MemModelNames — idealised models first, the banked/MSHR hierarchies
// after). A row is dominated when a lower-ranked (simpler) configuration
// already reaches at least its IPC.
type MemFrontierRow struct {
	Mem       string  `json:"mem"`
	Rank      int     `json:"rank"`
	IPC       float64 `json:"ipc"`
	Key       string  `json:"key"` // the point that achieved the row's IPC
	Dominated bool    `json:"dominated"`
}

// memFrontier reduces the points to one row per memory configuration
// present in the grid, ordered by complexity rank.
func memFrontier(points []Point) []MemFrontierRow {
	rank := map[string]int{}
	for i, name := range mom.MemModelNames {
		rank[name] = i
	}
	best := map[string]*MemFrontierRow{}
	for i := range points {
		p := &points[i]
		row, ok := best[p.Mem]
		if !ok {
			best[p.Mem] = &MemFrontierRow{Mem: p.Mem, Rank: rank[p.Mem], IPC: p.IPC, Key: p.Key}
			continue
		}
		// Deterministic winner: higher IPC, ties to the smaller key.
		if p.IPC > row.IPC || (p.IPC == row.IPC && p.Key < row.Key) {
			row.IPC, row.Key = p.IPC, p.Key
		}
	}
	rows := make([]MemFrontierRow, 0, len(best))
	for _, row := range best {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Rank < rows[j].Rank })
	for i := range rows {
		for j := range rows {
			if rows[j].Rank < rows[i].Rank && rows[j].IPC >= rows[i].IPC {
				rows[i].Dominated = true
				break
			}
		}
	}
	return rows
}
