package sweep

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	mom "repro"
	"repro/internal/serve"
	"repro/internal/store"
)

// e2eSpec is a small real grid: one kernel across two ISAs, two widths
// and two memory models (8 points).
func e2eSpec() mom.SweepSpec {
	return mom.SweepSpec{
		Name: "e2e", Exps: []string{"kernel"}, Kernels: []string{"motion1"},
		ISAs: []string{"Alpha", "MOM"}, Widths: []int{1, 4},
		Mems: []string{"perfect", "perfect50"},
	}
}

func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunLocalStoreAndRemoteIdentical is the subsystem's core promise:
// the same spec run in-process (twice, through a store) and against a
// live momserver produces byte-identical reports, and the second local
// run computes nothing.
func TestRunLocalStoreAndRemoteIdentical(t *testing.T) {
	ctx := context.Background()
	spec := e2eSpec()

	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	local := &Local{Par: 2, Store: st}
	rep1, stats1, err := Run(ctx, spec, local)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Points != 8 || stats1.Computed != 8 || stats1.StoreHits != 0 {
		t.Fatalf("first local run stats %+v, want 8 computed", stats1)
	}
	rep2, stats2, err := Run(ctx, spec, local)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.StoreHits != 8 || stats2.Computed != 0 {
		t.Fatalf("second local run stats %+v, want 8 store hits", stats2)
	}
	b1, b2 := reportBytes(t, rep1), reportBytes(t, rep2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("local reports differ across runs:\n%s\nvs\n%s", b1, b2)
	}

	srv := serve.New(serve.Config{Workers: 2, QueueCap: 64})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	remote := &Client{Base: ts.URL, PollEvery: 2 * time.Millisecond}
	rep3, stats3, err := Run(ctx, spec, remote)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Points != 8 || stats3.Computed != 8 {
		t.Fatalf("remote run stats %+v", stats3)
	}
	if b3 := reportBytes(t, rep3); !bytes.Equal(b1, b3) {
		t.Fatalf("local and remote reports differ:\n%s\nvs\n%s", b1, b3)
	}

	if len(rep1.AreaFrontier) == 0 || len(rep1.MemFrontier) == 0 {
		t.Fatalf("empty frontier: %+v", rep1)
	}
	// The frontier is consistent with the dominance marks.
	undominated := 0
	for _, p := range rep1.Points {
		if !p.Dominated {
			undominated++
		}
	}
	if undominated != len(rep1.AreaFrontier) {
		t.Fatalf("%d undominated points but %d frontier keys", undominated, len(rep1.AreaFrontier))
	}
}

// TestRunResume: an interrupted sweep resumed against the same stores
// recomputes only what never finished. In-process, resume is the store
// short-circuit with its hits counted; against a live momserver, the
// resume pre-pass probes GET /v1/store/{key} and submits only the misses
// — and both paths still produce the byte-identical report.
func TestRunResume(t *testing.T) {
	ctx := context.Background()
	spec := e2eSpec()

	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rep1, _, err := Run(ctx, spec, &Local{Par: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	rep2, stats2, err := Run(ctx, spec, &Local{Par: 2, Store: st, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Resumed != 8 || stats2.Computed != 0 {
		t.Fatalf("local resume stats %+v, want 8 resumed", stats2)
	}
	if b1, b2 := reportBytes(t, rep1), reportBytes(t, rep2); !bytes.Equal(b1, b2) {
		t.Fatalf("resumed report differs:\n%s\nvs\n%s", b1, b2)
	}

	// A momserver whose store holds half the grid: the resuming client
	// computes exactly the other half.
	srvStore, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := mom.Keys(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		doc, ok := st.Get(keys[i])
		if !ok {
			t.Fatalf("local store lost key %s", keys[i][:12])
		}
		if err := srvStore.Put(keys[i], doc); err != nil {
			t.Fatal(err)
		}
	}
	srv := serve.New(serve.Config{Workers: 2, QueueCap: 64, Store: srvStore})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	rep3, stats3, err := Run(ctx, spec, &Client{Base: ts.URL, PollEvery: 2 * time.Millisecond, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Resumed != 4 || stats3.Computed != 4 {
		t.Fatalf("remote resume stats %+v, want 4 resumed + 4 computed", stats3)
	}
	if b1, b3 := reportBytes(t, rep1), reportBytes(t, rep3); !bytes.Equal(b1, b3) {
		t.Fatalf("remote resumed report differs:\n%s\nvs\n%s", b1, b3)
	}
}

// TestRunRefine: with Refine set, sampled frontier points are re-run
// exact and adopt the exact metrics; refinement never leaves a sampled
// unrefined point on the frontier.
func TestRunRefine(t *testing.T) {
	ctx := context.Background()
	spec := mom.SweepSpec{
		Name: "refine", Exps: []string{"kernel"}, Kernels: []string{"motion1"},
		ISAs: []string{"MMX", "MOM"}, Samples: []string{"1501:100:150"},
		Refine: true,
	}
	rep, stats, err := Run(ctx, spec, &Local{Par: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Refined {
		t.Fatal("report does not record the refine pass")
	}
	refined := 0
	for _, p := range rep.Points {
		if p.Dominated {
			continue
		}
		if p.Sample == "" || !p.Refined || p.ExactKey == "" {
			t.Fatalf("frontier point not refined: %+v", p)
		}
		refined++

		// The adopted metrics are exactly the exact run's.
		exact, err := exactTwin(p)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := mom.RunJobRequest(ctx, exact)
		if err != nil {
			t.Fatal(err)
		}
		var check Point
		if err := (&check).adopt(doc); err != nil {
			t.Fatal(err)
		}
		if p.Cycles != check.Cycles || p.Insts != check.Insts {
			t.Fatalf("refined point %s carries cycles=%d insts=%d, exact run says %d/%d",
				p.ISA, p.Cycles, p.Insts, check.Cycles, check.Insts)
		}
	}
	if refined == 0 {
		t.Fatal("no frontier point was refined")
	}
	// Grid of 2 plus at least one exact re-run.
	if stats.Points < 3 {
		t.Fatalf("stats %+v, want refine re-runs on top of the 2-point grid", stats)
	}
}

// TestRunNoReduciblePoints: a grid without kernel/app runs executes but
// cannot feed the Pareto axes — a descriptive error, not a panic or an
// empty report.
func TestRunNoReduciblePoints(t *testing.T) {
	_, _, err := Run(context.Background(), mom.SweepSpec{Exps: []string{"fig5"}}, &Local{Par: 1})
	if err == nil {
		t.Fatal("Run accepted a grid with no reducible points")
	}
}
