package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	mom "repro"
)

// Report is the deliverable of a sweep: every reduced point with its
// dominance marking, plus the two Pareto frontiers. It holds nothing
// about execution (no timings, hit counts or host details — those are
// Stats, printed to stderr), so the same spec yields byte-identical
// report documents whether it ran in-process, against a momserver, or
// split across both.
type Report struct {
	Schema int           `json:"schema"`
	Sweep  string        `json:"sweep,omitempty"` // spec name
	Spec   mom.SweepSpec `json:"spec"`
	Points []Point       `json:"points"` // in expansion order
	// AreaFrontier: keys of the undominated points of the cycles-versus-
	// register-file-area trade-off, cheapest cycles first.
	AreaFrontier []string `json:"area_frontier"`
	// MemFrontier: best IPC per memory configuration against the
	// configuration's complexity rank.
	MemFrontier []MemFrontierRow `json:"mem_frontier"`
	// Refined: the sampled-first/exact-refine pass ran; FrontierChanged
	// records whether exact re-runs re-ranked the sampled frontier.
	Refined         bool `json:"refined"`
	FrontierChanged bool `json:"frontier_changed,omitempty"`
}

// WriteJSON emits the report as a single-line document, the same envelope
// style as the experiment documents.
func (r *Report) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r)
}

// ParseReport decodes a report document (strict: unknown fields are
// errors, schema must match).
func ParseReport(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("sweep report: %w", err)
	}
	if r.Schema != mom.SchemaVersion {
		return nil, fmt.Errorf("sweep report: schema %d, want %d", r.Schema, mom.SchemaVersion)
	}
	return &r, nil
}

// WriteCSV emits one row per point. Column order is part of the format;
// rows come out in expansion order like the JSON points list.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"exp", "workload", "isa", "width", "mem", "scale", "sample",
		"cycles", "insts", "ipc", "area", "dominated", "refined", "key",
	}); err != nil {
		return err
	}
	for _, p := range r.Points {
		if err := cw.Write([]string{
			p.Exp, p.Workload, p.ISA, strconv.Itoa(p.Width), p.Mem, p.Scale, p.Sample,
			strconv.FormatInt(p.Cycles, 10), strconv.FormatUint(p.Insts, 10),
			strconv.FormatFloat(p.IPC, 'f', 4, 64), strconv.FormatFloat(p.Area, 'f', 4, 64),
			strconv.FormatBool(p.Dominated), strconv.FormatBool(p.Refined), p.Key,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable renders the human-readable report: the cycles-versus-area
// trade-off with frontier points starred, then the IPC-versus-memory
// rows. Points print in expansion order so the table is as reproducible
// as the JSON.
func (r *Report) WriteTable(w io.Writer) error {
	name := r.Sweep
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(w, "design-space sweep %s: %d points, %d on the cycles/area frontier\n",
		name, len(r.Points), len(r.AreaFrontier))

	fmt.Fprintf(w, "\ncycles vs register-file area (* = Pareto frontier)\n")
	fmt.Fprintf(w, "  %-1s %-14s %-6s %5s %-10s %12s %8s %8s %s\n",
		"", "workload", "isa", "width", "mem", "cycles", "ipc", "area", "note")
	for _, p := range r.Points {
		mark := "*"
		if p.Dominated {
			mark = " "
		}
		note := ""
		if p.Sample != "" {
			note = "sampled " + p.Sample
			if p.Refined {
				note = "refined exact"
			}
		}
		fmt.Fprintf(w, "  %-1s %-14s %-6s %5d %-10s %12d %8.3f %8.3f %s\n",
			mark, p.Workload, p.ISA, p.Width, p.Mem, p.Cycles, p.IPC, p.Area, note)
	}

	fmt.Fprintf(w, "\nbest IPC vs memory configuration (* = Pareto frontier, ranked simplest first)\n")
	fmt.Fprintf(w, "  %-1s %4s %-10s %8s\n", "", "rank", "mem", "ipc")
	for _, row := range r.MemFrontier {
		mark := "*"
		if row.Dominated {
			mark = " "
		}
		fmt.Fprintf(w, "  %-1s %4d %-10s %8.3f\n", mark, row.Rank, row.Mem, row.IPC)
	}
	if r.Refined {
		verdict := "confirmed the sampled ranking"
		if r.FrontierChanged {
			verdict = "re-ranked the sampled frontier"
		}
		fmt.Fprintf(w, "\nexact refinement %s.\n", verdict)
	}
	return nil
}
