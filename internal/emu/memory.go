package emu

import (
	"encoding/binary"
	"fmt"
)

// Memory is the flat little-endian byte-addressable memory image a program
// executes against.
type Memory struct {
	buf []byte
}

// NewMemory allocates a memory image of the given size in bytes.
func NewMemory(size uint64) *Memory {
	return &Memory{buf: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.buf)) }

// memFault is panicked on out-of-range accesses and recovered by the
// emulator's step loop.
type memFault struct {
	addr uint64
	size int
}

func (f memFault) Error() string {
	return fmt.Sprintf("memory fault: access of %d bytes at %#x", f.size, f.addr)
}

func (m *Memory) check(addr uint64, size int) {
	if addr+uint64(size) > uint64(len(m.buf)) || addr+uint64(size) < addr {
		panic(memFault{addr, size})
	}
}

// Load8 reads a byte.
func (m *Memory) Load8(addr uint64) uint8 {
	m.check(addr, 1)
	return m.buf[addr]
}

// Load16 reads a little-endian 16-bit value (unaligned permitted).
func (m *Memory) Load16(addr uint64) uint16 {
	m.check(addr, 2)
	return binary.LittleEndian.Uint16(m.buf[addr:])
}

// Load32 reads a little-endian 32-bit value.
func (m *Memory) Load32(addr uint64) uint32 {
	m.check(addr, 4)
	return binary.LittleEndian.Uint32(m.buf[addr:])
}

// Load64 reads a little-endian 64-bit value.
func (m *Memory) Load64(addr uint64) uint64 {
	m.check(addr, 8)
	return binary.LittleEndian.Uint64(m.buf[addr:])
}

// Store8 writes a byte.
func (m *Memory) Store8(addr uint64, v uint8) {
	m.check(addr, 1)
	m.buf[addr] = v
}

// Store16 writes a little-endian 16-bit value.
func (m *Memory) Store16(addr uint64, v uint16) {
	m.check(addr, 2)
	binary.LittleEndian.PutUint16(m.buf[addr:], v)
}

// Store32 writes a little-endian 32-bit value.
func (m *Memory) Store32(addr uint64, v uint32) {
	m.check(addr, 4)
	binary.LittleEndian.PutUint32(m.buf[addr:], v)
}

// Store64 writes a little-endian 64-bit value.
func (m *Memory) Store64(addr uint64, v uint64) {
	m.check(addr, 8)
	binary.LittleEndian.PutUint64(m.buf[addr:], v)
}

// Bytes returns a view of size bytes at addr (for result extraction in
// tests and golden comparisons).
func (m *Memory) Bytes(addr uint64, size int) []byte {
	m.check(addr, size)
	return m.buf[addr : addr+uint64(size)]
}
