package emu_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
)

// buildSum builds a program that sums bytes 0..n-1 of a buffer into a
// 64-bit result stored at symbol "out".
func buildSum(n int, vals []byte) *isa.Program {
	b := asm.New("sum")
	b.AllocBytes("in", vals, 8)
	b.Alloc("out", 8, 8)
	ptr, acc, tmp, ctr := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	outp := isa.R(5)
	b.MovI(ptr, int64(b.Sym("in")))
	b.MovI(outp, int64(b.Sym("out")))
	b.MovI(acc, 0)
	b.Loop(ctr, int64(n), func() {
		b.Ldbu(tmp, ptr, 0)
		b.Add(acc, acc, tmp)
		b.AddI(ptr, ptr, 1)
	})
	b.Stq(acc, outp, 0)
	return b.Build()
}

func TestScalarSumProgram(t *testing.T) {
	vals := make([]byte, 100)
	want := uint64(0)
	for i := range vals {
		vals[i] = byte(i*7 + 3)
		want += uint64(vals[i])
	}
	p := buildSum(len(vals), vals)
	m := emu.New(p)
	steps, err := m.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("no steps executed")
	}
	got := m.Mem.Load64(p.Sym("out"))
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestBranchesAndCmov(t *testing.T) {
	b := asm.New("absdiff")
	b.Alloc("out", 8, 8)
	x, y, d, nd, outp := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	b.MovI(x, 10)
	b.MovI(y, 32)
	b.Sub(d, x, y) // -22
	b.MovI(nd, 0)
	b.Sub(nd, nd, d)           // 22
	b.Op(isa.CMOVLT, d, d, nd) // d<0 -> d=22
	b.MovI(outp, int64(b.Sym("out")))
	b.Stq(d, outp, 0)
	p := b.Build()
	m := emu.New(p)
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load64(p.Sym("out")); got != 22 {
		t.Fatalf("abs diff = %d, want 22", got)
	}
}

func TestMomStridedLoadStore(t *testing.T) {
	b := asm.New("momcopy")
	// 16 rows of 16 bytes; copy first 8 bytes of each row using one MOM
	// load/store pair with stride 16.
	src := make([]byte, 16*16)
	for i := range src {
		src[i] = byte(i ^ 0x5a)
	}
	b.AllocBytes("src", src, 8)
	b.Alloc("dst", 16*16, 8)
	base, stride, dbase := isa.R(1), isa.R(2), isa.R(3)
	b.MovI(base, int64(b.Sym("src")))
	b.MovI(dbase, int64(b.Sym("dst")))
	b.MovI(stride, 16)
	b.SetVLI(16)
	b.MomLd(isa.V(0), base, stride, 0)
	b.MomSt(isa.V(0), dbase, stride, 0)
	p := b.Build()
	m := emu.New(p)
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 16; row++ {
		for col := 0; col < 8; col++ {
			got := m.Mem.Load8(p.Sym("dst") + uint64(row*16+col))
			want := src[row*16+col]
			if got != want {
				t.Fatalf("dst[%d][%d] = %#x, want %#x", row, col, got, want)
			}
		}
	}
}

func TestVLClamp(t *testing.T) {
	b := asm.New("vl")
	b.MovI(isa.R(1), 99)
	b.SetVL(isa.R(1))
	p := b.Build()
	m := emu.New(p)
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.VL != isa.MaxVL {
		t.Fatalf("VL = %d, want %d", m.VL, isa.MaxVL)
	}
}

func TestMemoryFaultReported(t *testing.T) {
	b := asm.New("fault")
	b.MovI(isa.R(1), 1<<40)
	b.Ldq(isa.R(2), isa.R(1), 0)
	p := b.Build()
	m := emu.New(p)
	if _, err := m.Run(10); err == nil {
		t.Fatal("expected a memory fault error")
	}
}
