package emu

import (
	"repro/internal/isa"
	"repro/internal/simd"
)

// execPacked executes packed media opcodes and their MOM vector twins,
// including accumulator operations. It returns false for unknown opcodes.
func (m *Machine) execPacked(in *isa.Inst) bool {
	op := in.Op
	sc := op.Scalar()
	vec := op.IsVectorPacked()

	// Accumulator clear works identically for A and VA.
	if sc == isa.ACLR {
		m.acc(in.Dst).Clear()
		return true
	}

	// Accumulating operations.
	if sc >= isa.ACCADDB && sc <= isa.ACCSQDH {
		a := m.acc(in.Dst)
		if vec {
			// A MOM matrix accumulator op serialises one packed
			// accumulation per active word of the source matrix registers.
			for k := 0; k < m.VL; k++ {
				x := m.V[in.Src[0].Idx][k]
				var y uint64
				if in.Src[1].Valid() {
					y = m.V[in.Src[1].Idx][k]
				}
				if !accStep(sc, a, x, y) {
					return false
				}
			}
			return true
		}
		x := m.M[in.Src[0].Idx]
		var y uint64
		if in.Src[1].Valid() {
			y = m.M[in.Src[1].Idx]
		}
		return accStep(sc, a, x, y)
	}

	// Three-operand select.
	if sc == isa.PCMOV {
		if vec {
			for k := 0; k < m.VL; k++ {
				m.V[in.Dst.Idx][k] = simd.Select(
					m.V[in.Src[0].Idx][k], m.V[in.Src[1].Idx][k], m.V[in.Src[2].Idx][k])
			}
			return true
		}
		m.setMedia(in.Dst, simd.Select(
			m.M[in.Src[0].Idx], m.M[in.Src[1].Idx], m.M[in.Src[2].Idx]))
		return true
	}

	if !vec {
		a := m.packedSrc(in.Src[0])
		var b uint64
		if in.Src[1].Valid() {
			b = m.packedSrc(in.Src[1])
		}
		r, ok := evalPacked2(sc, a, b, in.Imm)
		if !ok {
			return false
		}
		m.setMedia(in.Dst, r)
		return true
	}

	// Vector path. The second operand may be a media register, in which case
	// it is broadcast across all active words (handy for per-lane constants).
	for k := 0; k < m.VL; k++ {
		a := m.V[in.Src[0].Idx][k]
		var b uint64
		if in.Src[1].Valid() {
			if in.Src[1].Kind == isa.KindMedia {
				b = m.M[in.Src[1].Idx]
			} else {
				b = m.V[in.Src[1].Idx][k]
			}
		}
		r, ok := evalPacked2(sc, a, b, in.Imm)
		if !ok {
			return false
		}
		m.V[in.Dst.Idx][k] = r
	}
	return true
}

// packedSrc reads a packed operand: a media register, or an integer register
// for the splat instructions.
func (m *Machine) packedSrc(r isa.Reg) uint64 {
	if r.Kind == isa.KindInt {
		return m.reg(r)
	}
	return m.M[r.Idx]
}

// accStep applies one packed accumulation step.
func accStep(op isa.Opcode, a *simd.Acc, x, y uint64) bool {
	switch op {
	case isa.ACCADDB:
		a.AddB(x)
	case isa.ACCADDH:
		a.AddH(x)
	case isa.ACCSUBB:
		a.SubB(x)
	case isa.ACCSUBH:
		a.SubH(x)
	case isa.ACCMULB:
		a.MulB(x, y)
	case isa.ACCMULH, isa.ACCMACH:
		a.MulH(x, y)
	case isa.ACCABDB:
		a.AbsDB(x, y)
	case isa.ACCABDH:
		a.AbsDH(x, y)
	case isa.ACCSQDB:
		a.SqDB(x, y)
	case isa.ACCSQDH:
		a.SqDH(x, y)
	default:
		return false
	}
	return true
}

// evalPacked2 computes a two-operand packed operation on 64-bit words.
func evalPacked2(op isa.Opcode, a, b uint64, imm int64) (uint64, bool) {
	switch op {
	case isa.PADDB:
		return simd.AddB(a, b), true
	case isa.PADDH:
		return simd.AddH(a, b), true
	case isa.PADDW:
		return simd.AddW(a, b), true
	case isa.PADDSB:
		return simd.AddSB(a, b), true
	case isa.PADDSH:
		return simd.AddSH(a, b), true
	case isa.PADDUSB:
		return simd.AddUSB(a, b), true
	case isa.PADDUSH:
		return simd.AddUSH(a, b), true
	case isa.PSUBB:
		return simd.SubB(a, b), true
	case isa.PSUBH:
		return simd.SubH(a, b), true
	case isa.PSUBW:
		return simd.SubW(a, b), true
	case isa.PSUBSB:
		return simd.SubSB(a, b), true
	case isa.PSUBSH:
		return simd.SubSH(a, b), true
	case isa.PSUBUSB:
		return simd.SubUSB(a, b), true
	case isa.PSUBUSH:
		return simd.SubUSH(a, b), true
	case isa.PMULLH:
		return simd.MulLH(a, b), true
	case isa.PMULHH:
		return simd.MulHH(a, b), true
	case isa.PMULHUH:
		return simd.MulHUH(a, b), true
	case isa.PMADDH:
		return simd.MAddH(a, b), true
	case isa.PAVGB:
		return simd.AvgB(a, b), true
	case isa.PAVGH:
		return simd.AvgH(a, b), true
	case isa.PABSDB:
		return simd.AbsDB(a, b), true
	case isa.PABSDH:
		return simd.AbsDH(a, b), true
	case isa.PSADBW:
		return simd.SADBW(a, b), true
	case isa.PMINUB:
		return simd.MinUB(a, b), true
	case isa.PMAXUB:
		return simd.MaxUB(a, b), true
	case isa.PMINSH:
		return simd.MinSH(a, b), true
	case isa.PMAXSH:
		return simd.MaxSH(a, b), true
	case isa.PCMPEQB:
		return simd.CmpEqB(a, b), true
	case isa.PCMPEQH:
		return simd.CmpEqH(a, b), true
	case isa.PCMPGTB:
		return simd.CmpGtB(a, b), true
	case isa.PCMPGTH:
		return simd.CmpGtH(a, b), true
	case isa.PCMPGTUB:
		return simd.CmpGtUB(a, b), true
	case isa.PAND:
		return a & b, true
	case isa.POR:
		return a | b, true
	case isa.PXOR:
		return a ^ b, true
	case isa.PANDN:
		return a &^ b, true
	case isa.PSLLH:
		return simd.SllH(a, uint(imm)), true
	case isa.PSLLW:
		return simd.SllW(a, uint(imm)), true
	case isa.PSLLQ:
		if imm >= 64 {
			return 0, true
		}
		return a << uint(imm), true
	case isa.PSRLH:
		return simd.SrlH(a, uint(imm)), true
	case isa.PSRLW:
		return simd.SrlW(a, uint(imm)), true
	case isa.PSRLQ:
		if imm >= 64 {
			return 0, true
		}
		return a >> uint(imm), true
	case isa.PSRAH:
		return simd.SraH(a, uint(imm)), true
	case isa.PSRAW:
		return simd.SraW(a, uint(imm)), true
	case isa.PACKSSHB:
		return simd.PackSSHB(a, b), true
	case isa.PACKUSHB:
		return simd.PackUSHB(a, b), true
	case isa.PACKSSWH:
		return simd.PackSSWH(a, b), true
	case isa.PUNPKLB:
		return simd.UnpackLB(a, b), true
	case isa.PUNPKHB:
		return simd.UnpackHB(a, b), true
	case isa.PUNPKLH:
		return simd.UnpackLH(a, b), true
	case isa.PUNPKHH:
		return simd.UnpackHH(a, b), true
	case isa.PUNPKLW:
		return simd.UnpackLW(a, b), true
	case isa.PUNPKHW:
		return simd.UnpackHW(a, b), true
	case isa.PSPLATB:
		return simd.SplatB(a), true
	case isa.PSPLATH:
		return simd.SplatH(a), true
	case isa.PMOV:
		return a, true
	}
	return 0, false
}
